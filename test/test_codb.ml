(* Test entry point: one alcotest run covering every library. *)

let () =
  Alcotest.run "codb"
    [
      ("value", Test_value.suite);
      ("intern", Test_intern.suite);
      ("tuple", Test_tuple.suite);
      ("schema", Test_schema.suite);
      ("relation", Test_relation.suite);
      ("database", Test_database.suite);
      ("csv", Test_csv.suite);
      ("algebra", Test_algebra.suite);
      ("query", Test_query.suite);
      ("eval", Test_eval.suite);
      ("plan", Test_plan.suite);
      ("apply", Test_apply.suite);
      ("containment", Test_containment.suite);
      ("specialize", Test_specialize.suite);
      ("parser", Test_parser.suite);
      ("net", Test_net.suite);
      ("options", Test_options.suite);
      ("cache", Test_cache.suite);
      ("update", Test_update.suite);
      ("protocol", Test_protocol.suite);
      ("control", Test_control.suite);
      ("scoped-update", Test_scoped_update.suite);
      ("analysis", Test_analysis.suite);
      ("wrapper", Test_wrapper.suite);
      ("stats", Test_stats.suite);
      ("payload", Test_payload.suite);
      ("codec", Test_codec.suite);
      ("wire", Test_wire.suite);
      ("states", Test_states.suite);
      ("query-engine", Test_query_engine.suite);
      ("query-protocol", Test_query_protocol.suite);
      ("topology", Test_topology.suite);
      ("system", Test_system.suite);
      ("chaos", Test_chaos.suite);
      ("recovery", Test_recovery.suite);
      ("sub", Test_sub.suite);
      ("workload", Test_workload.suite);
      ("par", Test_par.suite);
      ("properties", Test_props.suite);
    ]
