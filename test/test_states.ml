(* Unit tests of the per-update and per-query protocol state
   machines. *)

open Helpers
module U = Codb_core.Update_state
module Q = Codb_core.Query_state
module Ids = Codb_core.Ids
module Peer_id = Codb_net.Peer_id

let uid = Ids.update_id (Peer_id.of_string "n0") 1

let test_update_state_links () =
  let st = U.create ~initiator:true ~outgoing:[ "o1"; "o2" ] ~incoming:[ "i1" ] uid in
  Alcotest.(check bool) "o1 open" true (U.out_state st "o1" = U.Link_open);
  Alcotest.(check bool) "i1 open" true (U.in_state st "i1" = U.Link_open);
  Alcotest.(check bool) "unknown reads closed" true
    (U.out_state st "zzz" = U.Link_closed);
  Alcotest.(check bool) "not yet all closed" false (U.all_out_closed st);
  U.close_out st "o1";
  Alcotest.(check bool) "still not all" false (U.all_out_closed st);
  U.close_out st "o2";
  Alcotest.(check bool) "now all closed" true (U.all_out_closed st);
  U.close_in st "i1";
  Alcotest.(check bool) "i1 closed" true (U.in_state st "i1" = U.Link_closed)

let test_update_state_scoped_activation () =
  let st = U.create ~initiator:true ~scoped:true ~outgoing:[] ~incoming:[] uid in
  Alcotest.(check bool) "empty is all-closed" true (U.all_out_closed st);
  Alcotest.(check bool) "inactive" false (U.is_active_out st "o1");
  U.activate_out st "o1";
  Alcotest.(check bool) "active now" true (U.is_active_out st "o1");
  Alcotest.(check bool) "open" true (U.out_state st "o1" = U.Link_open);
  Alcotest.(check bool) "no longer all closed" false (U.all_out_closed st);
  U.close_out st "o1";
  U.activate_out st "o1";
  Alcotest.(check bool) "activation does not reopen" true
    (U.out_state st "o1" = U.Link_closed)

let test_update_state_sent_cache () =
  let st = U.create ~initiator:false ~outgoing:[] ~incoming:[ "i1" ] uid in
  Alcotest.(check int) "empty cache" 0 (U.sent_tracked st "i1");
  U.add_sent st "i1" [ tup [ i 1 ]; tup [ i 2 ] ];
  U.add_sent st "i1" [ tup [ i 2 ]; tup [ i 3 ] ];
  Alcotest.(check int) "set semantics" 3 (U.sent_tracked st "i1");
  Alcotest.(check bool) "membership" true (U.already_sent st "i1" (tup [ i 2 ]));
  Alcotest.(check bool) "non-member" false (U.already_sent st "i1" (tup [ i 9 ]));
  Alcotest.(check int) "caches are per link" 0 (U.sent_tracked st "other");
  Alcotest.(check int) "exact mode never resends" 0 (U.possible_resends st)

let test_update_state_wire_buffer () =
  let st = U.create ~initiator:false ~outgoing:[] ~incoming:[ "i1"; "i2" ] uid in
  let dst = Peer_id.of_string "imp" in
  Alcotest.(check int) "nothing pending" 0 (U.pending_tuples st);
  let added = U.buffer_add st ~dst ~rule:"i1" ~hops:2 [ tup [ i 1 ]; tup [ i 2 ] ] in
  Alcotest.(check int) "both buffered" 2 added;
  (* same-window duplicate coalesces away; hops merge to the max *)
  let added = U.buffer_add st ~dst ~rule:"i1" ~hops:5 [ tup [ i 2 ]; tup [ i 3 ] ] in
  Alcotest.(check int) "duplicate coalesced" 1 added;
  ignore (U.buffer_add st ~dst ~rule:"i2" ~hops:1 [ tup [ i 9 ] ]);
  Alcotest.(check int) "pending counts tuples" 4 (U.pending_tuples st);
  Alcotest.(check int) "per-destination size" 4 (U.buffer_size st ~dst);
  (* insert/retract in the same window ships zero bytes *)
  Alcotest.(check bool) "retract pending" true
    (U.buffer_retract st ~dst ~rule:"i1" (tup [ i 3 ]));
  Alcotest.(check bool) "retract absent" false
    (U.buffer_retract st ~dst ~rule:"i1" (tup [ i 42 ]));
  Alcotest.(check int) "pending after retract" 3 (U.pending_tuples st);
  Alcotest.(check bool) "buffered destinations" true (U.buffered_dsts st = [ dst ]);
  (match U.take_buffer st ~dst with
  | [ ("i1", 5, t1); ("i2", 1, t2) ] ->
      check_tuples "rule i1 in insertion order" [ tup [ i 1 ]; tup [ i 2 ] ] t1;
      check_tuples "rule i2" [ tup [ i 9 ] ] t2
  | other -> Alcotest.failf "unexpected batch shape (%d entries)" (List.length other));
  Alcotest.(check int) "drained" 0 (U.pending_tuples st);
  Alcotest.(check bool) "take on empty" true (U.take_buffer st ~dst = [])

let test_update_state_bloom_filter () =
  let st =
    U.create ~initiator:false ~bloom_bits:256 ~ring_capacity:2 ~outgoing:[]
      ~incoming:[ "i1" ] uid
  in
  U.add_sent st "i1" [ tup [ i 1 ]; tup [ i 2 ] ];
  Alcotest.(check bool) "both tracked" true
    (U.already_sent st "i1" (tup [ i 1 ]) && U.already_sent st "i1" (tup [ i 2 ]));
  (* the ring holds 2: a third send evicts the first-in tuple, which
     must then read as NOT sent (re-send, never drop) *)
  U.add_sent st "i1" [ tup [ i 3 ] ];
  Alcotest.(check bool) "evicted tuple re-sends" false (U.already_sent st "i1" (tup [ i 1 ]));
  Alcotest.(check int) "ring stays bounded" 2 (U.sent_tracked st "i1");
  Alcotest.(check bool) "a possible resend was counted" true (U.possible_resends st >= 1)

let qid = Ids.query_id (Peer_id.of_string "n0") 1

let mk_query_state () =
  let overlay = db_of [ r_schema ] [] in
  Q.create ~query_id:qid ~ref_:"ref0"
    ~kind:
      (Q.Root
         { query = parse_query "a(x) <- r(x, y)"; result = None;
           streamed = Codb_relalg.Relation.Tuple_set.empty; on_answer = None })
    ~overlay

let test_query_state_pending () =
  let st = mk_query_state () in
  Alcotest.(check bool) "trivially done" true (Q.all_done st);
  Q.add_pending st ~ref_:"sub1" ~rule:"r1";
  Q.add_pending st ~ref_:"sub2" ~rule:"r2";
  Alcotest.(check bool) "not done" false (Q.all_done st);
  Q.mark_done st ~ref_:"sub1";
  Alcotest.(check bool) "partially done" false (Q.all_done st);
  Q.mark_done st ~ref_:"sub2";
  Alcotest.(check bool) "done" true (Q.all_done st);
  Q.mark_done st ~ref_:"unknown" (* must be a harmless no-op *)

let test_query_state_unsent () =
  let st = mk_query_state () in
  let batch1 = Q.unsent st [ tup [ i 1 ]; tup [ i 2 ] ] in
  Alcotest.(check int) "first batch full" 2 (List.length batch1);
  let batch2 = Q.unsent st [ tup [ i 2 ]; tup [ i 3 ] ] in
  check_tuples "only the new one" [ tup [ i 3 ] ] batch2

let suite =
  [
    Alcotest.test_case "update link states" `Quick test_update_state_links;
    Alcotest.test_case "scoped activation" `Quick test_update_state_scoped_activation;
    Alcotest.test_case "sent cache" `Quick test_update_state_sent_cache;
    Alcotest.test_case "wire buffer" `Quick test_update_state_wire_buffer;
    Alcotest.test_case "bloom sent filter" `Quick test_update_state_bloom_filter;
    Alcotest.test_case "query pending bookkeeping" `Quick test_query_state_pending;
    Alcotest.test_case "query unsent filter" `Quick test_query_state_unsent;
  ]
