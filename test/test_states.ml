(* Unit tests of the per-update and per-query protocol state
   machines. *)

open Helpers
module U = Codb_core.Update_state
module Q = Codb_core.Query_state
module Ids = Codb_core.Ids
module Peer_id = Codb_net.Peer_id

let uid = Ids.update_id (Peer_id.of_string "n0") 1

let test_update_state_links () =
  let st = U.create ~initiator:true ~outgoing:[ "o1"; "o2" ] ~incoming:[ "i1" ] uid in
  Alcotest.(check bool) "o1 open" true (U.out_state st "o1" = U.Link_open);
  Alcotest.(check bool) "i1 open" true (U.in_state st "i1" = U.Link_open);
  Alcotest.(check bool) "unknown reads closed" true
    (U.out_state st "zzz" = U.Link_closed);
  Alcotest.(check bool) "not yet all closed" false (U.all_out_closed st);
  U.close_out st "o1";
  Alcotest.(check bool) "still not all" false (U.all_out_closed st);
  U.close_out st "o2";
  Alcotest.(check bool) "now all closed" true (U.all_out_closed st);
  U.close_in st "i1";
  Alcotest.(check bool) "i1 closed" true (U.in_state st "i1" = U.Link_closed)

let test_update_state_scoped_activation () =
  let st = U.create ~initiator:true ~scoped:true ~outgoing:[] ~incoming:[] uid in
  Alcotest.(check bool) "empty is all-closed" true (U.all_out_closed st);
  Alcotest.(check bool) "inactive" false (U.is_active_out st "o1");
  U.activate_out st "o1";
  Alcotest.(check bool) "active now" true (U.is_active_out st "o1");
  Alcotest.(check bool) "open" true (U.out_state st "o1" = U.Link_open);
  Alcotest.(check bool) "no longer all closed" false (U.all_out_closed st);
  U.close_out st "o1";
  U.activate_out st "o1";
  Alcotest.(check bool) "activation does not reopen" true
    (U.out_state st "o1" = U.Link_closed)

let test_update_state_sent_cache () =
  let st = U.create ~initiator:false ~outgoing:[] ~incoming:[ "i1" ] uid in
  Alcotest.(check int) "empty cache" 0
    (Codb_relalg.Relation.Tuple_set.cardinal (U.sent_cache st "i1"));
  U.add_sent st "i1" [ tup [ i 1 ]; tup [ i 2 ] ];
  U.add_sent st "i1" [ tup [ i 2 ]; tup [ i 3 ] ];
  Alcotest.(check int) "set semantics" 3
    (Codb_relalg.Relation.Tuple_set.cardinal (U.sent_cache st "i1"));
  Alcotest.(check int) "caches are per link" 0
    (Codb_relalg.Relation.Tuple_set.cardinal (U.sent_cache st "other"))

let qid = Ids.query_id (Peer_id.of_string "n0") 1

let mk_query_state () =
  let overlay = db_of [ r_schema ] [] in
  Q.create ~query_id:qid ~ref_:"ref0"
    ~kind:
      (Q.Root
         { query = parse_query "a(x) <- r(x, y)"; result = None;
           streamed = Codb_relalg.Relation.Tuple_set.empty; on_answer = None })
    ~overlay

let test_query_state_pending () =
  let st = mk_query_state () in
  Alcotest.(check bool) "trivially done" true (Q.all_done st);
  Q.add_pending st ~ref_:"sub1" ~rule:"r1";
  Q.add_pending st ~ref_:"sub2" ~rule:"r2";
  Alcotest.(check bool) "not done" false (Q.all_done st);
  Q.mark_done st ~ref_:"sub1";
  Alcotest.(check bool) "partially done" false (Q.all_done st);
  Q.mark_done st ~ref_:"sub2";
  Alcotest.(check bool) "done" true (Q.all_done st);
  Q.mark_done st ~ref_:"unknown" (* must be a harmless no-op *)

let test_query_state_unsent () =
  let st = mk_query_state () in
  let batch1 = Q.unsent st [ tup [ i 1 ]; tup [ i 2 ] ] in
  Alcotest.(check int) "first batch full" 2 (List.length batch1);
  let batch2 = Q.unsent st [ tup [ i 2 ]; tup [ i 3 ] ] in
  check_tuples "only the new one" [ tup [ i 3 ] ] batch2

let suite =
  [
    Alcotest.test_case "update link states" `Quick test_update_state_links;
    Alcotest.test_case "scoped activation" `Quick test_update_state_scoped_activation;
    Alcotest.test_case "sent cache" `Quick test_update_state_sent_cache;
    Alcotest.test_case "query pending bookkeeping" `Quick test_query_state_pending;
    Alcotest.test_case "query unsent filter" `Quick test_query_state_unsent;
  ]
