open Helpers
module Algebra = Codb_relalg.Algebra
module Value = Codb_relalg.Value

let emp_schema =
  Schema.make "emp" [ ("name", Value.Tstring); ("dept", Value.Tint) ]

let dept_schema =
  Schema.make "dept" [ ("dept", Value.Tint); ("city", Value.Tstring) ]

let emp () =
  let r = Relation.create emp_schema in
  ignore
    (Relation.insert_all r
       [ tup [ s "alice"; i 1 ]; tup [ s "bob"; i 2 ]; tup [ s "carol"; i 1 ] ]);
  r

let dept () =
  let r = Relation.create dept_schema in
  ignore (Relation.insert_all r [ tup [ i 1; s "rome" ]; tup [ i 3; s "oslo" ] ]);
  r

let contents r = Relation.to_list r

let test_select () =
  let r = Algebra.select (fun t -> Value.equal t.(1) (i 1)) (emp ()) in
  Alcotest.(check int) "two in dept 1" 2 (Relation.cardinal r);
  let r2 = Algebra.select_eq (emp ()) ~attr:"name" (s "bob") in
  check_tuples "by name" [ tup [ s "bob"; i 2 ] ] (contents r2);
  Alcotest.(check bool) "unknown attr" true
    (try
       ignore (Algebra.select_eq (emp ()) ~attr:"nope" (i 1));
       false
     with Algebra.Schema_mismatch _ -> true)

let test_project () =
  let r = Algebra.project (emp ()) ~attrs:[ "dept" ] in
  check_tuples "depts deduped" [ tup [ i 1 ]; tup [ i 2 ] ] (contents r);
  let reordered = Algebra.project (emp ()) ~attrs:[ "dept"; "name" ] in
  Alcotest.(check (list string)) "attribute order" [ "dept"; "name" ]
    (Schema.attr_names (Relation.schema reordered));
  Alcotest.(check bool) "empty projection" true
    (try
       ignore (Algebra.project (emp ()) ~attrs:[]);
       false
     with Algebra.Schema_mismatch _ -> true)

let test_rename () =
  let r = Algebra.rename (emp ()) [ ("dept", "division") ] in
  Alcotest.(check (list string)) "renamed" [ "name"; "division" ]
    (Schema.attr_names (Relation.schema r));
  Alcotest.(check int) "tuples kept" 3 (Relation.cardinal r);
  Alcotest.(check bool) "clash rejected" true
    (try
       ignore (Algebra.rename (emp ()) [ ("dept", "name") ]);
       false
     with Algebra.Schema_mismatch _ -> true)

let test_set_operations () =
  let r1 = emp () in
  let r2 = Relation.create emp_schema in
  ignore (Relation.insert_all r2 [ tup [ s "alice"; i 1 ]; tup [ s "dan"; i 3 ] ]);
  Alcotest.(check int) "union" 4 (Relation.cardinal (Algebra.union r1 r2));
  check_tuples "diff" [ tup [ s "bob"; i 2 ]; tup [ s "carol"; i 1 ] ]
    (contents (Algebra.diff r1 r2));
  check_tuples "inter" [ tup [ s "alice"; i 1 ] ] (contents (Algebra.inter r1 r2));
  Alcotest.(check bool) "layout checked" true
    (try
       ignore (Algebra.union r1 (dept ()));
       false
     with Algebra.Schema_mismatch _ -> true)

let test_natural_join () =
  let joined = Algebra.natural_join (emp ()) (dept ()) in
  (* shared attribute dept appears once; only dept 1 matches *)
  Alcotest.(check (list string)) "schema" [ "name"; "dept"; "city" ]
    (Schema.attr_names (Relation.schema joined));
  check_tuples "matches"
    [ tup [ s "alice"; i 1; s "rome" ]; tup [ s "carol"; i 1; s "rome" ] ]
    (contents joined)

let test_natural_join_no_shared_is_product () =
  let cities = Relation.create (Schema.make "c" [ ("city", Value.Tstring) ]) in
  ignore (Relation.insert cities (tup [ s "rome" ]));
  let r = Algebra.natural_join (emp ()) cities in
  Alcotest.(check int) "product size" 3 (Relation.cardinal r)

let test_equi_join_keeps_both_sides () =
  let joined = Algebra.equi_join (emp ()) (dept ()) ~on:[ ("dept", "dept") ] in
  (* both dept columns kept; the right one is prefixed *)
  Alcotest.(check (list string)) "schema" [ "name"; "dept"; "dept.dept"; "city" ]
    (Schema.attr_names (Relation.schema joined));
  Alcotest.(check int) "two matches" 2 (Relation.cardinal joined)

let test_product_prefixes_clashes () =
  let p = Algebra.product (emp ()) (dept ()) in
  Alcotest.(check (list string)) "prefixed" [ "name"; "dept"; "dept.dept"; "city" ]
    (Schema.attr_names (Relation.schema p));
  Alcotest.(check int) "3 x 2" 6 (Relation.cardinal p)

let test_join_nulls_by_identity () =
  let n1 = Value.fresh_null ~rule:"t" in
  let left = Relation.create (Schema.make "l" [ ("a", Value.Tint); ("k", Value.Tint) ]) in
  let right = Relation.create (Schema.make "r2" [ ("k", Value.Tint); ("b", Value.Tint) ]) in
  ignore (Relation.insert left (tup [ i 1; n1 ]));
  ignore (Relation.insert right (tup [ n1; i 9 ]));
  ignore (Relation.insert right (tup [ Value.fresh_null ~rule:"t"; i 8 ]));
  let joined = Algebra.natural_join left right in
  Alcotest.(check int) "same null joins" 1 (Relation.cardinal joined)

let suite =
  [
    Alcotest.test_case "selection" `Quick test_select;
    Alcotest.test_case "projection" `Quick test_project;
    Alcotest.test_case "renaming" `Quick test_rename;
    Alcotest.test_case "union / diff / inter" `Quick test_set_operations;
    Alcotest.test_case "natural join" `Quick test_natural_join;
    Alcotest.test_case "natural join without shared attrs" `Quick
      test_natural_join_no_shared_is_product;
    Alcotest.test_case "equi join" `Quick test_equi_join_keeps_both_sides;
    Alcotest.test_case "product prefixes clashes" `Quick test_product_prefixes_clashes;
    Alcotest.test_case "nulls join by identity" `Quick test_join_nulls_by_identity;
  ]
