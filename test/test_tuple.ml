open Helpers

let test_compare_lexicographic () =
  Alcotest.(check bool) "first column" true (Tuple.compare (tup [ i 1; i 9 ]) (tup [ i 2; i 0 ]) < 0);
  Alcotest.(check bool) "second column" true (Tuple.compare (tup [ i 1; i 1 ]) (tup [ i 1; i 2 ]) < 0);
  Alcotest.(check bool) "equal" true (Tuple.compare (tup [ i 1; i 2 ]) (tup [ i 1; i 2 ]) = 0);
  Alcotest.(check bool) "length" true (Tuple.compare (tup [ i 1 ]) (tup [ i 1; i 2 ]) < 0)

let test_has_hole_null () =
  Alcotest.(check bool) "hole" true (Tuple.has_hole (tup [ i 1; Value.Hole 0 ]));
  Alcotest.(check bool) "no hole" false (Tuple.has_hole (tup [ i 1; s "x" ]));
  let null = Value.fresh_null ~rule:"r" in
  Alcotest.(check bool) "null" true (Tuple.has_null (tup [ null ]));
  Alcotest.(check bool) "no null" false (Tuple.has_null (tup [ i 1 ]))

let test_subsumes_exact () =
  let a = tup [ i 1; s "x" ] in
  Alcotest.(check bool) "identical" true (Tuple.subsumes a (tup [ i 1; s "x" ]));
  Alcotest.(check bool) "different" false (Tuple.subsumes a (tup [ i 1; s "y" ]))

let test_subsumes_holes () =
  let null = Value.fresh_null ~rule:"r" in
  let stored = tup [ i 1; null ] in
  Alcotest.(check bool)
    "null matches hole" true
    (Tuple.subsumes stored (tup [ i 1; Value.Hole 0 ]));
  Alcotest.(check bool)
    "a concrete value witnesses a hole" true
    (Tuple.subsumes (tup [ i 1; s "x" ]) (tup [ i 1; Value.Hole 0 ]));
  Alcotest.(check bool)
    "mismatch on concrete part" false
    (Tuple.subsumes stored (tup [ i 2; Value.Hole 0 ]))

let test_instantiate_holes () =
  Value.reset_null_counter ();
  let t = tup [ i 1; Value.Hole 0; Value.Hole 1 ] in
  let t' = Tuple.instantiate_holes ~rule:"r9" t in
  Alcotest.(check bool) "no holes left" false (Tuple.has_hole t');
  Alcotest.(check bool) "nulls introduced" true (Tuple.has_null t');
  (match (t'.(1), t'.(2)) with
  | Value.Null n1, Value.Null n2 ->
      Alcotest.(check bool) "distinct holes get distinct nulls" true
        (n1.Value.null_id <> n2.Value.null_id);
      Alcotest.(check string) "rule recorded" "r9" n1.Value.null_rule
  | _ -> Alcotest.fail "expected nulls");
  (* repeated hole index stays co-referent *)
  let t2 = Tuple.instantiate_holes ~rule:"r" (tup [ Value.Hole 5; Value.Hole 5 ]) in
  Alcotest.(check bool) "same hole same null" true (Value.equal t2.(0) t2.(1))

let test_instantiate_no_holes_is_identity () =
  let t = tup [ i 1; s "x" ] in
  Alcotest.(check bool) "physically equal" true (Tuple.instantiate_holes ~rule:"r" t == t)

let test_size_bytes () =
  (* varint arity header plus the per-value wire sizes *)
  Alcotest.(check int) "header plus fields" (1 + 2 + (3 + 2))
    (Tuple.size_bytes (tup [ i 1; s "ab" ]))

let suite =
  [
    Alcotest.test_case "lexicographic compare" `Quick test_compare_lexicographic;
    Alcotest.test_case "has_hole / has_null" `Quick test_has_hole_null;
    Alcotest.test_case "subsumption, exact part" `Quick test_subsumes_exact;
    Alcotest.test_case "subsumption, holes vs nulls" `Quick test_subsumes_holes;
    Alcotest.test_case "hole instantiation" `Quick test_instantiate_holes;
    Alcotest.test_case "instantiation without holes" `Quick
      test_instantiate_no_holes_is_identity;
    Alcotest.test_case "wire size" `Quick test_size_bytes;
  ]
