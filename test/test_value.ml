open Helpers

let test_compare_scalars () =
  Alcotest.(check bool) "int order" true (Value.compare (i 1) (i 2) < 0);
  Alcotest.(check bool) "int eq" true (Value.equal (i 3) (i 3));
  Alcotest.(check bool) "str order" true (Value.compare (s "a") (s "b") < 0);
  Alcotest.(check bool)
    "float eq" true
    (Value.equal (Value.Float 1.5) (Value.Float 1.5));
  Alcotest.(check bool)
    "bool order" true
    (Value.compare (Value.Bool false) (Value.Bool true) < 0)

let test_cross_constructor_order_total () =
  let values =
    [ i 1; Value.Float 1.0; s "x"; Value.Bool true;
      Value.Null { null_id = 1; null_rule = "r" }; Value.Hole 0 ]
  in
  (* compare must be a total order: antisymmetric and transitive on
     this sample *)
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = Value.compare a b and ba = Value.compare b a in
          Alcotest.(check bool) "antisymmetry" true (compare ab 0 = compare 0 ba))
        values)
    values

let test_null_identity () =
  let n1 = Value.fresh_null ~rule:"r1" in
  let n2 = Value.fresh_null ~rule:"r1" in
  Alcotest.(check bool) "null equals itself" true (Value.equal n1 n1);
  Alcotest.(check bool) "distinct nulls differ" false (Value.equal n1 n2)

let test_null_counter () =
  Value.reset_null_counter ();
  let _ = Value.fresh_null ~rule:"a" in
  let _ = Value.fresh_null ~rule:"b" in
  Alcotest.(check int) "two nulls" 2 (Value.null_counter ())

let test_conforms () =
  Alcotest.(check bool) "int conforms" true (Value.conforms Value.Tint (i 5));
  Alcotest.(check bool) "int vs string" false (Value.conforms Value.Tstring (i 5));
  let null = Value.fresh_null ~rule:"r" in
  Alcotest.(check bool) "null conforms to int" true (Value.conforms Value.Tint null);
  Alcotest.(check bool)
    "null conforms to string" true
    (Value.conforms Value.Tstring null);
  Alcotest.(check bool) "hole conforms" true (Value.conforms Value.Tint (Value.Hole 0))

let test_type_of () =
  Alcotest.(check bool) "int" true (Value.type_of (i 1) = Some Value.Tint);
  Alcotest.(check bool) "null has no type" true (Value.type_of (Value.Hole 1) = None)

let test_ty_round_trip () =
  List.iter
    (fun ty ->
      Alcotest.(check bool)
        "ty round trip" true
        (Value.ty_of_string (Value.string_of_ty ty) = Some ty))
    [ Value.Tint; Value.Tfloat; Value.Tstring; Value.Tbool ];
  Alcotest.(check bool) "unknown ty" true (Value.ty_of_string "decimal" = None)

let test_size_bytes () =
  (* the shared model is the exact compact-codec cost: tag byte +
     zigzag varint for ints, tag + dict-tag + varint length + bytes
     for first-occurrence strings *)
  Alcotest.(check int) "int size" 2 (Value.size_bytes (i 5));
  Alcotest.(check int) "big int size" (1 + 5) (Value.size_bytes (i 0x7fff_ffff));
  Alcotest.(check int) "str size" (3 + 3) (Value.size_bytes (s "abc"));
  Alcotest.(check int) "bool size" 1 (Value.size_bytes (Value.Bool true));
  Alcotest.(check int) "hole size" 2 (Value.size_bytes (Value.Hole 3));
  Alcotest.(check int) "null size"
    (2 + 1 + 1 + 2)
    (Value.size_bytes (Value.Null { Value.null_id = 9; null_rule = "rx" }));
  (* the model must agree with [varint_size]/[zigzag_size] *)
  Alcotest.(check int) "varint boundary" 1 (Value.varint_size 127);
  Alcotest.(check int) "varint boundary + 1" 2 (Value.varint_size 128);
  Alcotest.(check int) "zigzag negative" (Value.zigzag_size 63) (Value.zigzag_size (-64))

let test_is_predicates () =
  Alcotest.(check bool) "is_null" true (Value.is_null (Value.fresh_null ~rule:"r"));
  Alcotest.(check bool) "int not null" false (Value.is_null (i 1));
  Alcotest.(check bool) "is_hole" true (Value.is_hole (Value.Hole 2));
  Alcotest.(check bool) "null not hole" false (Value.is_hole (Value.fresh_null ~rule:"r"))

let suite =
  [
    Alcotest.test_case "compare scalars" `Quick test_compare_scalars;
    Alcotest.test_case "total order across constructors" `Quick
      test_cross_constructor_order_total;
    Alcotest.test_case "marked nulls are self-identical" `Quick test_null_identity;
    Alcotest.test_case "null counter" `Quick test_null_counter;
    Alcotest.test_case "type conformance" `Quick test_conforms;
    Alcotest.test_case "type_of" `Quick test_type_of;
    Alcotest.test_case "ty string round trip" `Quick test_ty_round_trip;
    Alcotest.test_case "wire sizes" `Quick test_size_bytes;
    Alcotest.test_case "is_null / is_hole" `Quick test_is_predicates;
  ]
