open Helpers
module Analysis = Codb_core.Analysis

let base_nodes =
  {|
node a { relation r(x: int, y: int); }
node b { relation r(x: int, y: int); relation s(y: int, z: int); }
|}

let cfg_of rules = parse_config (base_nodes ^ rules)

let test_specialised_rule_redundant () =
  let cfg =
    cfg_of
      {|
rule broad at a: r(x, y) <- b: r(x, y);
rule narrow at a: r(x, y) <- b: r(x, y), s(y, z);
|}
  in
  match Analysis.redundant_rules cfg with
  | [ { Analysis.redundant; covered_by } ] ->
      Alcotest.(check string) "narrow is redundant" "narrow"
        redundant.Config.rule_id;
      Alcotest.(check string) "covered by broad" "broad" covered_by.Config.rule_id
  | other -> Alcotest.failf "expected one redundancy, got %d" (List.length other)

let test_equivalent_rules_keep_one () =
  let cfg =
    cfg_of
      {|
rule r1 at a: r(x, y) <- b: r(x, y);
rule r2 at a: r(u, v) <- b: r(u, v);
|}
  in
  (match Analysis.redundant_rules cfg with
  | [ { Analysis.redundant; _ } ] ->
      Alcotest.(check string) "larger id dropped" "r2" redundant.Config.rule_id
  | other -> Alcotest.failf "expected one redundancy, got %d" (List.length other));
  let minimised = Analysis.minimise cfg in
  Alcotest.(check int) "one rule survives" 1 (List.length minimised.Config.rules)

let test_independent_rules_kept () =
  let cfg =
    cfg_of
      {|
rule r1 at a: r(x, y) <- b: r(x, y);
rule r2 at a: r(x, z) <- b: s(x, z);
|}
  in
  Alcotest.(check int) "no redundancy" 0 (List.length (Analysis.redundant_rules cfg))

let test_different_endpoints_never_redundant () =
  let cfg =
    parse_config
      {|
node a { relation r(x: int, y: int); }
node b { relation r(x: int, y: int); }
node c { relation r(x: int, y: int); }
rule rb at a: r(x, y) <- b: r(x, y);
rule rc at a: r(x, y) <- c: r(x, y);
|}
  in
  Alcotest.(check int) "sources differ" 0 (List.length (Analysis.redundant_rules cfg))

let test_comparisons_conservative () =
  (* the filtered rule is genuinely contained in the broad one, and
     the conservative test must still detect this direction while not
     claiming the converse *)
  let cfg =
    cfg_of
      {|
rule broad at a: r(x, y) <- b: r(x, y);
rule filtered at a: r(x, y) <- b: r(x, y), x > 5;
|}
  in
  match Analysis.redundant_rules cfg with
  | [ { Analysis.redundant; _ } ] ->
      Alcotest.(check string) "filtered redundant" "filtered" redundant.Config.rule_id
  | other -> Alcotest.failf "expected one redundancy, got %d" (List.length other)

let test_minimised_network_same_fixpoint () =
  let text =
    base_nodes
    ^ {|
rule broad at a: r(x, y) <- b: r(x, y);
rule narrow at a: r(x, y) <- b: r(x, y), s(y, z);
|}
  in
  let with_facts =
    parse_config
      (String.concat "\n"
         [
           "node a { relation r(x: int, y: int); }";
           "node b { relation r(x: int, y: int); relation s(y: int, z: int);";
           "  fact r(1, 10); fact r(2, 20); fact s(10, 7); }";
           "rule broad at a: r(x, y) <- b: r(x, y);";
           "rule narrow at a: r(x, y) <- b: r(x, y), s(y, z);";
         ])
  in
  ignore text;
  let sys_full = Codb_core.System.build_exn with_facts in
  let _ = Codb_core.System.run_update sys_full ~initiator:"a" in
  let sys_min = Codb_core.System.build_exn (Analysis.minimise with_facts) in
  let _ = Codb_core.System.run_update sys_min ~initiator:"a" in
  let q = parse_query "q(x, y) <- r(x, y)" in
  check_tuples "same materialisation"
    (Codb_core.System.local_answers sys_full ~at:"a" q)
    (Codb_core.System.local_answers sys_min ~at:"a" q)

let ring_cfg () =
  parse_config
    {|
node a { relation r(x: int); }
node b { relation r(x: int); }
node c { relation r(x: int); }
rule ab at a: r(x) <- b: r(x);
rule bc at b: r(x) <- c: r(x);
rule ca at c: r(x) <- a: r(x);
|}

let test_dependency_edges_ring () =
  let edges = Analysis.dependency_edges (ring_cfg ()) in
  Alcotest.(check int) "three edges" 3 (List.length edges);
  Alcotest.(check bool) "ab feeds ca" true (List.mem ("ab", "ca") edges);
  Alcotest.(check bool) "bc feeds ab" true (List.mem ("bc", "ab") edges);
  Alcotest.(check bool) "ca feeds bc" true (List.mem ("ca", "bc") edges)

let test_cyclic_components_ring () =
  match Analysis.cyclic_components (ring_cfg ()) with
  | [ component ] ->
      Alcotest.(check (list string)) "the whole ring" [ "ab"; "bc"; "ca" ] component
  | other -> Alcotest.failf "expected one component, got %d" (List.length other)

let test_cyclic_components_chain_empty () =
  let cfg =
    parse_config
      {|
node a { relation r(x: int); }
node b { relation r(x: int); }
node c { relation r(x: int); }
rule ab at a: r(x) <- b: r(x);
rule bc at b: r(x) <- c: r(x);
|}
  in
  Alcotest.(check int) "acyclic" 0 (List.length (Analysis.cyclic_components cfg));
  Alcotest.(check int) "chain edge" 1 (List.length (Analysis.dependency_edges cfg))

let test_two_node_cycle_detected () =
  let cfg =
    parse_config
      {|
node a { relation r(x: int); }
node b { relation r(x: int); }
rule ab at a: r(x) <- b: r(x);
rule ba at b: r(x) <- a: r(x);
|}
  in
  match Analysis.cyclic_components cfg with
  | [ [ "ab"; "ba" ] ] -> ()
  | other -> Alcotest.failf "unexpected components (%d)" (List.length other)

let test_independent_relations_no_dependency () =
  let cfg =
    parse_config
      {|
node a { relation r(x: int); relation s(x: int); }
node b { relation r(x: int); relation s(x: int); }
rule ab at a: r(x) <- b: r(x);
rule ba at b: s(x) <- a: s(x);
|}
  in
  (* ab writes a.r; ba reads a.s — no feeding despite the node cycle *)
  Alcotest.(check int) "no dependency edges" 0
    (List.length (Analysis.dependency_edges cfg));
  Alcotest.(check int) "no cyclic components" 0
    (List.length (Analysis.cyclic_components cfg))

let contains_sub ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop idx = idx + n <= h && (String.sub haystack idx n = needle || loop (idx + 1)) in
  n = 0 || loop 0

let test_dot_outputs () =
  let cfg = ring_cfg () in
  let topo = Codb_core.Viz.topology_dot cfg in
  Alcotest.(check bool) "digraph" true (contains_sub ~needle:"digraph codb" topo);
  Alcotest.(check bool) "edge b->a" true
    (contains_sub ~needle:"\"b\" -> \"a\" [label=\"ab\"]" topo);
  let deps = Codb_core.Viz.dependency_dot cfg in
  Alcotest.(check bool) "cyclic rules highlighted" true
    (contains_sub ~needle:"lightcoral" deps);
  Alcotest.(check bool) "dependency edge" true
    (contains_sub ~needle:"\"ab\" -> \"ca\"" deps)

let suite =
  [
    Alcotest.test_case "specialised rule is redundant" `Quick
      test_specialised_rule_redundant;
    Alcotest.test_case "dependency edges on a ring" `Quick test_dependency_edges_ring;
    Alcotest.test_case "ring is one cyclic component" `Quick test_cyclic_components_ring;
    Alcotest.test_case "chains are acyclic" `Quick test_cyclic_components_chain_empty;
    Alcotest.test_case "two-node cycle detected" `Quick test_two_node_cycle_detected;
    Alcotest.test_case "relation-level precision" `Quick
      test_independent_relations_no_dependency;
    Alcotest.test_case "DOT rendering" `Quick test_dot_outputs;
    Alcotest.test_case "equivalent rules keep exactly one" `Quick
      test_equivalent_rules_keep_one;
    Alcotest.test_case "independent rules kept" `Quick test_independent_rules_kept;
    Alcotest.test_case "different endpoints never redundant" `Quick
      test_different_endpoints_never_redundant;
    Alcotest.test_case "comparison rules handled" `Quick test_comparisons_conservative;
    Alcotest.test_case "minimised network reaches the same fix-point" `Quick
      test_minimised_network_same_fixpoint;
  ]
