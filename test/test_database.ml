open Helpers

let fresh () = Database.create [ r_schema; s_schema ]

let test_create_rejects_duplicates () =
  Alcotest.(check bool)
    "duplicate relation" true
    (try
       ignore (Database.create [ r_schema; r_schema ]);
       false
     with Invalid_argument _ -> true)

let test_lookup () =
  let db = fresh () in
  Alcotest.(check bool) "has r" true (Database.has_relation db "r");
  Alcotest.(check bool) "no t" false (Database.has_relation db "t");
  Alcotest.(check (list string)) "names in order" [ "r"; "s" ] (Database.rel_names db);
  Alcotest.check_raises "unknown relation" Not_found (fun () ->
      ignore (Database.relation db "zzz"))

let test_insert_and_cardinal () =
  let db = fresh () in
  Alcotest.(check bool) "insert" true (Database.insert db "r" (tup [ i 1; i 2 ]));
  Alcotest.(check bool) "dup" false (Database.insert db "r" (tup [ i 1; i 2 ]));
  ignore (Database.insert db "s" (tup [ i 2; s "x" ]));
  Alcotest.(check int) "total" 2 (Database.cardinal db)

let test_insert_all_delta () =
  let db = fresh () in
  ignore (Database.insert db "r" (tup [ i 1; i 1 ]));
  let fresh_tuples = Database.insert_all db "r" [ tup [ i 1; i 1 ]; tup [ i 5; i 5 ] ] in
  check_tuples "delta" [ tup [ i 5; i 5 ] ] fresh_tuples

let test_copy_deep () =
  let db = fresh () in
  ignore (Database.insert db "r" (tup [ i 1; i 1 ]));
  let db2 = Database.copy db in
  ignore (Database.insert db2 "r" (tup [ i 2; i 2 ]));
  Alcotest.(check int) "original" 1 (Database.cardinal db);
  Alcotest.(check int) "copy" 2 (Database.cardinal db2)

let test_equal_contents () =
  let db1 = fresh () and db2 = fresh () in
  ignore (Database.insert db1 "r" (tup [ i 1; i 1 ]));
  Alcotest.(check bool) "differ" false (Database.equal_contents db1 db2);
  ignore (Database.insert db2 "r" (tup [ i 1; i 1 ]));
  Alcotest.(check bool) "equal" true (Database.equal_contents db1 db2)

let test_schema_round_trip () =
  let db = fresh () in
  let schemas = Database.schema db in
  Alcotest.(check int) "two relations" 2 (List.length schemas);
  Alcotest.(check bool) "r first" true (Schema.equal (List.hd schemas) r_schema)

let test_clear () =
  let db = fresh () in
  ignore (Database.insert db "r" (tup [ i 1; i 1 ]));
  Database.clear db;
  Alcotest.(check int) "empty" 0 (Database.cardinal db)

let suite =
  [
    Alcotest.test_case "create rejects duplicates" `Quick test_create_rejects_duplicates;
    Alcotest.test_case "relation lookup" `Quick test_lookup;
    Alcotest.test_case "insert and cardinal" `Quick test_insert_and_cardinal;
    Alcotest.test_case "insert_all returns delta" `Quick test_insert_all_delta;
    Alcotest.test_case "copy is deep" `Quick test_copy_deep;
    Alcotest.test_case "equal_contents" `Quick test_equal_contents;
    Alcotest.test_case "schema round trip" `Quick test_schema_round_trip;
    Alcotest.test_case "clear" `Quick test_clear;
  ]
