(* Standing queries: registration and validation, incremental answer
   maintenance against from-scratch re-evaluation, push-based delivery
   to remote mirrors (with and without batching), epoch agreement with
   the one-shot query cache, crash teardown / restart re-arm, and the
   qcheck equivalence property across the ablation corners and under
   chaos. *)

open Helpers
module Q2 = QCheck2
module Gen = QCheck2.Gen
module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Stats = Codb_core.Stats
module Node = Codb_core.Node
module Sub = Codb_sub.Subscription
module Mirror = Codb_sub.Mirror
module Qcache = Codb_cache.Qcache
module Datagen = Codb_workload.Datagen

let sub_opts ?(base = Options.default) ?(window = 0.0) ?(naive = false)
    ?(limit = 64) () =
  {
    base with
    Options.subscriptions = true;
    sub_batch_window = window;
    sub_naive = naive;
    max_subscriptions = limit;
  }

let chain ?(seed = 5) n = Topology.generate ~seed Topology.Chain ~n

let q_all = "o(k, v) <- data(k, v)"

let q_selective = "o(v) <- data(2, v)"

let sub_stats sys name = Stats.sub (System.node sys name).Node.stats

let answers_of sys ~at id =
  match System.subscription_answers sys ~at id with
  | Some ts -> ts
  | None -> Alcotest.failf "subscription %s unknown at %s" id at

let check_tracks sys ~at id query msg =
  check_tuples msg
    (System.local_answers sys ~at (parse_query query))
    (answers_of sys ~at id)

(* --- registration ---------------------------------------------------- *)

let test_disabled_by_default () =
  let sys = System.build_exn (chain 2) in
  (match System.subscribe sys ~at:"n0" (parse_query q_all) with
  | Ok _ -> Alcotest.fail "subscribe accepted with subscriptions off"
  | Error e -> Alcotest.(check bool) "says disabled" true
      (String.length e > 0));
  let _ = System.run_update sys ~initiator:"n0" in
  List.iter
    (fun snap ->
      Alcotest.(check bool) "sub counters untouched when off" true
        (Stats.sub_snap_is_zero snap.Stats.snap_sub))
    (System.snapshots sys)

let test_register_seeds_and_unregister () =
  let sys = System.build_exn ~opts:(sub_opts ()) (chain 2) in
  let seed = ref [] in
  let id =
    match
      System.subscribe sys ~at:"n0" (parse_query q_all) ~on_delta:(fun d ->
          seed := d.Sub.d_adds @ !seed)
    with
    | Ok id -> id
    | Error e -> Alcotest.failf "subscribe: %s" e
  in
  check_tuples "seed delta = current answers" (System.local_answers sys ~at:"n0" (parse_query q_all)) !seed;
  check_tracks sys ~at:"n0" id q_all "registry answers match";
  Alcotest.(check bool) "unregister" true (System.unsubscribe sys ~at:"n0" id);
  Alcotest.(check bool) "gone" true (System.subscription_answers sys ~at:"n0" id = None);
  Alcotest.(check bool) "second unregister is false" false
    (System.unsubscribe sys ~at:"n0" id)

let test_validation () =
  let sys = System.build_exn ~opts:(sub_opts ~limit:1 ()) (chain 2) in
  (match System.subscribe sys ~at:"n0" (parse_query "o(x) <- nosuch(x)") with
  | Ok _ -> Alcotest.fail "unknown relation accepted"
  | Error e -> Alcotest.(check bool) "names the relation" true
      (String.length e > 0 && String.sub e 0 7 = "unknown"));
  (match System.subscribe sys ~at:"n0" (parse_query "o(k, w) <- data(k, v)") with
  | Ok _ -> Alcotest.fail "existential head accepted"
  | Error _ -> ());
  (match System.subscribe sys ~at:"n0" (parse_query q_all) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first subscribe: %s" e);
  (match System.subscribe sys ~at:"n0" (parse_query q_selective) with
  | Ok _ -> Alcotest.fail "limit not enforced"
  | Error _ -> ());
  let sb = sub_stats sys "n0" in
  Alcotest.(check int) "one registered" 1 sb.Stats.sb_registered;
  Alcotest.(check int) "three rejected" 3 sb.Stats.sb_rejected

(* --- incremental maintenance ----------------------------------------- *)

let test_incremental_tracks_updates () =
  let sys = System.build_exn ~opts:(sub_opts ()) (chain 4) in
  let deltas = ref 0 in
  let id =
    match
      System.subscribe sys ~at:"n0" (parse_query q_all) ~on_delta:(fun _ ->
          incr deltas)
    with
    | Ok id -> id
    | Error e -> Alcotest.failf "subscribe: %s" e
  in
  let before = List.length (answers_of sys ~at:"n0" id) in
  let _ = System.run_update sys ~initiator:"n0" in
  check_tracks sys ~at:"n0" id q_all "after a global update";
  Alcotest.(check bool) "the update grew the answer set" true
    (List.length (answers_of sys ~at:"n0" id) > before);
  ignore (System.insert_fact sys ~at:"n0" ~rel:"data" (tup [ i 901; s "w1" ]));
  check_tracks sys ~at:"n0" id q_all "after a local write";
  Alcotest.(check bool) "deltas were pushed, not re-seeded" true (!deltas >= 2);
  let sb = sub_stats sys "n0" in
  Alcotest.(check bool) "store deltas consumed" true (sb.Stats.sb_deltas_in > 0);
  Alcotest.(check bool) "evaluator work accounted" true (sb.Stats.sb_probes + sb.Stats.sb_scans > 0)

let test_import_reseeds () =
  let sys = System.build_exn ~opts:(sub_opts ()) (chain 3) in
  let _ = System.run_update sys ~initiator:"n0" in
  let dumps = System.export_stores sys in
  let sys' = System.build_exn ~opts:(sub_opts ()) (chain ~seed:99 3) in
  let id =
    match System.subscribe sys' ~at:"n0" (parse_query q_all) with
    | Ok id -> id
    | Error e -> Alcotest.failf "subscribe: %s" e
  in
  let _ = System.import_stores sys' dumps in
  check_tracks sys' ~at:"n0" id q_all "bulk import re-seeds the answers"

(* --- remote push ------------------------------------------------------ *)

let remote_pair ?(window = 0.0) ?base () =
  let sys = System.build_exn ~opts:(sub_opts ?base ~window ()) (chain 3) in
  let id =
    match System.subscribe_remote sys ~subscriber:"n1" ~host:"n0" (parse_query q_all) with
    | Ok id -> id
    | Error e -> Alcotest.failf "subscribe_remote: %s" e
  in
  let _ = System.run sys in
  (sys, id)

let mirror_of sys ~at id =
  match System.mirror sys ~at id with
  | Some m -> m
  | None -> Alcotest.failf "no mirror %s at %s" id at

let test_remote_push () =
  let sys, id = remote_pair () in
  let m = mirror_of sys ~at:"n1" id in
  Alcotest.(check bool) "registration accepted" true (Mirror.accepted m);
  check_tuples "seed snapshot arrived"
    (System.local_answers sys ~at:"n0" (parse_query q_all))
    (Mirror.answers m);
  ignore (System.insert_fact sys ~at:"n0" ~rel:"data" (tup [ i 902; s "w2" ]));
  let _ = System.run sys in
  check_tuples "pushed delta applied"
    (System.local_answers sys ~at:"n0" (parse_query q_all))
    (Mirror.answers m);
  let _ = System.run_update sys ~initiator:"n0" in
  check_tuples "update deltas streamed to the mirror"
    (System.local_answers sys ~at:"n0" (parse_query q_all))
    (Mirror.answers m);
  Alcotest.(check bool) "several deltas arrived" true (Mirror.deltas m >= 2);
  Alcotest.(check bool) "unsubscribe" true (System.unsubscribe_remote sys ~subscriber:"n1" id);
  let _ = System.run sys in
  Alcotest.(check int) "host forgot the subscription" 1
    (sub_stats sys "n0").Stats.sb_unregistered

let test_refused_registration_marks_mirror () =
  (* the host refuses (unknown relation in the query body): the mirror
     must learn the verdict and the reason, not hang half-armed *)
  let sys = System.build_exn ~opts:(sub_opts ()) (chain 2) in
  let id =
    match
      System.subscribe_remote sys ~subscriber:"n1" ~host:"n0"
        (parse_query "o(x) <- nosuch(x)")
    with
    | Ok id -> id
    | Error e -> Alcotest.failf "subscribe_remote: %s" e
  in
  let _ = System.run sys in
  let m = mirror_of sys ~at:"n1" id in
  Alcotest.(check bool) "refused" false (Mirror.accepted m);
  Alcotest.(check bool) "reason recorded" true (Mirror.rejected m <> None)

let test_batching_coalesces_pushes () =
  let push_msgs window =
    let sys, id = remote_pair ~window () in
    List.iteri
      (fun k v ->
        ignore
          (System.insert_fact sys ~at:"n0" ~rel:"data" (tup [ i (910 + k); s v ])))
      [ "a"; "b"; "c"; "d" ];
    let _ = System.run sys in
    check_tuples "mirror converged"
      (System.local_answers sys ~at:"n0" (parse_query q_all))
      (Mirror.answers (mirror_of sys ~at:"n1" id));
    (sub_stats sys "n0").Stats.sb_push_msgs
  in
  let unbatched = push_msgs 0.0 in
  let batched = push_msgs (10.0 *. Options.default.Options.latency) in
  Alcotest.(check bool)
    (Printf.sprintf "fewer push messages (%d -> %d)" unbatched batched)
    true
    (batched < unbatched)

(* --- epoch agreement with the one-shot query cache -------------------- *)

let test_cache_epoch_agreement_host () =
  let opts = sub_opts ~base:{ Options.default with Options.use_query_cache = true } () in
  let sys = System.build_exn ~opts (chain 2) in
  let n0 = System.node sys "n0" in
  let cache = Option.get n0.Node.cache in
  let q = parse_query q_all in
  let inside_hit = ref true in
  let fired = ref 0 in
  (match
     System.subscribe sys ~at:"n0" q ~on_delta:(fun d ->
         if d.Sub.d_tag = "local-write" then begin
           incr fired;
           (* a one-shot query issued the instant the delta is
              delivered must not be served the pre-delta answers *)
           inside_hit := Qcache.lookup cache ~now:(System.now sys) q <> None
         end)
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "subscribe: %s" e);
  Qcache.store cache ~now:(System.now sys) q
    (System.local_answers sys ~at:"n0" q)
    ~sources:[ n0.Node.node_id ];
  Alcotest.(check bool) "entry hits before the delta" true
    (Qcache.lookup cache ~now:(System.now sys) q <> None);
  ignore (System.insert_fact sys ~at:"n0" ~rel:"data" (tup [ i 903; s "w3" ]));
  Alcotest.(check int) "delta delivered" 1 !fired;
  Alcotest.(check bool) "stale answers not served inside the delivery" false
    !inside_hit;
  (* mid-update deltas: the update protocol only stales epochs at
     finalization, so the subscription delivery must do it itself *)
  Qcache.store cache ~now:(System.now sys) q
    (System.local_answers sys ~at:"n0" q)
    ~sources:[ n0.Node.node_id ];
  let _ = System.run_update sys ~initiator:"n0" in
  Alcotest.(check bool) "mid-update staling counted" true
    ((sub_stats sys "n0").Stats.sb_cache_staled > 0)

let test_cache_epoch_agreement_subscriber () =
  let base = { Options.default with Options.use_query_cache = true } in
  let sys, _id = remote_pair ~base () in
  let n1 = System.node sys "n1" in
  let cache = Option.get n1.Node.cache in
  let q = parse_query q_all in
  Qcache.store cache ~now:(System.now sys) q
    (System.local_answers sys ~at:"n0" q)
    ~sources:[ (System.node sys "n0").Node.node_id ];
  Alcotest.(check bool) "entry hits before the push" true
    (Qcache.lookup cache ~now:(System.now sys) q <> None);
  ignore (System.insert_fact sys ~at:"n0" ~rel:"data" (tup [ i 904; s "w4" ]));
  let _ = System.run sys in
  Alcotest.(check bool) "pushed delta staled the cached one-shot answer" true
    (Qcache.lookup cache ~now:(System.now sys) q = None)

(* --- crash / restart -------------------------------------------------- *)

let test_crash_tears_down_restart_rearms () =
  let sys, id = remote_pair () in
  System.crash_node sys "n0";
  Alcotest.(check bool) "host registry torn down" true
    ((sub_stats sys "n0").Stats.sb_torn_down > 0);
  Alcotest.(check bool) "mirror survives at the subscriber" true
    (System.mirror sys ~at:"n1" id <> None);
  System.restart_node sys "n0";
  let _ = System.run sys in
  Alcotest.(check bool) "subscriber re-armed" true
    ((sub_stats sys "n1").Stats.sb_rearmed > 0);
  check_tuples "snapshot re-seeded the mirror"
    (System.local_answers sys ~at:"n0" (parse_query q_all))
    (Mirror.answers (mirror_of sys ~at:"n1" id));
  (* and the re-armed subscription is live again *)
  ignore (System.insert_fact sys ~at:"n0" ~rel:"data" (tup [ i 905; s "w5" ]));
  let _ = System.run sys in
  check_tuples "deltas flow after the re-arm"
    (System.local_answers sys ~at:"n0" (parse_query q_all))
    (Mirror.answers (mirror_of sys ~at:"n1" id))

let test_subscriber_crash_forgets_mirrors () =
  let sys, id = remote_pair () in
  System.crash_node sys "n1";
  Alcotest.(check bool) "mirror gone" true (System.mirror sys ~at:"n1" id = None);
  System.restart_node sys "n1";
  (* pushes to the forgotten id must be ignored, not crash *)
  ignore (System.insert_fact sys ~at:"n0" ~rel:"data" (tup [ i 906; s "w6" ]));
  let _ = System.run sys in
  Alcotest.(check bool) "still no mirror" true (System.mirror sys ~at:"n1" id = None)

(* --- naive baseline --------------------------------------------------- *)

(* a single-atom query costs the same scan either way, so measure on a
   self-join, where naive re-evaluation probes the entire relation on
   every store change while the delta pass probes only the delta *)
let q_join = "o(k, v, w) <- data(k, v), data(k, w)"

let test_naive_same_answers_more_probes () =
  let run naive =
    let sys = System.build_exn ~opts:(sub_opts ~naive ()) (chain 4) in
    let id =
      match System.subscribe sys ~at:"n0" (parse_query q_join) with
      | Ok id -> id
      | Error e -> Alcotest.failf "subscribe: %s" e
    in
    let _ = System.run_update sys ~initiator:"n0" in
    check_tracks sys ~at:"n0" id q_join "answers correct";
    let r = Report.sub_report (System.snapshots sys) in
    (sorted_tuples (answers_of sys ~at:"n0" id), r.Report.sr_probes + r.Report.sr_scans)
  in
  let incr_answers, incr_cost = run false in
  let naive_answers, naive_cost = run true in
  check_tuples "naive = incremental answers" incr_answers naive_answers;
  Alcotest.(check bool)
    (Printf.sprintf "incremental does less evaluator work (%d vs %d)" incr_cost
       naive_cost)
    true (incr_cost < naive_cost)

(* --- equivalence property --------------------------------------------- *)

(* At every quiescent point, the incrementally maintained answer set
   (host registry and remote mirror alike) must equal a from-scratch
   re-evaluation of the query over the host's store — across the
   pushdown/planner/batching/naive corners, and under seeded
   drop/dup/crash chaos (retried transport keeps delivery exact). *)
let gen_sub_case =
  let open Gen in
  let* shape =
    oneofl [ Topology.Chain; Topology.Ring; Topology.Star_in; Topology.Binary_tree ]
  in
  let* n = int_range 2 4 in
  let* seed = int_range 0 10000 in
  let* corner = oneofl [ `Plain; `Pushdown; `No_planner; `Batched; `Naive ] in
  let* chaos = bool in
  let* crash = bool in
  return (shape, n, seed, corner, chaos, crash)

let corner_opts corner chaos =
  let base =
    match corner with
    | `Plain -> sub_opts ()
    | `Pushdown -> sub_opts ~base:{ Options.default with Options.pushdown = true } ()
    | `No_planner -> sub_opts ~base:{ Options.default with Options.planner = false } ()
    | `Batched -> sub_opts ~window:(5.0 *. Options.default.Options.latency) ()
    | `Naive -> sub_opts ~naive:true ()
  in
  if not chaos then base
  else
    {
      base with
      Options.fault_seed = 7;
      drop_prob = 0.2;
      dup_prob = 0.1;
      jitter = 0.002;
      drop_budget = 4;
      ack_timeout = 0.05;
      max_retries = 6;
    }

let prop_incremental_equals_scratch =
  Q2.Test.make
    ~name:"standing answers = from-scratch re-evaluation at quiescence" ~count:25
    gen_sub_case
    (fun (shape, n, seed, corner, chaos, crash) ->
      let opts = corner_opts corner chaos in
      let params =
        { Topology.default_params with
          Topology.tuples_per_node = 6;
          profile = { Datagen.domain_size = 10; skew = 0.5 } }
      in
      let sys = System.build_exn ~opts (Topology.generate ~params ~seed shape ~n) in
      let queries = [ q_all; q_selective ] in
      let subscribe_all () =
        List.map
          (fun q ->
            match System.subscribe sys ~at:"n0" (parse_query q) with
            | Ok id -> (id, q)
            | Error e -> Alcotest.failf "subscribe: %s" e)
          queries
      in
      let locals = ref (subscribe_all ()) in
      let remote =
        match
          System.subscribe_remote sys ~subscriber:"n1" ~host:"n0"
            (parse_query q_all)
        with
        | Ok id -> id
        | Error e -> Alcotest.failf "subscribe_remote: %s" e
      in
      let _ = System.run sys in
      let agree () =
        List.for_all
          (fun (id, q) ->
            sorted_tuples (System.local_answers sys ~at:"n0" (parse_query q))
            = sorted_tuples (answers_of sys ~at:"n0" id))
          !locals
        && sorted_tuples (System.local_answers sys ~at:"n0" (parse_query q_all))
           = sorted_tuples
               (Mirror.answers
                  (Option.get (System.mirror sys ~at:"n1" remote)))
      in
      let ok = ref (agree ()) in
      List.iteri
        (fun round (k, v) ->
          let at = Topology.node_name (round mod n) in
          ignore (System.insert_fact sys ~at ~rel:"data" (tup [ i k; s v ]));
          let _ = System.run_update sys ~initiator:"n0" in
          if crash && round = 1 then begin
            (* the host loses all volatile subscription state; its
               local clients re-subscribe, remote mirrors re-arm *)
            System.crash_node sys "n0";
            System.restart_node sys "n0";
            locals := subscribe_all ();
            let _ = System.run sys in
            ()
          end;
          ok := !ok && agree ())
        [ (991, "x1"); (992, "x2"); (993, "x3") ];
      !ok)

let suite =
  [
    Alcotest.test_case "disabled by default" `Quick test_disabled_by_default;
    Alcotest.test_case "register seeds and unregister" `Quick
      test_register_seeds_and_unregister;
    Alcotest.test_case "validation and limits" `Quick test_validation;
    Alcotest.test_case "incremental maintenance tracks updates" `Quick
      test_incremental_tracks_updates;
    Alcotest.test_case "bulk import re-seeds" `Quick test_import_reseeds;
    Alcotest.test_case "remote push keeps the mirror current" `Quick
      test_remote_push;
    Alcotest.test_case "remote registration outcome reaches the mirror" `Quick
      test_refused_registration_marks_mirror;
    Alcotest.test_case "batch window coalesces pushes" `Quick
      test_batching_coalesces_pushes;
    Alcotest.test_case "cache epoch agreement at the host" `Quick
      test_cache_epoch_agreement_host;
    Alcotest.test_case "cache epoch agreement at the subscriber" `Quick
      test_cache_epoch_agreement_subscriber;
    Alcotest.test_case "crash tears down, restart re-arms" `Quick
      test_crash_tears_down_restart_rearms;
    Alcotest.test_case "subscriber crash forgets mirrors" `Quick
      test_subscriber_crash_forgets_mirrors;
    Alcotest.test_case "naive baseline: same answers, more work" `Quick
      test_naive_same_answers_more_probes;
    QCheck_alcotest.to_alcotest prop_incremental_equals_scratch;
  ]
