open Helpers
module Specialize = Codb_cq.Specialize

(* shorthands *)
let col n = Specialize.Col n

let cst value = Specialize.Const value

let pred l op r = { Specialize.p_left = l; p_op = op; p_right = r }

let one_of alts = Specialize.One_of alts

let spec_testable : Specialize.t Alcotest.testable =
  Alcotest.testable Specialize.pp Specialize.equal

(* --- of_query: what a requesting query pushes onto a relation ------- *)

let test_of_query_constants () =
  let q = parse_query "ans(y) <- r(1, y)" in
  Alcotest.check spec_testable "constant binds its column"
    (one_of [ [ pred (col 0) Query.Eq (cst (i 1)) ] ])
    (Specialize.of_query q ~rel:"r")

let test_of_query_repeated_vars () =
  let q = parse_query "ans(x) <- r(x, x)" in
  Alcotest.check spec_testable "repeated variable equates its columns"
    (one_of [ [ pred (col 0) Query.Eq (col 1) ] ])
    (Specialize.of_query q ~rel:"r")

let test_of_query_comparisons () =
  let q = parse_query "ans(x, y) <- r(x, y), x < 5" in
  Alcotest.check spec_testable "comparison maps through the atom"
    (one_of [ [ pred (col 0) Query.Lt (cst (i 5)) ] ])
    (Specialize.of_query q ~rel:"r")

let test_of_query_cross_atom_comparison_unpushable () =
  (* y lives in s, not r: the comparison cannot restrict r alone *)
  let q = parse_query "ans(x) <- r(x, z), s(z, y), x < y" in
  Alcotest.check spec_testable "cross-atom comparison is dropped" Specialize.any
    (Specialize.of_query q ~rel:"r")

let test_of_query_unconstrained_is_any () =
  let q = parse_query "ans(x, y) <- r(x, y)" in
  Alcotest.check spec_testable "open atom pushes nothing" Specialize.any
    (Specialize.of_query q ~rel:"r");
  Alcotest.check spec_testable "absent relation pushes nothing" Specialize.any
    (Specialize.of_query q ~rel:"s")

let test_of_query_two_atoms_disjoin () =
  (* either occurrence of r may supply a tuple: the pushed constraint
     is the disjunction, and an unconstrained occurrence collapses the
     whole thing to Any *)
  let q = parse_query "ans(x, y) <- r(1, x), r(y, 2)" in
  (match Specialize.of_query q ~rel:"r" with
  | Specialize.One_of [ _; _ ] -> ()
  | other -> Alcotest.failf "expected two alternatives, got %s" (Specialize.to_string other));
  let q_open = parse_query "ans(x, y, z) <- r(1, x), r(y, z)" in
  Alcotest.check spec_testable "open second occurrence collapses to Any" Specialize.any
    (Specialize.of_query q_open ~rel:"r")

let test_of_query_max_preds () =
  let q = parse_query "ans(y) <- r(1, y), y < 9, y > 0" in
  (match Specialize.of_query q ~rel:"r" with
  | Specialize.One_of [ [ _; _; _ ] ] -> ()
  | other -> Alcotest.failf "expected three predicates, got %s" (Specialize.to_string other));
  Alcotest.check spec_testable "budget exceeded degrades to Any" Specialize.any
    (Specialize.of_query ~max_preds:2 q ~rel:"r")

(* --- matches: requester-faithful filtering -------------------------- *)

let test_matches_semantics () =
  let c = one_of [ [ pred (col 0) Query.Eq (cst (i 1)) ] ] in
  Alcotest.(check bool) "match" true (Specialize.matches c (tup [ i 1; i 9 ]));
  Alcotest.(check bool) "no match" false (Specialize.matches c (tup [ i 2; i 9 ]));
  Alcotest.(check bool) "any matches" true
    (Specialize.matches Specialize.any (tup [ i 2; i 9 ]))

let test_matches_holes_like_fresh_nulls () =
  (* a hole becomes a fresh null at the requester: Eq-to-constant is
     false, Neq is true, order comparisons are false *)
  let hole = Value.Hole 0 in
  let eq = one_of [ [ pred (col 0) Query.Eq (cst (i 1)) ] ] in
  let neq = one_of [ [ pred (col 0) Query.Neq (cst (i 1)) ] ] in
  let lt = one_of [ [ pred (col 0) Query.Lt (cst (i 1)) ] ] in
  Alcotest.(check bool) "hole = const is false" false
    (Specialize.matches eq (tup [ hole; i 9 ]));
  Alcotest.(check bool) "hole <> const is true" true
    (Specialize.matches neq (tup [ hole; i 9 ]));
  Alcotest.(check bool) "hole < const is false" false
    (Specialize.matches lt (tup [ hole; i 9 ]));
  (* the same hole index co-refers within one tuple *)
  let self_eq = one_of [ [ pred (col 0) Query.Eq (col 1) ] ] in
  Alcotest.(check bool) "same hole equals itself" true
    (Specialize.matches self_eq (tup [ hole; hole ]));
  Alcotest.(check bool) "distinct holes differ" false
    (Specialize.matches self_eq (tup [ hole; Value.Hole 1 ]))

let test_matches_disjunction () =
  let c =
    one_of
      [
        [ pred (col 0) Query.Eq (cst (i 1)) ];
        [ pred (col 1) Query.Eq (cst (i 2)) ];
      ]
  in
  Alcotest.(check bool) "first alt" true (Specialize.matches c (tup [ i 1; i 9 ]));
  Alcotest.(check bool) "second alt" true (Specialize.matches c (tup [ i 9; i 2 ]));
  Alcotest.(check bool) "neither" false (Specialize.matches c (tup [ i 9; i 9 ]))

(* --- specialize_rule: folding constraints into a rule body ---------- *)

let test_specialize_binds_constants () =
  let rule = parse_query "head(x, y) <- r(x, z), s(z, y)" in
  let c = one_of [ [ pred (col 0) Query.Eq (cst (i 7)) ] ] in
  match Specialize.specialize_rule c rule with
  | `Specialized q ->
      Alcotest.(check string)
        "x is bound everywhere" "head(7, y) <- r(7, z), s(z, y)" (Query.to_string q)
  | `Unchanged -> Alcotest.fail "expected specialization"
  | `Unsatisfiable -> Alcotest.fail "satisfiable constraint"

let test_specialize_adds_comparisons () =
  let rule = parse_query "head(x, y) <- r(x, z), s(z, y)" in
  let c = one_of [ [ pred (col 0) Query.Lt (cst (i 7)) ] ] in
  match Specialize.specialize_rule c rule with
  | `Specialized q ->
      Alcotest.(check int) "one derived comparison" 1 (List.length q.Query.comparisons)
  | `Unchanged -> Alcotest.fail "expected specialization"
  | `Unsatisfiable -> Alcotest.fail "satisfiable constraint"

let test_specialize_existential_head_decided () =
  (* z is existential: every head tuple carries a fresh null at column
     1, so an [=] there can never hold — the whole rule is refuted and
     need not run at all *)
  let rule = parse_query "head(x, z) <- r(x, y)" in
  let c = one_of [ [ pred (col 1) Query.Eq (cst (i 7)) ] ] in
  (match Specialize.specialize_rule c rule with
  | `Unsatisfiable -> ()
  | `Specialized q -> Alcotest.failf "pushed through an existential: %s" (Query.to_string q)
  | `Unchanged -> Alcotest.fail "= against a fresh null refutes the rule");
  (* order comparisons against a fresh null are unknown-false: refuted *)
  let c_lt = one_of [ [ pred (col 1) Query.Lt (cst (i 7)) ] ] in
  (match Specialize.specialize_rule c_lt rule with
  | `Unsatisfiable -> ()
  | `Specialized _ | `Unchanged -> Alcotest.fail "< against a fresh null refutes the rule");
  (* != against a fresh null is trivially true: the predicate drops,
     leaving nothing to fold *)
  let c_neq = one_of [ [ pred (col 1) Query.Neq (cst (i 7)) ] ] in
  (match Specialize.specialize_rule c_neq rule with
  | `Unchanged -> ()
  | `Specialized q -> Alcotest.failf "!= null folded something: %s" (Query.to_string q)
  | `Unsatisfiable -> Alcotest.fail "!= against a fresh null is trivially true");
  (* mixed: the pushable column folds, the trivially-true one drops *)
  let c2 =
    one_of
      [ [ pred (col 0) Query.Eq (cst (i 3)); pred (col 1) Query.Neq (cst (i 7)) ] ]
  in
  match Specialize.specialize_rule c2 rule with
  | `Specialized q ->
      Alcotest.(check string) "only x folds" "head(3, z) <- r(3, y)" (Query.to_string q)
  | `Unchanged -> Alcotest.fail "expected partial specialization"
  | `Unsatisfiable -> Alcotest.fail "satisfiable constraint"

let test_specialize_existential_pairs () =
  (* the same existential variable twice mints one null per tuple:
     col0 = col1 is trivially true, col0 != col1 refutes *)
  let rule = parse_query "head(z, z) <- r(x, y)" in
  let c_eq = one_of [ [ pred (col 0) Query.Eq (col 1) ] ] in
  (match Specialize.specialize_rule c_eq rule with
  | `Unchanged -> ()
  | `Specialized _ | `Unsatisfiable -> Alcotest.fail "same hole co-refers: = is trivial");
  let c_neq = one_of [ [ pred (col 0) Query.Neq (col 1) ] ] in
  (match Specialize.specialize_rule c_neq rule with
  | `Unsatisfiable -> ()
  | `Specialized _ | `Unchanged -> Alcotest.fail "same hole co-refers: != refutes");
  (* distinct existential variables mint distinct nulls *)
  let rule2 = parse_query "head(w, z) <- r(x, y)" in
  (match Specialize.specialize_rule c_eq rule2 with
  | `Unsatisfiable -> ()
  | `Specialized _ | `Unchanged -> Alcotest.fail "distinct holes differ: = refutes");
  match Specialize.specialize_rule c_neq rule2 with
  | `Unchanged -> ()
  | `Specialized _ | `Unsatisfiable -> Alcotest.fail "distinct holes differ: != is trivial"

let test_specialize_contradiction_unsatisfiable () =
  let rule = parse_query "head(x, y) <- r(x, y)" in
  let c =
    one_of
      [ [ pred (col 0) Query.Eq (cst (i 1)); pred (col 0) Query.Eq (cst (i 2)) ] ]
  in
  (match Specialize.specialize_rule c rule with
  | `Unsatisfiable -> ()
  | `Specialized _ | `Unchanged -> Alcotest.fail "x = 1 and x = 2 cannot both hold");
  (* a head constant refuted by the constraint *)
  let rule2 = parse_query "head(5, y) <- r(y)" in
  let c2 = one_of [ [ pred (col 0) Query.Eq (cst (i 6)) ] ] in
  match Specialize.specialize_rule c2 rule2 with
  | `Unsatisfiable -> ()
  | `Specialized _ | `Unchanged -> Alcotest.fail "head says 5, constraint says 6"

let test_specialize_repeated_head_var () =
  (* head(x, x): a constant on either column binds x *)
  let rule = parse_query "head(x, x) <- r(x, y)" in
  let c = one_of [ [ pred (col 1) Query.Eq (cst (i 4)) ] ] in
  match Specialize.specialize_rule c rule with
  | `Specialized q ->
      Alcotest.(check string) "bound via second column" "head(4, 4) <- r(4, y)"
        (Query.to_string q)
  | `Unchanged -> Alcotest.fail "expected specialization"
  | `Unsatisfiable -> Alcotest.fail "satisfiable constraint"

let test_specialize_disjunction_unchanged () =
  let rule = parse_query "head(x, y) <- r(x, y)" in
  let c =
    one_of
      [
        [ pred (col 0) Query.Eq (cst (i 1)) ];
        [ pred (col 0) Query.Eq (cst (i 2)) ];
      ]
  in
  match Specialize.specialize_rule c rule with
  | `Unchanged -> ()
  | `Specialized q -> Alcotest.failf "folded a disjunction: %s" (Query.to_string q)
  | `Unsatisfiable -> Alcotest.fail "satisfiable constraint"

let test_specialize_any_unchanged () =
  let rule = parse_query "head(x, y) <- r(x, y)" in
  match Specialize.specialize_rule Specialize.any rule with
  | `Unchanged -> ()
  | `Specialized _ | `Unsatisfiable -> Alcotest.fail "Any never specializes"

(* --- subsumes: rule-cache containment ------------------------------- *)

let test_subsumes () =
  let p1 = pred (col 0) Query.Eq (cst (i 1)) in
  let p2 = pred (col 1) Query.Lt (cst (i 9)) in
  Alcotest.(check bool) "Any serves everything" true
    (Specialize.subsumes Specialize.any (one_of [ [ p1 ] ]));
  Alcotest.(check bool) "weaker serves stronger" true
    (Specialize.subsumes (one_of [ [ p1 ] ]) (one_of [ [ p1; p2 ] ]));
  Alcotest.(check bool) "stronger cannot serve weaker" false
    (Specialize.subsumes (one_of [ [ p1; p2 ] ]) (one_of [ [ p1 ] ]));
  Alcotest.(check bool) "constrained cannot serve Any" false
    (Specialize.subsumes (one_of [ [ p1 ] ]) Specialize.any);
  Alcotest.(check bool) "reflexive" true
    (Specialize.subsumes (one_of [ [ p1; p2 ] ]) (one_of [ [ p2; p1 ] ]))

let test_normalize_and_key () =
  let p1 = pred (col 0) Query.Eq (cst (i 1)) in
  let p2 = pred (col 1) Query.Lt (cst (i 9)) in
  Alcotest.(check string)
    "key is order-insensitive"
    (Specialize.to_key (one_of [ [ p1; p2 ] ]))
    (Specialize.to_key (one_of [ [ p2; p1; p1 ] ]));
  Alcotest.check spec_testable "empty alternative collapses to Any" Specialize.any
    (Specialize.normalize (one_of [ [ p1 ]; [] ]))

let suite =
  [
    Alcotest.test_case "of_query constants" `Quick test_of_query_constants;
    Alcotest.test_case "of_query repeated vars" `Quick test_of_query_repeated_vars;
    Alcotest.test_case "of_query comparisons" `Quick test_of_query_comparisons;
    Alcotest.test_case "of_query cross-atom comparison" `Quick
      test_of_query_cross_atom_comparison_unpushable;
    Alcotest.test_case "of_query unconstrained" `Quick test_of_query_unconstrained_is_any;
    Alcotest.test_case "of_query two atoms disjoin" `Quick test_of_query_two_atoms_disjoin;
    Alcotest.test_case "of_query predicate budget" `Quick test_of_query_max_preds;
    Alcotest.test_case "matches semantics" `Quick test_matches_semantics;
    Alcotest.test_case "matches holes like fresh nulls" `Quick
      test_matches_holes_like_fresh_nulls;
    Alcotest.test_case "matches disjunction" `Quick test_matches_disjunction;
    Alcotest.test_case "specialize binds constants" `Quick test_specialize_binds_constants;
    Alcotest.test_case "specialize adds comparisons" `Quick test_specialize_adds_comparisons;
    Alcotest.test_case "specialize decides existential head" `Quick
      test_specialize_existential_head_decided;
    Alcotest.test_case "specialize existential pairs" `Quick
      test_specialize_existential_pairs;
    Alcotest.test_case "specialize contradiction" `Quick
      test_specialize_contradiction_unsatisfiable;
    Alcotest.test_case "specialize repeated head var" `Quick test_specialize_repeated_head_var;
    Alcotest.test_case "specialize disjunction unchanged" `Quick
      test_specialize_disjunction_unchanged;
    Alcotest.test_case "specialize Any unchanged" `Quick test_specialize_any_unchanged;
    Alcotest.test_case "subsumes" `Quick test_subsumes;
    Alcotest.test_case "normalize and key" `Quick test_normalize_and_key;
  ]
