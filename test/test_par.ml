(* The parallel runtime (lib/par + System's two-phase step).

   The contract under test is absolute: for any workload, any chaos
   seed and any domain count, the simulation's observable outcome —
   stores, answer digests, per-node stats, network counters, the
   message trace, even null identities — is bit-identical to the
   sequential run.  [Options.domains] is a throughput knob, never a
   semantics knob. *)

module Q2 = QCheck2
module Gen = QCheck2.Gen
module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple
module Relation = Codb_relalg.Relation
module Database = Codb_relalg.Database
module Event_queue = Codb_net.Event_queue
module Network = Codb_net.Network
module Pool = Codb_par.Pool
module Options = Codb_core.Options
module System = Codb_core.System
module Node = Codb_core.Node
module Topology = Codb_core.Topology
module Trace = Codb_core.Trace

let parse_query text =
  match Codb_cq.Parser.parse_query text with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse_query %S: %s" text e

(* ---- Pool ------------------------------------------------------------ *)

let test_pool_runs_every_job () =
  let pool = Pool.create ~domains:4 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let n = 100 in
  let results = Array.make n 0 in
  (* jobs write job-private slots: no two jobs share a cell *)
  Pool.run pool (Array.init n (fun i () -> results.(i) <- (i * i) + 1));
  Array.iteri
    (fun i got -> Alcotest.(check int) (Printf.sprintf "job %d" i) ((i * i) + 1) got)
    results

let test_pool_single_lane_is_inline_and_ordered () =
  let pool = Pool.create ~domains:1 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  Alcotest.(check int) "size" 1 (Pool.size pool);
  let order = ref [] in
  Pool.run pool (Array.init 10 (fun i () -> order := i :: !order));
  Alcotest.(check (list int)) "sequential order" (List.init 10 (fun i -> 9 - i)) !order

let test_pool_reraises_earliest_failure () =
  let pool = Pool.create ~domains:3 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let ran = Array.make 10 false in
  let job i () =
    ran.(i) <- true;
    if i = 3 then failwith "three";
    if i = 7 then failwith "seven"
  in
  (match Pool.run pool (Array.init 10 job) with
  | () -> Alcotest.fail "expected an exception"
  | exception Failure msg ->
      (* both jobs raise on every run; the barrier picks the
         smallest-indexed failure deterministically *)
      Alcotest.(check string) "earliest failure" "three" msg);
  (* the failure did not poison the pool *)
  let count = Atomic.make 0 in
  Pool.run pool (Array.init 20 (fun _ () -> Atomic.incr count));
  Alcotest.(check int) "reusable after failure" 20 (Atomic.get count)

let test_pool_is_reusable_across_batches () =
  let pool = Pool.create ~domains:2 in
  Fun.protect ~finally:(fun () -> Pool.shutdown pool) @@ fun () ->
  let count = Atomic.make 0 in
  for _ = 1 to 50 do
    Pool.run pool (Array.init 8 (fun _ () -> Atomic.incr count))
  done;
  Alcotest.(check int) "all batches ran" 400 (Atomic.get count)

let test_pool_shared_is_memoised () =
  let p1 = Pool.shared ~domains:2 in
  let p2 = Pool.shared ~domains:2 in
  Alcotest.(check bool) "same pool per lane count" true (p1 == p2);
  Alcotest.(check int) "lane count" 2 (Pool.size p1)

(* ---- Event_queue batch push ------------------------------------------ *)

let test_push_batch_keeps_list_order () =
  let q = Event_queue.create () in
  Event_queue.push_batch q ~time:1.0 [ "a"; "b"; "c" ];
  Event_queue.push q ~time:1.0 "d";
  Event_queue.push q ~time:0.5 "early";
  let pops = List.init 5 (fun _ -> Option.get (Event_queue.pop q)) in
  Alcotest.(check (list string))
    "batch seqs are contiguous, in list order"
    [ "early"; "a"; "b"; "c"; "d" ]
    (List.map snd pops);
  Alcotest.(check bool) "drained" true (Event_queue.pop q = None)

let test_peek_does_not_pop () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty peek" true (Event_queue.peek q = None);
  Event_queue.push q ~time:2.0 "late";
  Event_queue.push q ~time:1.0 "soon";
  (match Event_queue.peek q with
  | Some (t, p) ->
      Alcotest.(check (float 0.0)) "peek time" 1.0 t;
      Alcotest.(check string) "peek payload" "soon" p
  | None -> Alcotest.fail "expected an event");
  Alcotest.(check int) "still two events" 2 (Event_queue.length q)

(* ---- cross-domain bit-identity --------------------------------------- *)

(* Everything observable about one finished simulation.  Built from
   content digests (never intern-slot numbers), so two runs in the
   same process compare meaningfully. *)
type observation = {
  ob_store_digests : (string * int) list;
  ob_counters : Network.counters;
  ob_snapshots : Codb_core.Stats.snapshot list;
  ob_trace : Trace.event list;
  ob_nulls : int;
  ob_events : int;
}

let store_digest db =
  List.fold_left
    (fun h rel ->
      let tuples = ref [] in
      Relation.iter (fun t -> tuples := t :: !tuples) (Database.relation db rel);
      Tuple.digest_fold
        (String.fold_left (fun h c -> (h * 131) + Char.code c) h rel)
        (List.sort Tuple.compare !tuples))
    0
    (Database.rel_names db)

let observe sys ~trace ~events =
  {
    ob_store_digests =
      List.map
        (fun name -> (name, store_digest (System.node sys name).Node.store))
        (System.node_names sys);
    ob_counters = Network.counters (System.net sys);
    ob_snapshots = System.snapshots sys;
    ob_trace = Trace.events trace;
    ob_nulls = Value.null_counter ();
    ob_events = events;
  }

let check_observation ~what expected got =
  Alcotest.(check (list (pair string int)))
    (what ^ ": store digests") expected.ob_store_digests got.ob_store_digests;
  Alcotest.(check bool) (what ^ ": network counters") true
    (expected.ob_counters = got.ob_counters);
  Alcotest.(check bool) (what ^ ": stats snapshots") true
    (expected.ob_snapshots = got.ob_snapshots);
  Alcotest.(check bool) (what ^ ": trace") true (expected.ob_trace = got.ob_trace);
  Alcotest.(check int) (what ^ ": nulls minted") expected.ob_nulls got.ob_nulls;
  Alcotest.(check int) (what ^ ": simulator events") expected.ob_events got.ob_events

let update_run ~opts ~shape ~n ~seed ~params () =
  Value.reset_null_counter ();
  let sys = System.build_exn ~opts (Topology.generate ~params ~seed shape ~n) in
  let trace = System.enable_trace sys in
  let n0 = System.node sys "n0" in
  let uid = Codb_core.Ids.update_id n0.Node.node_id (Node.fresh_serial n0) in
  Codb_core.Update.initiate (System.runtime sys "n0") uid;
  let events = System.run sys in
  observe sys ~trace ~events

let with_domains opts domains = { opts with Options.domains; par_threshold = 2 }

let test_update_identical_across_domains () =
  let params =
    { Topology.default_params with Topology.tuples_per_node = 12; existential_frac = 0.3 }
  in
  List.iter
    (fun shape ->
      let run domains =
        update_run
          ~opts:(with_domains Options.default domains)
          ~shape ~n:6 ~seed:42 ~params ()
      in
      let expected = run 1 in
      List.iter
        (fun d -> check_observation ~what:(Printf.sprintf "domains=%d" d) expected (run d))
        [ 2; 4 ])
    [ Topology.Clique; Topology.Ring ]

let test_query_identical_across_domains () =
  let params = { Topology.default_params with Topology.tuples_per_node = 12 } in
  let q = parse_query "o(x, y) <- data(x, y), x < 5" in
  let run domains =
    Value.reset_null_counter ();
    let opts =
      { (with_domains Options.default domains) with
        Options.pushdown = true;
        planner = true;
      }
    in
    let sys =
      System.build_exn ~opts (Topology.generate ~params ~seed:77 Topology.Clique ~n:5)
    in
    let trace = System.enable_trace sys in
    let outcome = System.run_query sys ~at:"n0" q in
    (outcome.System.qo_answers, outcome.System.qo_complete, observe sys ~trace ~events:0)
  in
  let answers1, complete1, obs1 = run 1 in
  List.iter
    (fun d ->
      let answers, complete, obs = run d in
      Alcotest.(check int)
        (Printf.sprintf "domains=%d: answer digest" d)
        (Tuple.digest answers1) (Tuple.digest answers);
      Alcotest.(check bool) "complete flag" complete1 complete;
      check_observation ~what:(Printf.sprintf "query domains=%d" d) obs1 obs)
    [ 2; 4 ]

let test_subscriptions_identical_across_domains () =
  let params = { Topology.default_params with Topology.tuples_per_node = 8 } in
  let run domains =
    Value.reset_null_counter ();
    let opts =
      { (with_domains Options.default domains) with Options.subscriptions = true }
    in
    let sys =
      System.build_exn ~opts (Topology.generate ~params ~seed:9 Topology.Clique ~n:4)
    in
    let trace = System.enable_trace sys in
    let sub_id =
      match
        System.subscribe_remote sys ~subscriber:"n1" ~host:"n0"
          (parse_query "o(x, y) <- data(x, y)")
      with
      | Ok id -> id
      | Error e -> Alcotest.failf "subscribe: %s" e
    in
    let _ = System.run sys in
    let _ = System.run_update sys ~initiator:"n0" in
    let answers = Option.value ~default:[] (System.subscription_answers sys ~at:"n1" sub_id) in
    (Tuple.digest answers, observe sys ~trace ~events:0)
  in
  let digest1, obs1 = run 1 in
  List.iter
    (fun d ->
      let digest, obs = run d in
      Alcotest.(check int) (Printf.sprintf "domains=%d: mirror digest" d) digest1 digest;
      check_observation ~what:(Printf.sprintf "subs domains=%d" d) obs1 obs)
    [ 2; 4 ]

(* ---- the qcheck property: chaos seeds included ----------------------- *)

let gen_case =
  let open Gen in
  let* shape =
    oneofl [ Topology.Chain; Topology.Ring; Topology.Clique; Topology.Binary_tree ]
  in
  let* n = int_range 2 5 in
  let* seed = int_range 0 10000 in
  let* existential_frac = oneofl [ 0.0; 0.3 ] in
  let* chaos = bool in
  let* fault_seed = int_range 0 10000 in
  let params =
    { Topology.default_params with Topology.tuples_per_node = 8; existential_frac }
  in
  return (shape, n, seed, params, chaos, fault_seed)

let prop_domains_equivalent =
  Q2.Test.make
    ~name:"simulation outcomes are bit-identical at domains 1, 2 and 4" ~count:15
    gen_case
    (fun (shape, n, seed, params, chaos, fault_seed) ->
      let opts =
        if chaos then
          { Options.default with
            Options.fault_seed;
            drop_prob = 0.15;
            dup_prob = 0.1;
            jitter = 0.002;
            drop_budget = 8;
            ack_timeout = 0.05;
            max_retries = 10;
          }
        else Options.default
      in
      let run domains =
        update_run ~opts:(with_domains opts domains) ~shape ~n ~seed ~params ()
      in
      let expected = run 1 in
      List.for_all (fun d -> run d = expected) [ 2; 4 ])

let suite =
  [
    Alcotest.test_case "pool runs every job exactly once" `Quick
      test_pool_runs_every_job;
    Alcotest.test_case "a single-lane pool runs inline, in order" `Quick
      test_pool_single_lane_is_inline_and_ordered;
    Alcotest.test_case "the earliest failure is re-raised after the barrier" `Quick
      test_pool_reraises_earliest_failure;
    Alcotest.test_case "the pool is reusable across batches" `Quick
      test_pool_is_reusable_across_batches;
    Alcotest.test_case "shared pools are memoised per lane count" `Quick
      test_pool_shared_is_memoised;
    Alcotest.test_case "push_batch assigns contiguous seqs in list order" `Quick
      test_push_batch_keeps_list_order;
    Alcotest.test_case "peek observes without popping" `Quick test_peek_does_not_pop;
    Alcotest.test_case "updates are bit-identical across domain counts" `Quick
      test_update_identical_across_domains;
    Alcotest.test_case "queries are bit-identical across domain counts" `Quick
      test_query_identical_across_domains;
    Alcotest.test_case "subscriptions are bit-identical across domain counts" `Quick
      test_subscriptions_identical_across_domains;
    QCheck_alcotest.to_alcotest prop_domains_equivalent;
  ]
