(* The semantic query-answer cache: the LRU core, epoch invalidation,
   containment-aware hits, and the end-to-end behaviour inside the
   query engine (cached answers must be indistinguishable from
   re-running the diffusion, just cheaper). *)

open Helpers
module Lru = Codb_cache.Lru
module Epoch = Codb_cache.Epoch
module Qcache = Codb_cache.Qcache
module Containment = Codb_cq.Containment
module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Stats = Codb_core.Stats
module Node = Codb_core.Node
module Network = Codb_net.Network
module Peer_id = Codb_net.Peer_id

(* --- the LRU core -------------------------------------------------- *)

let test_lru_basic () =
  let lru = Lru.create () in
  Lru.add lru ~now:0.0 "a" 1 ~bytes:10;
  Lru.add lru ~now:0.0 "b" 2 ~bytes:10;
  Alcotest.(check (option int)) "find a" (Some 1) (Lru.find lru ~now:0.0 "a");
  Alcotest.(check (option int)) "find missing" None (Lru.find lru ~now:0.0 "z");
  Alcotest.(check int) "length" 2 (Lru.length lru);
  Alcotest.(check int) "bytes" 20 (Lru.bytes lru);
  let c = Lru.counters lru in
  Alcotest.(check int) "one hit" 1 c.Lru.hits;
  Alcotest.(check int) "one miss" 1 c.Lru.misses

let test_lru_eviction_order () =
  let lru = Lru.create ~max_entries:2 () in
  Lru.add lru ~now:0.0 "a" 1 ~bytes:1;
  Lru.add lru ~now:0.0 "b" 2 ~bytes:1;
  (* touch a so b is the least recently used *)
  ignore (Lru.find lru ~now:0.0 "a");
  Lru.add lru ~now:0.0 "c" 3 ~bytes:1;
  Alcotest.(check bool) "a kept" true (Lru.mem lru "a");
  Alcotest.(check bool) "b evicted" false (Lru.mem lru "b");
  Alcotest.(check bool) "c kept" true (Lru.mem lru "c");
  Alcotest.(check int) "one eviction" 1 (Lru.counters lru).Lru.evictions

let test_lru_byte_bound () =
  let lru = Lru.create ~max_bytes:100 () in
  Lru.add lru ~now:0.0 "a" 1 ~bytes:60;
  Lru.add lru ~now:0.0 "b" 2 ~bytes:60;
  Alcotest.(check bool) "a evicted by bytes" false (Lru.mem lru "a");
  Alcotest.(check bool) "b kept" true (Lru.mem lru "b");
  Alcotest.(check bool) "bytes within bound" true (Lru.bytes lru <= 100);
  (* an entry larger than the whole budget does not stick *)
  Lru.add lru ~now:0.0 "huge" 3 ~bytes:200;
  Alcotest.(check bool) "oversized entry dropped" false (Lru.mem lru "huge")

let test_lru_ttl () =
  let lru = Lru.create ~ttl:10.0 () in
  Lru.add lru ~now:0.0 "a" 1 ~bytes:1;
  Alcotest.(check (option int)) "fresh" (Some 1) (Lru.find lru ~now:5.0 "a");
  Alcotest.(check (option int)) "expired" None (Lru.find lru ~now:11.0 "a");
  Alcotest.(check bool) "gone" false (Lru.mem lru "a");
  Alcotest.(check int) "one expiration" 1 (Lru.counters lru).Lru.expirations

let test_lru_replace () =
  let lru = Lru.create () in
  Lru.add lru ~now:0.0 "a" 1 ~bytes:10;
  Lru.add lru ~now:0.0 "a" 2 ~bytes:30;
  Alcotest.(check (option int)) "replaced" (Some 2) (Lru.find lru ~now:0.0 "a");
  Alcotest.(check int) "bytes re-accounted" 30 (Lru.bytes lru);
  Alcotest.(check int) "one replacement" 1 (Lru.counters lru).Lru.replacements

(* --- epochs -------------------------------------------------------- *)

let test_epoch_stamps () =
  let e = Epoch.create () in
  let a = Peer_id.of_string "a" and b = Peer_id.of_string "b" in
  let stamp = Epoch.stamp e [ a; b ] in
  Alcotest.(check bool) "fresh stamp current" true (Epoch.is_current e stamp);
  Epoch.bump e b;
  Alcotest.(check bool) "stale after bump" false (Epoch.is_current e stamp);
  let stamp2 = Epoch.stamp e [ a; b ] in
  Alcotest.(check bool) "restamped current" true (Epoch.is_current e stamp2);
  Epoch.bump e (Peer_id.of_string "unrelated");
  Alcotest.(check bool) "unrelated peer irrelevant" true (Epoch.is_current e stamp2)

(* --- containment with comparison predicates (conservative path) ---- *)

let test_containment_comparisons () =
  let q text = parse_query text in
  (* adding a comparison only restricts: q1 ⊆ q2 *)
  Alcotest.(check bool) "restriction contained" true
    (Containment.contained (q "ans(x) <- r(x, y), x > 2") (q "ans(x) <- r(x, y)"));
  Alcotest.(check bool) "not the other way" false
    (Containment.contained (q "ans(x) <- r(x, y)") (q "ans(x) <- r(x, y), x > 2"));
  (* syntactically identical comparisons are entailed *)
  Alcotest.(check bool) "same comparison both ways" true
    (Containment.equivalent
       (q "ans(x) <- r(x, y), x > 2")
       (q "ans(a) <- r(a, b), a > 2"));
  (* ground comparisons are evaluated *)
  Alcotest.(check bool) "true ground comparison entailed" true
    (Containment.contained (q "ans(x) <- r(x, y)") (q "ans(x) <- r(x, y), 3 > 2"));
  (* the conservative path: x > 3 semantically implies x > 2, but the
     syntactic test cannot see it — contained must answer false (sound,
     incomplete) rather than true *)
  Alcotest.(check bool) "semantic implication not detected" false
    (Containment.contained
       (q "ans(x) <- r(x, y), x > 3")
       (q "ans(x) <- r(x, y), x > 2"))

(* --- the qcache unit layer ----------------------------------------- *)

let test_normalize_alpha_variants () =
  let k1 = Qcache.normalize (parse_query "ans(x, y) <- data(x, y), x > 2") in
  let k2 = Qcache.normalize (parse_query "ans(p, q) <- data(p, q), p > 2") in
  let k3 = Qcache.normalize (parse_query "ans(y, x) <- data(x, y)") in
  Alcotest.(check string) "alpha-variants share a key" k1 k2;
  Alcotest.(check bool) "different query, different key" true (k1 <> k3)

let answers_pair () =
  [ tup [ i 1; i 2 ]; tup [ i 5; i 6 ] ]

let test_containment_hit_filters () =
  let cached = parse_query "ans(x, y) <- data(x, y)" in
  let narrow = parse_query "ans(x, y) <- data(x, y), x > 2" in
  match Qcache.answers_via_containment ~cached ~answers:(answers_pair ()) narrow with
  | None -> Alcotest.fail "narrow query not served"
  | Some answers -> check_tuples "filtered" [ tup [ i 5; i 6 ] ] answers

let test_containment_hit_permutes_head () =
  let cached = parse_query "ans(x, y) <- data(x, y)" in
  let swapped = parse_query "ans(y, x) <- data(x, y)" in
  match Qcache.answers_via_containment ~cached ~answers:(answers_pair ()) swapped with
  | None -> Alcotest.fail "permuted query not served"
  | Some answers ->
      check_tuples "columns swapped" [ tup [ i 2; i 1 ]; tup [ i 6; i 5 ] ] answers

let test_containment_hit_equivalent () =
  let cached = parse_query "ans(x, y) <- data(x, y), x > 2" in
  let variant = parse_query "ans(a, b) <- data(a, b), a > 2" in
  match Qcache.answers_via_containment ~cached ~answers:(answers_pair ()) variant with
  | None -> Alcotest.fail "alpha-variant not served"
  | Some answers -> check_tuples "answers as cached" (answers_pair ()) answers

let test_containment_hit_refused () =
  let cached1 = parse_query "ans(x) <- data(x, y)" in
  (* y is projected away by the cached head: a filter on it cannot be
     applied over the cached answers *)
  Alcotest.(check bool) "unexposed variable refused" true
    (Qcache.answers_via_containment ~cached:cached1
       ~answers:[ tup [ i 1 ] ]
       (parse_query "ans(x) <- data(x, y), y > 2")
    = None);
  (* not contained at all *)
  let cached2 = parse_query "ans(x, y) <- data(x, y), x > 2" in
  Alcotest.(check bool) "superset lookup refused" true
    (Qcache.answers_via_containment ~cached:cached2 ~answers:(answers_pair ())
       (parse_query "ans(x, y) <- data(x, y)")
    = None)

let test_qcache_exact_and_invalidation () =
  let cache = Qcache.create ~containment:true () in
  let self = Peer_id.of_string "self" and peer = Peer_id.of_string "peer" in
  let q = parse_query "ans(x, y) <- data(x, y)" in
  Qcache.store cache ~now:0.0 q (answers_pair ()) ~sources:[ self; peer ];
  (match Qcache.lookup cache ~now:1.0 q with
  | Some { Qcache.kind = Qcache.Exact; answers } ->
      check_tuples "exact answers" (answers_pair ()) answers
  | Some { Qcache.kind = Qcache.By_containment; _ } -> Alcotest.fail "expected exact"
  | None -> Alcotest.fail "expected a hit");
  Alcotest.(check int) "one entry newly staled" 1 (Qcache.note_update cache [ peer ]);
  Alcotest.(check bool) "stale entry dropped" true (Qcache.lookup cache ~now:2.0 q = None);
  let c = Qcache.counters cache in
  Alcotest.(check int) "one exact hit" 1 c.Qcache.hits_exact;
  Alcotest.(check int) "one miss" 1 c.Qcache.misses;
  Alcotest.(check int) "one invalidation" 1 c.Qcache.epoch_invalidations;
  Alcotest.(check int) "empty now" 0 c.Qcache.entries

let test_qcache_containment_switch () =
  let q_broad = parse_query "ans(x, y) <- data(x, y)" in
  let q_narrow = parse_query "ans(x, y) <- data(x, y), x > 2" in
  let run ~containment =
    let cache = Qcache.create ~containment () in
    Qcache.store cache ~now:0.0 q_broad (answers_pair ())
      ~sources:[ Peer_id.of_string "self" ];
    Qcache.lookup cache ~now:1.0 q_narrow
  in
  (match run ~containment:true with
  | Some { Qcache.kind = Qcache.By_containment; answers } ->
      check_tuples "narrow served" [ tup [ i 5; i 6 ] ] answers
  | _ -> Alcotest.fail "containment hit expected");
  Alcotest.(check bool) "ablated: miss" true (run ~containment:false = None)

(* --- end to end through the query engine --------------------------- *)

let delivered sys = (Network.counters (System.net sys)).Network.delivered

let run_msgs sys q =
  let before = delivered sys in
  let outcome = System.run_query sys ~at:"n0" q in
  (outcome.System.qo_answers, delivered sys - before)

let chain ?(opts = Options.with_cache) ?(n = 5) () =
  System.build_exn ~opts (Topology.generate ~seed:42 Topology.Chain ~n)

let broad = "ans(x, y) <- data(x, y)"

let test_warm_cache_saves_messages () =
  let sys = chain () in
  let cold_answers, cold_msgs = run_msgs sys (parse_query broad) in
  let warm_answers, warm_msgs = run_msgs sys (parse_query broad) in
  Alcotest.(check bool) "cold run talks" true (cold_msgs > 0);
  Alcotest.(check int) "warm run is silent" 0 warm_msgs;
  Alcotest.(check bool) "acceptance: >= 5x fewer messages" true
    (cold_msgs >= 5 * max 1 warm_msgs);
  check_tuples "same answers" cold_answers warm_answers

let test_exact_hit_on_alpha_variant () =
  let sys = chain () in
  let a1, _ = run_msgs sys (parse_query "ans(x, y) <- data(x, y)") in
  let a2, msgs = run_msgs sys (parse_query "ans(p, q) <- data(p, q)") in
  Alcotest.(check int) "renamed query served from cache" 0 msgs;
  check_tuples "same answers" a1 a2;
  let n0 = System.node sys "n0" in
  let snap = Option.get (Node.cache_snapshot n0) in
  Alcotest.(check int) "exact hit counted" 1 snap.Stats.csn_hits_exact

let test_containment_hit_end_to_end () =
  let narrow = parse_query "ans(x, y) <- data(x, y), x > 100" in
  (* reference: what the narrow query answers without any cache *)
  let reference, _ = run_msgs (chain ~opts:Options.default ()) narrow in
  let sys = chain () in
  let _ = run_msgs sys (parse_query broad) in
  let answers, msgs = run_msgs sys narrow in
  Alcotest.(check int) "served without traffic" 0 msgs;
  check_tuples "identical to uncached run" reference answers;
  let snap = Option.get (Node.cache_snapshot (System.node sys "n0")) in
  Alcotest.(check int) "containment hit counted" 1 snap.Stats.csn_hits_containment

let test_interleaved_updates_stay_correct () =
  (* the decisive correctness test: interleave queries with updates
     that change remote data; the cached system must track the
     uncached one exactly.  With stale answers (no epoch
     invalidation) the second comparison fails. *)
  let q = parse_query broad in
  let cached = chain () and plain = chain ~opts:Options.default () in
  let check_round label =
    let a_cached, _ = run_msgs cached q and a_plain, _ = run_msgs plain q in
    check_tuples label a_plain a_cached
  in
  check_round "round 1: cold";
  check_round "round 2: warm";
  let grow sys =
    (* new remote fact, then a global update to propagate it *)
    Alcotest.(check bool) "fact is new" true
      (System.insert_fact sys ~at:"n4" ~rel:"data" (tup [ i 424242; s "fresh" ]));
    ignore (System.run_update sys ~initiator:"n0")
  in
  grow cached;
  grow plain;
  check_round "round 3: after remote update";
  (* the new tuple must actually be in the cached system's answers *)
  let a_cached, _ = run_msgs cached q in
  Alcotest.(check bool) "new tuple visible through the cache" true
    (List.exists (Tuple.equal (tup [ i 424242; s "fresh" ])) a_cached)

let test_local_insert_invalidates () =
  let sys = chain () in
  let q = parse_query broad in
  let before, _ = run_msgs sys q in
  (* a purely local write, no update protocol involved *)
  Alcotest.(check bool) "inserted" true
    (System.insert_fact sys ~at:"n0" ~rel:"data" (tup [ i 31337; s "local" ]));
  let after, _ = run_msgs sys q in
  Alcotest.(check int) "one more answer" (List.length before + 1) (List.length after)

let test_rules_change_clears_cache () =
  let sys = chain () in
  let _ = run_msgs sys (parse_query broad) in
  let n0 = System.node sys "n0" in
  Alcotest.(check bool) "entry cached" true
    ((Option.get (Node.cache_snapshot n0)).Stats.csn_entries > 0);
  System.broadcast_rules sys
    (Topology.rules_only (Topology.generate ~seed:42 Topology.Star_in ~n:5));
  Alcotest.(check int) "cache cleared on rules change" 0
    (Option.get (Node.cache_snapshot n0)).Stats.csn_entries

let test_report_surfaces_hit_ratio () =
  let sys = chain () in
  let q = parse_query broad in
  let _ = run_msgs sys q in
  let _ = run_msgs sys q in
  let _ = run_msgs sys q in
  let rows = Report.cache_report (System.snapshots sys) in
  Alcotest.(check int) "one row per node" 5 (List.length rows);
  let n0_row =
    List.find (fun r -> Peer_id.equal r.Report.cr_node (Peer_id.of_string "n0")) rows
  in
  Alcotest.(check int) "hits" 2 n0_row.Report.cr_hits;
  Alcotest.(check int) "misses" 1 n0_row.Report.cr_misses;
  Alcotest.(check (float 1e-9)) "ratio" (2.0 /. 3.0) n0_row.Report.cr_ratio;
  Alcotest.(check bool) "bytes served" true (n0_row.Report.cr_bytes_served > 0);
  (* caching off: no rows at all *)
  let plain = chain ~opts:Options.default () in
  let _ = run_msgs plain q in
  Alcotest.(check int) "no rows without caching" 0
    (List.length (Report.cache_report (System.snapshots plain)))

let test_cache_off_by_default () =
  let sys = chain ~opts:Options.default () in
  let _, cold = run_msgs sys (parse_query broad) in
  let _, second = run_msgs sys (parse_query broad) in
  Alcotest.(check bool) "no caching by default" true (second >= cold)

let suite =
  [
    Alcotest.test_case "lru basics" `Quick test_lru_basic;
    Alcotest.test_case "lru eviction order" `Quick test_lru_eviction_order;
    Alcotest.test_case "lru byte bound" `Quick test_lru_byte_bound;
    Alcotest.test_case "lru ttl" `Quick test_lru_ttl;
    Alcotest.test_case "lru replace" `Quick test_lru_replace;
    Alcotest.test_case "epoch stamps" `Quick test_epoch_stamps;
    Alcotest.test_case "containment with comparisons" `Quick
      test_containment_comparisons;
    Alcotest.test_case "normalization of alpha-variants" `Quick
      test_normalize_alpha_variants;
    Alcotest.test_case "containment hit filters" `Quick test_containment_hit_filters;
    Alcotest.test_case "containment hit permutes head" `Quick
      test_containment_hit_permutes_head;
    Alcotest.test_case "containment hit on equivalent query" `Quick
      test_containment_hit_equivalent;
    Alcotest.test_case "containment hit refused when unsound" `Quick
      test_containment_hit_refused;
    Alcotest.test_case "qcache exact hit and invalidation" `Quick
      test_qcache_exact_and_invalidation;
    Alcotest.test_case "qcache containment ablation switch" `Quick
      test_qcache_containment_switch;
    Alcotest.test_case "warm cache saves messages (e2e)" `Quick
      test_warm_cache_saves_messages;
    Alcotest.test_case "exact hit on alpha-variant (e2e)" `Quick
      test_exact_hit_on_alpha_variant;
    Alcotest.test_case "containment hit (e2e)" `Quick test_containment_hit_end_to_end;
    Alcotest.test_case "interleaved queries and updates stay correct" `Quick
      test_interleaved_updates_stay_correct;
    Alcotest.test_case "local insert invalidates" `Quick test_local_insert_invalidates;
    Alcotest.test_case "rules change clears the cache" `Quick
      test_rules_change_clears_cache;
    Alcotest.test_case "report surfaces per-node hit ratios" `Quick
      test_report_surfaces_hit_ratio;
    Alcotest.test_case "cache off by default" `Quick test_cache_off_by_default;
  ]
