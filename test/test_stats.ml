module Stats = Codb_core.Stats
module Ids = Codb_core.Ids
module Report = Codb_core.Report
module Peer_id = Codb_net.Peer_id

let uid serial = Ids.update_id (Peer_id.of_string "n") serial

let test_update_stat_created_once () =
  let st = Stats.create (Peer_id.of_string "n") in
  let us1 = Stats.update_stat st ~now:1.0 (uid 1) in
  us1.Stats.us_data_msgs <- 5;
  let us2 = Stats.update_stat st ~now:9.0 (uid 1) in
  Alcotest.(check int) "same accumulator" 5 us2.Stats.us_data_msgs;
  Alcotest.(check (float 0.0)) "original start time" 1.0 us2.Stats.us_started;
  Alcotest.(check bool) "find" true (Stats.find_update st (uid 1) <> None);
  Alcotest.(check bool) "missing" true (Stats.find_update st (uid 2) = None)

let test_rule_traffic_accumulates () =
  let st = Stats.create (Peer_id.of_string "n") in
  let us = Stats.update_stat st ~now:0.0 (uid 1) in
  let t1 = Stats.rule_traffic us "r1" in
  t1.Stats.rt_msgs <- 3;
  let t1' = Stats.rule_traffic us "r1" in
  Alcotest.(check int) "shared" 3 t1'.Stats.rt_msgs

let test_note_unique () =
  let st = Stats.create (Peer_id.of_string "n") in
  let us = Stats.update_stat st ~now:0.0 (uid 1) in
  let p = Peer_id.of_string "other" in
  Stats.note_queried us p;
  Stats.note_queried us p;
  Stats.note_sent_to us p;
  Alcotest.(check int) "queried once" 1 (List.length us.Stats.us_queried);
  Alcotest.(check int) "sent once" 1 (List.length us.Stats.us_sent_to)

let test_snapshot_reflects_state () =
  let st = Stats.create (Peer_id.of_string "n") in
  let us = Stats.update_stat st ~now:2.0 (uid 7) in
  us.Stats.us_finished <- Some 4.5;
  us.Stats.us_data_msgs <- 11;
  (Stats.rule_traffic us "r9").Stats.rt_bytes <- 123;
  let qs = Stats.query_stat st ~now:3.0 (Ids.query_id (Peer_id.of_string "n") 1) in
  qs.Stats.qs_answers <- 4;
  Stats.set_inconsistent st true;
  let snap = Stats.snapshot ~store_tuples:42 st in
  Alcotest.(check bool) "inconsistent" true snap.Stats.snap_inconsistent;
  Alcotest.(check int) "store tuples" 42 snap.Stats.snap_store_tuples;
  (match snap.Stats.snap_updates with
  | [ u ] ->
      Alcotest.(check int) "msgs" 11 u.Stats.usn_data_msgs;
      Alcotest.(check bool) "finished" true (u.Stats.usn_finished = Some 4.5);
      (match u.Stats.usn_per_rule with
      | [ rt ] -> Alcotest.(check int) "rule bytes" 123 rt.Stats.rts_bytes
      | _ -> Alcotest.fail "one rule expected")
  | _ -> Alcotest.fail "one update expected");
  match snap.Stats.snap_queries with
  | [ q ] -> Alcotest.(check int) "answers" 4 q.Stats.qsn_answers
  | _ -> Alcotest.fail "one query expected"

let test_report_merges_rules_across_nodes () =
  let mk name bytes =
    let st = Stats.create (Peer_id.of_string name) in
    let us = Stats.update_stat st ~now:0.0 (uid 1) in
    us.Stats.us_finished <- Some 1.0;
    (Stats.rule_traffic us "shared").Stats.rt_bytes <- bytes;
    Stats.snapshot st
  in
  let report = Option.get (Report.update_report [ mk "a" 10; mk "b" 32 ] (uid 1)) in
  Alcotest.(check int) "two nodes" 2 report.Report.ur_nodes;
  match report.Report.ur_per_rule with
  | [ rt ] -> Alcotest.(check int) "bytes summed" 42 rt.Stats.rts_bytes
  | _ -> Alcotest.fail "one merged rule expected"

let test_report_unfinished_flag () =
  let st = Stats.create (Peer_id.of_string "a") in
  let us = Stats.update_stat st ~now:0.5 (uid 1) in
  us.Stats.us_finished <- None;
  let report = Option.get (Report.update_report [ Stats.snapshot st ] (uid 1)) in
  Alcotest.(check bool) "flagged unfinished" false report.Report.ur_all_finished

let test_latest_update_report_picks_newest () =
  let st = Stats.create (Peer_id.of_string "a") in
  let u1 = Stats.update_stat st ~now:1.0 (uid 1) in
  u1.Stats.us_finished <- Some 2.0;
  let u2 = Stats.update_stat st ~now:5.0 (uid 2) in
  u2.Stats.us_finished <- Some 6.0;
  let report = Option.get (Report.latest_update_report [ Stats.snapshot st ]) in
  Alcotest.(check bool) "newest chosen" true
    (Ids.equal_update report.Report.ur_update (uid 2))

let test_snapshot_sorted_by_start () =
  let st = Stats.create (Peer_id.of_string "a") in
  ignore (Stats.update_stat st ~now:5.0 (uid 2));
  ignore (Stats.update_stat st ~now:1.0 (uid 1));
  let snap = Stats.snapshot st in
  match snap.Stats.snap_updates with
  | [ first; second ] ->
      Alcotest.(check bool) "chronological" true
        (first.Stats.usn_started <= second.Stats.usn_started)
  | _ -> Alcotest.fail "two updates expected"

let suite =
  [
    Alcotest.test_case "update accumulator identity" `Quick test_update_stat_created_once;
    Alcotest.test_case "rule traffic accumulates" `Quick test_rule_traffic_accumulates;
    Alcotest.test_case "queried/sent-to dedup" `Quick test_note_unique;
    Alcotest.test_case "snapshot content" `Quick test_snapshot_reflects_state;
    Alcotest.test_case "report merges per-rule traffic" `Quick
      test_report_merges_rules_across_nodes;
    Alcotest.test_case "unfinished updates flagged" `Quick test_report_unfinished_flag;
    Alcotest.test_case "latest report picks the newest" `Quick
      test_latest_update_report_picks_newest;
    Alcotest.test_case "snapshots sorted by start" `Quick test_snapshot_sorted_by_start;
  ]
