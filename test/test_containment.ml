open Helpers
module Containment = Codb_cq.Containment

let q text = parse_query text

let test_identical () =
  let q1 = q "ans(x, y) <- r(x, y)" in
  Alcotest.(check bool) "self containment" true (Containment.contained q1 q1);
  Alcotest.(check bool) "self equivalence" true (Containment.equivalent q1 q1)

let test_more_joins_is_contained () =
  (* q1 with an extra join condition is contained in the looser q2 *)
  let q1 = q "ans(x) <- r(x, y), s(y, z)" in
  let q2 = q "ans(x) <- r(x, y)" in
  Alcotest.(check bool) "q1 in q2" true (Containment.contained q1 q2);
  Alcotest.(check bool) "q2 not in q1" false (Containment.contained q2 q1)

let test_renamed_variables_equivalent () =
  let q1 = q "ans(x, y) <- r(x, y)" in
  let q2 = q "ans(a, b) <- r(a, b)" in
  Alcotest.(check bool) "alpha-equivalent" true (Containment.equivalent q1 q2)

let test_redundant_atom_equivalent () =
  (* a duplicated atom does not change the answers *)
  let q1 = q "ans(x) <- r(x, y), r(x, y)" in
  let q2 = q "ans(x) <- r(x, y)" in
  Alcotest.(check bool) "equivalent" true (Containment.equivalent q1 q2)

let test_constant_specialisation () =
  let q1 = q "ans(y) <- r(1, y)" in
  let q2 = q "ans(y) <- r(x, y)" in
  Alcotest.(check bool) "specialised in general" true (Containment.contained q1 q2);
  Alcotest.(check bool) "general not in specialised" false (Containment.contained q2 q1)

let test_different_head_projection () =
  let q1 = q "ans(x) <- r(x, y)" in
  let q2 = q "ans(y) <- r(x, y)" in
  Alcotest.(check bool) "not contained" false (Containment.contained q1 q2)

let test_different_relations () =
  let q1 = q "ans(x) <- r(x, y)" in
  let q2 = q "ans(x) <- s(x, y)" in
  Alcotest.(check bool) "disjoint relations" false (Containment.contained q1 q2)

let test_comparisons_conservative () =
  (* same comparison on both sides: still detected as contained *)
  let q1 = q "ans(x) <- r(x, y), y > 5" in
  Alcotest.(check bool) "self with comparison" true (Containment.contained q1 q1);
  (* looser side has the comparison: containment must NOT be claimed *)
  let loose = q "ans(x) <- r(x, y)" in
  let strict = q "ans(x) <- r(x, y), y > 5" in
  Alcotest.(check bool) "loose not in strict" false (Containment.contained loose strict);
  Alcotest.(check bool) "strict in loose" true (Containment.contained strict loose)

let test_ground_comparison_entailment () =
  (* the contained side carries a comparison over constants which
     evaluates to true *)
  let q1 = q "ans(x) <- r(x, y)" in
  let q2 = q "ans(x) <- r(x, y), 1 < 2" in
  Alcotest.(check bool) "ground true comparison" true (Containment.contained q1 q2)

let suite =
  [
    Alcotest.test_case "identity" `Quick test_identical;
    Alcotest.test_case "extra join is more specific" `Quick test_more_joins_is_contained;
    Alcotest.test_case "alpha equivalence" `Quick test_renamed_variables_equivalent;
    Alcotest.test_case "redundant atom" `Quick test_redundant_atom_equivalent;
    Alcotest.test_case "constant specialisation" `Quick test_constant_specialisation;
    Alcotest.test_case "head projection matters" `Quick test_different_head_projection;
    Alcotest.test_case "different relations" `Quick test_different_relations;
    Alcotest.test_case "comparisons handled conservatively" `Quick
      test_comparisons_conservative;
    Alcotest.test_case "ground comparison entailment" `Quick
      test_ground_comparison_entailment;
  ]
