open Helpers

let fresh () = Relation.create r_schema

let test_insert_dedup () =
  let r = fresh () in
  Alcotest.(check bool) "first insert" true (Relation.insert r (tup [ i 1; i 2 ]));
  Alcotest.(check bool) "duplicate" false (Relation.insert r (tup [ i 1; i 2 ]));
  Alcotest.(check int) "cardinal" 1 (Relation.cardinal r)

let test_insert_rejects_bad_arity () =
  let r = fresh () in
  Alcotest.check_raises "arity"
    (Invalid_argument
       "Relation.insert: tuple (1) does not conform to r(a: int, b: int)")
    (fun () -> ignore (Relation.insert r (tup [ i 1 ])))

let test_insert_rejects_bad_type () =
  let r = fresh () in
  Alcotest.(check bool)
    "type mismatch raises" true
    (try
       ignore (Relation.insert r (tup [ i 1; s "x" ]));
       false
     with Invalid_argument _ -> true)

let test_insert_rejects_holes () =
  let r = fresh () in
  Alcotest.(check bool)
    "holes rejected" true
    (try
       ignore (Relation.insert r (tup [ i 1; Value.Hole 0 ]));
       false
     with Invalid_argument _ -> true)

let test_insert_accepts_nulls () =
  let r = fresh () in
  let null = Value.fresh_null ~rule:"r" in
  Alcotest.(check bool) "null ok" true (Relation.insert r (tup [ i 1; null ]))

let test_insert_all_returns_delta () =
  let r = fresh () in
  ignore (Relation.insert r (tup [ i 1; i 1 ]));
  let fresh_tuples =
    Relation.insert_all r [ tup [ i 1; i 1 ]; tup [ i 2; i 2 ]; tup [ i 2; i 2 ] ]
  in
  check_tuples "only new" [ tup [ i 2; i 2 ] ] fresh_tuples;
  Alcotest.(check int) "cardinal" 2 (Relation.cardinal r)

let test_subsumed () =
  let r = fresh () in
  let null = Value.fresh_null ~rule:"r" in
  ignore (Relation.insert r (tup [ i 1; null ]));
  ignore (Relation.insert r (tup [ i 2; i 5 ]));
  Alcotest.(check bool) "hole subsumed by null" true
    (Relation.subsumed r (tup [ i 1; Value.Hole 0 ]));
  Alcotest.(check bool) "hole subsumed by concrete witness" true
    (Relation.subsumed r (tup [ i 2; Value.Hole 0 ]));
  Alcotest.(check bool) "hole with unknown key not subsumed" false
    (Relation.subsumed r (tup [ i 3; Value.Hole 0 ]));
  Alcotest.(check bool) "exact" true (Relation.subsumed r (tup [ i 2; i 5 ]));
  Alcotest.(check bool) "absent" false (Relation.subsumed r (tup [ i 9; i 9 ]))

let test_remove_clear () =
  let r = fresh () in
  ignore (Relation.insert r (tup [ i 1; i 1 ]));
  Alcotest.(check bool) "removed" true (Relation.remove r (tup [ i 1; i 1 ]));
  Alcotest.(check bool) "absent now" false (Relation.remove r (tup [ i 1; i 1 ]));
  ignore (Relation.insert_all r [ tup [ i 1; i 1 ]; tup [ i 2; i 2 ] ]);
  Relation.clear r;
  Alcotest.(check int) "cleared" 0 (Relation.cardinal r)

let test_copy_is_independent () =
  let r = fresh () in
  ignore (Relation.insert r (tup [ i 1; i 1 ]));
  let r2 = Relation.copy r in
  ignore (Relation.insert r2 (tup [ i 2; i 2 ]));
  Alcotest.(check int) "original untouched" 1 (Relation.cardinal r);
  Alcotest.(check int) "copy grew" 2 (Relation.cardinal r2);
  Alcotest.(check bool) "contents equal check" false (Relation.equal_contents r r2)

let test_lookup_index () =
  let r = fresh () in
  ignore
    (Relation.insert_all r
       [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ]; tup [ i 2; i 10 ] ]);
  check_tuples "probe col 0" [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ] ]
    (Relation.lookup r ~col:0 (i 1));
  check_tuples "probe col 1" [ tup [ i 1; i 10 ]; tup [ i 2; i 10 ] ]
    (Relation.lookup r ~col:1 (i 10));
  check_tuples "probe miss" [] (Relation.lookup r ~col:0 (i 99));
  Alcotest.(check bool) "out of range raises" true
    (try
       ignore (Relation.lookup r ~col:2 (i 1));
       false
     with Invalid_argument _ -> true)

let test_lookup_index_invalidation () =
  let r = fresh () in
  ignore (Relation.insert r (tup [ i 1; i 10 ]));
  check_tuples "before" [ tup [ i 1; i 10 ] ] (Relation.lookup r ~col:0 (i 1));
  ignore (Relation.insert r (tup [ i 1; i 20 ]));
  check_tuples "after insert" [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ] ]
    (Relation.lookup r ~col:0 (i 1));
  ignore (Relation.remove r (tup [ i 1; i 10 ]));
  check_tuples "after remove" [ tup [ i 1; i 20 ] ] (Relation.lookup r ~col:0 (i 1));
  Relation.clear r;
  check_tuples "after clear" [] (Relation.lookup r ~col:0 (i 1))

let test_lookup_nulls_by_identity () =
  let r = fresh () in
  let n1 = Value.fresh_null ~rule:"x" and n2 = Value.fresh_null ~rule:"x" in
  ignore (Relation.insert_all r [ tup [ i 1; n1 ]; tup [ i 2; n2 ] ]);
  check_tuples "null key" [ tup [ i 1; n1 ] ] (Relation.lookup r ~col:1 n1)

let test_copy_does_not_share_indexes () =
  let r = fresh () in
  ignore (Relation.insert r (tup [ i 1; i 10 ]));
  ignore (Relation.lookup r ~col:0 (i 1));
  let r2 = Relation.copy r in
  ignore (Relation.insert r2 (tup [ i 1; i 20 ]));
  check_tuples "copy sees both" [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ] ]
    (Relation.lookup r2 ~col:0 (i 1));
  check_tuples "original index unchanged" [ tup [ i 1; i 10 ] ]
    (Relation.lookup r ~col:0 (i 1))

let test_lookup_cols () =
  let r = fresh () in
  ignore
    (Relation.insert_all r
       [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ]; tup [ i 2; i 10 ] ]);
  check_tuples "composite probe" [ tup [ i 1; i 10 ] ]
    (Relation.lookup_cols r [ (0, i 1); (1, i 10) ]);
  check_tuples "order of bindings irrelevant" [ tup [ i 1; i 10 ] ]
    (Relation.lookup_cols r [ (1, i 10); (0, i 1) ]);
  check_tuples "single binding = single-column lookup"
    [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ] ]
    (Relation.lookup_cols r [ (0, i 1) ]);
  check_tuples "duplicate bindings collapse" [ tup [ i 1; i 10 ] ]
    (Relation.lookup_cols r [ (0, i 1); (1, i 10); (0, i 1) ]);
  check_tuples "contradictory bindings are empty" []
    (Relation.lookup_cols r [ (0, i 1); (0, i 2) ]);
  check_tuples "no bindings = every tuple"
    [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ]; tup [ i 2; i 10 ] ]
    (Relation.lookup_cols r []);
  check_tuples "miss" [] (Relation.lookup_cols r [ (0, i 1); (1, i 99) ]);
  Alcotest.(check bool) "out of range raises" true
    (try
       ignore (Relation.lookup_cols r [ (0, i 1); (2, i 1) ]);
       false
     with Invalid_argument _ -> true)

let test_composite_index_maintained () =
  let r = fresh () in
  ignore (Relation.insert r (tup [ i 1; i 10 ]));
  (* build the composite index, then mutate: the probe must track the
     contents without a rebuild *)
  check_tuples "before" [ tup [ i 1; i 10 ] ]
    (Relation.lookup_cols r [ (0, i 1); (1, i 10) ]);
  let indexes_before = Relation.index_count r in
  ignore (Relation.insert r (tup [ i 1; i 20 ]));
  ignore (Relation.insert r (tup [ i 2; i 10 ]));
  check_tuples "sees inserts" [ tup [ i 1; i 20 ] ]
    (Relation.lookup_cols r [ (0, i 1); (1, i 20) ]);
  ignore (Relation.remove r (tup [ i 1; i 10 ]));
  check_tuples "sees removals" [] (Relation.lookup_cols r [ (0, i 1); (1, i 10) ]);
  Alcotest.(check int) "no index was dropped or added" indexes_before
    (Relation.index_count r);
  Relation.clear r;
  check_tuples "after clear" [] (Relation.lookup_cols r [ (0, i 1); (1, i 20) ])

let test_distinct_count () =
  let r = fresh () in
  ignore
    (Relation.insert_all r
       [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ]; tup [ i 2; i 10 ] ]);
  Alcotest.(check int) "col 0" 2 (Relation.distinct_count r ~col:0);
  Alcotest.(check int) "col 1" 2 (Relation.distinct_count r ~col:1);
  (* maintained incrementally from here on *)
  ignore (Relation.insert r (tup [ i 3; i 10 ]));
  Alcotest.(check int) "after insert" 3 (Relation.distinct_count r ~col:0);
  ignore (Relation.remove r (tup [ i 2; i 10 ]));
  Alcotest.(check int) "after remove" 2 (Relation.distinct_count r ~col:0);
  ignore (Relation.remove r (tup [ i 1; i 20 ]));
  Alcotest.(check int) "value with remaining occurrence kept" 2
    (Relation.distinct_count r ~col:0);
  Alcotest.(check bool) "out of range raises" true
    (try
       ignore (Relation.distinct_count r ~col:5);
       false
     with Invalid_argument _ -> true)

let test_index_budget () =
  let r = fresh () in
  ignore
    (Relation.insert_all r
       [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ]; tup [ i 2; i 10 ] ]);
  Relation.set_index_budget r 0;
  Alcotest.(check int) "budget readable" 0 (Relation.index_budget r);
  (* probes still answer correctly, just without building indexes *)
  check_tuples "scan fallback, single column" [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ] ]
    (Relation.lookup r ~col:0 (i 1));
  check_tuples "scan fallback, composite" [ tup [ i 1; i 10 ] ]
    (Relation.lookup_cols r [ (0, i 1); (1, i 10) ]);
  Alcotest.(check int) "nothing was built" 0 (Relation.index_count r);
  (* budget of one: the first index wins, later column sets degrade *)
  Relation.set_index_budget r 1;
  check_tuples "first index built" [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ] ]
    (Relation.lookup r ~col:0 (i 1));
  Alcotest.(check int) "one index" 1 (Relation.index_count r);
  check_tuples "over-budget probe still correct" [ tup [ i 1; i 10 ] ]
    (Relation.lookup_cols r [ (0, i 1); (1, i 10) ]);
  Alcotest.(check int) "still one index" 1 (Relation.index_count r)

let test_to_list_sorted () =
  let r = fresh () in
  ignore (Relation.insert_all r [ tup [ i 3; i 0 ]; tup [ i 1; i 0 ]; tup [ i 2; i 0 ] ]);
  let ks = List.map (fun t -> t.(0)) (Relation.to_list r) in
  Alcotest.(check bool) "sorted" true (ks = [ i 1; i 2; i 3 ])

let test_array_variants_agree () =
  let r = fresh () in
  ignore
    (Relation.insert_all r
       [ tup [ i 1; i 10 ]; tup [ i 1; i 20 ]; tup [ i 2; i 10 ] ]);
  let sorted_arr a = sorted_tuples (Array.to_list a) in
  check_tuples "lookup_arr" (Relation.lookup r ~col:0 (i 1))
    (Array.to_list (Relation.lookup_arr r ~col:0 (i 1)));
  check_tuples "lookup_cols_arr"
    (Relation.lookup_cols r [ (0, i 1); (1, i 10) ])
    (Array.to_list (Relation.lookup_cols_arr r [ (0, i 1); (1, i 10) ]));
  check_tuples "lookup_cols_arr, no bindings"
    (Relation.lookup_cols r [])
    (Array.to_list (Relation.lookup_cols_arr r []));
  check_tuples "lookup_cols_arr, contradiction" []
    (Array.to_list (Relation.lookup_cols_arr r [ (0, i 1); (0, i 2) ]));
  Alcotest.(check bool) "to_array = to_list" true
    (sorted_arr (Relation.to_array r) = Relation.to_list r)

(* ---- differential testing against the seed engine ------------------- *)

module Ref = Codb_relalg.Relation_ref
module Q2 = QCheck2
module Gen = QCheck2.Gen

(* int x string columns so the intern table is on the critical path *)
let mixed_schema = Schema.make "m" [ ("a", Value.Tint); ("b", Value.Tstring) ]

type op =
  | Insert of Tuple.t
  | Remove of Tuple.t
  | Lookup of int * Value.t
  | Lookup_cols of (int * Value.t) list
  | Subsumed of Tuple.t
  | Mem of Tuple.t
  | Distinct of int
  | Budget of int
  | Copy

let gen_a = Gen.map i (Gen.int_range 0 4)

let gen_b = Gen.map s (Gen.oneofl [ "u"; "v"; "w" ])

let gen_mixed_tuple = Gen.map2 (fun a b -> tup [ a; b ]) gen_a gen_b

(* holes allowed: only [Subsumed] probes with these *)
let gen_holey_tuple =
  Gen.map2
    (fun a b -> tup [ a; b ])
    (Gen.oneof [ gen_a; Gen.return (Value.Hole 0) ])
    (Gen.oneof [ gen_b; Gen.return (Value.Hole 1) ])

let gen_binding =
  Gen.oneof
    [ Gen.map (fun v' -> (0, v')) gen_a; Gen.map (fun v' -> (1, v')) gen_b ]

let gen_op =
  Gen.frequency
    [
      (6, Gen.map (fun t -> Insert t) gen_mixed_tuple);
      (2, Gen.map (fun t -> Remove t) gen_mixed_tuple);
      (3, Gen.map (fun (c, v') -> Lookup (c, v')) gen_binding);
      (3, Gen.map (fun bs -> Lookup_cols bs) (Gen.list_size (Gen.int_range 0 3) gen_binding));
      (2, Gen.map (fun t -> Subsumed t) gen_holey_tuple);
      (2, Gen.map (fun t -> Mem t) gen_mixed_tuple);
      (1, Gen.map (fun c -> Distinct c) (Gen.int_range 0 1));
      (1, Gen.map (fun b -> Budget b) (Gen.int_range 0 3));
      (1, Gen.return Copy);
    ]

(* Run one op against both engines; any observable disagreement fails
   the property. *)
let apply_op (r, o) op =
  match op with
  | Insert t -> Relation.insert r t = Ref.insert o t
  | Remove t -> Relation.remove r t = Ref.remove o t
  | Lookup (c, v') ->
      sorted_tuples (Relation.lookup r ~col:c v') = sorted_tuples (Ref.lookup o ~col:c v')
  | Lookup_cols bs ->
      sorted_tuples (Relation.lookup_cols r bs) = sorted_tuples (Ref.lookup_cols o bs)
  | Subsumed t -> Relation.subsumed r t = Ref.subsumed o t
  | Mem t -> Relation.mem r t = Ref.mem o t
  | Distinct c -> Relation.distinct_count r ~col:c = Ref.distinct_count o ~col:c
  | Budget b ->
      Relation.set_index_budget r b;
      Ref.set_index_budget o b;
      true
  | Copy -> true

let prop_columnar_matches_seed =
  Q2.Test.make ~name:"columnar engine = seed engine on random op interleavings"
    ~count:300
    (Gen.list_size (Gen.int_range 0 60) (Gen.pair gen_op Gen.bool))
    (fun ops ->
      let r = ref (Relation.create mixed_schema) in
      let o = ref (Ref.create mixed_schema) in
      List.for_all
        (fun (op, take_copy) ->
          (* randomly continue on a copy: copies must behave exactly
             like the original and not alias its state *)
          (match op with
          | Copy when take_copy ->
              r := Relation.copy !r;
              o := Ref.copy !o
          | _ -> ());
          apply_op (!r, !o) op)
        ops
      && Relation.to_list !r = Ref.to_list !o
      && Relation.cardinal !r = Ref.cardinal !o)

(* --- zone maps ------------------------------------------------------ *)

module Intern = Codb_relalg.Intern

(* the row-level semantics pruning must stay sound against: every
   bound holds on the packed cell *)
let row_matches pv bounds id =
  List.for_all
    (fun (col, op, k) ->
      let c = Intern.compare (pv.Relation.pv_cell col id) k in
      match op with
      | Relation.Blt -> c < 0
      | Relation.Ble -> c <= 0
      | Relation.Bgt -> c > 0
      | Relation.Bge -> c >= 0
      | Relation.Beq -> c = 0)
    bounds

let ids_set (ids, n) = List.sort_uniq compare (Array.to_list (Array.sub ids 0 n))

let check_prune_sound r bounds =
  let pv = Relation.packed_view r in
  match pv.Relation.pv_prune bounds with
  | None -> Alcotest.fail "columnar relation offered no zone maps"
  | Some (ids, n, visited, pruned) ->
      let all = ids_set (pv.Relation.pv_all ()) in
      let survivors = ids_set (ids, n) in
      List.iter
        (fun id ->
          Alcotest.(check bool) "survivor is a live row" true (List.mem id all))
        survivors;
      List.iter
        (fun id ->
          if row_matches pv bounds id then
            Alcotest.(check bool) "no matching row was pruned" true
              (List.mem id survivors))
        all;
      (visited, pruned)

let test_zone_prune_selective () =
  let r = fresh () in
  for k = 0 to 9999 do
    ignore (Relation.insert r (tup [ i k; i (k * 7) ]))
  done;
  let lt100 = [ (0, Relation.Blt, Intern.pack (i 100)) ] in
  let visited, pruned = check_prune_sound r lt100 in
  (* 10000 rows = 3 chunks of 4096; only the first can hold a < 100 *)
  Alcotest.(check int) "all chunks accounted" 3 (visited + pruned);
  Alcotest.(check int) "two chunks skipped" 2 pruned;
  let top = [ (0, Relation.Bge, Intern.pack (i 9000)) ] in
  let _, pruned = check_prune_sound r top in
  Alcotest.(check int) "leading chunks skipped" 2 pruned;
  let none = [ (0, Relation.Bgt, Intern.pack (i 10000)) ] in
  let visited, pruned = check_prune_sound r none in
  Alcotest.(check int) "empty range visits nothing" 0 visited;
  Alcotest.(check int) "empty range prunes everything" 3 pruned

let test_zone_prune_removals_stay_sound () =
  let r = fresh () in
  for k = 0 to 8999 do
    ignore (Relation.insert r (tup [ i k; i k ]))
  done;
  (* hollow out the middle: bounds go stale-wide, never wrong *)
  for k = 3000 to 5999 do
    ignore (Relation.remove r (tup [ i k; i k ]))
  done;
  let bounds = [ (0, Relation.Bge, Intern.pack (i 2000)); (0, Relation.Ble, Intern.pack (i 7000)) ] in
  ignore (check_prune_sound r bounds : int * int);
  (* and a copy neither shares nor loses the zones *)
  let r' = Relation.copy r in
  ignore (Relation.insert r' (tup [ i 20000; i 20000 ]));
  ignore (check_prune_sound r' bounds : int * int);
  ignore (check_prune_sound r bounds : int * int);
  Relation.clear r;
  let pv = Relation.packed_view r in
  match pv.Relation.pv_prune bounds with
  | None -> ()
  | Some (_, n, _, _) -> Alcotest.(check int) "cleared relation yields no rows" 0 n

let test_zone_prune_strings () =
  let r = Relation.create mixed_schema in
  List.iteri
    (fun k name -> ignore (Relation.insert r (tup [ i k; s name ])))
    [ "alpha"; "beta"; "gamma"; "delta"; "epsilon"; "zeta" ];
  ignore
    (check_prune_sound r [ (1, Relation.Bge, Intern.pack (s "delta")) ] : int * int);
  ignore
    (check_prune_sound r [ (1, Relation.Beq, Intern.pack (s "beta")) ] : int * int)

let gen_bound =
  Gen.map2
    (fun (col, k) op -> (col, op, k))
    (Gen.oneof
       [
         Gen.map (fun v' -> (0, Intern.pack v')) gen_a;
         Gen.map (fun v' -> (1, Intern.pack v')) gen_b;
       ])
    (Gen.oneofl [ Relation.Blt; Relation.Ble; Relation.Bgt; Relation.Bge; Relation.Beq ])

let prop_zone_prune_sound =
  Q2.Test.make ~name:"zone-map pruning never drops a matching row" ~count:300
    (Gen.pair
       (Gen.list_size (Gen.int_range 0 60) gen_op)
       (Gen.list_size (Gen.int_range 0 3) gen_bound))
    (fun (ops, bounds) ->
      let r = Relation.create mixed_schema in
      List.iter
        (function
          | Insert t -> ignore (Relation.insert r t)
          | Remove t -> ignore (Relation.remove r t)
          | _ -> ())
        ops;
      let pv = Relation.packed_view r in
      match pv.Relation.pv_prune bounds with
      | None -> true
      | Some (ids, n, _, _) ->
          let all = ids_set (pv.Relation.pv_all ()) in
          let survivors = ids_set (ids, n) in
          List.for_all (fun id -> List.mem id all) survivors
          && List.for_all
               (fun id -> (not (row_matches pv bounds id)) || List.mem id survivors)
               all)

let suite =
  [
    Alcotest.test_case "insert deduplicates" `Quick test_insert_dedup;
    Alcotest.test_case "insert rejects bad arity" `Quick test_insert_rejects_bad_arity;
    Alcotest.test_case "insert rejects bad type" `Quick test_insert_rejects_bad_type;
    Alcotest.test_case "insert rejects holes" `Quick test_insert_rejects_holes;
    Alcotest.test_case "insert accepts marked nulls" `Quick test_insert_accepts_nulls;
    Alcotest.test_case "insert_all returns the delta" `Quick test_insert_all_returns_delta;
    Alcotest.test_case "null-aware subsumption lookup" `Quick test_subsumed;
    Alcotest.test_case "remove and clear" `Quick test_remove_clear;
    Alcotest.test_case "copy independence" `Quick test_copy_is_independent;
    Alcotest.test_case "to_list is sorted" `Quick test_to_list_sorted;
    Alcotest.test_case "hash index lookup" `Quick test_lookup_index;
    Alcotest.test_case "index invalidation on mutation" `Quick
      test_lookup_index_invalidation;
    Alcotest.test_case "index keys nulls by identity" `Quick
      test_lookup_nulls_by_identity;
    Alcotest.test_case "copy does not share indexes" `Quick
      test_copy_does_not_share_indexes;
    Alcotest.test_case "composite lookup" `Quick test_lookup_cols;
    Alcotest.test_case "composite index maintained incrementally" `Quick
      test_composite_index_maintained;
    Alcotest.test_case "distinct-value statistics" `Quick test_distinct_count;
    Alcotest.test_case "index budget degrades to scans" `Quick test_index_budget;
    Alcotest.test_case "array probe variants agree with lists" `Quick
      test_array_variants_agree;
    QCheck_alcotest.to_alcotest prop_columnar_matches_seed;
    Alcotest.test_case "zone maps prune selective ranges" `Quick
      test_zone_prune_selective;
    Alcotest.test_case "zone maps survive removals, copies, clear" `Quick
      test_zone_prune_removals_stay_sound;
    Alcotest.test_case "zone maps order interned strings" `Quick
      test_zone_prune_strings;
    QCheck_alcotest.to_alcotest prop_zone_prune_sound;
  ]
