open Helpers

let q_simple =
  (* ans(x, c) <- r(x, b), s(b, c) *)
  Query.make
    ~head:(atom "ans" [ v "x"; v "c" ])
    ~body:[ atom "r" [ v "x"; v "b" ]; atom "s" [ v "b"; v "c" ] ]
    ()

let test_head_body_vars () =
  Alcotest.(check (list string)) "head vars" [ "x"; "c" ] (Query.head_vars q_simple);
  Alcotest.(check (list string)) "body vars" [ "x"; "b"; "c" ] (Query.body_vars q_simple);
  Alcotest.(check (list string)) "no existential" [] (Query.existential_head_vars q_simple)

let test_existential_head () =
  let q =
    Query.make ~head:(atom "h" [ v "x"; v "z" ]) ~body:[ atom "r" [ v "x"; v "y" ] ] ()
  in
  Alcotest.(check (list string)) "z existential" [ "z" ] (Query.existential_head_vars q);
  Alcotest.(check bool) "flag" true (Query.has_existential_head q);
  Alcotest.(check bool)
    "rejected for user queries" true
    (Query.well_formed ~allow_existential_head:false q |> Result.is_error);
  Alcotest.(check bool)
    "allowed for rules" true
    (Query.well_formed ~allow_existential_head:true q |> Result.is_ok)

let test_body_relations_dedup () =
  let q =
    Query.make ~head:(atom "h" [ v "x" ])
      ~body:[ atom "r" [ v "x"; v "y" ]; atom "r" [ v "y"; v "z" ]; atom "s" [ v "z"; v "w" ] ]
      ()
  in
  Alcotest.(check (list string)) "dedup order" [ "r"; "s" ] (Query.body_relations q)

let test_safety () =
  let unsafe_cmp =
    Query.make ~head:(atom "h" [ v "x" ]) ~body:[ atom "r" [ v "x"; v "y" ] ]
      ~comparisons:[ { Query.left = v "w"; op = Query.Lt; right = c (i 5) } ]
      ()
  in
  Alcotest.(check bool) "unsafe comparison" false (Query.is_safe unsafe_cmp);
  Alcotest.(check bool)
    "rejected" true
    (Query.well_formed ~allow_existential_head:true unsafe_cmp |> Result.is_error);
  let empty_body = Query.make ~head:(atom "h" [ c (i 1) ]) ~body:[] () in
  Alcotest.(check bool) "empty body unsafe" false (Query.is_safe empty_body)

let test_comparison_semantics () =
  let check op a b expected =
    Alcotest.(check bool)
      (Query.string_of_op op)
      expected
      (Query.eval_comparison_op op a b)
  in
  check Query.Eq (i 1) (i 1) true;
  check Query.Neq (i 1) (i 2) true;
  check Query.Lt (i 1) (i 2) true;
  check Query.Le (i 2) (i 2) true;
  check Query.Gt (s "b") (s "a") true;
  check Query.Ge (s "a") (s "b") false

let test_comparison_nulls_unknown_is_false () =
  let null = Value.fresh_null ~rule:"r" in
  let null2 = Value.fresh_null ~rule:"r" in
  Alcotest.(check bool) "null = itself" true (Query.eval_comparison_op Query.Eq null null);
  Alcotest.(check bool) "null = other" false (Query.eval_comparison_op Query.Eq null null2);
  Alcotest.(check bool) "null != other" true (Query.eval_comparison_op Query.Neq null null2);
  (* order comparisons involving nulls are unknown, hence false *)
  Alcotest.(check bool) "null < 5" false (Query.eval_comparison_op Query.Lt null (i 5));
  Alcotest.(check bool) "5 <= null" false (Query.eval_comparison_op Query.Le (i 5) null);
  Alcotest.(check bool) "null >= null" false (Query.eval_comparison_op Query.Ge null null)

let test_equal_compare () =
  let q2 =
    Query.make
      ~head:(atom "ans" [ v "x"; v "c" ])
      ~body:[ atom "r" [ v "x"; v "b" ]; atom "s" [ v "b"; v "c" ] ]
      ()
  in
  Alcotest.(check bool) "equal" true (Query.equal q_simple q2);
  let q3 = { q2 with Query.body = List.rev q2.Query.body } in
  Alcotest.(check bool) "body order matters syntactically" false (Query.equal q_simple q3)

let suite =
  [
    Alcotest.test_case "head/body variables" `Quick test_head_body_vars;
    Alcotest.test_case "existential head variables" `Quick test_existential_head;
    Alcotest.test_case "body relations dedup" `Quick test_body_relations_dedup;
    Alcotest.test_case "safety" `Quick test_safety;
    Alcotest.test_case "comparison semantics" `Quick test_comparison_semantics;
    Alcotest.test_case "comparisons on nulls collapse to false" `Quick
      test_comparison_nulls_unknown_is_false;
    Alcotest.test_case "query equality" `Quick test_equal_compare;
  ]
