(* White-box tests of the update protocol's termination-detection
   bookkeeping (Dijkstra–Scholten), driving [Update.handle] directly
   through a stub runtime that records every message instead of
   simulating a network. *)

open Helpers
module Update = Codb_core.Update
module Update_state = Codb_core.Update_state
module Node = Codb_core.Node
module Runtime = Codb_core.Runtime
module Options = Codb_core.Options
module Payload = Codb_core.Payload
module Ids = Codb_core.Ids
module Peer_id = Codb_net.Peer_id

(* A node named "me" importing r from "up" and serving r to "down":
   a middle link of a chain. *)
let middle_config =
  {|
node down { relation r(x: int); }
node me { relation r(x: int); fact r(1); }
node up { relation r(x: int); fact r(2); }
rule to_down at down: r(x) <- me: r(x);
rule from_up at me: r(x) <- up: r(x);
|}

type sent = { dst : string; payload : Payload.t }

let make_runtime ?(name = "me") config_text =
  let cfg = parse_config config_text in
  let decl = Option.get (Config.node cfg name) in
  let node = Node.create decl in
  Node.set_rules node
    ~outgoing:(Config.rules_importing_at cfg name)
    ~incoming:(Config.rules_sourced_at cfg name);
  let outbox = ref [] in
  let rt =
    {
      Runtime.node;
      opts = Options.default;
      send =
        (fun ~dst payload ->
          outbox := { dst = Peer_id.to_string dst; payload } :: !outbox;
          true);
      now = (fun () -> 0.0);
      schedule = (fun ~delay:_ action -> action ());
      connect = (fun _ -> ());
      disconnect = (fun _ -> ());
      neighbours = (fun () -> []);
    }
  in
  (rt, node, outbox)

let drain outbox =
  let messages = List.rev !outbox in
  outbox := [];
  messages

let uid = Ids.update_id (Peer_id.of_string "origin") 1

let peer name = Peer_id.of_string name

let count pred messages = List.length (List.filter pred messages)

let is_ack m = match m.payload with Payload.Update_ack _ -> true | _ -> false

let is_request m =
  match m.payload with Payload.Update_request _ -> true | _ -> false

let is_data m = match m.payload with Payload.Update_data _ -> true | _ -> false

let is_terminated m =
  match m.payload with Payload.Update_terminated _ -> true | _ -> false

let state node = Option.get (Node.update_state node uid)

let test_first_contact_floods_and_serves () =
  let rt, node, outbox = make_runtime middle_config in
  Update.handle rt ~src:(peer "down") ~bytes:100
    (Payload.Update_request { update_id = uid; scope = Payload.Global });
  let messages = drain outbox in
  (* floods the request to the other acquaintance (up), serves its
     incoming link to down with local data, and does NOT ack yet: the
     engaging message is acknowledged on disengagement *)
  Alcotest.(check int) "one request forwarded" 1 (count is_request messages);
  Alcotest.(check bool) "forwarded to up" true
    (List.exists (fun m -> is_request m && m.dst = "up") messages);
  Alcotest.(check int) "initial data to down" 1 (count is_data messages);
  Alcotest.(check int) "no ack yet" 0 (count is_ack messages);
  let st = state node in
  Alcotest.(check bool) "engaged" true st.Update_state.ust_engaged;
  Alcotest.(check int) "deficit = messages owed" 2 st.Update_state.ust_deficit

let test_duplicate_request_acked_immediately () =
  let rt, _node, outbox = make_runtime middle_config in
  Update.handle rt ~src:(peer "down") ~bytes:100
    (Payload.Update_request { update_id = uid; scope = Payload.Global });
  let _ = drain outbox in
  Update.handle rt ~src:(peer "up") ~bytes:100
    (Payload.Update_request { update_id = uid; scope = Payload.Global });
  let messages = drain outbox in
  Alcotest.(check int) "exactly one message" 1 (List.length messages);
  Alcotest.(check bool) "an ack to up" true
    (match messages with [ m ] -> is_ack m && m.dst = "up" | _ -> false)

let test_disengage_acks_parent_when_deficit_clears () =
  let rt, node, outbox = make_runtime middle_config in
  Update.handle rt ~src:(peer "down") ~bytes:100
    (Payload.Update_request { update_id = uid; scope = Payload.Global });
  let _ = drain outbox in
  (* acknowledge both messages "me" sent (the forwarded request and
     the data) *)
  Update.handle rt ~src:(peer "up") ~bytes:20 (Payload.Update_ack { update_id = uid });
  Alcotest.(check int) "still engaged at deficit 1" 1
    (state node).Update_state.ust_deficit;
  Alcotest.(check int) "nothing sent" 0 (List.length (drain outbox));
  Update.handle rt ~src:(peer "down") ~bytes:20 (Payload.Update_ack { update_id = uid });
  let messages = drain outbox in
  Alcotest.(check bool) "disengaged" false (state node).Update_state.ust_engaged;
  Alcotest.(check bool) "parent acked" true
    (match messages with [ m ] -> is_ack m && m.dst = "down" | _ -> false)

let test_reengagement_after_disengage () =
  let rt, node, outbox = make_runtime middle_config in
  Update.handle rt ~src:(peer "down") ~bytes:100
    (Payload.Update_request { update_id = uid; scope = Payload.Global });
  let _ = drain outbox in
  Update.handle rt ~src:(peer "up") ~bytes:20 (Payload.Update_ack { update_id = uid });
  Update.handle rt ~src:(peer "down") ~bytes:20 (Payload.Update_ack { update_id = uid });
  let _ = drain outbox in
  (* now disengaged; fresh data from up re-engages with up as parent *)
  Update.handle rt ~src:(peer "up") ~bytes:50
    (Payload.Update_data
       { update_id = uid; rule_id = "from_up"; tuples = [ tup [ i 2 ] ]; hops = 1;
         global = true });
  let messages = drain outbox in
  let st = state node in
  (* the new tuple triggers propagation to down (deficit 1), so "me"
     stays engaged and does not ack up yet *)
  Alcotest.(check bool) "re-engaged" true st.Update_state.ust_engaged;
  Alcotest.(check int) "data forwarded down" 1 (count is_data messages);
  Alcotest.(check int) "no ack yet" 0 (count is_ack messages);
  (* once down acknowledges, "me" disengages and acks up *)
  Update.handle rt ~src:(peer "down") ~bytes:20 (Payload.Update_ack { update_id = uid });
  let messages = drain outbox in
  Alcotest.(check bool) "ack to the new parent" true
    (match messages with [ m ] -> is_ack m && m.dst = "up" | _ -> false)

let test_initiator_detects_termination () =
  let rt, node, outbox = make_runtime middle_config in
  Update.initiate rt uid;
  let messages = drain outbox in
  Alcotest.(check int) "requests to both acquaintances" 2 (count is_request messages);
  Update.handle rt ~src:(peer "up") ~bytes:20 (Payload.Update_ack { update_id = uid });
  Update.handle rt ~src:(peer "down") ~bytes:20 (Payload.Update_ack { update_id = uid });
  (* one ack per message sent (request x2 + data to down) *)
  Update.handle rt ~src:(peer "down") ~bytes:20 (Payload.Update_ack { update_id = uid });
  let messages = drain outbox in
  let st = state node in
  Alcotest.(check bool) "terminated" true st.Update_state.ust_terminated;
  Alcotest.(check bool) "stats finalised" true st.Update_state.ust_finished;
  Alcotest.(check int) "terminated flood to both" 2 (count is_terminated messages)

let test_terminated_flood_closes_links () =
  let rt, node, outbox = make_runtime middle_config in
  Update.handle rt ~src:(peer "down") ~bytes:100
    (Payload.Update_request { update_id = uid; scope = Payload.Global });
  let _ = drain outbox in
  Update.handle rt ~src:(peer "down") ~bytes:20
    (Payload.Update_terminated { update_id = uid });
  let messages = drain outbox in
  let st = state node in
  Alcotest.(check bool) "out link closed" true
    (Update_state.out_state st "from_up" = Update_state.Link_closed);
  Alcotest.(check bool) "in link closed" true
    (Update_state.in_state st "to_down" = Update_state.Link_closed);
  Alcotest.(check int) "flood forwarded to up only" 1 (count is_terminated messages);
  (* a second terminated is absorbed silently *)
  Update.handle rt ~src:(peer "up") ~bytes:20
    (Payload.Update_terminated { update_id = uid });
  Alcotest.(check int) "no re-flood" 0 (List.length (drain outbox))

let test_link_closed_cascades () =
  let rt, _node, outbox = make_runtime middle_config in
  Update.handle rt ~src:(peer "down") ~bytes:100
    (Payload.Update_request { update_id = uid; scope = Payload.Global });
  let _ = drain outbox in
  (* up closes me's only outgoing link; me's incoming link to down
     depends on it, so me must cascade the closure to down *)
  Update.handle rt ~src:(peer "up") ~bytes:30
    (Payload.Update_link_closed { update_id = uid; rule_id = "from_up"; global = true });
  let messages = drain outbox in
  Alcotest.(check bool) "closure cascaded to down" true
    (List.exists
       (fun m ->
         match m.payload with
         | Payload.Update_link_closed { rule_id = "to_down"; _ } -> m.dst = "down"
         | _ -> false)
       messages)

let test_scoped_request_activates_one_link () =
  let rt, node, outbox = make_runtime middle_config in
  Update.handle rt ~src:(peer "down") ~bytes:100
    (Payload.Update_request { update_id = uid; scope = Payload.For_rule "to_down" });
  let messages = drain outbox in
  let st = state node in
  Alcotest.(check bool) "scoped state" true st.Update_state.ust_scoped;
  Alcotest.(check bool) "incoming active" true
    (Update_state.is_active_in st "to_down");
  Alcotest.(check bool) "relevant outgoing activated" true
    (Update_state.is_active_out st "from_up");
  Alcotest.(check int) "initial data served" 1 (count is_data messages);
  (* the upstream request is scoped, not a flood *)
  Alcotest.(check bool) "scoped request upstream" true
    (List.exists
       (fun m ->
         match m.payload with
         | Payload.Update_request { scope = Payload.For_rule "from_up"; _ } ->
             m.dst = "up"
         | _ -> false)
       messages)

let test_late_data_after_termination_absorbed () =
  (* a straggler data message arriving after the terminated flood:
     the node re-engages, integrates, immediately disengages (nothing
     to forward: links are closed) and acks — no crash, no leak *)
  let rt, node, outbox = make_runtime middle_config in
  Update.handle rt ~src:(peer "down") ~bytes:100
    (Payload.Update_request { update_id = uid; scope = Payload.Global });
  let _ = drain outbox in
  (* both outstanding messages acked: the node disengages... *)
  Update.handle rt ~src:(peer "up") ~bytes:20 (Payload.Update_ack { update_id = uid });
  Update.handle rt ~src:(peer "down") ~bytes:20 (Payload.Update_ack { update_id = uid });
  let _ = drain outbox in
  (* ...then the terminated flood closes its links... *)
  Update.handle rt ~src:(peer "down") ~bytes:20
    (Payload.Update_terminated { update_id = uid });
  let _ = drain outbox in
  Update.handle rt ~src:(peer "up") ~bytes:50
    (Payload.Update_data
       { update_id = uid; rule_id = "from_up"; tuples = [ tup [ i 9 ] ]; hops = 1;
         global = true });
  let messages = drain outbox in
  let st = state node in
  Alcotest.(check bool) "tuple still integrated" true
    (Codb_relalg.Relation.mem
       (Codb_relalg.Database.relation node.Node.store "r")
       (tup [ i 9 ]));
  Alcotest.(check bool) "disengaged again" false st.Update_state.ust_engaged;
  Alcotest.(check bool) "straggler acked" true
    (match messages with [ m ] -> is_ack m && m.dst = "up" | _ -> false)

let test_ack_for_unknown_update_ignored () =
  let rt, _, outbox = make_runtime middle_config in
  Update.handle rt ~src:(peer "up") ~bytes:20 (Payload.Update_ack { update_id = uid });
  Alcotest.(check int) "nothing happens" 0 (List.length (drain outbox))

let suite =
  [
    Alcotest.test_case "first contact floods and serves" `Quick
      test_first_contact_floods_and_serves;
    Alcotest.test_case "late data after termination" `Quick
      test_late_data_after_termination_absorbed;
    Alcotest.test_case "stray acks ignored" `Quick test_ack_for_unknown_update_ignored;
    Alcotest.test_case "duplicate requests acked immediately" `Quick
      test_duplicate_request_acked_immediately;
    Alcotest.test_case "disengagement acks the parent" `Quick
      test_disengage_acks_parent_when_deficit_clears;
    Alcotest.test_case "re-engagement in cycles" `Quick test_reengagement_after_disengage;
    Alcotest.test_case "initiator detects termination" `Quick
      test_initiator_detects_termination;
    Alcotest.test_case "terminated flood closes links" `Quick
      test_terminated_flood_closes_links;
    Alcotest.test_case "link closure cascades" `Quick test_link_closed_cascades;
    Alcotest.test_case "scoped request activates one link" `Quick
      test_scoped_request_activates_one_link;
  ]
