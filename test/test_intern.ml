(* The intern table's contract: [pack] is injective up to
   [Value.compare]-equality, [unpack] inverts it up to the same
   equivalence and returns shared canonical boxes, and the packed
   order/hash agree with the boxed ones.  Exercised over generators
   covering every [Value.t] constructor, including the nasty corners:
   NaN, -0., ints and holes outside the 60-bit payload range, and
   marked nulls whose rule tags differ. *)

open Helpers
module Intern = Codb_relalg.Intern
module Q2 = QCheck2
module Gen = QCheck2.Gen

let gen_int_value =
  Gen.oneof
    [
      Gen.map i (Gen.int_range (-100) 100);
      Gen.map i Gen.int;
      Gen.oneofl [ i min_int; i max_int; i (max_int asr 3); i ((max_int asr 3) + 1) ];
    ]

let gen_float_value =
  Gen.oneof
    [
      Gen.map (fun f -> Value.Float f) Gen.float;
      Gen.oneofl
        [
          Value.Float Float.nan;
          Value.Float (-0.);
          Value.Float 0.;
          Value.Float Float.infinity;
          Value.Float Float.neg_infinity;
        ];
    ]

let gen_str_value = Gen.map s Gen.(string_size ~gen:printable (int_range 0 12))

let gen_null_value =
  Gen.map2
    (fun null_id null_rule -> Value.Null { Value.null_id; null_rule })
    (Gen.int_range 1 40)
    Gen.(oneofl [ "r1"; "r2"; "rx" ])

let gen_hole_value =
  Gen.oneof
    [
      Gen.map (fun k -> Value.Hole k) (Gen.int_range 0 10);
      Gen.oneofl [ Value.Hole max_int; Value.Hole ((max_int asr 3) + 1) ];
    ]

let gen_value =
  Gen.oneof
    [
      gen_int_value;
      gen_float_value;
      gen_str_value;
      Gen.map (fun b -> Value.Bool b) Gen.bool;
      gen_null_value;
      gen_hole_value;
    ]

let sign n = Stdlib.compare n 0

let prop_round_trip =
  Q2.Test.make ~name:"intern round-trips: compare (canonical v) v = 0" ~count:2000
    gen_value
    (fun v -> Value.compare (Intern.canonical v) v = 0)

let prop_pack_injective_up_to_compare =
  Q2.Test.make ~name:"pack equality = Value.compare equality" ~count:2000
    (Gen.pair gen_value gen_value)
    (fun (a, b) -> Intern.equal (Intern.pack a) (Intern.pack b) = (Value.compare a b = 0))

let prop_packed_compare_consistent =
  Q2.Test.make ~name:"packed compare agrees with Value.compare" ~count:2000
    (Gen.pair gen_value gen_value)
    (fun (a, b) ->
      sign (Intern.compare (Intern.pack a) (Intern.pack b)) = sign (Value.compare a b))

let prop_canonical_idempotent_and_shared =
  Q2.Test.make ~name:"canonical boxes are shared (== stable)" ~count:1000 gen_value
    (fun v ->
      let c1 = Intern.canonical v in
      let c2 = Intern.canonical v in
      c1 == c2 && Intern.canonical c1 == c1)

let prop_predicates_match =
  Q2.Test.make ~name:"packed is_hole/is_null mirror the boxed predicates" ~count:1000
    gen_value
    (fun v ->
      let p = Intern.pack v in
      Intern.is_hole p = Value.is_hole v && Intern.is_null p = Value.is_null v)

let prop_tuple_hash_consistent =
  Q2.Test.make ~name:"Tuple.hash is consistent with Tuple.equal" ~count:1000
    (Gen.pair (Gen.list_size (Gen.int_range 1 4) gen_value)
       (Gen.list_size (Gen.int_range 1 4) gen_value))
    (fun (l1, l2) ->
      let t1 = tup l1 and t2 = tup l2 in
      (not (Tuple.equal t1 t2)) || Tuple.hash t1 = Tuple.hash t2)

let test_overflow_ints_round_trip () =
  List.iter
    (fun n ->
      Alcotest.(check bool)
        (Printf.sprintf "int %d" n)
        true
        (Value.compare (Intern.canonical (i n)) (i n) = 0))
    [ min_int; max_int; (max_int asr 3) + 1; -((max_int asr 3) + 2) ]

let test_null_rule_is_provenance () =
  (* same id, different rule: one packed identity, like Value.compare *)
  let n1 = Value.Null { Value.null_id = 7; null_rule = "a" } in
  let n2 = Value.Null { Value.null_id = 7; null_rule = "b" } in
  Alcotest.(check bool) "same packed" true (Intern.pack n1 = Intern.pack n2)

let test_reset_starts_new_epoch () =
  Value.reset_null_counter ();
  let n1 = Value.fresh_null ~rule:"first" in
  let p1 = Intern.pack n1 in
  Value.reset_null_counter ();
  let n2 = Value.fresh_null ~rule:"second" in
  (* same reissued id, but a fresh intern epoch: the canonical box
     carries the new rule, not the stale one *)
  (match Intern.unpack (Intern.pack n2) with
  | Value.Null { Value.null_rule; _ } ->
      Alcotest.(check string) "new epoch rule" "second" null_rule
  | _ -> Alcotest.fail "expected a null");
  (* packed values of the old epoch still unpack *)
  match Intern.unpack p1 with
  | Value.Null { Value.null_rule; _ } ->
      Alcotest.(check string) "old epoch rule" "first" null_rule
  | _ -> Alcotest.fail "expected a null"

let suite =
  [
    Alcotest.test_case "overflow ints round trip" `Quick test_overflow_ints_round_trip;
    Alcotest.test_case "null rule is provenance, not identity" `Quick
      test_null_rule_is_provenance;
    Alcotest.test_case "null-counter reset starts a new intern epoch" `Quick
      test_reset_starts_new_epoch;
  ]
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_round_trip;
        prop_pack_injective_up_to_compare;
        prop_packed_compare_consistent;
        prop_canonical_idempotent_and_shared;
        prop_predicates_match;
        prop_tuple_hash_consistent;
      ]
