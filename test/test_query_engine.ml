open Helpers
module System = Codb_core.System
module Topology = Codb_core.Topology

let chain_cfg () =
  parse_config
    {|
node n0 { relation who(name: string); }
node n1 { relation person(name: string, dept: string);
          fact person("carol", "bio"); }
node n2 { relation person(name: string, dept: string);
          fact person("alice", "cs");
          fact person("bob", "cs"); }
rule r10 at n1: person(x, d) <- n2: person(x, d);
rule r01 at n0: who(x) <- n1: person(x, d);
|}

let test_query_fetches_remote_data () =
  let sys = System.build_exn (chain_cfg ()) in
  let outcome = System.run_query sys ~at:"n0" (parse_query "w(x) <- who(x)") in
  check_tuples "all three names"
    [ tup [ s "alice" ]; tup [ s "bob" ]; tup [ s "carol" ] ]
    outcome.System.qo_answers

let test_query_does_not_materialise () =
  let sys = System.build_exn (chain_cfg ()) in
  let before = System.total_tuples sys in
  let _ = System.run_query sys ~at:"n0" (parse_query "w(x) <- who(x)") in
  Alcotest.(check int) "stores unchanged" before (System.total_tuples sys)

let test_query_local_only_when_no_relevant_rule () =
  let sys = System.build_exn (chain_cfg ()) in
  (* n1's person query pulls from n2 but not from n0 (no such rule) *)
  let outcome = System.run_query sys ~at:"n1" (parse_query "p(x) <- person(x, d)") in
  check_tuples "n1 names"
    [ tup [ s "alice" ]; tup [ s "bob" ]; tup [ s "carol" ] ]
    outcome.System.qo_answers

let test_query_with_selection () =
  let sys = System.build_exn (chain_cfg ()) in
  let outcome =
    System.run_query sys ~at:"n1" (parse_query "p(x) <- person(x, d), d = \"cs\"")
  in
  check_tuples "cs only" [ tup [ s "alice" ]; tup [ s "bob" ] ] outcome.System.qo_answers

let test_query_equals_update_on_dag () =
  (* on an acyclic network, query-time answers = after-update local
     answers *)
  let mk () = Topology.generate ~seed:77 Topology.Binary_tree ~n:7
      ~params:{ Topology.default_params with tuples_per_node = 12 } in
  let q = parse_query "o(x, y) <- data(x, y)" in
  let sys_q = System.build_exn (mk ()) in
  let outcome = System.run_query sys_q ~at:"n0" q in
  let sys_u = System.build_exn (mk ()) in
  let _ = System.run_update sys_u ~initiator:"n0" in
  check_tuples "query = materialised" (System.local_answers sys_u ~at:"n0" q)
    outcome.System.qo_answers

let test_query_on_cycle_terminates () =
  let cfg =
    parse_config
      {|
node a { relation r(x: int); fact r(1); }
node b { relation r(x: int); fact r(2); }
rule ab at a: r(x) <- b: r(x);
rule ba at b: r(x) <- a: r(x);
|}
  in
  let sys = System.build_exn cfg in
  let outcome = System.run_query sys ~at:"a" (parse_query "o(x) <- r(x)") in
  (* simple paths: a sees b's data; labels stop the loop *)
  check_tuples "union over simple paths" [ tup [ i 1 ]; tup [ i 2 ] ]
    outcome.System.qo_answers

let test_query_existential_yields_nulls () =
  let cfg =
    parse_config
      {|
node a { relation r(x: int, y: int); }
node b { relation q(x: int); fact q(5); }
rule e at a: r(x, z) <- b: q(x);
|}
  in
  let sys = System.build_exn cfg in
  let outcome = System.run_query sys ~at:"a" (parse_query "o(x, y) <- r(x, y)") in
  Alcotest.(check int) "one answer" 1 (List.length outcome.System.qo_answers);
  Alcotest.(check int) "not certain" 0 (List.length outcome.System.qo_certain)

let test_concurrent_queries_do_not_interfere () =
  let sys = System.build_exn (chain_cfg ()) in
  let rt0 = System.runtime sys "n0" in
  let rt1 = System.runtime sys "n1" in
  let n0 = System.node sys "n0" and n1 = System.node sys "n1" in
  let qid0 = Codb_core.Ids.query_id n0.Codb_core.Node.node_id 100 in
  let qid1 = Codb_core.Ids.query_id n1.Codb_core.Node.node_id 101 in
  let ref0 = Codb_core.Query_engine.start rt0 qid0 (parse_query "w(x) <- who(x)") in
  let ref1 =
    Codb_core.Query_engine.start rt1 qid1 (parse_query "p(x) <- person(x, d)")
  in
  let _ = System.run sys in
  let r0 = Option.get (Codb_core.Query_engine.result n0 ref0) in
  let r1 = Option.get (Codb_core.Query_engine.result n1 ref1) in
  Alcotest.(check int) "n0 query" 3 (List.length r0);
  Alcotest.(check int) "n1 query" 3 (List.length r1)

let test_query_rejects_unknown_relation () =
  let sys = System.build_exn (chain_cfg ()) in
  Alcotest.(check bool) "raises" true
    (try
       ignore (System.run_query sys ~at:"n0" (parse_query "w(x) <- nosuch(x)"));
       false
     with Invalid_argument _ -> true)

let test_query_stats_recorded () =
  let sys = System.build_exn (chain_cfg ()) in
  let outcome = System.run_query sys ~at:"n0" (parse_query "w(x) <- who(x)") in
  Alcotest.(check bool) "nonzero latency" true
    (outcome.System.qo_finished > outcome.System.qo_started);
  Alcotest.(check bool) "data messages counted" true (outcome.System.qo_data_msgs >= 2);
  Alcotest.(check bool) "bytes counted" true (outcome.System.qo_bytes > 0)

let test_streaming_batches () =
  let sys = System.build_exn (chain_cfg ()) in
  let batches = ref [] in
  let outcome =
    System.run_query sys
      ~on_partial:(fun tuples -> batches := tuples :: !batches)
      ~at:"n1"
      (parse_query "p(x) <- person(x, d)")
  in
  let batches = List.rev !batches in
  (* the first batch is what n1 knows locally, before any message *)
  (match batches with
  | first :: _ -> check_tuples "local answers first" [ tup [ s "carol" ] ] first
  | [] -> Alcotest.fail "nothing streamed");
  (* batches are disjoint and their union is the final answer set *)
  let all = List.concat batches in
  let distinct = Relation.Tuple_set.of_list all in
  Alcotest.(check int) "no duplicates across batches"
    (Relation.Tuple_set.cardinal distinct)
    (List.length all);
  check_tuples "union = final result" outcome.System.qo_answers all

let test_streaming_empty_when_no_answers () =
  let sys = System.build_exn (chain_cfg ()) in
  let calls = ref 0 in
  let _ =
    System.run_query sys
      ~on_partial:(fun _ -> incr calls)
      ~at:"n0"
      (parse_query "w(x) <- who(x), x = \"nobody\"")
  in
  Alcotest.(check int) "callback never fired" 0 !calls

let suite =
  [
    Alcotest.test_case "fetches remote data through rules" `Quick
      test_query_fetches_remote_data;
    Alcotest.test_case "streams batches, local first, no duplicates" `Quick
      test_streaming_batches;
    Alcotest.test_case "streams nothing when empty" `Quick
      test_streaming_empty_when_no_answers;
    Alcotest.test_case "leaves local stores untouched" `Quick
      test_query_does_not_materialise;
    Alcotest.test_case "pulls only through relevant rules" `Quick
      test_query_local_only_when_no_relevant_rule;
    Alcotest.test_case "selection predicates apply" `Quick test_query_with_selection;
    Alcotest.test_case "equals materialised answers on a DAG" `Quick
      test_query_equals_update_on_dag;
    Alcotest.test_case "terminates on cycles via labels" `Quick
      test_query_on_cycle_terminates;
    Alcotest.test_case "existential rules yield non-certain answers" `Quick
      test_query_existential_yields_nulls;
    Alcotest.test_case "concurrent queries are isolated" `Quick
      test_concurrent_queries_do_not_interfere;
    Alcotest.test_case "unknown relation rejected" `Quick
      test_query_rejects_unknown_relation;
    Alcotest.test_case "statistics recorded" `Quick test_query_stats_recorded;
  ]
