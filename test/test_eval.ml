open Helpers

(* r(a,b), s(b,c):
   r = {(1,10), (2,20), (3,10)}
   s = {(10,"x"), (20,"y")} *)
let sample_db () =
  db_of [ r_schema; s_schema ]
    [
      ("r", tup [ i 1; i 10 ]);
      ("r", tup [ i 2; i 20 ]);
      ("r", tup [ i 3; i 10 ]);
      ("s", tup [ i 10; s "x" ]);
      ("s", tup [ i 20; s "y" ]);
    ]

let test_single_atom_scan () =
  let db = sample_db () in
  let q = parse_query "ans(x, y) <- r(x, y)" in
  let answers = Eval.answer_tuples (Eval.of_database db) q in
  check_tuples "all of r"
    [ tup [ i 1; i 10 ]; tup [ i 2; i 20 ]; tup [ i 3; i 10 ] ]
    answers

let test_join () =
  let db = sample_db () in
  let q = parse_query "ans(x, c) <- r(x, b), s(b, c)" in
  let answers = Eval.answer_tuples (Eval.of_database db) q in
  check_tuples "join"
    [ tup [ i 1; s "x" ]; tup [ i 2; s "y" ]; tup [ i 3; s "x" ] ]
    answers

let test_constant_selection () =
  let db = sample_db () in
  let q = parse_query "ans(y) <- r(1, y)" in
  check_tuples "constant in atom" [ tup [ i 10 ] ]
    (Eval.answer_tuples (Eval.of_database db) q)

let test_repeated_variable () =
  let db =
    db_of [ r_schema ] [ ("r", tup [ i 1; i 1 ]); ("r", tup [ i 1; i 2 ]) ]
  in
  let q = parse_query "ans(x) <- r(x, x)" in
  check_tuples "diagonal" [ tup [ i 1 ] ] (Eval.answer_tuples (Eval.of_database db) q)

let test_comparisons () =
  let db = sample_db () in
  let q = parse_query "ans(x, b) <- r(x, b), b >= 20" in
  check_tuples "b >= 20" [ tup [ i 2; i 20 ] ]
    (Eval.answer_tuples (Eval.of_database db) q);
  let q2 = parse_query "ans(x) <- r(x, b), x != 3, b = 10" in
  check_tuples "x != 3, b = 10" [ tup [ i 1 ] ]
    (Eval.answer_tuples (Eval.of_database db) q2)

let test_variable_to_variable_comparison () =
  let db =
    db_of [ r_schema ] [ ("r", tup [ i 1; i 5 ]); ("r", tup [ i 7; i 5 ]) ]
  in
  let q = parse_query "ans(x, y) <- r(x, y), x < y" in
  check_tuples "x < y" [ tup [ i 1; i 5 ] ]
    (Eval.answer_tuples (Eval.of_database db) q)

let test_self_join () =
  (* paths of length 2 in r seen as an edge relation *)
  let db =
    db_of [ r_schema ]
      [ ("r", tup [ i 1; i 2 ]); ("r", tup [ i 2; i 3 ]); ("r", tup [ i 3; i 4 ]) ]
  in
  let q = parse_query "ans(x, z) <- r(x, y), r(y, z)" in
  check_tuples "two-step paths"
    [ tup [ i 1; i 3 ]; tup [ i 2; i 4 ] ]
    (Eval.answer_tuples (Eval.of_database db) q)

let test_empty_relation () =
  let db = db_of [ r_schema; s_schema ] [ ("r", tup [ i 1; i 10 ]) ] in
  let q = parse_query "ans(x, c) <- r(x, b), s(b, c)" in
  check_tuples "empty join" [] (Eval.answer_tuples (Eval.of_database db) q)

let test_unknown_relation_is_empty () =
  let db = sample_db () in
  let q = parse_query "ans(x) <- zzz(x)" in
  check_tuples "unknown rel" [] (Eval.answer_tuples (Eval.of_database db) q)

let test_nulls_join_by_identity () =
  let null = Value.fresh_null ~rule:"t" in
  let other = Value.fresh_null ~rule:"t" in
  let rn = Schema.make "rn" [ ("a", Value.Tint); ("b", Value.Tint) ] in
  let sn = Schema.make "sn" [ ("b", Value.Tint); ("c", Value.Tint) ] in
  let db =
    db_of [ rn; sn ]
      [ ("rn", tup [ i 1; null ]); ("sn", tup [ null; i 7 ]); ("sn", tup [ other; i 8 ]) ]
  in
  let q = parse_query "ans(x, c) <- rn(x, b), sn(b, c)" in
  check_tuples "join through the same null" [ tup [ i 1; i 7 ] ]
    (Eval.answer_tuples (Eval.of_database db) q)

(* A deliberately naive reference evaluator: enumerate all tuple
   combinations, check every atom and comparison.  Used to validate
   the real evaluator on the same inputs. *)
let reference_answers source (q : Query.t) =
  let tuples_of rel = (source rel).Eval.all () in
  let rec assignments subst = function
    | [] -> [ subst ]
    | a :: rest ->
        List.concat_map
          (fun tuple ->
            let bind acc (term, value) =
              match acc with
              | None -> None
              | Some sub -> (
                  match term with
                  | Term.Cst cst -> if Value.equal cst value then acc else None
                  | Term.Var var -> (
                      match Codb_cq.Subst.find var sub with
                      | Some bound -> if Value.equal bound value then acc else None
                      | None -> Some (Codb_cq.Subst.bind var value sub)))
            in
            let pairs = List.combine a.Atom.args (Array.to_list tuple) in
            match List.fold_left bind (Some subst) pairs with
            | Some sub -> assignments sub rest
            | None -> [])
          (tuples_of a.Atom.rel)
  in
  let satisfies sub (cmp : Query.comparison) =
    match
      (Codb_cq.Subst.apply_term sub cmp.Query.left, Codb_cq.Subst.apply_term sub cmp.Query.right)
    with
    | Some v1, Some v2 -> Query.eval_comparison_op cmp.Query.op v1 v2
    | _ -> false
  in
  let subs =
    List.filter
      (fun sub -> List.for_all (satisfies sub) q.Query.comparisons)
      (assignments Codb_cq.Subst.empty q.Query.body)
  in
  let project acc sub =
    match Codb_cq.Subst.apply_atom sub q.Query.head with
    | Some t -> Relation.Tuple_set.add t acc
    | None -> acc
  in
  Relation.Tuple_set.elements (List.fold_left project Relation.Tuple_set.empty subs)

let test_against_reference () =
  let db = sample_db () in
  let queries =
    [
      "ans(x, y) <- r(x, y)";
      "ans(x, c) <- r(x, b), s(b, c)";
      "ans(x) <- r(x, b), b > 5, b < 15";
      "ans(x, z) <- r(x, y), r(z, y), x != z";
      "ans(c) <- s(b, c), r(1, b)";
    ]
  in
  List.iter
    (fun text ->
      let q = parse_query text in
      let source = Eval.of_database db in
      check_tuples text (reference_answers source q) (Eval.answer_tuples source q))
    queries

let test_indexed_equals_scan () =
  (* the probing access path must answer exactly like the scan-only
     one on every query shape *)
  let db = sample_db () in
  let indexed = Eval.of_database db in
  let scan =
    Eval.source_of_alist [ ("r", Database.tuples db "r"); ("s", Database.tuples db "s") ]
  in
  List.iter
    (fun text ->
      let q = parse_query text in
      check_tuples text (Eval.answer_tuples scan q) (Eval.answer_tuples indexed q))
    [
      "ans(x, y) <- r(x, y)";
      "ans(x, c) <- r(x, b), s(b, c)";
      "ans(y) <- r(1, y)";
      "ans(x, z) <- r(x, y), r(z, y)";
      "ans(c) <- s(b, c), r(1, b), b > 5";
    ]

let test_probe_with_wrong_arity_atom () =
  (* an atom of the wrong arity matches nothing and must not make the
     index raise *)
  let db = sample_db () in
  let q = parse_query "ans(x) <- r(1, x, x)" in
  check_tuples "no match" [] (Eval.answer_tuples (Eval.of_database db) q)

let test_delta_basic () =
  (* delta evaluation only derives answers involving the delta *)
  let db = sample_db () in
  let delta = [ tup [ i 9; i 20 ] ] in
  ignore (Database.insert_all db "r" delta);
  let q = parse_query "ans(x, c) <- r(x, b), s(b, c)" in
  let substs = Eval.delta_answers (Eval.of_database db) ~delta_rel:"r" ~delta q in
  let tuples = Codb_cq.Apply.head_tuples q substs in
  check_tuples "only delta-derived" [ tup [ i 9; s "y" ] ] tuples

let test_delta_no_mention () =
  let db = sample_db () in
  let q = parse_query "ans(b, c) <- s(b, c)" in
  let substs =
    Eval.delta_answers (Eval.of_database db) ~delta_rel:"r" ~delta:[ tup [ i 1; i 10 ] ] q
  in
  Alcotest.(check int) "irrelevant delta" 0 (List.length substs)

let test_delta_self_join_complete_and_exact () =
  (* r = {(1,2)}, delta adds (2,3): the new paths are (1,3) via
     old x delta; plus any paths using only the delta.  Semi-naive
     evaluation must find exactly the answers that full re-evaluation
     gains. *)
  let edge = Schema.make "e" [ ("a", Value.Tint); ("b", Value.Tint) ] in
  let db = db_of [ edge ] [ ("e", tup [ i 1; i 2 ]) ] in
  let q = parse_query "ans(x, z) <- e(x, y), e(y, z)" in
  let before = Eval.answer_tuples (Eval.of_database db) q in
  let delta = [ tup [ i 2; i 3 ]; tup [ i 3; i 1 ] ] in
  ignore (Database.insert_all db "e" delta);
  let after = Eval.answer_tuples (Eval.of_database db) q in
  let gained =
    List.filter (fun t -> not (List.exists (Tuple.equal t) before)) after
  in
  let substs = Eval.delta_answers (Eval.of_database db) ~delta_rel:"e" ~delta q in
  let derived = Codb_cq.Apply.head_tuples q substs in
  check_tuples "delta derives exactly the gain" gained derived

let test_delta_naive_mode_matches_full () =
  let db = sample_db () in
  let q = parse_query "ans(x, c) <- r(x, b), s(b, c)" in
  let substs =
    Eval.delta_answers ~naive:true (Eval.of_database db) ~delta_rel:"r"
      ~delta:[ tup [ i 1; i 10 ] ] q
  in
  let tuples = Codb_cq.Apply.head_tuples q substs in
  check_tuples "naive = full re-evaluation"
    (Eval.answer_tuples (Eval.of_database db) q)
    tuples

let test_certain_filters_nulls () =
  let null = Value.fresh_null ~rule:"t" in
  let tuples = [ tup [ i 1; i 2 ]; tup [ i 1; null ] ] in
  check_tuples "null-free" [ tup [ i 1; i 2 ] ] (Eval.certain tuples)

let test_answer_tuples_rejects_existential_head () =
  let db = sample_db () in
  let q =
    Query.make ~head:(atom "ans" [ v "x"; v "fresh" ]) ~body:[ atom "r" [ v "x"; v "y" ] ] ()
  in
  Alcotest.(check bool)
    "raises" true
    (try
       ignore (Eval.answer_tuples (Eval.of_database db) q);
       false
     with Invalid_argument _ -> true)

let test_zone_maps_answers_unchanged () =
  (* big enough for several 4096-row chunks, selective enough to prune *)
  let db = db_of [ r_schema ] [] in
  let rel = Codb_relalg.Database.relation db "r" in
  for k = 0 to 9999 do
    ignore (Codb_relalg.Relation.insert rel (tup [ i k; i (k mod 50) ]))
  done;
  let q = parse_query "ans(x, y) <- r(x, y), x < 120, y > 10" in
  let source = Eval.of_database db in
  let off = Eval.answer_tuples ~zone_maps:false source q in
  Eval.reset_counters ();
  let on = Eval.answer_tuples ~zone_maps:true source q in
  check_tuples "zone maps change nothing but the scan" off on;
  let c = Eval.counters () in
  Alcotest.(check bool) "chunks were pruned" true (c.Eval.zone_pruned > 0);
  Alcotest.(check bool) "surviving chunks were visited" true (c.Eval.zone_visited > 0)

let suite =
  [
    Alcotest.test_case "single atom scan" `Quick test_single_atom_scan;
    Alcotest.test_case "binary join" `Quick test_join;
    Alcotest.test_case "constants select" `Quick test_constant_selection;
    Alcotest.test_case "repeated variables" `Quick test_repeated_variable;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "variable-variable comparison" `Quick
      test_variable_to_variable_comparison;
    Alcotest.test_case "self join" `Quick test_self_join;
    Alcotest.test_case "empty relation" `Quick test_empty_relation;
    Alcotest.test_case "unknown relation yields nothing" `Quick
      test_unknown_relation_is_empty;
    Alcotest.test_case "nulls join by identity" `Quick test_nulls_join_by_identity;
    Alcotest.test_case "agrees with reference evaluator" `Quick test_against_reference;
    Alcotest.test_case "indexed = scan-only access path" `Quick test_indexed_equals_scan;
    Alcotest.test_case "wrong-arity atoms do not break probing" `Quick
      test_probe_with_wrong_arity_atom;
    Alcotest.test_case "delta: basic" `Quick test_delta_basic;
    Alcotest.test_case "delta: irrelevant relation" `Quick test_delta_no_mention;
    Alcotest.test_case "delta: self-join exactness" `Quick
      test_delta_self_join_complete_and_exact;
    Alcotest.test_case "delta: naive mode" `Quick test_delta_naive_mode_matches_full;
    Alcotest.test_case "certain answers" `Quick test_certain_filters_nulls;
    Alcotest.test_case "user query rejects existential head" `Quick
      test_answer_tuples_rejects_existential_head;
    Alcotest.test_case "zone maps leave answers unchanged" `Quick
      test_zone_maps_answers_unchanged;
  ]
