module Peer_id = Codb_net.Peer_id
module Network = Codb_net.Network
module Message = Codb_net.Message
module Pipe = Codb_net.Pipe
module Event_queue = Codb_net.Event_queue
module Fault = Codb_net.Fault

let p = Peer_id.of_string

let make_net () =
  Network.create ~size_of:(fun ~src:_ ~dst:_ s -> String.length s) ()

let two_peers () =
  let net = make_net () in
  Network.add_peer net (p "a");
  Network.add_peer net (p "b");
  Network.connect net (p "a") (p "b");
  net

let test_event_queue_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3.0 "third";
  Event_queue.push q ~time:1.0 "first";
  Event_queue.push q ~time:2.0 "second";
  let pop () = snd (Option.get (Event_queue.pop q)) in
  Alcotest.(check string) "1" "first" (pop ());
  Alcotest.(check string) "2" "second" (pop ());
  Alcotest.(check string) "3" "third" (pop ());
  Alcotest.(check bool) "empty" true (Event_queue.pop q = None)

let test_event_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun s -> Event_queue.push q ~time:1.0 s) [ "a"; "b"; "c"; "d" ];
  let order = List.init 4 (fun _ -> snd (Option.get (Event_queue.pop q))) in
  Alcotest.(check (list string)) "insertion order" [ "a"; "b"; "c"; "d" ] order

let test_event_queue_many () =
  let q = Event_queue.create () in
  let n = 1000 in
  List.iter (fun k -> Event_queue.push q ~time:(float_of_int ((k * 7919) mod n)) k)
    (List.init n (fun k -> k));
  let rec drain last count =
    match Event_queue.pop q with
    | None -> count
    | Some (time, _) ->
        Alcotest.(check bool) "non-decreasing" true (time >= last);
        drain time (count + 1)
  in
  Alcotest.(check int) "all drained" n (drain neg_infinity 0)

let test_delivery () =
  let net = two_peers () in
  let received = ref [] in
  Network.set_handler net (p "b") (fun msg ->
      received := msg.Message.payload :: !received);
  Alcotest.(check bool) "sent" true (Network.send net ~src:(p "a") ~dst:(p "b") "hello");
  let _ = Network.run net in
  Alcotest.(check (list string)) "delivered" [ "hello" ] !received;
  Alcotest.(check bool) "time advanced" true (Network.now net > 0.0)

let test_no_pipe_drops () =
  let net = make_net () in
  Network.add_peer net (p "a");
  Network.add_peer net (p "b");
  Alcotest.(check bool) "dropped" false (Network.send net ~src:(p "a") ~dst:(p "b") "x");
  Alcotest.(check int) "counter" 1 (Network.counters net).Network.dropped

let test_closed_pipe_drops () =
  let net = two_peers () in
  Network.disconnect net (p "a") (p "b");
  Alcotest.(check bool) "dropped" false (Network.send net ~src:(p "a") ~dst:(p "b") "x");
  Network.connect net (p "a") (p "b");
  Alcotest.(check bool) "reopened" true (Network.send net ~src:(p "a") ~dst:(p "b") "x")

let test_in_flight_survives_close () =
  let net = two_peers () in
  let got = ref 0 in
  Network.set_handler net (p "b") (fun _ -> incr got);
  ignore (Network.send net ~src:(p "a") ~dst:(p "b") "x");
  Network.disconnect net (p "a") (p "b");
  let _ = Network.run net in
  Alcotest.(check int) "still delivered" 1 !got

let test_removed_peer_drops_at_delivery () =
  let net = two_peers () in
  Network.set_handler net (p "b") (fun _ -> Alcotest.fail "should not deliver");
  ignore (Network.send net ~src:(p "a") ~dst:(p "b") "x");
  Network.remove_peer net (p "b");
  let _ = Network.run net in
  Alcotest.(check int) "dropped at delivery" 1 (Network.counters net).Network.dropped

let test_dropped_bytes () =
  let net = make_net () in
  Network.add_peer net (p "a");
  Network.add_peer net (p "b");
  (* no pipe: dropped at send, envelope included *)
  ignore (Network.send net ~src:(p "a") ~dst:(p "b") "12345");
  let c = Network.counters net in
  Alcotest.(check int) "send-time dropped bytes" (5 + Message.header_bytes)
    c.Network.dropped_bytes;
  Alcotest.(check int) "nothing carried" 0 c.Network.total_bytes;
  (* delivery-time drop: peer removed while the message is in flight *)
  Network.connect net (p "a") (p "b");
  ignore (Network.send net ~src:(p "a") ~dst:(p "b") "abc");
  Network.remove_peer net (p "b");
  let _ = Network.run net in
  let c = Network.counters net in
  Alcotest.(check int) "both drops accounted"
    (5 + 3 + (2 * Message.header_bytes))
    c.Network.dropped_bytes;
  Alcotest.(check int) "two dropped messages" 2 c.Network.dropped

let test_fifo_order () =
  (* a large message then a small one: FIFO sequencing must keep the
     order despite the smaller transfer delay *)
  let net = make_net () in
  Network.add_peer net (p "a");
  Network.add_peer net (p "b");
  Network.connect net ~latency:0.001 ~byte_cost:0.001 (p "a") (p "b");
  let received = ref [] in
  Network.set_handler net (p "b") (fun msg ->
      received := msg.Message.payload :: !received);
  ignore (Network.send net ~src:(p "a") ~dst:(p "b") (String.make 500 'x'));
  ignore (Network.send net ~src:(p "a") ~dst:(p "b") "tiny");
  let _ = Network.run net in
  match List.rev !received with
  | [ big; small ] ->
      Alcotest.(check int) "big first" 500 (String.length big);
      Alcotest.(check string) "small second" "tiny" small
  | other -> Alcotest.failf "expected 2 messages, got %d" (List.length other)

let test_handler_reentrancy () =
  (* a handler sending from inside the loop works and preserves time
     ordering *)
  let net = make_net () in
  List.iter (fun name -> Network.add_peer net (p name)) [ "a"; "b"; "c" ];
  Network.connect net (p "a") (p "b");
  Network.connect net (p "b") (p "c");
  let log = ref [] in
  Network.set_handler net (p "b") (fun msg ->
      log := ("b:" ^ msg.Message.payload) :: !log;
      ignore (Network.send net ~src:(p "b") ~dst:(p "c") "fwd"));
  Network.set_handler net (p "c") (fun msg -> log := ("c:" ^ msg.Message.payload) :: !log);
  ignore (Network.send net ~src:(p "a") ~dst:(p "b") "orig");
  let _ = Network.run net in
  Alcotest.(check (list string)) "causal order" [ "b:orig"; "c:fwd" ] (List.rev !log)

let test_schedule_timer () =
  let net = make_net () in
  let fired = ref (-1.0) in
  Network.schedule net ~delay:0.5 (fun () -> fired := Network.now net);
  let _ = Network.run net in
  Alcotest.(check (float 1e-9)) "fired at 0.5" 0.5 !fired

let test_neighbours () =
  let net = make_net () in
  List.iter (fun name -> Network.add_peer net (p name)) [ "a"; "b"; "c" ];
  Network.connect net (p "a") (p "b");
  Network.connect net (p "a") (p "c");
  Alcotest.(check int) "two neighbours" 2 (List.length (Network.neighbours net (p "a")));
  Network.disconnect net (p "a") (p "c");
  Alcotest.(check int) "one neighbour" 1 (List.length (Network.neighbours net (p "a")))

let test_pipe_stats () =
  let net = two_peers () in
  ignore (Network.send net ~src:(p "a") ~dst:(p "b") "12345");
  let pipe = Option.get (Network.pipe_between net (p "a") (p "b")) in
  let stats = Pipe.stats pipe in
  Alcotest.(check int) "one message" 1 stats.Pipe.messages;
  Alcotest.(check int) "bytes with header" (5 + Message.header_bytes) stats.Pipe.bytes

let test_pipe_validation () =
  Alcotest.(check bool) "self pipe" true
    (try
       ignore (Pipe.create (p "a") (p "a") ~latency:0.1 ~byte_cost:0.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool) "negative latency" true
    (try
       ignore (Pipe.create (p "a") (p "b") ~latency:(-0.1) ~byte_cost:0.0);
       false
     with Invalid_argument _ -> true)

let fault_plan ?(seed = 7) ?(drop = 0.0) ?(dup = 0.0) ?(jitter = 0.0)
    ?(budget = max_int) ?(flaps = []) () =
  { Fault.seed; drop_prob = drop; dup_prob = dup; jitter; drop_budget = budget; flaps }

(* One lossy run: which of [n] messages a->b got through, plus counters. *)
let lossy_run ~plan n =
  let net = two_peers () in
  ignore (Network.install_fault net plan);
  let received = ref [] in
  Network.set_handler net (p "b") (fun msg ->
      received := msg.Message.payload :: !received);
  for k = 1 to n do
    (* drops are silent: the sender must still see a successful send *)
    Alcotest.(check bool) "sender sees true" true
      (Network.send net ~src:(p "a") ~dst:(p "b") (string_of_int k))
  done;
  let _ = Network.run net in
  (List.rev !received, Network.counters net)

let test_fault_schedule_deterministic () =
  let plan = fault_plan ~seed:11 ~drop:0.5 ~dup:0.2 ~jitter:0.003 () in
  let got_a, c_a = lossy_run ~plan 50 in
  let got_b, c_b = lossy_run ~plan 50 in
  Alcotest.(check (list string)) "same survivors in the same order" got_a got_b;
  Alcotest.(check int) "same drops" c_a.Network.injected_drops c_b.Network.injected_drops;
  Alcotest.(check int) "same dups" c_a.Network.injected_dups c_b.Network.injected_dups;
  let got_c, _ = lossy_run ~plan:{ plan with Fault.seed = 12 } 50 in
  Alcotest.(check bool) "another seed, another schedule" false (got_a = got_c)

let test_fault_dup_delivers_twice () =
  let got, c = lossy_run ~plan:(fault_plan ~dup:1.0 ()) 5 in
  Alcotest.(check int) "every message twice" 10 (List.length got);
  Alcotest.(check int) "dups counted" 5 c.Network.injected_dups;
  Alcotest.(check int) "delivered counts both copies" 10 c.Network.delivered

let test_fault_drop_budget () =
  let got, c = lossy_run ~plan:(fault_plan ~drop:1.0 ~budget:3 ()) 10 in
  Alcotest.(check int) "only the budget is dropped" 7 (List.length got);
  Alcotest.(check int) "drops counted" 3 c.Network.injected_drops;
  (* the budget drops the head of the stream, then delivery resumes *)
  Alcotest.(check (list string)) "survivors in order"
    [ "4"; "5"; "6"; "7"; "8"; "9"; "10" ] got

let test_fault_jitter_loses_nothing () =
  let got, c = lossy_run ~plan:(fault_plan ~jitter:0.05 ()) 20 in
  Alcotest.(check int) "all delivered" 20 (List.length got);
  Alcotest.(check int) "no drops" 0 c.Network.injected_drops

let test_fault_flap_closes_and_reopens () =
  let net = two_peers () in
  ignore
    (Network.install_fault net
       (fault_plan
          ~flaps:[ { Fault.fl_a = p "a"; fl_b = p "b"; fl_down_at = 0.05; fl_up_at = 0.1 } ]
          ()));
  let got = ref 0 in
  Network.set_handler net (p "b") (fun _ -> incr got);
  let sent_down = ref true and sent_up = ref false in
  Network.schedule net ~delay:0.06 (fun () ->
      sent_down := Network.send net ~src:(p "a") ~dst:(p "b") "while down");
  Network.schedule net ~delay:0.2 (fun () ->
      sent_up := Network.send net ~src:(p "a") ~dst:(p "b") "after up");
  let _ = Network.run net in
  Alcotest.(check bool) "send fails while flapped" false !sent_down;
  Alcotest.(check bool) "send works after reopen" true !sent_up;
  Alcotest.(check int) "one delivery" 1 !got;
  Alcotest.(check int) "flap counted" 1 (Network.counters net).Network.injected_flaps

let test_clear_handler_drops_at_delivery () =
  let net = two_peers () in
  Network.set_handler net (p "b") (fun _ -> Alcotest.fail "handler was cleared");
  ignore (Network.send net ~src:(p "a") ~dst:(p "b") "x");
  Network.clear_handler net (p "b");
  let _ = Network.run net in
  Alcotest.(check int) "dropped at delivery" 1 (Network.counters net).Network.dropped

let test_run_bounded () =
  let net = make_net () in
  Network.add_peer net (p "a");
  let rec reschedule () = Network.schedule net ~delay:0.1 reschedule in
  reschedule ();
  let events = Network.run ~max_events:25 net in
  Alcotest.(check int) "bounded" 25 events

let suite =
  [
    Alcotest.test_case "event queue ordering" `Quick test_event_queue_order;
    Alcotest.test_case "event queue FIFO on ties" `Quick test_event_queue_fifo_ties;
    Alcotest.test_case "event queue stress" `Quick test_event_queue_many;
    Alcotest.test_case "basic delivery" `Quick test_delivery;
    Alcotest.test_case "no pipe drops" `Quick test_no_pipe_drops;
    Alcotest.test_case "closed pipe drops" `Quick test_closed_pipe_drops;
    Alcotest.test_case "in-flight survives close" `Quick test_in_flight_survives_close;
    Alcotest.test_case "removed peer drops at delivery" `Quick
      test_removed_peer_drops_at_delivery;
    Alcotest.test_case "dropped bytes accounting" `Quick test_dropped_bytes;
    Alcotest.test_case "pipes are FIFO per direction" `Quick test_fifo_order;
    Alcotest.test_case "handler re-entrancy" `Quick test_handler_reentrancy;
    Alcotest.test_case "timers" `Quick test_schedule_timer;
    Alcotest.test_case "neighbours" `Quick test_neighbours;
    Alcotest.test_case "pipe traffic stats" `Quick test_pipe_stats;
    Alcotest.test_case "pipe validation" `Quick test_pipe_validation;
    Alcotest.test_case "bounded run" `Quick test_run_bounded;
    Alcotest.test_case "fault schedule is deterministic" `Quick
      test_fault_schedule_deterministic;
    Alcotest.test_case "fault dup delivers twice" `Quick test_fault_dup_delivers_twice;
    Alcotest.test_case "fault drop budget" `Quick test_fault_drop_budget;
    Alcotest.test_case "fault jitter loses nothing" `Quick
      test_fault_jitter_loses_nothing;
    Alcotest.test_case "fault flap closes and reopens" `Quick
      test_fault_flap_closes_and_reopens;
    Alcotest.test_case "cleared handler drops at delivery" `Quick
      test_clear_handler_drops_at_delivery;
  ]
