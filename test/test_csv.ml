open Helpers
module Csv = Codb_relalg.Csv

let mixed_schema =
  Schema.make "m"
    [ ("k", Value.Tint); ("name", Value.Tstring); ("w", Value.Tfloat); ("ok", Value.Tbool) ]

let test_parse_line () =
  let t = Csv.parse_line mixed_schema 1 "3,\"alice\",2.5,true" in
  Alcotest.check tuple_testable "parsed"
    (tup [ i 3; s "alice"; Value.Float 2.5; Value.Bool true ])
    t

let test_unquoted_string () =
  let t = Csv.parse_line mixed_schema 1 "3,bob,1.0,false" in
  Alcotest.(check bool) "bare string" true (Value.equal t.(1) (s "bob"))

let test_quoted_escapes () =
  let t = Csv.parse_line mixed_schema 1 "1,\"say \"\"hi\"\"\",0.0,true" in
  Alcotest.(check bool) "escaped quote" true (Value.equal t.(1) (s "say \"hi\""))

let test_parse_errors () =
  let fails line =
    try
      ignore (Csv.parse_line mixed_schema 1 line);
      false
    with Csv.Parse_error _ -> true
  in
  Alcotest.(check bool) "bad int" true (fails "x,a,1.0,true");
  Alcotest.(check bool) "bad bool" true (fails "1,a,1.0,yes");
  Alcotest.(check bool) "wrong arity" true (fails "1,a,1.0")

let test_load_string_skips_noise () =
  let text = "# comment\n1,a,1.0,true\n\n2,b,2.0,false\n" in
  let tuples = Csv.load_string mixed_schema text in
  Alcotest.(check int) "two tuples" 2 (List.length tuples)

let test_dump_load_round_trip () =
  Value.reset_null_counter ();
  let db = Database.create [ mixed_schema ] in
  ignore (Database.insert db "m" (tup [ i 1; s "x,y"; Value.Float 0.5; Value.Bool true ]));
  ignore
    (Database.insert db "m"
       (tup [ i 2; Value.fresh_null ~rule:"r7"; Value.Float 1.5; Value.Bool false ]));
  let text = Csv.dump (Database.relation db "m") in
  let db2 = Database.create [ mixed_schema ] in
  let n = Csv.load_into db2 "m" text in
  Alcotest.(check int) "two loaded" 2 n;
  Alcotest.(check bool) "identical contents" true (Database.equal_contents db db2)

let test_null_round_trip_preserves_identity () =
  Value.reset_null_counter ();
  let null = Value.fresh_null ~rule:"rx" in
  let db = Database.create [ r_schema ] in
  ignore (Database.insert db "r" (tup [ i 1; null ]));
  let text = Csv.dump (Database.relation db "r") in
  let loaded = Csv.load_string r_schema text in
  match (List.hd loaded).(1) with
  | Value.Null n ->
      Alcotest.(check string) "rule kept" "rx" n.Value.null_rule;
      Alcotest.(check bool) "id kept" true (Value.equal (Value.Null n) null)
  | _ -> Alcotest.fail "expected a null"

let contains_substring ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec loop i = i + n <= h && (String.sub haystack i n = needle || loop (i + 1)) in
  n = 0 || loop 0

let test_dump_database_sections () =
  let db = Database.create [ r_schema; s_schema ] in
  ignore (Database.insert db "r" (tup [ i 1; i 2 ]));
  let text = Csv.dump_database db in
  Alcotest.(check bool) "has r section" true
    (contains_substring ~needle:"# relation r" text);
  Alcotest.(check bool) "has s section" true
    (contains_substring ~needle:"# relation s" text)

let test_load_database_round_trip () =
  Value.reset_null_counter ();
  let db = Database.create [ r_schema; s_schema ] in
  ignore (Database.insert db "r" (tup [ i 1; Value.fresh_null ~rule:"z" ]));
  ignore (Database.insert db "r" (tup [ i 2; i 3 ]));
  ignore (Database.insert db "s" (tup [ i 3; s "x" ]));
  let text = Csv.dump_database db in
  let db2 = Database.create [ r_schema; s_schema ] in
  let n = Csv.load_database db2 text in
  Alcotest.(check int) "three tuples" 3 n;
  Alcotest.(check bool) "identical" true (Database.equal_contents db db2);
  (* loading again adds nothing (set semantics) *)
  Alcotest.(check int) "idempotent" 0 (Csv.load_database db2 text)

let test_load_database_errors () =
  let db = Database.create [ r_schema ] in
  let fails text =
    try
      ignore (Csv.load_database db text);
      false
    with Csv.Parse_error _ -> true
  in
  Alcotest.(check bool) "unknown section" true (fails "# relation nope\n1,2");
  Alcotest.(check bool) "tuple before section" true (fails "1,2")

let test_system_export_import () =
  let module System = Codb_core.System in
  let module Topology = Codb_core.Topology in
  let mk () =
    System.build_exn
      (Topology.generate ~seed:61
         ~params:{ Topology.default_params with Topology.tuples_per_node = 8 }
         Topology.Chain ~n:3)
  in
  let sys = mk () in
  let _ = System.run_update sys ~initiator:"n0" in
  let dumps = System.export_stores sys in
  Alcotest.(check int) "three dumps" 3 (List.length dumps);
  (* a fresh network built from the same file, stores replaced by the
     exported state, must equal the materialised one *)
  let sys2 = mk () in
  let loaded = System.import_stores sys2 dumps in
  Alcotest.(check bool) "new tuples loaded" true (loaded > 0);
  Alcotest.(check int) "same total" (System.total_tuples sys) (System.total_tuples sys2)

let suite =
  [
    Alcotest.test_case "parse typed line" `Quick test_parse_line;
    Alcotest.test_case "load_database round trip" `Quick test_load_database_round_trip;
    Alcotest.test_case "load_database errors" `Quick test_load_database_errors;
    Alcotest.test_case "system export/import" `Quick test_system_export_import;
    Alcotest.test_case "unquoted strings" `Quick test_unquoted_string;
    Alcotest.test_case "quote escaping" `Quick test_quoted_escapes;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blanks skipped" `Quick test_load_string_skips_noise;
    Alcotest.test_case "dump/load round trip" `Quick test_dump_load_round_trip;
    Alcotest.test_case "null identity round trip" `Quick
      test_null_round_trip_preserves_identity;
    Alcotest.test_case "dump_database sections" `Quick test_dump_database_sections;
  ]
