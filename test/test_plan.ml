(* The cost-based join planner: step ordering on crafted selectivity
   cases, composite-probe selection, comparison pushdown, and
   planned-vs-legacy equivalence on fixed databases. *)

open Helpers
module Plan = Codb_cq.Plan
module Subst = Codb_cq.Subst

let contains ~sub text =
  let n = String.length sub and m = String.length text in
  let rec go k = k + n <= m && (String.sub text k n = sub || go (k + 1)) in
  go 0

let big_schema = Schema.make "big" [ ("a", Value.Tint); ("b", Value.Tint) ]

let small_schema = Schema.make "small" [ ("b", Value.Tint); ("c", Value.Tint) ]

(* [big] has 20 tuples fanning out of few keys, [small] has 2. *)
let crafted_db () =
  let db = Database.create [ big_schema; small_schema ] in
  List.iter
    (fun n -> ignore (Database.insert db "big" (tup [ i (n mod 4); i n ])))
    (List.init 20 (fun n -> n));
  ignore (Database.insert db "small" (tup [ i 1; i 100 ]));
  ignore (Database.insert db "small" (tup [ i 2; i 200 ]));
  db

let plan_for ?max_probe_cols db q =
  Eval.plan_for ?max_probe_cols (Eval.of_database db) q

let order (plan : Plan.t) = Plan.order plan

let probes (plan : Plan.t) = List.map (fun s -> s.Plan.st_probe) plan.Plan.pl_steps

let test_small_relation_first () =
  let db = crafted_db () in
  let q = parse_query "ans(a, c) <- big(a, b), small(b, c)" in
  let plan = plan_for db q in
  Alcotest.(check (list int)) "small scanned first, big probed" [ 1; 0 ] (order plan);
  Alcotest.(check (list (list int))) "probe on big's bound column" [ []; [ 1 ] ]
    (probes plan)

let test_composite_probe_chosen () =
  let db = crafted_db () in
  (* the closing atom arrives with both columns bound *)
  let q = parse_query "ans(a, c) <- big(a, b), small(b, c), big(a, c)" in
  let plan = plan_for db q in
  let closing =
    List.find (fun s -> s.Plan.st_pos = 2) plan.Plan.pl_steps
  in
  Alcotest.(check (list int)) "composite probe on both columns" [ 0; 1 ]
    closing.Plan.st_probe

let test_max_probe_cols_caps_probe () =
  let db = crafted_db () in
  let q = parse_query "ans(a, c) <- big(a, b), small(b, c), big(a, c)" in
  let plan = plan_for ~max_probe_cols:1 db q in
  let closing = List.find (fun s -> s.Plan.st_pos = 2) plan.Plan.pl_steps in
  Alcotest.(check (list int)) "capped to a single column" [ 0 ]
    closing.Plan.st_probe

let test_constant_makes_atom_selective () =
  let db = crafted_db () in
  (* big's second column is unique, so big(a, 7) estimates to a single
     tuple (20 / 20 distinct) — cheaper than scanning small (2), which
     would win without the constant *)
  let q = parse_query "ans(a, c) <- big(a, 7), small(a, c)" in
  let plan = plan_for db q in
  (match order plan with
  | first :: _ ->
      Alcotest.(check int) "constant-bearing atom first" 0 first
  | [] -> Alcotest.fail "empty plan");
  match probes plan with
  | first_probe :: _ ->
      Alcotest.(check (list int)) "probed on the constant column" [ 1 ] first_probe
  | [] -> Alcotest.fail "empty plan"

let test_comparison_pushdown () =
  let db = crafted_db () in
  let q = parse_query "ans(a, c) <- big(a, b), small(b, c), a < 2" in
  let plan = plan_for db q in
  (* [a < 2] must be attached to the step that binds [a] — the big
     atom — not delayed to the end *)
  let step_with_cmp =
    List.find_opt (fun s -> s.Plan.st_comparisons <> []) plan.Plan.pl_steps
  in
  match step_with_cmp with
  | Some s -> Alcotest.(check int) "evaluated at the binding step" 0 s.Plan.st_pos
  | None -> Alcotest.fail "comparison not assigned to any step"

let test_ground_comparison_precheck () =
  let db = crafted_db () in
  let q =
    Query.make
      ~head:(atom "ans" [ v "a" ])
      ~body:[ atom "big" [ v "a"; v "b" ] ]
      ~comparisons:[ { Query.left = c (i 1); op = Query.Lt; right = c (i 0) } ]
      ()
  in
  let plan = plan_for db q in
  Alcotest.(check int) "constant-only comparison lifted out" 1
    (List.length plan.Plan.pl_pre);
  Alcotest.(check (list Alcotest.reject)) "no step carries it" []
    (List.concat_map (fun s -> s.Plan.st_comparisons) plan.Plan.pl_steps);
  (* and it kills evaluation up front, same as the legacy path *)
  let source = Eval.of_database db in
  Alcotest.(check int) "planned: no answers" 0 (List.length (Eval.answers source q));
  Alcotest.(check int) "legacy agrees" 0
    (List.length (Eval.answers ~planner:false source q))

let test_unbound_comparison_yields_nothing () =
  let db = crafted_db () in
  (* unsafe query: [z] occurs only in the comparison.  The legacy
     evaluator drops every substitution (the comparison stays
     pending); the planner proves it up front. *)
  let q =
    Query.make
      ~head:(atom "ans" [ v "a" ])
      ~body:[ atom "big" [ v "a"; v "b" ] ]
      ~comparisons:[ { Query.left = v "z"; op = Query.Eq; right = c (i 1) } ]
      ()
  in
  let plan = plan_for db q in
  Alcotest.(check int) "recognised as never bindable" 1
    (List.length plan.Plan.pl_unbound);
  let source = Eval.of_database db in
  Alcotest.(check int) "planned: no answers" 0 (List.length (Eval.answers source q));
  Alcotest.(check int) "legacy agrees" 0
    (List.length (Eval.answers ~planner:false source q))

let test_wrong_arity_atom_matches_nothing () =
  let db = crafted_db () in
  let q =
    Query.make
      ~head:(atom "ans" [ v "a" ])
      ~body:[ atom "big" [ v "a" ] ]  (* big is binary *)
      ()
  in
  let source = Eval.of_database db in
  Alcotest.(check int) "planned" 0 (List.length (Eval.answers source q));
  Alcotest.(check int) "legacy" 0
    (List.length (Eval.answers ~planner:false source q))

let subst_set substs =
  List.sort_uniq compare (List.map Subst.bindings substs)

let check_equivalent db text =
  let q = parse_query text in
  let source = Eval.of_database db in
  let planned = Eval.answers source q in
  let legacy = Eval.answers ~planner:false source q in
  let single = Eval.answers ~max_probe_cols:1 source q in
  Alcotest.(check int)
    (text ^ ": planned = legacy count")
    (List.length legacy) (List.length planned);
  Alcotest.(check bool) (text ^ ": same substitutions") true
    (subst_set planned = subst_set legacy);
  Alcotest.(check bool) (text ^ ": single-column agrees") true
    (subst_set single = subst_set legacy)

let test_planned_equals_legacy_crafted () =
  let db = crafted_db () in
  List.iter (check_equivalent db)
    [
      "ans(a, b) <- big(a, b)";
      "ans(a, c) <- big(a, b), small(b, c)";
      "ans(a, c) <- big(a, b), small(b, c), big(a, c)";
      "ans(a, z) <- big(a, b), big(b, z)";
      "ans(a, b) <- big(a, b), a = b";
      "ans(a, c) <- big(1, b), small(b, c), c > 100";
      "ans(a, c) <- big(a, b), small(b, c), a < b, b <= c";
      "ans(a, b) <- big(a, b), big(a, b)";
    ]

let test_planned_equals_legacy_empty_relation () =
  let db = Database.create [ big_schema; small_schema ] in
  ignore (Database.insert db "big" (tup [ i 1; i 2 ]));
  (* small stays empty *)
  List.iter (check_equivalent db)
    [ "ans(a, c) <- big(a, b), small(b, c)"; "ans(b, c) <- small(b, c)" ]

let test_delta_planned_equals_legacy () =
  let db = crafted_db () in
  let delta = [ tup [ i 0; i 100 ]; tup [ i 3; i 300 ] ] in
  ignore (Database.insert_all db "big" delta);
  let q = parse_query "ans(a, z) <- big(a, b), big(b, z)" in
  let source = Eval.of_database db in
  let planned = Eval.delta_answers source ~delta_rel:"big" ~delta q in
  let legacy = Eval.delta_answers ~planner:false source ~delta_rel:"big" ~delta q in
  Alcotest.(check bool) "delta substitutions agree" true
    (subst_set planned = subst_set legacy)

let test_explain_mentions_probe () =
  let db = crafted_db () in
  let q = parse_query "ans(a, c) <- big(a, b), small(b, c), big(a, c)" in
  let text = Plan.explain q (plan_for db q) in
  Alcotest.(check bool) "mentions a composite probe" true
    (contains ~sub:"probe [0,1]" text)

let suite =
  [
    Alcotest.test_case "small relation ordered first" `Quick test_small_relation_first;
    Alcotest.test_case "composite probe chosen" `Quick test_composite_probe_chosen;
    Alcotest.test_case "max_probe_cols caps the probe" `Quick
      test_max_probe_cols_caps_probe;
    Alcotest.test_case "constants make atoms selective" `Quick
      test_constant_makes_atom_selective;
    Alcotest.test_case "comparison pushdown" `Quick test_comparison_pushdown;
    Alcotest.test_case "ground comparisons pre-checked" `Quick
      test_ground_comparison_precheck;
    Alcotest.test_case "unbound comparison yields nothing" `Quick
      test_unbound_comparison_yields_nothing;
    Alcotest.test_case "wrong-arity atom matches nothing" `Quick
      test_wrong_arity_atom_matches_nothing;
    Alcotest.test_case "planned = legacy on crafted cases" `Quick
      test_planned_equals_legacy_crafted;
    Alcotest.test_case "planned = legacy with empty relations" `Quick
      test_planned_equals_legacy_empty_relation;
    Alcotest.test_case "planned = legacy on deltas" `Quick
      test_delta_planned_equals_legacy;
    Alcotest.test_case "explain mentions the probe" `Quick test_explain_mentions_probe;
  ]
