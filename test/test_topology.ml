open Helpers
module Topology = Codb_core.Topology
module Rng = Codb_workload.Rng

let edge_testable = Alcotest.(pair int int)

let test_chain_edges () =
  Alcotest.(check (list edge_testable)) "chain 4" [ (0, 1); (1, 2); (2, 3) ]
    (Topology.edges Topology.Chain ~n:4);
  Alcotest.(check (list edge_testable)) "chain 1" [] (Topology.edges Topology.Chain ~n:1)

let test_ring_edges () =
  Alcotest.(check (list edge_testable)) "ring 3" [ (0, 1); (1, 2); (2, 0) ]
    (Topology.edges Topology.Ring ~n:3)

let test_star_edges () =
  Alcotest.(check (list edge_testable)) "star-in 4" [ (0, 1); (0, 2); (0, 3) ]
    (Topology.edges Topology.Star_in ~n:4);
  Alcotest.(check (list edge_testable)) "star-out 4" [ (1, 0); (2, 0); (3, 0) ]
    (Topology.edges Topology.Star_out ~n:4)

let test_tree_edges () =
  Alcotest.(check (list edge_testable)) "tree 5"
    [ (0, 1); (0, 2); (1, 3); (1, 4) ]
    (Topology.edges Topology.Binary_tree ~n:5)

let test_grid_edges () =
  let edges = Topology.edges (Topology.Grid (2, 2)) ~n:4 in
  Alcotest.(check int) "2x2 has 4 edges" 4 (List.length edges);
  Alcotest.(check bool) "right neighbour" true (List.mem (0, 1) edges);
  Alcotest.(check bool) "down neighbour" true (List.mem (0, 2) edges);
  Alcotest.(check bool) "grid size mismatch" true
    (try
       ignore (Topology.edges (Topology.Grid (2, 2)) ~n:5);
       false
     with Invalid_argument _ -> true)

let test_clique_edges () =
  let edges = Topology.edges Topology.Clique ~n:4 in
  Alcotest.(check int) "n(n-1) edges" 12 (List.length edges);
  Alcotest.(check bool) "no self loops" true (List.for_all (fun (a, b) -> a <> b) edges)

let test_random_edges_seeded () =
  let rng () = Rng.make ~seed:99 in
  let e1 = Topology.edges ~rng:(rng ()) (Topology.Random_graph 0.3) ~n:8 in
  let e2 = Topology.edges ~rng:(rng ()) (Topology.Random_graph 0.3) ~n:8 in
  Alcotest.(check (list edge_testable)) "deterministic" e1 e2;
  Alcotest.(check bool) "needs rng" true
    (try
       ignore (Topology.edges (Topology.Random_graph 0.3) ~n:4);
       false
     with Invalid_argument _ -> true)

let test_generate_validates () =
  List.iter
    (fun shape ->
      let cfg = Topology.generate ~seed:1 shape ~n:6 in
      match Config.validate cfg with
      | Ok () -> ()
      | Error errors ->
          Alcotest.failf "%s invalid: %s" (Topology.shape_name shape)
            (String.concat "; " errors))
    [
      Topology.Chain; Topology.Ring; Topology.Star_in; Topology.Star_out;
      Topology.Binary_tree; Topology.Grid (2, 3); Topology.Random_graph 0.4;
      Topology.Clique;
    ]

let test_generate_respects_params () =
  let params =
    { Topology.default_params with Topology.tuples_per_node = 5; existential_frac = 1.0 }
  in
  let cfg = Topology.generate ~params ~seed:2 Topology.Chain ~n:3 in
  List.iter
    (fun node ->
      Alcotest.(check int)
        (node.Config.node_name ^ " facts")
        5
        (List.length node.Config.facts))
    cfg.Config.nodes;
  List.iter
    (fun rule ->
      Alcotest.(check bool)
        (rule.Config.rule_id ^ " existential")
        true
        (Query.has_existential_head rule.Config.rule_query))
    cfg.Config.rules

let test_generate_deterministic () =
  let c1 = Topology.generate ~seed:5 Topology.Ring ~n:4 in
  let c2 = Topology.generate ~seed:5 Topology.Ring ~n:4 in
  Alcotest.(check string) "same pretty print"
    (Codb_cq.Pretty.config_to_string c1)
    (Codb_cq.Pretty.config_to_string c2)

let test_random_connected_backbone () =
  let cfg =
    Topology.generate ~seed:3 (Topology.Random_graph 0.0) ~n:5
  in
  (* p = 0 but connected=true: the chain backbone must be there *)
  Alcotest.(check int) "backbone edges" 4 (List.length cfg.Config.rules)

let test_rules_only_strips_facts () =
  let cfg = Topology.generate ~seed:4 Topology.Chain ~n:3 in
  let stripped = Topology.rules_only cfg in
  Alcotest.(check bool) "no facts" true
    (List.for_all (fun n -> n.Config.facts = []) stripped.Config.nodes);
  Alcotest.(check int) "rules kept" (List.length cfg.Config.rules)
    (List.length stripped.Config.rules)

let suite =
  [
    Alcotest.test_case "chain" `Quick test_chain_edges;
    Alcotest.test_case "ring" `Quick test_ring_edges;
    Alcotest.test_case "stars" `Quick test_star_edges;
    Alcotest.test_case "binary tree" `Quick test_tree_edges;
    Alcotest.test_case "grid" `Quick test_grid_edges;
    Alcotest.test_case "clique" `Quick test_clique_edges;
    Alcotest.test_case "random graph is seeded" `Quick test_random_edges_seeded;
    Alcotest.test_case "generated configs validate" `Quick test_generate_validates;
    Alcotest.test_case "generation parameters" `Quick test_generate_respects_params;
    Alcotest.test_case "generation is deterministic" `Quick test_generate_deterministic;
    Alcotest.test_case "random backbone connectivity" `Quick
      test_random_connected_backbone;
    Alcotest.test_case "rules_only strips facts" `Quick test_rules_only_strips_facts;
  ]
