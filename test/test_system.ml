open Helpers
module System = Codb_core.System
module Topology = Codb_core.Topology
module Superpeer = Codb_core.Superpeer
module Report = Codb_core.Report
module Stats = Codb_core.Stats
module Node = Codb_core.Node
module Peer_id = Codb_net.Peer_id
module Network = Codb_net.Network

let test_build_rejects_invalid () =
  let cfg =
    { Config.nodes = []; rules = [ { Config.rule_id = "r"; importer = "a"; source = "b";
        rule_query = parse_query "r(x) <- r(x)" } ] }
  in
  match System.build cfg with
  | Ok _ -> Alcotest.fail "invalid config accepted"
  | Error errors -> Alcotest.(check bool) "errors reported" true (errors <> [])

let test_build_rejects_reserved_name () =
  let cfg = parse_config "node superpeer { relation r(x: int); }" in
  match System.build cfg with
  | Ok _ -> Alcotest.fail "reserved name accepted"
  | Error _ -> ()

let test_pipes_follow_rules () =
  let sys = System.build_exn (Topology.generate ~seed:1 Topology.Chain ~n:4) in
  let net = System.net sys in
  let p = Peer_id.of_string in
  Alcotest.(check bool) "n0-n1" true (Network.connected net (p "n0") (p "n1"));
  Alcotest.(check bool) "n1-n2" true (Network.connected net (p "n1") (p "n2"));
  Alcotest.(check bool) "no n0-n2" false (Network.connected net (p "n0") (p "n2"))

let test_superpeer_stats_collection () =
  let sys = System.build_exn (Topology.generate ~seed:2 Topology.Chain ~n:3) in
  let _ = System.run_update sys ~initiator:"n0" in
  let snaps = System.collect_stats sys in
  Alcotest.(check int) "three nodes replied" 3 (List.length snaps);
  (* message-based collection must agree with the direct snapshot *)
  let direct = System.snapshots sys in
  let direct_report = Option.get (Report.latest_update_report direct) in
  let collected_report = Option.get (Report.latest_update_report snaps) in
  Alcotest.(check int) "same message count" direct_report.Report.ur_data_msgs
    collected_report.Report.ur_data_msgs;
  Alcotest.(check int) "same tuples" direct_report.Report.ur_new_tuples
    collected_report.Report.ur_new_tuples

let test_superpeer_trigger_update () =
  let sys = System.build_exn (Topology.generate ~seed:3 Topology.Chain ~n:3) in
  let sp = System.superpeer sys in
  Superpeer.trigger_update sp ~at:(Peer_id.of_string "n0");
  let _ = System.run sys in
  let report = Report.latest_update_report (System.snapshots sys) in
  Alcotest.(check bool) "an update ran" true (report <> None);
  Alcotest.(check bool) "it finished" true (Option.get report).Report.ur_all_finished

let test_rules_rebroadcast_changes_topology () =
  (* start as a chain, rewire to a star; data must then flow along the
     star's edges *)
  let chain = Topology.generate ~seed:4 Topology.Chain ~n:4 in
  let sys = System.build_exn chain in
  let star = Topology.rules_only (Topology.generate ~seed:4 Topology.Star_in ~n:4) in
  System.broadcast_rules sys star;
  let net = System.net sys in
  let p = Peer_id.of_string in
  Alcotest.(check bool) "star pipe n0-n3" true (Network.connected net (p "n0") (p "n3"));
  Alcotest.(check bool) "chain pipe n1-n2 closed" false
    (Network.connected net (p "n1") (p "n2"));
  let _ = System.run_update sys ~initiator:"n0" in
  let n0 = System.local_answers sys ~at:"n0" (parse_query "o(x, y) <- data(x, y)") in
  let n1 = System.node sys "n1" in
  Alcotest.(check int) "n1 has one incoming rule" 1 (List.length n1.Node.incoming);
  Alcotest.(check bool) "n0 imported from all leaves" true (List.length n0 > 0)

let test_update_after_rewire_uses_new_rules () =
  let chain = Topology.generate ~seed:6 Topology.Chain ~n:3 in
  let sys = System.build_exn chain in
  let _ = System.run_update sys ~initiator:"n0" in
  let before = List.length (System.local_answers sys ~at:"n2" (parse_query "o(x, y) <- data(x, y)")) in
  (* reverse the chain: now n2 imports from n1 imports from n0 *)
  let reversed =
    {
      Config.nodes = (Topology.rules_only chain).Config.nodes;
      rules =
        List.map
          (fun r ->
            { r with Config.importer = r.Config.source; source = r.Config.importer })
          chain.Config.rules;
    }
  in
  System.broadcast_rules sys reversed;
  let _ = System.run_update sys ~initiator:"n2" in
  let after = List.length (System.local_answers sys ~at:"n2" (parse_query "o(x, y) <- data(x, y)")) in
  Alcotest.(check bool) "n2 grew after reversal" true (after > before)

let test_discovery_ttl () =
  let sys = System.build_exn (Topology.generate ~seed:5 Topology.Chain ~n:6) in
  let found_ttl0 = System.discover sys ~at:"n0" ~ttl:0 in
  (* ttl 0: the direct neighbour n1 answers with itself and its own
     neighbourhood, so n0 learns n1 and n2 *)
  Alcotest.(check int) "ttl 0 reaches distance 2" 2 (List.length found_ttl0);
  let found_ttl1 = System.discover sys ~at:"n0" ~ttl:1 in
  Alcotest.(check int) "ttl 1 reaches distance 3" 3 (List.length found_ttl1);
  let found_ttl4 = System.discover sys ~at:"n0" ~ttl:4 in
  Alcotest.(check int) "ttl 4 finds all" 5 (List.length found_ttl4)

let test_add_node_dynamic () =
  let sys = System.build_exn (Topology.generate ~seed:7 Topology.Chain ~n:2) in
  let decl =
    {
      Config.node_name = "n2";
      relations = [ Topology.data_relation ];
      facts = [ ("data", tup [ i 999; s "new" ]) ];
      mediator = false;
      constraints = [];
    }
  in
  System.add_node sys decl;
  Alcotest.(check (list string)) "three nodes" [ "n0"; "n1"; "n2" ]
    (System.node_names sys);
  (* wire it in via a rules broadcast and check data flows *)
  let cfg = System.config sys in
  let extra_rule =
    {
      Config.rule_id = "r_1_2";
      importer = "n1";
      source = "n2";
      rule_query = parse_query "data(x, y) <- data(x, y)";
    }
  in
  System.broadcast_rules sys { cfg with Config.rules = extra_rule :: cfg.Config.rules };
  let _ = System.run_update sys ~initiator:"n0" in
  let n0 = System.local_answers sys ~at:"n0" (parse_query "o(y) <- data(999, y)") in
  check_tuples "new node's data reached n0" [ tup [ s "new" ] ] n0

let test_report_aggregation_fields () =
  let sys = System.build_exn (Topology.generate ~seed:8 Topology.Star_in ~n:5) in
  let uid = System.run_update sys ~initiator:"n0" in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check int) "five nodes" 5 report.Report.ur_nodes;
  Alcotest.(check int) "star has path length 1" 1 report.Report.ur_longest_path;
  Alcotest.(check int) "four rules in traffic table" 4
    (List.length report.Report.ur_per_rule);
  Alcotest.(check bool) "duration positive" true (report.Report.ur_duration > 0.0);
  Alcotest.(check bool) "bytes positive" true (report.Report.ur_bytes > 0)

let test_report_missing_update () =
  let sys = System.build_exn (Topology.generate ~seed:9 Topology.Chain ~n:2) in
  let fake = Codb_core.Ids.update_id (Peer_id.of_string "n0") 12345 in
  Alcotest.(check bool) "no report" true
    (Report.update_report (System.snapshots sys) fake = None)

let test_stats_snapshot_roundtrip_sizes () =
  let sys = System.build_exn (Topology.generate ~seed:10 Topology.Chain ~n:3) in
  let _ = System.run_update sys ~initiator:"n0" in
  List.iter
    (fun snap ->
      Alcotest.(check bool) "snapshot has positive size" true
        (Stats.snapshot_size_bytes snap > 0))
    (System.snapshots sys)

let run_pushdown_case ~params ~seed ~pushdown q =
  let opts = { Codb_core.Options.default with Codb_core.Options.pushdown } in
  let sys = System.build_exn ~opts (Topology.generate ~params ~seed Topology.Chain ~n:4) in
  let outcome = System.run_query sys ~at:"n0" q in
  let pr =
    Option.get (Report.pushdown_report (System.snapshots sys) outcome.System.qo_id)
  in
  (outcome, pr)

let test_pushdown_reduces_traffic () =
  (* a chain of well-stocked nodes and a maximally selective query:
     with pushdown each responder's rule body is specialized to the
     root's constant, so the non-matching tuples never hit the wire *)
  let params = { Topology.default_params with Topology.tuples_per_node = 40 } in
  let q = parse_query "o(y) <- data(3, y)" in
  let base, base_pr = run_pushdown_case ~params ~seed:21 ~pushdown:false q in
  let push, push_pr = run_pushdown_case ~params ~seed:21 ~pushdown:true q in
  check_tuples "same answers" base.System.qo_answers push.System.qo_answers;
  Alcotest.(check bool) "both complete" true
    (base.System.qo_complete && push.System.qo_complete);
  Alcotest.(check int) "baseline pushes nothing" 0 base_pr.Report.pr_pushed;
  Alcotest.(check bool) "sub-requests carry constraints" true
    (push_pr.Report.pr_pushed > 0);
  Alcotest.(check bool) "answer bytes shrink" true
    (push_pr.Report.pr_bytes_in < base_pr.Report.pr_bytes_in)

let test_pushdown_refutes_existential () =
  (* every rule has an existential head: each derived tuple carries a
     fresh null in the value column, so an equality there can never
     hold — responders refute the rule outright and the diffusion dies
     at the first hop, shipping zero answer bytes *)
  let params =
    { Topology.default_params with
      Topology.tuples_per_node = 20;
      existential_frac = 1.0 }
  in
  let q = parse_query "o(x) <- data(x, \"match-nothing\")" in
  let base, base_pr = run_pushdown_case ~params ~seed:23 ~pushdown:false q in
  let push, push_pr = run_pushdown_case ~params ~seed:23 ~pushdown:true q in
  check_tuples "same answers" base.System.qo_answers push.System.qo_answers;
  Alcotest.(check bool) "baseline ships null tuples" true
    (base_pr.Report.pr_bytes_in > 0);
  Alcotest.(check int) "nothing crosses the wire" 0 push_pr.Report.pr_bytes_in

let test_pushdown_filters_disjunction_at_source () =
  (* two atoms over the same relation give a disjunctive constraint,
     which never folds into a rule body: responders evaluate in full
     and the output filter withholds the non-matching tuples — visibly,
     in the counter *)
  let params = { Topology.default_params with Topology.tuples_per_node = 40 } in
  let q = parse_query "o(y, z) <- data(2, y), data(3, z)" in
  let base, base_pr = run_pushdown_case ~params ~seed:24 ~pushdown:false q in
  let push, push_pr = run_pushdown_case ~params ~seed:24 ~pushdown:true q in
  check_tuples "same answers" base.System.qo_answers push.System.qo_answers;
  Alcotest.(check bool) "tuples filtered at source" true
    (push_pr.Report.pr_filtered_at_source > 0);
  Alcotest.(check bool) "answer bytes shrink" true
    (push_pr.Report.pr_bytes_in < base_pr.Report.pr_bytes_in)

let test_pushdown_rule_cache_serves_repeat () =
  let params = { Topology.default_params with Topology.tuples_per_node = 20 } in
  let opts =
    { Codb_core.Options.default with
      Codb_core.Options.pushdown = true;
      use_query_cache = true }
  in
  let sys = System.build_exn ~opts (Topology.generate ~params ~seed:22 Topology.Chain ~n:3) in
  let o1 = System.run_query sys ~at:"n0" (parse_query "o(y) <- data(3, y)") in
  (* a same-constraint but non-isomorphic query: the root cache cannot
     serve it, yet its sub-requests carry the same pushed constraints,
     so the responder-side rule tables absorb the whole diffusion *)
  let q2 = parse_query "pairs(y, z) <- data(3, y), data(3, z)" in
  let o2 = System.run_query sys ~at:"n0" q2 in
  Alcotest.(check bool) "both complete" true
    (o1.System.qo_complete && o2.System.qo_complete);
  let pr = Option.get (Report.pushdown_report (System.snapshots sys) o2.System.qo_id) in
  Alcotest.(check bool) "rule cache served the repeat" true
    (pr.Report.pr_rule_cache_hits > 0)

module Trace = Codb_core.Trace

let test_trace_records_protocol () =
  let sys = System.build_exn (Topology.generate ~seed:12 Topology.Chain ~n:3) in
  let trace = System.enable_trace sys in
  let _ = System.run_update sys ~initiator:"n0" in
  let events = Trace.events trace in
  Alcotest.(check bool) "events recorded" true (List.length events > 5);
  (* chronological, and every delivery follows some send of the same
     description *)
  let rec chronological = function
    | a :: (b :: _ as rest) -> a.Trace.ev_at <= b.Trace.ev_at && chronological rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "chronological" true (chronological events);
  List.iter
    (fun e ->
      if e.Trace.ev_direction = Trace.Delivered then
        Alcotest.(check bool)
          ("matched send for " ^ e.Trace.ev_what)
          true
          (List.exists
             (fun s ->
               s.Trace.ev_direction = Trace.Sent
               && String.equal s.Trace.ev_what e.Trace.ev_what
               && s.Trace.ev_at <= e.Trace.ev_at)
             events))
    events

let test_trace_ring_capacity () =
  let sys = System.build_exn (Topology.generate ~seed:13 Topology.Chain ~n:4) in
  let trace = System.enable_trace ~capacity:4 sys in
  let _ = System.run_update sys ~initiator:"n0" in
  Alcotest.(check int) "bounded" 4 (Trace.length trace);
  Alcotest.(check bool) "older events dropped" true (Trace.dropped trace > 0);
  Trace.clear trace;
  Alcotest.(check int) "cleared" 0 (Trace.length trace)

let test_trace_disabled_by_default () =
  let sys = System.build_exn (Topology.generate ~seed:14 Topology.Chain ~n:2) in
  Alcotest.(check bool) "no trace" true (System.trace sys = None);
  let t1 = System.enable_trace sys in
  let t2 = System.enable_trace sys in
  Alcotest.(check bool) "idempotent" true (t1 == t2)

let suite =
  [
    Alcotest.test_case "build validates" `Quick test_build_rejects_invalid;
    Alcotest.test_case "trace records the protocol" `Quick test_trace_records_protocol;
    Alcotest.test_case "trace ring capacity" `Quick test_trace_ring_capacity;
    Alcotest.test_case "trace off by default" `Quick test_trace_disabled_by_default;
    Alcotest.test_case "reserved super-peer name" `Quick test_build_rejects_reserved_name;
    Alcotest.test_case "pipes follow coordination rules" `Quick test_pipes_follow_rules;
    Alcotest.test_case "super-peer collects statistics" `Quick
      test_superpeer_stats_collection;
    Alcotest.test_case "super-peer triggers updates" `Quick test_superpeer_trigger_update;
    Alcotest.test_case "rules re-broadcast rewires the network" `Quick
      test_rules_rebroadcast_changes_topology;
    Alcotest.test_case "updates follow the new rules" `Quick
      test_update_after_rewire_uses_new_rules;
    Alcotest.test_case "discovery respects TTL" `Quick test_discovery_ttl;
    Alcotest.test_case "dynamic node arrival" `Quick test_add_node_dynamic;
    Alcotest.test_case "report aggregation" `Quick test_report_aggregation_fields;
    Alcotest.test_case "report for unknown update" `Quick test_report_missing_update;
    Alcotest.test_case "snapshot sizes" `Quick test_stats_snapshot_roundtrip_sizes;
    Alcotest.test_case "pushdown reduces query traffic" `Quick
      test_pushdown_reduces_traffic;
    Alcotest.test_case "pushdown refutes existential heads" `Quick
      test_pushdown_refutes_existential;
    Alcotest.test_case "pushdown filters disjunctions at source" `Quick
      test_pushdown_filters_disjunction_at_source;
    Alcotest.test_case "pushdown rule cache serves repeats" `Quick
      test_pushdown_rule_cache_serves_repeat;
  ]
