(* Options.validate and its enforcement at System.build time. *)

module Options = Codb_core.Options
module System = Codb_core.System
module Topology = Codb_core.Topology

let ok = function
  | Ok () -> ()
  | Error errors -> Alcotest.failf "unexpected rejection: %s" (String.concat "; " errors)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let rejected ~substring = function
  | Ok () -> Alcotest.failf "expected a rejection mentioning %S" substring
  | Error errors ->
      Alcotest.(check bool)
        (Printf.sprintf "some error mentions %S" substring)
        true
        (List.exists (contains ~sub:substring) errors)

let test_default_is_valid () = ok (Options.validate Options.default)

let test_with_cache_is_valid () = ok (Options.validate Options.with_cache)

let test_negative_latency () =
  rejected ~substring:"latency"
    (Options.validate { Options.default with Options.latency = -0.5 })

let test_negative_byte_cost () =
  rejected ~substring:"byte_cost"
    (Options.validate { Options.default with Options.byte_cost = -1e-9 })

let test_nonpositive_max_events () =
  rejected ~substring:"max_update_events"
    (Options.validate { Options.default with Options.max_update_events = 0 });
  rejected ~substring:"max_update_events"
    (Options.validate { Options.default with Options.max_update_events = -3 })

let test_negative_cache_settings () =
  rejected ~substring:"cache_capacity"
    (Options.validate { Options.default with Options.cache_capacity = -1 });
  rejected ~substring:"cache_max_bytes"
    (Options.validate { Options.default with Options.cache_max_bytes = -1 });
  rejected ~substring:"cache_ttl"
    (Options.validate { Options.default with Options.cache_ttl = -0.1 })

let test_zero_bounds_are_valid () =
  (* 0 means unbounded / disabled, not invalid *)
  ok
    (Options.validate
       {
         Options.default with
         Options.cache_capacity = 0;
         cache_max_bytes = 0;
         cache_ttl = 0.0;
       })

let test_negative_index_budget () =
  rejected ~substring:"index_budget"
    (Options.validate { Options.default with Options.index_budget = -1 })

let test_planner_knobs_are_valid () =
  (* budget 0 disables indexing; the planner itself toggles freely *)
  ok (Options.validate { Options.default with Options.index_budget = 0 });
  ok (Options.validate { Options.default with Options.planner = false })

let test_wire_knobs_are_valid () =
  ok
    (Options.validate
       {
         Options.default with
         Options.wire_codec = false;
         batch_window = 0.05;
         batch_max_tuples = 1;
         sent_bloom_bits = 4096;
         sent_ring_capacity = 1;
       });
  (* 0 bloom bits means "keep the unbounded exact caches" *)
  ok (Options.validate { Options.default with Options.sent_bloom_bits = 0 })

let test_bad_wire_knobs_rejected () =
  rejected ~substring:"batch_window"
    (Options.validate { Options.default with Options.batch_window = -0.001 });
  rejected ~substring:"batch_max_tuples"
    (Options.validate { Options.default with Options.batch_max_tuples = 0 });
  rejected ~substring:"sent_bloom_bits"
    (Options.validate { Options.default with Options.sent_bloom_bits = 100 });
  rejected ~substring:"sent_bloom_bits"
    (Options.validate { Options.default with Options.sent_bloom_bits = -8 });
  rejected ~substring:"sent_bloom_bits"
    (Options.validate { Options.default with Options.sent_bloom_bits = 1 lsl 25 });
  rejected ~substring:"sent_ring_capacity"
    (Options.validate { Options.default with Options.sent_ring_capacity = 0 })

let test_chaos_knobs_are_valid () =
  ok
    (Options.validate
       {
         Options.default with
         Options.fault_seed = 42;
         drop_prob = 0.25;
         dup_prob = 1.0;
         jitter = 0.01;
         drop_budget = 10;
         flap_plan = [ ("a", "b", 0.1, 0.2) ];
         crash_plan = [ ("a", 0.1, Some 0.5); ("b", 0.2, None) ];
         ack_timeout = 0.05;
         max_retries = 0;
         backoff_factor = 1.0;
       });
  Alcotest.(check bool) "faults_enabled" true
    (Options.faults_enabled { Options.default with Options.drop_prob = 0.1 });
  Alcotest.(check bool) "default has no faults" false
    (Options.faults_enabled Options.default);
  Alcotest.(check bool) "default transport is raw" false (Options.reliable Options.default);
  Alcotest.(check bool) "ack_timeout switches the transport" true
    (Options.reliable { Options.default with Options.ack_timeout = 0.05 })

let test_bad_chaos_knobs_rejected () =
  rejected ~substring:"drop_prob"
    (Options.validate { Options.default with Options.drop_prob = 1.5 });
  rejected ~substring:"dup_prob"
    (Options.validate { Options.default with Options.dup_prob = -0.1 });
  rejected ~substring:"jitter"
    (Options.validate { Options.default with Options.jitter = -0.001 });
  rejected ~substring:"drop_budget"
    (Options.validate { Options.default with Options.drop_budget = -1 });
  rejected ~substring:"flap_plan"
    (Options.validate
       { Options.default with Options.flap_plan = [ ("a", "a", 0.1, 0.2) ] });
  rejected ~substring:"flap_plan"
    (Options.validate
       { Options.default with Options.flap_plan = [ ("a", "b", 0.2, 0.1) ] });
  rejected ~substring:"crash_plan"
    (Options.validate
       { Options.default with Options.crash_plan = [ ("a", 0.5, Some 0.1) ] });
  rejected ~substring:"crash_plan"
    (Options.validate { Options.default with Options.crash_plan = [ ("a", -0.1, None) ] });
  rejected ~substring:"ack_timeout"
    (Options.validate { Options.default with Options.ack_timeout = -0.05 });
  rejected ~substring:"max_retries"
    (Options.validate { Options.default with Options.max_retries = -1 });
  rejected ~substring:"backoff_factor"
    (Options.validate { Options.default with Options.backoff_factor = 0.5 })

let test_rto_backoff_capped () =
  let opts =
    { Options.default with Options.ack_timeout = 0.1; backoff_factor = 2.0; max_retries = 100 }
  in
  Alcotest.(check (float 1e-9)) "first attempt" 0.1 (Options.rto opts 0);
  Alcotest.(check (float 1e-9)) "second attempt" 0.2 (Options.rto opts 1);
  Alcotest.(check (float 1e-9)) "growth capped at 64x" 6.4 (Options.rto opts 1000);
  Alcotest.(check bool) "failure deadline is finite" true
    (Float.is_finite (Options.failure_deadline opts))

let test_dict_knobs () =
  Alcotest.(check bool) "zone_maps with planner valid" true
    (Options.validate { Options.default with Options.zone_maps = true } = Ok ());
  Alcotest.(check bool) "link_dicts with codec valid" true
    (Options.validate { Options.default with Options.link_dicts = true } = Ok ());
  rejected ~substring:"zone_maps"
    (Options.validate
       { Options.default with Options.zone_maps = true; planner = false });
  rejected ~substring:"link_dicts"
    (Options.validate
       { Options.default with Options.link_dicts = true; wire_codec = false })

let test_errors_accumulate () =
  match
    Options.validate
      { Options.default with Options.latency = -1.0; max_update_events = 0 }
  with
  | Ok () -> Alcotest.fail "two bad settings accepted"
  | Error errors -> Alcotest.(check int) "both reported" 2 (List.length errors)

let test_build_rejects_bad_options () =
  let cfg = Topology.generate ~seed:1 Topology.Chain ~n:2 in
  match System.build ~opts:{ Options.default with Options.latency = -1.0 } cfg with
  | Ok _ -> Alcotest.fail "System.build accepted invalid options"
  | Error errors -> Alcotest.(check bool) "errors reported" true (errors <> [])

let suite =
  [
    Alcotest.test_case "default validates" `Quick test_default_is_valid;
    Alcotest.test_case "with_cache validates" `Quick test_with_cache_is_valid;
    Alcotest.test_case "negative latency rejected" `Quick test_negative_latency;
    Alcotest.test_case "negative byte_cost rejected" `Quick test_negative_byte_cost;
    Alcotest.test_case "non-positive max_update_events rejected" `Quick
      test_nonpositive_max_events;
    Alcotest.test_case "negative cache settings rejected" `Quick
      test_negative_cache_settings;
    Alcotest.test_case "zero bounds are valid" `Quick test_zero_bounds_are_valid;
    Alcotest.test_case "negative index_budget rejected" `Quick
      test_negative_index_budget;
    Alcotest.test_case "planner knobs are valid" `Quick test_planner_knobs_are_valid;
    Alcotest.test_case "wire knobs are valid" `Quick test_wire_knobs_are_valid;
    Alcotest.test_case "bad wire knobs rejected" `Quick test_bad_wire_knobs_rejected;
    Alcotest.test_case "chaos knobs are valid" `Quick test_chaos_knobs_are_valid;
    Alcotest.test_case "bad chaos knobs rejected" `Quick test_bad_chaos_knobs_rejected;
    Alcotest.test_case "zone-map/link-dict knobs validated" `Quick test_dict_knobs;
    Alcotest.test_case "rto backoff capped" `Quick test_rto_backoff_capped;
    Alcotest.test_case "errors accumulate" `Quick test_errors_accumulate;
    Alcotest.test_case "System.build enforces validate" `Quick
      test_build_rejects_bad_options;
  ]
