(* Options.validate and its enforcement at System.build time. *)

module Options = Codb_core.Options
module System = Codb_core.System
module Topology = Codb_core.Topology

let ok = function
  | Ok () -> ()
  | Error errors -> Alcotest.failf "unexpected rejection: %s" (String.concat "; " errors)

let contains ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.equal (String.sub s i n) sub || go (i + 1)) in
  n = 0 || go 0

let rejected ~substring = function
  | Ok () -> Alcotest.failf "expected a rejection mentioning %S" substring
  | Error errors ->
      Alcotest.(check bool)
        (Printf.sprintf "some error mentions %S" substring)
        true
        (List.exists (contains ~sub:substring) errors)

let test_default_is_valid () = ok (Options.validate Options.default)

let test_with_cache_is_valid () = ok (Options.validate Options.with_cache)

let test_negative_latency () =
  rejected ~substring:"latency"
    (Options.validate { Options.default with Options.latency = -0.5 })

let test_negative_byte_cost () =
  rejected ~substring:"byte_cost"
    (Options.validate { Options.default with Options.byte_cost = -1e-9 })

let test_nonpositive_max_events () =
  rejected ~substring:"max_update_events"
    (Options.validate { Options.default with Options.max_update_events = 0 });
  rejected ~substring:"max_update_events"
    (Options.validate { Options.default with Options.max_update_events = -3 })

let test_negative_cache_settings () =
  rejected ~substring:"cache_capacity"
    (Options.validate { Options.default with Options.cache_capacity = -1 });
  rejected ~substring:"cache_max_bytes"
    (Options.validate { Options.default with Options.cache_max_bytes = -1 });
  rejected ~substring:"cache_ttl"
    (Options.validate { Options.default with Options.cache_ttl = -0.1 })

let test_zero_bounds_are_valid () =
  (* 0 means unbounded / disabled, not invalid *)
  ok
    (Options.validate
       {
         Options.default with
         Options.cache_capacity = 0;
         cache_max_bytes = 0;
         cache_ttl = 0.0;
       })

let test_negative_index_budget () =
  rejected ~substring:"index_budget"
    (Options.validate { Options.default with Options.index_budget = -1 })

let test_planner_knobs_are_valid () =
  (* budget 0 disables indexing; the planner itself toggles freely *)
  ok (Options.validate { Options.default with Options.index_budget = 0 });
  ok (Options.validate { Options.default with Options.planner = false })

let test_wire_knobs_are_valid () =
  ok
    (Options.validate
       {
         Options.default with
         Options.wire_codec = false;
         batch_window = 0.05;
         batch_max_tuples = 1;
         sent_bloom_bits = 4096;
         sent_ring_capacity = 1;
       });
  (* 0 bloom bits means "keep the unbounded exact caches" *)
  ok (Options.validate { Options.default with Options.sent_bloom_bits = 0 })

let test_bad_wire_knobs_rejected () =
  rejected ~substring:"batch_window"
    (Options.validate { Options.default with Options.batch_window = -0.001 });
  rejected ~substring:"batch_max_tuples"
    (Options.validate { Options.default with Options.batch_max_tuples = 0 });
  rejected ~substring:"sent_bloom_bits"
    (Options.validate { Options.default with Options.sent_bloom_bits = 100 });
  rejected ~substring:"sent_bloom_bits"
    (Options.validate { Options.default with Options.sent_bloom_bits = -8 });
  rejected ~substring:"sent_bloom_bits"
    (Options.validate { Options.default with Options.sent_bloom_bits = 1 lsl 25 });
  rejected ~substring:"sent_ring_capacity"
    (Options.validate { Options.default with Options.sent_ring_capacity = 0 })

let test_errors_accumulate () =
  match
    Options.validate
      { Options.default with Options.latency = -1.0; max_update_events = 0 }
  with
  | Ok () -> Alcotest.fail "two bad settings accepted"
  | Error errors -> Alcotest.(check int) "both reported" 2 (List.length errors)

let test_build_rejects_bad_options () =
  let cfg = Topology.generate ~seed:1 Topology.Chain ~n:2 in
  match System.build ~opts:{ Options.default with Options.latency = -1.0 } cfg with
  | Ok _ -> Alcotest.fail "System.build accepted invalid options"
  | Error errors -> Alcotest.(check bool) "errors reported" true (errors <> [])

let suite =
  [
    Alcotest.test_case "default validates" `Quick test_default_is_valid;
    Alcotest.test_case "with_cache validates" `Quick test_with_cache_is_valid;
    Alcotest.test_case "negative latency rejected" `Quick test_negative_latency;
    Alcotest.test_case "negative byte_cost rejected" `Quick test_negative_byte_cost;
    Alcotest.test_case "non-positive max_update_events rejected" `Quick
      test_nonpositive_max_events;
    Alcotest.test_case "negative cache settings rejected" `Quick
      test_negative_cache_settings;
    Alcotest.test_case "zero bounds are valid" `Quick test_zero_bounds_are_valid;
    Alcotest.test_case "negative index_budget rejected" `Quick
      test_negative_index_budget;
    Alcotest.test_case "planner knobs are valid" `Quick test_planner_knobs_are_valid;
    Alcotest.test_case "wire knobs are valid" `Quick test_wire_knobs_are_valid;
    Alcotest.test_case "bad wire knobs rejected" `Quick test_bad_wire_knobs_rejected;
    Alcotest.test_case "errors accumulate" `Quick test_errors_accumulate;
    Alcotest.test_case "System.build enforces validate" `Quick
      test_build_rejects_bad_options;
  ]
