(* Durability: CRC framing, WAL append/snapshot/recover round-trips,
   the three crash models, and true recovery — a crashed-and-recovered
   network reaches the fault-free fix-point while refetching no more
   than the clear-and-refetch baseline. *)

open Helpers
module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Node = Codb_core.Node
module Durable = Codb_core.Durable
module Network = Codb_net.Network
module Frame = Codb_store.Frame
module Backend = Codb_store.Backend
module Wal = Codb_store.Wal

(* --- framing -------------------------------------------------------- *)

let records = [ "alpha"; ""; "a longer record with some bytes in it"; "z" ]

let concat_frames rs = String.concat "" (List.map Frame.encode rs)

let test_frame_round_trip () =
  let got, status = Frame.decode_all (concat_frames records) in
  Alcotest.(check (list string)) "records intact" records got;
  Alcotest.(check bool) "clean" true (status = Frame.Clean)

let test_frame_torn_tail () =
  let whole = concat_frames records in
  (* every proper prefix decodes to a prefix of the records, flagged *)
  for cut = 0 to String.length whole - 1 do
    let got, status = Frame.decode_all (String.sub whole 0 cut) in
    Alcotest.(check bool)
      (Printf.sprintf "cut at %d yields a record prefix" cut)
      true
      (List.length got <= List.length records
      && List.for_all2 String.equal got
           (List.filteri (fun i _ -> i < List.length got) records));
    if cut > 0 && status = Frame.Clean then
      Alcotest.(check int)
        (Printf.sprintf "clean cut at %d is a frame boundary" cut)
        (String.length (concat_frames got))
        cut
  done

let test_frame_bit_flip () =
  let whole = concat_frames records in
  (* flipping any single bit never yields a wrong record: decode
     returns a prefix of the true records and flags the damage (a flip
     in a length field may also resynchronise early — still only true
     records survive the CRC) *)
  for pos = 0 to String.length whole - 1 do
    let b = Bytes.of_string whole in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 1));
    let got, _status = Frame.decode_all (Bytes.to_string b) in
    List.iter
      (fun r ->
        Alcotest.(check bool)
          (Printf.sprintf "flip at %d yields only true records" pos)
          true (List.mem r records))
      got
  done

(* --- WAL ------------------------------------------------------------ *)

let test_wal_memory_round_trip () =
  let backend = Backend.memory () in
  let snap = ref "state-0" in
  let wal =
    Wal.create ~backend ~snapshot_every:1000 ~take_snapshot:(fun () -> !snap) ()
  in
  List.iter (Wal.append wal) records;
  let rv = Wal.recover ~backend in
  Alcotest.(check (list string)) "records replayed" records rv.Wal.rec_records;
  Alcotest.(check bool) "no snapshot yet" true (rv.Wal.rec_snapshot = None);
  Alcotest.(check bool) "not truncated" false rv.Wal.rec_truncated;
  snap := "state-1";
  Wal.snapshot_now wal;
  let rv = Wal.recover ~backend in
  Alcotest.(check (option string)) "snapshot wins" (Some "state-1")
    rv.Wal.rec_snapshot;
  Alcotest.(check (list string)) "log truncated by the snapshot" []
    rv.Wal.rec_records;
  Wal.append wal "post-snap";
  let rv = Wal.recover ~backend in
  Alcotest.(check (list string)) "tail after the snapshot" [ "post-snap" ]
    rv.Wal.rec_records

let test_wal_auto_snapshot () =
  let backend = Backend.memory () in
  let appended = ref 0 in
  let wal =
    Wal.create ~backend ~snapshot_every:3 ~take_snapshot:(fun () ->
        Printf.sprintf "snap-%d" !appended) ()
  in
  for i = 1 to 7 do
    appended := i;
    Wal.append wal (Printf.sprintf "r%d" i)
  done;
  let rv = Wal.recover ~backend in
  (* snapshots fired at records 3 and 6; only r7 remains in the log *)
  Alcotest.(check (option string)) "latest snapshot" (Some "snap-6")
    rv.Wal.rec_snapshot;
  Alcotest.(check (list string)) "tail" [ "r7" ] rv.Wal.rec_records;
  let c = Wal.counters wal in
  Alcotest.(check int) "records counted" 7 c.Wal.records_written;
  Alcotest.(check int) "snapshots counted" 2 c.Wal.snapshots_taken

let test_wal_file_backend () =
  (* relative: lands in the dune test sandbox, gitignored as _wal_* *)
  let dir = "_wal_test_unit" in
  let backend = Backend.file ~fsync:false ~dir ~node:"n0" () in
  backend.Backend.reset_log ();
  let wal =
    Wal.create ~backend ~snapshot_every:1000 ~take_snapshot:(fun () -> "s") ()
  in
  List.iter (Wal.append wal) records;
  Wal.snapshot_now wal;
  Wal.append wal "tail-1";
  Wal.append wal "tail-2";
  (* a different backend handle on the same files sees the same bytes *)
  let backend' = Backend.file ~fsync:false ~dir ~node:"n0" () in
  let rv = Wal.recover ~backend:backend' in
  Alcotest.(check (option string)) "snapshot from disk" (Some "s")
    rv.Wal.rec_snapshot;
  Alcotest.(check (list string)) "tail from disk" [ "tail-1"; "tail-2" ]
    rv.Wal.rec_records;
  (* a torn write at the end of the log truncates, never fails *)
  let oc =
    open_out_gen [ Open_append; Open_binary ] 0o644
      (Filename.concat dir "n0.wal")
  in
  output_string oc "\x40\x00\x00\x00torn";
  close_out oc;
  let rv = Wal.recover ~backend:backend' in
  Alcotest.(check (list string)) "intact tail survives the torn write"
    [ "tail-1"; "tail-2" ] rv.Wal.rec_records;
  Alcotest.(check bool) "truncation flagged" true rv.Wal.rec_truncated

(* --- durable records ------------------------------------------------ *)

let test_record_round_trip () =
  let tuples = [ tup [ i 1; s "x" ]; tup [ i 2; s "y" ] ] in
  let rs =
    [
      Durable.Insert { rel = "data"; tuples };
      Durable.Import { rule = "r1"; rel = "data"; hops = 2; at = 0.125; tuples };
      Durable.Seq_reserve { upto = 640 };
      Durable.Sub_add
        { sub_id = "s1"; owner = Durable.Olocal; query_text = "a(x) <- b(x)" };
      Durable.Sub_add
        {
          sub_id = "s2";
          owner = Durable.Oremote (Codb_net.Peer_id.of_string "n3");
          query_text = "a(x) <- b(x)";
        };
      Durable.Sub_remove { sub_id = "s1" };
      Durable.Mirror_add
        {
          sub_id = "m1";
          host = Codb_net.Peer_id.of_string "n2";
          query_text = "a(x) <- b(x)";
        };
      Durable.Mirror_remove { sub_id = "m1" };
    ]
  in
  List.iter
    (fun r ->
      Alcotest.(check bool) "round-trips" true
        (Durable.decode_record (Durable.encode_record r) = r))
    rs;
  (match Durable.decode_record "\xff" with
  | exception Codb_net.Codec.Malformed _ -> ()
  | _ -> Alcotest.fail "unknown tag must raise Malformed")

(* --- dictionary-mode records and tabled snapshots -------------------- *)

let test_record_dict_round_trip () =
  let module Codec = Codb_net.Codec in
  let tuples = [ tup [ i 1; s "payload-string" ]; tup [ i 2; s "payload-string" ] ] in
  let rs =
    [
      Durable.Insert { rel = "data"; tuples };
      Durable.Import { rule = "r1"; rel = "data"; hops = 2; at = 0.125; tuples };
      Durable.Insert { rel = "data"; tuples };
      Durable.Sub_add
        { sub_id = "s1"; owner = Durable.Olocal; query_text = "a(x) <- b(x)" };
      Durable.Sub_remove { sub_id = "s1" };
    ]
  in
  let d = Codec.Dict.sender () in
  let encoded = List.map (fun r -> Durable.encode_record ~dict:d r) rs in
  (* replay exactly as recovery does: one mirror, built in record order *)
  let tab = Hashtbl.create 16 in
  List.iter2
    (fun r bytes ->
      Alcotest.(check bool) "dictionary record round-trips" true
        (Durable.decode_record ~dict:tab bytes = r))
    rs encoded;
  (match encoded with
  | first :: _ :: third :: _ ->
      Alcotest.(check bool) "repeated record shrinks" true
        (String.length third < String.length first);
      (* a dictionary record without its replay mirror must fail loudly *)
      (match Durable.decode_record third with
      | exception Codec.Malformed _ -> ()
      | _ -> Alcotest.fail "dict record decoded without a replay table")
  | _ -> assert false);
  (* plain and dictionary records coexist in one log *)
  let plain = Durable.encode_record (List.hd rs) in
  Alcotest.(check bool) "mixed-mode log replays" true
    (Durable.decode_record ~dict:tab plain = List.hd rs)

let test_tabled_snapshot_smaller () =
  let sys =
    System.build_exn
      ~opts:{ Options.default with Options.durability = Options.Dur_wal }
      (Topology.generate ~seed:5 Topology.Chain ~n:3)
  in
  let _ = System.run_update sys ~initiator:"n0" in
  for k = 0 to 49 do
    Alcotest.(check bool) "fact inserted" true
      (System.insert_fact sys ~at:"n1" ~rel:"data"
         (tup [ i (1000 + k); s (Printf.sprintf "shared-stem/value-%04d" k) ]))
  done;
  let node = System.node sys "n1" in
  let v1 = Durable.encode_snapshot node in
  let v2 = Durable.encode_snapshot ~tabled:true node in
  Alcotest.(check bool)
    (Printf.sprintf "tabled snapshot strictly smaller (%d < %d)"
       (String.length v2) (String.length v1))
    true
    (String.length v2 < String.length v1)

(* --- the three crash models ----------------------------------------- *)

let chain ?(seed = 5) n = Topology.generate ~seed Topology.Chain ~n

let dur_opts ?(durability = Options.Dur_wal) ?(crashes = []) ?(seed = 11) () =
  {
    Options.default with
    Options.ack_timeout = 0.05;
    max_retries = 8;
    fault_seed = seed;
    crash_plan = crashes;
    durability;
  }

let stores_equal a b =
  List.for_all
    (fun name ->
      Database.equal_contents (System.node a name).Node.store
        (System.node b name).Node.store)
    (System.node_names a)

let refetched sys =
  (Report.chaos_report (System.snapshots sys)).Report.chr_refetched_bytes

let test_off_crash_keeps_store () =
  let sys = System.build_exn ~opts:(dur_opts ~durability:Options.Dur_off ()) (chain 3) in
  let _ = System.run_update sys ~initiator:"n0" in
  let before = System.store_digest sys "n1" in
  System.crash_node sys "n1";
  Alcotest.(check int) "lenient crash: store survives in memory" before
    (System.store_digest sys "n1")

let test_volatile_crash_wipes_store () =
  let sys =
    System.build_exn ~opts:(dur_opts ~durability:Options.Dur_volatile ()) (chain 3)
  in
  let _ = System.run_update sys ~initiator:"n0" in
  let before = System.store_digest sys "n1" in
  System.crash_node sys "n1";
  Alcotest.(check bool) "honest crash: imported tuples are gone" true
    (System.store_digest sys "n1" <> before);
  (* the restart's catch-up update refetches everything *)
  System.restart_node sys "n1";
  let _ = System.run sys in
  Alcotest.(check int) "catch-up restores the fix-point" before
    (System.store_digest sys "n1");
  Alcotest.(check bool) "refetch accounted" true (refetched sys > 0)

let test_wal_crash_recovers_store () =
  let sys = System.build_exn ~opts:(dur_opts ()) (chain 3) in
  let _ = System.run_update sys ~initiator:"n0" in
  let before = System.store_digest sys "n1" in
  System.crash_node sys "n1";
  Alcotest.(check bool) "honest crash: imported tuples are gone" true
    (System.store_digest sys "n1" <> before);
  System.restart_node sys "n1";
  Alcotest.(check int) "recovery restores the store without the network"
    before
    (System.store_digest sys "n1");
  let dr = System.durability_report sys in
  Alcotest.(check int) "one recovery" 1 dr.System.dr_recoveries;
  Alcotest.(check bool) "log records were written" true (dr.System.dr_wal_records > 0);
  let ch = Report.chaos_report (System.snapshots sys) in
  Alcotest.(check bool) "replayed bytes surfaced in stats" true
    (ch.Report.chr_replayed_bytes > 0)

let test_wal_dict_crash_recovers_store () =
  (* same crash/restart discipline, with the WAL stream and snapshots
     in dictionary mode — recovery must land on the identical store *)
  let opts = { (dur_opts ()) with Options.link_dicts = true } in
  let plain_sys = System.build_exn ~opts:(dur_opts ()) (chain 3) in
  let _ = System.run_update plain_sys ~initiator:"n0" in
  let sys = System.build_exn ~opts (chain 3) in
  let _ = System.run_update sys ~initiator:"n0" in
  Alcotest.(check bool) "dict-mode run matches plain run" true
    (stores_equal plain_sys sys);
  let before = System.store_digest sys "n1" in
  System.crash_node sys "n1";
  System.restart_node sys "n1";
  Alcotest.(check int) "dictionary WAL recovery restores the store" before
    (System.store_digest sys "n1");
  (* survive a second cycle: the post-recovery WAL re-arms its dict *)
  ignore (System.insert_fact sys ~at:"n1" ~rel:"data" (tup [ i 777; s "late" ]));
  let before2 = System.store_digest sys "n1" in
  System.crash_node sys "n1";
  System.restart_node sys "n1";
  Alcotest.(check int) "second recovery also exact" before2
    (System.store_digest sys "n1")

let test_wal_mid_run_crash_reaches_fault_free_fixpoint () =
  let baseline = System.build_exn (chain 5) in
  let _ = System.run_update baseline ~initiator:"n0" in
  let opts = dur_opts ~crashes:[ ("n2", 0.002, Some 0.15) ] () in
  let sys = System.build_exn ~opts (chain 5) in
  let _ = System.run_update sys ~initiator:"n0" in
  Alcotest.(check int) "crashed" 1
    (Network.counters (System.net sys)).Network.crashes;
  Alcotest.(check bool) "fix-point equals the fault-free run" true
    (stores_equal baseline sys);
  Alcotest.(check int) "one recovery" 1
    (System.durability_report sys).System.dr_recoveries

let test_wal_refetches_no_more_than_volatile () =
  let crashes = [ ("n2", 0.002, Some 0.15) ] in
  let run durability =
    let sys = System.build_exn ~opts:(dur_opts ~durability ~crashes ()) (chain 5) in
    let _ = System.run_update sys ~initiator:"n0" in
    (sys, refetched sys)
  in
  let wal_sys, wal_bytes = run Options.Dur_wal in
  let vol_sys, vol_bytes = run Options.Dur_volatile in
  Alcotest.(check bool) "both reach the same fix-point" true
    (stores_equal wal_sys vol_sys);
  Alcotest.(check bool)
    (Printf.sprintf "recovery refetches less (wal %d <= volatile %d)" wal_bytes
       vol_bytes)
    true (wal_bytes <= vol_bytes)

(* --- subscriptions survive recovery --------------------------------- *)

let test_wal_recovers_subscriptions () =
  let opts = { (dur_opts ()) with Options.subscriptions = true } in
  let sys = System.build_exn ~opts (chain 3) in
  let q = parse_query "ans(k, v) <- data(k, v)" in
  let sub_id =
    match System.subscribe sys ~at:"n1" q with
    | Ok id -> id
    | Error e -> Alcotest.failf "subscribe: %s" e
  in
  let mirror_id =
    match System.subscribe_remote sys ~subscriber:"n1" ~host:"n0" q with
    | Ok id -> id
    | Error e -> Alcotest.failf "subscribe_remote: %s" e
  in
  let _ = System.run sys in
  let _ = System.run_update sys ~initiator:"n0" in
  let hosted = Option.get (System.subscription_answers sys ~at:"n1" sub_id) in
  let mirrored = Option.get (System.subscription_answers sys ~at:"n1" mirror_id) in
  System.crash_node sys "n1";
  System.restart_node sys "n1";
  let _ = System.run sys in
  (match System.subscription_answers sys ~at:"n1" sub_id with
  | None -> Alcotest.fail "hosted subscription lost in the crash"
  | Some answers -> check_tuples "hosted answers recovered" hosted answers);
  (match System.subscription_answers sys ~at:"n1" mirror_id with
  | None -> Alcotest.fail "mirror lost in the crash"
  | Some answers -> check_tuples "mirror answers recovered" mirrored answers)

(* --- the recovery property (qcheck) --------------------------------- *)

module Q2 = QCheck2
module Gen = QCheck2.Gen

(* A seeded chaos plan with a mid-run crash: under [Dur_wal] the
   network still reaches the fault-free fix-point, and the recovered
   node refetches no more than the clear-and-refetch baseline. *)
let gen_plan =
  let open Gen in
  let* seed = int_range 0 999 in
  let* n = int_range 3 5 in
  let* victim = int_range 1 (n - 2) in
  let* crash_at = float_range 0.0005 0.004 in
  let* downtime = float_range 0.05 0.25 in
  return (seed, n, victim, crash_at, downtime)

let prop_recovery_reaches_fault_free_fixpoint =
  Q2.Test.make
    ~name:"recovered chaos runs reach the fault-free fix-point, cheaper"
    ~count:8
    ~print:(fun (seed, n, victim, at, down) ->
      Printf.sprintf "seed=%d n=%d victim=n%d crash=%g downtime=%g" seed n
        victim at down)
    gen_plan
    (fun (seed, n, victim, crash_at, downtime) ->
      let crashes =
        [ (Printf.sprintf "n%d" victim, crash_at, Some (crash_at +. downtime)) ]
      in
      let baseline = System.build_exn (chain n) in
      let _ = System.run_update baseline ~initiator:"n0" in
      let run durability =
        let sys =
          System.build_exn
            ~opts:(dur_opts ~durability ~crashes ~seed ())
            (chain n)
        in
        let _ = System.run_update sys ~initiator:"n0" in
        sys
      in
      let wal_sys = run Options.Dur_wal in
      let vol_sys = run Options.Dur_volatile in
      stores_equal baseline wal_sys
      && stores_equal baseline vol_sys
      && refetched wal_sys <= refetched vol_sys)

let suite =
  [
    Alcotest.test_case "frame round-trip" `Quick test_frame_round_trip;
    Alcotest.test_case "torn tails truncate cleanly" `Quick test_frame_torn_tail;
    Alcotest.test_case "bit flips never forge records" `Quick test_frame_bit_flip;
    Alcotest.test_case "WAL round-trip (memory)" `Quick test_wal_memory_round_trip;
    Alcotest.test_case "WAL auto-snapshot compaction" `Quick test_wal_auto_snapshot;
    Alcotest.test_case "WAL file backend + torn write" `Quick test_wal_file_backend;
    Alcotest.test_case "durable records round-trip" `Quick test_record_round_trip;
    Alcotest.test_case "dictionary records round-trip" `Quick
      test_record_dict_round_trip;
    Alcotest.test_case "tabled snapshots are smaller" `Quick
      test_tabled_snapshot_smaller;
    Alcotest.test_case "Dur_wal + link_dicts: exact recovery" `Quick
      test_wal_dict_crash_recovers_store;
    Alcotest.test_case "Dur_off: lenient crash" `Quick test_off_crash_keeps_store;
    Alcotest.test_case "Dur_volatile: wipe, then catch-up" `Quick
      test_volatile_crash_wipes_store;
    Alcotest.test_case "Dur_wal: recovery without the network" `Quick
      test_wal_crash_recovers_store;
    Alcotest.test_case "mid-run crash reaches the fault-free fix-point" `Quick
      test_wal_mid_run_crash_reaches_fault_free_fixpoint;
    Alcotest.test_case "recovery refetches no more than clear-and-refetch"
      `Quick test_wal_refetches_no_more_than_volatile;
    Alcotest.test_case "subscriptions survive recovery" `Quick
      test_wal_recovers_subscriptions;
    QCheck_alcotest.to_alcotest prop_recovery_reaches_fault_free_fixpoint;
  ]
