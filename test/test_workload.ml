open Helpers
module Rng = Codb_workload.Rng
module Datagen = Codb_workload.Datagen

let test_rng_deterministic () =
  let draw seed = List.init 10 (fun _ -> Rng.int (Rng.make ~seed) 1000) in
  Alcotest.(check (list int)) "same seed same stream" (draw 42) (draw 42);
  Alcotest.(check bool) "different seeds differ" true (draw 42 <> draw 43)

let test_rng_bounds () =
  let rng = Rng.make ~seed:1 in
  for _ = 1 to 200 do
    let x = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (x >= 0 && x < 7);
    let y = Rng.int_range rng 5 9 in
    Alcotest.(check bool) "inclusive range" true (y >= 5 && y <= 9)
  done;
  Alcotest.(check bool) "bad bound" true
    (try
       ignore (Rng.int rng 0);
       false
     with Invalid_argument _ -> true)

let test_rng_pick_shuffle () =
  let rng = Rng.make ~seed:2 in
  let l = [ 1; 2; 3; 4; 5 ] in
  for _ = 1 to 50 do
    Alcotest.(check bool) "pick member" true (List.mem (Rng.pick rng l) l)
  done;
  let shuffled = Rng.shuffle rng l in
  Alcotest.(check (list int)) "permutation" l (List.sort compare shuffled)

let test_zipf_skews_low_ranks () =
  let rng = Rng.make ~seed:3 in
  let n = 50 in
  let counts = Array.make (n + 1) 0 in
  for _ = 1 to 5000 do
    let r = Rng.zipf rng ~n ~s:1.2 in
    Alcotest.(check bool) "rank in range" true (r >= 1 && r <= n);
    counts.(r) <- counts.(r) + 1
  done;
  Alcotest.(check bool) "rank 1 dominates rank 25" true (counts.(1) > counts.(25))

let test_datagen_conforms () =
  let rng = Rng.make ~seed:4 in
  let schema =
    Schema.make "t"
      [ ("a", Value.Tint); ("b", Value.Tfloat); ("c", Value.Tstring); ("d", Value.Tbool) ]
  in
  List.iter
    (fun t -> Alcotest.(check bool) "conforms" true (Schema.conforms schema t))
    (Datagen.tuples rng Datagen.default_profile schema ~count:100)

let test_distinct_tuples_distinct () =
  let rng = Rng.make ~seed:5 in
  let ts =
    Datagen.distinct_tuples rng Datagen.default_profile r_schema ~count:40
  in
  let set = Relation.Tuple_set.of_list ts in
  Alcotest.(check int) "all distinct" (List.length ts) (Relation.Tuple_set.cardinal set)

let test_distinct_tuples_small_domain () =
  let rng = Rng.make ~seed:6 in
  let tiny = { Datagen.domain_size = 2; skew = 0.0 } in
  let ts = Datagen.distinct_tuples rng tiny r_schema ~count:100 in
  (* only 4 distinct tuples exist; the generator must stop early
     rather than loop forever *)
  Alcotest.(check bool) "bounded by domain" true (List.length ts <= 4)

module Glavgen = Codb_workload.Glavgen
module Topology = Codb_core.Topology

let test_glavgen_validates () =
  List.iter
    (fun (shape, n) ->
      let edges = Topology.edges shape ~n in
      let cfg = Glavgen.generate ~seed:7 ~edges ~n () in
      match Config.validate cfg with
      | Ok () -> ()
      | Error errors ->
          Alcotest.failf "%s invalid: %s" (Topology.shape_name shape)
            (String.concat "; " errors))
    [ (Topology.Chain, 5); (Topology.Ring, 4); (Topology.Clique, 3) ]

let test_glavgen_rule_mix () =
  let spec =
    { Glavgen.default_spec with Glavgen.join_frac = 1.0; rules_per_edge = 2 }
  in
  let edges = Topology.edges Topology.Chain ~n:4 in
  let cfg = Glavgen.generate ~spec ~seed:8 ~edges ~n:4 () in
  Alcotest.(check int) "two rules per edge" 6 (List.length cfg.Config.rules);
  List.iter
    (fun r ->
      Alcotest.(check int)
        (r.Config.rule_id ^ " is a join")
        2
        (List.length r.Config.rule_query.Query.body))
    cfg.Config.rules

let test_glavgen_deterministic () =
  let edges = Topology.edges Topology.Ring ~n:4 in
  let text seed =
    Codb_cq.Pretty.config_to_string (Glavgen.generate ~seed ~edges ~n:4 ())
  in
  Alcotest.(check string) "same seed" (text 3) (text 3);
  Alcotest.(check bool) "different seed" true (text 3 <> text 4)

let test_glavgen_runs_to_fixpoint () =
  let edges = Topology.edges Topology.Ring ~n:4 in
  let spec = { Glavgen.default_spec with Glavgen.tuples_per_relation = 10 } in
  let cfg = Glavgen.generate ~spec ~seed:9 ~edges ~n:4 () in
  let sys = Codb_core.System.build_exn cfg in
  let uid = Codb_core.System.run_update sys ~initiator:"n0" in
  let report =
    Option.get (Codb_core.Report.update_report (Codb_core.System.snapshots sys) uid)
  in
  Alcotest.(check bool) "terminates" true report.Codb_core.Report.ur_all_finished

let suite =
  [
    Alcotest.test_case "rng determinism" `Quick test_rng_deterministic;
    Alcotest.test_case "glav networks validate" `Quick test_glavgen_validates;
    Alcotest.test_case "glav rule mix" `Quick test_glavgen_rule_mix;
    Alcotest.test_case "glav generation deterministic" `Quick test_glavgen_deterministic;
    Alcotest.test_case "glav ring terminates" `Quick test_glavgen_runs_to_fixpoint;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "pick and shuffle" `Quick test_rng_pick_shuffle;
    Alcotest.test_case "zipf skew" `Quick test_zipf_skews_low_ranks;
    Alcotest.test_case "generated tuples conform" `Quick test_datagen_conforms;
    Alcotest.test_case "distinct tuples are distinct" `Quick test_distinct_tuples_distinct;
    Alcotest.test_case "small domains terminate" `Quick test_distinct_tuples_small_domain;
  ]
