open Helpers
module Payload = Codb_core.Payload
module Ids = Codb_core.Ids
module Stats = Codb_core.Stats
module Peer_id = Codb_net.Peer_id

let uid = Ids.update_id (Peer_id.of_string "n0") 1

let qid = Ids.query_id (Peer_id.of_string "n0") 1

let samples =
  [
    Payload.Update_request { update_id = uid; scope = Payload.Global };
    Payload.Update_request { update_id = uid; scope = Payload.For_rule "r1" };
    Payload.Update_data
      { update_id = uid; rule_id = "r1"; tuples = [ tup [ i 1; s "x" ] ]; hops = 2;
        global = true };
    Payload.Update_batch
      { update_id = uid;
        entries =
          [
            { Payload.be_rule = "r1"; be_hops = 2; be_tuples = [ tup [ i 1; s "x" ] ] };
            { Payload.be_rule = "r2"; be_hops = 1; be_tuples = [ tup [ i 2; s "x" ] ] };
          ];
        global = true };
    Payload.Update_link_closed { update_id = uid; rule_id = "r1"; global = true };
    Payload.Update_ack { update_id = uid };
    Payload.Update_terminated { update_id = uid };
    Payload.Query_request
      { query_id = qid; request_ref = "n0/1"; rule_id = "r1";
        label = [ Peer_id.of_string "n0" ]; constraints = Payload.Specialize.any };
    Payload.Query_data
      { query_id = qid; request_ref = "n0/1"; rule_id = "r1"; tuples = [ tup [ i 1 ] ] };
    Payload.Query_done { query_id = qid; request_ref = "n0/1"; rule_id = "r1"; complete = true };
    Payload.Rules_file { version = 1; text = "node a { relation r(x: int); }" };
    Payload.Start_update;
    Payload.Stats_request;
    Payload.Stats_response { stats = Stats.snapshot (Stats.create (Peer_id.of_string "n0")) };
    Payload.Discovery_probe { probe_id = "n0/1"; ttl = 3; path = [ Peer_id.of_string "n0" ] };
    Payload.Discovery_reply
      { probe_id = "n0/1"; path = []; peers = [ Peer_id.of_string "n1" ] };
    Payload.Seq
      { seq = 7;
        inner =
          Payload.Update_data
            { update_id = uid; rule_id = "r1"; tuples = [ tup [ i 1; s "x" ] ]; hops = 1;
              global = true } };
    Payload.Seq_ack { seq = 7 };
    Payload.Sub_register { sub_id = "n0/s1"; query_text = "q(X) :- r(X, Y)" };
    Payload.Sub_registered { sub_id = "n0/s1"; accepted = true; reason = "" };
    Payload.Sub_registered
      { sub_id = "n0/s1"; accepted = false; reason = "registry full" };
    Payload.Sub_unregister { sub_id = "n0/s1" };
    Payload.Answer_delta
      { sub_id = "n0/s1"; adds = [ tup [ i 1 ] ]; retracts = [ tup [ i 2 ] ];
        tag = "seed" };
    Payload.Answer_batch
      { entries =
          [
            { Payload.se_sub = "n0/s1"; se_adds = [ tup [ i 1 ] ];
              se_retracts = []; se_tag = "coalesced" };
            { Payload.se_sub = "n0/s2"; se_adds = []; se_retracts = [ tup [ i 3 ] ];
              se_tag = "u1 via r1 hop 2" };
          ] };
  ]

let test_sizes_positive () =
  List.iter
    (fun p ->
      Alcotest.(check bool) (Payload.describe p) true (Payload.size p > 0))
    samples

let test_data_size_grows_with_tuples () =
  let mk tuples =
    Payload.size
      (Payload.Update_data { update_id = uid; rule_id = "r"; tuples; hops = 1; global = true })
  in
  Alcotest.(check bool) "more tuples, bigger" true
    (mk [ tup [ i 1 ]; tup [ i 2 ] ] > mk [ tup [ i 1 ] ])

(* the size model must charge for every field a request carries: a
   longer rule id or a pushed constraint set is more bytes on the wire *)
let test_request_size_tracks_rule_id () =
  let mk rule_id =
    Payload.size
      (Payload.Query_request
         { query_id = qid; request_ref = "n0/1"; rule_id;
           label = [ Peer_id.of_string "n0" ]; constraints = Payload.Specialize.any })
  in
  Alcotest.(check int) "delta equals rule-id growth" 100
    (mk (String.make 120 'r') - mk (String.make 20 'r'))

let test_request_size_tracks_constraints () =
  let mk constraints =
    Payload.size
      (Payload.Query_request
         { query_id = qid; request_ref = "n0/1"; rule_id = "r1";
           label = [ Peer_id.of_string "n0" ]; constraints })
  in
  let constrained =
    Payload.Specialize.(
      One_of
        [ [ { p_left = Col 0; p_op = Codb_cq.Query.Eq; p_right = Const (i 7) } ] ])
  in
  Alcotest.(check bool) "constraints cost bytes" true
    (mk constrained > mk Payload.Specialize.any)

let test_rules_file_size_tracks_text () =
  let mk text = Payload.size (Payload.Rules_file { version = 1; text }) in
  Alcotest.(check int) "delta equals text growth" 100
    (mk (String.make 150 'x') - mk (String.make 50 'x'))

let test_update_protocol_classification () =
  let rec expect_protocol = function
    | Payload.Update_request _ | Payload.Update_data _ | Payload.Update_batch _
    | Payload.Update_link_closed _ ->
        true
    | Payload.Seq { inner; _ } -> expect_protocol inner
    | Payload.Update_ack _ | Payload.Update_terminated _ | Payload.Query_request _
    | Payload.Query_data _ | Payload.Query_done _ | Payload.Rules_file _
    | Payload.Start_update | Payload.Stats_request | Payload.Stats_response _
    | Payload.Discovery_probe _ | Payload.Discovery_reply _ | Payload.Seq_ack _
    | Payload.Sub_register _ | Payload.Sub_registered _ | Payload.Sub_unregister _
    | Payload.Answer_delta _ | Payload.Answer_batch _ ->
        false
  in
  List.iter
    (fun p ->
      Alcotest.(check bool) (Payload.describe p) (expect_protocol p)
        (Payload.is_update_protocol p))
    samples

let test_describe_nonempty () =
  List.iter
    (fun p ->
      Alcotest.(check bool) "non-empty description" true
        (String.length (Payload.describe p) > 0))
    samples

let suite =
  [
    Alcotest.test_case "sizes positive" `Quick test_sizes_positive;
    Alcotest.test_case "data size grows with payload" `Quick
      test_data_size_grows_with_tuples;
    Alcotest.test_case "request size tracks rule id" `Quick
      test_request_size_tracks_rule_id;
    Alcotest.test_case "request size tracks constraints" `Quick
      test_request_size_tracks_constraints;
    Alcotest.test_case "rules-file size tracks text" `Quick test_rules_file_size_tracks_text;
    Alcotest.test_case "termination accounting classification" `Quick
      test_update_protocol_classification;
    Alcotest.test_case "describe" `Quick test_describe_nonempty;
  ]
