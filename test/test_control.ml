(* Unit tests of the control-plane handlers: discovery probe routing,
   rules-file reconfiguration, and the DBM dispatcher — driven through
   stub runtimes that record outgoing messages. *)

open Helpers
module Node = Codb_core.Node
module Runtime = Codb_core.Runtime
module Options = Codb_core.Options
module Payload = Codb_core.Payload
module Discovery = Codb_core.Discovery
module Reconfigure = Codb_core.Reconfigure
module Dbm = Codb_core.Dbm
module Peer_id = Codb_net.Peer_id
module Message = Codb_net.Message

type sent = { dst : string; payload : Payload.t }

let make_runtime ?(neighbours = []) decl_text name =
  let cfg = parse_config decl_text in
  let decl = Option.get (Config.node cfg name) in
  let node = Node.create decl in
  Node.set_rules node
    ~outgoing:(Config.rules_importing_at cfg name)
    ~incoming:(Config.rules_sourced_at cfg name);
  let outbox = ref [] in
  let connected = ref [] in
  let disconnected = ref [] in
  let rt =
    {
      Runtime.node;
      opts = Options.default;
      send =
        (fun ~dst payload ->
          outbox := { dst = Peer_id.to_string dst; payload } :: !outbox;
          true);
      now = (fun () -> 0.0);
      schedule = (fun ~delay:_ action -> action ());
      connect = (fun p -> connected := Peer_id.to_string p :: !connected);
      disconnect = (fun p -> disconnected := Peer_id.to_string p :: !disconnected);
      neighbours = (fun () -> List.map Peer_id.of_string neighbours);
    }
  in
  (rt, node, outbox, connected, disconnected)

let drain outbox =
  let m = List.rev !outbox in
  outbox := [];
  m

let lonely = "node me { relation r(x: int); }"

(* --- discovery ----------------------------------------------------- *)

let test_probe_answers_and_forwards () =
  let rt, _, outbox, _, _ = make_runtime ~neighbours:[ "a"; "b" ] lonely "me" in
  Discovery.handle rt ~src:(Peer_id.of_string "a")
    (Payload.Discovery_probe
       { probe_id = "p1"; ttl = 1; path = [ Peer_id.of_string "origin"; Peer_id.of_string "a" ] });
  let messages = drain outbox in
  (* one reply routed back along the reverse path (to a), probes
     forwarded to neighbours not on the path (b only) *)
  let replies =
    List.filter (fun m -> match m.payload with Payload.Discovery_reply _ -> true | _ -> false) messages
  in
  let probes =
    List.filter (fun m -> match m.payload with Payload.Discovery_probe _ -> true | _ -> false) messages
  in
  (match replies with
  | [ r ] -> Alcotest.(check string) "reply to previous hop" "a" r.dst
  | _ -> Alcotest.fail "expected one reply");
  match probes with
  | [ p ] -> (
      Alcotest.(check string) "forwarded to b" "b" p.dst;
      match p.payload with
      | Payload.Discovery_probe { ttl; path; _ } ->
          Alcotest.(check int) "ttl decremented" 0 ttl;
          Alcotest.(check int) "path extended" 3 (List.length path)
      | _ -> assert false)
  | _ -> Alcotest.fail "expected one forwarded probe"

let test_probe_ttl_zero_no_forward () =
  let rt, _, outbox, _, _ = make_runtime ~neighbours:[ "a"; "b" ] lonely "me" in
  Discovery.handle rt ~src:(Peer_id.of_string "a")
    (Payload.Discovery_probe { probe_id = "p1"; ttl = 0; path = [ Peer_id.of_string "a" ] });
  let probes =
    List.filter
      (fun m -> match m.payload with Payload.Discovery_probe _ -> true | _ -> false)
      (drain outbox)
  in
  Alcotest.(check int) "no forwarding at ttl 0" 0 (List.length probes)

let test_probe_deduplicated () =
  let rt, _, outbox, _, _ = make_runtime ~neighbours:[ "a" ] lonely "me" in
  let probe =
    Payload.Discovery_probe { probe_id = "p1"; ttl = 3; path = [ Peer_id.of_string "a" ] }
  in
  Discovery.handle rt ~src:(Peer_id.of_string "a") probe;
  let first = List.length (drain outbox) in
  Discovery.handle rt ~src:(Peer_id.of_string "a") probe;
  Alcotest.(check bool) "first handled" true (first > 0);
  Alcotest.(check int) "second ignored" 0 (List.length (drain outbox))

let test_reply_routing () =
  let rt, node, outbox, _, _ = make_runtime lonely "me" in
  (* a reply still in transit: forward to the next hop with the tail *)
  Discovery.handle rt ~src:(Peer_id.of_string "x")
    (Payload.Discovery_reply
       { probe_id = "p1"; path = [ Peer_id.of_string "next"; Peer_id.of_string "origin" ];
         peers = [ Peer_id.of_string "far" ] });
  (match drain outbox with
  | [ { dst = "next"; payload = Payload.Discovery_reply { path; _ } } ] ->
      Alcotest.(check int) "tail forwarded" 1 (List.length path)
  | _ -> Alcotest.fail "expected one forwarded reply");
  (* a reply that reached its origin: absorbed into known peers *)
  Discovery.handle rt ~src:(Peer_id.of_string "x")
    (Payload.Discovery_reply { probe_id = "p1"; path = []; peers = [ Peer_id.of_string "far" ] });
  Alcotest.(check bool) "absorbed" true
    (Peer_id.Set.mem (Peer_id.of_string "far") node.Node.known_peers)

(* --- reconfiguration ----------------------------------------------- *)

let two_node_rules version_rule =
  Printf.sprintf
    {|
node me { relation r(x: int); }
node other { relation r(x: int); }
%s
|}
    version_rule

let test_reconfigure_installs_rules_and_pipes () =
  let rt, node, _, connected, disconnected =
    make_runtime (two_node_rules "") "me"
  in
  let cfg =
    parse_config (two_node_rules "rule imp at me: r(x) <- other: r(x);")
  in
  Alcotest.(check bool) "applied" true (Reconfigure.apply rt ~version:1 cfg);
  Alcotest.(check int) "one outgoing" 1 (List.length node.Node.outgoing);
  Alcotest.(check (list string)) "pipe opened" [ "other" ] !connected;
  Alcotest.(check (list string)) "nothing closed" [] !disconnected;
  Alcotest.(check int) "version bumped" 1 node.Node.rules_version

let test_reconfigure_version_gating () =
  let rt, node, _, _, _ = make_runtime (two_node_rules "") "me" in
  let cfg = parse_config (two_node_rules "rule imp at me: r(x) <- other: r(x);") in
  Alcotest.(check bool) "v2 applied" true (Reconfigure.apply rt ~version:2 cfg);
  Alcotest.(check bool) "v1 rejected" false
    (Reconfigure.apply rt ~version:1 Config.empty);
  Alcotest.(check bool) "v2 again rejected" false
    (Reconfigure.apply rt ~version:2 Config.empty);
  Alcotest.(check int) "rules kept" 1 (List.length node.Node.outgoing)

let test_reconfigure_drops_obsolete_pipes () =
  let rt, node, _, _, disconnected =
    make_runtime (two_node_rules "rule imp at me: r(x) <- other: r(x);") "me"
  in
  Alcotest.(check int) "starts with a rule" 1 (List.length node.Node.outgoing);
  Alcotest.(check bool) "empty rules applied" true
    (Reconfigure.apply rt ~version:1 (parse_config (two_node_rules "")));
  Alcotest.(check int) "rules dropped" 0 (List.length node.Node.outgoing);
  Alcotest.(check (list string)) "pipe closed" [ "other" ] !disconnected

let test_reconfigure_rejects_bad_text () =
  let rt, _, _, _, _ = make_runtime (two_node_rules "") "me" in
  match Reconfigure.handle_text rt ~version:1 "not a config {{{" with
  | Error _ -> ()
  | Ok () -> Alcotest.fail "garbage accepted"

(* --- DBM dispatch --------------------------------------------------- *)

let message payload =
  {
    Message.msg_id = 1;
    src = Peer_id.of_string "sp";
    dst = Peer_id.of_string "me";
    sent_at = 0.0;
    size = Payload.size payload;
    payload;
  }

let test_dbm_stats_request () =
  let rt, _, outbox, _, _ = make_runtime lonely "me" in
  Dbm.handle rt (message Payload.Stats_request);
  match drain outbox with
  | [ { dst = "sp"; payload = Payload.Stats_response { stats } } ] ->
      Alcotest.(check string) "snapshot owner" "me"
        (Peer_id.to_string stats.Codb_core.Stats.snap_node)
  | _ -> Alcotest.fail "expected one stats response"

let test_dbm_start_update () =
  let rt, node, _, _, _ = make_runtime lonely "me" in
  Dbm.handle rt (message Payload.Start_update);
  (* the lonely node's update starts and immediately terminates *)
  Alcotest.(check int) "one update state" 1 (Hashtbl.length node.Node.updates);
  let snap = Codb_core.Stats.snapshot node.Node.stats in
  match snap.Codb_core.Stats.snap_updates with
  | [ u ] -> Alcotest.(check bool) "finished" true (u.Codb_core.Stats.usn_finished <> None)
  | _ -> Alcotest.fail "expected one update"

let suite =
  [
    Alcotest.test_case "probes answer and forward" `Quick test_probe_answers_and_forwards;
    Alcotest.test_case "ttl zero stops forwarding" `Quick test_probe_ttl_zero_no_forward;
    Alcotest.test_case "probes deduplicated" `Quick test_probe_deduplicated;
    Alcotest.test_case "reply routing" `Quick test_reply_routing;
    Alcotest.test_case "rules install and pipes open" `Quick
      test_reconfigure_installs_rules_and_pipes;
    Alcotest.test_case "version gating" `Quick test_reconfigure_version_gating;
    Alcotest.test_case "obsolete pipes closed" `Quick test_reconfigure_drops_obsolete_pipes;
    Alcotest.test_case "bad rules file rejected" `Quick test_reconfigure_rejects_bad_text;
    Alcotest.test_case "DBM answers stats requests" `Quick test_dbm_stats_request;
    Alcotest.test_case "DBM starts updates" `Quick test_dbm_start_update;
  ]
