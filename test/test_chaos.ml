(* Loss-tolerant protocols under deterministic fault injection: seeded
   reproducibility, retransmission restoring the fault-free fix-point,
   duplicate suppression, bounded-partial query answers instead of
   hangs, and node crash/restart. *)

open Helpers
module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Node = Codb_core.Node
module Network = Codb_net.Network

let chaos_opts ?(seed = 42) ?(drop = 0.0) ?(dup = 0.0) ?(jitter = 0.0)
    ?(budget = max_int) ?(flaps = []) ?(crashes = []) ?(ack = 0.05) ?(retries = 4)
    ?(base = Options.default) () =
  {
    base with
    Options.fault_seed = seed;
    drop_prob = drop;
    dup_prob = dup;
    jitter;
    drop_budget = budget;
    flap_plan = flaps;
    crash_plan = crashes;
    ack_timeout = ack;
    max_retries = retries;
  }

let chain ?(seed = 5) n = Topology.generate ~seed Topology.Chain ~n

let stores_equal a b =
  List.for_all
    (fun name ->
      Database.equal_contents (System.node a name).Node.store
        (System.node b name).Node.store)
    (System.node_names a)

let chaos sys = Report.chaos_report (System.snapshots sys)

let run_update_report sys ~initiator =
  let uid = System.run_update sys ~initiator in
  Option.get (Report.update_report (System.snapshots sys) uid)

(* --- determinism ---------------------------------------------------- *)

let test_same_seed_same_run () =
  let opts = chaos_opts ~seed:9 ~drop:0.3 ~dup:0.1 ~jitter:0.003 ~retries:6 () in
  let run () =
    let sys = System.build_exn ~opts (chain 5) in
    let _ = System.run_update sys ~initiator:"n0" in
    (sys, Network.counters (System.net sys))
  in
  let sys_a, c_a = run () in
  let sys_b, c_b = run () in
  Alcotest.(check bool) "identical stores" true (stores_equal sys_a sys_b);
  Alcotest.(check int) "same injected drops" c_a.Network.injected_drops
    c_b.Network.injected_drops;
  Alcotest.(check int) "same injected dups" c_a.Network.injected_dups
    c_b.Network.injected_dups;
  Alcotest.(check int) "same deliveries" c_a.Network.delivered c_b.Network.delivered;
  let ch_a = Report.chaos_report (System.snapshots sys_a) in
  let ch_b = Report.chaos_report (System.snapshots sys_b) in
  Alcotest.(check int) "same retransmits" ch_a.Report.chr_retransmits
    ch_b.Report.chr_retransmits

(* --- retransmission ------------------------------------------------- *)

let test_retries_restore_fixpoint () =
  let baseline = System.build_exn (chain 6) in
  let _ = System.run_update baseline ~initiator:"n0" in
  let opts = chaos_opts ~seed:3 ~drop:0.25 ~dup:0.05 ~jitter:0.002 ~retries:8 () in
  let sys = System.build_exn ~opts (chain 6) in
  let report = run_update_report sys ~initiator:"n0" in
  Alcotest.(check bool) "all nodes finished" true report.Report.ur_all_finished;
  Alcotest.(check bool) "fix-point equals the fault-free run" true
    (stores_equal baseline sys);
  let ch = chaos sys in
  Alcotest.(check bool) "loss actually happened" true
    ((Network.counters (System.net sys)).Network.injected_drops > 0);
  Alcotest.(check bool) "retransmissions happened" true (ch.Report.chr_retransmits > 0);
  Alcotest.(check int) "nothing was abandoned" 0 ch.Report.chr_give_ups

let test_dup_suppression_keeps_stores_correct () =
  let baseline = System.build_exn (chain 4) in
  let _ = System.run_update baseline ~initiator:"n0" in
  let opts = chaos_opts ~seed:1 ~dup:0.8 ~retries:2 () in
  let sys = System.build_exn ~opts (chain 4) in
  let _ = System.run_update sys ~initiator:"n0" in
  Alcotest.(check bool) "stores unharmed by duplicates" true (stores_equal baseline sys);
  Alcotest.(check bool) "duplicates were suppressed" true
    ((chaos sys).Report.chr_dup_suppressed > 0)

let test_no_retries_under_loss_terminates () =
  (* everything dropped, no retransmission: the update must still come
     back (give-ups compensate the engagement deficits) instead of
     spinning the simulator forever *)
  let opts = chaos_opts ~seed:2 ~drop:1.0 ~retries:0 () in
  let sys = System.build_exn ~opts (chain 4) in
  let report = run_update_report sys ~initiator:"n0" in
  Alcotest.(check bool) "initiator finished" true (report.Report.ur_duration >= 0.0);
  let ch = chaos sys in
  Alcotest.(check bool) "give-ups recorded" true (ch.Report.chr_give_ups > 0);
  (* nothing was delivered, so the fix-point is the local store only *)
  Alcotest.(check int) "no deliveries" 0
    (Network.counters (System.net sys)).Network.delivered

(* --- partial answers ------------------------------------------------ *)

let q_data = "ans(k, v) <- data(k, v)"

let test_query_partial_answer_under_total_loss () =
  let opts = chaos_opts ~seed:4 ~drop:1.0 ~retries:0 () in
  let sys = System.build_exn ~opts (chain 3) in
  let outcome = System.run_query sys ~at:"n0" (parse_query q_data) in
  Alcotest.(check bool) "incomplete" false outcome.System.qo_complete;
  Alcotest.(check bool) "local answers still served" true
    (List.length outcome.System.qo_answers > 0);
  let ch = chaos sys in
  Alcotest.(check bool) "sub-request timeouts recorded" true
    (ch.Report.chr_query_timeouts > 0);
  Alcotest.(check bool) "partial answer recorded" true
    (ch.Report.chr_partial_answers > 0)

let test_partial_answers_never_cached () =
  let opts =
    chaos_opts ~seed:4 ~drop:1.0 ~retries:0 ~base:Options.with_cache ()
  in
  let sys = System.build_exn ~opts (chain 3) in
  let first = System.run_query sys ~at:"n0" (parse_query q_data) in
  let second = System.run_query sys ~at:"n0" (parse_query q_data) in
  Alcotest.(check bool) "first incomplete" false first.System.qo_complete;
  (* a cached partial answer would come back marked complete *)
  Alcotest.(check bool) "second not served from cache" false second.System.qo_complete

let test_query_complete_under_loss_with_retries () =
  let baseline = System.build_exn (chain 4) in
  let expected = (System.run_query baseline ~at:"n0" (parse_query q_data)).System.qo_answers in
  let opts = chaos_opts ~seed:6 ~drop:0.2 ~dup:0.05 ~jitter:0.002 ~retries:8 () in
  let sys = System.build_exn ~opts (chain 4) in
  let outcome = System.run_query sys ~at:"n0" (parse_query q_data) in
  Alcotest.(check bool) "complete" true outcome.System.qo_complete;
  check_tuples "same answers as the fault-free run" expected outcome.System.qo_answers

(* --- crash / restart ------------------------------------------------ *)

let test_crash_without_restart_terminates () =
  let opts = chaos_opts ~seed:8 ~crashes:[ ("n2", 0.0005, None) ] ~retries:2 () in
  let sys = System.build_exn ~opts (chain 4) in
  let report = run_update_report sys ~initiator:"n0" in
  (* the dead child never answers: the update must end anyway, either
     through transport give-ups or the stall watchdog *)
  Alcotest.(check bool) "update came back" true (report.Report.ur_duration >= 0.0);
  Alcotest.(check int) "crash counted" 1
    (Network.counters (System.net sys)).Network.crashes;
  let outcome = System.run_query sys ~at:"n0" (parse_query q_data) in
  Alcotest.(check bool) "later queries flag the dead subtree" false
    outcome.System.qo_complete

let test_crash_restart_recovers () =
  let opts = chaos_opts ~seed:8 ~crashes:[ ("n1", 0.0005, Some 0.2) ] ~retries:6 () in
  let sys = System.build_exn ~opts (chain 3) in
  let _ = System.run_update sys ~initiator:"n0" in
  Alcotest.(check int) "restart counted" 1
    (Network.counters (System.net sys)).Network.restarts;
  (* after the restart the node is reachable again: a second update
     completes the fix-point as if nothing had happened *)
  let baseline = System.build_exn (chain 3) in
  let _ = System.run_update baseline ~initiator:"n0" in
  let report = run_update_report sys ~initiator:"n0" in
  Alcotest.(check bool) "second update finished everywhere" true
    report.Report.ur_all_finished;
  Alcotest.(check bool) "fix-point recovered" true (stores_equal baseline sys)

let test_restart_bumps_cache_epoch () =
  let sys = System.build_exn ~opts:Options.with_cache (chain 3) in
  (* warm the cache, then crash+restart n0, then ask again: the restart
     must have cleared the cache, so the second answer is recomputed *)
  let first = System.run_query sys ~at:"n0" (parse_query q_data) in
  System.crash_node sys "n0";
  System.restart_node sys "n0";
  let second = System.run_query sys ~at:"n0" (parse_query q_data) in
  Alcotest.(check bool) "both complete" true
    (first.System.qo_complete && second.System.qo_complete);
  check_tuples "same answers after the restart" first.System.qo_answers
    second.System.qo_answers;
  let hits =
    List.fold_left
      (fun acc row -> acc + row.Report.cr_hits)
      0
      (Report.cache_report (System.snapshots sys))
  in
  Alcotest.(check int) "no hit survived the crash" 0 hits

(* --- link flaps ----------------------------------------------------- *)

let test_flap_mid_update_recovers_with_retries () =
  let baseline = System.build_exn (chain 3) in
  let _ = System.run_update baseline ~initiator:"n0" in
  let opts =
    chaos_opts ~seed:10 ~flaps:[ ("n0", "n1", 0.001, 0.3) ] ~retries:8 ()
  in
  let sys = System.build_exn ~opts (chain 3) in
  let report = run_update_report sys ~initiator:"n0" in
  Alcotest.(check bool) "finished despite the flap" true report.Report.ur_all_finished;
  Alcotest.(check bool) "fix-point intact" true (stores_equal baseline sys);
  Alcotest.(check int) "flap executed" 1
    (Network.counters (System.net sys)).Network.injected_flaps

let suite =
  [
    Alcotest.test_case "same seed, same run" `Quick test_same_seed_same_run;
    Alcotest.test_case "retries restore the fix-point" `Quick
      test_retries_restore_fixpoint;
    Alcotest.test_case "duplicate suppression" `Quick
      test_dup_suppression_keeps_stores_correct;
    Alcotest.test_case "no retries under loss still terminates" `Quick
      test_no_retries_under_loss_terminates;
    Alcotest.test_case "partial answer under total loss" `Quick
      test_query_partial_answer_under_total_loss;
    Alcotest.test_case "partial answers never cached" `Quick
      test_partial_answers_never_cached;
    Alcotest.test_case "query complete under loss with retries" `Quick
      test_query_complete_under_loss_with_retries;
    Alcotest.test_case "crash without restart terminates" `Quick
      test_crash_without_restart_terminates;
    Alcotest.test_case "crash and restart recovers" `Quick test_crash_restart_recovers;
    Alcotest.test_case "restart clears the cache" `Quick test_restart_bumps_cache_epoch;
    Alcotest.test_case "flap mid-update recovers" `Quick
      test_flap_mid_update_recovers_with_retries;
  ]
