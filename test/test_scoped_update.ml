open Helpers
module System = Codb_core.System
module Topology = Codb_core.Topology
module Report = Codb_core.Report
module Node = Codb_core.Node

let data_q = parse_query "o(x, y) <- data(x, y)"

let small = { Topology.default_params with Topology.tuples_per_node = 10 }

let test_chain_scoped_equals_global_at_initiator () =
  let mk () = Topology.generate ~params:small ~seed:51 Topology.Chain ~n:5 in
  let sys_g = System.build_exn (mk ()) in
  let _ = System.run_update sys_g ~initiator:"n0" in
  let sys_s = System.build_exn (mk ()) in
  let _ = System.run_scoped_update sys_s ~at:"n0" data_q in
  check_tuples "same certain contents at n0"
    (System.local_answers sys_g ~at:"n0" data_q)
    (System.local_answers sys_s ~at:"n0" data_q)

let test_scoped_touches_only_relevant_nodes () =
  (* star-out: every leaf imports from the centre; a scoped update at
     one leaf must leave the other leaves untouched *)
  let sys = System.build_exn (Topology.generate ~params:small ~seed:52 Topology.Star_out ~n:5) in
  let count at = List.length (System.local_answers sys ~at data_q) in
  let n2_before = count "n2" and n3_before = count "n3" in
  let uid = System.run_scoped_update sys ~at:"n1" data_q in
  Alcotest.(check bool) "n1 grew" true (count "n1" > 10);
  Alcotest.(check int) "n2 untouched" n2_before (count "n2");
  Alcotest.(check int) "n3 untouched" n3_before (count "n3");
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "finished" true report.Report.ur_all_finished;
  (* only the n1<-n0 link carried data *)
  Alcotest.(check int) "one rule in traffic" 1 (List.length report.Report.ur_per_rule)

let test_scoped_cheaper_than_global () =
  let mk () = Topology.generate ~params:small ~seed:53 Topology.Star_out ~n:8 in
  let sys_g = System.build_exn (mk ()) in
  let ug = System.run_update sys_g ~initiator:"n1" in
  let rg = Option.get (Report.update_report (System.snapshots sys_g) ug) in
  let sys_s = System.build_exn (mk ()) in
  let us = System.run_scoped_update sys_s ~at:"n1" data_q in
  let rs = Option.get (Report.update_report (System.snapshots sys_s) us) in
  Alcotest.(check bool) "fewer data messages" true
    (rs.Report.ur_data_msgs < rg.Report.ur_data_msgs);
  Alcotest.(check bool) "fewer bytes" true (rs.Report.ur_bytes < rg.Report.ur_bytes)

let test_scoped_respects_relations () =
  (* m imports relation a from x and relation b from y; a query over a
     must not fetch b *)
  let cfg =
    parse_config
      {|
node m { relation a(k: int); relation b(k: int); }
node x { relation a(k: int); fact a(1); fact a(2); }
node y { relation b(k: int); fact b(7); }
rule ra at m: a(k) <- x: a(k);
rule rb at m: b(k) <- y: b(k);
|}
  in
  let sys = System.build_exn cfg in
  let _ = System.run_scoped_update sys ~at:"m" (parse_query "q(k) <- a(k)") in
  check_tuples "a fetched" [ tup [ i 1 ]; tup [ i 2 ] ]
    (System.local_answers sys ~at:"m" (parse_query "q(k) <- a(k)"));
  check_tuples "b not fetched" []
    (System.local_answers sys ~at:"m" (parse_query "q(k) <- b(k)"))

let test_scoped_transitive () =
  let cfg =
    parse_config
      {|
node m { relation out(x: int); }
node c { relation mid(x: int); fact mid(100); }
node d { relation base(x: int); fact base(1); fact base(2); }
rule cm at m: out(x) <- c: mid(x);
rule dc at c: mid(x) <- d: base(x);
|}
  in
  let sys = System.build_exn cfg in
  let _ = System.run_scoped_update sys ~at:"m" (parse_query "q(x) <- out(x)") in
  check_tuples "transitively fetched"
    [ tup [ i 1 ]; tup [ i 2 ]; tup [ i 100 ] ]
    (System.local_answers sys ~at:"m" (parse_query "q(x) <- out(x)"))

let test_scoped_cycle_fixpoint () =
  let sys = System.build_exn (Topology.generate ~params:small ~seed:54 Topology.Ring ~n:4) in
  let uid = System.run_scoped_update sys ~at:"n0" data_q in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "terminated" true report.Report.ur_all_finished;
  (* n0 converges to the union of all four nodes' data *)
  let n0 = List.length (System.local_answers sys ~at:"n0" data_q) in
  Alcotest.(check bool) "n0 has the union" true (n0 > 30)

let test_scoped_idempotent () =
  let sys = System.build_exn (Topology.generate ~params:small ~seed:55 Topology.Chain ~n:4) in
  let _ = System.run_scoped_update sys ~at:"n0" data_q in
  let before = System.total_tuples sys in
  let u2 = System.run_scoped_update sys ~at:"n0" data_q in
  Alcotest.(check int) "no growth" before (System.total_tuples sys);
  let r2 = Option.get (Report.update_report (System.snapshots sys) u2) in
  Alcotest.(check int) "nothing new" 0 r2.Report.ur_new_tuples

let test_scoped_no_relevant_rules () =
  let cfg = parse_config "node a { relation r(x: int); fact r(1); }" in
  let sys = System.build_exn cfg in
  let uid = System.run_scoped_update sys ~at:"a" (parse_query "q(x) <- r(x)") in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "trivially finished" true report.Report.ur_all_finished;
  Alcotest.(check int) "no traffic" 0 report.Report.ur_data_msgs

let test_scoped_inconsistent_source_quarantined () =
  let cfg =
    parse_config
      {|
node sink { relation r(x: int); }
node bad { relation r(x: int); fact r(13); constraint r(13); }
rule sb at sink: r(x) <- bad: r(x);
|}
  in
  let sys = System.build_exn cfg in
  let uid = System.run_scoped_update sys ~at:"sink" (parse_query "q(x) <- r(x)") in
  check_tuples "nothing imported" []
    (System.local_answers sys ~at:"sink" (parse_query "q(x) <- r(x)"));
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "still terminates" true report.Report.ur_all_finished

let test_scoped_unknown_rule_releases_requester () =
  (* simulate version skew: the source dropped the rule before the
     request arrives; the requester must not hang *)
  let cfg =
    parse_config
      {|
node sink { relation r(x: int); }
node src { relation r(x: int); fact r(1); }
rule sb at sink: r(x) <- src: r(x);
|}
  in
  let sys = System.build_exn cfg in
  let src = System.node sys "src" in
  Node.set_rules src ~outgoing:[] ~incoming:[];
  let uid = System.run_scoped_update sys ~at:"sink" (parse_query "q(x) <- r(x)") in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "terminates despite skew" true report.Report.ur_all_finished;
  check_tuples "no data" []
    (System.local_answers sys ~at:"sink" (parse_query "q(x) <- r(x)"))

let suite =
  [
    Alcotest.test_case "chain: scoped = global at the initiator" `Quick
      test_chain_scoped_equals_global_at_initiator;
    Alcotest.test_case "irrelevant nodes untouched" `Quick
      test_scoped_touches_only_relevant_nodes;
    Alcotest.test_case "cheaper than a global update" `Quick
      test_scoped_cheaper_than_global;
    Alcotest.test_case "restricted to the query's relations" `Quick
      test_scoped_respects_relations;
    Alcotest.test_case "transitive dependencies followed" `Quick test_scoped_transitive;
    Alcotest.test_case "cycles reach the fix-point" `Quick test_scoped_cycle_fixpoint;
    Alcotest.test_case "idempotent" `Quick test_scoped_idempotent;
    Alcotest.test_case "no relevant rules: trivial" `Quick test_scoped_no_relevant_rules;
    Alcotest.test_case "inconsistent source quarantined" `Quick
      test_scoped_inconsistent_source_quarantined;
    Alcotest.test_case "version skew does not hang" `Quick
      test_scoped_unknown_rule_releases_requester;
  ]
