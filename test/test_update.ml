open Helpers
module System = Codb_core.System
module Topology = Codb_core.Topology
module Report = Codb_core.Report
module Stats = Codb_core.Stats
module Options = Codb_core.Options
module Node = Codb_core.Node
module Deps = Codb_core.Deps

(* A hand-written 3-node chain with known data, so expected results
   can be written down exactly.
     n2 holds person(name, dept); n1 imports person from n2 into its
     own person relation; n0 imports the names into who(name). *)
let chain_cfg () =
  parse_config
    {|
node n0 { relation who(name: string); }
node n1 { relation person(name: string, dept: string);
          fact person("carol", "bio"); }
node n2 { relation person(name: string, dept: string);
          fact person("alice", "cs");
          fact person("bob", "cs"); }
rule r10 at n1: person(x, d) <- n2: person(x, d);
rule r01 at n0: who(x) <- n1: person(x, d);
|}

let run_chain () =
  let sys = System.build_exn (chain_cfg ()) in
  let uid = System.run_update sys ~initiator:"n0" in
  (sys, uid)

let names db_tuples = List.map (fun t -> t.(0)) db_tuples

let test_chain_materialises () =
  let sys, _ = run_chain () in
  (* n1 now has carol + alice + bob; n0 has all three names *)
  let n1_person = System.local_answers sys ~at:"n1" (parse_query "p(x, d) <- person(x, d)") in
  Alcotest.(check int) "n1 person count" 3 (List.length n1_person);
  let n0_who = System.local_answers sys ~at:"n0" (parse_query "w(x) <- who(x)") in
  check_tuples "n0 names"
    [ tup [ s "alice" ]; tup [ s "bob" ]; tup [ s "carol" ] ]
    n0_who

let test_chain_terminates_and_closes () =
  let sys, uid = run_chain () in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "all nodes finished" true report.Report.ur_all_finished;
  Alcotest.(check int) "three participants" 3 report.Report.ur_nodes;
  Alcotest.(check int) "longest path 2" 2 report.Report.ur_longest_path

let test_chain_initiator_elsewhere () =
  (* starting the update at the far end must reach everyone too *)
  let sys = System.build_exn (chain_cfg ()) in
  let _ = System.run_update sys ~initiator:"n2" in
  let n0_who = System.local_answers sys ~at:"n0" (parse_query "w(x) <- who(x)") in
  Alcotest.(check int) "n0 has 3 names" 3 (List.length n0_who)

let test_update_idempotent () =
  let sys, _ = run_chain () in
  let total_before = System.total_tuples sys in
  let uid2 = System.run_update sys ~initiator:"n0" in
  Alcotest.(check int) "no new tuples" total_before (System.total_tuples sys);
  let report = Option.get (Report.update_report (System.snapshots sys) uid2) in
  Alcotest.(check int) "second update moves nothing new" 0 report.Report.ur_new_tuples

let test_existential_head_creates_nulls () =
  let cfg =
    parse_config
      {|
node a { relation r(x: int, y: int); }
node b { relation q(x: int); fact q(1); fact q(2); }
rule e at a: r(x, z) <- b: q(x);
|}
  in
  let sys = System.build_exn cfg in
  let _ = System.run_update sys ~initiator:"a" in
  let r = System.local_answers sys ~at:"a" (parse_query "p(x, y) <- r(x, y)") in
  Alcotest.(check int) "two tuples" 2 (List.length r);
  Alcotest.(check bool) "all carry nulls" true (List.for_all Tuple.has_null r);
  Alcotest.(check int) "no certain answers" 0 (List.length (Eval.certain r))

let test_existential_cycle_terminates () =
  (* two nodes exchanging an existential relation: without null-aware
     subsumption this would loop forever *)
  let cfg =
    parse_config
      {|
node a { relation r(x: int, y: int); fact r(1, 10); }
node b { relation r(x: int, y: int); fact r(2, 20); }
rule ab at a: r(x, z) <- b: r(x, y);
rule ba at b: r(x, z) <- a: r(x, y);
|}
  in
  let sys = System.build_exn cfg in
  let uid = System.run_update sys ~initiator:"a" in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "terminated" true report.Report.ur_all_finished;
  (* a ends with its own (1,10) plus (2, null) *)
  let a_r = System.local_answers sys ~at:"a" (parse_query "p(x, y) <- r(x, y)") in
  check_tuples "a keys" [ tup [ i 1 ]; tup [ i 2 ] ]
    (List.map (fun t -> tup [ t.(0) ]) a_r)

let test_copy_cycle_reaches_fixpoint () =
  (* 3-ring of plain copies: everyone ends with the union *)
  let cfg =
    parse_config
      {|
node a { relation r(x: int); fact r(1); }
node b { relation r(x: int); fact r(2); }
node c { relation r(x: int); fact r(3); }
rule ab at a: r(x) <- b: r(x);
rule bc at b: r(x) <- c: r(x);
rule ca at c: r(x) <- a: r(x);
|}
  in
  let sys = System.build_exn cfg in
  let _ = System.run_update sys ~initiator:"a" in
  let expected = [ tup [ i 1 ]; tup [ i 2 ]; tup [ i 3 ] ] in
  List.iter
    (fun node ->
      check_tuples (node ^ " has the union") expected
        (System.local_answers sys ~at:node (parse_query "p(x) <- r(x)")))
    [ "a"; "b"; "c" ]

let test_join_rule_across_relations () =
  let cfg =
    parse_config
      {|
node hr { relation emp(name: string, title: string); }
node src {
  relation person(name: string, dept: string);
  relation job(dept: string, title: string);
  fact person("alice", "cs"); fact person("bob", "math");
  fact job("cs", "prof");    fact job("math", "lect");
}
rule j at hr: emp(n, t) <- src: person(n, d), job(d, t), d != "math";
|}
  in
  let sys = System.build_exn cfg in
  let _ = System.run_update sys ~initiator:"hr" in
  check_tuples "join with comparison"
    [ tup [ s "alice"; s "prof" ] ]
    (System.local_answers sys ~at:"hr" (parse_query "e(n, t) <- emp(n, t)"))

let test_transitive_join_dependency () =
  (* c's incoming link reads the relation that c's outgoing link
     writes: data from d must flow through c to m *)
  let cfg =
    parse_config
      {|
node m { relation out(x: int); }
node c { relation mid(x: int); fact mid(100); }
node d { relation base(x: int); fact base(1); fact base(2); }
rule cm at m: out(x) <- c: mid(x);
rule dc at c: mid(x) <- d: base(x);
|}
  in
  let sys = System.build_exn cfg in
  let _ = System.run_update sys ~initiator:"m" in
  check_tuples "m sees base through mid"
    [ tup [ i 1 ]; tup [ i 2 ]; tup [ i 100 ] ]
    (System.local_answers sys ~at:"m" (parse_query "o(x) <- out(x)"))

let test_mediator_node_forwards () =
  (* the middle node is a mediator: it has no LDB of its own but its
     Wrapper still materialises and forwards imported data *)
  let cfg =
    parse_config
      {|
node sink { relation r(x: int); }
node mid mediator { relation r(x: int); }
node origin { relation r(x: int); fact r(7); fact r(8); }
rule a at sink: r(x) <- mid: r(x);
rule b at mid: r(x) <- origin: r(x);
|}
  in
  let sys = System.build_exn cfg in
  let _ = System.run_update sys ~initiator:"sink" in
  check_tuples "through the mediator" [ tup [ i 7 ]; tup [ i 8 ] ]
    (System.local_answers sys ~at:"sink" (parse_query "o(x) <- r(x)"))

let test_inconsistent_node_does_not_export () =
  let cfg =
    parse_config
      {|
node sink { relation r(x: int); }
node bad { relation r(x: int); fact r(13); fact r(1); constraint r(13); }
node good { relation r(x: int); fact r(2); }
rule sb at sink: r(x) <- bad: r(x);
rule sg at sink: r(x) <- good: r(x);
|}
  in
  let sys = System.build_exn cfg in
  let _ = System.run_update sys ~initiator:"sink" in
  (* bad violates its constraint (it has r(13)): none of its data may
     propagate, but good's does *)
  check_tuples "only good's data" [ tup [ i 2 ] ]
    (System.local_answers sys ~at:"sink" (parse_query "o(x) <- r(x)"));
  let snap =
    List.find
      (fun s -> Codb_net.Peer_id.to_string s.Stats.snap_node = "bad")
      (System.snapshots sys)
  in
  Alcotest.(check bool) "flagged inconsistent" true snap.Stats.snap_inconsistent

let test_dedup_suppresses_duplicates () =
  (* diamond: the same data reaches the sink over two paths; the
     second copy must be suppressed *)
  let cfg =
    parse_config
      {|
node sink { relation r(x: int); }
node l { relation r(x: int); }
node rr { relation r(x: int); }
node origin { relation r(x: int); fact r(1); fact r(2); fact r(3); }
rule sl at sink: r(x) <- l: r(x);
rule sr at sink: r(x) <- rr: r(x);
rule lo at l: r(x) <- origin: r(x);
rule ro at rr: r(x) <- origin: r(x);
|}
  in
  let sys = System.build_exn cfg in
  let uid = System.run_update sys ~initiator:"sink" in
  check_tuples "sink has each tuple once"
    [ tup [ i 1 ]; tup [ i 2 ]; tup [ i 3 ] ]
    (System.local_answers sys ~at:"sink" (parse_query "o(x) <- r(x)"));
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "duplicates were suppressed" true
    (report.Report.ur_dup_suppressed >= 3)

let test_sent_cache_prevents_resend () =
  (* without the sent cache the same tuples would be re-sent when the
     update request arrives over a second path *)
  let cfg = Topology.generate ~seed:7 Topology.Clique ~n:3 in
  let sys = System.build_exn cfg in
  let uid = System.run_update sys ~initiator:"n0" in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "terminates" true report.Report.ur_all_finished;
  (* every pair of nodes exchanges each tuple at most twice (once per
     direction), so data messages are bounded *)
  Alcotest.(check bool) "bounded messages" true (report.Report.ur_data_msgs <= 24)

let test_no_acquaintances_trivial_update () =
  let cfg = parse_config "node lonely { relation r(x: int); fact r(1); }" in
  let sys = System.build_exn cfg in
  let uid = System.run_update sys ~initiator:"lonely" in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "finished immediately" true report.Report.ur_all_finished;
  Alcotest.(check int) "no data messages" 0 report.Report.ur_data_msgs

let test_concurrent_updates () =
  (* two different initiators, interleaved in the same simulation *)
  let cfg = Topology.generate ~seed:11 Topology.Chain ~n:4 in
  let sys = System.build_exn cfg in
  let u1 = System.start_update sys ~initiator:"n0" in
  let u2 = System.start_update sys ~initiator:"n3" in
  let _ = System.run sys in
  let snaps = System.snapshots sys in
  let r1 = Option.get (Report.update_report snaps u1) in
  let r2 = Option.get (Report.update_report snaps u2) in
  Alcotest.(check bool) "u1 finished" true r1.Report.ur_all_finished;
  Alcotest.(check bool) "u2 finished" true r2.Report.ur_all_finished

let test_grid_update_counts () =
  let cfg = Topology.generate ~seed:5 (Topology.Grid (3, 3)) ~n:9 ~params:{ Topology.default_params with tuples_per_node = 10 } in
  let sys = System.build_exn cfg in
  let uid = System.run_update sys ~initiator:"n0" in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check int) "nine nodes" 9 report.Report.ur_nodes;
  Alcotest.(check bool) "finished" true report.Report.ur_all_finished;
  (* node 0 (top-left) imports everything downstream *)
  let n0 = System.local_answers sys ~at:"n0" (parse_query "o(x, y) <- data(x, y)") in
  Alcotest.(check bool) "n0 grew" true (List.length n0 > 10)

let test_deps_relevance () =
  let cfg = chain_cfg () in
  let sys = System.build_exn cfg in
  let n1 = System.node sys "n1" in
  let incoming = List.hd n1.Node.incoming in
  let relevant = Deps.relevant_outgoing n1.Node.outgoing ~incoming in
  Alcotest.(check int) "r10 feeds r01" 1 (List.length relevant);
  let outgoing = List.hd n1.Node.outgoing in
  let dependent = Deps.dependent_incoming n1.Node.incoming ~outgoing in
  Alcotest.(check int) "r01 depends on r10" 1 (List.length dependent)

let test_ablation_naive_delta_same_result () =
  let opts = { Options.default with Options.naive_delta = true } in
  let cfg = Topology.generate ~seed:21 Topology.Binary_tree ~n:7 ~params:{ Topology.default_params with tuples_per_node = 15 } in
  let sys_naive = System.build_exn ~opts cfg in
  let sys_semi = System.build_exn (Topology.generate ~seed:21 Topology.Binary_tree ~n:7 ~params:{ Topology.default_params with tuples_per_node = 15 }) in
  let _ = System.run_update sys_naive ~initiator:"n0" in
  let _ = System.run_update sys_semi ~initiator:"n0" in
  let q = parse_query "o(x, y) <- data(x, y)" in
  List.iter
    (fun node ->
      check_tuples (node ^ " same contents")
        (System.local_answers sys_semi ~at:node q)
        (System.local_answers sys_naive ~at:node q))
    (System.node_names sys_naive)

let test_ablation_no_sent_cache_same_result_more_traffic () =
  let mk opts seed = System.build_exn ~opts (Topology.generate ~seed Topology.Clique ~n:3 ~params:{ Topology.default_params with tuples_per_node = 20 }) in
  let sys_with = mk Options.default 33 in
  let sys_without = mk { Options.default with Options.use_sent_cache = false } 33 in
  let u1 = System.run_update sys_with ~initiator:"n0" in
  let u2 = System.run_update sys_without ~initiator:"n0" in
  let q = parse_query "o(x, y) <- data(x, y)" in
  List.iter
    (fun node ->
      check_tuples (node ^ " same contents")
        (System.local_answers sys_with ~at:node q)
        (System.local_answers sys_without ~at:node q))
    (System.node_names sys_with);
  let r1 = Option.get (Report.update_report (System.snapshots sys_with) u1) in
  let r2 = Option.get (Report.update_report (System.snapshots sys_without) u2) in
  Alcotest.(check bool) "cache saves traffic" true
    (r2.Report.ur_bytes >= r1.Report.ur_bytes)

let test_lineage_records_imports () =
  let sys, _ = run_chain () in
  let n0 = System.node sys "n0" in
  (* alice's name reached n0 through rule r01 over a 2-hop path *)
  (match Node.explain n0 ~rel:"who" (tup [ s "alice" ]) with
  | Some (Codb_core.Lineage.Imported [ route ]) ->
      Alcotest.(check string) "via r01" "r01" route.Codb_core.Lineage.li_rule;
      Alcotest.(check int) "two hops" 2 route.Codb_core.Lineage.li_hops
  | other ->
      Alcotest.failf "unexpected origin: %s"
        (match other with
        | None -> "absent"
        | Some Codb_core.Lineage.Base -> "base"
        | Some (Codb_core.Lineage.Imported routes) ->
            Printf.sprintf "%d routes" (List.length routes)));
  (* carol sits one hop away *)
  (match Node.explain n0 ~rel:"who" (tup [ s "carol" ]) with
  | Some (Codb_core.Lineage.Imported [ route ]) ->
      Alcotest.(check int) "one hop" 1 route.Codb_core.Lineage.li_hops
  | _ -> Alcotest.fail "expected a single import route");
  (* a base fact at n2 is Base; an absent tuple is None *)
  let n2 = System.node sys "n2" in
  Alcotest.(check bool) "base fact" true
    (Node.explain n2 ~rel:"person" (tup [ s "alice"; s "cs" ])
    = Some Codb_core.Lineage.Base);
  Alcotest.(check bool) "absent" true
    (Node.explain n2 ~rel:"person" (tup [ s "nobody"; s "x" ]) = None)

let test_partition_mid_update_stays_sound () =
  (* cut a pipe while the update is in flight: the simulation must
     drain without crashing, every node's store stays consistent (no
     partial tuples), and a follow-up update after healing completes
     the materialisation *)
  let cfg = Topology.generate ~seed:91 Topology.Chain ~n:6
      ~params:{ Topology.default_params with Topology.tuples_per_node = 20 } in
  let sys = System.build_exn cfg in
  let _uid = System.start_update sys ~initiator:"n0" in
  let _ = System.run ~max_events:10 sys in
  let net = System.net sys in
  let p = Codb_net.Peer_id.of_string in
  Codb_net.Network.disconnect net (p "n2") (p "n3");
  let _ = System.run sys in
  (* sound: whatever arrived is a subset of what a full run produces *)
  let full = System.build_exn (Topology.generate ~seed:91 Topology.Chain ~n:6
      ~params:{ Topology.default_params with Topology.tuples_per_node = 20 }) in
  let _ = System.run_update full ~initiator:"n0" in
  let q = parse_query "o(x, y) <- data(x, y)" in
  List.iter
    (fun name ->
      let partial = System.local_answers sys ~at:name q in
      let complete = System.local_answers full ~at:name q in
      Alcotest.(check bool) (name ^ " sound") true
        (List.for_all (fun t -> List.exists (Tuple.equal t) complete) partial))
    (System.node_names sys);
  (* heal and re-run: now everything arrives *)
  Codb_net.Network.connect net (p "n2") (p "n3");
  let _ = System.run_update sys ~initiator:"n0" in
  check_tuples "n0 complete after healing"
    (System.local_answers full ~at:"n0" q)
    (System.local_answers sys ~at:"n0" q)

let test_divergent_ablation_is_bounded () =
  (* DESIGN.md: disabling subsumption dedup on a cyclic network with
     existential heads makes the fix-point diverge (every lap mints
     fresh nulls).  The event bound must stop it cleanly: the run ends,
     the update is simply not finished. *)
  let cfg =
    parse_config
      {|
node a { relation r(x: int, y: int); fact r(1, 10); }
node b { relation r(x: int, y: int); }
rule ab at a: r(x, z) <- b: r(x, y);
rule ba at b: r(x, z) <- a: r(x, y);
|}
  in
  (* both de-duplication devices must fail for the loop to run away:
     the sent cache alone recognises the repeated hole-tuple, and
     subsumption alone recognises the existing witness *)
  let opts =
    { Options.default with Options.use_subsumption_dedup = false;
      use_sent_cache = false; max_update_events = 2000 }
  in
  let sys = System.build_exn ~opts cfg in
  let uid = System.start_update sys ~initiator:"a" in
  let events = System.run sys in
  Alcotest.(check bool) "hit the bound" true (events >= 2000);
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "not finished (diverging)" false report.Report.ur_all_finished;
  (* either device alone restores convergence *)
  let converges opts =
    let sys = System.build_exn ~opts cfg in
    let uid = System.run_update sys ~initiator:"a" in
    (Option.get (Report.update_report (System.snapshots sys) uid)).Report.ur_all_finished
  in
  Alcotest.(check bool) "sent cache alone converges" true
    (converges { Options.default with Options.use_subsumption_dedup = false });
  Alcotest.(check bool) "subsumption alone converges" true
    (converges { Options.default with Options.use_sent_cache = false })

let test_soak_random_glav_network () =
  (* a larger random network with the full rule mix: terminates and
     saturates *)
  let edges =
    Topology.edges
      ~rng:(Codb_workload.Rng.make ~seed:92)
      (Topology.Random_graph 0.08) ~n:24
  in
  let backbone = List.init 23 (fun k -> (k, k + 1)) in
  let edges = edges @ List.filter (fun e -> not (List.mem e edges)) backbone in
  let spec =
    { Codb_workload.Glavgen.default_spec with
      Codb_workload.Glavgen.tuples_per_relation = 8 }
  in
  let cfg = Codb_workload.Glavgen.generate ~spec ~seed:92 ~edges ~n:24 () in
  let sys = System.build_exn cfg in
  let uid = System.run_update sys ~initiator:"n0" in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Alcotest.(check bool) "terminates" true report.Report.ur_all_finished;
  Alcotest.(check int) "all nodes took part" 24 report.Report.ur_nodes;
  let saturated (r : Config.rule_decl) =
    let source_node = System.node sys r.Config.source in
    let importer = System.node sys r.Config.importer in
    let head_rel = r.Config.rule_query.Query.head.Codb_cq.Atom.rel in
    let derivable = Codb_core.Wrapper.eval_rule_full source_node.Node.store r in
    let target = Codb_relalg.Database.relation importer.Node.store head_rel in
    List.for_all (fun t -> Relation.subsumed target t) derivable
  in
  Alcotest.(check bool) "saturated" true
    (List.for_all saturated (System.config sys).Config.rules)

let suite =
  [
    Alcotest.test_case "chain materialises all data" `Quick test_chain_materialises;
    Alcotest.test_case "lineage records imports" `Quick test_lineage_records_imports;
    Alcotest.test_case "partition mid-update stays sound" `Quick
      test_partition_mid_update_stays_sound;
    Alcotest.test_case "soak: random GLAV network" `Slow test_soak_random_glav_network;
    Alcotest.test_case "divergent ablation is bounded" `Quick
      test_divergent_ablation_is_bounded;
    Alcotest.test_case "chain terminates and closes links" `Quick
      test_chain_terminates_and_closes;
    Alcotest.test_case "initiator position does not matter" `Quick
      test_chain_initiator_elsewhere;
    Alcotest.test_case "update is idempotent" `Quick test_update_idempotent;
    Alcotest.test_case "existential heads mint marked nulls" `Quick
      test_existential_head_creates_nulls;
    Alcotest.test_case "existential cycle terminates" `Quick
      test_existential_cycle_terminates;
    Alcotest.test_case "copy cycle reaches the union" `Quick
      test_copy_cycle_reaches_fixpoint;
    Alcotest.test_case "join rule with comparison" `Quick test_join_rule_across_relations;
    Alcotest.test_case "transitive dependency" `Quick test_transitive_join_dependency;
    Alcotest.test_case "mediator node forwards" `Quick test_mediator_node_forwards;
    Alcotest.test_case "inconsistency does not propagate" `Quick
      test_inconsistent_node_does_not_export;
    Alcotest.test_case "duplicate suppression on diamonds" `Quick
      test_dedup_suppresses_duplicates;
    Alcotest.test_case "sent cache bounds clique traffic" `Quick
      test_sent_cache_prevents_resend;
    Alcotest.test_case "trivial update on a lonely node" `Quick
      test_no_acquaintances_trivial_update;
    Alcotest.test_case "two concurrent updates" `Quick test_concurrent_updates;
    Alcotest.test_case "grid update" `Quick test_grid_update_counts;
    Alcotest.test_case "link dependency computation" `Quick test_deps_relevance;
    Alcotest.test_case "ablation: naive delta, same fix-point" `Quick
      test_ablation_naive_delta_same_result;
    Alcotest.test_case "ablation: no sent cache, same fix-point" `Quick
      test_ablation_no_sent_cache_same_result_more_traffic;
  ]
