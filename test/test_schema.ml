open Helpers

let test_make_validates () =
  Alcotest.(check bool)
    "duplicate attribute" true
    (try
       ignore (Schema.make "r" [ ("a", Value.Tint); ("a", Value.Tint) ]);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check bool)
    "empty attrs" true
    (try
       ignore (Schema.make "r" []);
       false
     with Invalid_argument _ -> true)

let test_positions () =
  Alcotest.(check (option int)) "a" (Some 0) (Schema.position r_schema "a");
  Alcotest.(check (option int)) "b" (Some 1) (Schema.position r_schema "b");
  Alcotest.(check (option int)) "missing" None (Schema.position r_schema "z")

let test_conforms () =
  Alcotest.(check bool) "good" true (Schema.conforms r_schema (tup [ i 1; i 2 ]));
  Alcotest.(check bool) "bad type" false (Schema.conforms r_schema (tup [ i 1; s "x" ]));
  Alcotest.(check bool) "bad arity" false (Schema.conforms r_schema (tup [ i 1 ]));
  let null = Value.fresh_null ~rule:"r" in
  Alcotest.(check bool) "null anywhere" true (Schema.conforms r_schema (tup [ null; null ]))

let test_equal () =
  let r2 = Schema.make "r" [ ("a", Value.Tint); ("b", Value.Tint) ] in
  Alcotest.(check bool) "equal" true (Schema.equal r_schema r2);
  let r3 = Schema.make "r" [ ("a", Value.Tint); ("b", Value.Tstring) ] in
  Alcotest.(check bool) "type differs" false (Schema.equal r_schema r3);
  Alcotest.(check bool) "name differs" false (Schema.equal r_schema s_schema)

let test_attr_names_arity () =
  Alcotest.(check (list string)) "names" [ "a"; "b" ] (Schema.attr_names r_schema);
  Alcotest.(check int) "arity" 2 (Schema.arity r_schema)

let suite =
  [
    Alcotest.test_case "make validates" `Quick test_make_validates;
    Alcotest.test_case "attribute positions" `Quick test_positions;
    Alcotest.test_case "tuple conformance" `Quick test_conforms;
    Alcotest.test_case "schema equality" `Quick test_equal;
    Alcotest.test_case "names and arity" `Quick test_attr_names_arity;
  ]
