open Helpers
module Pretty = Codb_cq.Pretty
module Lexer = Codb_cq.Lexer

let sample = {|
// a two-node network
node n1 {
  relation person(name: string, dept: string);
  relation job(dept: string, title: string);
  fact person("alice", "cs");
  fact person("bob", "math");
  fact job("cs", "prof");
}
node n2 {
  relation emp(name: string, title: string);
}
node m mediator {
  relation person(name: string, dept: string);
}
rule r1 at n2: emp(x, t) <- n1: person(x, d), job(d, t), d != "hr";
|}

let test_parse_sample () =
  let cfg = parse_config sample in
  Alcotest.(check int) "three nodes" 3 (List.length cfg.Config.nodes);
  Alcotest.(check int) "one rule" 1 (List.length cfg.Config.rules);
  let n1 = Option.get (Config.node cfg "n1") in
  Alcotest.(check int) "n1 relations" 2 (List.length n1.Config.relations);
  Alcotest.(check int) "n1 facts" 3 (List.length n1.Config.facts);
  Alcotest.(check bool) "n1 not mediator" false n1.Config.mediator;
  let m = Option.get (Config.node cfg "m") in
  Alcotest.(check bool) "m mediator" true m.Config.mediator;
  let r1 = List.hd cfg.Config.rules in
  Alcotest.(check string) "importer" "n2" r1.Config.importer;
  Alcotest.(check string) "source" "n1" r1.Config.source;
  Alcotest.(check int) "body atoms" 2 (List.length r1.Config.rule_query.Query.body);
  Alcotest.(check int) "comparisons" 1
    (List.length r1.Config.rule_query.Query.comparisons)

let test_comments_both_styles () =
  let cfg = parse_config "# hash comment\n// slash comment\nnode a { relation r(x: int); }" in
  Alcotest.(check int) "one node" 1 (List.length cfg.Config.nodes)

let test_parse_query_forms () =
  let q = parse_query "ans(x) <- emp(x, t), t = \"prof\"" in
  Alcotest.(check int) "one atom" 1 (List.length q.Query.body);
  Alcotest.(check int) "one comparison" 1 (List.length q.Query.comparisons);
  let q2 = parse_query "ans(x, 3) <- r(x, y), y >= 2;" in
  Alcotest.(check bool) "constant in head" true
    (List.exists (fun t -> Term.equal t (c (i 3))) q2.Query.head.Atom.args)

let test_literals () =
  let cfg =
    parse_config
      {|node a {
          relation r(i: int, f: float, s: string, b: bool);
          fact r(-5, 2.5, "x ""quoted""", false);
        }|}
  in
  let node = List.hd cfg.Config.nodes in
  let _, fact = List.hd node.Config.facts in
  Alcotest.check tuple_testable "literal values"
    (tup [ i (-5); Value.Float 2.5; s "x \"quoted\""; Value.Bool false ])
    fact

let test_float_exponents () =
  let cfg =
    parse_config
      {|node a { relation r(f: float); fact r(1e3); fact r(-2.5E-2); fact r(7.0e+2); }|}
  in
  let facts = List.map snd (List.hd cfg.Config.nodes).Config.facts in
  Alcotest.(check bool) "1e3" true
    (List.exists (fun t -> Value.equal t.(0) (Value.Float 1000.0)) facts);
  Alcotest.(check bool) "-2.5E-2" true
    (List.exists (fun t -> Value.equal t.(0) (Value.Float (-0.025))) facts);
  (* printing and re-parsing a config with extreme floats is stable *)
  let extreme =
    parse_config {|node a { relation r(f: float); fact r(1e30); fact r(4e-24); }|}
  in
  let printed = Codb_cq.Pretty.config_to_string extreme in
  let reparsed = parse_config printed in
  Alcotest.(check string) "round trip" printed
    (Codb_cq.Pretty.config_to_string reparsed)

let test_syntax_errors () =
  let fails text =
    match Parser.parse_config text with Error _ -> true | Ok _ -> false
  in
  Alcotest.(check bool) "missing brace" true (fails "node a { relation r(x: int);");
  Alcotest.(check bool) "bad type" true (fails "node a { relation r(x: decimal); }");
  Alcotest.(check bool) "missing semi on rule" true
    (fails "node a { relation r(x: int); } rule q at a: r(x) <- a: r(x)");
  Alcotest.(check bool) "garbage" true (fails "nodule a {}");
  Alcotest.(check bool) "unterminated string" true (fails "node a { fact r(\"x); }")

let test_validation_errors () =
  let invalid text expected_fragment =
    match Parser.load_config text with
    | Ok _ -> Alcotest.failf "expected validation failure for %s" expected_fragment
    | Error errors ->
        let found =
          List.exists
            (fun e ->
              let n = String.length expected_fragment in
              let h = String.length e in
              let rec loop idx =
                idx + n <= h && (String.sub e idx n = expected_fragment || loop (idx + 1))
              in
              loop 0)
            errors
        in
        Alcotest.(check bool) (expected_fragment ^ " reported") true found
  in
  invalid "node a { relation r(x: int); } node a { relation r(x: int); }" "duplicate node";
  invalid
    "node a { relation r(x: int); } rule z at a: r(x) <- b: r(x);"
    "unknown source";
  invalid
    "node a { relation r(x: int); } node b { relation r(x: int); } rule z at a: q(x) <- b: r(x);"
    "relation q not in schema";
  invalid
    "node a { relation r(x: int); } node b { relation r(x: int); } rule z at a: r(x, y) <- b: r(x);"
    "arity";
  invalid
    "node a { relation r(x: int); fact r(\"nope\"); }"
    "does not conform";
  invalid
    "node a { relation r(x: int); } node b { relation r(x: int); } rule z at a: r(x) <- b: r(x), w < 1;"
    "not bound"

let test_self_rule_rejected () =
  match
    Parser.load_config
      "node a { relation r(x: int); } rule z at a: r(x) <- a: r(x);"
  with
  | Ok _ -> Alcotest.fail "self-rule accepted"
  | Error errors ->
      Alcotest.(check bool) "mentions same node" true
        (List.exists (fun e -> String.length e > 0) errors)

let test_pretty_round_trip_sample () =
  let cfg = parse_config sample in
  let printed = Pretty.config_to_string cfg in
  let cfg2 = parse_config printed in
  let printed2 = Pretty.config_to_string cfg2 in
  Alcotest.(check string) "fixpoint after one round" printed printed2

let test_lexer_tokens () =
  let tokens = Lexer.tokenize "<- <= < >= > != = ; , : ( ) { }" in
  let kinds = List.map (fun t -> t.Lexer.token) tokens in
  Alcotest.(check int) "count with EOF" 15 (List.length kinds);
  Alcotest.(check bool) "arrow first" true (List.hd kinds = Lexer.ARROW)

let test_lexer_line_numbers () =
  match Parser.parse_config "node a {\n relation r(x: int);\n oops\n}" with
  | Error message ->
      Alcotest.(check bool) "line 3 reported" true
        (let frag = "line 3" in
         let n = String.length frag and h = String.length message in
         let rec loop i = i + n <= h && (String.sub message i n = frag || loop (i + 1)) in
         loop 0)
  | Ok _ -> Alcotest.fail "expected error"

let suite =
  [
    Alcotest.test_case "parse a full network file" `Quick test_parse_sample;
    Alcotest.test_case "comment styles" `Quick test_comments_both_styles;
    Alcotest.test_case "standalone queries" `Quick test_parse_query_forms;
    Alcotest.test_case "literal syntax" `Quick test_literals;
    Alcotest.test_case "float exponents" `Quick test_float_exponents;
    Alcotest.test_case "syntax errors" `Quick test_syntax_errors;
    Alcotest.test_case "validation errors" `Quick test_validation_errors;
    Alcotest.test_case "self-rules rejected" `Quick test_self_rule_rejected;
    Alcotest.test_case "pretty-print round trip" `Quick test_pretty_round_trip_sample;
    Alcotest.test_case "lexer token inventory" `Quick test_lexer_tokens;
    Alcotest.test_case "error line numbers" `Quick test_lexer_line_numbers;
  ]
