open Helpers
module Apply = Codb_cq.Apply
module Subst = Codb_cq.Subst

let rule_query =
  (* h(x, z) <- r(x, y): z is existential *)
  Query.make ~head:(atom "h" [ v "x"; v "z" ]) ~body:[ atom "r" [ v "x"; v "y" ] ] ()

let test_head_tuples_with_holes () =
  let substs = [ Subst.of_list [ ("x", i 1); ("y", i 10) ] ] in
  let tuples = Apply.head_tuples rule_query substs in
  check_tuples "hole in existential position" [ tup [ i 1; Value.Hole 0 ] ] tuples

let test_head_tuples_dedup () =
  (* two substitutions differing only in y project to the same head *)
  let substs =
    [
      Subst.of_list [ ("x", i 1); ("y", i 10) ];
      Subst.of_list [ ("x", i 1); ("y", i 20) ];
      Subst.of_list [ ("x", i 2); ("y", i 10) ];
    ]
  in
  let tuples = Apply.head_tuples rule_query substs in
  check_tuples "deduped"
    [ tup [ i 1; Value.Hole 0 ]; tup [ i 2; Value.Hole 0 ] ]
    tuples

let test_head_constants () =
  let q =
    Query.make ~head:(atom "h" [ c (s "tag"); v "x" ]) ~body:[ atom "r" [ v "x"; v "y" ] ] ()
  in
  let tuples = Apply.head_tuples q [ Subst.of_list [ ("x", i 3); ("y", i 0) ] ] in
  check_tuples "constant kept" [ tup [ s "tag"; i 3 ] ] tuples

let test_repeated_existential_same_hole () =
  let q =
    Query.make ~head:(atom "h" [ v "z"; v "z"; v "x" ]) ~body:[ atom "r" [ v "x"; v "y" ] ] ()
  in
  let tuples = Apply.head_tuples q [ Subst.of_list [ ("x", i 1); ("y", i 2) ] ] in
  match tuples with
  | [ t ] ->
      Alcotest.(check bool) "same hole index" true (Value.equal t.(0) t.(1));
      (* and after instantiation, the same null *)
      let t' = Tuple.instantiate_holes ~rule:"r" t in
      Alcotest.(check bool) "co-referent nulls" true (Value.equal t'.(0) t'.(1))
  | _ -> Alcotest.fail "expected one tuple"

let test_two_existentials_distinct_holes () =
  let q =
    Query.make ~head:(atom "h" [ v "z1"; v "z2" ]) ~body:[ atom "r" [ v "x"; v "y" ] ] ()
  in
  let tuples = Apply.head_tuples q [ Subst.of_list [ ("x", i 1); ("y", i 2) ] ] in
  match tuples with
  | [ t ] -> Alcotest.(check bool) "distinct holes" false (Value.equal t.(0) t.(1))
  | _ -> Alcotest.fail "expected one tuple"

let test_instantiate_fresh_per_tuple () =
  Value.reset_null_counter ();
  let tuples = [ tup [ i 1; Value.Hole 0 ]; tup [ i 2; Value.Hole 0 ] ] in
  match Apply.instantiate ~rule:"rz" tuples with
  | [ t1; t2 ] ->
      Alcotest.(check bool) "fresh per tuple" false (Value.equal t1.(1) t2.(1));
      Alcotest.(check int) "two nulls minted" 2 (Value.null_counter ())
  | _ -> Alcotest.fail "expected two tuples"

let suite =
  [
    Alcotest.test_case "existential head becomes a hole" `Quick test_head_tuples_with_holes;
    Alcotest.test_case "projection deduplicates" `Quick test_head_tuples_dedup;
    Alcotest.test_case "head constants" `Quick test_head_constants;
    Alcotest.test_case "repeated existential is co-referent" `Quick
      test_repeated_existential_same_hole;
    Alcotest.test_case "distinct existentials, distinct holes" `Quick
      test_two_existentials_distinct_holes;
    Alcotest.test_case "instantiation mints fresh nulls per tuple" `Quick
      test_instantiate_fresh_per_tuple;
  ]
