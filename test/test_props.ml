(* Property-based tests (qcheck) for the core invariants:
   - the evaluator agrees with a brute-force reference on random
     databases and queries;
   - semi-naive delta evaluation brackets exactly the gained answers;
   - printer/parser round-trips on random configurations;
   - the global update is idempotent, terminates, and reaches a
     fix-point (no rule can derive anything new) on random networks,
     cyclic ones and existential heads included;
   - query-time answering equals materialised answers on DAGs. *)

open Helpers
module Q2 = QCheck2
module Gen = QCheck2.Gen
module System = Codb_core.System
module Topology = Codb_core.Topology
module Report = Codb_core.Report
module Node = Codb_core.Node
module Wrapper = Codb_core.Wrapper
module Pretty = Codb_cq.Pretty

let var_pool = [ "x"; "y"; "z"; "w" ]

let gen_value = Gen.map (fun n -> i n) (Gen.int_range 0 5)

let gen_term =
  Gen.oneof
    [ Gen.map (fun v' -> Term.Var v') (Gen.oneofl var_pool); Gen.map c gen_value ]

let gen_atom =
  Gen.oneof
    [
      Gen.map2 (fun t1 t2 -> atom "r" [ t1; t2 ]) gen_term gen_term;
      Gen.map2 (fun t1 t2 -> atom "s2" [ t1; t2 ]) gen_term gen_term;
    ]

let gen_op = Gen.oneofl [ Query.Eq; Query.Neq; Query.Lt; Query.Le; Query.Gt; Query.Ge ]

let gen_query =
  let open Gen in
  let* body = list_size (int_range 1 3) gen_atom in
  let body_vars = Codb_cq.Term.vars (List.concat_map (fun a -> a.Atom.args) body) in
  let* head_vars =
    if body_vars = [] then return []
    else list_size (int_range 0 2) (oneofl body_vars)
  in
  let* comparisons =
    if body_vars = [] then return []
    else
      let gen_cmp =
        let* left = oneofl body_vars in
        let* op = gen_op in
        let* right = oneof [ map (fun v' -> Term.Var v') (oneofl body_vars); map c gen_value ] in
        return { Query.left = Term.Var left; op; right }
      in
      list_size (int_range 0 1) gen_cmp
  in
  return
    (Query.make
       ~head:(atom "ans" (List.map (fun v' -> Term.Var v') head_vars))
       ~body ~comparisons ())

let int_pair_schema name =
  Schema.make name [ ("a", Value.Tint); ("b", Value.Tint) ]

let gen_tuple = Gen.map2 (fun a b -> tup [ i a; i b ]) (Gen.int_range 0 5) (Gen.int_range 0 5)

let gen_db =
  let open Gen in
  let* r_tuples = list_size (int_range 0 12) gen_tuple in
  let* s_tuples = list_size (int_range 0 12) gen_tuple in
  return
    (db_of
       [ int_pair_schema "r"; int_pair_schema "s2" ]
       (List.map (fun t -> ("r", t)) r_tuples @ List.map (fun t -> ("s2", t)) s_tuples))

let prop_eval_matches_reference =
  Q2.Test.make ~name:"evaluator agrees with brute force" ~count:200
    (Gen.pair gen_db gen_query)
    (fun (db, q) ->
      let source = Eval.of_database db in
      let fast = sorted_tuples (Eval.answer_tuples source q) in
      let slow = sorted_tuples (Test_eval.reference_answers source q) in
      List.equal Tuple.equal fast slow)

(* Random databases drawn through the workload generator (seeded,
   optionally zipf-skewed) rather than the hand-rolled gen_db above:
   the cost-based planner must return exactly the legacy evaluator's
   answer set, whatever the data shape. *)
let gen_datagen_db =
  let open Gen in
  let* seed = int_range 0 10000 in
  let* skew = oneofl [ 0.0; 1.0 ] in
  let* r_count = int_range 0 30 in
  let* s_count = int_range 0 30 in
  let rng = Codb_workload.Rng.make ~seed in
  let profile = { Codb_workload.Datagen.domain_size = 6; skew } in
  let r_schema = int_pair_schema "r" and s_schema = int_pair_schema "s2" in
  let db = Database.create [ r_schema; s_schema ] in
  ignore
    (Database.insert_all db "r"
       (Codb_workload.Datagen.tuples rng profile r_schema ~count:r_count));
  ignore
    (Database.insert_all db "s2"
       (Codb_workload.Datagen.tuples rng profile s_schema ~count:s_count));
  return db

let subst_set substs =
  List.sort_uniq compare (List.map Codb_cq.Subst.bindings substs)

let prop_planner_matches_legacy =
  Q2.Test.make ~name:"planned evaluation = legacy evaluation" ~count:300
    (Gen.pair gen_datagen_db gen_query)
    (fun (db, q) ->
      let source = Eval.of_database db in
      let legacy = subst_set (Eval.answers ~planner:false source q) in
      subst_set (Eval.answers ~planner:true source q) = legacy
      && subst_set (Eval.answers ~max_probe_cols:1 source q) = legacy)

let prop_planner_matches_legacy_on_deltas =
  Q2.Test.make ~name:"planned delta evaluation = legacy delta evaluation"
    ~count:150
    (Gen.triple gen_datagen_db (Gen.list_size (Gen.int_range 1 5) gen_tuple)
       gen_query)
    (fun (db, delta_candidates, q) ->
      let source = Eval.of_database db in
      let delta = Database.insert_all db "r" delta_candidates in
      let run planner =
        subst_set
          (Eval.delta_answers ~planner source ~delta_rel:"r" ~delta q)
      in
      run true = run false)

let prop_delta_brackets_gain =
  Q2.Test.make ~name:"semi-naive delta brackets the gained answers" ~count:200
    (Gen.triple gen_db (Gen.list_size (Gen.int_range 1 5) gen_tuple) gen_query)
    (fun (db, delta_candidates, q) ->
      let source = Eval.of_database db in
      let before = Relation.Tuple_set.of_list (Eval.answer_tuples source q) in
      let delta = Database.insert_all db "r" delta_candidates in
      let after = Eval.answer_tuples source q in
      let derived =
        Relation.Tuple_set.of_list
          (Codb_cq.Apply.head_tuples q
             (Eval.delta_answers source ~delta_rel:"r" ~delta q))
      in
      let gained =
        List.filter (fun t -> not (Relation.Tuple_set.mem t before)) after
      in
      (* gained ⊆ derived ⊆ after *)
      List.for_all (fun t -> Relation.Tuple_set.mem t derived) gained
      && Relation.Tuple_set.for_all
           (fun t -> List.exists (Tuple.equal t) after)
           derived)

let gen_shape =
  Gen.oneofl
    [
      Topology.Chain; Topology.Ring; Topology.Star_in; Topology.Star_out;
      Topology.Binary_tree; Topology.Clique;
    ]

let gen_network =
  let open Gen in
  let* shape = gen_shape in
  let* n = int_range 2 5 in
  let* seed = int_range 0 10000 in
  let* existential_frac = oneofl [ 0.0; 0.3 ] in
  let params =
    { Topology.default_params with Topology.tuples_per_node = 8; existential_frac }
  in
  return (shape, n, seed, params)

let build_net (shape, n, seed, params) =
  System.build_exn (Topology.generate ~params ~seed shape ~n)

let prop_roundtrip_config =
  Q2.Test.make ~name:"pretty-print / parse round trip" ~count:100 gen_network
    (fun (shape, n, seed, params) ->
      let cfg = Topology.generate ~params ~seed shape ~n in
      let text = Pretty.config_to_string cfg in
      match Codb_cq.Parser.load_config text with
      | Error _ -> false
      | Ok cfg2 -> String.equal text (Pretty.config_to_string cfg2))

let prop_update_terminates_and_is_idempotent =
  Q2.Test.make ~name:"update terminates and is idempotent" ~count:40 gen_network
    (fun spec ->
      let sys = build_net spec in
      let u1 = System.run_update sys ~initiator:"n0" in
      let r1 = Option.get (Report.update_report (System.snapshots sys) u1) in
      let tuples_after_first = System.total_tuples sys in
      let u2 = System.run_update sys ~initiator:"n0" in
      let r2 = Option.get (Report.update_report (System.snapshots sys) u2) in
      r1.Report.ur_all_finished && r2.Report.ur_all_finished
      && System.total_tuples sys = tuples_after_first
      && r2.Report.ur_new_tuples = 0)

let prop_update_reaches_fixpoint =
  Q2.Test.make ~name:"after the update no rule derives anything new" ~count:40
    gen_network
    (fun spec ->
      let sys = build_net spec in
      let _ = System.run_update sys ~initiator:"n0" in
      let rule_saturated (r : Config.rule_decl) =
        let source_node = System.node sys r.Config.source in
        let importer = System.node sys r.Config.importer in
        let head_rel = r.Config.rule_query.Query.head.Atom.rel in
        let derivable = Wrapper.eval_rule_full source_node.Node.store r in
        let target = Database.relation importer.Node.store head_rel in
        List.for_all (fun t -> Relation.subsumed target t) derivable
      in
      List.for_all rule_saturated (System.config sys).Config.rules)

let gen_dag_network =
  let open Gen in
  let* shape = oneofl [ Topology.Chain; Topology.Binary_tree; Topology.Star_in ] in
  let* n = int_range 2 6 in
  let* seed = int_range 0 10000 in
  return (shape, n, seed, { Topology.default_params with Topology.tuples_per_node = 8 })

let prop_query_equals_update_on_dags =
  Q2.Test.make ~name:"query-time = materialised answers on DAGs" ~count:40
    gen_dag_network
    (fun ((shape, n, seed, params) as spec) ->
      let q = parse_query "o(x, y) <- data(x, y)" in
      let sys_q = build_net spec in
      let outcome = System.run_query sys_q ~at:"n0" q in
      let sys_u = build_net (shape, n, seed, params) in
      let _ = System.run_update sys_u ~initiator:"n0" in
      let materialised = sorted_tuples (System.local_answers sys_u ~at:"n0" q) in
      (* compare certain answers: null identities differ between the
         two runs by construction *)
      List.equal Tuple.equal
        (sorted_tuples (Eval.certain materialised))
        (sorted_tuples outcome.System.qo_certain))

(* Constraint pushdown is an optimisation, not a semantics change: on
   any network (cycles and existential heads included) and any query,
   the answer set, the certain answers and the completeness flag agree
   across pushdown on/off and planner on/off.  Null identities are
   run-dependent, so each tuple's nulls are canonicalised to their
   first-occurrence index inside the tuple before comparison. *)
let canonical_nulls t =
  let seen = Hashtbl.create 4 in
  Array.map
    (function
      | Value.Null { Value.null_id; _ } ->
          let idx =
            match Hashtbl.find_opt seen null_id with
            | Some idx -> idx
            | None ->
                let idx = Hashtbl.length seen in
                Hashtbl.add seen null_id idx;
                idx
          in
          Value.Str (Printf.sprintf "\x00null%d" idx)
      | (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ | Value.Hole _) as v
        ->
          v)
    t

let gen_pushdown_case =
  let open Gen in
  let* spec = gen_network in
  let* qtext =
    oneofl
      [
        "o(y) <- data(3, y)";
        "o(x, y) <- data(x, y), x < 3";
        "o(y) <- data(2, y), data(2, z)";
        "o(x, y) <- data(x, y)";
        (* a value-column constant: refutes existential-headed rules
           outright (the derived null can never equal it) *)
        "o(x) <- data(x, \"v2\")";
        (* distinct constants over two atoms: a disjunctive constraint
           only the output filter can enforce *)
        "o(y, z) <- data(2, y), data(3, z)";
      ]
  in
  let* cache = Gen.bool in
  return (spec, qtext, cache)

let prop_pushdown_preserves_answers =
  Q2.Test.make ~name:"constraint pushdown never changes answers" ~count:30
    gen_pushdown_case
    (fun ((shape, n, seed, params), qtext, use_query_cache) ->
      let q = parse_query qtext in
      let run ~pushdown ~planner =
        let opts =
          { Codb_core.Options.default with
            Codb_core.Options.pushdown; planner; use_query_cache }
        in
        let sys = System.build_exn ~opts (Topology.generate ~params ~seed shape ~n) in
        let o = System.run_query sys ~at:"n0" q in
        ( sorted_tuples (List.map canonical_nulls o.System.qo_answers),
          sorted_tuples (List.map canonical_nulls o.System.qo_certain),
          o.System.qo_complete )
      in
      let a0, c0, f0 = run ~pushdown:false ~planner:true in
      List.for_all
        (fun (pushdown, planner) ->
          let a, c, f = run ~pushdown ~planner in
          List.equal Tuple.equal a0 a && List.equal Tuple.equal c0 c
          && Bool.equal f0 f)
        [ (true, true); (false, false); (true, false) ])

(* Heterogeneous GLAV networks (joins, existential projections,
   filters) over random shapes: the update must terminate, saturate
   every rule, and be idempotent there too. *)
let gen_glav_network =
  let open Gen in
  let* shape = gen_shape in
  let* n = int_range 2 4 in
  let* seed = int_range 0 10000 in
  let* join_frac = oneofl [ 0.0; 0.5 ] in
  let spec =
    { Codb_workload.Glavgen.default_spec with
      Codb_workload.Glavgen.tuples_per_relation = 6; join_frac }
  in
  return (shape, n, seed, spec)

let build_glav (shape, n, seed, spec) =
  let edges = Topology.edges shape ~n in
  System.build_exn (Codb_workload.Glavgen.generate ~spec ~seed ~edges ~n ())

let prop_glav_update_saturates =
  Q2.Test.make ~name:"GLAV networks: update terminates at a saturated fix-point"
    ~count:30 gen_glav_network
    (fun spec ->
      let sys = build_glav spec in
      let u1 = System.run_update sys ~initiator:"n0" in
      let r1 = Option.get (Report.update_report (System.snapshots sys) u1) in
      let tuples_after = System.total_tuples sys in
      let rule_saturated (r : Config.rule_decl) =
        let source_node = System.node sys r.Config.source in
        let importer = System.node sys r.Config.importer in
        let head_rel = r.Config.rule_query.Query.head.Atom.rel in
        let derivable = Wrapper.eval_rule_full source_node.Node.store r in
        let target = Database.relation importer.Node.store head_rel in
        List.for_all (fun t -> Relation.subsumed target t) derivable
      in
      let u2 = System.run_update sys ~initiator:"n0" in
      let r2 = Option.get (Report.update_report (System.snapshots sys) u2) in
      r1.Report.ur_all_finished
      && List.for_all rule_saturated (System.config sys).Config.rules
      && System.total_tuples sys = tuples_after
      && r2.Report.ur_new_tuples = 0)

let prop_scoped_equals_global_at_initiator =
  Q2.Test.make ~name:"scoped update = global update at the initiator" ~count:30
    gen_network
    (fun ((shape, n, seed, params) as spec) ->
      let q =
        match Codb_cq.Parser.parse_query "o(x, y) <- data(x, y)" with
        | Ok q -> q
        | Error e -> failwith e
      in
      let sys_g = build_net spec in
      let _ = System.run_update sys_g ~initiator:"n0" in
      let sys_s = build_net (shape, n, seed, params) in
      let _ = System.run_scoped_update sys_s ~at:"n0" q in
      (* certain answers match exactly; null identities differ by
         construction between the two runs *)
      List.equal Tuple.equal
        (sorted_tuples (Eval.certain (System.local_answers sys_g ~at:"n0" q)))
        (sorted_tuples (Eval.certain (System.local_answers sys_s ~at:"n0" q))))

let prop_export_import_round_trip =
  Q2.Test.make ~name:"store export/import round-trips" ~count:25 gen_network
    (fun ((shape, n, seed, params) as spec) ->
      let sys = build_net spec in
      let _ = System.run_update sys ~initiator:"n0" in
      let dumps = System.export_stores sys in
      let sys2 = build_net (shape, n, seed, params) in
      let _ = System.import_stores sys2 dumps in
      List.for_all
        (fun name ->
          Database.equal_contents (System.node sys name).Node.store
            (System.node sys2 name).Node.store)
        (System.node_names sys))

let prop_discovery_monotone_in_ttl =
  Q2.Test.make ~name:"discovery is monotone in TTL and bounded by the network"
    ~count:25 gen_network
    (fun (_shape, n, seed, params) ->
      let found ttl =
        let sys = build_net (Topology.Ring, n, seed, params) in
        List.map Codb_net.Peer_id.to_string (System.discover sys ~at:"n0" ~ttl)
      in
      let f1 = found 1 and f3 = found 3 in
      let all = List.init n (fun i -> Printf.sprintf "n%d" i) in
      List.for_all (fun p -> List.mem p f3) f1
      && List.for_all (fun p -> List.mem p all && p <> "n0") f3)

let gen_fault_plan =
  let open Gen in
  let* fault_seed = int_range 0 10000 in
  let* drop = oneofl [ 0.05; 0.15; 0.3; 0.6 ] in
  let* dup = oneofl [ 0.0; 0.1 ] in
  let* jitter = oneofl [ 0.0; 0.002 ] in
  let* budget = int_range 0 10 in
  return (fault_seed, drop, dup, jitter, budget)

let gen_faulted_network =
  let open Gen in
  let* shape = oneofl [ Topology.Chain; Topology.Ring; Topology.Binary_tree ] in
  let* n = int_range 2 5 in
  let* seed = int_range 0 10000 in
  let* plan = gen_fault_plan in
  (* non-existential heads: fresh nulls get run-dependent identities,
     which would make store comparison vacuous *)
  return
    ((shape, n, seed, { Topology.default_params with Topology.tuples_per_node = 8 }),
     plan)

let prop_faulted_update_equals_fault_free =
  (* with drop_budget <= max_retries no message can be dropped more
     times than it will be retransmitted, so every send is eventually
     delivered and the fix-point must coincide with the fault-free run *)
  Q2.Test.make
    ~name:"under retried loss the update fix-point equals the fault-free run"
    ~count:20 gen_faulted_network
    (fun (spec, (fault_seed, drop, dup, jitter, budget)) ->
      let baseline = build_net spec in
      let _ = System.run_update baseline ~initiator:"n0" in
      let opts =
        {
          Codb_core.Options.default with
          Codb_core.Options.fault_seed;
          drop_prob = drop;
          dup_prob = dup;
          jitter;
          drop_budget = budget;
          ack_timeout = 0.05;
          max_retries = 10;
        }
      in
      let shape, n, seed, params = spec in
      let sys =
        System.build_exn ~opts (Topology.generate ~params ~seed shape ~n)
      in
      let report =
        let uid = System.run_update sys ~initiator:"n0" in
        Option.get (Report.update_report (System.snapshots sys) uid)
      in
      report.Report.ur_all_finished
      && (Report.chaos_report (System.snapshots sys)).Report.chr_give_ups = 0
      && List.for_all
           (fun name ->
             Database.equal_contents (System.node baseline name).Node.store
               (System.node sys name).Node.store)
           (System.node_names sys))

let gen_relation_tuples =
  Gen.list_size (Gen.int_range 0 20)
    (Gen.map2
       (fun a b -> tup [ i a; i b ])
       (Gen.int_range (-100) 100)
       (Gen.int_range (-100) 100))

let prop_csv_round_trip =
  Q2.Test.make ~name:"CSV dump/load round-trips random relations" ~count:100
    gen_relation_tuples
    (fun tuples ->
      let db = db_of [ r_schema ] [] in
      ignore (Database.insert_all db "r" tuples);
      let text = Codb_relalg.Csv.dump (Database.relation db "r") in
      let db2 = db_of [ r_schema ] [] in
      let _ = Codb_relalg.Csv.load_into db2 "r" text in
      Database.equal_contents db db2)

let prop_join_order_invariance =
  Q2.Test.make ~name:"body atom order does not change the answers" ~count:150
    (Gen.pair gen_db gen_query)
    (fun (db, q) ->
      let source = Eval.of_database db in
      let reference = sorted_tuples (Eval.answer_tuples source q) in
      let rotated =
        match q.Query.body with
        | first :: rest -> { q with Query.body = rest @ [ first ] }
        | [] -> q
      in
      let reversed = { q with Query.body = List.rev q.Query.body } in
      List.equal Tuple.equal reference
        (sorted_tuples (Eval.answer_tuples source rotated))
      && List.equal Tuple.equal reference
           (sorted_tuples (Eval.answer_tuples source reversed)))

let prop_lexer_total =
  Q2.Test.make ~name:"the lexer never crashes: tokens or Lex_error" ~count:300
    Gen.(string_size ~gen:printable (int_range 0 60))
    (fun input ->
      match Codb_cq.Lexer.tokenize input with
      | tokens -> tokens <> []  (* at least EOF *)
      | exception Codb_cq.Lexer.Lex_error _ -> true)

let prop_parser_total =
  Q2.Test.make ~name:"the parser never crashes on lexable garbage" ~count:300
    Gen.(string_size ~gen:printable (int_range 0 80))
    (fun input ->
      match Codb_cq.Parser.parse_config input with Ok _ | Error _ -> true)

let prop_containment_reflexive =
  Q2.Test.make ~name:"containment is reflexive" ~count:100 gen_query
    (fun q ->
      (* reflexivity holds for any well-formed comparison-free query;
         with comparisons our conservative test must still accept the
         syntactically identical query *)
      Codb_cq.Containment.contained q q
      || (* vacuous queries with no head vars and unsatisfiable
            comparisons may be rejected conservatively *)
      q.Query.comparisons <> [])

let prop_nulls_counter_monotone =
  Q2.Test.make ~name:"every stored null was minted by the generator" ~count:30
    gen_network
    (fun spec ->
      Value.reset_null_counter ();
      let sys = build_net spec in
      let _ = System.run_update sys ~initiator:"n0" in
      let minted = Value.null_counter () in
      let ok = ref true in
      List.iter
        (fun name ->
          let node = System.node sys name in
          List.iter
            (fun rel ->
              Relation.iter
                (fun t ->
                  Array.iter
                    (fun v ->
                      match v with
                      | Value.Null n ->
                          if n.Value.null_id < 1 || n.Value.null_id > minted then
                            ok := false
                      | Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _
                      | Value.Hole _ ->
                          ())
                    t)
                (Database.relation node.Node.store rel))
            (Database.rel_names node.Node.store))
        (System.node_names sys);
      !ok)

let suite =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_eval_matches_reference;
      prop_planner_matches_legacy;
      prop_planner_matches_legacy_on_deltas;
      prop_delta_brackets_gain;
      prop_roundtrip_config;
      prop_update_terminates_and_is_idempotent;
      prop_update_reaches_fixpoint;
      prop_query_equals_update_on_dags;
      prop_pushdown_preserves_answers;
      prop_glav_update_saturates;
      prop_scoped_equals_global_at_initiator;
      prop_export_import_round_trip;
      prop_faulted_update_equals_fault_free;
      prop_discovery_monotone_in_ttl;
      prop_csv_round_trip;
      prop_join_order_invariance;
      prop_lexer_total;
      prop_parser_total;
      prop_containment_reflexive;
      prop_nulls_counter_monotone;
    ]
