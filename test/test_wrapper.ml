open Helpers
module Wrapper = Codb_core.Wrapper
module Options = Codb_core.Options

let rule_of text =
  let cfg =
    parse_config
      ({|
node imp { relation target(k: int, w: int); }
node src { relation base(k: int, y: int); relation side(y: int, w: int); }
|}
      ^ text)
  in
  List.hd cfg.Config.rules

let src_db rows =
  db_of
    [
      Schema.make "base" [ ("k", Value.Tint); ("y", Value.Tint) ];
      Schema.make "side" [ ("y", Value.Tint); ("w", Value.Tint) ];
    ]
    rows

let imp_db () =
  db_of [ Schema.make "target" [ ("k", Value.Tint); ("w", Value.Tint) ] ] []

let test_eval_rule_full_join () =
  let rule = rule_of "rule r at imp: target(k, w) <- src: base(k, y), side(y, w);" in
  let db =
    src_db
      [ ("base", tup [ i 1; i 10 ]); ("base", tup [ i 2; i 20 ]);
        ("side", tup [ i 10; i 7 ]) ]
  in
  check_tuples "join result" [ tup [ i 1; i 7 ] ] (Wrapper.eval_rule_full db rule)

let test_eval_rule_full_existential () =
  let rule = rule_of "rule r at imp: target(k, z) <- src: base(k, y);" in
  let db = src_db [ ("base", tup [ i 1; i 10 ]) ] in
  check_tuples "existential as hole" [ tup [ i 1; Value.Hole 0 ] ]
    (Wrapper.eval_rule_full db rule)

let test_eval_rule_delta_only_new () =
  let rule = rule_of "rule r at imp: target(k, w) <- src: base(k, y), side(y, w);" in
  let db =
    src_db
      [ ("base", tup [ i 1; i 10 ]); ("side", tup [ i 10; i 7 ]);
        ("side", tup [ i 30; i 9 ]) ]
  in
  let delta = Database.insert_all db "base" [ tup [ i 3; i 30 ] ] in
  check_tuples "delta-derived only" [ tup [ i 3; i 9 ] ]
    (Wrapper.eval_rule_delta ~naive:false db rule ~delta_rel:"base" ~delta)

let test_integrate_counts () =
  let db = imp_db () in
  ignore (Database.insert db "target" (tup [ i 1; i 7 ]));
  let result =
    Wrapper.integrate ~opts:Options.default ~rule_id:"r" db ~rel:"target"
      [ tup [ i 1; i 7 ]; tup [ i 2; i 8 ]; tup [ i 2; i 8 ] ]
  in
  check_tuples "fresh" [ tup [ i 2; i 8 ] ] result.Wrapper.fresh;
  Alcotest.(check int) "two suppressed" 2 result.Wrapper.suppressed;
  Alcotest.(check int) "no nulls" 0 result.Wrapper.nulls_created

let test_integrate_instantiates_holes () =
  Value.reset_null_counter ();
  let db = imp_db () in
  let result =
    Wrapper.integrate ~opts:Options.default ~rule_id:"rx" db ~rel:"target"
      [ tup [ i 1; Value.Hole 0 ] ]
  in
  Alcotest.(check int) "one null" 1 result.Wrapper.nulls_created;
  match result.Wrapper.fresh with
  | [ t ] -> Alcotest.(check bool) "null stored" true (Value.is_null t.(1))
  | _ -> Alcotest.fail "expected one tuple"

let test_integrate_subsumption_on_off () =
  let stored_then_hole opts =
    let db = imp_db () in
    ignore (Database.insert db "target" (tup [ i 1; i 7 ]));
    let result =
      Wrapper.integrate ~opts ~rule_id:"r" db ~rel:"target" [ tup [ i 1; Value.Hole 0 ] ]
    in
    List.length result.Wrapper.fresh
  in
  Alcotest.(check int) "subsumption drops the hole tuple" 0
    (stored_then_hole Options.default);
  Alcotest.(check int) "without subsumption it lands with a null" 1
    (stored_then_hole { Options.default with Options.use_subsumption_dedup = false })

let test_user_answers_rejects_rule_heads () =
  let db = src_db [ ("base", tup [ i 1; i 10 ]) ] in
  let q =
    Query.make ~head:(atom "out" [ v "k"; v "fresh" ]) ~body:[ atom "base" [ v "k"; v "y" ] ] ()
  in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Wrapper.user_answers db q);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    Alcotest.test_case "rule evaluation with joins" `Quick test_eval_rule_full_join;
    Alcotest.test_case "existential heads become holes" `Quick
      test_eval_rule_full_existential;
    Alcotest.test_case "delta evaluation derives only new" `Quick
      test_eval_rule_delta_only_new;
    Alcotest.test_case "integration counts" `Quick test_integrate_counts;
    Alcotest.test_case "integration mints nulls" `Quick test_integrate_instantiates_holes;
    Alcotest.test_case "subsumption toggle" `Quick test_integrate_subsumption_on_off;
    Alcotest.test_case "user queries reject existential heads" `Quick
      test_user_answers_rejects_rule_heads;
  ]
