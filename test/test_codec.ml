(* The compact binary wire codec: primitive round-trips, value/tuple
   round-trips across every Value variant (marked nulls included),
   payload round-trips, dictionary compression, and rejection of
   malformed input. *)

open Helpers
module Codec = Codb_net.Codec
module Payload = Codb_core.Payload
module Ids = Codb_core.Ids
module Peer_id = Codb_net.Peer_id
module Value = Codb_relalg.Value

let uid = Ids.update_id (Peer_id.of_string "n0") 1

let qid = Ids.query_id (Peer_id.of_string "n0") 1

let test_primitive_round_trip () =
  let w = Codec.writer () in
  List.iter (Codec.varint w) [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  List.iter (Codec.zigzag w) [ 0; -1; 1; -64; 64; min_int + 1; max_int ];
  List.iter (Codec.float64 w) [ 0.0; -1.5; Float.pi; infinity; neg_infinity ];
  Codec.byte w 0xAB;
  Codec.raw_string w "";
  Codec.raw_string w "hello";
  let r = Codec.reader (Codec.contents w) in
  List.iter
    (fun n -> Alcotest.(check int) "varint" n (Codec.read_varint r))
    [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  List.iter
    (fun n -> Alcotest.(check int) "zigzag" n (Codec.read_zigzag r))
    [ 0; -1; 1; -64; 64; min_int + 1; max_int ];
  List.iter
    (fun f ->
      Alcotest.(check bool) "float64" true (Float.equal f (Codec.read_float64 r)))
    [ 0.0; -1.5; Float.pi; infinity; neg_infinity ];
  Alcotest.(check int) "byte" 0xAB (Codec.read_byte r);
  Alcotest.(check string) "empty raw string" "" (Codec.read_raw_string r);
  Alcotest.(check string) "raw string" "hello" (Codec.read_raw_string r);
  Alcotest.(check bool) "fully consumed" true (Codec.at_end r)

let test_float_nan_round_trip () =
  let w = Codec.writer () in
  Codec.float64 w Float.nan;
  Alcotest.(check bool) "nan survives" true
    (Float.is_nan (Codec.read_float64 (Codec.reader (Codec.contents w))))

let test_string_dictionary_compresses () =
  let one_of s =
    let w = Codec.writer () in
    Codec.string w s;
    Codec.size w
  in
  let many_of s n =
    let w = Codec.writer () in
    for _ = 1 to n do
      Codec.string w s
    done;
    Codec.size w
  in
  let s = String.make 40 'x' in
  (* occurrences after the first cost a 1-byte back-reference, not 41 B *)
  Alcotest.(check int) "10 repeats = first + 9 refs" (one_of s + 9) (many_of s 10);
  (* and they decode back to the same string *)
  let w = Codec.writer () in
  Codec.string w s;
  Codec.string w "other";
  Codec.string w s;
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check string) "first" s (Codec.read_string r);
  Alcotest.(check string) "interleaved" "other" (Codec.read_string r);
  Alcotest.(check string) "back-reference" s (Codec.read_string r)

(* every Value variant, marked nulls (with their minting rule) and
   wire holes included *)
let kitchen_sink_tuples =
  [
    tup
      [
        i 0; i (-1); i 123456789; Value.Float 2.5; Value.Float (-0.0);
        s ""; s "repeated"; Value.Bool true; Value.Bool false;
      ];
    tup
      [
        Value.Null { Value.null_id = 7; null_rule = "r1" };
        Value.Null { Value.null_id = 8; null_rule = "r1" };
        Value.Hole 0; Value.Hole 3; s "repeated"; i max_int; i (min_int + 1);
      ];
  ]

let test_tuples_round_trip () =
  match Payload.decode_tuples (Payload.encode_tuples kitchen_sink_tuples) with
  | Ok tuples -> check_tuples "all variants round-trip" kitchen_sink_tuples tuples
  | Error e -> Alcotest.failf "decode_tuples failed: %s" e

let payload_samples =
  [
    Payload.Update_request { update_id = uid; scope = Payload.Global };
    Payload.Update_request { update_id = uid; scope = Payload.For_rule "r1" };
    Payload.Update_data
      { update_id = uid; rule_id = "r1"; tuples = kitchen_sink_tuples; hops = 3;
        global = true };
    Payload.Update_batch
      { update_id = uid;
        entries =
          [
            { Payload.be_rule = "r1"; be_hops = 2; be_tuples = kitchen_sink_tuples };
            { Payload.be_rule = "r2"; be_hops = 0; be_tuples = [] };
          ];
        global = false };
    Payload.Update_link_closed { update_id = uid; rule_id = "r1"; global = true };
    Payload.Update_ack { update_id = uid };
    Payload.Update_terminated { update_id = uid };
    Payload.Query_request
      { query_id = qid; request_ref = "n0/1"; rule_id = "r1";
        label = [ Peer_id.of_string "n0"; Peer_id.of_string "n1" ];
        constraints = Payload.Specialize.any };
    Payload.Query_request
      { query_id = qid; request_ref = "n0/2"; rule_id = "r1";
        label = [ Peer_id.of_string "n0" ];
        constraints =
          Payload.Specialize.(
            One_of
              [
                [
                  { p_left = Col 0; p_op = Codb_cq.Query.Eq; p_right = Const (i 7) };
                  { p_left = Col 1; p_op = Codb_cq.Query.Lt; p_right = Const (s "zz") };
                ];
                [ { p_left = Col 0; p_op = Codb_cq.Query.Neq; p_right = Col 2 } ];
              ]) };
    Payload.Query_data
      { query_id = qid; request_ref = "n0/1"; rule_id = "r1";
        tuples = [ tup [ i 1; s "x" ] ] };
    Payload.Query_done { query_id = qid; request_ref = "n0/1"; rule_id = "r1"; complete = true };
    Payload.Rules_file { version = 3; text = "node a { relation r(x: int); }" };
    Payload.Start_update;
    Payload.Stats_request;
    Payload.Discovery_probe
      { probe_id = "n0/1"; ttl = 3; path = [ Peer_id.of_string "n0" ] };
    Payload.Discovery_reply
      { probe_id = "n0/1"; path = []; peers = [ Peer_id.of_string "n1" ] };
    (* reliable-transport frames: the inner payload nests verbatim *)
    Payload.Seq
      { seq = 42;
        inner =
          Payload.Update_data
            { update_id = uid; rule_id = "r1"; tuples = kitchen_sink_tuples; hops = 1;
              global = true } };
    Payload.Seq { seq = 0; inner = Payload.Update_ack { update_id = uid } };
    Payload.Seq_ack { seq = 1 lsl 30 };
    Payload.Sub_register { sub_id = "n0/s1"; query_text = "q(X) :- r(X, Y), Y > 2" };
    Payload.Sub_registered { sub_id = "n0/s1"; accepted = true; reason = "" };
    Payload.Sub_registered
      { sub_id = "n0/s2"; accepted = false; reason = "registry full" };
    Payload.Sub_unregister { sub_id = "n0/s1" };
    Payload.Answer_delta
      { sub_id = "n0/s1"; adds = kitchen_sink_tuples; retracts = [ tup [ i 9 ] ];
        tag = "seed" };
    Payload.Answer_delta { sub_id = "n0/s1"; adds = []; retracts = []; tag = "" };
    Payload.Answer_batch { entries = [] };
    Payload.Answer_batch
      { entries =
          [
            { Payload.se_sub = "n0/s1"; se_adds = kitchen_sink_tuples;
              se_retracts = []; se_tag = "coalesced" };
            { Payload.se_sub = "n0/s2"; se_adds = [];
              se_retracts = [ tup [ i 3; s "gone" ] ]; se_tag = "u1 via r1 hop 2" };
          ] };
  ]

let test_payload_round_trip () =
  List.iter
    (fun p ->
      match Payload.decode (Payload.encode p) with
      | Ok p' -> Alcotest.(check bool) (Payload.describe p) true (p = p')
      | Error e -> Alcotest.failf "%s: decode failed: %s" (Payload.describe p) e)
    payload_samples

let test_encoded_size_is_real () =
  List.iter
    (fun p ->
      Alcotest.(check int) (Payload.describe p)
        (String.length (Payload.encode p))
        (Payload.encoded_size p))
    payload_samples

let test_dictionary_beats_estimator_on_skew () =
  (* many tuples sharing few distinct strings: the estimator charges
     every string at its first-occurrence cost, while the per-message
     dictionary back-references repeats, so the real encoding is
     strictly smaller — here by at least the 3 bytes each of the ~195
     repeated short strings saves *)
  let tuples = List.init 200 (fun k -> tup [ i k; s (Printf.sprintf "v%d" (k mod 5)) ]) in
  let p =
    Payload.Update_data { update_id = uid; rule_id = "r1"; tuples; hops = 1; global = true }
  in
  Alcotest.(check bool) "encoded beats the estimate by the dict savings" true
    (Payload.encoded_size p + 500 < Payload.size p)

let test_stats_response_not_encodable () =
  let stats = Codb_core.Stats.snapshot (Codb_core.Stats.create (Peer_id.of_string "n0")) in
  let p = Payload.Stats_response { stats } in
  (match Payload.encode p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Stats_response must not claim a binary encoding");
  Alcotest.(check bool) "estimator fallback still sizes it" true
    (Payload.encoded_size p > 0)

let test_malformed_input_rejected () =
  let reject label input =
    match Payload.decode input with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error _ -> ()
  in
  reject "empty" "";
  reject "unknown tag" "\xff";
  reject "truncated" (String.sub (Payload.encode (List.hd payload_samples)) 0 2);
  let valid = Payload.encode (List.hd payload_samples) in
  reject "trailing garbage" (valid ^ "\x00");
  (* a truncation point inside every sample must never crash, only Error *)
  List.iter
    (fun p ->
      let enc = Payload.encode p in
      for cut = 0 to String.length enc - 1 do
        match Payload.decode (String.sub enc 0 cut) with
        | Ok _ | Error _ -> ()
      done)
    payload_samples

(* Random payloads across every encodable variant: the size model must
   count exactly what [encode] emits, and decoding must invert it.
   Stats_response is the one (estimator-only) exception, covered by
   [test_stats_response_not_encodable]. *)
module Q2 = QCheck2
module Gen = QCheck2.Gen

let gen_small_string = Gen.(string_size ~gen:(char_range 'a' 'z') (int_range 0 12))

let gen_value =
  Gen.oneof
    [
      Gen.map (fun n -> Value.Int n) (Gen.int_range (-1000) 1000);
      Gen.map (fun f -> Value.Float f) (Gen.float_range (-10.0) 10.0);
      Gen.map (fun x -> Value.Str x) gen_small_string;
      Gen.map (fun b -> Value.Bool b) Gen.bool;
      Gen.map2
        (fun id rule -> Value.Null { Value.null_id = id; null_rule = rule })
        (Gen.int_range 0 50) gen_small_string;
      Gen.map (fun k -> Value.Hole k) (Gen.int_range 0 5);
    ]

let gen_tuple = Gen.map Array.of_list (Gen.list_size (Gen.int_range 1 4) gen_value)

let gen_tuples = Gen.list_size (Gen.int_range 0 5) gen_tuple

let gen_peer =
  Gen.map Peer_id.of_string
    (Gen.string_size ~gen:(Gen.char_range 'a' 'z') (Gen.int_range 1 8))

let gen_uid = Gen.map2 Ids.update_id gen_peer (Gen.int_range 0 100)

let gen_qid = Gen.map2 Ids.query_id gen_peer (Gen.int_range 0 100)

let gen_operand =
  Gen.oneof
    [
      Gen.map (fun c -> Payload.Specialize.Col c) (Gen.int_range 0 4);
      Gen.map (fun v -> Payload.Specialize.Const v) gen_value;
    ]

let gen_pred =
  Gen.map3
    (fun l op r -> { Payload.Specialize.p_left = l; p_op = op; p_right = r })
    gen_operand
    (Gen.oneofl
       [ Codb_cq.Query.Eq; Codb_cq.Query.Neq; Codb_cq.Query.Lt; Codb_cq.Query.Le;
         Codb_cq.Query.Gt; Codb_cq.Query.Ge ])
    gen_operand

let gen_constraints =
  Gen.oneof
    [
      Gen.return Payload.Specialize.any;
      Gen.map
        (fun alts -> Payload.Specialize.One_of alts)
        (Gen.list_size (Gen.int_range 0 3)
           (Gen.list_size (Gen.int_range 0 3) gen_pred));
    ]

let gen_batch_entry =
  Gen.map3
    (fun rule hops tuples ->
      { Payload.be_rule = rule; be_hops = hops; be_tuples = tuples })
    gen_small_string (Gen.int_range 0 9) gen_tuples

let gen_sub_entry =
  let open Gen in
  let* sub = gen_small_string in
  let* adds = gen_tuples in
  let* retracts = gen_tuples in
  let* tag = gen_small_string in
  return { Payload.se_sub = sub; se_adds = adds; se_retracts = retracts; se_tag = tag }

let gen_payload_flat =
  let open Gen in
  oneof
    [
      map2
        (fun u scope -> Payload.Update_request { update_id = u; scope })
        gen_uid
        (oneof
           [ return Payload.Global;
             map (fun r -> Payload.For_rule r) gen_small_string ]);
      (let* update_id = gen_uid in
       let* rule_id = gen_small_string in
       let* tuples = gen_tuples in
       let* hops = int_range 0 9 in
       let* global = bool in
       return (Payload.Update_data { update_id; rule_id; tuples; hops; global }));
      (let* update_id = gen_uid in
       let* entries = list_size (int_range 0 4) gen_batch_entry in
       let* global = bool in
       return (Payload.Update_batch { update_id; entries; global }));
      (let* update_id = gen_uid in
       let* rule_id = gen_small_string in
       let* global = bool in
       return (Payload.Update_link_closed { update_id; rule_id; global }));
      map (fun u -> Payload.Update_ack { update_id = u }) gen_uid;
      map (fun u -> Payload.Update_terminated { update_id = u }) gen_uid;
      (let* query_id = gen_qid in
       let* request_ref = gen_small_string in
       let* rule_id = gen_small_string in
       let* label = list_size (int_range 0 3) gen_peer in
       let* constraints = gen_constraints in
       return
         (Payload.Query_request { query_id; request_ref; rule_id; label; constraints }));
      (let* query_id = gen_qid in
       let* request_ref = gen_small_string in
       let* rule_id = gen_small_string in
       let* tuples = gen_tuples in
       return (Payload.Query_data { query_id; request_ref; rule_id; tuples }));
      (let* query_id = gen_qid in
       let* request_ref = gen_small_string in
       let* rule_id = gen_small_string in
       let* complete = bool in
       return (Payload.Query_done { query_id; request_ref; rule_id; complete }));
      map2
        (fun version text -> Payload.Rules_file { version; text })
        (int_range 0 99) gen_small_string;
      return Payload.Start_update;
      return Payload.Stats_request;
      (let* probe_id = gen_small_string in
       let* ttl = int_range 0 9 in
       let* path = list_size (int_range 0 3) gen_peer in
       return (Payload.Discovery_probe { probe_id; ttl; path }));
      (let* probe_id = gen_small_string in
       let* path = list_size (int_range 0 3) gen_peer in
       let* peers = list_size (int_range 0 3) gen_peer in
       return (Payload.Discovery_reply { probe_id; path; peers }));
      map (fun seq -> Payload.Seq_ack { seq }) (int_range 0 (1 lsl 20));
      map2
        (fun sub_id query_text -> Payload.Sub_register { sub_id; query_text })
        gen_small_string gen_small_string;
      map3
        (fun sub_id accepted reason ->
          Payload.Sub_registered { sub_id; accepted; reason })
        gen_small_string bool gen_small_string;
      map (fun sub_id -> Payload.Sub_unregister { sub_id }) gen_small_string;
      (let* sub_id = gen_small_string in
       let* adds = gen_tuples in
       let* retracts = gen_tuples in
       let* tag = gen_small_string in
       return (Payload.Answer_delta { sub_id; adds; retracts; tag }));
      map
        (fun entries -> Payload.Answer_batch { entries })
        (list_size (int_range 0 4) gen_sub_entry);
    ]

let gen_payload =
  let open Gen in
  oneof
    [
      gen_payload_flat;
      map2 (fun seq inner -> Payload.Seq { seq; inner }) (int_range 0 1000)
        gen_payload_flat;
    ]

let prop_encoded_size_exact =
  Q2.Test.make ~name:"encoded_size p = |encode p| on random payloads" ~count:500
    ~print:Payload.describe gen_payload
    (fun p -> Payload.encoded_size p = String.length (Payload.encode p))

let prop_decode_inverts_encode =
  Q2.Test.make ~name:"decode (encode p) = Ok p on random payloads" ~count:500
    ~print:Payload.describe gen_payload
    (fun p -> Payload.decode (Payload.encode p) = Ok p)

(* Fuzz hardening: decoding damaged bytes must be total — truncation
   at any point, or one flipped bit anywhere (which can turn a length
   prefix into a multi-gigabyte allocation count if the decoder trusts
   it), yields [Ok] or [Error], never an exception. *)
let gen_damaged =
  let open Gen in
  let* p = gen_payload in
  let enc = Payload.encode p in
  let* truncate = bool in
  if truncate then
    let* cut = int_range 0 (String.length enc) in
    return (String.sub enc 0 cut)
  else
    let* pos = int_range 0 (String.length enc - 1) in
    let* bit = int_range 0 7 in
    let b = Bytes.of_string enc in
    Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor (1 lsl bit)));
    return (Bytes.to_string b)

let prop_damaged_decode_total =
  Q2.Test.make ~name:"decode is total on truncated / bit-flipped input"
    ~count:2000
    ~print:(fun s -> Printf.sprintf "%S" s)
    gen_damaged
    (fun s -> match Payload.decode s with Ok _ | Error _ -> true)

(* --- link-level incremental dictionaries ---------------------------- *)

let test_link_roundtrip_and_shrink () =
  let d = Codec.Dict.sender () in
  let rc = Codec.Dict.receiver () in
  let p =
    Payload.Update_data
      {
        update_id = uid;
        rule_id = "r_common_rule_name";
        tuples = [ tup [ s "shared-string"; i 1 ] ];
        hops = 1;
        global = true;
      }
  in
  let first = Payload.encode ~link:d p in
  Alcotest.(check bool) "first message decodes" true
    (Payload.decode ~link:rc first = Ok p);
  let second = Payload.encode ~link:d p in
  Alcotest.(check bool) "second message decodes" true
    (Payload.decode ~link:rc second = Ok p);
  Alcotest.(check bool) "repeat message is smaller"
    true
    (String.length second < String.length first);
  Alcotest.(check bool) "back-references recorded" true (Codec.Dict.hits d > 0);
  Alcotest.(check int) "sizes stay exact" (String.length (Payload.encode ~link:d p))
    (Payload.encoded_size ~link:d p)

let test_link_desync_fails_closed () =
  let d = Codec.Dict.sender () in
  let rc = Codec.Dict.receiver () in
  let mk rule =
    Payload.Update_link_closed { update_id = uid; rule_id = rule; global = true }
  in
  let intro = Payload.encode ~link:d (mk "shared") in
  let backref = Payload.encode ~link:d (mk "shared") in
  (* the introduction is lost: the reference must dangle, not resolve *)
  ignore intro;
  (match Payload.decode ~link:rc backref with
  | Error _ -> ()
  | Ok p -> Alcotest.failf "dangling reference decoded as %s" (Payload.describe p));
  (* the sender learns the link broke: new epoch, literals return *)
  Codec.Dict.bump d;
  let fresh = Payload.encode ~link:d (mk "shared") in
  Alcotest.(check bool) "post-bump message decodes" true
    (Payload.decode ~link:rc fresh = Ok (mk "shared"))

let test_link_stale_epoch_dangles () =
  let d = Codec.Dict.sender () in
  let rc = Codec.Dict.receiver () in
  let mk rule =
    Payload.Update_link_closed { update_id = uid; rule_id = rule; global = true }
  in
  let m_intro = Payload.encode ~link:d (mk "x") in
  let m_ref = Payload.encode ~link:d (mk "x") in
  Codec.Dict.bump d;
  let m_new = Payload.encode ~link:d (mk "y") in
  Alcotest.(check bool) "old-epoch intro decodes" true
    (Payload.decode ~link:rc m_intro = Ok (mk "x"));
  Alcotest.(check bool) "new epoch adopted" true
    (Payload.decode ~link:rc m_new = Ok (mk "y"));
  (* the late pre-bump message references a table the receiver reset *)
  match Payload.decode ~link:rc m_ref with
  | Error _ -> ()
  | Ok p -> Alcotest.failf "stale reference decoded as %s" (Payload.describe p)

(* Size model under link dictionaries: two dictionaries trained by the
   same message sequence stay in lockstep, so [encoded_size ~link] on
   one predicts [encode ~link] on the other exactly, message after
   message. *)
let prop_encoded_size_exact_linked =
  Q2.Test.make ~name:"encoded_size ~link = |encode ~link| along random streams"
    ~count:200
    ~print:(fun ps -> String.concat "; " (List.map Payload.describe ps))
    Gen.(list_size (int_range 0 8) gen_payload)
    (fun ps ->
      let d_size = Codec.Dict.sender () in
      let d_enc = Codec.Dict.sender () in
      List.for_all
        (fun p ->
          Payload.encoded_size ~link:d_size p
          = String.length (Payload.encode ~link:d_enc p))
        ps)

(* The epoch-desync safety net: under any interleaving of losses and
   epoch bumps, a delivered message decodes to exactly what was sent or
   fails — never to a payload with a wrong string. *)
type link_event = Ld_deliver | Ld_drop | Ld_bump_then_deliver

let gen_link_plan =
  Gen.(
    list_size (int_range 0 20)
      (pair gen_payload
         (oneofl [ Ld_deliver; Ld_drop; Ld_bump_then_deliver ])))

let prop_link_desync_never_wrong =
  Q2.Test.make
    ~name:"link dictionaries never decode a wrong payload under loss/bumps"
    ~count:300 gen_link_plan
    (fun plan ->
      let d = Codec.Dict.sender () in
      let rc = Codec.Dict.receiver () in
      List.for_all
        (fun (p, ev) ->
          (match ev with Ld_bump_then_deliver -> Codec.Dict.bump d | _ -> ());
          let bytes = Payload.encode ~link:d p in
          match ev with
          | Ld_drop -> true (* the receiver never sees it *)
          | Ld_deliver | Ld_bump_then_deliver -> (
              match Payload.decode ~link:rc bytes with
              | Ok p' -> p' = p
              | Error _ -> true))
        plan)

let suite =
  [
    Alcotest.test_case "primitive round-trips" `Quick test_primitive_round_trip;
    Alcotest.test_case "nan round-trips" `Quick test_float_nan_round_trip;
    Alcotest.test_case "string dictionary compresses" `Quick
      test_string_dictionary_compresses;
    Alcotest.test_case "tuples round-trip (all Value variants)" `Quick
      test_tuples_round_trip;
    Alcotest.test_case "payloads round-trip" `Quick test_payload_round_trip;
    Alcotest.test_case "encoded_size = |encode|" `Quick test_encoded_size_is_real;
    Alcotest.test_case "dictionary beats the estimator on skew" `Quick
      test_dictionary_beats_estimator_on_skew;
    Alcotest.test_case "Stats_response stays estimator-sized" `Quick
      test_stats_response_not_encodable;
    Alcotest.test_case "malformed input rejected, never a crash" `Quick
      test_malformed_input_rejected;
    QCheck_alcotest.to_alcotest prop_encoded_size_exact;
    QCheck_alcotest.to_alcotest prop_decode_inverts_encode;
    QCheck_alcotest.to_alcotest prop_damaged_decode_total;
    Alcotest.test_case "link dict roundtrip and shrink" `Quick
      test_link_roundtrip_and_shrink;
    Alcotest.test_case "link dict desync fails closed" `Quick
      test_link_desync_fails_closed;
    Alcotest.test_case "link dict stale epoch dangles" `Quick
      test_link_stale_epoch_dangles;
    QCheck_alcotest.to_alcotest prop_encoded_size_exact_linked;
    QCheck_alcotest.to_alcotest prop_link_desync_never_wrong;
  ]
