(* The compact binary wire codec: primitive round-trips, value/tuple
   round-trips across every Value variant (marked nulls included),
   payload round-trips, dictionary compression, and rejection of
   malformed input. *)

open Helpers
module Codec = Codb_net.Codec
module Payload = Codb_core.Payload
module Ids = Codb_core.Ids
module Peer_id = Codb_net.Peer_id
module Value = Codb_relalg.Value

let uid = Ids.update_id (Peer_id.of_string "n0") 1

let qid = Ids.query_id (Peer_id.of_string "n0") 1

let test_primitive_round_trip () =
  let w = Codec.writer () in
  List.iter (Codec.varint w) [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  List.iter (Codec.zigzag w) [ 0; -1; 1; -64; 64; min_int + 1; max_int ];
  List.iter (Codec.float64 w) [ 0.0; -1.5; Float.pi; infinity; neg_infinity ];
  Codec.byte w 0xAB;
  Codec.raw_string w "";
  Codec.raw_string w "hello";
  let r = Codec.reader (Codec.contents w) in
  List.iter
    (fun n -> Alcotest.(check int) "varint" n (Codec.read_varint r))
    [ 0; 1; 127; 128; 300; 1 lsl 40 ];
  List.iter
    (fun n -> Alcotest.(check int) "zigzag" n (Codec.read_zigzag r))
    [ 0; -1; 1; -64; 64; min_int + 1; max_int ];
  List.iter
    (fun f ->
      Alcotest.(check bool) "float64" true (Float.equal f (Codec.read_float64 r)))
    [ 0.0; -1.5; Float.pi; infinity; neg_infinity ];
  Alcotest.(check int) "byte" 0xAB (Codec.read_byte r);
  Alcotest.(check string) "empty raw string" "" (Codec.read_raw_string r);
  Alcotest.(check string) "raw string" "hello" (Codec.read_raw_string r);
  Alcotest.(check bool) "fully consumed" true (Codec.at_end r)

let test_float_nan_round_trip () =
  let w = Codec.writer () in
  Codec.float64 w Float.nan;
  Alcotest.(check bool) "nan survives" true
    (Float.is_nan (Codec.read_float64 (Codec.reader (Codec.contents w))))

let test_string_dictionary_compresses () =
  let one_of s =
    let w = Codec.writer () in
    Codec.string w s;
    Codec.size w
  in
  let many_of s n =
    let w = Codec.writer () in
    for _ = 1 to n do
      Codec.string w s
    done;
    Codec.size w
  in
  let s = String.make 40 'x' in
  (* occurrences after the first cost a 1-byte back-reference, not 41 B *)
  Alcotest.(check int) "10 repeats = first + 9 refs" (one_of s + 9) (many_of s 10);
  (* and they decode back to the same string *)
  let w = Codec.writer () in
  Codec.string w s;
  Codec.string w "other";
  Codec.string w s;
  let r = Codec.reader (Codec.contents w) in
  Alcotest.(check string) "first" s (Codec.read_string r);
  Alcotest.(check string) "interleaved" "other" (Codec.read_string r);
  Alcotest.(check string) "back-reference" s (Codec.read_string r)

(* every Value variant, marked nulls (with their minting rule) and
   wire holes included *)
let kitchen_sink_tuples =
  [
    tup
      [
        i 0; i (-1); i 123456789; Value.Float 2.5; Value.Float (-0.0);
        s ""; s "repeated"; Value.Bool true; Value.Bool false;
      ];
    tup
      [
        Value.Null { Value.null_id = 7; null_rule = "r1" };
        Value.Null { Value.null_id = 8; null_rule = "r1" };
        Value.Hole 0; Value.Hole 3; s "repeated"; i max_int; i (min_int + 1);
      ];
  ]

let test_tuples_round_trip () =
  match Payload.decode_tuples (Payload.encode_tuples kitchen_sink_tuples) with
  | Ok tuples -> check_tuples "all variants round-trip" kitchen_sink_tuples tuples
  | Error e -> Alcotest.failf "decode_tuples failed: %s" e

let payload_samples =
  [
    Payload.Update_request { update_id = uid; scope = Payload.Global };
    Payload.Update_request { update_id = uid; scope = Payload.For_rule "r1" };
    Payload.Update_data
      { update_id = uid; rule_id = "r1"; tuples = kitchen_sink_tuples; hops = 3;
        global = true };
    Payload.Update_batch
      { update_id = uid;
        entries =
          [
            { Payload.be_rule = "r1"; be_hops = 2; be_tuples = kitchen_sink_tuples };
            { Payload.be_rule = "r2"; be_hops = 0; be_tuples = [] };
          ];
        global = false };
    Payload.Update_link_closed { update_id = uid; rule_id = "r1"; global = true };
    Payload.Update_ack { update_id = uid };
    Payload.Update_terminated { update_id = uid };
    Payload.Query_request
      { query_id = qid; request_ref = "n0/1"; rule_id = "r1";
        label = [ Peer_id.of_string "n0"; Peer_id.of_string "n1" ];
        constraints = Payload.Specialize.any };
    Payload.Query_request
      { query_id = qid; request_ref = "n0/2"; rule_id = "r1";
        label = [ Peer_id.of_string "n0" ];
        constraints =
          Payload.Specialize.(
            One_of
              [
                [
                  { p_left = Col 0; p_op = Codb_cq.Query.Eq; p_right = Const (i 7) };
                  { p_left = Col 1; p_op = Codb_cq.Query.Lt; p_right = Const (s "zz") };
                ];
                [ { p_left = Col 0; p_op = Codb_cq.Query.Neq; p_right = Col 2 } ];
              ]) };
    Payload.Query_data
      { query_id = qid; request_ref = "n0/1"; rule_id = "r1";
        tuples = [ tup [ i 1; s "x" ] ] };
    Payload.Query_done { query_id = qid; request_ref = "n0/1"; rule_id = "r1"; complete = true };
    Payload.Rules_file { version = 3; text = "node a { relation r(x: int); }" };
    Payload.Start_update;
    Payload.Stats_request;
    Payload.Discovery_probe
      { probe_id = "n0/1"; ttl = 3; path = [ Peer_id.of_string "n0" ] };
    Payload.Discovery_reply
      { probe_id = "n0/1"; path = []; peers = [ Peer_id.of_string "n1" ] };
    (* reliable-transport frames: the inner payload nests verbatim *)
    Payload.Seq
      { seq = 42;
        inner =
          Payload.Update_data
            { update_id = uid; rule_id = "r1"; tuples = kitchen_sink_tuples; hops = 1;
              global = true } };
    Payload.Seq { seq = 0; inner = Payload.Update_ack { update_id = uid } };
    Payload.Seq_ack { seq = 1 lsl 30 };
  ]

let test_payload_round_trip () =
  List.iter
    (fun p ->
      match Payload.decode (Payload.encode p) with
      | Ok p' -> Alcotest.(check bool) (Payload.describe p) true (p = p')
      | Error e -> Alcotest.failf "%s: decode failed: %s" (Payload.describe p) e)
    payload_samples

let test_encoded_size_is_real () =
  List.iter
    (fun p ->
      Alcotest.(check int) (Payload.describe p)
        (String.length (Payload.encode p))
        (Payload.encoded_size p))
    payload_samples

let test_dictionary_beats_estimator_on_skew () =
  (* many tuples sharing few distinct strings: the per-message
     dictionary makes the real encoding much smaller than the
     schema-based estimate *)
  let tuples = List.init 200 (fun k -> tup [ i k; s (Printf.sprintf "v%d" (k mod 5)) ]) in
  let p =
    Payload.Update_data { update_id = uid; rule_id = "r1"; tuples; hops = 1; global = true }
  in
  Alcotest.(check bool) "encoded < half the estimate" true
    (2 * Payload.encoded_size p < Payload.size p)

let test_stats_response_not_encodable () =
  let stats = Codb_core.Stats.snapshot (Codb_core.Stats.create (Peer_id.of_string "n0")) in
  let p = Payload.Stats_response { stats } in
  (match Payload.encode p with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "Stats_response must not claim a binary encoding");
  Alcotest.(check bool) "estimator fallback still sizes it" true
    (Payload.encoded_size p > 0)

let test_malformed_input_rejected () =
  let reject label input =
    match Payload.decode input with
    | Ok _ -> Alcotest.failf "%s: accepted" label
    | Error _ -> ()
  in
  reject "empty" "";
  reject "unknown tag" "\xff";
  reject "truncated" (String.sub (Payload.encode (List.hd payload_samples)) 0 2);
  let valid = Payload.encode (List.hd payload_samples) in
  reject "trailing garbage" (valid ^ "\x00");
  (* a truncation point inside every sample must never crash, only Error *)
  List.iter
    (fun p ->
      let enc = Payload.encode p in
      for cut = 0 to String.length enc - 1 do
        match Payload.decode (String.sub enc 0 cut) with
        | Ok _ | Error _ -> ()
      done)
    payload_samples

let suite =
  [
    Alcotest.test_case "primitive round-trips" `Quick test_primitive_round_trip;
    Alcotest.test_case "nan round-trips" `Quick test_float_nan_round_trip;
    Alcotest.test_case "string dictionary compresses" `Quick
      test_string_dictionary_compresses;
    Alcotest.test_case "tuples round-trip (all Value variants)" `Quick
      test_tuples_round_trip;
    Alcotest.test_case "payloads round-trip" `Quick test_payload_round_trip;
    Alcotest.test_case "encoded_size = |encode|" `Quick test_encoded_size_is_real;
    Alcotest.test_case "dictionary beats the estimator on skew" `Quick
      test_dictionary_beats_estimator_on_skew;
    Alcotest.test_case "Stats_response stays estimator-sized" `Quick
      test_stats_response_not_encodable;
    Alcotest.test_case "malformed input rejected, never a crash" `Quick
      test_malformed_input_rejected;
  ]
