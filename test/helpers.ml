(* Shared helpers for the test suites. *)

module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple
module Schema = Codb_relalg.Schema
module Relation = Codb_relalg.Relation
module Database = Codb_relalg.Database
module Term = Codb_cq.Term
module Atom = Codb_cq.Atom
module Query = Codb_cq.Query
module Parser = Codb_cq.Parser
module Config = Codb_cq.Config
module Eval = Codb_cq.Eval

let i n = Value.Int n

let s x = Value.Str x

let tup values = Array.of_list values

let v name = Term.Var name

let c value = Term.Cst value

let atom rel args = Atom.make rel args

let parse_query text =
  match Parser.parse_query text with
  | Ok q -> q
  | Error e -> Alcotest.failf "parse_query %S: %s" text e

let parse_config text =
  match Parser.load_config text with
  | Ok cfg -> cfg
  | Error errors ->
      Alcotest.failf "load_config: %s" (String.concat "; " errors)

let tuple_testable : Tuple.t Alcotest.testable =
  Alcotest.testable Tuple.pp Tuple.equal

let tuples_testable = Alcotest.list tuple_testable

let sorted_tuples ts = List.sort Tuple.compare ts

let check_tuples msg expected actual =
  Alcotest.check tuples_testable msg (sorted_tuples expected) (sorted_tuples actual)

let db_of schemas rows =
  let db = Database.create schemas in
  List.iter (fun (rel, tuple) -> ignore (Database.insert db rel tuple)) rows;
  db

(* A tiny two-relation schema used across evaluator tests. *)
let r_schema = Schema.make "r" [ ("a", Value.Tint); ("b", Value.Tint) ]

let s_schema = Schema.make "s" [ ("b", Value.Tint); ("c", Value.Tstring) ]
