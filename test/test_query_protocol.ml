(* White-box tests of the query-answering diffusion, driving
   [Query_engine.handle] directly through a stub runtime. *)

open Helpers
module Query_engine = Codb_core.Query_engine
module Node = Codb_core.Node
module Runtime = Codb_core.Runtime
module Options = Codb_core.Options
module Payload = Codb_core.Payload
module Ids = Codb_core.Ids
module Peer_id = Codb_net.Peer_id

let middle_config =
  {|
node down { relation r(x: int); }
node me { relation r(x: int); fact r(1); }
node up { relation r(x: int); fact r(2); }
rule to_down at down: r(x) <- me: r(x);
rule from_up at me: r(x) <- up: r(x);
|}

type sent = { dst : string; payload : Payload.t }

let make_runtime ?(name = "me") config_text =
  let cfg = parse_config config_text in
  let decl = Option.get (Config.node cfg name) in
  let node = Node.create decl in
  Node.set_rules node
    ~outgoing:(Config.rules_importing_at cfg name)
    ~incoming:(Config.rules_sourced_at cfg name);
  let outbox = ref [] in
  let rt =
    {
      Runtime.node;
      opts = Options.default;
      send =
        (fun ~dst payload ->
          outbox := { dst = Peer_id.to_string dst; payload } :: !outbox;
          true);
      now = (fun () -> 0.0);
      schedule = (fun ~delay:_ action -> action ());
      connect = (fun _ -> ());
      disconnect = (fun _ -> ());
      neighbours = (fun () -> []);
    }
  in
  (rt, node, outbox)

let drain outbox =
  let m = List.rev !outbox in
  outbox := [];
  m

let qid = Ids.query_id (Peer_id.of_string "down") 1

let peer = Peer_id.of_string

let request ?(label = [ peer "down" ]) ?(constraints = Payload.Specialize.any) ~ref_
    rule_id =
  Payload.Query_request { query_id = qid; request_ref = ref_; rule_id; label; constraints }

let test_responder_serves_and_fans_out () =
  let rt, _, outbox = make_runtime middle_config in
  Query_engine.handle rt ~src:(peer "down") ~bytes:80 (request ~ref_:"q1" "to_down");
  let messages = drain outbox in
  (* initial answers from local data to the requester *)
  Alcotest.(check bool) "initial data" true
    (List.exists
       (fun m ->
         match m.payload with
         | Payload.Query_data { request_ref = "q1"; tuples; _ } ->
             m.dst = "down" && List.length tuples = 1
         | _ -> false)
       messages);
  (* a sub-request to up, labelled with the extended path *)
  Alcotest.(check bool) "sub-request labelled" true
    (List.exists
       (fun m ->
         match m.payload with
         | Payload.Query_request { rule_id = "from_up"; label; _ } ->
             m.dst = "up"
             && List.map Peer_id.to_string label = [ "down"; "me" ]
         | _ -> false)
       messages);
  (* not done yet: a sub-request is pending *)
  Alcotest.(check int) "no done yet" 0
    (List.length
       (List.filter
          (fun m -> match m.payload with Payload.Query_done _ -> true | _ -> false)
          messages))

let test_label_stops_fan_out () =
  (* the requester chain already visited "up": no sub-request may go
     back there, so the responder answers and completes immediately *)
  let rt, _, outbox = make_runtime middle_config in
  Query_engine.handle rt ~src:(peer "down") ~bytes:80
    (request ~label:[ peer "up"; peer "down" ] ~ref_:"q2" "to_down");
  let messages = drain outbox in
  Alcotest.(check int) "no sub-requests" 0
    (List.length
       (List.filter
          (fun m -> match m.payload with Payload.Query_request _ -> true | _ -> false)
          messages));
  Alcotest.(check bool) "done sent" true
    (List.exists
       (fun m ->
         match m.payload with
         | Payload.Query_done { request_ref = "q2"; _ } -> m.dst = "down"
         | _ -> false)
       messages)

let test_streams_deltas_then_done () =
  let rt, _, outbox = make_runtime middle_config in
  Query_engine.handle rt ~src:(peer "down") ~bytes:80 (request ~ref_:"q3" "to_down");
  let first = drain outbox in
  let sub_ref =
    List.find_map
      (fun m ->
        match m.payload with
        | Payload.Query_request { request_ref; _ } -> Some request_ref
        | _ -> None)
      first
    |> Option.get
  in
  (* up answers with new data: integrated into the overlay, the fresh
     derivation streams to down *)
  Query_engine.handle rt ~src:(peer "up") ~bytes:60
    (Payload.Query_data
       { query_id = qid; request_ref = sub_ref; rule_id = "from_up";
         tuples = [ tup [ i 2 ] ] });
  let after_data = drain outbox in
  Alcotest.(check bool) "delta forwarded" true
    (List.exists
       (fun m ->
         match m.payload with
         | Payload.Query_data { request_ref = "q3"; tuples; _ } ->
             m.dst = "down" && List.exists (Tuple.equal (tup [ i 2 ])) tuples
         | _ -> false)
       after_data);
  (* duplicate data is not re-forwarded *)
  Query_engine.handle rt ~src:(peer "up") ~bytes:60
    (Payload.Query_data
       { query_id = qid; request_ref = sub_ref; rule_id = "from_up";
         tuples = [ tup [ i 2 ] ] });
  Alcotest.(check int) "duplicate suppressed" 0 (List.length (drain outbox));
  (* the sub-query completes: the responder signals done upstream *)
  Query_engine.handle rt ~src:(peer "up") ~bytes:20
    (Payload.Query_done { query_id = qid; request_ref = sub_ref; rule_id = "from_up"; complete = true });
  let final = drain outbox in
  Alcotest.(check bool) "done propagated" true
    (List.exists
       (fun m ->
         match m.payload with
         | Payload.Query_done { request_ref = "q3"; _ } -> m.dst = "down"
         | _ -> false)
       final)

let test_unknown_rule_answers_done () =
  let rt, _, outbox = make_runtime middle_config in
  Query_engine.handle rt ~src:(peer "down") ~bytes:80 (request ~ref_:"q4" "no_such_rule");
  match drain outbox with
  | [ { dst = "down"; payload = Payload.Query_done { request_ref = "q4"; _ } } ] -> ()
  | _ -> Alcotest.fail "expected an immediate done"

let test_stale_messages_ignored () =
  let rt, _, outbox = make_runtime middle_config in
  (* data and done for a reference never issued *)
  Query_engine.handle rt ~src:(peer "up") ~bytes:60
    (Payload.Query_data
       { query_id = qid; request_ref = "ghost"; rule_id = "from_up";
         tuples = [ tup [ i 7 ] ] });
  Query_engine.handle rt ~src:(peer "up") ~bytes:20
    (Payload.Query_done { query_id = qid; request_ref = "ghost"; rule_id = "from_up"; complete = true });
  Alcotest.(check int) "nothing sent" 0 (List.length (drain outbox))

let suite =
  [
    Alcotest.test_case "responder serves and fans out" `Quick
      test_responder_serves_and_fans_out;
    Alcotest.test_case "labels stop the fan-out" `Quick test_label_stops_fan_out;
    Alcotest.test_case "deltas stream, then done" `Quick test_streams_deltas_then_done;
    Alcotest.test_case "unknown rule answers done" `Quick test_unknown_rule_answers_done;
    Alcotest.test_case "stale messages ignored" `Quick test_stale_messages_ignored;
  ]
