(* Wire-layer behaviour of the global update: the four corners of the
   (batching x bloom) ablation must commit bit-identical stores on
   random networks, and batching must actually reduce traffic on a
   fan-in workload. *)

module Q2 = QCheck2
module Gen = QCheck2.Gen
module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Node = Codb_core.Node
module Network = Codb_net.Network
module Datagen = Codb_workload.Datagen

(* tight bounds everywhere: bloom filters small enough to produce
   false positives, rings small enough to evict (forcing re-sends),
   windows long enough to span several delta waves *)
let corner ~batched ~bloom =
  {
    Options.default with
    Options.batch_window = (if batched then 0.02 else 0.0);
    batch_max_tuples = 16;
    sent_bloom_bits = (if bloom then 256 else 0);
    sent_ring_capacity = 4;
  }

let corners =
  [
    ("plain", corner ~batched:false ~bloom:false);
    ("batched", corner ~batched:true ~bloom:false);
    ("bloom", corner ~batched:false ~bloom:true);
    ("batched+bloom", corner ~batched:true ~bloom:true);
  ]

let gen_network =
  let open Gen in
  let* shape =
    oneofl
      [ Topology.Chain; Topology.Ring; Topology.Star_in; Topology.Star_out;
        Topology.Binary_tree; Topology.Clique ]
  in
  let* n = int_range 2 5 in
  let* seed = int_range 0 10000 in
  let* skew = oneofl [ 0.0; 1.0 ] in
  (* existential heads mint per-run null ids, which by construction
     differ between runs with different event orders; the equivalence
     below is about tuples actually exchanged, so keep heads plain *)
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = 8;
      profile = { Datagen.domain_size = 12; skew };
    }
  in
  return (shape, n, seed, params)

let run_corner (shape, n, seed, params) opts =
  let sys = System.build_exn ~opts (Topology.generate ~params ~seed shape ~n) in
  let uid = System.run_update sys ~initiator:"n0" in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  (sys, report)

let stores_equal sys_a sys_b =
  List.for_all
    (fun name ->
      Codb_relalg.Database.equal_contents (System.node sys_a name).Node.store
        (System.node sys_b name).Node.store)
    (System.node_names sys_a)

let prop_corners_commit_identical_stores =
  Q2.Test.make
    ~name:"batching x bloom: every corner reaches the plain fix-point" ~count:30
    gen_network
    (fun spec ->
      let baseline, base_report = run_corner spec (snd (List.hd corners)) in
      base_report.Report.ur_all_finished
      && List.for_all
           (fun (_, opts) ->
             let sys, report = run_corner spec opts in
             report.Report.ur_all_finished && stores_equal baseline sys)
           (List.tl corners))

let prop_batching_never_ships_more_tuples =
  (* an uncapped window merges whole waves: it can only remove
     messages, and — because the fix-point is the same set union
     either way — commits exactly as many new tuples *)
  Q2.Test.make ~name:"batching only removes messages, never adds tuples" ~count:30
    gen_network
    (fun spec ->
      let _, plain = run_corner spec Options.default in
      let _, batched =
        run_corner spec { Options.default with Options.batch_window = 0.02 }
      in
      batched.Report.ur_data_msgs <= plain.Report.ur_data_msgs
      && batched.Report.ur_new_tuples = plain.Report.ur_new_tuples)

(* deterministic fan-in workload: every node hears the same closure
   from several neighbours in a short interval *)
let clique_spec =
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = 20;
      profile = { Datagen.domain_size = 15; skew = 1.0 };
    }
  in
  (Topology.Clique, 5, 42, params)

let test_batching_reduces_traffic () =
  let messages_and_bytes opts =
    let sys, report = run_corner clique_spec opts in
    let c = Network.counters (System.net sys) in
    (report.Report.ur_data_msgs, c.Network.total_bytes, sys)
  in
  let plain_msgs, plain_bytes, plain_sys =
    messages_and_bytes { Options.default with Options.batch_window = 0.0 }
  in
  let batched_msgs, batched_bytes, batched_sys =
    messages_and_bytes
      { Options.default with Options.batch_window = 10.0 *. Options.default.Options.latency }
  in
  Alcotest.(check bool)
    (Printf.sprintf "fewer data messages (%d -> %d)" plain_msgs batched_msgs)
    true
    (batched_msgs * 2 <= plain_msgs);
  Alcotest.(check bool)
    (Printf.sprintf "fewer wire bytes (%d -> %d)" plain_bytes batched_bytes)
    true
    (batched_bytes < plain_bytes);
  Alcotest.(check bool) "same stores" true (stores_equal plain_sys batched_sys)

let test_batch_counters_flow_to_report () =
  let sys, report =
    run_corner clique_spec
      { Options.default with Options.batch_window = 10.0 *. Options.default.Options.latency }
  in
  let uid = report.Report.ur_update in
  Alcotest.(check bool) "batches counted" true (report.Report.ur_batches > 0);
  Alcotest.(check bool) "batch tuples counted" true
    (report.Report.ur_batch_tuples >= report.Report.ur_batches);
  let wire = Option.get (Report.wire_report (System.snapshots sys) uid) in
  Alcotest.(check int) "wire report mirrors batches" report.Report.ur_batches
    wire.Report.wr_batches;
  Alcotest.(check bool) "avg batch size positive" true (wire.Report.wr_avg_batch > 0.0)

let test_max_tuples_flushes_early () =
  (* a window far longer than the whole run: only the size cap can
     flush, and the update must still terminate *)
  let sys, report =
    run_corner clique_spec
      { Options.default with Options.batch_window = 1000.0; batch_max_tuples = 8 }
  in
  Alcotest.(check bool) "terminates through size-cap flushes" true
    report.Report.ur_all_finished;
  let plain_sys, _ = run_corner clique_spec Options.default in
  Alcotest.(check bool) "same stores" true (stores_equal plain_sys sys)

let suite =
  [
    Alcotest.test_case "batching reduces clique traffic" `Quick
      test_batching_reduces_traffic;
    Alcotest.test_case "batch counters reach the report" `Quick
      test_batch_counters_flow_to_report;
    Alcotest.test_case "size cap flushes ahead of the window" `Quick
      test_max_tuples_flushes_early;
    QCheck_alcotest.to_alcotest prop_corners_commit_identical_stores;
    QCheck_alcotest.to_alcotest prop_batching_never_ships_more_tuples;
  ]
