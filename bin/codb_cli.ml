(* codb — command-line front end.

   Subcommands:
     validate  check a network file
     generate  emit a synthetic network file for a given topology
     update    run a global update and print the super-peer report
     query     answer a conjunctive query at a node
     explain   print the cost-based evaluation plan for a query
     cache     exercise the query-answer cache on a repeated workload
     wire      run a global update and report its wire behaviour
     chaos     run under a deterministic fault plan and report resilience
     sub       register a standing query and watch its answer deltas live
     discover  run topology discovery from a node
     info      print the parsed network structure

   The network file syntax is documented in lib/cq/parser.mli and the
   README. *)

module System = Codb_core.System
module Options = Codb_core.Options
module Topology = Codb_core.Topology
module Report = Codb_core.Report
module Parser = Codb_cq.Parser
module Pretty = Codb_cq.Pretty
module Config = Codb_cq.Config
module Tuple = Codb_relalg.Tuple
module Peer_id = Codb_net.Peer_id

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let contents = really_input_string ic n in
  close_in ic;
  contents

let load_system ?opts path =
  match Parser.load_config (read_file path) with
  | Ok cfg -> Ok (System.build_exn ?opts cfg)
  | Error errors -> Error (String.concat "\n" errors)

let or_die = function
  | Ok v -> v
  | Error message ->
      prerr_endline message;
      exit 1

(* --- validate ------------------------------------------------------ *)

let validate_cmd file =
  match Parser.load_config (read_file file) with
  | Ok cfg ->
      Fmt.pr "%s: OK (%d nodes, %d rules)@." file
        (List.length cfg.Config.nodes)
        (List.length cfg.Config.rules);
      0
  | Error errors ->
      List.iter (Fmt.epr "%s@.") errors;
      1

(* --- generate ------------------------------------------------------ *)

let shape_of_string s ~rows ~cols ~p =
  match s with
  | "chain" -> Ok Topology.Chain
  | "ring" -> Ok Topology.Ring
  | "star-in" -> Ok Topology.Star_in
  | "star-out" -> Ok Topology.Star_out
  | "tree" -> Ok Topology.Binary_tree
  | "grid" -> Ok (Topology.Grid (rows, cols))
  | "random" -> Ok (Topology.Random_graph p)
  | "clique" -> Ok Topology.Clique
  | other -> Error (Printf.sprintf "unknown shape %s" other)

let generate_cmd shape n seed tuples existential comparison rows cols p =
  let shape = or_die (shape_of_string shape ~rows ~cols ~p) in
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = tuples;
      existential_frac = existential;
      comparison_frac = comparison;
    }
  in
  let cfg = Topology.generate ~params ~seed shape ~n in
  print_string (Pretty.config_to_string cfg);
  0

(* --- update -------------------------------------------------------- *)

let update_cmd file initiator verbose show_trace zone_maps =
  let opts = { Options.default with Options.zone_maps } in
  let sys = or_die (load_system ~opts file) in
  let trace = if show_trace then Some (System.enable_trace sys) else None in
  let initiator =
    match initiator with
    | Some name -> name
    | None -> List.hd (System.node_names sys)
  in
  let uid = System.run_update sys ~initiator in
  let snaps = System.snapshots sys in
  (match Report.update_report snaps uid with
  | Some report -> Fmt.pr "%a@." Report.pp_update_report report
  | None -> Fmt.pr "no statistics recorded?@.");
  if verbose then Fmt.pr "@.%a@." Report.pp_network snaps;
  (match trace with
  | Some t -> Fmt.pr "@.protocol trace:@.%a@." Codb_core.Trace.pp t
  | None -> ());
  0

(* --- query --------------------------------------------------------- *)

let parse_query_or_die text =
  match Parser.parse_query text with
  | Ok q -> q
  | Error e ->
      prerr_endline e;
      exit 1

let query_cmd file at text after_update scoped certain_only use_cache pushdown
    zone_maps repeat =
  let opts = if use_cache then Options.with_cache else Options.default in
  let opts = { opts with Options.pushdown; zone_maps } in
  let sys = or_die (load_system ~opts file) in
  let q = parse_query_or_die text in
  let answers =
    if scoped then begin
      let _ = System.run_scoped_update sys ~at q in
      System.local_answers sys ~at q
    end
    else if after_update then begin
      let _ = System.run_update sys ~initiator:at in
      System.local_answers sys ~at q
    end
    else begin
      let outcome = ref (System.run_query sys ~at q) in
      for _ = 2 to max 1 repeat do
        outcome := System.run_query sys ~at q
      done;
      let outcome = !outcome in
      Fmt.pr "(fetched with %d data messages, %.4fs simulated)@."
        outcome.System.qo_data_msgs
        (outcome.System.qo_finished -. outcome.System.qo_started);
      if pushdown then
        Option.iter
          (Fmt.pr "%a@." Report.pp_pushdown_report)
          (Report.pushdown_report (System.snapshots sys) outcome.System.qo_id);
      outcome.System.qo_answers
    end
  in
  let answers = if certain_only then Codb_cq.Eval.certain answers else answers in
  List.iter (fun t -> Fmt.pr "%a@." Tuple.pp t) answers;
  Fmt.pr "%d answer(s)@." (List.length answers);
  if zone_maps then begin
    let visited, pruned =
      List.fold_left
        (fun acc (s : Codb_core.Stats.snapshot) ->
          let acc =
            List.fold_left
              (fun (v, p) (q : Codb_core.Stats.query_snap) ->
                (v + q.Codb_core.Stats.qsn_zvisited, p + q.Codb_core.Stats.qsn_zpruned))
              acc s.Codb_core.Stats.snap_queries
          in
          List.fold_left
            (fun (v, p) (u : Codb_core.Stats.update_snap) ->
              (v + u.Codb_core.Stats.usn_zvisited, p + u.Codb_core.Stats.usn_zpruned))
            acc s.Codb_core.Stats.snap_updates)
        (0, 0) (System.snapshots sys)
    in
    Fmt.pr "zone maps: %d chunk(s) consulted, %d pruned@." visited pruned
  end;
  if use_cache then Fmt.pr "%a@." Report.pp_cache_report (Report.cache_report (System.snapshots sys));
  0

(* --- explain ------------------------------------------------------- *)

let explain_cmd file at text legacy max_probe_cols pushdown =
  let sys = or_die (load_system file) in
  let q = parse_query_or_die text in
  (match Codb_cq.Query.well_formed ~allow_existential_head:false q with
  | Ok () -> ()
  | Error reason ->
      prerr_endline ("explain: " ^ reason);
      exit 1);
  let store = (System.node sys at).Codb_core.Node.store in
  let opts = System.opts sys in
  let source =
    Codb_cq.Eval.of_database ~index_budget:opts.Options.index_budget store
  in
  if legacy then Fmt.pr "planner disabled: legacy left-to-right greedy order@."
  else begin
    let plan =
      Codb_cq.Eval.plan_for ?max_probe_cols source q
    in
    Fmt.pr "%s@." (Codb_cq.Plan.explain q plan)
  end;
  if pushdown then
    List.iter
      (fun rel ->
        Fmt.pr "push to %s: %a@." rel Codb_cq.Specialize.pp
          (Codb_cq.Specialize.of_query q ~rel))
      (Codb_cq.Query.body_relations q);
  0

(* --- cache --------------------------------------------------------- *)

let cache_cmd file at text repeat update_between capacity max_bytes ttl no_containment =
  let opts =
    {
      Options.with_cache with
      Options.cache_capacity = capacity;
      cache_max_bytes = max_bytes;
      cache_ttl = ttl;
      cache_containment = not no_containment;
    }
  in
  let sys = or_die (load_system ~opts file) in
  let q = parse_query_or_die text in
  for i = 1 to max 1 repeat do
    let before = (Codb_net.Network.counters (System.net sys)).Codb_net.Network.delivered in
    let outcome = System.run_query sys ~at q in
    let after = (Codb_net.Network.counters (System.net sys)).Codb_net.Network.delivered in
    Fmt.pr "run %d: %d answer(s), %d data message(s), %d network message(s), %.4fs@." i
      (List.length outcome.System.qo_answers)
      outcome.System.qo_data_msgs (after - before)
      (outcome.System.qo_finished -. outcome.System.qo_started);
    if update_between && i < repeat then begin
      let _ = System.run_update sys ~initiator:at in
      Fmt.pr "run %d: global update committed (caches invalidated)@." i
    end
  done;
  Fmt.pr "%a@." Report.pp_cache_report (Report.cache_report (System.snapshots sys));
  let c = Codb_net.Network.counters (System.net sys) in
  Fmt.pr "network: %d delivered, %d dropped, %d B carried, %d B dropped@."
    c.Codb_net.Network.delivered c.Codb_net.Network.dropped
    c.Codb_net.Network.total_bytes c.Codb_net.Network.dropped_bytes;
  0

(* --- wire ---------------------------------------------------------- *)

let wire_cmd file initiator estimator link_dicts batch_window batch_max bloom_bits
    ring_capacity =
  let opts =
    {
      Options.default with
      Options.wire_codec = not estimator;
      link_dicts;
      batch_window;
      batch_max_tuples = batch_max;
      sent_bloom_bits = bloom_bits;
      sent_ring_capacity = ring_capacity;
    }
  in
  (match Options.validate opts with
  | Ok () -> ()
  | Error errors ->
      List.iter prerr_endline errors;
      exit 1);
  let sys = or_die (load_system ~opts file) in
  let initiator =
    match initiator with
    | Some name -> name
    | None -> List.hd (System.node_names sys)
  in
  let uid = System.run_update sys ~initiator in
  (match Report.wire_report (System.snapshots sys) uid with
  | Some w -> Fmt.pr "%a@." Report.pp_wire_report w
  | None -> Fmt.pr "no statistics recorded?@.");
  let c = Codb_net.Network.counters (System.net sys) in
  Fmt.pr "network: %d message(s) delivered, %d B carried%s@." c.Codb_net.Network.delivered
    c.Codb_net.Network.total_bytes
    (if estimator then " (estimated sizes)" else " (encoded sizes)");
  if link_dicts then
    Fmt.pr "%a@." Codb_net.Link_dict.pp_stats (System.link_dict_stats sys);
  0

(* --- chaos --------------------------------------------------------- *)

let parse_flap spec =
  match String.split_on_char ':' spec with
  | [ a; b; down; up ] -> (
      match (float_of_string_opt down, float_of_string_opt up) with
      | Some down, Some up -> Ok (a, b, down, up)
      | _ -> Error (Printf.sprintf "bad flap times in %S" spec))
  | _ -> Error (Printf.sprintf "bad flap %S (expected a:b:down:up)" spec)

let parse_crash spec =
  match String.split_on_char ':' spec with
  | [ node; at ] -> (
      match float_of_string_opt at with
      | Some at -> Ok (node, at, None)
      | None -> Error (Printf.sprintf "bad crash time in %S" spec))
  | [ node; at; restart ] -> (
      match (float_of_string_opt at, float_of_string_opt restart) with
      | Some at, Some restart -> Ok (node, at, Some restart)
      | _ -> Error (Printf.sprintf "bad crash times in %S" spec))
  | _ -> Error (Printf.sprintf "bad crash %S (expected node:at[:restart])" spec)

let parse_all parse specs =
  List.fold_left
    (fun acc spec -> Result.bind acc (fun l -> Result.map (fun x -> x :: l) (parse spec)))
    (Ok []) specs
  |> Result.map List.rev

let chaos_cmd file initiator seed drop dup jitter budget flaps crashes ack_timeout
    max_retries backoff link_dicts query at =
  let opts =
    {
      Options.default with
      Options.link_dicts;
      fault_seed = seed;
      drop_prob = drop;
      dup_prob = dup;
      jitter;
      drop_budget = (match budget with Some b -> b | None -> max_int);
      flap_plan = or_die (parse_all parse_flap flaps);
      crash_plan = or_die (parse_all parse_crash crashes);
      ack_timeout;
      max_retries;
      backoff_factor = backoff;
    }
  in
  (match Options.validate opts with
  | Ok () -> ()
  | Error errors ->
      List.iter prerr_endline errors;
      exit 1);
  let sys = or_die (load_system ~opts file) in
  let initiator =
    match initiator with
    | Some name -> name
    | None -> List.hd (System.node_names sys)
  in
  let uid = System.run_update sys ~initiator in
  (match Report.update_report (System.snapshots sys) uid with
  | Some report -> Fmt.pr "%a@." Report.pp_update_report report
  | None -> Fmt.pr "no statistics recorded?@.");
  (match query with
  | None -> ()
  | Some text ->
      let q = parse_query_or_die text in
      let at = match at with Some at -> at | None -> initiator in
      let outcome = System.run_query sys ~at q in
      Fmt.pr "@.query at %s: %d answer(s), %s@." at
        (List.length outcome.System.qo_answers)
        (if outcome.System.qo_complete then "complete"
         else "INCOMPLETE (some sub-requests failed)"));
  Fmt.pr "@.%a@." Report.pp_chaos_report (Report.chaos_report (System.snapshots sys));
  let c = Codb_net.Network.counters (System.net sys) in
  Fmt.pr
    "network: %d delivered, %d injected drop(s), %d injected dup(s), %d flap(s), %d \
     crash(es), %d restart(s)@."
    c.Codb_net.Network.delivered c.Codb_net.Network.injected_drops
    c.Codb_net.Network.injected_dups c.Codb_net.Network.injected_flaps
    c.Codb_net.Network.crashes c.Codb_net.Network.restarts;
  if link_dicts then
    Fmt.pr "%a@." Codb_net.Link_dict.pp_stats (System.link_dict_stats sys);
  0

(* --- recover -------------------------------------------------------- *)

let recover_cmd file initiator seed crashes durability wal_dir snapshot_every
    fsync ack_timeout max_retries =
  let opts =
    {
      Options.default with
      Options.fault_seed = seed;
      crash_plan = or_die (parse_all parse_crash crashes);
      ack_timeout;
      max_retries;
      durability;
      wal_dir;
      snapshot_every;
      fsync;
    }
  in
  (match Options.validate opts with
  | Ok () -> ()
  | Error errors ->
      List.iter prerr_endline errors;
      exit 1);
  let sys = or_die (load_system ~opts file) in
  let initiator =
    match initiator with
    | Some name -> name
    | None -> List.hd (System.node_names sys)
  in
  let uid = System.run_update sys ~initiator in
  (match Report.update_report (System.snapshots sys) uid with
  | Some report -> Fmt.pr "%a@." Report.pp_update_report report
  | None -> Fmt.pr "no statistics recorded?@.");
  (* the fault-free reference: same network, no crashes, no durability
     machinery — the recovered run must land on the same stores *)
  let reference = or_die (load_system ~opts:Options.default file) in
  let _ = System.run_update reference ~initiator in
  let diverged =
    List.filter
      (fun name -> System.store_digest sys name <> System.store_digest reference name)
      (System.node_names sys)
  in
  (match diverged with
  | [] -> Fmt.pr "@.stores: every node matches the fault-free reference@."
  | names ->
      Fmt.pr "@.stores: DIVERGED from the fault-free reference at %s@."
        (String.concat ", " names));
  let dr = System.durability_report sys in
  Fmt.pr
    "durability: %d WAL record(s) (%d B), %d snapshot(s) (%d B), %d \
     recovery(ies) replaying %d record(s) (%d B) in %.3f ms@."
    dr.System.dr_wal_records dr.System.dr_wal_bytes dr.System.dr_snapshots
    dr.System.dr_snapshot_bytes dr.System.dr_recoveries
    dr.System.dr_recovered_records dr.System.dr_replayed_bytes
    dr.System.dr_recovery_ms;
  Fmt.pr "%a@." Report.pp_chaos_report (Report.chaos_report (System.snapshots sys));
  let c = Codb_net.Network.counters (System.net sys) in
  Fmt.pr "network: %d delivered, %d crash(es), %d restart(s)@."
    c.Codb_net.Network.delivered c.Codb_net.Network.crashes
    c.Codb_net.Network.restarts;
  if diverged = [] then 0 else 1

(* --- sub ----------------------------------------------------------- *)

let parse_insert_value s =
  match int_of_string_opt s with
  | Some n -> Codb_relalg.Value.Int n
  | None -> (
      match float_of_string_opt s with
      | Some f -> Codb_relalg.Value.Float f
      | None -> (
          match bool_of_string_opt s with
          | Some b -> Codb_relalg.Value.Bool b
          | None -> Codb_relalg.Value.Str s))

(* REL:V1,V2[@NODE] — the fact to insert and (optionally) where *)
let parse_insert spec =
  match String.index_opt spec ':' with
  | None -> Error (Printf.sprintf "bad insert %S (expected rel:v1,v2[@node])" spec)
  | Some i ->
      let rel = String.sub spec 0 i in
      let rest = String.sub spec (i + 1) (String.length spec - i - 1) in
      let rest, node =
        match String.index_opt rest '@' with
        | Some j ->
            ( String.sub rest 0 j,
              Some (String.sub rest (j + 1) (String.length rest - j - 1)) )
        | None -> (rest, None)
      in
      if rel = "" || rest = "" then
        Error (Printf.sprintf "bad insert %S (expected rel:v1,v2[@node])" spec)
      else
        Ok
          ( rel,
            Array.of_list
              (List.map parse_insert_value (String.split_on_char ',' rest)),
            node )

let sub_cmd file text at from window naive pushdown inserts updates initiator =
  let opts =
    {
      Options.default with
      Options.subscriptions = true;
      sub_batch_window = window;
      sub_naive = naive;
      pushdown;
    }
  in
  (match Options.validate opts with
  | Ok () -> ()
  | Error errors ->
      List.iter prerr_endline errors;
      exit 1);
  let inserts = or_die (parse_all parse_insert inserts) in
  let sys = or_die (load_system ~opts file) in
  let q = parse_query_or_die text in
  let viewer = Option.value ~default:at from in
  let on_delta (d : Codb_sub.Subscription.delta) =
    let pp_signed sign ppf t = Fmt.pf ppf "@,  %s %a" sign Tuple.pp t in
    Fmt.pr "@[<v>delta [%s] at %s:%a%a@]@." d.Codb_sub.Subscription.d_tag viewer
      Fmt.(list ~sep:nop (pp_signed "+"))
      d.Codb_sub.Subscription.d_adds
      Fmt.(list ~sep:nop (pp_signed "-"))
      d.Codb_sub.Subscription.d_retracts
  in
  let id =
    match from with
    | None -> or_die (System.subscribe sys ~at ~on_delta q)
    | Some subscriber ->
        or_die (System.subscribe_remote sys ~subscriber ~host:at ~on_delta q)
  in
  let _ = System.run sys in
  (match from with
  | None -> Fmt.pr "subscribed at %s (id %s)@." at id
  | Some subscriber -> (
      match System.mirror sys ~at:subscriber id with
      | Some m when Codb_sub.Mirror.accepted m ->
          Fmt.pr "%s subscribed to %s at %s (id %s)@." subscriber text at id
      | Some m ->
          Fmt.epr "registration refused: %s@."
            (Option.value ~default:"?" (Codb_sub.Mirror.rejected m));
          exit 1
      | None ->
          Fmt.epr "mirror vanished?@.";
          exit 1));
  List.iter
    (fun (rel, tuple, node) ->
      let node = Option.value ~default:at node in
      Fmt.pr "insert %s%a at %s@." rel Tuple.pp tuple node;
      ignore (System.insert_fact sys ~at:node ~rel tuple);
      ignore (System.run sys))
    inserts;
  let initiator =
    match initiator with
    | Some name -> name
    | None -> List.hd (System.node_names sys)
  in
  for k = 1 to updates do
    Fmt.pr "-- global update %d of %d (initiator %s) --@." k updates initiator;
    ignore (System.run_update sys ~initiator)
  done;
  (match System.subscription_answers sys ~at:viewer id with
  | Some answers ->
      Fmt.pr "@.standing answer set (%d tuple(s)):@." (List.length answers);
      List.iter (fun t -> Fmt.pr "  %a@." Tuple.pp t) answers
  | None -> Fmt.pr "subscription lost?@.");
  Fmt.pr "@.%a@." Report.pp_sub_report (Report.sub_report (System.snapshots sys));
  0

(* --- discover ------------------------------------------------------ *)

let discover_cmd file at ttl =
  let sys = or_die (load_system file) in
  let peers = System.discover sys ~at ~ttl in
  List.iter (fun p -> Fmt.pr "%a@." Peer_id.pp p) peers;
  Fmt.pr "%d peer(s) discovered from %s with ttl %d@." (List.length peers) at ttl;
  0

(* --- info ---------------------------------------------------------- *)

let info_cmd file dot =
  let cfg =
    or_die (Result.map_error (String.concat "\n") (Parser.load_config (read_file file)))
  in
  (match dot with
  | Some "topology" ->
      print_string (Codb_core.Viz.topology_dot cfg);
      exit 0
  | Some "rules" ->
      print_string (Codb_core.Viz.dependency_dot cfg);
      exit 0
  | Some other ->
      Fmt.epr "unknown --dot kind %s (expected topology or rules)@." other;
      exit 1
  | None -> ());
  List.iter
    (fun n ->
      Fmt.pr "node %s%s: %d relation(s), %d fact(s)%s@." n.Config.node_name
        (if n.Config.mediator then " (mediator)" else "")
        (List.length n.Config.relations)
        (List.length n.Config.facts)
        (match n.Config.constraints with
        | [] -> ""
        | cs -> Printf.sprintf ", %d constraint(s)" (List.length cs)))
    cfg.Config.nodes;
  List.iter
    (fun r ->
      Fmt.pr "rule %s: %s <- %s  [%a]@." r.Config.rule_id r.Config.importer
        r.Config.source Pretty.query r.Config.rule_query)
    cfg.Config.rules;
  0

(* --- analyse ------------------------------------------------------- *)

let analyse_cmd file minimise =
  let cfg =
    or_die (Result.map_error (String.concat "\n") (Parser.load_config (read_file file)))
  in
  let redundancies = Codb_core.Analysis.redundant_rules cfg in
  List.iter (fun r -> Fmt.pr "%a@." Codb_core.Analysis.pp_redundancy r) redundancies;
  if redundancies = [] then Fmt.pr "no redundant coordination rules@.";
  (match Codb_core.Analysis.cyclic_components cfg with
  | [] -> Fmt.pr "rule dependency graph is acyclic: no fix-point iteration needed@."
  | components ->
      List.iter
        (fun c ->
          Fmt.pr "cyclic component (needs fix-point): %s@." (String.concat ", " c))
        components);
  if minimise then begin
    let minimal = Codb_core.Analysis.minimise cfg in
    print_string (Pretty.config_to_string minimal)
  end;
  0

(* --- cmdliner plumbing --------------------------------------------- *)

open Cmdliner

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"Network file.")

let validate_t =
  let doc = "Parse and statically check a network file." in
  Cmd.v (Cmd.info "validate" ~doc) Term.(const validate_cmd $ file_arg)

let generate_t =
  let doc = "Generate a synthetic network file on stdout." in
  let shape =
    Arg.(
      value
      & opt string "chain"
      & info [ "shape" ] ~docv:"SHAPE"
          ~doc:"chain, ring, star-in, star-out, tree, grid, random or clique.")
  in
  let n = Arg.(value & opt int 8 & info [ "nodes"; "n" ] ~doc:"Number of nodes.") in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Random seed.") in
  let tuples = Arg.(value & opt int 50 & info [ "tuples" ] ~doc:"Base facts per node.") in
  let existential =
    Arg.(
      value
      & opt float 0.0
      & info [ "existential" ] ~doc:"Fraction of rules with existential heads.")
  in
  let comparison =
    Arg.(
      value
      & opt float 0.0
      & info [ "comparison" ] ~doc:"Fraction of rules with a comparison predicate.")
  in
  let rows = Arg.(value & opt int 2 & info [ "rows" ] ~doc:"Grid rows.") in
  let cols = Arg.(value & opt int 4 & info [ "cols" ] ~doc:"Grid columns.") in
  let p =
    Arg.(value & opt float 0.2 & info [ "p" ] ~doc:"Random-graph edge probability.")
  in
  Cmd.v (Cmd.info "generate" ~doc)
    Term.(
      const generate_cmd $ shape $ n $ seed $ tuples $ existential $ comparison $ rows
      $ cols $ p)

let update_t =
  let doc = "Run a global update and print the aggregated report." in
  let initiator =
    Arg.(
      value
      & opt (some string) None
      & info [ "initiator"; "at" ] ~doc:"Initiating node (default: first node).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Also dump per-node statistics.")
  in
  let show_trace =
    Arg.(value & flag & info [ "trace" ] ~doc:"Print the message-level protocol trace.")
  in
  let zone_maps =
    Arg.(
      value & flag
      & info [ "zone-maps" ]
          ~doc:
            "Prune packed scans with per-chunk min/max summaries (answers are \
             unchanged; the report gains the chunks-visited/pruned counters).")
  in
  Cmd.v (Cmd.info "update" ~doc)
    Term.(const update_cmd $ file_arg $ initiator $ verbose $ show_trace $ zone_maps)

let query_t =
  let doc = "Answer a conjunctive query at a node." in
  let at =
    Arg.(required & opt (some string) None & info [ "at" ] ~doc:"Node to query.")
  in
  let text =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY" ~doc:"e.g. \"ans(x) <- r(x, y), y > 2\".")
  in
  let after_update =
    Arg.(
      value & flag
      & info [ "materialise" ]
          ~doc:
            "Run a global update first and answer locally instead of fetching at query \
             time.")
  in
  let scoped =
    Arg.(
      value & flag
      & info [ "scoped" ]
          ~doc:
            "Run a query-dependent update first: materialise only what the query \
             needs, then answer locally.")
  in
  let certain =
    Arg.(value & flag & info [ "certain" ] ~doc:"Print only null-free answers.")
  in
  let use_cache =
    Arg.(
      value & flag
      & info [ "cache" ]
          ~doc:
            "Enable the per-node semantic query-answer cache (and print its report \
             afterwards).")
  in
  let pushdown =
    Arg.(
      value & flag
      & info [ "pushdown" ]
          ~doc:
            "Push the query's constraints into neighbour sub-requests so sources \
             withhold irrelevant tuples (and print the pushdown report afterwards).")
  in
  let zone_maps =
    Arg.(
      value & flag
      & info [ "zone-maps" ]
          ~doc:
            "Prune packed scans with per-chunk min/max summaries when the query \
             carries order predicates (answers are unchanged; prints the \
             chunks-visited/pruned counters afterwards).")
  in
  let repeat =
    Arg.(
      value & opt int 1
      & info [ "repeat" ] ~docv:"N"
          ~doc:"Pose the query N times (interesting with $(b,--cache)).")
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(
      const query_cmd $ file_arg $ at $ text $ after_update $ scoped $ certain
      $ use_cache $ pushdown $ zone_maps $ repeat)

let explain_t =
  let doc = "Print the cost-based evaluation plan chosen for a query." in
  let at =
    Arg.(
      required & opt (some string) None
      & info [ "at" ] ~doc:"Node whose local store provides the statistics.")
  in
  let text =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY" ~doc:"e.g. \"ans(x) <- r(x, y), s(y, z)\".")
  in
  let legacy =
    Arg.(
      value & flag
      & info [ "legacy" ] ~doc:"Show what runs with the planner disabled instead.")
  in
  let max_probe_cols =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-probe-cols" ] ~docv:"N"
          ~doc:"Cap index probes at N columns (1 = single-column ablation).")
  in
  let pushdown =
    Arg.(
      value & flag
      & info [ "pushdown" ]
          ~doc:
            "Also print, per body relation, the constraint set the query would push \
             into that relation's sub-requests.")
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const explain_cmd $ file_arg $ at $ text $ legacy $ max_probe_cols $ pushdown)

let cache_t =
  let doc = "Exercise the query-answer cache on a repeated workload." in
  let at =
    Arg.(required & opt (some string) None & info [ "at" ] ~doc:"Node to query.")
  in
  let text =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY" ~doc:"e.g. \"ans(x) <- r(x, y)\".")
  in
  let repeat =
    Arg.(value & opt int 3 & info [ "repeat" ] ~docv:"N" ~doc:"Number of runs.")
  in
  let update_between =
    Arg.(
      value & flag
      & info [ "update-between" ]
          ~doc:"Run a global update between runs (shows epoch invalidation).")
  in
  let capacity =
    Arg.(
      value
      & opt int Options.default.Options.cache_capacity
      & info [ "capacity" ] ~doc:"Max cached queries per node (0 = unbounded).")
  in
  let max_bytes =
    Arg.(
      value
      & opt int Options.default.Options.cache_max_bytes
      & info [ "max-bytes" ] ~doc:"Max cached answer bytes per node (0 = unbounded).")
  in
  let ttl =
    Arg.(
      value & opt float 0.0
      & info [ "ttl" ] ~doc:"Entry lifetime in simulated seconds (0 = no TTL).")
  in
  let no_containment =
    Arg.(
      value & flag
      & info [ "no-containment" ]
          ~doc:"Serve exact hits only (the E9 ablation: no containment-aware hits).")
  in
  Cmd.v (Cmd.info "cache" ~doc)
    Term.(
      const cache_cmd $ file_arg $ at $ text $ repeat $ update_between $ capacity
      $ max_bytes $ ttl $ no_containment)

let wire_t =
  let doc = "Run a global update and report its wire behaviour." in
  let initiator =
    Arg.(
      value
      & opt (some string) None
      & info [ "initiator"; "at" ] ~doc:"Initiating node (default: first node).")
  in
  let estimator =
    Arg.(
      value & flag
      & info [ "estimator" ]
          ~doc:
            "Charge messages by the schema-based size estimate instead of the compact \
             binary codec (the pre-codec behaviour).")
  in
  let link_dicts =
    Arg.(
      value & flag
      & info [ "link-dicts" ]
          ~doc:
            "Train an incremental string dictionary per directed link: a string \
             crosses a link once per epoch, later messages carry a small \
             back-reference (epochs reset on link faults).  Incompatible with \
             $(b,--estimator).")
  in
  let batch_window =
    Arg.(
      value & opt float 0.0
      & info [ "batch-window" ] ~docv:"SECONDS"
          ~doc:
            "Buffer outgoing deltas per destination for this much simulated time and \
             ship them as one batch (0 = send immediately).")
  in
  let batch_max =
    Arg.(
      value
      & opt int Options.default.Options.batch_max_tuples
      & info [ "batch-max-tuples" ] ~docv:"N"
          ~doc:"Flush a destination buffer early once it holds N tuples.")
  in
  let bloom_bits =
    Arg.(
      value & opt int 0
      & info [ "bloom-bits" ] ~docv:"N"
          ~doc:
            "Bound each per-rule sent-cache with an N-bit Bloom filter (power of two) \
             plus an exact ring; 0 keeps the unbounded exact caches.")
  in
  let ring_capacity =
    Arg.(
      value
      & opt int Options.default.Options.sent_ring_capacity
      & info [ "ring-capacity" ] ~docv:"N"
          ~doc:"Tuples held exactly per bounded sent-cache (with $(b,--bloom-bits)).")
  in
  Cmd.v (Cmd.info "wire" ~doc)
    Term.(
      const wire_cmd $ file_arg $ initiator $ estimator $ link_dicts $ batch_window
      $ batch_max $ bloom_bits $ ring_capacity)

let chaos_t =
  let doc =
    "Run a global update under a deterministic fault plan (seeded drops, duplicates, \
     jitter, link flaps, node crashes) and report how the protocols coped."
  in
  let initiator =
    Arg.(
      value
      & opt (some string) None
      & info [ "initiator" ] ~doc:"Initiating node (default: first node).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N"
          ~doc:"Fault-plan seed; the same seed replays the same fault schedule.")
  in
  let drop =
    Arg.(
      value & opt float 0.0
      & info [ "drop" ] ~docv:"P" ~doc:"Per-message silent loss probability.")
  in
  let dup =
    Arg.(
      value & opt float 0.0
      & info [ "dup" ] ~docv:"P" ~doc:"Per-message duplicate-delivery probability.")
  in
  let jitter =
    Arg.(
      value & opt float 0.0
      & info [ "jitter" ] ~docv:"SECONDS"
          ~doc:"Extra random delivery delay, uniform in [0, SECONDS).")
  in
  let budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "drop-budget" ] ~docv:"N"
          ~doc:"Stop injecting drops after N (default: unlimited).")
  in
  let flaps =
    Arg.(
      value & opt_all string []
      & info [ "flap" ] ~docv:"A:B:DOWN:UP"
          ~doc:"Take the pipe between A and B down at DOWN, back up at UP (repeatable).")
  in
  let crashes =
    Arg.(
      value & opt_all string []
      & info [ "crash" ] ~docv:"NODE:AT[:RESTART]"
          ~doc:
            "Crash NODE at AT; with RESTART it comes back with its store but no \
             in-flight protocol state (repeatable).")
  in
  let ack_timeout =
    Arg.(
      value & opt float 0.05
      & info [ "ack-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Reliable-transport acknowledgement timeout: retransmit unacknowledged \
             messages after this long, with exponential backoff. Pass 0 for \
             fire-and-forget (the seed behaviour: losses surface as partial \
             results instead of being repaired).")
  in
  let max_retries =
    Arg.(
      value
      & opt int Options.default.Options.max_retries
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Give up a message after N retransmissions.")
  in
  let backoff =
    Arg.(
      value
      & opt float Options.default.Options.backoff_factor
      & info [ "backoff" ] ~docv:"F" ~doc:"Exponential backoff base (>= 1).")
  in
  let link_dicts =
    Arg.(
      value & flag
      & info [ "link-dicts" ]
          ~doc:
            "Per-link incremental string dictionaries; faults bump their epochs, \
             which the closing stats line shows.")
  in
  let query =
    Arg.(
      value
      & opt (some string) None
      & info [ "query" ]
          ~doc:
            "Also answer this query under the same faults and report whether the \
             answer is complete.")
  in
  let at =
    Arg.(
      value
      & opt (some string) None
      & info [ "at" ] ~doc:"Node for $(b,--query) (default: the initiator).")
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const chaos_cmd $ file_arg $ initiator $ seed $ drop $ dup $ jitter $ budget
      $ flaps $ crashes $ ack_timeout $ max_retries $ backoff $ link_dicts $ query
      $ at)

let recover_t =
  let doc =
    "Run a global update with nodes crashing and recovering from their \
     write-ahead logs, then check the stores against a fault-free reference \
     run (exit 1 on divergence)."
  in
  let initiator =
    Arg.(
      value
      & opt (some string) None
      & info [ "initiator" ] ~doc:"Initiating node (default: first node).")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~docv:"N" ~doc:"Fault-plan seed (reproducible schedules).")
  in
  let crashes =
    Arg.(
      value & opt_all string []
      & info [ "crash" ] ~docv:"NODE:AT[:RESTART]"
          ~doc:"Crash NODE at AT and restart it at RESTART (repeatable).")
  in
  let durability =
    let modes =
      [
        ("off", Options.Dur_off);
        ("volatile", Options.Dur_volatile);
        ("wal", Options.Dur_wal);
      ]
    in
    Arg.(
      value
      & opt (enum modes) Options.Dur_wal
      & info [ "durability" ] ~docv:"MODE"
          ~doc:
            "Crash model: $(b,off) keeps stores in memory across crashes (the \
             seed behaviour), $(b,volatile) wipes them and refetches through a \
             catch-up update, $(b,wal) recovers them from the write-ahead log.")
  in
  let wal_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "wal-dir" ] ~docv:"DIR"
          ~doc:
            "Keep each node's .wal/.snap files under DIR (default: a \
             deterministic in-memory backend).")
  in
  let snapshot_every =
    Arg.(
      value
      & opt int Options.default.Options.snapshot_every
      & info [ "snapshot-every" ] ~docv:"N"
          ~doc:"Take a compacting snapshot every N log records.")
  in
  let fsync =
    Arg.(
      value & flag
      & info [ "fsync" ] ~doc:"Fsync every WAL write (requires $(b,--wal-dir)).")
  in
  let ack_timeout =
    Arg.(
      value & opt float 0.05
      & info [ "ack-timeout" ] ~docv:"SECONDS"
          ~doc:"Reliable-transport acknowledgement timeout.")
  in
  let max_retries =
    Arg.(
      value & opt int 8
      & info [ "max-retries" ] ~docv:"N"
          ~doc:"Give up a message after N retransmissions.")
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(
      const recover_cmd $ file_arg $ initiator $ seed $ crashes $ durability
      $ wal_dir $ snapshot_every $ fsync $ ack_timeout $ max_retries)

let sub_t =
  let doc =
    "Register a standing (continuous) query and watch its answer deltas arrive as \
     local writes and global updates change the stores."
  in
  let at =
    Arg.(
      required
      & opt (some string) None
      & info [ "at" ] ~doc:"Node that hosts (evaluates) the standing query.")
  in
  let text =
    Arg.(
      required
      & pos 1 (some string) None
      & info [] ~docv:"QUERY" ~doc:"e.g. \"ans(k, v) <- data(k, v)\".")
  in
  let from =
    Arg.(
      value
      & opt (some string) None
      & info [ "from" ] ~docv:"NODE"
          ~doc:
            "Subscribe from this node instead: the host pushes answer deltas over \
             the wire and NODE maintains a mirror.")
  in
  let window =
    Arg.(
      value & opt float 0.0
      & info [ "window" ] ~docv:"SECONDS"
          ~doc:
            "Buffer outgoing answer deltas per subscriber for this much simulated \
             time and ship them coalesced (0 = push immediately).")
  in
  let naive =
    Arg.(
      value & flag
      & info [ "naive" ]
          ~doc:
            "Maintain answers by full re-evaluation on every store change instead \
             of the incremental delta pass (the E18 baseline).")
  in
  let pushdown =
    Arg.(
      value & flag
      & info [ "pushdown" ]
          ~doc:"Prefilter store deltas with the query's pushed-down constraints.")
  in
  let inserts =
    Arg.(
      value & opt_all string []
      & info [ "insert" ] ~docv:"REL:V1,V2[@NODE]"
          ~doc:
            "Insert this fact (at the host unless @NODE says otherwise) after \
             subscribing, and run the network so the delta propagates \
             (repeatable, applied in order).")
  in
  let updates =
    Arg.(
      value & opt int 1
      & info [ "updates" ] ~docv:"N" ~doc:"Run N global updates afterwards.")
  in
  let initiator =
    Arg.(
      value
      & opt (some string) None
      & info [ "initiator" ] ~doc:"Update initiator (default: first node).")
  in
  Cmd.v (Cmd.info "sub" ~doc)
    Term.(
      const sub_cmd $ file_arg $ text $ at $ from $ window $ naive $ pushdown
      $ inserts $ updates $ initiator)

let discover_t =
  let doc = "Run JXTA-style topology discovery from a node." in
  let at = Arg.(required & opt (some string) None & info [ "at" ] ~doc:"Origin node.") in
  let ttl = Arg.(value & opt int 3 & info [ "ttl" ] ~doc:"Probe time-to-live.") in
  Cmd.v (Cmd.info "discover" ~doc) Term.(const discover_cmd $ file_arg $ at $ ttl)

let info_t =
  let doc = "Print the parsed structure of a network file." in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~docv:"KIND"
          ~doc:"Emit Graphviz instead: 'topology' (peers and rules) or 'rules' (the \
                rule dependency graph, cyclic components highlighted).")
  in
  Cmd.v (Cmd.info "info" ~doc) Term.(const info_cmd $ file_arg $ dot)

(* --- dump / load --------------------------------------------------- *)

let dump_cmd file update_first dir =
  let sys = or_die (load_system file) in
  if update_first then ignore (System.run_update sys ~initiator:(List.hd (System.node_names sys)));
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  List.iter
    (fun (name, text) ->
      Out_channel.with_open_bin
        (Filename.concat dir (name ^ ".csv"))
        (fun oc -> Out_channel.output_string oc text))
    (System.export_stores sys);
  Fmt.pr "stores written to %s/@." dir;
  0

let load_cmd file dir query at =
  let sys = or_die (load_system file) in
  let loaded =
    List.fold_left
      (fun acc name ->
        let path = Filename.concat dir (name ^ ".csv") in
        if Sys.file_exists path then
          acc + System.import_stores sys [ (name, read_file path) ]
        else acc)
      0 (System.node_names sys)
  in
  Fmt.pr "%d tuple(s) loaded@." loaded;
  (match (query, at) with
  | Some text, Some at -> (
      match Parser.parse_query text with
      | Error e ->
          prerr_endline e;
          exit 1
      | Ok q ->
          let answers = System.local_answers sys ~at q in
          List.iter (fun t -> Fmt.pr "%a@." Tuple.pp t) answers;
          Fmt.pr "%d answer(s)@." (List.length answers))
  | _ -> ());
  0

let shell_cmd file =
  let sys = or_die (load_system file) in
  Shell.run sys;
  0

let shell_t =
  let doc = "Interactive shell on a network (the demo's node UI)." in
  Cmd.v (Cmd.info "shell" ~doc) Term.(const shell_cmd $ file_arg)

let dump_t =
  let doc = "Export every node's store as CSV files (marked nulls round-trip)." in
  let update_first =
    Arg.(value & flag & info [ "update" ] ~doc:"Run a global update before dumping.")
  in
  let dir =
    Arg.(value & opt string "codb-dump" & info [ "dir" ] ~doc:"Output directory.")
  in
  Cmd.v (Cmd.info "dump" ~doc) Term.(const dump_cmd $ file_arg $ update_first $ dir)

let load_t =
  let doc = "Rebuild a network and load previously dumped stores." in
  let dir =
    Arg.(value & opt string "codb-dump" & info [ "dir" ] ~doc:"Dump directory.")
  in
  let query =
    Arg.(value & opt (some string) None
         & info [ "query" ] ~doc:"Optionally answer a query locally after loading.")
  in
  let at =
    Arg.(value & opt (some string) None & info [ "at" ] ~doc:"Node for --query.")
  in
  Cmd.v (Cmd.info "load" ~doc) Term.(const load_cmd $ file_arg $ dir $ query $ at)

let analyse_t =
  let doc = "Detect redundant coordination rules (CQ containment)." in
  let minimise =
    Arg.(
      value & flag
      & info [ "minimise" ] ~doc:"Print the network with redundant rules dropped.")
  in
  Cmd.v (Cmd.info "analyse" ~doc) Term.(const analyse_cmd $ file_arg $ minimise)

let main =
  let doc = "the coDB peer-to-peer database system (simulation)" in
  Cmd.group
    (Cmd.info "codb" ~version:"1.0.0" ~doc)
    [
      validate_t; generate_t; update_t; query_t; explain_t; cache_t; wire_t;
      chaos_t; recover_t; sub_t; discover_t; info_t; analyse_t; shell_t; dump_t;
      load_t;
    ]

let () = exit (Cmd.eval' main)
