(* The interactive shell: the simulation's stand-in for the node UI of
   the original demo (paper Figures 2 and 3).  Through it a user can
   commence network queries and updates, browse streaming results,
   insert facts, start topology discovery, re-broadcast rules files,
   and read the statistical reports. *)

module System = Codb_core.System
module Superpeer = Codb_core.Superpeer
module Report = Codb_core.Report
module Analysis = Codb_core.Analysis
module Node = Codb_core.Node
module Parser = Codb_cq.Parser
module Pretty = Codb_cq.Pretty
module Config = Codb_cq.Config
module Database = Codb_relalg.Database
module Relation = Codb_relalg.Relation
module Tuple = Codb_relalg.Tuple
module Peer_id = Codb_net.Peer_id
module Network = Codb_net.Network

let help_text =
  {|commands:
  query <node> <query>      answer a query at a node, streaming results
                            e.g. query n0 ans(x, y) <- data(x, y)
  scoped <node> <query>     query-dependent update, then answer locally
  update <node>             run a global update initiated at a node
  insert <node> <fact>      insert a fact, e.g. insert n0 data(7, "x")
  show <node> [relation]    dump a node's local database
  why <node> <fact>         explain where a stored tuple came from
  stats                     collect and print the super-peer report
  topology                  list nodes, rules and open pipes
  discover <node> <ttl>     run topology discovery from a node
  rules <file>              broadcast a new coordination-rules file
  analyse                   detect redundant coordination rules
  help                      this text
  quit                      leave the shell|}

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
      ( String.sub line 0 i,
        String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let with_node sys name f =
  match System.node sys name with
  | node -> f node
  | exception Not_found -> Fmt.pr "unknown node %s@." name

let cmd_query sys rest ~scoped =
  match split_command rest with
  | "", _ | _, "" -> Fmt.pr "usage: query <node> <query>@."
  | at, text -> (
      match Parser.parse_query text with
      | Error e -> Fmt.pr "%s@." e
      | Ok q ->
          with_node sys at (fun _ ->
              try
                if scoped then begin
                  let _ = System.run_scoped_update sys ~at q in
                  let answers = System.local_answers sys ~at q in
                  List.iter (fun t -> Fmt.pr "  %a@." Tuple.pp t) answers;
                  Fmt.pr "%d answer(s), materialised locally@."
                    (List.length answers)
                end
                else begin
                  let outcome =
                    System.run_query sys ~at q ~on_partial:(fun batch ->
                        List.iter (fun t -> Fmt.pr "  %a@." Tuple.pp t) batch)
                  in
                  Fmt.pr "%d answer(s) (%d certain), %.4fs simulated, %d data msgs@."
                    (List.length outcome.System.qo_answers)
                    (List.length outcome.System.qo_certain)
                    (outcome.System.qo_finished -. outcome.System.qo_started)
                    outcome.System.qo_data_msgs
                end
              with Invalid_argument msg -> Fmt.pr "error: %s@." msg))

let cmd_update sys at =
  with_node sys at (fun _ ->
      let uid = System.run_update sys ~initiator:at in
      match Report.update_report (System.snapshots sys) uid with
      | Some r -> Fmt.pr "%a@." Report.pp_update_report r
      | None -> Fmt.pr "no report@.")

let cmd_insert sys rest =
  match split_command rest with
  | "", _ | _, "" -> Fmt.pr "usage: insert <node> <fact>@."
  | at, text -> (
      match Parser.parse_fact text with
      | Error e -> Fmt.pr "%s@." e
      | Ok (rel, tuple) ->
          with_node sys at (fun _ ->
              try
                if System.insert_fact sys ~at ~rel tuple then
                  Fmt.pr "inserted; it will propagate on the next update@."
                else Fmt.pr "already present@."
              with
              | Not_found -> Fmt.pr "unknown relation %s at %s@." rel at
              | Invalid_argument msg -> Fmt.pr "error: %s@." msg))

let cmd_show sys rest =
  match split_command rest with
  | "", _ -> Fmt.pr "usage: show <node> [relation]@."
  | at, "" -> with_node sys at (fun node -> Fmt.pr "%a@." Database.pp node.Node.store)
  | at, rel ->
      with_node sys at (fun node ->
          match Database.relation_opt node.Node.store rel with
          | Some r -> Fmt.pr "%a@." Relation.pp r
          | None -> Fmt.pr "unknown relation %s at %s@." rel at)

let cmd_why sys rest =
  match split_command rest with
  | "", _ | _, "" -> Fmt.pr "usage: why <node> <fact>@."
  | at, text -> (
      match Parser.parse_fact text with
      | Error e -> Fmt.pr "%s@." e
      | Ok (rel, tuple) ->
          with_node sys at (fun node ->
              match Node.explain node ~rel tuple with
              | None -> Fmt.pr "%s does not hold %s%a@." at rel Tuple.pp tuple
              | Some origin -> Fmt.pr "%a@." Codb_core.Lineage.pp_origin origin))

let cmd_stats sys =
  let snaps = System.collect_stats sys in
  Fmt.pr "%a@." Report.pp_network snaps;
  match Report.latest_update_report snaps with
  | Some r -> Fmt.pr "@.last update:@.%a@." Report.pp_update_report r
  | None -> ()

let cmd_topology sys =
  let cfg = System.config sys in
  List.iter
    (fun name ->
      with_node sys name (fun node ->
          Fmt.pr "node %s: %d tuples, %d outgoing, %d incoming@." name
            (Database.cardinal node.Node.store)
            (List.length node.Node.outgoing)
            (List.length node.Node.incoming)))
    (System.node_names sys);
  List.iter
    (fun r -> Fmt.pr "rule %s: %s <- %s@." r.Config.rule_id r.Config.importer r.Config.source)
    cfg.Config.rules;
  let open_pipes =
    List.filter Codb_net.Pipe.is_open (Network.pipes (System.net sys))
  in
  Fmt.pr "%d open pipe(s)@." (List.length open_pipes)

let cmd_discover sys rest =
  match split_command rest with
  | at, ttl_text -> (
      match int_of_string_opt (String.trim ttl_text) with
      | None -> Fmt.pr "usage: discover <node> <ttl>@."
      | Some ttl ->
          with_node sys at (fun _ ->
              let peers = System.discover sys ~at ~ttl in
              Fmt.pr "discovered: %a@." Fmt.(list ~sep:(any ", ") Peer_id.pp) peers))

let cmd_rules sys path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error e -> Fmt.pr "%s@." e
  | text -> (
      match Parser.parse_config text with
      | Error e -> Fmt.pr "%s@." e
      | Ok cfg ->
          System.broadcast_rules sys cfg;
          Fmt.pr "rules broadcast; topology updated@.")

let cmd_analyse sys =
  match Analysis.redundant_rules (System.config sys) with
  | [] -> Fmt.pr "no redundant coordination rules@."
  | redundancies ->
      List.iter (fun r -> Fmt.pr "%a@." Analysis.pp_redundancy r) redundancies

let run sys =
  Fmt.pr "coDB shell — type 'help' for commands@.";
  let rec loop () =
    Fmt.pr "codb> %!";
    match In_channel.input_line stdin with
    | None -> ()
    | Some line -> (
        let line = String.trim line in
        match split_command line with
        | "", _ -> loop ()
        | "quit", _ | "exit", _ -> ()
        | "help", _ ->
            Fmt.pr "%s@." help_text;
            loop ()
        | "query", rest ->
            cmd_query sys rest ~scoped:false;
            loop ()
        | "scoped", rest ->
            cmd_query sys rest ~scoped:true;
            loop ()
        | "update", at ->
            cmd_update sys (String.trim at);
            loop ()
        | "insert", rest ->
            cmd_insert sys rest;
            loop ()
        | "show", rest ->
            cmd_show sys rest;
            loop ()
        | "why", rest ->
            cmd_why sys rest;
            loop ()
        | "stats", _ ->
            cmd_stats sys;
            loop ()
        | "topology", _ ->
            cmd_topology sys;
            loop ()
        | "discover", rest ->
            cmd_discover sys rest;
            loop ()
        | "rules", path ->
            cmd_rules sys (String.trim path);
            loop ()
        | "analyse", _ | "analyze", _ ->
            cmd_analyse sys;
            loop ()
        | other, _ ->
            Fmt.pr "unknown command %s (try 'help')@." other;
            loop ())
  in
  loop ()
