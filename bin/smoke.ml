(* Quick end-to-end smoke check used during development; the real
   entry points are the test suite and the benchmark harness. *)

module System = Codb_core.System
module Topology = Codb_core.Topology
module Report = Codb_core.Report
module Parser = Codb_cq.Parser
module Tuple = Codb_relalg.Tuple

let chain_demo () =
  let cfg = Topology.generate ~seed:42 Topology.Chain ~n:5 in
  let sys = System.build_exn cfg in
  let before = System.total_tuples sys in
  let uid = System.run_update sys ~initiator:"n0" in
  let after = System.total_tuples sys in
  Fmt.pr "chain-5: tuples %d -> %d@." before after;
  (match Report.update_report (System.snapshots sys) uid with
  | Some r -> Fmt.pr "%a@." Report.pp_update_report r
  | None -> Fmt.pr "no report?!@.");
  let q =
    match Parser.parse_query "ans(x, y) <- data(x, y)" with
    | Ok q -> q
    | Error e -> failwith e
  in
  let local = System.local_answers sys ~at:"n0" q in
  Fmt.pr "n0 local answers after update: %d@." (List.length local)

let query_demo () =
  let cfg = Topology.generate ~seed:43 Topology.Chain ~n:4 in
  let sys = System.build_exn cfg in
  let q =
    match Parser.parse_query "ans(x, y) <- data(x, y)" with
    | Ok q -> q
    | Error e -> failwith e
  in
  let outcome = System.run_query sys ~at:"n0" q in
  Fmt.pr "query at n0 (no update): %d answers (%d certain), %d msgs@."
    (List.length outcome.System.qo_answers)
    (List.length outcome.System.qo_certain)
    outcome.System.qo_data_msgs;
  (* compare against a fresh system where we materialise first *)
  let sys2 = System.build_exn (Topology.generate ~seed:43 Topology.Chain ~n:4) in
  let _ = System.run_update sys2 ~initiator:"n0" in
  let local = System.local_answers sys2 ~at:"n0" q in
  Fmt.pr "after update, local: %d answers@." (List.length local)

let ring_demo () =
  let cfg = Topology.generate ~seed:44 Topology.Ring ~n:4 in
  let sys = System.build_exn cfg in
  let uid = System.run_update sys ~initiator:"n0" in
  match Report.update_report (System.snapshots sys) uid with
  | Some r ->
      Fmt.pr "ring-4 (cyclic): finished=%b, msgs=%d, new tuples=%d@."
        r.Report.ur_all_finished r.Report.ur_data_msgs r.Report.ur_new_tuples
  | None -> Fmt.pr "ring: no report?!@."

let () =
  chain_demo ();
  query_demo ();
  ring_demo ()
