# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench experiments micro cache-bench bench-json wire-bench chaos-bench chaos-bench-durable recovery-bench recovery-bench-tiny pushdown-bench sub-bench scale-bench scale-bench-tiny par-bench par-bench-tiny dict-bench dict-bench-tiny examples clean

all: build

build:
	dune build @all

test:
	dune runtest --force

bench:
	dune exec bench/main.exe

experiments:
	dune exec bench/main.exe -- experiments

micro:
	dune exec bench/main.exe -- micro

cache-bench:
	dune exec bench/main.exe -- e9

# planner ablation -> BENCH_planner.json (machine-readable perf trajectory)
bench-json:
	dune exec bench/main.exe -- bench-json

# wire ablation -> BENCH_wire.json (codec x batching x bloom)
wire-bench:
	dune exec bench/main.exe -- wire-json

# fault-injection sweep -> BENCH_chaos.json (loss rate x retries)
chaos-bench:
	dune exec bench/main.exe -- chaos-json

# same sweep with WAL durability on: every completeness gate must still hold
chaos-bench-durable:
	dune exec bench/main.exe -- chaos-json --durable

# crash-recovery bench -> BENCH_recovery.json (E16 chain with a mid-run crash;
# WAL recovery vs clear-and-refetch vs fault-free reference; the committed
# JSON embeds a tiny_reference block)
recovery-bench:
	dune exec bench/main.exe -- recovery-json

# CI smoke variant -> BENCH_recovery_tiny.json, gated against the committed
# tiny_reference in BENCH_recovery.json
recovery-bench-tiny:
	dune exec bench/main.exe -- recovery-json --tiny

# constraint pushdown ablation -> BENCH_pushdown.json (selective vs open x chain vs clique)
pushdown-bench:
	dune exec bench/main.exe -- pushdown-json

# standing-query maintenance -> BENCH_sub.json (incremental vs naive re-evaluation)
sub-bench:
	dune exec bench/main.exe -- sub-json

# storage-engine scale bench -> BENCH_scale.json (packed columnar vs boxed seed,
# >= 1k nodes / >= 1M tuples; the committed JSON embeds a tiny_reference block)
scale-bench:
	dune exec bench/main.exe -- scale-json

# CI smoke variant -> BENCH_scale_tiny.json, gated against the committed
# tiny_reference in BENCH_scale.json
scale-bench-tiny:
	dune exec bench/main.exe -- scale-json --tiny

# parallel-runtime race -> BENCH_par.json (1/2/4/8 domains over the
# two-phase step; digest/counter equality enforced unconditionally,
# speed floors only when the machine has that many cores)
par-bench:
	dune exec bench/main.exe -- par-json

# CI smoke variant: same equality gates, >= 1.5x floor at 4 domains
# on machines with >= 4 cores
par-bench-tiny:
	dune exec bench/main.exe -- par-json --tiny

# zone-map + dictionary bench -> BENCH_dict.json (chunk pruning, link-level
# wire dictionaries, dictionary-encoded WAL/snapshots; the committed JSON
# embeds a tiny_reference block)
dict-bench:
	dune exec bench/main.exe -- dict-json

# CI smoke variant -> BENCH_dict_tiny.json, gated against the committed
# tiny_reference in BENCH_dict.json
dict-bench-tiny:
	dune exec bench/main.exe -- dict-json --tiny

examples: build
	dune exec examples/quickstart.exe
	dune exec examples/university_hospital.exe
	dune exec examples/ring_exchange.exe
	dune exec examples/dynamic_network.exe
	dune exec examples/sensor_network.exe

clean:
	dune clean
