(* Relevance-bounded diffusion ablation (experiment E17 and
   `make pushdown-bench`).

   The same query posed twice over the same network — once with the
   seed behaviour (sub-requests name only the rule, every responder
   ships its full derivable stream) and once with constraint pushdown
   ([Options.pushdown]), where each sub-request carries the strongest
   constraint set the root query implies for that relation and each
   responder folds it into its rule body, withholds what the filter
   rules out and re-specialises its own fan-out.

   Two query classes over two shapes:

     selective   a constant binds the key column — the constraint
                 prunes almost everything at the sources, so answer
                 traffic must collapse;
     open        no constraint to push — pushdown must be a strict
                 no-op on the wire.

   Pushdown must never change the answer set (checked tuple-for-tuple
   modulo marked-null renaming) or the completeness flag, must never
   increase answer bytes, and on the selective workloads must cut
   answer bytes at least in half.  Violations abort the benchmark so
   CI fails loudly.  Results go to BENCH_pushdown.json. *)

module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple
module Parser = Codb_cq.Parser
module Datagen = Codb_workload.Datagen

type workload = { wl_nodes : int; wl_tuples : int; wl_domain : int }

let workload ~tiny =
  if tiny then { wl_nodes = 4; wl_tuples = 30; wl_domain = 20 }
  else { wl_nodes = 8; wl_tuples = 120; wl_domain = 40 }

let shapes = [ Topology.Chain; Topology.Clique ]

let queries =
  [ ("selective", "o(y) <- data(3, y)"); ("open", "o(x, y) <- data(x, y)") ]

let config wl shape =
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = wl.wl_tuples;
      profile = { Datagen.default_profile with Datagen.domain_size = wl.wl_domain };
    }
  in
  Topology.generate ~params ~seed:1700 shape ~n:wl.wl_nodes

let parse text =
  match Parser.parse_query text with Ok q -> q | Error e -> failwith e

(* Marked-null ids depend on arrival order, which pushdown legitimately
   changes; rename them per tuple in first-occurrence order so answer
   sets compare across runs. *)
let canonical_nulls t =
  let seen = Hashtbl.create 4 in
  Array.map
    (function
      | Value.Null { Value.null_id; _ } ->
          let idx =
            match Hashtbl.find_opt seen null_id with
            | Some idx -> idx
            | None ->
                let idx = Hashtbl.length seen in
                Hashtbl.add seen null_id idx;
                idx
          in
          Value.Str (Printf.sprintf "\x00null%d" idx)
      | (Value.Int _ | Value.Float _ | Value.Str _ | Value.Bool _ | Value.Hole _) as v
        ->
          v)
    t

let canonical_answers answers =
  List.sort Tuple.compare (List.map canonical_nulls answers)

type row = {
  r_shape : Topology.shape;
  r_query : string;  (* class name from [queries] *)
  r_pushdown : bool;
  r_answers : Tuple.t list;  (* canonicalised *)
  r_complete : bool;
  r_bytes_in : int;
  r_data_msgs : int;
  r_pushed : int;
  r_filtered : int;
  r_wall_s : float;
}

let measure wl shape (qname, qtext) pushdown =
  let opts = { Options.default with Options.pushdown } in
  let sys = System.build_exn ~opts (config wl shape) in
  let wall_start = Unix.gettimeofday () in
  let outcome = System.run_query sys ~at:"n0" (parse qtext) in
  let wall = Unix.gettimeofday () -. wall_start in
  let pr =
    Option.get (Report.pushdown_report (System.snapshots sys) outcome.System.qo_id)
  in
  {
    r_shape = shape;
    r_query = qname;
    r_pushdown = pushdown;
    r_answers = canonical_answers outcome.System.qo_answers;
    r_complete = outcome.System.qo_complete;
    r_bytes_in = pr.Report.pr_bytes_in;
    r_data_msgs = pr.Report.pr_data_msgs;
    r_pushed = pr.Report.pr_pushed;
    r_filtered = pr.Report.pr_filtered_at_source;
    r_wall_s = wall;
  }

(* Pairs of (baseline, pushdown) runs in shape-major order. *)
let measure_all ~tiny () =
  let wl = workload ~tiny in
  let pairs =
    List.concat_map
      (fun shape ->
        List.map
          (fun q -> (measure wl shape q false, measure wl shape q true))
          queries)
      shapes
  in
  (wl, pairs)

let ratio base own = if own > 0 then float_of_int base /. float_of_int own else nan

let check_invariants pairs =
  List.iter
    (fun (base, push) ->
      let where =
        Printf.sprintf "%s/%s" (Topology.shape_name base.r_shape) base.r_query
      in
      if not (List.equal Tuple.equal base.r_answers push.r_answers) then
        failwith (Printf.sprintf "pushdown changed the answers on %s" where);
      if base.r_complete <> push.r_complete then
        failwith (Printf.sprintf "pushdown changed completeness on %s" where);
      if push.r_bytes_in > base.r_bytes_in then
        failwith
          (Printf.sprintf "pushdown increased answer bytes on %s: %d B > %d B" where
             push.r_bytes_in base.r_bytes_in);
      if String.equal base.r_query "selective" && push.r_bytes_in * 2 > base.r_bytes_in
      then
        failwith
          (Printf.sprintf
             "selective pushdown below the 2x bar on %s: %d B vs %d B baseline" where
             push.r_bytes_in base.r_bytes_in))
    pairs

let print_table wl pairs =
  Tables.print
    ~title:
      (Printf.sprintf
         "E17 - constraint pushdown (chain & clique N=%d, %d tuples/node, %d key values)"
         wl.wl_nodes wl.wl_tuples wl.wl_domain)
    ~header:
      [
        "shape"; "query"; "pushdown"; "answers"; "bytes in"; "data msgs";
        "constrained reqs"; "filtered at src"; "bytes vs off";
      ]
    (List.concat_map
       (fun (base, push) ->
         List.map
           (fun r ->
             [
               Topology.shape_name r.r_shape;
               r.r_query;
               (if r.r_pushdown then "on" else "off");
               Tables.i0 (List.length r.r_answers);
               Tables.i0 r.r_bytes_in;
               Tables.i0 r.r_data_msgs;
               Tables.i0 r.r_pushed;
               Tables.i0 r.r_filtered;
               (if r.r_pushdown then
                  Printf.sprintf "%.2fx" (ratio base.r_bytes_in r.r_bytes_in)
                else "1.00x");
             ])
           [ base; push ])
       pairs)

(* Hand-rolled JSON: the harness must not grow dependencies. *)
let write_json ~path wl pairs =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"pushdown\",\n";
  p "  \"workload\": {\"nodes\": %d, \"tuples_per_node\": %d, \"domain\": %d},\n"
    wl.wl_nodes wl.wl_tuples wl.wl_domain;
  p "  \"runs\": [\n";
  let n = List.length pairs in
  List.iteri
    (fun i (base, push) ->
      p "    {\"shape\": \"%s\", \"query\": \"%s\", \"answers\": %d, \
         \"complete\": %b,\n"
        (Topology.shape_name base.r_shape)
        base.r_query (List.length base.r_answers) base.r_complete;
      p "     \"baseline\": {\"bytes_in\": %d, \"data_msgs\": %d, \"wall_s\": %.4f},\n"
        base.r_bytes_in base.r_data_msgs base.r_wall_s;
      p "     \"pushdown\": {\"bytes_in\": %d, \"data_msgs\": %d, \
         \"constrained_requests\": %d, \"filtered_at_source\": %d, \
         \"wall_s\": %.4f},\n"
        push.r_bytes_in push.r_data_msgs push.r_pushed push.r_filtered push.r_wall_s;
      p "     \"bytes_reduction\": %.2f, \"answers_identical\": true}%s\n"
        (ratio base.r_bytes_in push.r_bytes_in)
        (if i = n - 1 then "" else ","))
    pairs;
  p "  ]\n";
  p "}\n";
  close_out oc

let json_path = "BENCH_pushdown.json"

let run ?(tiny = false) ?(json = true) () =
  let wl, pairs = measure_all ~tiny () in
  print_table wl pairs;
  check_invariants pairs;
  if json then begin
    write_json ~path:json_path wl pairs;
    Printf.printf "wrote %s\n%!" json_path
  end
