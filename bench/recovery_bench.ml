(* Recovery bench (experiment E21 and `make recovery-bench`).

   The E16 chaos chain workload with a mid-run crash of a middle node:
   one global update starts at the head, the victim crashes while data
   is flowing through it and restarts shortly after.  The same seeded
   scenario runs under the two honest-crash durability models:

     volatile   clear-and-refetch — the store restarts empty (modulo
                the node's own declared facts) and a catch-up global
                update re-imports everything through the rules;
     wal        true recovery — snapshot + log replay rebuild the
                store, lineage, transport sequence state, sent-filters
                and subscription state; only the in-flight tail is
                re-delivered by the reliable transport.

   Both modes must reach a store digest identical, node for node, to
   the fault-free reference run — recovery is allowed to cost, never
   to lose.  The headline gate is the refetch axis: the volatile run
   must refetch at least 2x the bytes the WAL run does.  The recovery
   axes (recovery time, records replayed, WAL volume) are reported
   alongside.  The WAL cell runs twice to prove determinism.  Results
   go to BENCH_recovery.json (full) / BENCH_recovery_tiny.json
   (--tiny), the full file embedding a tiny_reference block the CI
   gate pins the tiny rerun against. *)

module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Network = Codb_net.Network
module Datagen = Codb_workload.Datagen

type workload = {
  wl_nodes : int;
  wl_tuples : int;
  wl_domain : int;
  wl_skew : float;
  wl_crash_at : float;
      (* roughly mid-update for this chain (E2: chain 4 completes at
         ~0.010s sim, chain 8 at ~0.022s) so the crash interrupts a
         live data flow, with real state both committed and in flight *)
}

let workload ~tiny =
  if tiny then
    { wl_nodes = 4; wl_tuples = 20; wl_domain = 25; wl_skew = 1.0;
      wl_crash_at = 0.0045 }
  else
    { wl_nodes = 8; wl_tuples = 50; wl_domain = 50; wl_skew = 1.0;
      wl_crash_at = 0.01 }

let config ~seed wl =
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = wl.wl_tuples;
      profile = { Datagen.domain_size = wl.wl_domain; skew = wl.wl_skew };
    }
  in
  Topology.generate ~params ~seed Topology.Chain ~n:wl.wl_nodes

let ack_timeout = 0.05

let max_retries = 8

(* The victim sits mid-chain, crashes while the update flows through
   it and comes back well inside the transport's retry span. *)
let victim wl = Printf.sprintf "n%d" (wl.wl_nodes / 2)

let downtime = 0.1

let opts_of ~fault_seed ~durability ~crashes =
  {
    Options.default with
    Options.fault_seed;
    ack_timeout;
    max_retries;
    durability;
    crash_plan = crashes;
  }

type cell = {
  m_mode : string;
  m_digests : (string * int) list;
  m_refetched : int;
  m_recoveries : int;
  m_recovered_records : int;
  m_replayed_bytes : int;
  m_recovery_ms : float;
  m_wal_records : int;
  m_wal_bytes : int;
  m_snapshots : int;
  m_snapshot_bytes : int;
  m_delivered : int;
  m_retransmits : int;
  m_wall_s : float;
}

let measure ~seed ~durability ~crashes ~mode wl =
  let opts = opts_of ~fault_seed:(seed + 1) ~durability ~crashes in
  let sys = System.build_exn ~opts (config ~seed wl) in
  let wall_start = Unix.gettimeofday () in
  let _uid = System.run_update sys ~initiator:"n0" in
  let wall = Unix.gettimeofday () -. wall_start in
  let chaos = Report.chaos_report (System.snapshots sys) in
  let dr = System.durability_report sys in
  {
    m_mode = mode;
    m_digests = System.store_digests sys;
    m_refetched = chaos.Report.chr_refetched_bytes;
    m_recoveries = dr.System.dr_recoveries;
    m_recovered_records = dr.System.dr_recovered_records;
    m_replayed_bytes = dr.System.dr_replayed_bytes;
    m_recovery_ms = dr.System.dr_recovery_ms;
    m_wal_records = dr.System.dr_wal_records;
    m_wal_bytes = dr.System.dr_wal_bytes;
    m_snapshots = dr.System.dr_snapshots;
    m_snapshot_bytes = dr.System.dr_snapshot_bytes;
    m_delivered = (Network.counters (System.net sys)).Network.delivered;
    m_retransmits = chaos.Report.chr_retransmits;
    m_wall_s = wall;
  }

type outcome = {
  o_reference : cell;
  o_volatile : cell;
  o_wal : cell;
  o_reduction : float;
}

let check_gates ~where o =
  let check_digests c =
    if c.m_digests <> o.o_reference.m_digests then
      failwith
        (Printf.sprintf
           "%s: %s run diverged from the fault-free reference stores" where
           c.m_mode)
  in
  check_digests o.o_volatile;
  check_digests o.o_wal;
  if o.o_wal.m_recoveries <> 1 then
    failwith
      (Printf.sprintf "%s: expected exactly 1 WAL recovery, saw %d" where
         o.o_wal.m_recoveries);
  if o.o_wal.m_refetched * 2 > o.o_volatile.m_refetched then
    failwith
      (Printf.sprintf
         "%s: recovery refetched %d B, clear-and-refetch %d B — below the 2x \
          bar"
         where o.o_wal.m_refetched o.o_volatile.m_refetched)

let strip_wall c = { c with m_wall_s = 0.0; m_recovery_ms = 0.0 }

let measure_all ~seed wl =
  let crashes = [ (victim wl, wl.wl_crash_at, Some (wl.wl_crash_at +. downtime)) ] in
  let reference =
    measure ~seed ~durability:Options.Dur_off ~crashes:[] ~mode:"reference" wl
  in
  let volatile =
    measure ~seed ~durability:Options.Dur_volatile ~crashes ~mode:"volatile" wl
  in
  let wal = measure ~seed ~durability:Options.Dur_wal ~crashes ~mode:"wal" wl in
  let wal' = measure ~seed ~durability:Options.Dur_wal ~crashes ~mode:"wal" wl in
  if strip_wall wal <> strip_wall wal' then
    failwith "recovery bench is not deterministic: same seed, different run";
  let o =
    {
      o_reference = reference;
      o_volatile = volatile;
      o_wal = wal;
      o_reduction =
        (* a zero-refetch recovery divides by 1: the reported ratio
           stays finite (and JSON-representable) *)
        float_of_int volatile.m_refetched
        /. float_of_int (max 1 wal.m_refetched);
    }
  in
  check_gates ~where:(Printf.sprintf "chain N=%d" wl.wl_nodes) o;
  o

let print_table ~label wl o =
  Tables.print
    ~title:
      (Printf.sprintf
         "E21 - crash recovery [%s] (chain N=%d, %d tuples/node, crash %s at \
          %gs for %gs, ack %gs, retries %d)"
         label wl.wl_nodes wl.wl_tuples (victim wl) wl.wl_crash_at downtime
         ack_timeout max_retries)
    ~header:
      [
        "mode"; "refetched B"; "recov"; "records"; "replayed B"; "recovery ms";
        "wal records"; "wal B"; "snaps"; "delivered"; "retransmits";
      ]
    (List.map
       (fun c ->
         [
           c.m_mode;
           Tables.i0 c.m_refetched;
           Tables.i0 c.m_recoveries;
           Tables.i0 c.m_recovered_records;
           Tables.i0 c.m_replayed_bytes;
           Printf.sprintf "%.3f" c.m_recovery_ms;
           Tables.i0 c.m_wal_records;
           Tables.i0 c.m_wal_bytes;
           Tables.i0 c.m_snapshots;
           Tables.i0 c.m_delivered;
           Tables.i0 c.m_retransmits;
         ])
       [ o.o_reference; o.o_volatile; o.o_wal ]);
  Printf.printf "refetch reduction (volatile / wal): %.2fx\n%!" o.o_reduction

let emit_outcome oc ~indent ~seed wl o =
  let pad = String.make indent ' ' in
  let p fmt = Printf.fprintf oc fmt in
  p "%s\"workload\": {\"topology\": \"chain\", \"nodes\": %d, \
     \"tuples_per_node\": %d, \"domain\": %d, \"skew\": %g},\n"
    pad wl.wl_nodes wl.wl_tuples wl.wl_domain wl.wl_skew;
  p "%s\"seed\": %d,\n" pad seed;
  p "%s\"transport\": {\"ack_timeout_s\": %g, \"max_retries\": %d},\n" pad
    ack_timeout max_retries;
  p "%s\"crash\": {\"victim\": \"%s\", \"at_s\": %g, \"restart_s\": %g},\n" pad
    (victim wl) wl.wl_crash_at (wl.wl_crash_at +. downtime);
  p "%s\"modes\": [\n" pad;
  let cells = [ o.o_reference; o.o_volatile; o.o_wal ] in
  let n = List.length cells in
  List.iteri
    (fun i c ->
      p
        "%s  {\"mode\": \"%s\", \"digests_match_reference\": %b, \
         \"refetched_bytes\": %d, \"recoveries\": %d, \"recovered_records\": \
         %d, \"replayed_bytes\": %d, \"recovery_ms\": %.3f, \"wal_records\": \
         %d, \"wal_bytes\": %d, \"snapshots\": %d, \"snapshot_bytes\": %d, \
         \"delivered_msgs\": %d, \"retransmits\": %d, \"wall_s\": %.4f}%s\n"
        pad c.m_mode
        (c.m_digests = o.o_reference.m_digests)
        c.m_refetched c.m_recoveries c.m_recovered_records c.m_replayed_bytes
        c.m_recovery_ms c.m_wal_records c.m_wal_bytes c.m_snapshots
        c.m_snapshot_bytes c.m_delivered c.m_retransmits c.m_wall_s
        (if i = n - 1 then "" else ","))
    cells;
  p "%s],\n" pad;
  p "%s\"refetch_reduction\": %.2f,\n" pad o.o_reduction;
  p "%s\"deterministic\": true" pad

let write_json ~path ~seed ~full_part ~tiny_part =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"recovery\",\n";
  (match full_part with
  | Some (wl, o) ->
      emit_outcome oc ~indent:2 ~seed wl o;
      p ",\n"
  | None -> ());
  (match tiny_part with
  | Some (wl, o) ->
      p "  \"tiny_reference\": {\n";
      emit_outcome oc ~indent:4 ~seed wl o;
      p "\n  },\n"
  | None -> ());
  p "  \"ok\": true\n";
  p "}\n";
  close_out oc

let run ?(tiny = false) ?(seed = 1500) () =
  if tiny then begin
    let wl = workload ~tiny:true in
    let o = measure_all ~seed wl in
    print_table ~label:"tiny" wl o;
    write_json ~path:"BENCH_recovery_tiny.json" ~seed ~full_part:None
      ~tiny_part:(Some (wl, o));
    Printf.printf "wrote BENCH_recovery_tiny.json\n%!"
  end
  else begin
    let tiny_wl = workload ~tiny:true in
    let tiny_o = measure_all ~seed tiny_wl in
    print_table ~label:"tiny reference" tiny_wl tiny_o;
    let wl = workload ~tiny:false in
    let o = measure_all ~seed wl in
    print_table ~label:"full" wl o;
    write_json ~path:"BENCH_recovery.json" ~seed ~full_part:(Some (wl, o))
      ~tiny_part:(Some (tiny_wl, tiny_o));
    Printf.printf "wrote BENCH_recovery.json\n%!"
  end
