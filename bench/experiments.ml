(* The demo experiments (DESIGN.md, per-experiment index).

   The VLDB'04 demo paper publishes no numeric tables — its stated
   goal is to "measure the performance of various networks arranged in
   different topologies" and to report, per node and aggregated by the
   super-peer: total execution time of an update, the number of query
   result messages per coordination rule, the data volume per message,
   and the longest update propagation path.  Each experiment below
   regenerates one such measurement as a table; EXPERIMENTS.md records
   a reference run. *)

module System = Codb_core.System
module Topology = Codb_core.Topology
module Report = Codb_core.Report
module Options = Codb_core.Options
module Stats = Codb_core.Stats
module Parser = Codb_cq.Parser
module Config = Codb_cq.Config
module Value = Codb_relalg.Value
module Network = Codb_net.Network
module Datagen = Codb_workload.Datagen

let params ?(tuples = 100) ?(existential = 0.0) ?(comparison = 0.0) () =
  {
    Topology.tuples_per_node = tuples;
    profile = { Datagen.domain_size = 200; skew = 0.0 };
    existential_frac = existential;
    comparison_frac = comparison;
    connected = true;
  }

let data_query =
  match Parser.parse_query "ans(x, y) <- data(x, y)" with
  | Ok q -> q
  | Error e -> failwith e

let run_one ?opts ~params:p ~seed shape ~n ~initiator () =
  let sys = System.build_exn ?opts (Topology.generate ~params:p ~seed shape ~n) in
  let wall_start = Unix.gettimeofday () in
  let uid = System.run_update sys ~initiator in
  let wall = Unix.gettimeofday () -. wall_start in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  (sys, report, wall)

(* E1 — Table 1: one global update across the demo topologies. *)
let e1 () =
  let n = 12 in
  let shapes =
    [
      Topology.Chain; Topology.Ring; Topology.Star_in; Topology.Star_out;
      Topology.Binary_tree; Topology.Grid (3, 4); Topology.Random_graph 0.2;
      Topology.Clique;
    ]
  in
  let row shape =
    let _, r, wall = run_one ~params:(params ()) ~seed:100 shape ~n ~initiator:"n0" () in
    [
      Topology.shape_name shape;
      Tables.f4 r.Report.ur_duration;
      Tables.i0 r.Report.ur_data_msgs;
      Tables.i0 r.Report.ur_control_msgs;
      Tables.i0 r.Report.ur_bytes;
      Tables.i0 r.Report.ur_new_tuples;
      Tables.i0 r.Report.ur_dup_suppressed;
      Tables.i0 r.Report.ur_longest_path;
      Tables.f2 (wall *. 1000.0);
    ]
  in
  Tables.print
    ~title:
      "E1 (Table 1) - global update across topologies (N=12, 100 tuples/node, seed \
       100)"
    ~header:
      [
        "topology"; "sim time (s)"; "data msgs"; "ctrl msgs"; "bytes"; "new tuples";
        "dups"; "longest path"; "wall (ms)";
      ]
    (List.map row shapes)

(* E2 — Table 2: scaling with the number of nodes. *)
let e2 () =
  let sizes = [ 2; 4; 8; 16; 32; 64 ] in
  let row shape n =
    let _, r, wall =
      run_one ~params:(params ~tuples:50 ()) ~seed:(200 + n) shape ~n ~initiator:"n0" ()
    in
    [
      Topology.shape_name shape;
      Tables.i0 n;
      Tables.f4 r.Report.ur_duration;
      Tables.i0 r.Report.ur_data_msgs;
      Tables.i0 r.Report.ur_bytes;
      Tables.i0 r.Report.ur_longest_path;
      Tables.f2 (wall *. 1000.0);
    ]
  in
  Tables.print
    ~title:"E2 (Table 2) - scaling with network size (50 tuples/node)"
    ~header:
      [ "topology"; "N"; "sim time (s)"; "data msgs"; "bytes"; "longest path";
        "wall (ms)" ]
    (List.map (row Topology.Chain) sizes @ List.map (row Topology.Binary_tree) sizes)

(* E3 — Table 3: query-time answering vs. querying after a global
   update.  The crossover the paper motivates: per-query cost vs. a
   one-off materialisation. *)
let e3 () =
  let sizes = [ 2; 4; 8; 12; 16 ] in
  let row n =
    let p = params ~tuples:50 () in
    let cfg () = Topology.generate ~params:p ~seed:(300 + n) Topology.Chain ~n in
    (* query-time *)
    let sys_q = System.build_exn (cfg ()) in
    let outcome = System.run_query sys_q ~at:"n0" data_query in
    let query_time = outcome.System.qo_finished -. outcome.System.qo_started in
    (* materialise once, then query locally (zero network cost) *)
    let sys_u = System.build_exn (cfg ()) in
    let uid = System.run_update sys_u ~initiator:"n0" in
    let r = Option.get (Report.update_report (System.snapshots sys_u) uid) in
    let local = System.local_answers sys_u ~at:"n0" data_query in
    [
      Tables.i0 n;
      Tables.f4 query_time;
      Tables.i0 outcome.System.qo_data_msgs;
      Tables.i0 (List.length outcome.System.qo_answers);
      Tables.f4 r.Report.ur_duration;
      Tables.i0 r.Report.ur_data_msgs;
      Tables.i0 (List.length local);
    ]
  in
  Tables.print
    ~title:
      "E3 (Table 3) - query-time fetch vs. global update + local query (chain, query \
       at head)"
    ~header:
      [
        "N"; "query sim (s)"; "query msgs"; "answers"; "update sim (s)"; "update msgs";
        "local answers";
      ]
    (List.map row sizes)

(* E4 — Figure A: per-coordination-rule traffic distribution, the
   statistics module's flagship report.  On a grid the traffic
   concentrates toward the sink corner, so the distribution is
   informative (on a strongly connected random graph every link ends
   up carrying the full closure exactly once, which is itself a
   property worth stating — see EXPERIMENTS.md). *)
let e4 () =
  let _, r, _ =
    run_one
      ~params:(params ~tuples:50 ())
      ~seed:400 (Topology.Grid (4, 4)) ~n:16 ~initiator:"n0" ()
  in
  let rows =
    List.map
      (fun (e : Stats.rule_traffic_snap) ->
        [
          e.Stats.rts_rule;
          Tables.i0 e.Stats.rts_msgs;
          Tables.i0 e.Stats.rts_bytes;
          Tables.i0 e.Stats.rts_tuples;
          (if e.Stats.rts_msgs = 0 then "-"
           else Tables.f2 (float_of_int e.Stats.rts_bytes /. float_of_int e.Stats.rts_msgs));
        ])
      r.Report.ur_per_rule
  in
  let total_msgs =
    List.fold_left (fun acc e -> acc + e.Stats.rts_msgs) 0 r.Report.ur_per_rule
  in
  let total_bytes =
    List.fold_left (fun acc e -> acc + e.Stats.rts_bytes) 0 r.Report.ur_per_rule
  in
  Tables.print
    ~title:
      "E4 (Figure A) - messages and data volume per coordination rule (grid 4x4, 50 \
       tuples/node, seed 400)"
    ~header:[ "rule"; "msgs"; "bytes"; "tuples"; "bytes/msg" ]
    (rows @ [ [ "TOTAL"; Tables.i0 total_msgs; Tables.i0 total_bytes; "-"; "-" ] ])

(* E5 — Table 4: cyclic rule systems; the fix-point cost as the cycle
   grows, with and without existential heads. *)
let e5 () =
  let sizes = [ 2; 4; 8; 12; 16 ] in
  let row ~existential n =
    Value.reset_null_counter ();
    let p = params ~tuples:20 ~existential () in
    let _, r, wall = run_one ~params:p ~seed:(500 + n) Topology.Ring ~n ~initiator:"n0" () in
    [
      Tables.i0 n;
      (if existential > 0.0 then "yes" else "no");
      Tables.f4 r.Report.ur_duration;
      Tables.i0 r.Report.ur_data_msgs;
      Tables.i0 r.Report.ur_new_tuples;
      Tables.i0 r.Report.ur_nulls;
      Tables.i0 r.Report.ur_longest_path;
      Tables.f2 (wall *. 1000.0);
    ]
  in
  Tables.print
    ~title:"E5 (Table 4) - cyclic coordination (rings, 20 tuples/node)"
    ~header:
      [
        "ring N"; "existential"; "sim time (s)"; "data msgs"; "new tuples"; "nulls";
        "longest path"; "wall (ms)";
      ]
    (List.map (row ~existential:0.0) sizes @ List.map (row ~existential:1.0) sizes)

(* E6 — Table 5: dynamic topology via the super-peer's rules file. *)
let e6 () =
  let n = 8 in
  let p = params ~tuples:50 () in
  let chain = Topology.generate ~params:p ~seed:600 Topology.Chain ~n in
  let sys = System.build_exn chain in
  let phase name uid =
    let r = Option.get (Report.update_report (System.snapshots sys) uid) in
    [
      name;
      Tables.f4 r.Report.ur_duration;
      Tables.i0 r.Report.ur_data_msgs;
      Tables.i0 r.Report.ur_new_tuples;
      Tables.i0 r.Report.ur_dup_suppressed;
      Tables.i0 r.Report.ur_longest_path;
    ]
  in
  let u1 = System.run_update sys ~initiator:"n0" in
  let row1 = phase "chain, first update" u1 in
  let star = Topology.rules_only (Topology.generate ~params:p ~seed:600 Topology.Star_in ~n) in
  System.broadcast_rules sys star;
  let u2 = System.run_update sys ~initiator:"n0" in
  let row2 = phase "rewired to star-in, second update" u2 in
  (* fresh data at a leaf shows the new topology in action *)
  let n5 = System.node sys "n5" in
  ignore
    (Codb_relalg.Database.insert n5.Codb_core.Node.store "data"
       [| Value.Int 424242; Value.Str "late" |]);
  let u3 = System.run_update sys ~initiator:"n5" in
  let row3 = phase "fresh fact at n5, third update" u3 in
  Tables.print
    ~title:"E6 (Table 5) - runtime topology change via rules-file broadcast (N=8)"
    ~header:
      [ "phase"; "sim time (s)"; "data msgs"; "new tuples"; "dups"; "longest path" ]
    [ row1; row2; row3 ]

(* E7 — Table 6: the cost of existential heads (marked nulls). *)
let e7 () =
  let fracs = [ 0.0; 0.5; 1.0 ] in
  let row existential =
    Value.reset_null_counter ();
    let p = params ~tuples:50 ~existential () in
    let _, r, wall =
      run_one ~params:p ~seed:700 Topology.Chain ~n:8 ~initiator:"n0" ()
    in
    [
      Tables.f2 existential;
      Tables.f4 r.Report.ur_duration;
      Tables.i0 r.Report.ur_data_msgs;
      Tables.i0 r.Report.ur_new_tuples;
      Tables.i0 r.Report.ur_nulls;
      Tables.i0 r.Report.ur_bytes;
      Tables.f2 (wall *. 1000.0);
    ]
  in
  Tables.print
    ~title:"E7 (Table 6) - existential head fraction (chain N=8, 50 tuples/node)"
    ~header:
      [
        "existential frac"; "sim time (s)"; "data msgs"; "new tuples"; "nulls"; "bytes";
        "wall (ms)";
      ]
    (List.map row fracs)

(* E8 — Table 7: ablation of the duplicate-suppression machinery.

   Plain copy rules cannot expose it (every delta derives only fresh
   tuples), so this experiment uses a hand-crafted network where the
   optimisations genuinely fire:

   - [psink] imports *projections* from two mid nodes: the same head
     tuple is re-derivable from many body tuples arriving in separate
     batches — that is what the per-link sent cache suppresses;
   - [esink] imports through two *existential* rules over the same
     data: the same hole-tuple arrives once per path — that is what
     null-aware pre-insert subsumption suppresses (without it, every
     arrival mints fresh nulls: null bloat). *)
let e8_network () =
  let rel_data = Codb_relalg.Schema.make "data" [ ("k", Value.Tint); ("y", Value.Tint) ] in
  let rel_proj = Codb_relalg.Schema.make "proj" [ ("k", Value.Tint) ] in
  let rel_anon = Codb_relalg.Schema.make "anon" [ ("k", Value.Tint); ("w", Value.Tint) ] in
  let facts ~lo ~hi ~stamp =
    List.concat_map
      (fun k ->
        List.map (fun j -> ("data", [| Value.Int k; Value.Int ((stamp * 1000) + (k * 10) + j) |]))
          [ 0; 1; 2 ])
      (List.init (hi - lo + 1) (fun idx -> lo + idx))
  in
  let node ?(facts = []) name relations =
    { Config.node_name = name; relations; facts; mediator = false; constraints = [] }
  in
  let rule rule_id importer source text =
    match Parser.parse_query text with
    | Ok rule_query -> { Config.rule_id; importer; source; rule_query }
    | Error e -> failwith e
  in
  {
    Config.nodes =
      [
        node "far" [ rel_data ] ~facts:(facts ~lo:0 ~hi:9 ~stamp:1);
        node "origin" [ rel_data ] ~facts:(facts ~lo:5 ~hi:14 ~stamp:2);
        node "mid1" [ rel_data ];
        node "mid2" [ rel_data ];
        node "psink" [ rel_proj ];
        node "esink" [ rel_anon ];
      ];
    rules =
      [
        rule "r_o_far" "origin" "far" "data(k, y) <- data(k, y)";
        rule "r_m1" "mid1" "origin" "data(k, y) <- data(k, y)";
        rule "r_m2" "mid2" "origin" "data(k, y) <- data(k, y)";
        rule "r_p1" "psink" "mid1" "proj(k) <- data(k, y)";
        rule "r_p2" "psink" "mid2" "proj(k) <- data(k, y)";
        rule "r_e1" "esink" "mid1" "anon(k, w) <- data(k, y)";
        rule "r_e2" "esink" "mid2" "anon(k, w) <- data(k, y)";
      ];
  }

let e8 () =
  let variants =
    [
      ("full algorithm", Options.default);
      ("no sent cache", { Options.default with Options.use_sent_cache = false });
      ( "no pre-insert subsumption",
        { Options.default with Options.use_subsumption_dedup = false } );
      ( "neither",
        { Options.default with Options.use_sent_cache = false;
          use_subsumption_dedup = false } );
      ("naive re-evaluation", { Options.default with Options.naive_delta = true });
    ]
  in
  let count_query = Parser.parse_query "a(k, w) <- anon(k, w)" in
  let count_query = match count_query with Ok q -> q | Error e -> failwith e in
  let row (name, opts) =
    Value.reset_null_counter ();
    let sys = System.build_exn ~opts (e8_network ()) in
    let wall_start = Unix.gettimeofday () in
    let uid = System.run_update sys ~initiator:"psink" in
    let wall = Unix.gettimeofday () -. wall_start in
    let r = Option.get (Report.update_report (System.snapshots sys) uid) in
    let esink_tuples = List.length (System.local_answers sys ~at:"esink" count_query) in
    [
      name;
      Tables.i0 r.Report.ur_data_msgs;
      Tables.i0 r.Report.ur_bytes;
      Tables.i0 r.Report.ur_dup_suppressed;
      Tables.i0 r.Report.ur_nulls;
      Tables.i0 esink_tuples;
      Tables.f2 (wall *. 1000.0);
    ]
  in
  Tables.print
    ~title:
      "E8 (Table 7) - duplicate-suppression ablation (projection + existential \
       diamond)"
    ~header:
      [ "variant"; "data msgs"; "bytes"; "dups"; "nulls"; "esink tuples"; "wall (ms)" ]
    (List.map row variants)

(* E9 — Table 12: the semantic query-answer cache.  A repeated-query
   workload at the head of a chain: the cold run pays the full
   diffusion, warm runs must be answered from the cache (zero network
   messages), a narrower query (extra comparison) is answerable from
   the cached superset only when containment-aware hits are on, and a
   global update invalidates everything through the epoch stamps so
   the next run fetches again. *)
let e9 () =
  let p = params ~tuples:50 () in
  let narrow_query =
    match Parser.parse_query "ans(x, y) <- data(x, y), x > 100" with
    | Ok q -> q
    | Error e -> failwith e
  in
  let variants =
    [
      ("no cache", Options.default);
      ("cache, exact hits only", { Options.with_cache with Options.cache_containment = false });
      ("cache + containment", Options.with_cache);
    ]
  in
  let row (name, opts) =
    let sys =
      System.build_exn ~opts (Topology.generate ~params:p ~seed:900 Topology.Chain ~n:8)
    in
    let run_q q =
      let before = (Network.counters (System.net sys)).Network.delivered in
      ignore (System.run_query sys ~at:"n0" q);
      (Network.counters (System.net sys)).Network.delivered - before
    in
    let cold = run_q data_query in
    let warm = run_q data_query + run_q data_query in
    let narrow = run_q narrow_query in
    ignore (System.run_update sys ~initiator:"n0");
    let post_update = run_q data_query in
    let ratio =
      let rows = Report.cache_report (System.snapshots sys) in
      match
        List.find_opt
          (fun r -> String.equal (Codb_net.Peer_id.to_string r.Report.cr_node) "n0")
          rows
      with
      | Some r -> Tables.f2 r.Report.cr_ratio
      | None -> "-"
    in
    [
      name;
      Tables.i0 cold;
      Tables.i0 warm;
      Tables.i0 narrow;
      Tables.i0 post_update;
      ratio;
    ]
  in
  Tables.print
    ~title:
      "E9 (Table 12) - query-answer cache ablation (chain N=8, 50 tuples/node, query \
       at head)"
    ~header:
      [
        "variant"; "cold msgs"; "2 warm runs msgs"; "narrow query msgs";
        "post-update msgs"; "hit ratio @n0";
      ]
    (List.map row variants)

(* E11 — Table 9: three ways to get an answer at one node — query-time
   fetch (overlays, simple paths), query-dependent (scoped) update,
   full global update — compared on the same workload.  The scoped
   update is the middle ground the paper's DBM supports
   ("query-dependent update requests"): it materialises like the
   global algorithm but touches only the relevant part of the
   network. *)
let e11 () =
  let p = params ~tuples:50 () in
  let shapes =
    [ (Topology.Star_out, 12, "n1"); (Topology.Grid (3, 4), 12, "n0");
      (Topology.Chain, 12, "n0") ]
  in
  let row (shape, n, at) =
    let mk () = Topology.generate ~params:p ~seed:1100 shape ~n in
    (* query-time *)
    let sys_q = System.build_exn (mk ()) in
    let before = Network.counters (System.net sys_q) in
    let outcome = System.run_query sys_q ~at data_query in
    let after = Network.counters (System.net sys_q) in
    let q_msgs = after.Network.delivered - before.Network.delivered in
    let q_time = outcome.System.qo_finished -. outcome.System.qo_started in
    (* scoped update *)
    let sys_s = System.build_exn (mk ()) in
    let us = System.run_scoped_update sys_s ~at data_query in
    let rs = Option.get (Report.update_report (System.snapshots sys_s) us) in
    (* global update *)
    let sys_g = System.build_exn (mk ()) in
    let ug = System.run_update sys_g ~initiator:at in
    let rg = Option.get (Report.update_report (System.snapshots sys_g) ug) in
    [
      Printf.sprintf "%s@%s" (Topology.shape_name shape) at;
      Tables.f4 q_time;
      Tables.i0 q_msgs;
      Tables.f4 rs.Report.ur_duration;
      Tables.i0 (rs.Report.ur_data_msgs + rs.Report.ur_control_msgs);
      Tables.f4 rg.Report.ur_duration;
      Tables.i0 (rg.Report.ur_data_msgs + rg.Report.ur_control_msgs);
    ]
  in
  Tables.print
    ~title:
      "E11 (Table 9) - query-time vs query-dependent update vs global update (N=12, \
       50 tuples/node)"
    ~header:
      [
        "workload"; "query sim (s)"; "query msgs"; "scoped sim (s)"; "scoped msgs";
        "global sim (s)"; "global msgs";
      ]
    (List.map row shapes)

(* E10 — Table 8: topology discovery cost as TTL grows. *)
let e10 () =
  let p = params ~tuples:5 () in
  let row ttl =
    let sys =
      System.build_exn (Topology.generate ~params:p ~seed:1000 (Topology.Random_graph 0.1) ~n:32)
    in
    let before = Network.counters (System.net sys) in
    let start = Network.now (System.net sys) in
    let peers = System.discover sys ~at:"n0" ~ttl in
    let after = Network.counters (System.net sys) in
    [
      Tables.i0 ttl;
      Tables.i0 (List.length peers);
      Tables.i0 (after.Network.delivered - before.Network.delivered);
      Tables.i0 (after.Network.total_bytes - before.Network.total_bytes);
      Tables.f4 (Network.now (System.net sys) -. start);
    ]
  in
  Tables.print
    ~title:"E10 (Table 8) - discovery cost vs TTL (random N=32, p=0.1, seed 1000)"
    ~header:[ "ttl"; "peers found"; "messages"; "bytes"; "sim time (s)" ]
    (List.map row [ 0; 1; 2; 3; 4; 5 ])

(* E12 — Table 10: the heterogeneous GLAV workload (joins through the
   link graph, existential projections, filtered copies) across
   topologies — the full rule language the system supports, versus the
   plain schema-translation workload of E1. *)
let e12 () =
  let n = 8 in
  let shapes =
    [ Topology.Chain; Topology.Ring; Topology.Binary_tree; Topology.Clique ]
  in
  let spec mix =
    {
      Codb_workload.Glavgen.default_spec with
      Codb_workload.Glavgen.tuples_per_relation = 30;
      join_frac = (if mix then 0.4 else 0.0);
      existential_frac = (if mix then 0.3 else 0.0);
      comparison_frac = (if mix then 0.3 else 0.0);
    }
  in
  let row ~mix shape =
    Value.reset_null_counter ();
    let edges = Topology.edges shape ~n in
    let cfg = Codb_workload.Glavgen.generate ~spec:(spec mix) ~seed:1200 ~edges ~n () in
    let sys = System.build_exn cfg in
    let wall_start = Unix.gettimeofday () in
    let uid = System.run_update sys ~initiator:"n0" in
    let wall = Unix.gettimeofday () -. wall_start in
    let r = Option.get (Report.update_report (System.snapshots sys) uid) in
    [
      Topology.shape_name shape;
      (if mix then "join/proj/filter" else "copy only");
      Tables.f4 r.Report.ur_duration;
      Tables.i0 r.Report.ur_data_msgs;
      Tables.i0 r.Report.ur_new_tuples;
      Tables.i0 r.Report.ur_nulls;
      Tables.i0 r.Report.ur_dup_suppressed;
      Tables.f2 (wall *. 1000.0);
    ]
  in
  Tables.print
    ~title:
      "E12 (Table 10) - heterogeneous GLAV workload (3 relations/node, 30 \
       tuples/relation, N=8)"
    ~header:
      [
        "topology"; "rule mix"; "sim time (s)"; "data msgs"; "new tuples"; "nulls";
        "dups"; "wall (ms)";
      ]
    (List.concat_map (fun shape -> [ row ~mix:false shape; row ~mix:true shape ]) shapes)

(* E13 — Table 11: sensitivity to the network cost model.  The
   simulated update duration must decompose as
   depth x latency + transfer costs — validating that the simulator's
   clock measures what the original demo's wall clock did, just under
   controlled parameters. *)
let e13 () =
  let p = params ~tuples:50 () in
  let row (latency, byte_cost) =
    let opts = { Options.default with Options.latency; byte_cost } in
    let cfg = Topology.generate ~params:p ~seed:1300 Topology.Chain ~n:8 in
    let sys = System.build_exn ~opts cfg in
    let uid = System.run_update sys ~initiator:"n0" in
    let r = Option.get (Report.update_report (System.snapshots sys) uid) in
    [
      Printf.sprintf "%gms" (latency *. 1000.0);
      Printf.sprintf "%gus/B" (byte_cost *. 1e6);
      Tables.f4 r.Report.ur_duration;
      Tables.i0 r.Report.ur_data_msgs;
      Tables.i0 r.Report.ur_bytes;
    ]
  in
  Tables.print
    ~title:"E13 (Table 11) - cost-model sensitivity (chain N=8, 50 tuples/node)"
    ~header:[ "latency"; "byte cost"; "sim time (s)"; "data msgs"; "bytes" ]
    (List.map row
       [
         (0.0001, 0.000001); (0.001, 0.000001); (0.01, 0.000001); (0.001, 0.0);
         (0.001, 0.00001);
       ])

(* E14 — planner ablation (the cost-based join planner of lib/cq/plan
   vs the legacy greedy order, with and without composite indexes), on
   a skewed multi-join workload.  Implemented in Planner_bench so that
   `bench-json` can run the same measurement headlessly and emit
   BENCH_planner.json. *)
let e14 () = Planner_bench.run ~json:true ()

(* E15 — wire ablation (compact codec vs the size estimator, batching
   on/off, Bloom-bounded sent filters), on a skewed ring update.
   Implemented in Wire_bench so that `wire-json` can run the same
   measurement headlessly and emit BENCH_wire.json. *)
let e15 () = Wire_bench.run ~json:true ()

let all = [ ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4); ("e5", e5); ("e6", e6);
            ("e7", e7); ("e8", e8); ("e9", e9); ("e10", e10); ("e11", e11);
            ("e12", e12); ("e13", e13); ("e14", e14); ("e15", e15) ]

let run names =
  let wanted (name, _) = names = [] || List.mem name names in
  List.iter (fun (_, f) -> f ()) (List.filter wanted all)
