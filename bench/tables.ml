(* Plain-text table rendering for the experiment harness. *)

let render ~title ~header rows =
  let columns = List.length header in
  let widths = Array.of_list (List.map String.length header) in
  List.iter
    (fun row ->
      List.iteri
        (fun idx cell ->
          if idx < columns then widths.(idx) <- max widths.(idx) (String.length cell))
        row)
    rows;
  let pad idx cell = Printf.sprintf "%-*s" widths.(idx) cell in
  let line row = "| " ^ String.concat " | " (List.mapi pad row) ^ " |" in
  let rule =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let buf = Buffer.create 256 in
  Buffer.add_string buf (title ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  Buffer.add_string buf (line header ^ "\n");
  Buffer.add_string buf (rule ^ "\n");
  List.iter
    (fun row ->
      Buffer.add_string buf (line row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.add_string buf rule;
  Buffer.contents buf

(* When set (bench --csv DIR), every printed table is also written as
   a CSV file named after the experiment id in its title. *)
let csv_dir : string option ref = ref None

let slug_of_title title =
  let stop =
    match String.index_opt title ' ' with Some i -> i | None -> String.length title
  in
  String.lowercase_ascii (String.sub title 0 stop)

let csv_escape cell =
  if String.exists (fun c -> c = ',' || c = '"') cell then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' cell) ^ "\""
  else cell

let write_csv ~title ~header rows dir =
  let path = Filename.concat dir (slug_of_title title ^ ".csv") in
  let oc = open_out path in
  let line cells = output_string oc (String.concat "," (List.map csv_escape cells) ^ "\n") in
  line header;
  List.iter line rows;
  close_out oc

let print ~title ~header rows =
  print_endline (render ~title ~header rows);
  print_newline ();
  match !csv_dir with Some dir -> write_csv ~title ~header rows dir | None -> ()

let f2 x = Printf.sprintf "%.2f" x

let f4 x = Printf.sprintf "%.4f" x

let i0 = string_of_int
