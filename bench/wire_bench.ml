(* Wire-efficiency ablation (experiment E15 and `make wire-bench`).

   One global update on a skewed clique workload — every node both
   fans in and fans out, so the same closure arrives over many links
   in a short interval, which is exactly the traffic shape batching
   and duplicate suppression exist for — run once per corner of the
   (encoding x batching x bloom) cube:

     encoding   the schema-based size estimator of the seed vs the
                compact binary codec (varints, zigzag, per-message
                string dictionary) — changes what a message *costs*,
                never what it says;
     batching   per-destination delta buffering inside
                [batch_window], shipped as one [Update_batch] per
                flush — changes how many messages carry the same
                tuples;
     bloom      the bounded sent-filter (Bloom front + exact LRU
                ring) in place of the unbounded per-link sent cache —
                changes duplicate-suppression memory, at the price of
                possible re-sends.

   Every corner must commit exactly the same final stores as the seed
   configuration (checked tuple-for-tuple); the interesting output is
   the message count and byte volume.  Results are printed as a table
   and written to BENCH_wire.json for trend tracking; invariant
   violations (diverging stores, batching that *increases* bytes)
   abort the benchmark so CI fails loudly. *)

module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Node = Codb_core.Node
module Network = Codb_net.Network
module Database = Codb_relalg.Database
module Datagen = Codb_workload.Datagen

type workload = { wl_nodes : int; wl_tuples : int; wl_domain : int; wl_skew : float }

let workload ~tiny =
  if tiny then { wl_nodes = 5; wl_tuples = 30; wl_domain = 30; wl_skew = 1.0 }
  else { wl_nodes = 10; wl_tuples = 80; wl_domain = 60; wl_skew = 1.0 }

let config wl =
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = wl.wl_tuples;
      profile = { Datagen.domain_size = wl.wl_domain; skew = wl.wl_skew };
    }
  in
  Topology.generate ~params ~seed:1500 Topology.Clique ~n:wl.wl_nodes

type corner = {
  c_name : string;
  c_codec : bool;
  c_batched : bool;
  c_bloom : bool;
}

(* The seed configuration first: it is the equivalence baseline. *)
let corners =
  [
    { c_name = "estimator"; c_codec = false; c_batched = false; c_bloom = false };
    { c_name = "estimator+batch"; c_codec = false; c_batched = true; c_bloom = false };
    { c_name = "codec"; c_codec = true; c_batched = false; c_bloom = false };
    { c_name = "codec+bloom"; c_codec = true; c_batched = false; c_bloom = true };
    { c_name = "codec+batch"; c_codec = true; c_batched = true; c_bloom = false };
    { c_name = "codec+batch+bloom"; c_codec = true; c_batched = true; c_bloom = true };
  ]

(* Ten network latencies: enough for several delta waves of the ring
   fix-point to land inside one window. *)
let batch_window = 10.0 *. Options.default.Options.latency

let opts_of c =
  {
    Options.default with
    Options.wire_codec = c.c_codec;
    batch_window = (if c.c_batched then batch_window else 0.0);
    sent_bloom_bits = (if c.c_bloom then 4096 else 0);
    sent_ring_capacity = 512;
  }

type measurement = {
  m_corner : corner;
  m_sys : System.t;
  m_wire : Report.wire_report;
  m_delivered : int;  (* every message, control included *)
  m_total_bytes : int;  (* network-wide, control included *)
  m_duration : float;
  m_new_tuples : int;
  m_wall_s : float;
}

let measure wl c =
  let sys = System.build_exn ~opts:(opts_of c) (config wl) in
  let wall_start = Unix.gettimeofday () in
  let uid = System.run_update sys ~initiator:"n0" in
  let wall = Unix.gettimeofday () -. wall_start in
  let wire = Option.get (Report.wire_report (System.snapshots sys) uid) in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  let counters = Network.counters (System.net sys) in
  {
    m_corner = c;
    m_sys = sys;
    m_wire = wire;
    m_delivered = counters.Network.delivered;
    m_total_bytes = counters.Network.total_bytes;
    m_duration = report.Report.ur_duration;
    m_new_tuples = report.Report.ur_new_tuples;
    m_wall_s = wall;
  }

let check_stores_equal baseline m =
  let names = System.node_names baseline.m_sys in
  List.iter
    (fun name ->
      let store sys = (System.node sys name).Node.store in
      if not (Database.equal_contents (store baseline.m_sys) (store m.m_sys)) then
        failwith
          (Printf.sprintf
             "wire ablation diverged: %s and %s disagree on the store of %s"
             baseline.m_corner.c_name m.m_corner.c_name name))
    names

let ratio base own = if own > 0 then float_of_int base /. float_of_int own else nan

let check_invariants measurements =
  let baseline = List.hd measurements in
  (* the ablation varies the wire encoding and traffic shape only:
     every corner must reach the seed's fix-point, store for store *)
  List.iter (check_stores_equal baseline) (List.tl measurements);
  (* batching exists to save bytes; a batched corner that costs more
     than its unbatched twin is a regression worth failing on *)
  List.iter
    (fun m ->
      if m.m_corner.c_batched then begin
        let twin =
          List.find
            (fun b ->
              b.m_corner.c_codec = m.m_corner.c_codec
              && b.m_corner.c_bloom = m.m_corner.c_bloom
              && not b.m_corner.c_batched)
            measurements
        in
        if m.m_total_bytes > twin.m_total_bytes then
          failwith
            (Printf.sprintf "batching increased wire bytes: %s %d B > %s %d B"
               m.m_corner.c_name m.m_total_bytes twin.m_corner.c_name
               twin.m_total_bytes)
      end)
    measurements

let measure_all ~tiny () =
  let wl = workload ~tiny in
  let measurements = List.map (measure wl) corners in
  (wl, measurements)

let print_table wl measurements =
  let baseline = List.hd measurements in
  Tables.print
    ~title:
      (Printf.sprintf
         "E15 - wire ablation (clique N=%d, %d tuples/node, zipf %.1f over %d values)"
         wl.wl_nodes wl.wl_tuples wl.wl_skew wl.wl_domain)
    ~header:
      [
        "corner"; "data msgs"; "batches"; "avg tup/batch"; "coalesced"; "resends";
        "bytes"; "bytes vs seed"; "msgs vs seed"; "sim (s)";
      ]
    (List.map
       (fun m ->
         [
           m.m_corner.c_name;
           Tables.i0 m.m_wire.Report.wr_data_msgs;
           Tables.i0 m.m_wire.Report.wr_batches;
           Tables.f2 m.m_wire.Report.wr_avg_batch;
           Tables.i0 m.m_wire.Report.wr_coalesced;
           Tables.i0 m.m_wire.Report.wr_resends;
           Tables.i0 m.m_total_bytes;
           Printf.sprintf "%.2fx" (ratio baseline.m_total_bytes m.m_total_bytes);
           Printf.sprintf "%.2fx"
             (ratio baseline.m_wire.Report.wr_data_msgs m.m_wire.Report.wr_data_msgs);
           Tables.f4 m.m_duration;
         ])
       measurements)

(* Hand-rolled JSON: the harness must not grow dependencies. *)
let write_json ~path wl measurements =
  let baseline = List.hd measurements in
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"wire-ablation\",\n";
  p "  \"workload\": {\"topology\": \"clique\", \"nodes\": %d, \"tuples_per_node\": %d, \
     \"domain\": %d, \"skew\": %g},\n"
    wl.wl_nodes wl.wl_tuples wl.wl_domain wl.wl_skew;
  p "  \"batch_window_s\": %g,\n" batch_window;
  p "  \"corners\": [\n";
  let n = List.length measurements in
  List.iteri
    (fun i m ->
      p "    {\"name\": \"%s\", \"codec\": %b, \"batched\": %b, \"bloom\": %b, \
         \"data_msgs\": %d, \"delivered_msgs\": %d, \"batches\": %d, \
         \"batch_tuples\": %d, \"coalesced\": %d, \"resends\": %d, \
         \"data_bytes\": %d, \"total_bytes\": %d, \"bytes_reduction\": %.2f, \
         \"data_msg_reduction\": %.2f, \"sim_duration_s\": %.4f, \
         \"new_tuples\": %d, \"wall_s\": %.4f}%s\n"
        m.m_corner.c_name m.m_corner.c_codec m.m_corner.c_batched m.m_corner.c_bloom
        m.m_wire.Report.wr_data_msgs m.m_delivered m.m_wire.Report.wr_batches
        m.m_wire.Report.wr_batch_tuples m.m_wire.Report.wr_coalesced
        m.m_wire.Report.wr_resends m.m_wire.Report.wr_bytes m.m_total_bytes
        (ratio baseline.m_total_bytes m.m_total_bytes)
        (ratio baseline.m_wire.Report.wr_data_msgs m.m_wire.Report.wr_data_msgs)
        m.m_duration m.m_new_tuples m.m_wall_s
        (if i = n - 1 then "" else ","))
    measurements;
  p "  ],\n";
  p "  \"stores_identical_across_corners\": true\n";
  p "}\n";
  close_out oc

let json_path = "BENCH_wire.json"

let run ?(tiny = false) ?(json = true) () =
  let wl, measurements = measure_all ~tiny () in
  print_table wl measurements;
  check_invariants measurements;
  if json then begin
    write_json ~path:json_path wl measurements;
    Printf.printf "wrote %s\n%!" json_path
  end
