(* Planner ablation benchmark (experiment E14 and `make bench-json`).

   A multi-join workload with skewed relation sizes — the triangle
   query

     ans(x, z) <- e(x, y), f(y, z), e(x, z)

   over a large Zipf-skewed edge relation [e] and a small [f] — is
   evaluated three ways:

     legacy         the pre-planner left-to-right greedy order with
                    single-column probes on the first ground argument
     single-column  the cost-based plan, probes capped at one column
     composite      the cost-based plan with composite index probes
                    (the default evaluator configuration)

   The closing atom e(x, z) arrives with both arguments bound: the
   composite plan answers it with one O(1) probe on both columns,
   while the other variants scan the whole x-bucket of a (skew-heavy)
   hub vertex for every candidate binding.  Results are printed as a
   table and written to BENCH_planner.json for trend tracking. *)

module Database = Codb_relalg.Database
module Schema = Codb_relalg.Schema
module Value = Codb_relalg.Value
module Eval = Codb_cq.Eval
module Parser = Codb_cq.Parser
module Rng = Codb_workload.Rng
module Datagen = Codb_workload.Datagen

let e_schema = Schema.make "e" [ ("a", Value.Tint); ("b", Value.Tint) ]

let f_schema = Schema.make "f" [ ("b", Value.Tint); ("c", Value.Tint) ]

let triangle_query =
  match Parser.parse_query "ans(x, z) <- e(x, y), f(y, z), e(x, z)" with
  | Ok q -> q
  | Error e -> failwith e

type workload = { wl_e : int; wl_f : int; wl_domain : int; wl_skew : float }

let workload ~tiny =
  if tiny then { wl_e = 600; wl_f = 60; wl_domain = 100; wl_skew = 1.0 }
  else { wl_e = 20_000; wl_f = 500; wl_domain = 1_000; wl_skew = 1.0 }

let make_db wl =
  let rng = Rng.make ~seed:1404 in
  let profile = { Datagen.domain_size = wl.wl_domain; skew = wl.wl_skew } in
  let db = Database.create [ e_schema; f_schema ] in
  ignore (Database.insert_all db "e" (Datagen.tuples rng profile e_schema ~count:wl.wl_e));
  ignore (Database.insert_all db "f" (Datagen.tuples rng profile f_schema ~count:wl.wl_f));
  db

type variant = { v_name : string; v_planner : bool; v_max_probe_cols : int option }

let variants =
  [
    { v_name = "legacy"; v_planner = false; v_max_probe_cols = None };
    { v_name = "single-column"; v_planner = true; v_max_probe_cols = Some 1 };
    { v_name = "composite"; v_planner = true; v_max_probe_cols = None };
  ]

type measurement = {
  m_name : string;
  m_answers : int;
  m_runs : int;
  m_wall_s : float;  (* total wall time of the timed runs *)
  m_ops_per_sec : float;
  m_probes : int;  (* per run *)
  m_scans : int;  (* per run *)
}

let measure ~runs wl v =
  (* fresh database per variant so lazily built indexes are paid for
     (and warmed) inside the variant being measured *)
  let db = make_db wl in
  let source = Eval.of_database db in
  let eval () =
    Eval.answer_tuples ~planner:v.v_planner ?max_probe_cols:v.v_max_probe_cols
      source triangle_query
  in
  (* warm-up: builds the variant's indexes and yields counters/answers *)
  let before = Eval.counters () in
  let answers = eval () in
  let after = Eval.counters () in
  let start = Unix.gettimeofday () in
  for _ = 1 to runs do
    ignore (eval ())
  done;
  let wall = Unix.gettimeofday () -. start in
  {
    m_name = v.v_name;
    m_answers = List.length answers;
    m_runs = runs;
    m_wall_s = wall;
    m_ops_per_sec = (if wall > 0.0 then float_of_int runs /. wall else 0.0);
    m_probes = after.Eval.probes - before.Eval.probes;
    m_scans = after.Eval.scans - before.Eval.scans;
  }

let legacy_wall measurements =
  match List.find_opt (fun m -> String.equal m.m_name "legacy") measurements with
  | Some m -> m.m_wall_s /. float_of_int m.m_runs
  | None -> nan

let speedup measurements m =
  let base = legacy_wall measurements in
  let own = m.m_wall_s /. float_of_int m.m_runs in
  if own > 0.0 && not (Float.is_nan base) then base /. own else nan

let measure_all ~tiny () =
  let wl = workload ~tiny in
  let runs = if tiny then 3 else 5 in
  let measurements = List.map (measure ~runs wl) variants in
  (* the ablation only varies the access paths, never the semantics *)
  (match measurements with
  | first :: rest ->
      List.iter
        (fun m ->
          if m.m_answers <> first.m_answers then
            failwith
              (Printf.sprintf "planner ablation disagrees: %s found %d answers, %s %d"
                 first.m_name first.m_answers m.m_name m.m_answers))
        rest
  | [] -> ());
  (wl, measurements)

let print_table wl measurements =
  Tables.print
    ~title:
      (Printf.sprintf
         "E14 - planner ablation (triangle join, e=%d zipf(%.1f) tuples, f=%d)"
         wl.wl_e wl.wl_skew wl.wl_f)
    ~header:
      [ "variant"; "ms/run"; "ops/sec"; "probes/run"; "scans/run"; "answers";
        "speedup vs legacy" ]
    (List.map
       (fun m ->
         [
           m.m_name;
           Tables.f2 (1000.0 *. m.m_wall_s /. float_of_int m.m_runs);
           Tables.f2 m.m_ops_per_sec;
           Tables.i0 m.m_probes;
           Tables.i0 m.m_scans;
           Tables.i0 m.m_answers;
           (let s = speedup measurements m in
            if Float.is_nan s then "-" else Tables.f2 s);
         ])
       measurements)

(* Hand-rolled JSON: the harness must not grow dependencies. *)
let write_json ~path wl measurements =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"planner-ablation\",\n";
  p "  \"query\": \"ans(x, z) <- e(x, y), f(y, z), e(x, z)\",\n";
  p "  \"workload\": {\"e_tuples\": %d, \"f_tuples\": %d, \"domain\": %d, \"skew\": %g},\n"
    wl.wl_e wl.wl_f wl.wl_domain wl.wl_skew;
  p "  \"experiments\": [\n";
  let n = List.length measurements in
  List.iteri
    (fun i m ->
      p "    {\"name\": \"%s\", \"runs\": %d, \"wall_s\": %.6f, \"ms_per_run\": %.4f, \
         \"ops_per_sec\": %.2f, \"probes_per_run\": %d, \"scans_per_run\": %d, \
         \"answers\": %d, \"speedup_vs_legacy\": %s}%s\n"
        m.m_name m.m_runs m.m_wall_s
        (1000.0 *. m.m_wall_s /. float_of_int m.m_runs)
        m.m_ops_per_sec m.m_probes m.m_scans m.m_answers
        (let s = speedup measurements m in
         if Float.is_nan s then "null" else Printf.sprintf "%.2f" s)
        (if i = n - 1 then "" else ","))
    measurements;
  p "  ]\n";
  p "}\n";
  close_out oc

let json_path = "BENCH_planner.json"

let run ?(tiny = false) ?(json = true) () =
  let wl, measurements = measure_all ~tiny () in
  print_table wl measurements;
  if json then begin
    write_json ~path:json_path wl measurements;
    Printf.printf "wrote %s\n%!" json_path
  end
