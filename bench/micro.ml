(* Bechamel micro-benchmarks of the engine primitives:
   conjunctive-query evaluation (scan / join / self-join), semi-naive
   delta steps, relation insertion, rule-file parsing and CQ
   containment. *)

open Bechamel
open Toolkit
module Schema = Codb_relalg.Schema
module Value = Codb_relalg.Value
module Database = Codb_relalg.Database
module Relation = Codb_relalg.Relation
module Eval = Codb_cq.Eval
module Parser = Codb_cq.Parser
module Pretty = Codb_cq.Pretty
module Containment = Codb_cq.Containment
module Topology = Codb_core.Topology
module Rng = Codb_workload.Rng
module Datagen = Codb_workload.Datagen

let r_schema = Schema.make "r" [ ("a", Value.Tint); ("b", Value.Tint) ]

let s_schema = Schema.make "s" [ ("b", Value.Tint); ("c", Value.Tint) ]

let parse_query text =
  match Parser.parse_query text with Ok q -> q | Error e -> failwith e

let make_db size =
  let rng = Rng.make ~seed:size in
  let profile = { Datagen.domain_size = max 10 (size / 4); skew = 0.0 } in
  let db = Database.create [ r_schema; s_schema ] in
  ignore (Database.insert_all db "r" (Datagen.tuples rng profile r_schema ~count:size));
  ignore (Database.insert_all db "s" (Datagen.tuples rng profile s_schema ~count:size));
  db

let scan_query = parse_query "ans(x, y) <- r(x, y)"

let join_query = parse_query "ans(x, c) <- r(x, b), s(b, c)"

let self_join_query = parse_query "ans(x, z) <- r(x, y), r(y, z)"

let eval_test name query size =
  let db = make_db size in
  let source = Eval.of_database db in
  Test.make ~name:(Printf.sprintf "%s/%d" name size)
    (Staged.stage (fun () -> ignore (Eval.answer_tuples source query)))

(* the same join through the legacy left-to-right evaluator: the
   ablation for the cost-based planner *)
let eval_legacy_test name query size =
  let db = make_db size in
  let source = Eval.of_database db in
  Test.make ~name:(Printf.sprintf "%s-legacy/%d" name size)
    (Staged.stage (fun () ->
         ignore (Eval.answer_tuples ~planner:false source query)))

(* the same join without hash indexes: the ablation for the
   index-probing access path *)
let eval_noindex_test name query size =
  let db = make_db size in
  let source =
    Eval.source_of_alist
      [ ("r", Database.tuples db "r"); ("s", Database.tuples db "s") ]
  in
  Test.make ~name:(Printf.sprintf "%s-noindex/%d" name size)
    (Staged.stage (fun () -> ignore (Eval.answer_tuples source query)))

let delta_test size =
  let db = make_db size in
  let source = Eval.of_database db in
  let rng = Rng.make ~seed:(size + 1) in
  let profile = { Datagen.domain_size = max 10 (size / 4); skew = 0.0 } in
  let delta = Database.insert_all db "r" (Datagen.tuples rng profile r_schema ~count:10) in
  Test.make ~name:(Printf.sprintf "delta-join/%d" size)
    (Staged.stage (fun () ->
         ignore (Eval.delta_answers source ~delta_rel:"r" ~delta join_query)))

let insert_test size =
  let rng = Rng.make ~seed:size in
  let profile = { Datagen.domain_size = 1000; skew = 0.0 } in
  let tuples = Datagen.tuples rng profile r_schema ~count:size in
  Test.make ~name:(Printf.sprintf "relation-insert/%d" size)
    (Staged.stage (fun () ->
         let rel = Relation.create r_schema in
         ignore (Relation.insert_all rel tuples)))

let parse_test n =
  let text =
    Pretty.config_to_string
      (Topology.generate ~seed:1
         ~params:{ Topology.default_params with Topology.tuples_per_node = 20 }
         Topology.Chain ~n)
  in
  Test.make ~name:(Printf.sprintf "parse-config/%d-nodes" n)
    (Staged.stage (fun () ->
         match Parser.parse_config text with Ok _ -> () | Error e -> failwith e))

let containment_test () =
  let q1 = parse_query "ans(x) <- r(x, y), s(y, z), r(z, w)" in
  let q2 = parse_query "ans(x) <- r(x, y), s(y, z)" in
  Test.make ~name:"containment"
    (Staged.stage (fun () -> ignore (Containment.contained q1 q2)))

(* null-aware duplicate suppression: one hole-carrying probe against a
   relation of [size] tuples (the update algorithm runs one per
   incoming tuple, so this is its inner loop) *)
let subsumed_test size =
  let rng = Rng.make ~seed:size in
  let profile = { Datagen.domain_size = max 10 (size / 4); skew = 0.0 } in
  let rel = Relation.create r_schema in
  ignore (Relation.insert_all rel (Datagen.tuples rng profile r_schema ~count:size));
  let probes =
    List.map
      (fun t -> [| t.(0); Value.Hole 0 |])
      (Datagen.tuples rng profile r_schema ~count:64)
  in
  Test.make ~name:(Printf.sprintf "subsumed-holes/%d" size)
    (Staged.stage (fun () ->
         List.iter (fun probe -> ignore (Relation.subsumed rel probe)) probes))

(* zone-map chunk skipping across selectivities: a range scan over a
   key-ordered packed relation, with and without pruning.  [pct] is
   the fraction of the key space the predicate keeps — at 1% almost
   every 4096-row chunk is skipped, at 50% half the chunks survive. *)
let zone_scan_test ~zone_maps ~pct size =
  let db = Database.create [ r_schema ] in
  for k = 0 to size - 1 do
    ignore (Database.insert db "r" [| Value.Int k; Value.Int (k * 7 mod 1009) |])
  done;
  let source = Eval.of_database db in
  let cutoff = size * pct / 100 in
  let q = parse_query (Printf.sprintf "ans(x, y) <- r(x, y), x < %d" cutoff) in
  Test.make
    ~name:
      (Printf.sprintf "zone-scan%s/%d%%/%d"
         (if zone_maps then "" else "-off")
         pct size)
    (Staged.stage (fun () -> ignore (Eval.answer_tuples ~zone_maps source q)))

let update_test n =
  let cfg =
    Topology.generate ~seed:42
      ~params:{ Topology.default_params with Topology.tuples_per_node = 20 }
      Topology.Chain ~n
  in
  Test.make ~name:(Printf.sprintf "global-update/chain-%d" n)
    (Staged.stage (fun () ->
         let sys = Codb_core.System.build_exn cfg in
         ignore (Codb_core.System.run_update sys ~initiator:"n0")))

let tests =
  Test.make_grouped ~name:"codb"
    [
      eval_test "scan" scan_query 100;
      eval_test "scan" scan_query 1000;
      eval_test "join" join_query 100;
      eval_test "join" join_query 1000;
      eval_legacy_test "join" join_query 1000;
      eval_noindex_test "join" join_query 1000;
      eval_test "self-join" self_join_query 100;
      eval_legacy_test "self-join" self_join_query 100;
      delta_test 1000;
      delta_test 10000;
      insert_test 1000;
      subsumed_test 1000;
      subsumed_test 10000;
      parse_test 8;
      parse_test 32;
      containment_test ();
      zone_scan_test ~zone_maps:false ~pct:1 16384;
      zone_scan_test ~zone_maps:true ~pct:1 16384;
      zone_scan_test ~zone_maps:false ~pct:25 16384;
      zone_scan_test ~zone_maps:true ~pct:25 16384;
      zone_scan_test ~zone_maps:true ~pct:100 16384;
      update_test 4;
      update_test 8;
    ]

let run () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg instances tests in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (estimate :: _) -> estimate
          | Some [] | None -> nan
        in
        let r2 =
          match Analyze.OLS.r_square ols with Some r -> Tables.f4 r | None -> "-"
        in
        (name, ns, r2) :: acc)
      results []
  in
  let rows = List.sort (fun (a, _, _) (b, _, _) -> String.compare a b) rows in
  Tables.print ~title:"micro-benchmarks (bechamel, OLS on monotonic clock)"
    ~header:[ "benchmark"; "ns/run"; "r^2" ]
    (List.map
       (fun (name, ns, r2) ->
         [ name; (if Float.is_nan ns then "-" else Printf.sprintf "%.0f" ns); r2 ])
       rows)
