(* Chaos sweep (experiment E16 and `make chaos-bench`).

   One global update on a chain workload (every tuple has a single
   path to the sink, so an unretried drop is a real hole), re-run under a grid
   of (message loss rate x transport retries) with duplication and
   delivery jitter always on.  Every cell uses the same fault seed, so
   each cell is exactly reproducible; a designated cell is run twice
   to prove it.

   The metric is *completeness*: the fraction of the fault-free
   fix-point's tuples that the faulted run still committed,
   tuple-for-tuple across every store.  The sweep shows the two sides
   of the protocol hardening:

     retries 0    the transport detects loss but never resends — high
                  drop rates leave holes in the fix-point, and the
                  stall watchdog force-terminates instead of hanging;
     retries max  bounded retransmission restores completeness 1.0 at
                  10%+ loss, at the price of retransmitted messages.

   Cells that must be complete (the fault-free column, and the
   max-retries column up to 10% loss) abort the benchmark when they
   are not, so CI fails loudly.  Results go to BENCH_chaos.json. *)

module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Node = Codb_core.Node
module Network = Codb_net.Network
module Database = Codb_relalg.Database
module Tuple_set = Codb_relalg.Relation.Tuple_set
module Datagen = Codb_workload.Datagen

type workload = { wl_nodes : int; wl_tuples : int; wl_domain : int; wl_skew : float }

let workload ~tiny =
  if tiny then { wl_nodes = 4; wl_tuples = 20; wl_domain = 25; wl_skew = 1.0 }
  else { wl_nodes = 8; wl_tuples = 50; wl_domain = 50; wl_skew = 1.0 }

let config ~seed wl =
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = wl.wl_tuples;
      profile = { Datagen.domain_size = wl.wl_domain; skew = wl.wl_skew };
    }
  in
  Topology.generate ~params ~seed Topology.Chain ~n:wl.wl_nodes

(* Transport and noise knobs shared by every faulted cell. *)
let ack_timeout = 0.05

let dup_prob = 0.02

let jitter = 0.002

let drops ~tiny = if tiny then [ 0.0; 0.1 ] else [ 0.0; 0.05; 0.1; 0.2 ]

let retries ~tiny = if tiny then [ 0; 4 ] else [ 0; 2; 6 ]

let max_retries ~tiny = List.fold_left max 0 (retries ~tiny)

let opts_of ~fault_seed ~drop ~n_retries ~durable ~link_dicts =
  {
    Options.default with
    Options.fault_seed;
    drop_prob = drop;
    dup_prob = (if drop > 0.0 then dup_prob else 0.0);
    jitter = (if drop > 0.0 then jitter else 0.0);
    ack_timeout;
    max_retries = n_retries;
    durability = (if durable then Options.Dur_wal else Options.Dur_off);
    link_dicts;
  }

type cell = {
  c_drop : float;
  c_retries : int;
  c_completeness : float;
  c_new_tuples : int;
  c_delivered : int;
  c_injected_drops : int;
  c_injected_dups : int;
  c_retransmits : int;
  c_give_ups : int;
  c_dup_suppressed : int;
  c_forced : int;
  c_all_finished : bool;
  c_duration : float;
  c_wall_s : float;
}

(* Fraction of the baseline stores the faulted run still committed. *)
let completeness ~baseline sys =
  let hit, total =
    List.fold_left
      (fun acc name ->
        let bstore = (System.node baseline name).Node.store in
        let store = (System.node sys name).Node.store in
        List.fold_left
          (fun (hit, total) rel ->
            let have =
              List.fold_left
                (fun s t -> Tuple_set.add t s)
                Tuple_set.empty (Database.tuples store rel)
            in
            let want = Database.tuples bstore rel in
            let found = List.length (List.filter (fun t -> Tuple_set.mem t have) want) in
            (hit + found, total + List.length want))
          acc (Database.rel_names bstore))
      (0, 0) (System.node_names baseline)
  in
  if total = 0 then 1.0 else float_of_int hit /. float_of_int total

let measure ~seed ~baseline ~durable ~link_dicts wl ~drop ~n_retries =
  let opts = opts_of ~fault_seed:(seed + 1) ~drop ~n_retries ~durable ~link_dicts in
  let sys = System.build_exn ~opts (config ~seed wl) in
  let wall_start = Unix.gettimeofday () in
  let uid = System.run_update sys ~initiator:"n0" in
  let wall = Unix.gettimeofday () -. wall_start in
  let snapshots = System.snapshots sys in
  let report = Option.get (Report.update_report snapshots uid) in
  let chaos = Report.chaos_report snapshots in
  let counters = Network.counters (System.net sys) in
  {
    c_drop = drop;
    c_retries = n_retries;
    c_completeness = completeness ~baseline sys;
    c_new_tuples = report.Report.ur_new_tuples;
    c_delivered = counters.Network.delivered;
    c_injected_drops = counters.Network.injected_drops;
    c_injected_dups = counters.Network.injected_dups;
    c_retransmits = chaos.Report.chr_retransmits;
    c_give_ups = chaos.Report.chr_give_ups;
    c_dup_suppressed = chaos.Report.chr_dup_suppressed;
    c_forced = chaos.Report.chr_forced_terminations;
    c_all_finished = report.Report.ur_all_finished;
    c_duration = report.Report.ur_duration;
    c_wall_s = wall;
  }

let check_invariants ~tiny cells =
  List.iter
    (fun c ->
      if c.c_drop = 0.0 && c.c_completeness < 1.0 then
        failwith
          (Printf.sprintf "fault-free cell lost data: completeness %.4f at retries %d"
             c.c_completeness c.c_retries);
      if
        c.c_retries = max_retries ~tiny
        && c.c_drop <= 0.1
        && c.c_completeness < 1.0
      then
        failwith
          (Printf.sprintf
             "retries failed to restore completeness: %.4f at drop %.2f, retries %d"
             c.c_completeness c.c_drop c.c_retries))
    cells

let check_determinism ~seed ~baseline ~durable ~link_dicts wl =
  let drop = List.fold_left Float.max 0.0 (drops ~tiny:true) in
  let run () = measure ~seed ~baseline ~durable ~link_dicts wl ~drop ~n_retries:2 in
  let a = run () and b = run () in
  if a <> { b with c_wall_s = a.c_wall_s } then
    failwith "chaos sweep is not deterministic: same seed, different cell"

let measure_all ~tiny ~seed ~durable ~link_dicts () =
  let wl = workload ~tiny in
  let baseline = System.build_exn ~opts:Options.default (config ~seed wl) in
  let _uid = System.run_update baseline ~initiator:"n0" in
  let cells =
    List.concat_map
      (fun drop ->
        List.map
          (fun n_retries ->
            measure ~seed ~baseline ~durable ~link_dicts wl ~drop ~n_retries)
          (retries ~tiny))
      (drops ~tiny)
  in
  check_invariants ~tiny cells;
  check_determinism ~seed ~baseline ~durable ~link_dicts wl;
  (wl, cells)

let print_table wl cells =
  Tables.print
    ~title:
      (Printf.sprintf
         "E16 - chaos sweep (chain N=%d, %d tuples/node, dup %.2f, jitter %gs, ack \
          %gs)"
         wl.wl_nodes wl.wl_tuples dup_prob jitter ack_timeout)
    ~header:
      [
        "drop"; "retries"; "completeness"; "inj drops"; "inj dups"; "retransmits";
        "give-ups"; "dups supp"; "forced"; "sim (s)";
      ]
    (List.map
       (fun c ->
         [
           Printf.sprintf "%.2f" c.c_drop;
           Tables.i0 c.c_retries;
           Printf.sprintf "%.4f" c.c_completeness;
           Tables.i0 c.c_injected_drops;
           Tables.i0 c.c_injected_dups;
           Tables.i0 c.c_retransmits;
           Tables.i0 c.c_give_ups;
           Tables.i0 c.c_dup_suppressed;
           Tables.i0 c.c_forced;
           Tables.f4 c.c_duration;
         ])
       cells)

(* Hand-rolled JSON: the harness must not grow dependencies. *)
let write_json ~path ~seed ~durable ~link_dicts wl cells =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"chaos-sweep\",\n";
  p "  \"durability\": \"%s\",\n" (if durable then "wal" else "off");
  p "  \"link_dicts\": %b,\n" link_dicts;
  p "  \"workload\": {\"topology\": \"chain\", \"nodes\": %d, \"tuples_per_node\": %d, \
     \"domain\": %d, \"skew\": %g},\n"
    wl.wl_nodes wl.wl_tuples wl.wl_domain wl.wl_skew;
  p "  \"seed\": %d,\n" seed;
  p "  \"transport\": {\"ack_timeout_s\": %g, \"dup_prob\": %g, \"jitter_s\": %g},\n"
    ack_timeout dup_prob jitter;
  p "  \"cells\": [\n";
  let n = List.length cells in
  List.iteri
    (fun i c ->
      p "    {\"drop\": %.2f, \"retries\": %d, \"completeness\": %.4f, \
         \"new_tuples\": %d, \"delivered_msgs\": %d, \"injected_drops\": %d, \
         \"injected_dups\": %d, \"retransmits\": %d, \"give_ups\": %d, \
         \"dup_suppressed\": %d, \"forced_terminations\": %d, \
         \"all_finished\": %b, \"sim_duration_s\": %.4f, \"wall_s\": %.4f}%s\n"
        c.c_drop c.c_retries c.c_completeness c.c_new_tuples c.c_delivered
        c.c_injected_drops c.c_injected_dups c.c_retransmits c.c_give_ups
        c.c_dup_suppressed c.c_forced c.c_all_finished c.c_duration c.c_wall_s
        (if i = n - 1 then "" else ","))
    cells;
  p "  ],\n";
  p "  \"deterministic\": true\n";
  p "}\n";
  close_out oc

let json_path = "BENCH_chaos.json"

let run ?(tiny = false) ?(seed = 1500) ?(json = true) ?(durable = false)
    ?(link_dicts = false) () =
  let wl, cells = measure_all ~tiny ~seed ~durable ~link_dicts () in
  print_table wl cells;
  if json then begin
    write_json ~path:json_path ~seed ~durable ~link_dicts wl cells;
    Printf.printf "wrote %s\n%!" json_path
  end
