(* Dictionary-and-pruning bench (experiment E22 and `make dict-bench`).

   Three legs, one per layer the `Options.{zone_maps, link_dicts}`
   pair touches:

     zone      a packed relation big enough for many 4096-row chunks,
               scanned through selective range queries with zone maps
               off and on.  Answers must match tuple-for-tuple; the
               headline gate is the chunk-skip ratio (total chunks /
               chunks actually scanned) >= 2 on the selective
               workload;
     wire      two global update rounds on a repetitive-string clique,
               link dictionaries off and on.  Final stores must be
               digest-identical; the gate is the steady-state (second
               round, dictionaries trained) wire-byte reduction
               >= 1.5x;
     durable   the E21 crash/restart chain under Dur_wal, link_dicts
               off and on.  Both recover to the fault-free reference
               digests; the gate is snapshot bytes strictly reduced by
               the front-coded tabled format.

   Feature-on cells run twice to prove determinism.  Results go to
   BENCH_dict.json (full) / BENCH_dict_tiny.json (--tiny), the full
   file embedding a tiny_reference block the CI gate pins the tiny
   rerun against. *)

module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Node = Codb_core.Node
module Network = Codb_net.Network
module Database = Codb_relalg.Database
module Schema = Codb_relalg.Schema
module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple
module Eval = Codb_cq.Eval
module Parser = Codb_cq.Parser
module Datagen = Codb_workload.Datagen

let parse_query text =
  match Parser.parse_query text with Ok q -> q | Error e -> failwith e

(* ---- leg 1: zone-map chunk pruning ---------------------------------- *)

type zone_workload = { zw_rows : int; zw_cutoffs : int list }

let zone_workload ~tiny =
  (* rows span several 4096-row chunks; cutoffs sweep selectivity.
     Values are inserted in key order, the clustered layout zone maps
     reward (time-ordered facts, monotone ids). *)
  if tiny then { zw_rows = 3 * 4096; zw_cutoffs = [ 400; 2048 ] }
  else { zw_rows = 16 * 4096; zw_cutoffs = [ 512; 2048; 8192 ] }

type zone_cell = {
  z_cutoff : int;
  z_rows : int;
  z_answers : int;
  z_visited : int;
  z_pruned : int;
  z_skip_ratio : float;
  z_wall_off_s : float;
  z_wall_on_s : float;
}

let zone_db rows =
  let r_schema = Schema.make "r" [ ("a", Value.Tint); ("b", Value.Tint) ] in
  let db = Database.create [ r_schema ] in
  for k = 0 to rows - 1 do
    ignore
      (Database.insert db "r"
         [| Value.Int k; Value.Int (k * 7 mod 1009) |])
  done;
  db

let time_runs f =
  let reps = 5 in
  let start = Unix.gettimeofday () in
  for _ = 1 to reps do
    f ()
  done;
  (Unix.gettimeofday () -. start) /. float_of_int reps

let measure_zone_cell source rows cutoff =
  let q = parse_query (Printf.sprintf "ans(x, y) <- r(x, y), x < %d" cutoff) in
  let sorted ts = List.sort Tuple.compare ts in
  let off = sorted (Eval.answer_tuples ~zone_maps:false source q) in
  let on = sorted (Eval.answer_tuples ~zone_maps:true source q) in
  if off <> on then
    failwith
      (Printf.sprintf "zone maps changed the answers at cutoff %d" cutoff);
  Eval.reset_counters ();
  let _ = Eval.answer_tuples ~zone_maps:true source q in
  let c = Eval.counters () in
  let visited = c.Eval.zone_visited and pruned = c.Eval.zone_pruned in
  let wall_off = time_runs (fun () -> ignore (Eval.answer_tuples ~zone_maps:false source q)) in
  let wall_on = time_runs (fun () -> ignore (Eval.answer_tuples ~zone_maps:true source q)) in
  {
    z_cutoff = cutoff;
    z_rows = rows;
    z_answers = List.length on;
    z_visited = visited;
    z_pruned = pruned;
    z_skip_ratio = float_of_int (visited + pruned) /. float_of_int (max 1 visited);
    z_wall_off_s = wall_off;
    z_wall_on_s = wall_on;
  }

let measure_zone zw =
  let db = zone_db zw.zw_rows in
  let source = Eval.of_database db in
  List.map (measure_zone_cell source zw.zw_rows) zw.zw_cutoffs

let check_zone_gates ~where cells =
  (* the most selective cutoff is the headline: at least half the
     chunks must be skipped outright *)
  match cells with
  | [] -> failwith (Printf.sprintf "%s: no zone cells" where)
  | best :: _ ->
      if best.z_skip_ratio < 2.0 then
        failwith
          (Printf.sprintf
             "%s: chunk-skip ratio %.2fx at cutoff %d (visited %d, pruned \
              %d, answers %d) — below the 2x bar"
             where best.z_skip_ratio best.z_cutoff best.z_visited
             best.z_pruned best.z_answers)

(* ---- leg 2: link dictionaries on the wire --------------------------- *)

type wire_workload = { ww_nodes : int; ww_tuples : int; ww_domain : int }

let wire_workload ~tiny =
  if tiny then { ww_nodes = 4; ww_tuples = 30; ww_domain = 8 }
  else { ww_nodes = 6; ww_tuples = 36; ww_domain = 12 }

(* The repetitive-string pool: long dotted paths, the shape of metric
   names, URLS and topic ids — what link dictionaries exist for.  All
   nodes draw from the same pool, so every link sees every string. *)
let pool_string d =
  Printf.sprintf
    "telemetry/site-%02d/sensor-bank/temperature-celsius/5min-rollup/export-pipeline/reading"
    d

let wire_config ww =
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = 10;
      profile = { Datagen.domain_size = ww.ww_domain; skew = 1.0 };
    }
  in
  Topology.generate ~params ~seed:1500 Topology.Clique ~n:ww.ww_nodes

type wire_cell = {
  w_mode : string;
  w_digests : (string * int) list;
  w_round1_bytes : int;
  w_round2_bytes : int;
  w_messages : int;
  w_dict_entries : int;
  w_dict_intros : int;
  w_dict_hits : int;
  w_wall_s : float;
}

let measure_wire ww ~link_dicts =
  (* batching on in both cells: full delta batches are the dense
     traffic shape the dictionary is priced against *)
  let opts =
    {
      Options.default with
      Options.link_dicts;
      batch_window = 10.0 *. Options.default.Options.latency;
    }
  in
  let sys = System.build_exn ~opts (wire_config ww) in
  List.iteri
    (fun ni name ->
      for k = 0 to ww.ww_tuples - 1 do
        ignore
          (System.insert_fact sys ~at:name ~rel:"data"
             [|
               Value.Int (100000 + (ni * 1000) + k);
               Value.Str (pool_string (k mod ww.ww_domain));
             |])
      done)
    (System.node_names sys);
  let bytes () = (Network.counters (System.net sys)).Network.total_bytes in
  let wall_start = Unix.gettimeofday () in
  let _ = System.run_update sys ~initiator:"n0" in
  let round1 = bytes () in
  (* round 2 is the steady state: every link dictionary is trained *)
  let _ = System.run_update sys ~initiator:"n1" in
  let wall = Unix.gettimeofday () -. wall_start in
  let counters = Network.counters (System.net sys) in
  let ds = System.link_dict_stats sys in
  {
    w_mode = (if link_dicts then "link-dicts" else "plain");
    w_digests = System.store_digests sys;
    w_round1_bytes = round1;
    w_round2_bytes = counters.Network.total_bytes - round1;
    w_messages = counters.Network.delivered;
    w_dict_entries = ds.Codb_net.Link_dict.entries;
    w_dict_intros = ds.Codb_net.Link_dict.intros;
    w_dict_hits = ds.Codb_net.Link_dict.hits;
    w_wall_s = wall;
  }

let wire_reduction off on =
  float_of_int off.w_round2_bytes /. float_of_int (max 1 on.w_round2_bytes)

let check_wire_gates ~where off on =
  if off.w_digests <> on.w_digests then
    failwith
      (Printf.sprintf "%s: link dictionaries changed the final stores" where);
  let r = wire_reduction off on in
  if r < 1.5 then
    failwith
      (Printf.sprintf
         "%s: steady-state wire reduction %.2fx (%d B -> %d B) — below the \
          1.5x bar"
         where r off.w_round2_bytes on.w_round2_bytes)

(* ---- leg 3: dictionary-encoded durability --------------------------- *)

type dur_workload = { dw_nodes : int; dw_tuples : int; dw_crash_at : float }

let dur_workload ~tiny =
  if tiny then { dw_nodes = 4; dw_tuples = 20; dw_crash_at = 0.0045 }
  else { dw_nodes = 8; dw_tuples = 50; dw_crash_at = 0.01 }

let dur_config dw =
  let params =
    { Topology.default_params with Topology.tuples_per_node = dw.dw_tuples }
  in
  Topology.generate ~params ~seed:1500 Topology.Chain ~n:dw.dw_nodes

type dur_cell = {
  d_mode : string;
  d_digests : (string * int) list;
  d_recoveries : int;
  d_wal_bytes : int;
  d_snapshot_bytes : int;
  d_replayed_bytes : int;
  d_wall_s : float;
}

let measure_dur dw ~durability ~crashes ~link_dicts ~mode =
  let opts =
    {
      Options.default with
      Options.fault_seed = 1501;
      ack_timeout = 0.05;
      max_retries = 8;
      durability;
      crash_plan = crashes;
      link_dicts;
    }
  in
  let sys = System.build_exn ~opts (dur_config dw) in
  let wall_start = Unix.gettimeofday () in
  let _ = System.run_update sys ~initiator:"n0" in
  let wall = Unix.gettimeofday () -. wall_start in
  let dr = System.durability_report sys in
  {
    d_mode = mode;
    d_digests = System.store_digests sys;
    d_recoveries = dr.System.dr_recoveries;
    d_wal_bytes = dr.System.dr_wal_bytes;
    d_snapshot_bytes = dr.System.dr_snapshot_bytes;
    d_replayed_bytes = dr.System.dr_replayed_bytes;
    d_wall_s = wall;
  }

let measure_dur_all dw =
  let victim = Printf.sprintf "n%d" (dw.dw_nodes / 2) in
  let crashes = [ (victim, dw.dw_crash_at, Some (dw.dw_crash_at +. 0.1)) ] in
  let reference =
    measure_dur dw ~durability:Options.Dur_off ~crashes:[] ~link_dicts:false
      ~mode:"reference"
  in
  let plain =
    measure_dur dw ~durability:Options.Dur_wal ~crashes ~link_dicts:false
      ~mode:"wal"
  in
  let dicts =
    measure_dur dw ~durability:Options.Dur_wal ~crashes ~link_dicts:true
      ~mode:"wal+dicts"
  in
  (reference, plain, dicts)

let check_dur_gates ~where (reference, plain, dicts) =
  List.iter
    (fun c ->
      if c.d_digests <> reference.d_digests then
        failwith
          (Printf.sprintf "%s: %s run diverged from the fault-free reference"
             where c.d_mode))
    [ plain; dicts ];
  if dicts.d_recoveries <> 1 || plain.d_recoveries <> 1 then
    failwith (Printf.sprintf "%s: expected exactly one recovery per run" where);
  if dicts.d_snapshot_bytes >= plain.d_snapshot_bytes then
    failwith
      (Printf.sprintf
         "%s: tabled snapshots wrote %d B, inline %d B — not strictly reduced"
         where dicts.d_snapshot_bytes plain.d_snapshot_bytes)

(* ---- assembly ------------------------------------------------------- *)

type outcome = {
  o_zone : zone_cell list;
  o_wire_off : wire_cell;
  o_wire_on : wire_cell;
  o_dur : dur_cell * dur_cell * dur_cell;
}

let strip_wire_wall c = { c with w_wall_s = 0.0 }

let strip_dur_wall c = { c with d_wall_s = 0.0 }

let measure_all ~tiny =
  let label = if tiny then "tiny" else "full" in
  let zone = measure_zone (zone_workload ~tiny) in
  check_zone_gates ~where:(label ^ " zone leg") zone;
  let ww = wire_workload ~tiny in
  let wire_off = measure_wire ww ~link_dicts:false in
  let wire_on = measure_wire ww ~link_dicts:true in
  let wire_on' = measure_wire ww ~link_dicts:true in
  if strip_wire_wall wire_on <> strip_wire_wall wire_on' then
    failwith "dict bench wire leg is not deterministic";
  check_wire_gates ~where:(label ^ " wire leg") wire_off wire_on;
  let dw = dur_workload ~tiny in
  let ((_, _, dur_dicts) as dur) = measure_dur_all dw in
  let _, _, dur_dicts' = measure_dur_all dw in
  if strip_dur_wall dur_dicts <> strip_dur_wall dur_dicts' then
    failwith "dict bench durable leg is not deterministic";
  check_dur_gates ~where:(label ^ " durable leg") dur;
  { o_zone = zone; o_wire_off = wire_off; o_wire_on = wire_on; o_dur = dur }

let print_tables ~label ~tiny o =
  let zw = zone_workload ~tiny in
  Tables.print
    ~title:
      (Printf.sprintf "E22a - zone-map chunk pruning [%s] (%d rows, chunk 4096)"
         label zw.zw_rows)
    ~header:
      [ "cutoff"; "answers"; "chunks"; "pruned"; "skip x"; "off ms"; "on ms" ]
    (List.map
       (fun z ->
         [
           Tables.i0 z.z_cutoff;
           Tables.i0 z.z_answers;
           Tables.i0 z.z_visited;
           Tables.i0 z.z_pruned;
           Tables.f2 z.z_skip_ratio;
           Tables.f2 (z.z_wall_off_s *. 1000.0);
           Tables.f2 (z.z_wall_on_s *. 1000.0);
         ])
       o.o_zone);
  let ww = wire_workload ~tiny in
  Tables.print
    ~title:
      (Printf.sprintf
         "E22b - link dictionaries [%s] (clique N=%d, %d tuples/node, two \
          update rounds)"
         label ww.ww_nodes ww.ww_tuples)
    ~header:
      [ "mode"; "round1 B"; "round2 B"; "msgs"; "entries"; "intros"; "hits" ]
    (List.map
       (fun w ->
         [
           w.w_mode;
           Tables.i0 w.w_round1_bytes;
           Tables.i0 w.w_round2_bytes;
           Tables.i0 w.w_messages;
           Tables.i0 w.w_dict_entries;
           Tables.i0 w.w_dict_intros;
           Tables.i0 w.w_dict_hits;
         ])
       [ o.o_wire_off; o.o_wire_on ]);
  Printf.printf "steady-state wire reduction (plain / link-dicts): %.2fx\n%!"
    (wire_reduction o.o_wire_off o.o_wire_on);
  let reference, plain, dicts = o.o_dur in
  let dw = dur_workload ~tiny in
  Tables.print
    ~title:
      (Printf.sprintf
         "E22c - dictionary durability [%s] (chain N=%d, crash n%d at %gs)"
         label dw.dw_nodes (dw.dw_nodes / 2) dw.dw_crash_at)
    ~header:[ "mode"; "recov"; "wal B"; "snapshot B"; "replayed B" ]
    (List.map
       (fun d ->
         [
           d.d_mode;
           Tables.i0 d.d_recoveries;
           Tables.i0 d.d_wal_bytes;
           Tables.i0 d.d_snapshot_bytes;
           Tables.i0 d.d_replayed_bytes;
         ])
       [ reference; plain; dicts ])

let emit_outcome oc ~indent ~tiny o =
  let pad = String.make indent ' ' in
  let p fmt = Printf.fprintf oc fmt in
  let zw = zone_workload ~tiny in
  let ww = wire_workload ~tiny in
  let dw = dur_workload ~tiny in
  p "%s\"zone\": {\"rows\": %d, \"chunk_rows\": 4096, \"cells\": [\n" pad
    zw.zw_rows;
  let nz = List.length o.o_zone in
  List.iteri
    (fun idx z ->
      p
        "%s  {\"cutoff\": %d, \"answers\": %d, \"chunks_visited\": %d, \
         \"chunks_pruned\": %d, \"skip_ratio\": %.2f, \"wall_off_s\": %.5f, \
         \"wall_on_s\": %.5f}%s\n"
        pad z.z_cutoff z.z_answers z.z_visited z.z_pruned z.z_skip_ratio
        z.z_wall_off_s z.z_wall_on_s
        (if idx = nz - 1 then "" else ","))
    o.o_zone;
  p "%s]},\n" pad;
  p "%s\"wire\": {\"nodes\": %d, \"tuples_per_node\": %d, \"domain\": %d, \
     \"cells\": [\n"
    pad ww.ww_nodes ww.ww_tuples ww.ww_domain;
  let cells = [ o.o_wire_off; o.o_wire_on ] in
  let nw = List.length cells in
  List.iteri
    (fun idx w ->
      p
        "%s  {\"mode\": \"%s\", \"digests_match\": %b, \"round1_bytes\": %d, \
         \"round2_bytes\": %d, \"messages\": %d, \"dict_entries\": %d, \
         \"dict_intros\": %d, \"dict_hits\": %d, \"wall_s\": %.4f}%s\n"
        pad w.w_mode
        (w.w_digests = o.o_wire_off.w_digests)
        w.w_round1_bytes w.w_round2_bytes w.w_messages w.w_dict_entries
        w.w_dict_intros w.w_dict_hits w.w_wall_s
        (if idx = nw - 1 then "" else ","))
    cells;
  p "%s], \"steady_state_reduction\": %.2f},\n" pad
    (wire_reduction o.o_wire_off o.o_wire_on);
  let reference, plain, dicts = o.o_dur in
  p "%s\"durable\": {\"nodes\": %d, \"crash_at_s\": %g, \"cells\": [\n" pad
    dw.dw_nodes dw.dw_crash_at;
  let dcells = [ reference; plain; dicts ] in
  let nd = List.length dcells in
  List.iteri
    (fun idx d ->
      p
        "%s  {\"mode\": \"%s\", \"digests_match_reference\": %b, \
         \"recoveries\": %d, \"wal_bytes\": %d, \"snapshot_bytes\": %d, \
         \"replayed_bytes\": %d, \"wall_s\": %.4f}%s\n"
        pad d.d_mode
        (d.d_digests = reference.d_digests)
        d.d_recoveries d.d_wal_bytes d.d_snapshot_bytes d.d_replayed_bytes
        d.d_wall_s
        (if idx = nd - 1 then "" else ","))
    dcells;
  p "%s], \"snapshot_bytes_reduced\": %b},\n" pad
    (dicts.d_snapshot_bytes < plain.d_snapshot_bytes);
  p "%s\"deterministic\": true" pad

let write_json ~path ~full_part ~tiny_part =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"dict\",\n";
  (match full_part with
  | Some o ->
      emit_outcome oc ~indent:2 ~tiny:false o;
      p ",\n"
  | None -> ());
  (match tiny_part with
  | Some o ->
      p "  \"tiny_reference\": {\n";
      emit_outcome oc ~indent:4 ~tiny:true o;
      p "\n  },\n"
  | None -> ());
  p "  \"ok\": true\n";
  p "}\n";
  close_out oc

let run ?(tiny = false) ?(seed = 1500) () =
  ignore seed;
  if tiny then begin
    let o = measure_all ~tiny:true in
    print_tables ~label:"tiny" ~tiny:true o;
    write_json ~path:"BENCH_dict_tiny.json" ~full_part:None
      ~tiny_part:(Some o);
    Printf.printf "wrote BENCH_dict_tiny.json\n%!"
  end
  else begin
    let tiny_o = measure_all ~tiny:true in
    print_tables ~label:"tiny reference" ~tiny:true tiny_o;
    let o = measure_all ~tiny:false in
    print_tables ~label:"full" ~tiny:false o;
    write_json ~path:"BENCH_dict.json" ~full_part:(Some o)
      ~tiny_part:(Some tiny_o);
    Printf.printf "wrote BENCH_dict.json\n%!"
  end
