(* Parallel runtime race (experiment E20 and `make par-bench`).

   The same clique workloads as the pushdown and subscription benches
   — an update fix-point and a diffused query — raced at 1, 2, 4 and
   8 domains through the two-phase step ([Options.domains]).  Two
   kinds of gate:

   - equality, unconditional: every domain count must produce the
     same store/answer digests, the same network counters, the same
     null count and the same event count as the sequential run.  A
     single bit of divergence aborts the benchmark, so CI fails
     loudly on any determinism regression.
   - speed, core-aware: on a machine with at least 8 effective cores
     the full workload must reach >= 3x at 8 domains; the tiny (CI)
     workload must reach >= 1.5x at 4 domains when at least 4 cores
     exist.  On smaller machines the speed gates are reported but not
     enforced — a 1-core container cannot race anything, while the
     equality gates hold everywhere.

   Results go to BENCH_par.json. *)

module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Node = Codb_core.Node
module Network = Codb_net.Network
module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple
module Relation = Codb_relalg.Relation
module Database = Codb_relalg.Database
module Parser = Codb_cq.Parser
module Datagen = Codb_workload.Datagen

type workload = { wl_nodes : int; wl_tuples : int; wl_domain : int }

let workload ~tiny =
  if tiny then { wl_nodes = 6; wl_tuples = 40; wl_domain = 20 }
  else { wl_nodes = 8; wl_tuples = 80; wl_domain = 40 }

let domain_counts = [ 1; 2; 4; 8 ]

let parse text =
  match Parser.parse_query text with Ok q -> q | Error e -> failwith e

let config wl =
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = wl.wl_tuples;
      profile = { Datagen.default_profile with Datagen.domain_size = wl.wl_domain };
    }
  in
  Topology.generate ~params ~seed:2000 Topology.Clique ~n:wl.wl_nodes

(* content digest over every store, independent of intern-slot order
   and of the process history, so runs compare within one process *)
let store_digest sys =
  List.fold_left
    (fun h name ->
      let db = (System.node sys name).Node.store in
      List.fold_left
        (fun h rel ->
          let tuples = ref [] in
          Relation.iter (fun t -> tuples := t :: !tuples) (Database.relation db rel);
          Tuple.digest_fold
            (String.fold_left (fun h c -> (h * 131) + Char.code c) h rel)
            (List.sort Tuple.compare !tuples))
        h (Database.rel_names db))
    0 (System.node_names sys)

type row = {
  r_workload : string;
  r_domains : int;
  r_wall_s : float;
  r_digest : int;
  r_delivered : int;
  r_dropped : int;
  r_bytes : int;
  r_nulls : int;
}

let observe ~workload_name ~domains ~wall sys ~digest =
  let c = Network.counters (System.net sys) in
  {
    r_workload = workload_name;
    r_domains = domains;
    r_wall_s = wall;
    r_digest = digest;
    r_delivered = c.Network.delivered;
    r_dropped = c.Network.dropped;
    r_bytes = c.Network.total_bytes;
    r_nulls = Value.null_counter ();
  }

let measure_update wl domains =
  Value.reset_null_counter ();
  let opts = { Options.default with Options.domains; par_threshold = 2 } in
  let sys = System.build_exn ~opts (config wl) in
  let wall_start = Unix.gettimeofday () in
  let (_ : Codb_core.Ids.update_id) = System.run_update sys ~initiator:"n0" in
  let wall = Unix.gettimeofday () -. wall_start in
  observe ~workload_name:"update" ~domains ~wall sys ~digest:(store_digest sys)

let measure_query wl domains =
  Value.reset_null_counter ();
  let opts =
    { Options.default with Options.domains; par_threshold = 2; pushdown = true }
  in
  let sys = System.build_exn ~opts (config wl) in
  let q = parse "o(x, y) <- data(x, y)" in
  let wall_start = Unix.gettimeofday () in
  let outcome = System.run_query sys ~at:"n0" q in
  let wall = Unix.gettimeofday () -. wall_start in
  observe ~workload_name:"query" ~domains ~wall sys
    ~digest:(Tuple.digest outcome.System.qo_answers lxor store_digest sys)

let measure_all ~tiny () =
  let wl = workload ~tiny in
  let race measure = List.map (fun d -> measure wl d) domain_counts in
  (wl, [ race measure_update; race measure_query ])

(* ---- gates ----------------------------------------------------------- *)

let check_equality races =
  List.iter
    (fun rows ->
      match rows with
      | [] -> ()
      | base :: rest ->
          List.iter
            (fun r ->
              let where =
                Printf.sprintf "%s at domains=%d" r.r_workload r.r_domains
              in
              if r.r_digest <> base.r_digest then
                failwith (Printf.sprintf "answer digest diverged on %s" where);
              if
                r.r_delivered <> base.r_delivered
                || r.r_dropped <> base.r_dropped
                || r.r_bytes <> base.r_bytes
              then failwith (Printf.sprintf "traffic counters diverged on %s" where);
              if r.r_nulls <> base.r_nulls then
                failwith (Printf.sprintf "null counter diverged on %s" where))
            rest)
    races

let speedup rows d =
  match
    ( List.find_opt (fun r -> r.r_domains = 1) rows,
      List.find_opt (fun r -> r.r_domains = d) rows )
  with
  | Some base, Some r when r.r_wall_s > 0.0 -> base.r_wall_s /. r.r_wall_s
  | _ -> nan

let check_speed ~tiny races =
  let cores = Domain.recommended_domain_count () in
  let gate ~domains ~floor rows =
    if cores >= domains then begin
      let s = speedup rows domains in
      if s < floor then
        failwith
          (Printf.sprintf
             "%s below the speed floor at domains=%d: %.2fx < %.2fx (%d cores)"
             (List.hd rows).r_workload domains s floor cores)
    end
  in
  List.iter
    (fun rows ->
      if tiny then gate ~domains:4 ~floor:1.5 rows
      else gate ~domains:8 ~floor:3.0 rows)
    races;
  cores

let print_table wl races ~cores =
  Tables.print
    ~title:
      (Printf.sprintf
         "E20 - parallel two-phase step (clique N=%d, %d tuples/node, %d cores)"
         wl.wl_nodes wl.wl_tuples cores)
    ~header:
      [ "workload"; "domains"; "wall s"; "speedup"; "delivered"; "bytes"; "digest" ]
    (List.concat_map
       (fun rows ->
         List.map
           (fun r ->
             [
               r.r_workload;
               Tables.i0 r.r_domains;
               Printf.sprintf "%.4f" r.r_wall_s;
               Printf.sprintf "%.2fx" (speedup rows r.r_domains);
               Tables.i0 r.r_delivered;
               Tables.i0 r.r_bytes;
               Printf.sprintf "%x" (r.r_digest land 0xffffff);
             ])
           rows)
       races)

let write_json ~path wl races ~cores =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"par\",\n";
  p "  \"workload\": {\"nodes\": %d, \"tuples_per_node\": %d, \"domain\": %d},\n"
    wl.wl_nodes wl.wl_tuples wl.wl_domain;
  p "  \"cores\": %d,\n" cores;
  p "  \"digests_identical\": true,\n";
  p "  \"runs\": [\n";
  let rows = List.concat races in
  let n = List.length rows in
  List.iteri
    (fun i r ->
      p
        "    {\"workload\": \"%s\", \"domains\": %d, \"wall_s\": %.4f, \
         \"speedup\": %.2f, \"delivered\": %d, \"bytes\": %d}%s\n"
        r.r_workload r.r_domains r.r_wall_s
        (speedup (List.filter (fun x -> x.r_workload = r.r_workload) rows) r.r_domains)
        r.r_delivered r.r_bytes
        (if i = n - 1 then "" else ","))
    rows;
  p "  ]\n";
  p "}\n";
  close_out oc

let json_path = "BENCH_par.json"

let run ?(tiny = false) ?(json = true) () =
  let wl, races = measure_all ~tiny () in
  check_equality races;
  let cores = check_speed ~tiny races in
  print_table wl races ~cores;
  if json then begin
    write_json ~path:json_path wl races ~cores;
    Printf.printf "wrote %s\n%!" json_path
  end
