(* Benchmark harness entry point.

     dune exec bench/main.exe                 # every experiment + micro
     dune exec bench/main.exe -- experiments  # the numbered experiments only
     dune exec bench/main.exe -- e3 e5        # selected experiments
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks
     dune exec bench/main.exe -- --csv DIR .. # also write each table as CSV *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec extract_csv acc = function
    | "--csv" :: dir :: rest ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Tables.csv_dir := Some dir;
        extract_csv acc rest
    | arg :: rest -> extract_csv (arg :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract_csv [] args in
  match args with
  | [] ->
      Experiments.run [];
      Micro.run ()
  | [ "experiments" ] -> Experiments.run []
  | [ "micro" ] -> Micro.run ()
  | names ->
      if List.mem "micro" names then Micro.run ();
      let experiment_names = List.filter (fun n -> n <> "micro") names in
      let known = List.map fst Experiments.all in
      let unknown = List.filter (fun n -> not (List.mem n known)) experiment_names in
      if unknown <> [] then begin
        Printf.eprintf "unknown experiment(s): %s (known: %s, micro)\n"
          (String.concat ", " unknown) (String.concat ", " known);
        exit 1
      end;
      Experiments.run experiment_names
