(* Benchmark harness entry point.

     dune exec bench/main.exe                 # every experiment + micro
     dune exec bench/main.exe -- experiments  # the numbered experiments only
     dune exec bench/main.exe -- e3 e5        # selected experiments
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks
     dune exec bench/main.exe -- bench-json   # planner ablation -> BENCH_planner.json
     dune exec bench/main.exe -- bench-json --tiny  # CI smoke workload
     dune exec bench/main.exe -- wire-json    # wire ablation -> BENCH_wire.json
     dune exec bench/main.exe -- chaos-json   # fault-injection sweep -> BENCH_chaos.json
     dune exec bench/main.exe -- chaos-json --durable  # same sweep with WAL durability on
     dune exec bench/main.exe -- chaos-json --link-dicts  # same sweep with link dictionaries on
     dune exec bench/main.exe -- recovery-json # crash-recovery bench -> BENCH_recovery.json
     dune exec bench/main.exe -- pushdown-json # constraint pushdown ablation -> BENCH_pushdown.json
     dune exec bench/main.exe -- sub-json     # standing-query maintenance -> BENCH_sub.json
     dune exec bench/main.exe -- scale-json   # storage-engine scale bench -> BENCH_scale.json
     dune exec bench/main.exe -- par-json     # parallel-runtime race -> BENCH_par.json
     dune exec bench/main.exe -- dict-json    # zone-map + dictionary bench -> BENCH_dict.json
     dune exec bench/main.exe -- --seed N ..  # reseed workload + fault schedule
     dune exec bench/main.exe -- --csv DIR .. # also write each table as CSV *)

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let tiny = ref false in
  let seed = ref 1500 in
  let durable = ref false in
  let link_dicts = ref false in
  let rec extract acc = function
    | "--csv" :: dir :: rest ->
        (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
        Tables.csv_dir := Some dir;
        extract acc rest
    | "--tiny" :: rest ->
        tiny := true;
        extract acc rest
    | "--durable" :: rest ->
        durable := true;
        extract acc rest
    | "--link-dicts" :: rest ->
        link_dicts := true;
        extract acc rest
    | "--seed" :: n :: rest ->
        (match int_of_string_opt n with
        | Some n -> seed := n
        | None ->
            Printf.eprintf "--seed expects an integer, got %S\n" n;
            exit 1);
        extract acc rest
    | arg :: rest -> extract (arg :: acc) rest
    | [] -> List.rev acc
  in
  let args = extract [] args in
  match args with
  | [] ->
      Experiments.run [];
      Micro.run ()
  | [ "experiments" ] -> Experiments.run []
  | [ "micro" ] -> Micro.run ()
  | [ "bench-json" ] -> Planner_bench.run ~tiny:!tiny ()
  | [ "wire-json" ] -> Wire_bench.run ~tiny:!tiny ()
  | [ "chaos-json" ] ->
      Chaos_bench.run ~tiny:!tiny ~seed:!seed ~durable:!durable
        ~link_dicts:!link_dicts ()
  | [ "recovery-json" ] -> Recovery_bench.run ~tiny:!tiny ~seed:!seed ()
  | [ "pushdown-json" ] -> Pushdown_bench.run ~tiny:!tiny ()
  | [ "sub-json" ] -> Sub_bench.run ~tiny:!tiny ()
  | [ "scale-json" ] -> Scale_bench.run ~tiny:!tiny ()
  | [ "par-json" ] -> Par_bench.run ~tiny:!tiny ()
  | [ "dict-json" ] -> Dict_bench.run ~tiny:!tiny ~seed:!seed ()
  | names ->
      if List.mem "micro" names then Micro.run ();
      if List.mem "bench-json" names then Planner_bench.run ~tiny:!tiny ();
      if List.mem "wire-json" names then Wire_bench.run ~tiny:!tiny ();
      if List.mem "chaos-json" names then
        Chaos_bench.run ~tiny:!tiny ~seed:!seed ~durable:!durable
          ~link_dicts:!link_dicts ();
      if List.mem "recovery-json" names then Recovery_bench.run ~tiny:!tiny ~seed:!seed ();
      if List.mem "pushdown-json" names then Pushdown_bench.run ~tiny:!tiny ();
      if List.mem "sub-json" names then Sub_bench.run ~tiny:!tiny ();
      if List.mem "scale-json" names then Scale_bench.run ~tiny:!tiny ();
      if List.mem "par-json" names then Par_bench.run ~tiny:!tiny ();
      if List.mem "dict-json" names then Dict_bench.run ~tiny:!tiny ~seed:!seed ();
      let experiment_names =
        List.filter
          (fun n ->
            n <> "micro" && n <> "bench-json" && n <> "wire-json" && n <> "chaos-json"
            && n <> "recovery-json" && n <> "pushdown-json" && n <> "sub-json"
            && n <> "scale-json" && n <> "par-json" && n <> "dict-json")
          names
      in
      let known = List.map fst Experiments.all in
      let unknown = List.filter (fun n -> not (List.mem n known)) experiment_names in
      if unknown <> [] then begin
        Printf.eprintf
          "unknown experiment(s): %s (known: %s, micro, bench-json, wire-json, chaos-json, recovery-json, pushdown-json, sub-json, scale-json, par-json, dict-json)\n"
          (String.concat ", " unknown) (String.concat ", " known);
        exit 1
      end;
      Experiments.run experiment_names
