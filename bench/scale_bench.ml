(* Scale benchmark (experiment E19 and `make scale-bench`).

   The storage-engine ablation: the same planned evaluator runs over
   two engines fed identical per-node workloads —

     packed-columnar  the production [Relation]: interned values packed
                      into tagged ints, columnar chunk storage, indexes
                      keyed by packed ints
     boxed-seed       [Relation_ref], the seed engine preserved
                      verbatim: boxed tuple sets and indexes keyed by
                      boxed value lists

   The workload is a peer-to-peer network at scale: >= 1k nodes, each
   with two string-columned relations (600 + 400 tuples, so >= 1M
   tuples network-wide) over Zipf-skewed domains of long
   shared-prefix strings — the regime where boxed comparisons walk
   strings on every probe while packed comparisons stay on ints.  Per
   node, three phases are timed separately:

     ingest    bulk insert plus duplicate re-offers (set dedup path)
     subsume   null-aware membership probes, ground and hole-carrying
     query     three shapes through the planned evaluator, several
               runs each, timed separately:
                 chain    full join, answer-heavy (boxing and answer
                          de-duplication shared by both engines)
                 hub      constant-selective composite probe
                 filter   the chain join through a selective equality
                          filter: full join traffic, few survivors —
                          the evaluator-bound shape, and the headline
                          speedup number (the shared per-answer
                          boxing cost is negligible, so what remains
                          is the join core itself)

   Both engines must agree on every observable — tuples admitted,
   subsumption verdicts, answer counts, an order-insensitive content
   digest of the answers, and the evaluator's probe/scan counters
   (identical plans) — otherwise the benchmark aborts.  Results are
   written to BENCH_scale.json; the full run embeds a
   [tiny_reference] block that `make scale-bench-tiny` reproduces in
   CI and is gated against. *)

module Database = Codb_relalg.Database
module Relation = Codb_relalg.Relation
module Ref = Codb_relalg.Relation_ref
module Schema = Codb_relalg.Schema
module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple
module Eval = Codb_cq.Eval
module Term = Codb_cq.Term
module Atom = Codb_cq.Atom
module Query = Codb_cq.Query
module Rng = Codb_workload.Rng

let r_schema = Schema.make "r" [ ("a", Value.Tstring); ("b", Value.Tstring) ]

let s_schema = Schema.make "s" [ ("b", Value.Tstring); ("c", Value.Tstring) ]

type workload = {
  wl_nodes : int;
  wl_r : int;  (* r tuples per node *)
  wl_s : int;  (* s tuples per node *)
  wl_dom_a : int;
  wl_dom_b : int;
  wl_dom_c : int;
  wl_skew : float;
  wl_query_runs : int;
}

let full_workload =
  {
    wl_nodes = 1024;
    wl_r = 600;
    wl_s = 400;
    wl_dom_a = 300;
    wl_dom_b = 200;
    wl_dom_c = 250;
    wl_skew = 1.0;
    wl_query_runs = 3;
  }

let tiny_workload = { full_workload with wl_nodes = 8 }

let total_tuples wl = wl.wl_nodes * (wl.wl_r + wl.wl_s)

(* Long strings with a long shared prefix: boxed equality must walk
   the prefix before it can differ, packed equality never looks. *)
let str_of ~node ~tag rank =
  Value.Str (Printf.sprintf "codb-scale-%s-node%04d-%s-%06d" "wh" node tag rank)

let gen_node_tuples wl ~node =
  let rng = Rng.make ~seed:(7177 + node) in
  let zipf n = Rng.zipf rng ~n ~s:wl.wl_skew in
  let r_tuples =
    List.init wl.wl_r (fun _ ->
        [| str_of ~node ~tag:"a" (zipf wl.wl_dom_a); str_of ~node ~tag:"b" (zipf wl.wl_dom_b) |])
  in
  let s_tuples =
    List.init wl.wl_s (fun _ ->
        [| str_of ~node ~tag:"b" (zipf wl.wl_dom_b); str_of ~node ~tag:"c" (zipf wl.wl_dom_c) |])
  in
  (r_tuples, s_tuples)

let chain_query =
  Query.make
    ~head:(Atom.make "ans" [ Term.Var "a"; Term.Var "c" ])
    ~body:
      [
        Atom.make "r" [ Term.Var "a"; Term.Var "b" ];
        Atom.make "s" [ Term.Var "b"; Term.Var "c" ];
      ]
    ()

(* hub-selective: the most frequent [a] of this node bound as a
   constant, so the plan opens with a composite probe *)
let hub_query ~node =
  Query.make
    ~head:(Atom.make "ans" [ Term.Var "c" ])
    ~body:
      [
        Atom.make "r" [ Term.Cst (str_of ~node ~tag:"a" 1); Term.Var "b" ];
        Atom.make "s" [ Term.Var "b"; Term.Var "c" ];
      ]
    ()

(* evaluator-bound: the same chain join forced through a selective
   equality filter on [a].  The planner scans [s] first (smaller) and
   probes [r] per binding, and [a] only becomes ground at that final
   step — the filter cannot be pushed before the join, so both
   engines pay the full join's probe-and-match traffic while only a
   few percent of the matches survive to be boxed.  Timing this shape
   measures the join core, not answer materialisation. *)
let filter_query ~node =
  Query.make
    ~head:(Atom.make "ans" [ Term.Var "a"; Term.Var "c" ])
    ~body:
      [
        Atom.make "r" [ Term.Var "a"; Term.Var "b" ];
        Atom.make "s" [ Term.Var "b"; Term.Var "c" ];
      ]
    ~comparisons:
      [ { Query.left = Term.Var "a"; op = Query.Eq; right = Term.Cst (str_of ~node ~tag:"a" 17) } ]
    ()

(* ---- engines --------------------------------------------------------- *)

(* one access-path source per engine, same [Eval.rows] contract *)
type engine = {
  e_name : string;
  e_fresh : unit -> Tuple.t list -> Tuple.t list -> unit;
      (* load this node's r and s tuples *)
  e_reoffer : Tuple.t list -> Tuple.t list -> int;  (* duplicates rejected *)
  e_subsumed : Tuple.t -> bool;  (* against r *)
  e_source : unit -> Eval.source;
}

let packed_engine () =
  let db = ref (Database.create [ r_schema; s_schema ]) in
  {
    e_name = "packed-columnar";
    e_fresh =
      (fun () r s ->
        db := Database.create [ r_schema; s_schema ];
        ignore (Database.insert_all !db "r" r);
        ignore (Database.insert_all !db "s" s));
    e_reoffer =
      (fun r s ->
        let offered = List.length r + List.length s in
        let fresh =
          List.length (Database.insert_all !db "r" r)
          + List.length (Database.insert_all !db "s" s)
        in
        offered - fresh);
    e_subsumed = (fun t -> Relation.subsumed (Database.relation !db "r") t);
    e_source = (fun () -> Eval.of_database !db);
  }

(* the boxed baseline drives the same evaluator through hand-built
   access paths over [Relation_ref] *)
let rows_of_ref r =
  {
    Eval.all = (fun () -> Ref.to_list r);
    all_arr = None;
    size = Ref.cardinal r;
    probe = Some (fun col v -> Ref.lookup r ~col v);
    probe_arr = None;
    probe_cols = Some (fun bs -> Ref.lookup_cols r bs);
    probe_cols_arr = None;
    distinct = Some (fun col -> Ref.distinct_count r ~col);
    arity = Some (Schema.arity (Ref.schema r));
    packed = None;
  }

let boxed_engine () =
  let r_rel = ref (Ref.create r_schema) in
  let s_rel = ref (Ref.create s_schema) in
  {
    e_name = "boxed-seed";
    e_fresh =
      (fun () r s ->
        r_rel := Ref.create r_schema;
        s_rel := Ref.create s_schema;
        ignore (Ref.insert_all !r_rel r);
        ignore (Ref.insert_all !s_rel s));
    e_reoffer =
      (fun r s ->
        let offered = List.length r + List.length s in
        let fresh =
          List.length (Ref.insert_all !r_rel r) + List.length (Ref.insert_all !s_rel s)
        in
        offered - fresh);
    e_subsumed = (fun t -> Ref.subsumed !r_rel t);
    e_source =
      (fun () ->
        fun rel ->
          match rel with
          | "r" -> rows_of_ref !r_rel
          | "s" -> rows_of_ref !s_rel
          | _ -> Eval.empty_rows);
  }

(* ---- equivalence digest ---------------------------------------------- *)

(* FNV-1a over value contents ({!Tuple.digest_fold}): independent of
   intern-table slot order, so digests compare across processes (full
   run vs CI tiny run).  [Eval.answer_tuples] returns answers in
   sorted order, so the fold is order-stable across engines. *)
let tuples_digest h tuples = Tuple.digest_fold h tuples

(* ---- measurement ----------------------------------------------------- *)

type metrics = {
  mutable ingest_s : float;
  mutable subsume_s : float;
  mutable query_s : float;  (* chain + hub + filter *)
  mutable chain_s : float;
  mutable hub_s : float;
  mutable filter_s : float;
  mutable dups : int;
  mutable subsumed_yes : int;
  mutable answers : int;
  mutable digest : int;
  mutable probes : int;
  mutable scans : int;
  mutable alloc_bytes : float;
}

let fresh_metrics () =
  {
    ingest_s = 0.;
    subsume_s = 0.;
    query_s = 0.;
    chain_s = 0.;
    hub_s = 0.;
    filter_s = 0.;
    dups = 0;
    subsumed_yes = 0;
    answers = 0;
    digest = 0;
    probes = 0;
    scans = 0;
    alloc_bytes = 0.;
  }

let run_node wl ~node engine m =
  let r_tuples, s_tuples = gen_node_tuples wl ~node in
  let reoffer_r = List.filteri (fun k _ -> k mod 10 = 0) r_tuples in
  let reoffer_s = List.filteri (fun k _ -> k mod 10 = 0) s_tuples in
  let alloc0 = Gc.allocated_bytes () in
  (* ingest *)
  let t0 = Unix.gettimeofday () in
  engine.e_fresh () r_tuples s_tuples;
  m.dups <- m.dups + engine.e_reoffer reoffer_r reoffer_s;
  m.ingest_s <- m.ingest_s +. (Unix.gettimeofday () -. t0);
  (* subsume: ground hits, ground misses, hole-carrying probes *)
  let t0 = Unix.gettimeofday () in
  let yes = ref 0 in
  List.iteri
    (fun k t ->
      if k mod 7 = 0 then begin
        if engine.e_subsumed t then incr yes;
        if engine.e_subsumed [| t.(0); Value.Str "codb-scale-absent" |] then incr yes;
        if engine.e_subsumed [| t.(0); Value.Hole 0 |] then incr yes;
        if engine.e_subsumed [| Value.Hole 0; t.(1) |] then incr yes
      end)
    r_tuples;
  m.subsumed_yes <- m.subsumed_yes + !yes;
  m.subsume_s <- m.subsume_s +. (Unix.gettimeofday () -. t0);
  (* query: several planned-evaluator runs over each shape, each shape
     timed on its own (the filter shape is the evaluator-bound one) *)
  let source = engine.e_source () in
  let hub = hub_query ~node in
  let filter = filter_query ~node in
  let before = Eval.counters () in
  let chain_answers = ref [] and hub_answers = ref [] and filter_answers = ref [] in
  let shape answers q =
    let t0 = Unix.gettimeofday () in
    for _ = 1 to wl.wl_query_runs do
      answers := Eval.answer_tuples source q
    done;
    Unix.gettimeofday () -. t0
  in
  let chain_s = shape chain_answers chain_query in
  let hub_s = shape hub_answers hub in
  let filter_s = shape filter_answers filter in
  m.chain_s <- m.chain_s +. chain_s;
  m.hub_s <- m.hub_s +. hub_s;
  m.filter_s <- m.filter_s +. filter_s;
  m.query_s <- m.query_s +. chain_s +. hub_s +. filter_s;
  let after = Eval.counters () in
  m.probes <- m.probes + (after.Eval.probes - before.Eval.probes);
  m.scans <- m.scans + (after.Eval.scans - before.Eval.scans);
  m.answers <-
    m.answers + List.length !chain_answers + List.length !hub_answers
    + List.length !filter_answers;
  m.digest <-
    tuples_digest
      (tuples_digest (tuples_digest m.digest !chain_answers) !hub_answers)
      !filter_answers;
  m.alloc_bytes <- m.alloc_bytes +. (Gc.allocated_bytes () -. alloc0)

let measure wl =
  let engines = [ packed_engine (); boxed_engine () ] in
  let results = List.map (fun e -> (e, fresh_metrics ())) engines in
  for node = 0 to wl.wl_nodes - 1 do
    List.iter (fun (e, m) -> run_node wl ~node e m) results
  done;
  (* hard equivalence gate: identical observables, identical plans *)
  (match results with
  | (e0, m0) :: rest ->
      List.iter
        (fun (e, m) ->
          if
            m.dups <> m0.dups || m.subsumed_yes <> m0.subsumed_yes
            || m.answers <> m0.answers || m.digest <> m0.digest
            || m.probes <> m0.probes || m.scans <> m0.scans
          then
            failwith
              (Printf.sprintf
                 "scale bench: %s disagrees with %s (answers %d vs %d, digest %d vs %d, \
                  probes %d vs %d)"
                 e.e_name e0.e_name m.answers m0.answers m.digest m0.digest m.probes
                 m0.probes))
        rest
  | [] -> ());
  results

let query_speedup results =
  match
    ( List.find_opt (fun (e, _) -> e.e_name = "packed-columnar") results,
      List.find_opt (fun (e, _) -> e.e_name = "boxed-seed") results )
  with
  | Some (_, p), Some (_, b) when p.query_s > 0. -> b.query_s /. p.query_s
  | _ -> nan

let phase_speedup results f =
  match
    ( List.find_opt (fun (e, _) -> e.e_name = "packed-columnar") results,
      List.find_opt (fun (e, _) -> e.e_name = "boxed-seed") results )
  with
  | Some (_, p), Some (_, b) when f p > 0. -> f b /. f p
  | _ -> nan

let print_table ~label wl results =
  Tables.print
    ~title:
      (Printf.sprintf
         "E19 - storage-engine scale bench [%s] (%d nodes, %d tuples, zipf %.1f)" label
         wl.wl_nodes (total_tuples wl) wl.wl_skew)
    ~header:
      [ "engine"; "ingest s"; "subsume s"; "chain s"; "hub s"; "filter s"; "probes";
        "scans"; "answers"; "alloc MB" ]
    (List.map
       (fun (e, m) ->
         [
           e.e_name;
           Tables.f2 m.ingest_s;
           Tables.f2 m.subsume_s;
           Tables.f2 m.chain_s;
           Tables.f2 m.hub_s;
           Tables.f2 m.filter_s;
           Tables.i0 m.probes;
           Tables.i0 m.scans;
           Tables.i0 m.answers;
           Tables.f2 (m.alloc_bytes /. 1048576.0);
         ])
       results);
  Printf.printf
    "query speedups (boxed-seed / packed-columnar): chain %.2fx, hub %.2fx, \
     filter %.2fx (evaluator-bound), overall %.2fx\n%!"
    (phase_speedup results (fun m -> m.chain_s))
    (phase_speedup results (fun m -> m.hub_s))
    (phase_speedup results (fun m -> m.filter_s))
    (query_speedup results)

let emit_result oc ~indent wl results =
  let p fmt = Printf.fprintf oc fmt in
  let pad = String.make indent ' ' in
  p "%s\"workload\": {\"nodes\": %d, \"r_per_node\": %d, \"s_per_node\": %d, \
     \"total_tuples\": %d, \"dom_a\": %d, \"dom_b\": %d, \"dom_c\": %d, \"skew\": %g, \
     \"query_runs\": %d},\n"
    pad wl.wl_nodes wl.wl_r wl.wl_s (total_tuples wl) wl.wl_dom_a wl.wl_dom_b wl.wl_dom_c
    wl.wl_skew wl.wl_query_runs;
  p "%s\"engines\": [\n" pad;
  let n = List.length results in
  List.iteri
    (fun k (e, m) ->
      p
        "%s  {\"name\": \"%s\", \"ingest_s\": %.6f, \"subsume_s\": %.6f, \"query_s\": \
         %.6f, \"chain_s\": %.6f, \"hub_s\": %.6f, \"filter_s\": %.6f, \"probes\": %d, \
         \"scans\": %d, \"dups\": %d, \"subsumed_yes\": %d, \"answers\": %d, \"digest\": \
         %d, \"allocated_mb\": %.2f}%s\n"
        pad e.e_name m.ingest_s m.subsume_s m.query_s m.chain_s m.hub_s m.filter_s
        m.probes m.scans m.dups m.subsumed_yes m.answers m.digest
        (m.alloc_bytes /. 1048576.0)
        (if k = n - 1 then "" else ","))
    results;
  p "%s],\n" pad;
  p
    "%s\"speedup\": {\"ingest\": %.2f, \"subsume\": %.2f, \"query\": %.2f, \
     \"query_chain\": %.2f, \"query_hub\": %.2f, \"query_filter\": %.2f},\n"
    pad
    (phase_speedup results (fun m -> m.ingest_s))
    (phase_speedup results (fun m -> m.subsume_s))
    (phase_speedup results (fun m -> m.query_s))
    (phase_speedup results (fun m -> m.chain_s))
    (phase_speedup results (fun m -> m.hub_s))
    (phase_speedup results (fun m -> m.filter_s));
  p "%s\"answers_identical\": true" pad

(* Hand-rolled JSON: the harness must not grow dependencies. *)
let write_json ~path ~full_part ~tiny_part =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "{\n";
  p "  \"benchmark\": \"scale-storage\",\n";
  (match full_part with
  | Some (wl, results) ->
      emit_result oc ~indent:2 wl results;
      p ",\n"
  | None -> ());
  (match tiny_part with
  | Some (wl, results) ->
      p "  \"tiny_reference\": {\n";
      emit_result oc ~indent:4 wl results;
      p "\n  },\n"
  | None -> ());
  p "  \"top_heap_mwords\": %.1f\n"
    (float_of_int (Gc.quick_stat ()).Gc.top_heap_words /. 1.0e6);
  p "}\n";
  close_out oc

let run ?(tiny = false) () =
  if tiny then begin
    let wl = tiny_workload in
    let results = measure wl in
    print_table ~label:"tiny" wl results;
    write_json ~path:"BENCH_scale_tiny.json" ~full_part:None
      ~tiny_part:(Some (wl, results));
    Printf.printf "wrote BENCH_scale_tiny.json\n%!"
  end
  else begin
    (* the tiny reference first (cheap), then the full run *)
    let tiny_results = measure tiny_workload in
    print_table ~label:"tiny reference" tiny_workload tiny_results;
    let wl = full_workload in
    let results = measure wl in
    print_table ~label:"full" wl results;
    write_json ~path:"BENCH_scale.json" ~full_part:(Some (wl, results))
      ~tiny_part:(Some (tiny_workload, tiny_results));
    Printf.printf "wrote BENCH_scale.json\n%!"
  end
