(* Standing-query maintenance ablation (experiment E18 and
   `make sub-bench`).

   The same standing queries armed twice over the same chain — once
   with incremental maintenance (store deltas fed through the
   semi-naive delta evaluator, only genuinely new answers pushed) and
   once with [Options.sub_naive], where every store delta triggers a
   from-scratch re-evaluation whose full answer set is re-pushed and
   absorbed by the mirror's set semantics.

   Three query classes, one remote subscriber (n1 mirroring a host
   subscription at n0, so push traffic is on the wire) plus a local
   subscriber at the host:

     selective   a constant binds the key column of a self-join —
                 re-evaluation rescans the whole relation per delta
                 while delta evaluation touches only matching tuples;
     join        open self-join — the probe gap without selectivity;
     open        single atom — both modes scan alike, but naive
                 re-pushes the full answer set on every delta.

   Naive mode must never change any answer set (host or mirror,
   checked tuple-for-tuple), incremental must never push more bytes,
   and on the join workloads incremental must spend at most half the
   evaluator work and on the selective workload at most half the
   bytes per answer.  Violations abort the benchmark so CI fails
   loudly.  Results go to BENCH_sub.json. *)

module System = Codb_core.System
module Topology = Codb_core.Topology
module Options = Codb_core.Options
module Report = Codb_core.Report
module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple
module Parser = Codb_cq.Parser
module Datagen = Codb_workload.Datagen

type workload = {
  wl_nodes : int;
  wl_tuples : int;
  wl_domain : int;
  wl_rounds : int;  (* update rounds after the seed *)
  wl_inserts : int;  (* fresh facts per round, at the chain tail *)
}

let workload ~tiny =
  if tiny then
    { wl_nodes = 3; wl_tuples = 16; wl_domain = 8; wl_rounds = 3; wl_inserts = 6 }
  else
    { wl_nodes = 5; wl_tuples = 48; wl_domain = 12; wl_rounds = 5; wl_inserts = 10 }

(* Every class is keyed so the gates are meaningful: the selective and
   join classes need the self-join probe gap, the open class shows the
   wire gap alone. *)
let queries =
  [
    ("selective", "o(v, w) <- data(2, v), data(2, w)");
    ("join", "o(k, v, w) <- data(k, v), data(k, w)");
    ("open", "o(k, v) <- data(k, v)");
  ]

let config wl =
  let params =
    {
      Topology.default_params with
      Topology.tuples_per_node = wl.wl_tuples;
      profile = { Datagen.default_profile with Datagen.domain_size = wl.wl_domain };
    }
  in
  Topology.generate ~params ~seed:1800 Topology.Chain ~n:wl.wl_nodes

let parse text =
  match Parser.parse_query text with Ok q -> q | Error e -> failwith e

type row = {
  r_query : string;  (* class name from [queries] *)
  r_naive : bool;
  r_host_answers : Tuple.t list;
  r_mirror_answers : Tuple.t list;
  r_probes : int;
  r_scans : int;
  r_push_msgs : int;
  r_bytes : int;
  r_adds : int;
  r_retracts : int;
  r_bpa : float;  (* push bytes per delivered answer tuple *)
  r_wall_s : float;
}

let measure wl (qname, qtext) naive =
  let opts =
    {
      Options.default with
      Options.subscriptions = true;
      sub_naive = naive;
      pushdown = true;
    }
  in
  let sys = System.build_exn ~opts (config wl) in
  let q = parse qtext in
  let wall_start = Unix.gettimeofday () in
  let host_id =
    match System.subscribe sys ~at:"n0" q with
    | Ok id -> id
    | Error e -> failwith (Printf.sprintf "subscribe %s: %s" qname e)
  in
  let mirror_id =
    match System.subscribe_remote sys ~subscriber:"n1" ~host:"n0" q with
    | Ok id -> id
    | Error e -> failwith (Printf.sprintf "subscribe_remote %s: %s" qname e)
  in
  ignore (System.run sys);
  (* Rounds of fresh facts, alternating between the chain tail (the
     update fix-point carries them to the host in batches) and the
     host itself (each local write is its own delta event, so naive
     mode pays a from-scratch re-evaluation per insert); half the
     inserts hit the selective key so every class keeps gaining
     answers. *)
  let tail = Topology.node_name (wl.wl_nodes - 1) in
  for round = 1 to wl.wl_rounds do
    for i = 1 to wl.wl_inserts do
      let k = if i mod 2 = 0 then 2 else i mod wl.wl_domain in
      let v = Printf.sprintf "r%d-%d" round i in
      let at = if i mod 2 = 0 then "n0" else tail in
      ignore
        (System.insert_fact sys ~at ~rel:"data" [| Value.Int k; Value.Str v |])
    done;
    ignore (System.run_update sys ~initiator:"n0");
    ignore (System.run sys)
  done;
  let wall = Unix.gettimeofday () -. wall_start in
  let answers at id =
    match System.subscription_answers sys ~at id with
    | Some ts -> List.sort Tuple.compare ts
    | None -> failwith (Printf.sprintf "subscription %s vanished" id)
  in
  let sr = Report.sub_report (System.snapshots sys) in
  let host_answers = answers "n0" host_id in
  {
    r_query = qname;
    r_naive = naive;
    r_host_answers = host_answers;
    r_mirror_answers = answers "n1" mirror_id;
    r_probes = sr.Report.sr_probes;
    r_scans = sr.Report.sr_scans;
    r_push_msgs = sr.Report.sr_push_msgs;
    r_bytes = sr.Report.sr_bytes;
    r_adds = sr.Report.sr_adds;
    r_retracts = sr.Report.sr_retracts;
    (* Bytes per *distinct* answer: both modes end on the same answer
       set, so this is the wire cost of materialising it remotely.
       (Dividing by pushed adds instead would flatter naive mode,
       whose redundant re-pushes inflate the denominator.) *)
    r_bpa =
      (match host_answers with
      | [] -> 0.
      | _ :: _ ->
          float_of_int sr.Report.sr_bytes
          /. float_of_int (List.length host_answers));
    r_wall_s = wall;
  }

(* Pairs of (incremental, naive) runs in query order. *)
let measure_all ~tiny () =
  let wl = workload ~tiny in
  let pairs =
    List.map (fun q -> (measure wl q false, measure wl q true)) queries
  in
  (wl, pairs)

let work r = r.r_probes + r.r_scans
let ratio base own = if own > 0 then float_of_int base /. float_of_int own else nan
let fratio base own = if own > 0. then base /. own else nan
let answers_per_s r = float_of_int (r.r_adds + r.r_retracts) /. r.r_wall_s

let check_invariants pairs =
  List.iter
    (fun (incr, naive) ->
      let where = incr.r_query in
      if not (List.equal Tuple.equal incr.r_host_answers naive.r_host_answers) then
        failwith (Printf.sprintf "naive re-eval changed host answers on %s" where);
      if not (List.equal Tuple.equal incr.r_mirror_answers naive.r_mirror_answers)
      then
        failwith (Printf.sprintf "naive re-eval changed mirror answers on %s" where);
      if not (List.equal Tuple.equal incr.r_host_answers incr.r_mirror_answers)
      then failwith (Printf.sprintf "mirror diverged from host on %s" where);
      if incr.r_bytes > naive.r_bytes then
        failwith
          (Printf.sprintf "incremental pushed more bytes on %s: %d B > %d B" where
             incr.r_bytes naive.r_bytes);
      if
        (String.equal where "selective" || String.equal where "join")
        && work incr * 2 > work naive
      then
        failwith
          (Printf.sprintf
             "incremental below the 2x work bar on %s: %d probes+scans vs %d naive"
             where (work incr) (work naive));
      if String.equal where "selective" && incr.r_bpa *. 2. > naive.r_bpa then
        failwith
          (Printf.sprintf
             "incremental below the 2x bytes-per-answer bar on %s: %.1f vs %.1f"
             where incr.r_bpa naive.r_bpa))
    pairs

let print_table wl pairs =
  Tables.print
    ~title:
      (Printf.sprintf
         "E18 - standing-query maintenance (chain N=%d, %d tuples/node, %d \
          update rounds)"
         wl.wl_nodes wl.wl_tuples wl.wl_rounds)
    ~header:
      [
        "query"; "mode"; "answers"; "adds"; "probes+scans"; "push msgs";
        "push bytes"; "B/answer"; "work vs naive";
      ]
    (List.concat_map
       (fun (incr, naive) ->
         List.map
           (fun r ->
             [
               r.r_query;
               (if r.r_naive then "naive" else "incremental");
               Tables.i0 (List.length r.r_host_answers);
               Tables.i0 r.r_adds;
               Tables.i0 (work r);
               Tables.i0 r.r_push_msgs;
               Tables.i0 r.r_bytes;
               Printf.sprintf "%.1f" r.r_bpa;
               (if r.r_naive then "1.00x"
                else Printf.sprintf "%.2fx" (ratio (work naive) (work r)));
             ])
           [ incr; naive ])
       pairs)

(* Hand-rolled JSON: the harness must not grow dependencies. *)
let write_json ~path wl pairs =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  let side r =
    Printf.sprintf
      "{\"probes\": %d, \"scans\": %d, \"push_msgs\": %d, \"bytes\": %d, \
       \"adds\": %d, \"retracts\": %d, \"bytes_per_answer\": %.2f, \
       \"answers_per_s\": %.1f, \"wall_s\": %.4f}"
      r.r_probes r.r_scans r.r_push_msgs r.r_bytes r.r_adds r.r_retracts r.r_bpa
      (answers_per_s r) r.r_wall_s
  in
  p "{\n";
  p "  \"benchmark\": \"sub\",\n";
  p
    "  \"workload\": {\"nodes\": %d, \"tuples_per_node\": %d, \"domain\": %d, \
     \"rounds\": %d, \"inserts_per_round\": %d},\n"
    wl.wl_nodes wl.wl_tuples wl.wl_domain wl.wl_rounds wl.wl_inserts;
  p "  \"runs\": [\n";
  let n = List.length pairs in
  List.iteri
    (fun i (incr, naive) ->
      p "    {\"query\": \"%s\", \"answers\": %d, \"answers_identical\": true,\n"
        incr.r_query
        (List.length incr.r_host_answers);
      p "     \"incremental\": %s,\n" (side incr);
      p "     \"naive\": %s,\n" (side naive);
      p "     \"work_reduction\": %.2f, \"bytes_per_answer_reduction\": %.2f}%s\n"
        (ratio (work naive) (work incr))
        (fratio naive.r_bpa incr.r_bpa)
        (if i = n - 1 then "" else ","))
    pairs;
  p "  ]\n";
  p "}\n";
  close_out oc

let json_path = "BENCH_sub.json"

let run ?(tiny = false) ?(json = true) () =
  let wl, pairs = measure_all ~tiny () in
  print_table wl pairs;
  check_invariants pairs;
  if json then begin
    write_json ~path:json_path wl pairs;
    Printf.printf "wrote %s\n%!" json_path
  end
