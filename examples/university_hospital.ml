(* Heterogeneous data integration, the scenario GLAV rules exist for.

   Three organisations with *different schemas*:

   - [hospital]   staff(name, ward, role)
   - [university] researcher(name, dept); teaches(name, course)
   - [registry]   person(name, affiliation, position) — wants a
                  unified view of everyone.

   The registry's rules translate both source schemas into its own:
   - hospital staff map with their ward as affiliation;
   - university researchers map with an *existential* position (the
     registry knows the person exists and where, but not their
     position → a marked null);
   - a join rule derives lecturer entries from researchers who teach.

   The hospital additionally carries a denial constraint (no staff in
   the "closed" ward); we show that when it is violated, the
   hospital's data is quarantined and does not propagate — the
   paper's principle (d).

   Run with: dune exec examples/university_hospital.exe *)

module System = Codb_core.System
module Report = Codb_core.Report
module Parser = Codb_cq.Parser
module Tuple = Codb_relalg.Tuple
module Eval = Codb_cq.Eval

let network ~with_violation =
  Printf.sprintf
    {|
node registry {
  relation person(name: string, affiliation: string, position: string);
}
node hospital {
  relation staff(name: string, ward: string, role: string);
  fact staff("dr gray", "surgery", "surgeon");
  fact staff("dr house", "diagnostics", "physician");
  %s
  constraint staff(n, "closed", r);
}
node university {
  relation researcher(name: string, dept: string);
  relation teaches(name: string, course: string);
  fact researcher("prof kuper", "cs");
  fact researcher("prof franconi", "cs");
  fact teaches("prof kuper", "databases");
}
rule hosp_staff at registry:
  person(n, w, r) <- hospital: staff(n, w, r);
rule univ_people at registry:
  person(n, d, p) <- university: researcher(n, d);
rule univ_lecturers at registry:
  person(n, d, "lecturer") <- university: researcher(n, d), teaches(n, c);
|}
    (if with_violation then {|fact staff("dr who", "closed", "timelord");|} else "")

let build text =
  match Parser.load_config text with
  | Ok cfg -> System.build_exn cfg
  | Error errors ->
      List.iter prerr_endline errors;
      exit 1

let show_registry sys =
  let q =
    match Parser.parse_query "ans(n, a, p) <- person(n, a, p)" with
    | Ok q -> q
    | Error e -> failwith e
  in
  let answers = System.local_answers sys ~at:"registry" q in
  Fmt.pr "registry view (%d entries, %d certain):@." (List.length answers)
    (List.length (Eval.certain answers));
  List.iter (fun t -> Fmt.pr "  %a@." Tuple.pp t) answers

let () =
  Fmt.pr "=== consistent sources ===@.";
  let sys = build (network ~with_violation:false) in
  let uid = System.run_update sys ~initiator:"registry" in
  (match Report.update_report (System.snapshots sys) uid with
  | Some r ->
      Fmt.pr "update: %d data msgs, %d tuples moved, %d nulls minted@."
        r.Report.ur_data_msgs r.Report.ur_new_tuples r.Report.ur_nulls
  | None -> assert false);
  show_registry sys;

  (* The same integration, but the hospital now violates its ward
     constraint: its data must not reach the registry at all, while
     the university's still does. *)
  Fmt.pr "@.=== hospital inconsistent: its data is quarantined ===@.";
  let sys2 = build (network ~with_violation:true) in
  let _ = System.run_update sys2 ~initiator:"registry" in
  show_registry sys2
