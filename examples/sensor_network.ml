(* A living network: continuous inserts, query-dependent updates and
   streaming results.

   Three field stations collect sensor readings; a monitoring centre
   integrates them through GLAV rules (station ids become part of the
   centre's schema).  The centre uses the paper's *query-dependent
   update requests*: instead of a network-wide global update it
   materialises exactly what its dashboard query needs, whenever it
   needs it.  New readings inserted between rounds are picked up
   incrementally (duplicate suppression means only deltas travel).
   Finally an ad-hoc diagnostic query streams its results as they
   arrive from the stations.

   Run with: dune exec examples/sensor_network.exe *)

module System = Codb_core.System
module Report = Codb_core.Report
module Parser = Codb_cq.Parser
module Tuple = Codb_relalg.Tuple
module Value = Codb_relalg.Value

let network =
  {|
node centre {
  relation reading(station: string, sensor: int, temp: int);
  relation alert(station: string, sensor: int);
}
node alpha {
  relation measure(sensor: int, temp: int);
  fact measure(1, 18); fact measure(2, 21);
}
node beta {
  relation measure(sensor: int, temp: int);
  fact measure(1, 35); fact measure(2, 19);
}
node gamma mediator {
  relation measure(sensor: int, temp: int);
}
// the mediator relays a remote station that the centre cannot reach
node delta { relation measure(sensor: int, temp: int); fact measure(9, 40); }

rule from_alpha at centre: reading("alpha", s, t) <- alpha: measure(s, t);
rule from_beta  at centre: reading("beta", s, t) <- beta: measure(s, t);
rule from_gamma at centre: reading("gamma", s, t) <- gamma: measure(s, t);
rule relay      at gamma:  measure(s, t) <- delta: measure(s, t);
rule hot_alpha  at centre: alert("alpha", s) <- alpha: measure(s, t), t >= 30;
rule hot_beta   at centre: alert("beta", s) <- beta: measure(s, t), t >= 30;
|}

let parse_or_die text =
  match Parser.load_config text with
  | Ok cfg -> cfg
  | Error errors ->
      List.iter prerr_endline errors;
      exit 1

let q text =
  match Parser.parse_query text with Ok q -> q | Error e -> failwith e

let dashboard = q {|d(st, s, t) <- reading(st, s, t)|}

let alerts = q {|a(st, s) <- alert(st, s)|}

let refresh sys label =
  let uid = System.run_scoped_update sys ~at:"centre" dashboard in
  let _ = System.run_scoped_update sys ~at:"centre" alerts in
  let report = Option.get (Report.update_report (System.snapshots sys) uid) in
  Fmt.pr "[%s] refresh moved %d tuple(s) in %d message(s)@." label
    report.Report.ur_new_tuples report.Report.ur_data_msgs;
  let readings = System.local_answers sys ~at:"centre" dashboard in
  let alerts = System.local_answers sys ~at:"centre" alerts in
  Fmt.pr "  dashboard: %d reading(s), %d alert(s)@." (List.length readings)
    (List.length alerts);
  List.iter (fun t -> Fmt.pr "  ALERT %a@." Tuple.pp t) alerts

let () =
  let sys = System.build_exn (parse_or_die network) in

  (* Round 1: first materialisation — everything is new. *)
  refresh sys "round 1";

  (* Between rounds, stations keep measuring. *)
  ignore
    (System.insert_fact sys ~at:"alpha" ~rel:"measure"
       [| Value.Int 3; Value.Int 31 |]);
  ignore
    (System.insert_fact sys ~at:"delta" ~rel:"measure"
       [| Value.Int 10; Value.Int 12 |]);

  (* Round 2: only the two new readings (and the new alert) travel. *)
  refresh sys "round 2";

  (* Round 3: nothing changed, nothing moves. *)
  refresh sys "round 3";

  (* An ad-hoc diagnostic, streaming answers as they arrive: the
     centre's already-materialised readings stream immediately, and
     anything newer would follow as the stations respond. *)
  Fmt.pr "@.ad-hoc at centre, streaming:@.";
  let outcome =
    System.run_query sys ~at:"centre"
      (q {|hot(st, s, t) <- reading(st, s, t), t >= 30|})
      ~on_partial:(fun batch ->
        List.iter (fun t -> Fmt.pr "  ... %a@." Tuple.pp t) batch)
  in
  Fmt.pr "done: %d hot reading(s) network-wide@."
    (List.length outcome.System.qo_answers)
