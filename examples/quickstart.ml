(* Quickstart: a two-node coDB network in ~40 lines.

   Node [library] keeps books(title, author); node [shop] imports them
   through a GLAV coordination rule into its own catalogue schema.
   We run one global update, then query the shop locally.

   Run with: dune exec examples/quickstart.exe *)

module System = Codb_core.System
module Report = Codb_core.Report
module Parser = Codb_cq.Parser

let network =
  {|
node shop {
  relation catalogue(title: string);
}
node library {
  relation books(title: string, author: string);
  fact books("Distributed Algorithms", "Lynch");
  fact books("Data Integration", "Lenzerini");
  fact books("Foundations of Databases", "Abiteboul");
}
rule import_titles at shop: catalogue(t) <- library: books(t, a);
|}

let parse_or_die text =
  match Parser.load_config text with
  | Ok cfg -> cfg
  | Error errors ->
      List.iter prerr_endline errors;
      exit 1

let () =
  let sys = System.build_exn (parse_or_die network) in

  (* 1. A global update: the shop fetches everything its rule allows. *)
  let update_id = System.run_update sys ~initiator:"shop" in
  (match Report.update_report (System.snapshots sys) update_id with
  | Some report -> Fmt.pr "%a@.@." Report.pp_update_report report
  | None -> assert false);

  (* 2. After the update, the shop answers locally. *)
  let query =
    match Parser.parse_query {|answer(t) <- catalogue(t)|} with
    | Ok q -> q
    | Error e -> failwith e
  in
  let titles = System.local_answers sys ~at:"shop" query in
  Fmt.pr "shop catalogue after the update:@.";
  List.iter (fun t -> Fmt.pr "  %a@." Codb_relalg.Tuple.pp t) titles;

  (* 3. The same data is reachable at query time without
        materialising: build a fresh network and just ask. *)
  let fresh = System.build_exn (parse_or_die network) in
  let outcome = System.run_query fresh ~at:"shop" query in
  Fmt.pr "@.query-time answers (no update ran): %d, fetched in %.4fs simulated@."
    (List.length outcome.System.qo_answers)
    (outcome.System.qo_finished -. outcome.System.qo_started)
