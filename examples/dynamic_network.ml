(* The super-peer and dynamic topology (paper, Section 4).

   The demo's control plane: a super-peer broadcasts the coordination
   rules file to all peers, triggers global updates, rewires the
   network at runtime by broadcasting a different file, and finally
   collects every node's statistics into one report.  A new node also
   joins mid-lifetime and is discovered by the others.

   Run with: dune exec examples/dynamic_network.exe *)

module System = Codb_core.System
module Superpeer = Codb_core.Superpeer
module Topology = Codb_core.Topology
module Report = Codb_core.Report
module Parser = Codb_cq.Parser
module Config = Codb_cq.Config
module Peer_id = Codb_net.Peer_id

let params = { Topology.default_params with Topology.tuples_per_node = 20 }

let query =
  match Parser.parse_query "ans(x, y) <- data(x, y)" with
  | Ok q -> q
  | Error e -> failwith e

let run_update_via_superpeer sys ~at =
  let sp = System.superpeer sys in
  Superpeer.trigger_update sp ~at:(Peer_id.of_string at);
  let _ = System.run sys in
  match Report.latest_update_report (System.collect_stats sys) with
  | Some r -> r
  | None -> failwith "no update report"

let () =
  (* Phase 1: a chain of six nodes, update initiated through the
     super-peer, stats collected through the super-peer. *)
  let chain = Topology.generate ~params ~seed:1 Topology.Chain ~n:6 in
  let sys = System.build_exn chain in
  let r1 = run_update_via_superpeer sys ~at:"n0" in
  Fmt.pr "chain topology:@.%a@.@." Report.pp_update_report r1;

  (* Phase 2: the super-peer broadcasts a star-shaped rules file; each
     node drops its old rules and pipes and creates the new ones. *)
  let star = Topology.rules_only (Topology.generate ~params ~seed:1 Topology.Star_in ~n:6) in
  System.broadcast_rules sys star;
  Fmt.pr "rewired chain -> star-in at runtime@.";
  let r2 = run_update_via_superpeer sys ~at:"n0" in
  Fmt.pr "star topology:@.%a@.@." Report.pp_update_report r2;
  Fmt.pr "star update has path length %d (chain had %d)@.@." r2.Report.ur_longest_path
    r1.Report.ur_longest_path;

  (* Phase 3: a brand-new node joins with fresh data; the super-peer
     wires it to the centre and the next update picks it up. *)
  let newcomer =
    {
      Config.node_name = "n6";
      relations = [ Topology.data_relation ];
      facts =
        [
          ("data", [| Codb_relalg.Value.Int 4242; Codb_relalg.Value.Str "fresh" |]);
        ];
      mediator = false;
      constraints = [];
    }
  in
  System.add_node sys newcomer;
  let cfg = System.config sys in
  let join_rule =
    {
      Config.rule_id = "r_0_6";
      importer = "n0";
      source = "n6";
      rule_query =
        (match Parser.parse_query "data(x, y) <- data(x, y)" with
        | Ok q -> q
        | Error e -> failwith e);
    }
  in
  System.broadcast_rules sys { cfg with Config.rules = join_rule :: cfg.Config.rules };
  let _ = run_update_via_superpeer sys ~at:"n0" in
  let hits = System.local_answers sys ~at:"n0"
      (match Parser.parse_query "ans(y) <- data(4242, y)" with
      | Ok q -> q
      | Error e -> failwith e)
  in
  Fmt.pr "n6 joined; its fact is now at n0: %d hit(s)@.@." (List.length hits);

  (* Phase 4: topology discovery from a leaf. *)
  let known = System.discover sys ~at:"n3" ~ttl:3 in
  Fmt.pr "n3 discovered %d peers: %a@." (List.length known)
    Fmt.(list ~sep:(any ", ") Peer_id.pp)
    known;

  (* Phase 5: answering a query at a leaf still works after all the
     rewiring — data is pulled through the star centre. *)
  let outcome = System.run_query sys ~at:"n0" query in
  Fmt.pr "query at n0 sees %d tuples@." (List.length outcome.System.qo_answers)
