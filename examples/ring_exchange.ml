(* Cyclic coordination rules and the fix-point computation.

   Four sites in a ring, each importing its neighbour's observations.
   The rules are cyclic, so answering "what does site 0 know?"
   requires the fix-point the paper's global update algorithm
   computes: data travels all the way around, duplicate suppression
   stops the loop, and the termination-detection layer closes the
   links even though the paper's acyclic closing rule never fires.

   The example also contrasts query-time answering (which only uses
   simple paths) with the materialised fix-point.

   Run with: dune exec examples/ring_exchange.exe *)

module System = Codb_core.System
module Report = Codb_core.Report
module Topology = Codb_core.Topology
module Parser = Codb_cq.Parser
module Config = Codb_cq.Config

let ring_text =
  {|
node s0 { relation obs(id: int, what: string); fact obs(1, "aurora"); }
node s1 { relation obs(id: int, what: string); fact obs(2, "meteor"); }
node s2 { relation obs(id: int, what: string); fact obs(3, "comet"); }
node s3 { relation obs(id: int, what: string); fact obs(4, "eclipse"); }
rule r0 at s0: obs(x, w) <- s1: obs(x, w);
rule r1 at s1: obs(x, w) <- s2: obs(x, w);
rule r2 at s2: obs(x, w) <- s3: obs(x, w);
rule r3 at s3: obs(x, w) <- s0: obs(x, w);
|}

let parse_or_die text =
  match Parser.load_config text with
  | Ok cfg -> cfg
  | Error errors ->
      List.iter prerr_endline errors;
      exit 1

let query =
  match Parser.parse_query "ans(x, w) <- obs(x, w)" with
  | Ok q -> q
  | Error e -> failwith e

let () =
  let cfg = parse_or_die ring_text in

  (* Query-time: labels restrict propagation to simple paths, which on
     a ring still reach everyone (s0 -> s1 -> s2 -> s3). *)
  let sys_q = System.build_exn cfg in
  let outcome = System.run_query sys_q ~at:"s0" query in
  Fmt.pr "query-time at s0: %d observations, %d messages@."
    (List.length outcome.System.qo_answers)
    outcome.System.qo_data_msgs;

  (* Global update: everyone converges to the union of all four
     observations. *)
  let sys_u = System.build_exn cfg in
  let uid = System.run_update sys_u ~initiator:"s0" in
  (match Report.update_report (System.snapshots sys_u) uid with
  | Some r ->
      Fmt.pr "update: duration %.4fs, %d data msgs, longest path %d, finished=%b@."
        r.Report.ur_duration r.Report.ur_data_msgs r.Report.ur_longest_path
        r.Report.ur_all_finished
  | None -> assert false);
  List.iter
    (fun site ->
      Fmt.pr "  %s knows %d observations@." site
        (List.length (System.local_answers sys_u ~at:site query)))
    [ "s0"; "s1"; "s2"; "s3" ];

  (* The same exercise on generated rings of growing size: the number
     of data messages grows quadratically (every fact visits every
     edge once), the longest propagation path linearly. *)
  Fmt.pr "@.generated rings (5 facts per node):@.";
  Fmt.pr "  %-6s %-10s %-10s %-12s@." "n" "data msgs" "longest" "duration (s)";
  List.iter
    (fun n ->
      let params = { Topology.default_params with Topology.tuples_per_node = 5 } in
      let sys = System.build_exn (Topology.generate ~params ~seed:n Topology.Ring ~n) in
      let uid = System.run_update sys ~initiator:"n0" in
      match Report.update_report (System.snapshots sys) uid with
      | Some r ->
          Fmt.pr "  %-6d %-10d %-10d %-12.4f@." n r.Report.ur_data_msgs
            r.Report.ur_longest_path r.Report.ur_duration
      | None -> assert false)
    [ 2; 4; 8; 12 ]
