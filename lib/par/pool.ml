(* Lanes own a deque each: the owner pops the front, thieves take the
   back.  Both ends go through the pool's single mutex — batches are
   small (one job per node with same-time traffic) and jobs are
   coarse (a handler running a fix-point or a query evaluation), so a
   contended lock-free deque would buy nothing here; the mutex also
   doubles as the memory barrier that publishes job results (the
   effect buffers jobs write) to the caller at the join. *)

type job = { j_index : int; j_run : unit -> unit }

type lane = { mutable front : job list; mutable back : job list }

let lane_push_back lane job = lane.back <- job :: lane.back

let lane_pop_front lane =
  match lane.front with
  | job :: rest ->
      lane.front <- rest;
      Some job
  | [] -> (
      match List.rev lane.back with
      | [] -> None
      | job :: rest ->
          lane.front <- rest;
          lane.back <- [];
          Some job)

let lane_steal_back lane =
  match lane.back with
  | job :: rest ->
      lane.back <- rest;
      Some job
  | [] -> (
      match lane.front with
      | [] -> None
      | front ->
          (* steal the deepest queued job; the owner keeps the head *)
          let rec split acc = function
            | [ last ] -> (List.rev acc, last)
            | x :: rest -> split (x :: acc) rest
            | [] -> assert false
          in
          let kept, last = split [] front in
          lane.front <- kept;
          Some last)

type t = {
  lanes : lane array;  (* lanes.(0) belongs to the caller *)
  mutex : Mutex.t;
  wake : Condition.t;  (* a batch was published or shutdown requested *)
  done_ : Condition.t;  (* remaining hit zero *)
  mutable batch : int;  (* generation counter, workers wait for a bump *)
  mutable remaining : int;  (* jobs of the current batch not yet finished *)
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
  mutable running : bool;  (* a run is in flight (re-entrancy guard) *)
  mutable stopped : bool;
  mutable workers : unit Domain.t array;
}

let size t = Array.length t.lanes

(* Take one job: own front first, then sweep the other lanes' backs. *)
let grab t me =
  match lane_pop_front t.lanes.(me) with
  | Some job -> Some job
  | None ->
      let n = Array.length t.lanes in
      let rec sweep i =
        if i = n then None
        else
          let victim = (me + i) mod n in
          match lane_steal_back t.lanes.(victim) with
          | Some job -> Some job
          | None -> sweep (i + 1)
      in
      sweep 1

let record_failure t index exn bt =
  match t.failure with
  | Some (first, _, _) when first <= index -> ()
  | Some _ | None -> t.failure <- Some (index, exn, bt)

(* Drain jobs until the batch is exhausted.  Called with the mutex
   held; releases it around each job. *)
let work t me =
  let rec loop () =
    match grab t me with
    | None -> ()
    | Some job ->
        Mutex.unlock t.mutex;
        (match job.j_run () with
        | () -> Mutex.lock t.mutex
        | exception exn ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock t.mutex;
            record_failure t job.j_index exn bt);
        t.remaining <- t.remaining - 1;
        if t.remaining = 0 then Condition.broadcast t.done_;
        loop ()
  in
  loop ()

let worker t me () =
  Mutex.lock t.mutex;
  let last_seen = ref 0 in
  let rec serve () =
    if t.stopped then Mutex.unlock t.mutex
    else if t.batch > !last_seen then begin
      last_seen := t.batch;
      work t me;
      serve ()
    end
    else begin
      Condition.wait t.wake t.mutex;
      serve ()
    end
  in
  serve ()

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      lanes = Array.init domains (fun _ -> { front = []; back = [] });
      mutex = Mutex.create ();
      wake = Condition.create ();
      done_ = Condition.create ();
      batch = 0;
      remaining = 0;
      failure = None;
      running = false;
      stopped = false;
      workers = [||];
    }
  in
  t.workers <- Array.init (domains - 1) (fun i -> Domain.spawn (worker t (i + 1)));
  t

let run t jobs =
  let n = Array.length jobs in
  if n = 0 then ()
  else if Array.length t.lanes = 1 then Array.iter (fun job -> job ()) jobs
  else begin
    Mutex.lock t.mutex;
    if t.stopped then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: pool is shut down"
    end;
    if t.running then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool.run: re-entrant use"
    end;
    t.running <- true;
    t.failure <- None;
    let lanes = Array.length t.lanes in
    Array.iteri
      (fun i run -> lane_push_back t.lanes.(i mod lanes) { j_index = i; j_run = run })
      jobs;
    t.remaining <- n;
    t.batch <- t.batch + 1;
    Condition.broadcast t.wake;
    (* the caller is lane 0 *)
    work t 0;
    while t.remaining > 0 do
      Condition.wait t.done_ t.mutex
    done;
    t.running <- false;
    let failure = t.failure in
    t.failure <- None;
    Mutex.unlock t.mutex;
    match failure with
    | Some (_, exn, bt) -> Printexc.raise_with_backtrace exn bt
    | None -> ()
  end

let shutdown t =
  Mutex.lock t.mutex;
  if t.stopped then Mutex.unlock t.mutex
  else begin
    t.stopped <- true;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers
  end

(* One pool per requested lane count, shut down when the process
   exits.  Guarded by a mutex only for form: simulators are built on
   the main domain. *)
let shared_tbl : (int, t) Hashtbl.t = Hashtbl.create 4

let shared_mutex = Mutex.create ()

let shared ~domains =
  if domains < 1 then invalid_arg "Pool.shared: domains must be >= 1";
  Mutex.lock shared_mutex;
  let pool =
    match Hashtbl.find_opt shared_tbl domains with
    | Some pool -> pool
    | None ->
        let pool = create ~domains in
        Hashtbl.add shared_tbl domains pool;
        if Hashtbl.length shared_tbl = 1 then
          at_exit (fun () -> Hashtbl.iter (fun _ pool -> shutdown pool) shared_tbl);
        pool
  in
  Mutex.unlock shared_mutex;
  pool
