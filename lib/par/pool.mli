(** A fixed-size pool of OCaml 5 domains with per-lane work queues,
    work stealing and a deterministic join barrier.

    The pool exists for the simulator's two-phase step: a batch of
    node-local handler jobs fans out across lanes, every lane drains
    its own queue front-first and steals from the back of busy lanes
    when idle, and {!run} returns only when every job of the batch
    has finished (the join barrier).  Determinism is the caller's
    affair and is easy to honour: jobs only write job-private state
    (per-event effect buffers), so the barrier makes the batch's
    outcome a pure function of the job array, independent of which
    lane ran what and in which interleaving.

    Jobs must not themselves call into the pool (no nesting), and
    workers sleep on a condition variable between batches — an idle
    pool costs nothing but memory. *)

type t

val create : domains:int -> t
(** A pool executing on [domains] lanes in total: [domains - 1]
    spawned worker domains plus the calling domain, which
    participates in every {!run}.  [domains >= 1]; a pool of one
    spawns nothing and {!run} degenerates to [Array.iter].
    @raise Invalid_argument on [domains < 1]. *)

val size : t -> int
(** Total lanes, spawned workers + 1. *)

val run : t -> (unit -> unit) array -> unit
(** Execute every job and return when all have finished.  Jobs are
    dealt round-robin to the lanes' queues; idle lanes steal.  If
    jobs raised, the exception of the smallest-indexed raising job is
    re-raised here (with its backtrace) after the barrier — never
    before, so the pool is reusable afterwards.
    @raise Invalid_argument if the pool is already shut down, or on
    re-entrant use. *)

val shutdown : t -> unit
(** Join the worker domains.  Idempotent.  The pool is unusable
    afterwards. *)

val shared : domains:int -> t
(** The process-wide pool for a given lane count, created on first
    use and shut down automatically at exit.  Repeated calls with the
    same [domains] return the same pool, so simulators built in a
    loop (tests, benches) do not churn domain spawns. *)
