(** The subscriptions a node hosts, keyed by subscription id.

    Bounded by [Options.max_subscriptions]; registration past the
    limit (or with a duplicate id) is refused, never silently dropped.
    Iteration order is always sub_id order so that delta fan-out and
    crash re-arm are deterministic. *)

module Peer_id = Codb_net.Peer_id

type owner =
  | Local of (Subscription.delta -> unit) option
      (** registered by this node's own client; deltas go to the
          callback *)
  | Remote of Peer_id.t
      (** registered over the wire; deltas are pushed to the
          subscriber peer *)

type entry = { e_sub : Subscription.t; e_owner : owner }

type t

val create : limit:int -> t

val size : t -> int

val limit : t -> int

val find : t -> string -> entry option

val register : t -> Subscription.t -> owner -> (unit, string) result
(** [Error] on duplicate id or when the limit is reached. *)

val unregister : t -> string -> bool
(** [true] when the id was present. *)

val ids : t -> string list
(** Sorted. *)

val entries : t -> entry list
(** In sub_id order. *)

val affected : t -> rel:string -> entry list
(** Hosted subscriptions whose query body reads [rel], in sub_id
    order. *)

val clear : t -> int
(** Drop everything (crash teardown); returns how many were
    dropped. *)
