(** Per-destination buffering of answer deltas during the
    [sub_batch_window], modelled on the update protocol's
    per-destination wire buffers ({!Update_state}).

    Within the window, deltas for the same subscription are coalesced
    set-wise: an add cancels a pending retract of the same tuple (and
    vice versa), duplicates are absorbed, and what remains is flushed
    as one message per destination — a single [Answer_delta] when only
    one subscription has pending changes, an [Answer_batch]
    otherwise. *)

module Peer_id = Codb_net.Peer_id

type t

val create : unit -> t

val add : t -> dst:Peer_id.t -> sub_id:string -> Subscription.delta -> int
(** Buffer a delta; returns how many tuples were coalesced away
    (cancelled against or absorbed by pending ones). *)

val scheduled : t -> dst:Peer_id.t -> bool

val set_scheduled : t -> dst:Peer_id.t -> bool -> unit
(** Track whether a flush is already scheduled for this destination
    (one timer per destination per window, as for update batching). *)

val take : t -> dst:Peer_id.t -> (string * Subscription.delta) list
(** Drain the destination's buffer: non-empty coalesced deltas in
    sub_id order, adds/retracts in {!Codb_relalg.Tuple.compare}
    order. *)

val pending_tuples : t -> int
(** Total buffered tuples across destinations (test hook). *)

val clear : t -> unit
(** Crash teardown. *)
