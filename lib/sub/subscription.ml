module Query = Codb_cq.Query
module Eval = Codb_cq.Eval
module Apply = Codb_cq.Apply
module Specialize = Codb_cq.Specialize
module Tuple = Codb_relalg.Tuple
module Tuple_set = Codb_relalg.Relation.Tuple_set

type delta = {
  d_adds : Tuple.t list;
  d_retracts : Tuple.t list;
  d_tag : string;
}

let delta_is_empty d = d.d_adds = [] && d.d_retracts = []

let delta_tuples d = List.length d.d_adds + List.length d.d_retracts

let pp_delta ppf d =
  Fmt.pf ppf "[%s] +%d -%d" d.d_tag (List.length d.d_adds)
    (List.length d.d_retracts)

type t = {
  sub_id : string;
  query : Query.t;
  rels : string list;
  constraints : (string * Specialize.t) list;
  mutable answers : Tuple_set.t;
  mutable deltas_delivered : int;
}

let create ?(pushdown = false) ?max_preds ~sub_id query =
  match Query.well_formed ~allow_existential_head:false query with
  | Error e -> Error e
  | Ok () ->
      let rels = Query.body_relations query in
      let constraints =
        if pushdown then
          List.filter_map
            (fun rel ->
              let c = Specialize.of_query ?max_preds query ~rel in
              if Specialize.is_any c then None else Some (rel, c))
            rels
        else []
      in
      Ok
        {
          sub_id;
          query;
          rels;
          constraints;
          answers = Tuple_set.empty;
          deltas_delivered = 0;
        }

let id t = t.sub_id

let query t = t.query

let reads t rel = List.exists (String.equal rel) t.rels

let answers t = Tuple_set.elements t.answers

let answer_count t = Tuple_set.cardinal t.answers

let deltas_delivered t = t.deltas_delivered

let note_delivered t = t.deltas_delivered <- t.deltas_delivered + 1

let constraint_for t rel = List.assoc_opt rel t.constraints

let prefilter t ~rel tuples =
  match List.assoc_opt rel t.constraints with
  | None -> (tuples, 0)
  | Some c ->
      let kept = List.filter (Specialize.matches c) tuples in
      (kept, List.length tuples - List.length kept)

(* Fold freshly derived head tuples into the answer set; only the
   genuinely new ones become the delta's adds.  Incremental
   maintenance over a monotone store never retracts. *)
let absorb t heads ~tag =
  let adds =
    List.sort_uniq Tuple.compare
      (List.filter (fun tu -> not (Tuple_set.mem tu t.answers)) heads)
  in
  t.answers <- List.fold_left (fun s tu -> Tuple_set.add tu s) t.answers adds;
  { d_adds = adds; d_retracts = []; d_tag = tag }

let apply_delta t ~zone_maps ~planner ~source ~delta_rel ~delta ~tag =
  let delta, dropped = prefilter t ~rel:delta_rel delta in
  let d =
    if delta = [] then { d_adds = []; d_retracts = []; d_tag = tag }
    else
      let substs =
        Eval.delta_answers ~zone_maps ~planner source ~delta_rel ~delta t.query
      in
      absorb t (Apply.head_tuples t.query substs) ~tag
  in
  (d, dropped)

let refresh t ~zone_maps ~planner ~source ~tag =
  let current =
    Tuple_set.of_list (Eval.answer_tuples ~zone_maps ~planner source t.query)
  in
  let adds = Tuple_set.elements (Tuple_set.diff current t.answers) in
  let retracts = Tuple_set.elements (Tuple_set.diff t.answers current) in
  t.answers <- current;
  { d_adds = adds; d_retracts = retracts; d_tag = tag }

let reevaluate t ~zone_maps ~planner ~source ~tag =
  let current =
    Tuple_set.of_list (Eval.answer_tuples ~zone_maps ~planner source t.query)
  in
  let retracts = Tuple_set.elements (Tuple_set.diff t.answers current) in
  t.answers <- current;
  { d_adds = Tuple_set.elements current; d_retracts = retracts; d_tag = tag }
