module Peer_id = Codb_net.Peer_id
module Query = Codb_cq.Query
module Tuple = Codb_relalg.Tuple
module Tuple_set = Codb_relalg.Relation.Tuple_set

type t = {
  mi_id : string;
  mi_host : Peer_id.t;
  mi_query : Query.t;
  mi_on_delta : (Subscription.delta -> unit) option;
  mutable mi_answers : Tuple_set.t;
  mutable mi_deltas : int;
  mutable mi_accepted : bool;
  mutable mi_rejected : string option;
}

let create ~sub_id ~host ?on_delta query =
  {
    mi_id = sub_id;
    mi_host = host;
    mi_query = query;
    mi_on_delta = on_delta;
    mi_answers = Tuple_set.empty;
    mi_deltas = 0;
    mi_accepted = false;
    mi_rejected = None;
  }

let id t = t.mi_id

let host t = t.mi_host

let query t = t.mi_query

let answers t = Tuple_set.elements t.mi_answers

let answer_count t = Tuple_set.cardinal t.mi_answers

let deltas t = t.mi_deltas

let has_callback t = Option.is_some t.mi_on_delta

let accepted t = t.mi_accepted

let rejected t = t.mi_rejected

let mark_accepted t =
  t.mi_accepted <- true;
  t.mi_rejected <- None

let mark_rejected t reason =
  t.mi_accepted <- false;
  t.mi_rejected <- Some reason

(* Deltas are applied as set updates, so redelivery (retries, re-arm
   snapshots, the naive baseline's full re-sends) is idempotent. *)
let apply t (d : Subscription.delta) =
  t.mi_answers <-
    List.fold_left (fun s tu -> Tuple_set.add tu s) t.mi_answers d.d_adds;
  t.mi_answers <-
    List.fold_left (fun s tu -> Tuple_set.remove tu s) t.mi_answers d.d_retracts;
  t.mi_deltas <- t.mi_deltas + 1;
  match t.mi_on_delta with None -> () | Some f -> f d
