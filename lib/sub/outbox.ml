module Peer_id = Codb_net.Peer_id
module Tuple = Codb_relalg.Tuple
module Tuple_set = Codb_relalg.Relation.Tuple_set

type pending = {
  mutable p_adds : Tuple_set.t;
  mutable p_retracts : Tuple_set.t;
  mutable p_tag : string;
}

type buf = { entries : (string, pending) Hashtbl.t; mutable scheduled : bool }

type t = (Peer_id.t, buf) Hashtbl.t

let create () : t = Hashtbl.create 4

let buf_for (t : t) dst =
  match Hashtbl.find_opt t dst with
  | Some b -> b
  | None ->
      let b = { entries = Hashtbl.create 4; scheduled = false } in
      Hashtbl.replace t dst b;
      b

(* An add cancels a pending retract of the same answer (and vice
   versa); a duplicate is absorbed.  Either way the tuple never
   reaches the wire — that is the coalescing the window buys. *)
let add (t : t) ~dst ~sub_id (d : Subscription.delta) =
  let b = buf_for t dst in
  let p =
    match Hashtbl.find_opt b.entries sub_id with
    | Some p -> p
    | None ->
        let p =
          { p_adds = Tuple_set.empty; p_retracts = Tuple_set.empty; p_tag = "" }
        in
        Hashtbl.replace b.entries sub_id p;
        p
  in
  let coalesced = ref 0 in
  List.iter
    (fun tu ->
      if Tuple_set.mem tu p.p_retracts then begin
        p.p_retracts <- Tuple_set.remove tu p.p_retracts;
        incr coalesced
      end
      else if Tuple_set.mem tu p.p_adds then incr coalesced
      else p.p_adds <- Tuple_set.add tu p.p_adds)
    d.Subscription.d_adds;
  List.iter
    (fun tu ->
      if Tuple_set.mem tu p.p_adds then begin
        p.p_adds <- Tuple_set.remove tu p.p_adds;
        incr coalesced
      end
      else if Tuple_set.mem tu p.p_retracts then incr coalesced
      else p.p_retracts <- Tuple_set.add tu p.p_retracts)
    d.Subscription.d_retracts;
  p.p_tag <- (if p.p_tag = "" then d.Subscription.d_tag else "coalesced");
  !coalesced

let scheduled (t : t) ~dst =
  match Hashtbl.find_opt t dst with Some b -> b.scheduled | None -> false

let set_scheduled (t : t) ~dst v = (buf_for t dst).scheduled <- v

let take (t : t) ~dst =
  match Hashtbl.find_opt t dst with
  | None -> []
  | Some b ->
      let all =
        Hashtbl.fold
          (fun sub_id p acc ->
            let d =
              {
                Subscription.d_adds = Tuple_set.elements p.p_adds;
                d_retracts = Tuple_set.elements p.p_retracts;
                d_tag = p.p_tag;
              }
            in
            if Subscription.delta_is_empty d then acc
            else (sub_id, d) :: acc)
          b.entries []
      in
      Hashtbl.reset b.entries;
      List.sort (fun (a, _) (b, _) -> String.compare a b) all

let pending_tuples (t : t) =
  Hashtbl.fold
    (fun _ b acc ->
      Hashtbl.fold
        (fun _ p acc ->
          acc + Tuple_set.cardinal p.p_adds + Tuple_set.cardinal p.p_retracts)
        b.entries acc)
    t 0

let clear (t : t) = Hashtbl.reset t
