(** The subscriber-side view of a remote subscription.

    A mirror holds the answer set reconstructed from pushed
    {!Subscription.delta}s.  Application is idempotent set update
    (union adds, remove retracts), so duplicated deliveries — retried
    sends, re-arm snapshots after a host restart, the naive baseline's
    full re-sends — converge to the same set the host maintains. *)

module Peer_id = Codb_net.Peer_id
module Query = Codb_cq.Query
module Tuple = Codb_relalg.Tuple

type t

val create :
  sub_id:string ->
  host:Peer_id.t ->
  ?on_delta:(Subscription.delta -> unit) ->
  Query.t ->
  t

val id : t -> string

val host : t -> Peer_id.t

val query : t -> Query.t

val answers : t -> Tuple.t list
(** In {!Tuple.compare} order. *)

val answer_count : t -> int

val deltas : t -> int
(** Deltas applied so far. *)

val has_callback : t -> bool
(** Was the mirror created with an [on_delta] callback?  The parallel
    runtime keeps nodes with user callbacks out of fanned-out batches,
    because a callback observes delta arrival order across nodes. *)

val accepted : t -> bool
(** Has the host confirmed the registration? *)

val rejected : t -> string option
(** The host's refusal reason, when registration was refused. *)

val mark_accepted : t -> unit

val mark_rejected : t -> string -> unit

val apply : t -> Subscription.delta -> unit
(** Fold a pushed delta into the mirrored answer set and invoke the
    client callback, if any. *)
