module Peer_id = Codb_net.Peer_id

type owner =
  | Local of (Subscription.delta -> unit) option
  | Remote of Peer_id.t

type entry = { e_sub : Subscription.t; e_owner : owner }

type t = { limit : int; tbl : (string, entry) Hashtbl.t }

let create ~limit = { limit; tbl = Hashtbl.create 8 }

let size t = Hashtbl.length t.tbl

let limit t = t.limit

let find t sub_id = Hashtbl.find_opt t.tbl sub_id

let register t sub owner =
  let sub_id = Subscription.id sub in
  if Hashtbl.mem t.tbl sub_id then
    Error (Printf.sprintf "duplicate subscription id %s" sub_id)
  else if Hashtbl.length t.tbl >= t.limit then
    Error
      (Printf.sprintf "subscription limit reached (max_subscriptions=%d)"
         t.limit)
  else begin
    Hashtbl.replace t.tbl sub_id { e_sub = sub; e_owner = owner };
    Ok ()
  end

let unregister t sub_id =
  if Hashtbl.mem t.tbl sub_id then begin
    Hashtbl.remove t.tbl sub_id;
    true
  end
  else false

(* All iteration is in sub_id order so delta fan-out, flushes and
   re-arms are deterministic regardless of hash-table internals. *)
let sorted t =
  let all = Hashtbl.fold (fun id e acc -> (id, e) :: acc) t.tbl [] in
  List.sort (fun (a, _) (b, _) -> String.compare a b) all

let ids t = List.map fst (sorted t)

let entries t = List.map snd (sorted t)

let affected t ~rel =
  List.filter (fun e -> Subscription.reads e.e_sub rel) (entries t)

let clear t =
  let n = Hashtbl.length t.tbl in
  Hashtbl.reset t.tbl;
  n
