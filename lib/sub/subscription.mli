(** One standing query and its incrementally maintained answer set.

    A subscription is a user conjunctive query (no existential head)
    whose answers a node keeps current as its store changes.  Instead
    of re-running the query on every write, the host feeds each
    per-relation store delta through {!Codb_cq.Eval.delta_answers} —
    the same semi-naive pass the update fix-point uses — so only
    substitutions that touch the new tuples are derived.  Because coDB
    stores are monotone (tuples are never deleted), incremental
    maintenance only ever {e adds} answers; retractions appear only
    when a subscription is re-seeded from scratch (registration,
    re-arm after a crash) against a store that lost nothing but whose
    subscription state did.

    Constraint pushdown ({!Codb_cq.Specialize}) is reused as a
    {e prefilter}: a delta tuple of relation [r] that fails every
    constraint the query places on [r] cannot match any body atom over
    [r], so it cannot contribute a new substitution; dropping it
    before the join saves evaluator probes without changing the answer
    set. *)

module Query = Codb_cq.Query
module Eval = Codb_cq.Eval
module Specialize = Codb_cq.Specialize
module Tuple = Codb_relalg.Tuple

type delta = {
  d_adds : Tuple.t list;  (** answers that became true *)
  d_retracts : Tuple.t list;  (** answers no longer derivable *)
  d_tag : string;
      (** provenance: which update/rule/hop produced the store change
          this answer delta reflects *)
}

val delta_is_empty : delta -> bool

val delta_tuples : delta -> int
(** Adds plus retracts. *)

val pp_delta : delta Fmt.t

type t

val create :
  ?pushdown:bool -> ?max_preds:int -> sub_id:string -> Query.t ->
  (t, string) result
(** Validate the query as a user query ({!Query.well_formed} without
    existential head) and precompute the per-relation prefilter
    constraints ([pushdown] off — the ablation — registers no
    prefilters).  The answer set starts empty; call {!refresh} to seed
    it. *)

val id : t -> string

val query : t -> Query.t

val reads : t -> string -> bool
(** Does the query body mention this relation? *)

val answers : t -> Tuple.t list
(** Current answer set, in {!Tuple.compare} order. *)

val answer_count : t -> int

val deltas_delivered : t -> int

val note_delivered : t -> unit

val constraint_for : t -> string -> Specialize.t option
(** The prefilter registered for a body relation, if any ([Any]
    constraints are never registered). *)

val prefilter : t -> rel:string -> Tuple.t list -> Tuple.t list * int
(** Keep only delta tuples that can contribute through some atom over
    [rel]; also returns how many were dropped. *)

val apply_delta :
  t ->
  zone_maps:bool ->
  planner:bool ->
  source:Eval.source ->
  delta_rel:string ->
  delta:Tuple.t list ->
  tag:string ->
  delta * int
(** Incremental maintenance: prefilter the store delta, run the
    semi-naive pass against [source] (which must already contain the
    delta tuples, as {!Eval.delta_answers} requires), and fold the
    derived heads into the answer set.  Returns the answer delta
    (adds only — new answers not previously known) and the number of
    prefiltered-away tuples. *)

val refresh :
  t -> zone_maps:bool -> planner:bool -> source:Eval.source -> tag:string -> delta
(** From-scratch re-evaluation; the returned delta is the {e diff}
    against the previously known answers (used to seed a new
    subscription and to catch a re-armed one up). *)

val reevaluate :
  t -> zone_maps:bool -> planner:bool -> source:Eval.source -> tag:string -> delta
(** The naive baseline ([Options.sub_naive]): recompute the full
    answer set and return {e all} of it as adds (plus any retracts the
    diff reveals) — what a client that re-asks its query on every
    change would receive.  Mirrors apply deltas as set updates, so the
    subscriber's view stays identical to the incremental path while
    the probe and byte costs reflect re-evaluation. *)
