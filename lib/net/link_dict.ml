(* Per-link dictionary registry: one Codec.Dict sender per *directed*
   (src, dst) pair.  The two directions of a link desync independently
   (each sender owns its id space), so they are separate entries, and
   an epoch bump on a link always hits both.

   The registry is deliberately dumb about liveness: dictionaries are
   created on first use and bumped, never removed — a link that flaps a
   hundred times is a hundred epochs on the same entry, which is
   exactly what the stats should show. *)

type t = {
  senders : (Peer_id.t * Peer_id.t, Codec.Dict.sender) Hashtbl.t;
  mutable bumps : int;
}

type stats = {
  links : int;  (* directed links that carried at least one string *)
  bumps : int;  (* epoch bumps across all links *)
  intros : int;  (* string literals shipped (introductions) *)
  hits : int;  (* strings shipped as back-references *)
  entries : int;  (* live table entries across current epochs *)
}

let create () = { senders = Hashtbl.create 64; bumps = 0 }

let sender t ~src ~dst =
  let key = (src, dst) in
  match Hashtbl.find_opt t.senders key with
  | Some d -> d
  | None ->
      let d = Codec.Dict.sender () in
      Hashtbl.add t.senders key d;
      d

let bump_dir t ~src ~dst =
  match Hashtbl.find_opt t.senders (src, dst) with
  | Some d ->
      Codec.Dict.bump d;
      t.bumps <- t.bumps + 1
  | None -> ()  (* nothing accumulated, nothing to distrust *)

(* Any event that breaks one direction breaks the other (pipe close,
   crash, flap), so bumps are always symmetric. *)
let bump_link t a b =
  bump_dir t ~src:a ~dst:b;
  bump_dir t ~src:b ~dst:a

let stats t =
  Hashtbl.fold
    (fun _ d acc ->
      {
        acc with
        links = acc.links + 1;
        intros = acc.intros + Codec.Dict.intros d;
        hits = acc.hits + Codec.Dict.hits d;
        entries = acc.entries + Codec.Dict.entries d;
      })
    t.senders
    { links = 0; bumps = t.bumps; intros = 0; hits = 0; entries = 0 }

let pp_stats ppf s =
  Fmt.pf ppf
    "link dicts: %d directed links, %d epoch bumps, %d introductions, %d \
     back-references, %d live entries"
    s.links s.bumps s.intros s.hits s.entries
