(** Pipes: bidirectional communication links between two peers, the
    simulator's counterpart of JXTA pipes.

    A pipe has a latency (seconds) and a per-byte transfer cost
    (seconds/byte); a message of [s] bytes sent at time [t] is
    delivered at [t + latency + byte_cost * s].  Pipes carry their own
    traffic statistics, which the coDB statistics module reads.
    Closing a pipe (when the last coordination rule using it is
    dropped, paper Section 3) silently drops messages sent afterwards;
    messages already in flight are delivered. *)

type t

type stats = { messages : int; bytes : int }

val create : Peer_id.t -> Peer_id.t -> latency:float -> byte_cost:float -> t
(** @raise Invalid_argument if the endpoints are equal or a latency or
    byte cost is negative. *)

val endpoints : t -> Peer_id.t * Peer_id.t
(** In normalised (sorted) order. *)

val other_end : t -> Peer_id.t -> Peer_id.t
(** @raise Invalid_argument if the given peer is not an endpoint. *)

val latency : t -> float

val byte_cost : t -> float

val is_open : t -> bool

val close : t -> unit

val reopen : t -> unit

val transfer_delay : t -> size:int -> float

val sequence_delivery : t -> src:Peer_id.t -> float -> float
(** [sequence_delivery p ~src t] returns the actual delivery time for
    a message tentatively arriving at [t], enforcing FIFO order per
    direction (a later, smaller message never overtakes an earlier,
    larger one — pipes model stream transports, as JXTA pipes over
    TCP).  Records the returned time as the direction's latest
    delivery. *)

val record_traffic : t -> size:int -> unit

val stats : t -> stats

val pp : t Fmt.t
