(** Registry of incremental string dictionaries, one {!Codec.Dict}
    sender per {e directed} (src, dst) link.

    The system owns one registry; {!sender} finds or creates the
    dictionary the wire codec trains while sizing messages on that
    link, and {!bump_link} starts a fresh epoch on both directions
    whenever the link state stops being trustworthy — pipe close or
    reopen, crash, restart, flap, or a send attempt on a closed pipe.
    After a bump the next messages re-introduce every string, so a
    desynced peer deterministically falls back to literals instead of
    ever resolving a reference to the wrong string. *)

type t

val create : unit -> t

val sender : t -> src:Peer_id.t -> dst:Peer_id.t -> Codec.Dict.sender
(** Find or create the dictionary for the directed link. *)

val bump_link : t -> Peer_id.t -> Peer_id.t -> unit
(** New epoch on both directions of the link.  Links that never
    carried a string are left untouched (nothing to distrust). *)

type stats = {
  links : int;  (** directed links that carried at least one string *)
  bumps : int;  (** epoch bumps across all links *)
  intros : int;  (** string literals shipped (introductions) *)
  hits : int;  (** strings shipped as back-references *)
  entries : int;  (** live table entries across current epochs *)
}

val stats : t -> stats

val pp_stats : stats Fmt.t
