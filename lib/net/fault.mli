(** Deterministic fault injection for the simulated network.

    A {!plan} describes the faults a run should suffer: per-send drop
    and duplication probabilities, latency jitter, and scheduled link
    flaps.  {!Network.install_fault} applies the plan inside
    [Network.send]; node crash/restart events are orchestrated one
    layer up (the system knows about handlers and protocol state) but
    are counted here so every injected fault kind appears in
    {!Network.counters}.

    Determinism: all randomness comes from a [Random.State] seeded
    exactly like [Codb_workload.Rng.make ~seed], and {!verdict}
    consumes a fixed number of draws per message, so two runs with the
    same plan and the same message sequence produce byte-identical
    fault schedules. *)

type flap = {
  fl_a : Peer_id.t;
  fl_b : Peer_id.t;
  fl_down_at : float;  (** simulated time the pipe closes *)
  fl_up_at : float;  (** simulated time it reopens; must be later *)
}

type plan = {
  seed : int;
  drop_prob : float;  (** probability a sent message silently vanishes *)
  dup_prob : float;  (** probability a delivered message arrives twice *)
  jitter : float;
      (** max extra delivery delay, drawn uniformly per message and
          applied after FIFO sequencing — so jittered messages really
          do reorder *)
  drop_budget : int;
      (** stop injecting drops after this many (further drop draws are
          still consumed, keeping the schedule aligned); [max_int] for
          unlimited.  A finite budget makes "every drop is eventually
          retried to delivery" a deterministic property. *)
  flaps : flap list;
}

type counters = {
  injected_drops : int;
  injected_dups : int;
  injected_flaps : int;  (** pipe-close events executed *)
  crashes : int;
  restarts : int;
}

(** What the fault layer decided for one message. *)
type verdict = {
  v_drop : bool;
  v_dup : bool;
  v_jitter : float;
  v_dup_extra : float;  (** extra delay of the duplicate beyond the jitter *)
}

type t

val default_plan : plan
(** All faults off, unlimited drop budget, seed 0. *)

val validate_plan : plan -> (unit, string list) result

val make : plan -> t

val plan : t -> plan

val verdict : t -> verdict
(** Draw the fate of one message.  Counts applied drops and dups. *)

val note_flap : t -> unit

val note_crash : t -> unit

val note_restart : t -> unit

val counters : t -> counters
