(** Peer identities.

    JXTA gave coDB an IP-independent naming space for peers; the
    simulator's equivalent is an abstract identifier type.  Identifiers
    are human-readable names (node names from the rules file). *)

type t

val of_string : string -> t
(** @raise Invalid_argument on the empty string. *)

val to_string : t -> string

val compare : t -> t -> int

val equal : t -> t -> bool

val hash : t -> int

val pp : t Fmt.t

module Set : Set.S with type elt = t

module Map : Map.S with type key = t
