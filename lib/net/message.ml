type 'a t = {
  msg_id : int;
  src : Peer_id.t;
  dst : Peer_id.t;
  sent_at : float;
  size : int;
  payload : 'a;
}

let header_bytes = 64

let pp pp_payload ppf m =
  Fmt.pf ppf "[#%d %a -> %a @%0.4f %dB %a]" m.msg_id Peer_id.pp m.src Peer_id.pp m.dst
    m.sent_at m.size pp_payload m.payload
