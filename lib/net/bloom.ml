(* Classic Bloom filter with Kirsch–Mitzenmacher double hashing: two
   independent base hashes combined as h1 + i*h2 stand in for k independent
   hash functions.  The bit array is a Bytes blob, so a 2^16-bit filter costs
   8 KiB regardless of how many tuples pass through it. *)

type t = { data : Bytes.t; mask : int; k : int; mutable set_bits : int }

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ~bits =
  if not (is_power_of_two bits) then
    invalid_arg "Bloom.create: bits must be a positive power of two";
  { data = Bytes.make ((bits + 7) / 8) '\000'; mask = bits - 1; k = 4; set_bits = 0 }

let bits t = (t.mask + 1)

(* Derive both base hashes from one caller-supplied content hash, so
   keys with a cheap dedicated hash (tuples) never pay the polymorphic
   [Hashtbl.hash] walk. *)
let probes_hash t h f =
  let h1 = h land max_int in
  let h2 = ((h * 0x9e3779b9) lxor (h lsr 17)) lor 1 in
  for i = 0 to t.k - 1 do
    f ((h1 + (i * h2)) land t.mask)
  done

let probes t key f = probes_hash t (Hashtbl.hash key) f

let set_bit t idx =
  let b = idx lsr 3 and m = 1 lsl (idx land 7) in
  let cur = Char.code (Bytes.get t.data b) in
  if cur land m = 0 then begin
    Bytes.set t.data b (Char.chr (cur lor m));
    t.set_bits <- t.set_bits + 1
  end

let get_bit t idx =
  Char.code (Bytes.get t.data (idx lsr 3)) land (1 lsl (idx land 7)) <> 0

let add t key = probes t key (set_bit t)

let mem t key =
  let all = ref true in
  probes t key (fun idx -> if not (get_bit t idx) then all := false);
  !all

let add_hash t h = probes_hash t h (set_bit t)

let mem_hash t h =
  let all = ref true in
  probes_hash t h (fun idx -> if not (get_bit t idx) then all := false);
  !all

let clear t =
  Bytes.fill t.data 0 (Bytes.length t.data) '\000';
  t.set_bits <- 0

let estimated_fill t = float_of_int t.set_bits /. float_of_int (bits t)
