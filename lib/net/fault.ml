(* Deterministic fault injection for the simulated network.

   Every random draw comes from a [Random.State] seeded with the same
   recipe as [Codb_workload.Rng.make] (replicated here rather than
   imported so the network layer stays free of the workload/relalg
   dependency chain).  [verdict] always consumes exactly three draws
   per message, in a fixed order, so the fault schedule is a pure
   function of (seed, message sequence) and two runs with the same
   plan produce byte-identical schedules. *)

type flap = {
  fl_a : Peer_id.t;
  fl_b : Peer_id.t;
  fl_down_at : float;
  fl_up_at : float;
}

type plan = {
  seed : int;
  drop_prob : float;
  dup_prob : float;
  jitter : float;
  drop_budget : int;
  flaps : flap list;
}

type counters = {
  injected_drops : int;
  injected_dups : int;
  injected_flaps : int;
  crashes : int;
  restarts : int;
}

type verdict = {
  v_drop : bool;
  v_dup : bool;
  v_jitter : float;
  v_dup_extra : float;
}

type t = {
  plan : plan;
  rng : Random.State.t;
  mutable f_drops : int;
  mutable f_dups : int;
  mutable f_flaps : int;
  mutable f_crashes : int;
  mutable f_restarts : int;
}

let default_plan =
  {
    seed = 0;
    drop_prob = 0.0;
    dup_prob = 0.0;
    jitter = 0.0;
    drop_budget = max_int;
    flaps = [];
  }

let validate_plan p =
  let errors = ref [] in
  let reject message = errors := message :: !errors in
  let prob name v =
    if v < 0.0 || v > 1.0 then
      reject (Printf.sprintf "fault plan: %s must be in [0,1] (got %g)" name v)
  in
  prob "drop_prob" p.drop_prob;
  prob "dup_prob" p.dup_prob;
  if p.jitter < 0.0 then
    reject (Printf.sprintf "fault plan: jitter must be >= 0 (got %g)" p.jitter);
  if p.drop_budget < 0 then
    reject (Printf.sprintf "fault plan: drop_budget must be >= 0 (got %d)" p.drop_budget);
  List.iter
    (fun f ->
      if Peer_id.equal f.fl_a f.fl_b then
        reject
          (Printf.sprintf "fault plan: flap endpoints must differ (got %s)"
             (Peer_id.to_string f.fl_a));
      if f.fl_down_at < 0.0 then
        reject
          (Printf.sprintf "fault plan: flap down time must be >= 0 (got %g)"
             f.fl_down_at);
      if f.fl_up_at <= f.fl_down_at then
        reject
          (Printf.sprintf "fault plan: flap must reopen after it closes (%g <= %g)"
             f.fl_up_at f.fl_down_at))
    p.flaps;
  match List.rev !errors with [] -> Ok () | errors -> Error errors

let make plan =
  {
    plan;
    rng = Random.State.make [| plan.seed; 0x5eed; plan.seed lxor 0x9e3779b9 |];
    f_drops = 0;
    f_dups = 0;
    f_flaps = 0;
    f_crashes = 0;
    f_restarts = 0;
  }

let plan t = t.plan

let verdict t =
  let p = t.plan in
  (* fixed draw order, all three every time: the stream position per
     message is independent of the verdicts themselves *)
  let drop_draw = Random.State.float t.rng 1.0 in
  let dup_draw = Random.State.float t.rng 1.0 in
  let jitter_draw = Random.State.float t.rng 1.0 in
  let drop = p.drop_prob > 0.0 && drop_draw < p.drop_prob && t.f_drops < p.drop_budget in
  let dup = (not drop) && p.dup_prob > 0.0 && dup_draw < p.dup_prob in
  if drop then t.f_drops <- t.f_drops + 1;
  if dup then t.f_dups <- t.f_dups + 1;
  {
    v_drop = drop;
    v_dup = dup;
    v_jitter = jitter_draw *. p.jitter;
    v_dup_extra = dup_draw *. p.jitter;
  }

let note_flap t = t.f_flaps <- t.f_flaps + 1

let note_crash t = t.f_crashes <- t.f_crashes + 1

let note_restart t = t.f_restarts <- t.f_restarts + 1

let counters t =
  {
    injected_drops = t.f_drops;
    injected_dups = t.f_dups;
    injected_flaps = t.f_flaps;
    crashes = t.f_crashes;
    restarts = t.f_restarts;
  }
