(** The discrete-event network simulator.

    This is the substitute for the JXTA layer the original coDB was
    built on.  It provides peers, pipes, typed messages, timers and a
    deterministic run loop: events at equal simulated times fire in
    the order they were scheduled.

    Handlers run inside the simulation loop; anything they send is
    scheduled for a later simulated time, so re-entrancy is never an
    issue.  Messages sent when no open pipe exists between the
    endpoints are counted as dropped, like JXTA messages to an
    unresolved pipe. *)

type 'a t

type counters = {
  delivered : int;
  dropped : int;
  total_bytes : int;  (** bytes actually delivered *)
  dropped_bytes : int;
      (** bytes lost — at send time (no open pipe, envelope included)
          or at delivery time (peer removed / no handler) *)
  injected_drops : int;
      (** messages silently lost by the fault plan (the sender saw
          [true]; not part of [dropped]) *)
  injected_dups : int;  (** messages delivered twice by the fault plan *)
  injected_flaps : int;  (** scheduled pipe closures executed *)
  crashes : int;  (** node crashes noted by the layer above *)
  restarts : int;
}

val create :
  ?default_latency:float ->
  ?default_byte_cost:float ->
  size_of:(src:Peer_id.t -> dst:Peer_id.t -> 'a -> int) ->
  unit ->
  'a t
(** [size_of] estimates the wire size of a payload (the envelope adds
    {!Message.header_bytes}).  It receives the endpoints so link-level
    codec state (incremental dictionaries) can be trained per directed
    link.  Defaults: 1 ms latency, 1 µs/byte. *)

val set_link_watcher : 'a t -> (Peer_id.t -> Peer_id.t -> unit) -> unit
(** Register a callback fired with the two endpoints on every pipe
    open<->close transition — connect, disconnect, remove, flap — and
    on a send attempt against a closed pipe (before the dropped
    message is priced).  Link-level codec state upstream must not
    trust the link across these events. *)

val add_peer : 'a t -> Peer_id.t -> unit
(** Idempotent. *)

val remove_peer : 'a t -> Peer_id.t -> unit
(** Closes all the peer's pipes; in-flight messages to it are dropped
    at delivery time. *)

val has_peer : 'a t -> Peer_id.t -> bool

val peers : 'a t -> Peer_id.t list

val set_handler : 'a t -> Peer_id.t -> ('a Message.t -> unit) -> unit
(** Register the message handler for a peer.  @raise Invalid_argument
    if the peer does not exist. *)

val clear_handler : 'a t -> Peer_id.t -> unit
(** Drop the peer's handler without removing the peer: a crash.  The
    peer's pipes are untouched (close them separately); messages that
    reach it meanwhile drop at delivery time.  A later {!set_handler}
    is the restart.  No-op on an unknown peer. *)

val connect : ?latency:float -> ?byte_cost:float -> 'a t -> Peer_id.t -> Peer_id.t -> unit
(** Create (or reopen) the pipe between two peers.  @raise
    Invalid_argument if either peer is missing. *)

val disconnect : 'a t -> Peer_id.t -> Peer_id.t -> unit
(** Close the pipe; a no-op if none exists. *)

val connected : 'a t -> Peer_id.t -> Peer_id.t -> bool

val pipe_between : 'a t -> Peer_id.t -> Peer_id.t -> Pipe.t option

val neighbours : 'a t -> Peer_id.t -> Peer_id.t list
(** Peers reachable through an open pipe, sorted. *)

val pipes : 'a t -> Pipe.t list

val send : 'a t -> src:Peer_id.t -> dst:Peer_id.t -> 'a -> bool
(** Enqueue a message.  [false] iff it was dropped immediately (no
    open pipe).  Messages in flight when a pipe closes are still
    delivered; messages to a removed peer are dropped silently at
    delivery time. *)

val sendable : 'a t -> src:Peer_id.t -> dst:Peer_id.t -> bool
(** Would {!send} accept a message right now (an open pipe exists)?
    This is exactly the boolean {!send} returns, predicted without
    side effects: the effect-capture mode of the parallel runtime
    answers handlers with it, valid because pipe state is frozen
    while a parallel batch is in flight. *)

val schedule : 'a t -> delay:float -> (unit -> unit) -> unit
(** A timer local to the simulation (used e.g. by nodes to start
    updates at a given simulated time).  @raise Invalid_argument on a
    negative delay. *)

val now : 'a t -> float

val run : ?max_events:int -> 'a t -> int
(** Process events until the queue drains (or [max_events] is
    reached); returns the number of events processed. *)

val step : 'a t -> bool
(** Process a single event; [false] when the queue is empty. *)

(** {2 Parallel stepping}

    The two-phase step of the parallel runtime.  The driver above
    (see [System]) pops a batch of same-simulated-time deliveries
    whose handlers are safe to run concurrently, fans them out across
    domains with their outbound effects captured, and replays the
    effects in popped order — which is exactly sequential order, so
    the event queue, wire traffic, counters and fault-RNG draws are
    bit-identical to a sequential run. *)

type 'a batch =
  | Drained  (** the event queue is empty *)
  | Stepped of int
      (** executed that many events inline (a timer action, or a
          delivery the [eligible] predicate rejected) *)
  | Deliveries of 'a Message.t array
      (** popped, same-time, [eligible] deliveries in sequence order;
          [now] has advanced and the delivered/byte counters are
          already accounted — the caller must run each message's
          handler (see {!handler_of}) exactly once *)

val try_batch : 'a t -> eligible:('a Message.t -> bool) -> limit:int -> 'a batch
(** Pop the next event.  If it is a delivery admitted by [eligible]
    (and its destination has a live handler), keep popping while the
    head of the queue is another admitted same-time delivery, up to
    [limit] messages.  Anything else executes inline as {!step}
    would.  Events left in the queue order after the batch by their
    sequence numbers, so executing the batch before the next pop
    preserves the sequential order exactly. *)

val handler_of : 'a t -> Peer_id.t -> ('a Message.t -> unit) option

val install_fault : 'a t -> Fault.plan -> Fault.t
(** Validate the plan, apply it to every subsequent {!send}, and
    schedule its link flaps.  Returns the live fault state so the
    layer above can note crash/restart events into the same counters.
    @raise Invalid_argument on an invalid plan. *)

val fault : 'a t -> Fault.t option

val counters : 'a t -> counters
