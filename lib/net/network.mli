(** The discrete-event network simulator.

    This is the substitute for the JXTA layer the original coDB was
    built on.  It provides peers, pipes, typed messages, timers and a
    deterministic run loop: events at equal simulated times fire in
    the order they were scheduled.

    Handlers run inside the simulation loop; anything they send is
    scheduled for a later simulated time, so re-entrancy is never an
    issue.  Messages sent when no open pipe exists between the
    endpoints are counted as dropped, like JXTA messages to an
    unresolved pipe. *)

type 'a t

type counters = {
  delivered : int;
  dropped : int;
  total_bytes : int;  (** bytes actually delivered *)
  dropped_bytes : int;
      (** bytes lost — at send time (no open pipe, envelope included)
          or at delivery time (peer removed / no handler) *)
}

val create : ?default_latency:float -> ?default_byte_cost:float -> size_of:('a -> int) -> unit -> 'a t
(** [size_of] estimates the wire size of a payload (the envelope adds
    {!Message.header_bytes}).  Defaults: 1 ms latency, 1 µs/byte. *)

val add_peer : 'a t -> Peer_id.t -> unit
(** Idempotent. *)

val remove_peer : 'a t -> Peer_id.t -> unit
(** Closes all the peer's pipes; in-flight messages to it are dropped
    at delivery time. *)

val has_peer : 'a t -> Peer_id.t -> bool

val peers : 'a t -> Peer_id.t list

val set_handler : 'a t -> Peer_id.t -> ('a Message.t -> unit) -> unit
(** Register the message handler for a peer.  @raise Invalid_argument
    if the peer does not exist. *)

val connect : ?latency:float -> ?byte_cost:float -> 'a t -> Peer_id.t -> Peer_id.t -> unit
(** Create (or reopen) the pipe between two peers.  @raise
    Invalid_argument if either peer is missing. *)

val disconnect : 'a t -> Peer_id.t -> Peer_id.t -> unit
(** Close the pipe; a no-op if none exists. *)

val connected : 'a t -> Peer_id.t -> Peer_id.t -> bool

val pipe_between : 'a t -> Peer_id.t -> Peer_id.t -> Pipe.t option

val neighbours : 'a t -> Peer_id.t -> Peer_id.t list
(** Peers reachable through an open pipe, sorted. *)

val pipes : 'a t -> Pipe.t list

val send : 'a t -> src:Peer_id.t -> dst:Peer_id.t -> 'a -> bool
(** Enqueue a message.  [false] iff it was dropped immediately (no
    open pipe).  Messages in flight when a pipe closes are still
    delivered; messages to a removed peer are dropped silently at
    delivery time. *)

val schedule : 'a t -> delay:float -> (unit -> unit) -> unit
(** A timer local to the simulation (used e.g. by nodes to start
    updates at a given simulated time).  @raise Invalid_argument on a
    negative delay. *)

val now : 'a t -> float

val run : ?max_events:int -> 'a t -> int
(** Process events until the queue drains (or [max_events] is
    reached); returns the number of events processed. *)

val step : 'a t -> bool
(** Process a single event; [false] when the queue is empty. *)

val counters : 'a t -> counters
