let src_log = Logs.Src.create "codb.net" ~doc:"coDB simulated network"

module Log = (val Logs.src_log src_log : Logs.LOG)

type 'a peer_entry = { mutable handler : ('a Message.t -> unit) option }

type counters = {
  delivered : int;
  dropped : int;
  total_bytes : int;
  dropped_bytes : int;
  injected_drops : int;
  injected_dups : int;
  injected_flaps : int;
  crashes : int;
  restarts : int;
}

(* Structured queue entries: deliveries carry their message so the
   parallel driver can inspect destination and payload before the
   handler runs; plain timers stay opaque closures. *)
type 'a event = Ev_deliver of 'a Message.t | Ev_action of (unit -> unit)

type 'a t = {
  mutable now : float;
  events : 'a event Event_queue.t;
  peer_table : (Peer_id.t, 'a peer_entry) Hashtbl.t;
  pipe_table : (Peer_id.t * Peer_id.t, Pipe.t) Hashtbl.t;
  size_of : src:Peer_id.t -> dst:Peer_id.t -> 'a -> int;
  (* Fired on every pipe open<->close transition (and on a send
     attempt against a closed pipe) with the two endpoints: link-level
     codec state upstream must not trust the link across these. *)
  mutable link_watcher : (Peer_id.t -> Peer_id.t -> unit) option;
  default_latency : float;
  default_byte_cost : float;
  mutable msg_seq : int;
  mutable delivered : int;
  mutable dropped : int;
  mutable total_bytes : int;
  mutable dropped_bytes : int;
  (* Sorted peer list, memoised because tracing paths call [peers] once per
     message; [None] after any add/remove. *)
  mutable peer_list : Peer_id.t list option;
  mutable fault : Fault.t option;
}

let create ?(default_latency = 0.001) ?(default_byte_cost = 0.000001) ~size_of () =
  {
    now = 0.0;
    events = Event_queue.create ();
    peer_table = Hashtbl.create 32;
    pipe_table = Hashtbl.create 64;
    size_of;
    link_watcher = None;
    default_latency;
    default_byte_cost;
    msg_seq = 0;
    delivered = 0;
    dropped = 0;
    total_bytes = 0;
    dropped_bytes = 0;
    peer_list = None;
    fault = None;
  }

let pipe_key a b = if Peer_id.compare a b <= 0 then (a, b) else (b, a)

let set_link_watcher net f = net.link_watcher <- Some f

let notify_link net a b =
  match net.link_watcher with Some f -> f a b | None -> ()

(* Close/reopen wrappers that fire the watcher only on an actual
   transition, so idempotent re-closes stay silent. *)
let close_pipe net pipe =
  if Pipe.is_open pipe then begin
    Pipe.close pipe;
    let a, b = Pipe.endpoints pipe in
    notify_link net a b
  end

let reopen_pipe net pipe =
  if not (Pipe.is_open pipe) then begin
    Pipe.reopen pipe;
    let a, b = Pipe.endpoints pipe in
    notify_link net a b
  end

let add_peer net id =
  if not (Hashtbl.mem net.peer_table id) then begin
    Hashtbl.add net.peer_table id { handler = None };
    net.peer_list <- None
  end

let has_peer net id = Hashtbl.mem net.peer_table id

let peers net =
  match net.peer_list with
  | Some cached -> cached
  | None ->
      let sorted =
        List.sort Peer_id.compare
          (Hashtbl.fold (fun id _ acc -> id :: acc) net.peer_table [])
      in
      net.peer_list <- Some sorted;
      sorted

let pipe_between net a b = Hashtbl.find_opt net.pipe_table (pipe_key a b)

let remove_peer net id =
  Hashtbl.remove net.peer_table id;
  net.peer_list <- None;
  let close_touching key pipe =
    let x, y = key in
    if Peer_id.equal x id || Peer_id.equal y id then close_pipe net pipe
  in
  Hashtbl.iter close_touching net.pipe_table

let set_handler net id handler =
  match Hashtbl.find_opt net.peer_table id with
  | Some entry -> entry.handler <- Some handler
  | None ->
      invalid_arg
        (Printf.sprintf "Network.set_handler: unknown peer %s" (Peer_id.to_string id))

(* A crashed peer: it stays in the peer table (its pipes can reopen on
   restart) but messages reaching it meanwhile drop at delivery. *)
let clear_handler net id =
  match Hashtbl.find_opt net.peer_table id with
  | Some entry -> entry.handler <- None
  | None -> ()

let connect ?latency ?byte_cost net a b =
  if not (has_peer net a && has_peer net b) then
    invalid_arg "Network.connect: both peers must exist";
  let key = pipe_key a b in
  match Hashtbl.find_opt net.pipe_table key with
  | Some pipe -> reopen_pipe net pipe
  | None ->
      let latency = Option.value ~default:net.default_latency latency in
      let byte_cost = Option.value ~default:net.default_byte_cost byte_cost in
      Hashtbl.add net.pipe_table key (Pipe.create a b ~latency ~byte_cost)

let disconnect net a b =
  match pipe_between net a b with Some pipe -> close_pipe net pipe | None -> ()

let connected net a b =
  match pipe_between net a b with Some pipe -> Pipe.is_open pipe | None -> false

let neighbours net id =
  let collect (x, y) pipe acc =
    if not (Pipe.is_open pipe) then acc
    else if Peer_id.equal x id then y :: acc
    else if Peer_id.equal y id then x :: acc
    else acc
  in
  List.sort Peer_id.compare (Hashtbl.fold collect net.pipe_table [])

let pipes net = Hashtbl.fold (fun _ pipe acc -> pipe :: acc) net.pipe_table []

let schedule net ~delay action =
  if delay < 0.0 then invalid_arg "Network.schedule: negative delay";
  Event_queue.push net.events ~time:(net.now +. delay) (Ev_action action)

let deliver net message =
  match Hashtbl.find_opt net.peer_table message.Message.dst with
  | Some { handler = Some handler } ->
      net.delivered <- net.delivered + 1;
      net.total_bytes <- net.total_bytes + message.Message.size;
      handler message
  | Some { handler = None } | None ->
      net.dropped <- net.dropped + 1;
      net.dropped_bytes <- net.dropped_bytes + message.Message.size;
      Log.debug (fun m ->
          m "message #%d dropped at delivery: no live handler at %s"
            message.Message.msg_id
            (Peer_id.to_string message.Message.dst))

let sendable net ~src ~dst =
  match pipe_between net src dst with
  | Some pipe -> Pipe.is_open pipe
  | None -> false

let send net ~src ~dst payload =
  match pipe_between net src dst with
  | Some pipe when Pipe.is_open pipe ->
      let size = net.size_of ~src ~dst payload + Message.header_bytes in
      net.msg_seq <- net.msg_seq + 1;
      let message =
        { Message.msg_id = net.msg_seq; src; dst; sent_at = net.now; size; payload }
      in
      Pipe.record_traffic pipe ~size;
      let delay = Pipe.transfer_delay pipe ~size in
      let delivery = Pipe.sequence_delivery pipe ~src (net.now +. delay) in
      (match net.fault with
      | None -> Event_queue.push net.events ~time:delivery (Ev_deliver message)
      | Some fault ->
          let v = Fault.verdict fault in
          if v.Fault.v_drop then
            (* a silent in-flight loss: the sender still sees [true],
               exactly like a real network.  Counted per kind in the
               fault counters, not in [dropped] (which stays the
               protocol-visible drop count). *)
            Log.debug (fun m ->
                m "message #%d %s -> %s lost by fault injection" message.Message.msg_id
                  (Peer_id.to_string src) (Peer_id.to_string dst))
          else begin
            (* jitter applies after FIFO sequencing so reordering
               actually happens *)
            Event_queue.push net.events ~time:(delivery +. v.Fault.v_jitter)
              (Ev_deliver message);
            if v.Fault.v_dup then
              Event_queue.push net.events
                ~time:(delivery +. v.Fault.v_jitter +. v.Fault.v_dup_extra)
                (Ev_deliver message)
          end);
      true
  | Some _ | None ->
      net.dropped <- net.dropped + 1;
      (* the link is visibly broken at the sender: upstream codec
         state must stop trusting it before we price the message *)
      notify_link net src dst;
      net.dropped_bytes <-
        net.dropped_bytes + net.size_of ~src ~dst payload + Message.header_bytes;
      Log.debug (fun m ->
          m "message %s -> %s dropped: no open pipe" (Peer_id.to_string src)
            (Peer_id.to_string dst));
      false

let now net = net.now

let exec net = function
  | Ev_action action -> action ()
  | Ev_deliver message -> deliver net message

let step net =
  match Event_queue.pop net.events with
  | None -> false
  | Some (time, event) ->
      net.now <- max net.now time;
      exec net event;
      true

let run ?(max_events = max_int) net =
  let rec loop count =
    if count >= max_events then count else if step net then loop (count + 1) else count
  in
  loop 0

(* ---- parallel stepping ----------------------------------------------- *)

type 'a batch = Drained | Stepped of int | Deliveries of 'a Message.t array

let live_handler net dst =
  match Hashtbl.find_opt net.peer_table dst with
  | Some { handler = Some _ } -> true
  | Some { handler = None } | None -> false

let try_batch net ~eligible ~limit =
  if limit <= 0 then Stepped 0
  else
    match Event_queue.pop net.events with
    | None -> Drained
    | Some (time, event) ->
        net.now <- max net.now time;
        (match event with
        | Ev_action _ ->
            exec net event;
            Stepped 1
        | Ev_deliver first
          when not (live_handler net first.Message.dst && eligible first) ->
            exec net event;
            Stepped 1
        | Ev_deliver first ->
            (* greedily extend with same-time eligible deliveries; an
               ineligible or later event stays queued (its sequence
               number orders it after everything admitted here) *)
            let acc = ref [ first ] in
            let n = ref 1 in
            let continue = ref true in
            while !continue && !n < limit do
              match Event_queue.peek net.events with
              | Some (t, Ev_deliver m)
                when t = time && live_handler net m.Message.dst && eligible m ->
                  ignore (Event_queue.pop net.events);
                  acc := m :: !acc;
                  incr n
              | Some _ | None -> continue := false
            done;
            let messages = Array.of_list (List.rev !acc) in
            (* delivery accounting happens here, not in the handlers:
               the totals are order-independent sums, and the caller
               runs the handlers itself *)
            Array.iter
              (fun m ->
                net.delivered <- net.delivered + 1;
                net.total_bytes <- net.total_bytes + m.Message.size)
              messages;
            Deliveries messages)

let handler_of net dst =
  match Hashtbl.find_opt net.peer_table dst with
  | Some { handler } -> handler
  | None -> None

let install_fault net plan =
  (match Fault.validate_plan plan with
  | Ok () -> ()
  | Error errors -> invalid_arg ("Network.install_fault: " ^ String.concat "; " errors));
  let fault = Fault.make plan in
  net.fault <- Some fault;
  let arm (f : Fault.flap) =
    schedule net ~delay:(Float.max 0.0 (f.Fault.fl_down_at -. net.now)) (fun () ->
        match pipe_between net f.Fault.fl_a f.Fault.fl_b with
        | Some pipe when Pipe.is_open pipe ->
            Fault.note_flap fault;
            close_pipe net pipe
        | Some _ | None -> ());
    schedule net ~delay:(Float.max 0.0 (f.Fault.fl_up_at -. net.now)) (fun () ->
        match pipe_between net f.Fault.fl_a f.Fault.fl_b with
        | Some pipe when not (Pipe.is_open pipe) -> reopen_pipe net pipe
        | Some _ | None -> ())
  in
  List.iter arm plan.Fault.flaps;
  fault

let fault net = net.fault

let counters net =
  let fc =
    match net.fault with
    | Some fault -> Fault.counters fault
    | None ->
        {
          Fault.injected_drops = 0;
          injected_dups = 0;
          injected_flaps = 0;
          crashes = 0;
          restarts = 0;
        }
  in
  {
    delivered = net.delivered;
    dropped = net.dropped;
    total_bytes = net.total_bytes;
    dropped_bytes = net.dropped_bytes;
    injected_drops = fc.Fault.injected_drops;
    injected_dups = fc.Fault.injected_dups;
    injected_flaps = fc.Fault.injected_flaps;
    crashes = fc.Fault.crashes;
    restarts = fc.Fault.restarts;
  }
