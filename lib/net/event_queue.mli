(** A binary-heap priority queue of timed events.

    Events with equal times are delivered in insertion order (the
    sequence number breaks ties), which makes simulations fully
    deterministic.

    {b Single-consumer, single-producer.}  The queue is not
    thread-safe: every [push]/[pop] must happen on the domain that
    owns the simulation loop.  The parallel runtime respects this by
    construction — handlers running on worker domains never touch the
    queue; their sends and timers are captured into per-event effect
    buffers and replayed by the owning domain at the merge barrier
    (see {!Network}).  [push_batch] exists so a replayed group of
    same-time events obtains one contiguous block of sequence numbers
    in a single call: ties within the block can never interleave with
    a concurrent producer, because there is no concurrent producer to
    interleave with. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val push_batch : 'a t -> time:float -> 'a list -> unit
(** Push several payloads at one time, assigning them a contiguous
    block of sequence numbers in list order.  Equivalent to folding
    {!push} over the list (the queue is single-producer), but states
    the atomicity intent: callers replaying a parallel batch use this
    so the relative order of the ties is fixed by the list, not by
    interleaving at the call sites. *)

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek : 'a t -> (float * 'a) option
(** Earliest event without removing it. *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
