(** A binary-heap priority queue of timed events.

    Events with equal times are delivered in insertion order (the
    sequence number breaks ties), which makes simulations fully
    deterministic. *)

type 'a t

val create : unit -> 'a t

val is_empty : 'a t -> bool

val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit

val pop : 'a t -> (float * 'a) option
(** Earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option

val clear : 'a t -> unit
