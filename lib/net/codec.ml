(* Binary primitives shared by every wire payload.  The writer keeps a
   per-message string dictionary: the first time a string is written it is
   emitted inline and remembered; subsequent occurrences become a varint
   back-reference.  Update floods repeat rule ids, null provenance tags and
   skewed data values constantly, so the dictionary is where most of the
   wire savings come from.

   Two further string modes exist beyond the per-message dictionary:

   - [Linked]: an incremental dictionary that persists across messages
     on one directed link.  Introductions carry an explicit id next to
     the literal, so a receiver that misses a message can never
     misattribute a later back-reference — a dangling id fails as
     [Malformed], a wrong string is impossible by construction.  Epoch
     bumps (crash, restart, link flap) reset both sides deterministically.
   - [Tabled]: strings become bare varint ids and the id -> string
     table is harvested afterwards ({!dict_strings}) to be written
     up front, deduplicated — the snapshot-v2 layout. *)

module Dict = struct
  type sender = {
    mutable s_epoch : int;
    s_tab : (string, int) Hashtbl.t;
    mutable s_next : int;
    mutable s_intros : int;
    mutable s_hits : int;
  }

  type receiver = {
    mutable r_epoch : int;
    r_tab : (int, string) Hashtbl.t;
  }

  let sender () =
    { s_epoch = 0; s_tab = Hashtbl.create 64; s_next = 0; s_intros = 0; s_hits = 0 }

  let receiver () = { r_epoch = 0; r_tab = Hashtbl.create 64 }

  let bump s =
    s.s_epoch <- s.s_epoch + 1;
    Hashtbl.reset s.s_tab;
    s.s_next <- 0

  let epoch s = s.s_epoch
  let entries s = s.s_next
  let intros s = s.s_intros
  let hits s = s.s_hits
  let receiver_epoch rc = rc.r_epoch

  (* The table a message stamped [epoch] decodes against.  A newer
     epoch adopts and resets (the sender reset on bump, so nothing we
     remember can be referenced again); the current epoch keeps the
     accumulated table; a stale epoch gets a throwaway empty table, so
     its back-references fail [Malformed] while literals still decode. *)
  let table_for rc ~epoch =
    if epoch > rc.r_epoch then begin
      rc.r_epoch <- epoch;
      Hashtbl.reset rc.r_tab;
      rc.r_tab
    end
    else if epoch = rc.r_epoch then rc.r_tab
    else Hashtbl.create 4
end

type strmode = Inline | Linked of Dict.sender | Tabled

type writer = {
  buf : Buffer.t;
  dict : (string, int) Hashtbl.t;
  mutable next_ref : int;
  mode : strmode;
  (* Tabled harvest, in id order (reversed) *)
  mutable tabled : string list;
}

let writer ?(initial = 256) ?(mode = Inline) () =
  {
    buf = Buffer.create initial;
    dict = Hashtbl.create 16;
    next_ref = 0;
    mode;
    tabled = [];
  }

let byte w n = Buffer.add_char w.buf (Char.chr (n land 0xff))

let varint w n =
  let rec go n =
    if n land lnot 0x7f = 0 then byte w n
    else begin
      byte w (0x80 lor (n land 0x7f));
      go (n lsr 7)
    end
  in
  go n

let zigzag w n = varint w ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let float64 w f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    byte w (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let raw_string w s =
  varint w (String.length s);
  Buffer.add_string w.buf s

let string w s =
  match w.mode with
  | Inline -> (
      match Hashtbl.find_opt w.dict s with
      | Some r -> varint w (r + 1)
      | None ->
          Hashtbl.add w.dict s w.next_ref;
          w.next_ref <- w.next_ref + 1;
          byte w 0;
          raw_string w s)
  | Linked d -> (
      match Hashtbl.find_opt d.Dict.s_tab s with
      | Some id ->
          d.Dict.s_hits <- d.Dict.s_hits + 1;
          varint w ((id lsl 1) lor 1)
      | None ->
          let id = d.Dict.s_next in
          Hashtbl.add d.Dict.s_tab s id;
          d.Dict.s_next <- id + 1;
          d.Dict.s_intros <- d.Dict.s_intros + 1;
          varint w (id lsl 1);
          raw_string w s)
  | Tabled -> (
      match Hashtbl.find_opt w.dict s with
      | Some id -> varint w id
      | None ->
          let id = w.next_ref in
          Hashtbl.add w.dict s id;
          w.next_ref <- id + 1;
          w.tabled <- s :: w.tabled;
          varint w id)

let dict_strings w = List.rev w.tabled

let preload w ss =
  List.iter
    (fun s ->
      if not (Hashtbl.mem w.dict s) then begin
        Hashtbl.add w.dict s w.next_ref;
        w.next_ref <- w.next_ref + 1;
        w.tabled <- s :: w.tabled
      end)
    ss

let add_bytes w s = Buffer.add_string w.buf s

let contents w = Buffer.contents w.buf
let size w = Buffer.length w.buf

type rstrmode =
  | R_inline
  | R_linked of (int, string) Hashtbl.t
  | R_tabled of string array

type reader = {
  src : string;
  mutable pos : int;
  rdict : (int, string) Hashtbl.t;
  mutable rnext : int;
  rmode : rstrmode;
}

exception Malformed of string

let reader ?(mode = R_inline) src =
  { src; pos = 0; rdict = Hashtbl.create 16; rnext = 0; rmode = mode }

let read_byte r =
  if r.pos >= String.length r.src then raise (Malformed "truncated byte");
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec go shift acc =
    if shift > Sys.int_size then raise (Malformed "varint too long");
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_zigzag r =
  let n = read_varint r in
  (n lsr 1) lxor (-(n land 1))

let read_float64 r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (read_byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_raw_string r =
  let len = read_varint r in
  if len < 0 || r.pos + len > String.length r.src then
    raise (Malformed "truncated string");
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let read_string r =
  match r.rmode with
  | R_inline -> (
      let tag = read_varint r in
      if tag = 0 then begin
        let s = read_raw_string r in
        Hashtbl.add r.rdict r.rnext s;
        r.rnext <- r.rnext + 1;
        s
      end
      else
        match Hashtbl.find_opt r.rdict (tag - 1) with
        | Some s -> s
        | None -> raise (Malformed "dangling dictionary reference"))
  | R_linked tab ->
      let n = read_varint r in
      let id = n lsr 1 in
      if n land 1 = 0 then begin
        let s = read_raw_string r in
        (* replace: a retransmitted introduction is idempotent (the
           sender never reuses an id for a different string within an
           epoch) *)
        Hashtbl.replace tab id s;
        s
      end
      else (
        match Hashtbl.find_opt tab id with
        | Some s -> s
        | None -> raise (Malformed "dangling link dictionary reference"))
  | R_tabled arr ->
      let id = read_varint r in
      if id >= 0 && id < Array.length arr then arr.(id)
      else raise (Malformed "dangling table reference")

let at_end r = r.pos >= String.length r.src

let remaining r = String.length r.src - r.pos

(* Element counts read off the wire bound allocations
   ([Array.init]/[List.init] at the payload layer), so a bit-flipped
   count must fail as [Malformed], not as a multi-gigabyte allocation
   attempt.  Every encoded element costs at least one byte, so any
   honest count is bounded by the bytes left in the message. *)
let read_count r =
  let n = read_varint r in
  if n < 0 || n > remaining r then raise (Malformed "implausible count");
  n
