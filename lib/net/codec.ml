(* Binary primitives shared by every wire payload.  The writer keeps a
   per-message string dictionary: the first time a string is written it is
   emitted inline and remembered; subsequent occurrences become a varint
   back-reference.  Update floods repeat rule ids, null provenance tags and
   skewed data values constantly, so the dictionary is where most of the
   wire savings come from. *)

type writer = {
  buf : Buffer.t;
  dict : (string, int) Hashtbl.t;
  mutable next_ref : int;
}

let writer ?(initial = 256) () =
  { buf = Buffer.create initial; dict = Hashtbl.create 16; next_ref = 0 }

let byte w n = Buffer.add_char w.buf (Char.chr (n land 0xff))

let varint w n =
  let rec go n =
    if n land lnot 0x7f = 0 then byte w n
    else begin
      byte w (0x80 lor (n land 0x7f));
      go (n lsr 7)
    end
  in
  go n

let zigzag w n = varint w ((n lsl 1) lxor (n asr (Sys.int_size - 1)))

let float64 w f =
  let bits = Int64.bits_of_float f in
  for i = 0 to 7 do
    byte w (Int64.to_int (Int64.shift_right_logical bits (8 * i)))
  done

let raw_string w s =
  varint w (String.length s);
  Buffer.add_string w.buf s

let string w s =
  match Hashtbl.find_opt w.dict s with
  | Some r -> varint w (r + 1)
  | None ->
      Hashtbl.add w.dict s w.next_ref;
      w.next_ref <- w.next_ref + 1;
      byte w 0;
      raw_string w s

let contents w = Buffer.contents w.buf
let size w = Buffer.length w.buf

type reader = {
  src : string;
  mutable pos : int;
  rdict : (int, string) Hashtbl.t;
  mutable rnext : int;
}

exception Malformed of string

let reader src = { src; pos = 0; rdict = Hashtbl.create 16; rnext = 0 }

let read_byte r =
  if r.pos >= String.length r.src then raise (Malformed "truncated byte");
  let c = Char.code r.src.[r.pos] in
  r.pos <- r.pos + 1;
  c

let read_varint r =
  let rec go shift acc =
    if shift > Sys.int_size then raise (Malformed "varint too long");
    let b = read_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let read_zigzag r =
  let n = read_varint r in
  (n lsr 1) lxor (-(n land 1))

let read_float64 r =
  let bits = ref 0L in
  for i = 0 to 7 do
    bits := Int64.logor !bits (Int64.shift_left (Int64.of_int (read_byte r)) (8 * i))
  done;
  Int64.float_of_bits !bits

let read_raw_string r =
  let len = read_varint r in
  if len < 0 || r.pos + len > String.length r.src then
    raise (Malformed "truncated string");
  let s = String.sub r.src r.pos len in
  r.pos <- r.pos + len;
  s

let read_string r =
  let tag = read_varint r in
  if tag = 0 then begin
    let s = read_raw_string r in
    Hashtbl.add r.rdict r.rnext s;
    r.rnext <- r.rnext + 1;
    s
  end
  else
    match Hashtbl.find_opt r.rdict (tag - 1) with
    | Some s -> s
    | None -> raise (Malformed "dangling dictionary reference")

let at_end r = r.pos >= String.length r.src

let remaining r = String.length r.src - r.pos

(* Element counts read off the wire bound allocations
   ([Array.init]/[List.init] at the payload layer), so a bit-flipped
   count must fail as [Malformed], not as a multi-gigabyte allocation
   attempt.  Every encoded element costs at least one byte, so any
   honest count is bounded by the bytes left in the message. *)
let read_count r =
  let n = read_varint r in
  if n < 0 || n > remaining r then raise (Malformed "implausible count");
  n
