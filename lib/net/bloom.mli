(** Counting-free Bloom filter over hashable keys.

    Used by the update layer's sent-caches: membership answers are
    one-sided — [mem] returning [false] means the key was definitely never
    added, while [true] may be a false positive.  Callers must therefore
    treat a positive as "maybe sent" and confirm against an exact bound
    structure before suppressing anything. *)

type t

val create : bits:int -> t
(** [create ~bits] allocates a filter of [bits] bits ([bits] must be a
    positive power of two) with a fixed number of probe hashes. *)

val add : t -> 'a -> unit
val mem : t -> 'a -> bool

val add_hash : t -> int -> unit
(** Like {!add} but on a caller-computed content hash — used with
    [Tuple.hash] so probing never walks the tuple's boxed values.  The
    same key must always present the same hash; [add]/[add_hash] for
    one key must not be mixed. *)

val mem_hash : t -> int -> bool
(** Membership twin of {!add_hash}. *)

val clear : t -> unit
val bits : t -> int

val estimated_fill : t -> float
(** Fraction of bits set, in [0,1] — a cheap saturation indicator. *)
