(** Message envelopes, the simulator's counterpart of JXTA messages. *)

type 'a t = {
  msg_id : int;  (** unique per network *)
  src : Peer_id.t;
  dst : Peer_id.t;
  sent_at : float;
  size : int;  (** estimated wire size in bytes (header included) *)
  payload : 'a;
}

val header_bytes : int
(** Fixed per-message overhead added to the payload size. *)

val pp : 'a Fmt.t -> 'a t Fmt.t
