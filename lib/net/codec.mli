(** Compact binary wire codec: length-delimited primitives over a growable
    buffer.  Integers use LEB128 varints (zigzag for signed), floats are 8-byte
    IEEE 754, and strings go through a per-message dictionary so repeated
    strings ship once and become small back-references afterwards.

    The codec is payload-agnostic: higher layers (see {!Codb_core.Payload})
    define tags and field order on top of these primitives. *)

(** {1 Encoding} *)

type writer

val writer : ?initial:int -> unit -> writer
(** Fresh writer with an empty string dictionary. *)

val varint : writer -> int -> unit
(** Unsigned LEB128.  Negative arguments are a programming error (encoded as
    their 2's-complement magnitude, which will not round-trip); use
    {!zigzag} for signed values. *)

val zigzag : writer -> int -> unit
(** Signed varint: maps small negative and positive ints to small codes. *)

val float64 : writer -> float -> unit
(** 8-byte little-endian IEEE 754. *)

val byte : writer -> int -> unit
(** Single byte, low 8 bits of the argument. *)

val string : writer -> string -> unit
(** Dictionary string: first occurrence is [0, len, bytes]; later occurrences
    are [ref+1] pointing back into the per-writer dictionary. *)

val raw_string : writer -> string -> unit
(** Length-prefixed string that bypasses the dictionary (for one-off blobs). *)

val contents : writer -> string
val size : writer -> int

(** {1 Decoding} *)

type reader

exception Malformed of string
(** Raised by read primitives on truncated or corrupt input. *)

val reader : string -> reader
val read_varint : reader -> int
val read_zigzag : reader -> int
val read_float64 : reader -> float
val read_byte : reader -> int
val read_string : reader -> string
val read_raw_string : reader -> string
val at_end : reader -> bool

val remaining : reader -> int
(** Bytes left to read. *)

val read_count : reader -> int
(** A varint used as an element count.  Counts drive [Array.init] /
    [List.init] allocations in payload decoders, so anything negative
    or exceeding {!remaining} (every element costs at least one byte)
    raises {!Malformed} instead of attempting the allocation. *)
