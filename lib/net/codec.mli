(** Compact binary wire codec: length-delimited primitives over a growable
    buffer.  Integers use LEB128 varints (zigzag for signed), floats are 8-byte
    IEEE 754, and strings go through a per-message dictionary so repeated
    strings ship once and become small back-references afterwards.

    The codec is payload-agnostic: higher layers (see {!Codb_core.Payload})
    define tags and field order on top of these primitives. *)

(** {1 Incremental link dictionaries}

    State for the [Linked] string mode: a dictionary that persists
    across messages on one directed link, so a string crosses the link
    once per epoch and every later occurrence is a small id.  The wire
    format keeps the id {e explicit} on introductions, which makes
    desync detectable instead of silent: a receiver that missed an
    introduction raises {!Malformed} on the dangling reference — it
    can never resolve a reference to the wrong string. *)
module Dict : sig
  type sender
  (** Sender half: string -> id, assigned densely per epoch. *)

  type receiver
  (** Receiver half: id -> string mirror, rebuilt from introductions. *)

  val sender : unit -> sender
  val receiver : unit -> receiver

  val bump : sender -> unit
  (** Start a new epoch: clear the table.  Called when the link state
      is no longer trusted (crash, restart, flap, send on a closed
      pipe), so the next messages re-introduce every string. *)

  val epoch : sender -> int

  val entries : sender -> int
  (** Strings in the current epoch's table. *)

  val intros : sender -> int
  (** Introductions written (lifetime). *)

  val hits : sender -> int
  (** Back-references written (lifetime). *)

  val receiver_epoch : receiver -> int

  val table_for : receiver -> epoch:int -> (int, string) Hashtbl.t
  (** The table a message stamped with [epoch] decodes against: a
      newer epoch resets and adopts, the current epoch accumulates,
      and a stale epoch gets a throwaway empty table (its references
      fail {!Malformed}; literals still decode). *)
end

(** How {!string}/{!read_string} treat strings. *)
type strmode =
  | Inline  (** per-message dictionary (default, the classic format) *)
  | Linked of Dict.sender
      (** persistent per-link dictionary with explicit introduction ids *)
  | Tabled
      (** bare varint ids; the id -> string table is harvested with
          {!dict_strings} and stored out of band (snapshot v2) *)

(** {1 Encoding} *)

type writer

val writer : ?initial:int -> ?mode:strmode -> unit -> writer
(** Fresh writer.  [mode] defaults to [Inline]. *)

val varint : writer -> int -> unit
(** Unsigned LEB128.  Negative arguments are a programming error (encoded as
    their 2's-complement magnitude, which will not round-trip); use
    {!zigzag} for signed values. *)

val zigzag : writer -> int -> unit
(** Signed varint: maps small negative and positive ints to small codes. *)

val float64 : writer -> float -> unit
(** 8-byte little-endian IEEE 754. *)

val byte : writer -> int -> unit
(** Single byte, low 8 bits of the argument. *)

val string : writer -> string -> unit
(** Mode-dependent dictionary string.  [Inline]: first occurrence is
    [0, len, bytes], later ones [ref+1].  [Linked d]: introductions are
    [id*2, len, bytes] and hits [id*2+1], ids persisting across
    messages until {!Dict.bump}.  [Tabled]: a bare id into the table
    harvested by {!dict_strings}. *)

val raw_string : writer -> string -> unit
(** Length-prefixed string that bypasses the dictionary (for one-off blobs). *)

val dict_strings : writer -> string list
(** The [Tabled] harvest: every distinct string passed to {!string},
    in first-use (= id) order.  Empty in other modes. *)

val preload : writer -> string list -> unit
(** Seed a [Tabled] writer's table: the k-th string gets id k (skipping
    duplicates), so later {!string} calls on those strings emit bare
    references.  Lets a caller fix the table order — e.g. sorted, for
    front coding — by harvesting with a first pass and re-encoding. *)

val add_bytes : writer -> string -> unit
(** Append bytes verbatim (no length prefix) — for assembling a
    container around an already-encoded body. *)

val contents : writer -> string
val size : writer -> int

(** {1 Decoding} *)

(** Reader-side string mode, mirroring {!strmode}.  [R_linked] carries
    the epoch-selected table (see {!Dict.table_for}); [R_tabled] the
    decoded string table. *)
type rstrmode =
  | R_inline
  | R_linked of (int, string) Hashtbl.t
  | R_tabled of string array

type reader

exception Malformed of string
(** Raised by read primitives on truncated or corrupt input. *)

val reader : ?mode:rstrmode -> string -> reader
val read_varint : reader -> int
val read_zigzag : reader -> int
val read_float64 : reader -> float
val read_byte : reader -> int
val read_string : reader -> string
val read_raw_string : reader -> string
val at_end : reader -> bool

val remaining : reader -> int
(** Bytes left to read. *)

val read_count : reader -> int
(** A varint used as an element count.  Counts drive [Array.init] /
    [List.init] allocations in payload decoders, so anything negative
    or exceeding {!remaining} (every element costs at least one byte)
    raises {!Malformed} instead of attempting the allocation. *)
