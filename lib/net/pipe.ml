type stats = { messages : int; bytes : int }

type t = {
  ep1 : Peer_id.t;
  ep2 : Peer_id.t;
  latency : float;
  byte_cost : float;
  mutable opened : bool;
  mutable messages : int;
  mutable bytes : int;
  mutable last_delivery_12 : float;  (* ep1 -> ep2 direction *)
  mutable last_delivery_21 : float;
}

let create a b ~latency ~byte_cost =
  if Peer_id.equal a b then invalid_arg "Pipe.create: a pipe needs two distinct peers";
  if latency < 0.0 then invalid_arg "Pipe.create: negative latency";
  if byte_cost < 0.0 then invalid_arg "Pipe.create: negative byte cost";
  let ep1, ep2 = if Peer_id.compare a b <= 0 then (a, b) else (b, a) in
  {
    ep1;
    ep2;
    latency;
    byte_cost;
    opened = true;
    messages = 0;
    bytes = 0;
    last_delivery_12 = 0.0;
    last_delivery_21 = 0.0;
  }

let endpoints p = (p.ep1, p.ep2)

let other_end p peer =
  if Peer_id.equal peer p.ep1 then p.ep2
  else if Peer_id.equal peer p.ep2 then p.ep1
  else
    invalid_arg
      (Printf.sprintf "Pipe.other_end: %s is not an endpoint" (Peer_id.to_string peer))

let latency p = p.latency

let byte_cost p = p.byte_cost

let is_open p = p.opened

let close p = p.opened <- false

let reopen p = p.opened <- true

let transfer_delay p ~size = p.latency +. (p.byte_cost *. float_of_int size)

let sequence_delivery p ~src tentative =
  if Peer_id.equal src p.ep1 then begin
    let actual = Float.max tentative p.last_delivery_12 in
    p.last_delivery_12 <- actual;
    actual
  end
  else begin
    let actual = Float.max tentative p.last_delivery_21 in
    p.last_delivery_21 <- actual;
    actual
  end

let record_traffic p ~size =
  p.messages <- p.messages + 1;
  p.bytes <- p.bytes + size

let stats p = { messages = p.messages; bytes = p.bytes }

let pp ppf p =
  Fmt.pf ppf "%a<->%a (lat %.4fs, %s, %d msgs, %d B)" Peer_id.pp p.ep1 Peer_id.pp p.ep2
    p.latency
    (if p.opened then "open" else "closed")
    p.messages p.bytes
