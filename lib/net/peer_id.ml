type t = string

let of_string s =
  if s = "" then invalid_arg "Peer_id.of_string: empty name";
  s

let to_string s = s

let compare = String.compare

let equal = String.equal

let hash = Hashtbl.hash

let pp = Fmt.string

module Set = Set.Make (String)
module Map = Map.Make (String)
