type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;  (* heap.(0) unused when size = 0 *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let before e1 e2 = e1.time < e2.time || (e1.time = e2.time && e1.seq < e2.seq)

let ensure_capacity q =
  let cap = Array.length q.heap in
  if q.size >= cap then begin
    let dummy = q.heap.(0) in
    let bigger = Array.make (max 16 (2 * cap)) dummy in
    Array.blit q.heap 0 bigger 0 q.size;
    q.heap <- bigger
  end

let push q ~time payload =
  let entry = { time; seq = q.next_seq; payload } in
  q.next_seq <- q.next_seq + 1;
  if Array.length q.heap = 0 then q.heap <- Array.make 16 entry;
  ensure_capacity q;
  q.heap.(q.size) <- entry;
  q.size <- q.size + 1;
  (* sift up *)
  let rec up i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if before q.heap.(i) q.heap.(parent) then begin
        let tmp = q.heap.(i) in
        q.heap.(i) <- q.heap.(parent);
        q.heap.(parent) <- tmp;
        up parent
      end
    end
  in
  up (q.size - 1)

let push_batch q ~time payloads =
  List.iter (fun payload -> push q ~time payload) payloads

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      (* sift down *)
      let rec down i =
        let left = (2 * i) + 1 and right = (2 * i) + 2 in
        let smallest = ref i in
        if left < q.size && before q.heap.(left) q.heap.(!smallest) then smallest := left;
        if right < q.size && before q.heap.(right) q.heap.(!smallest) then
          smallest := right;
        if !smallest <> i then begin
          let tmp = q.heap.(i) in
          q.heap.(i) <- q.heap.(!smallest);
          q.heap.(!smallest) <- tmp;
          down !smallest
        end
      in
      down 0
    end;
    Some (top.time, top.payload)
  end

let peek q = if q.size = 0 then None else Some (q.heap.(0).time, q.heap.(0).payload)

let peek_time q = if q.size = 0 then None else Some q.heap.(0).time

let clear q = q.size <- 0
