(** A node's view of update epochs across the network.

    Every peer carries a monotone {e update epoch}: a counter bumped
    each time the peer participates in a (global or scoped) update
    that may have changed its exportable data.  A node keeps a local
    view of the epochs of the peers it has dealt with; cached answers
    are stamped with the epochs of the peers that contributed tuples
    at population time, and a stamp is valid exactly while none of
    those peers has moved to a later epoch in the node's view.

    The view is updated from the update protocol itself: a global
    update's request flood and terminated flood reach every node of
    the connected component, so when a node finalises an update it
    knows that it and all its acquaintances took part — bumping
    exactly the peers a locally cached entry can have imported from
    (sub-queries only ever go to acquaintances).  The scheme therefore
    over-approximates staleness (an update that changed nothing still
    bumps) but never under-approximates it. *)

module Peer_id = Codb_net.Peer_id

type t

type stamp = (Peer_id.t * int) list
(** The epochs a set of peers had when an answer was cached. *)

val create : unit -> t

val current : t -> Peer_id.t -> int
(** Epoch 0 for peers never bumped. *)

val bump : t -> Peer_id.t -> unit

val bump_all : t -> Peer_id.t list -> unit

val bumps : t -> int
(** Total number of bump events recorded (for reports). *)

val stamp : t -> Peer_id.t list -> stamp
(** The current epochs of the given peers, deduplicated. *)

val is_current : t -> stamp -> bool
(** No stamped peer has a later epoch now. *)

val pp : t Fmt.t
