module Peer_id = Codb_net.Peer_id

type t = { mutable view : int Peer_id.Map.t; mutable bump_events : int }

type stamp = (Peer_id.t * int) list

let create () = { view = Peer_id.Map.empty; bump_events = 0 }

let current t peer = Option.value ~default:0 (Peer_id.Map.find_opt peer t.view)

let bump t peer =
  t.view <- Peer_id.Map.add peer (current t peer + 1) t.view;
  t.bump_events <- t.bump_events + 1

let bump_all t peers = List.iter (bump t) peers

let bumps t = t.bump_events

let stamp t peers =
  let dedup = List.sort_uniq Peer_id.compare peers in
  List.map (fun p -> (p, current t p)) dedup

let is_current t s = List.for_all (fun (p, e) -> current t p <= e) s

let pp ppf t =
  Fmt.pf ppf "@[<h>%a@]"
    Fmt.(
      list ~sep:(any ", ") (fun ppf (p, e) -> Fmt.pf ppf "%a@%d" Peer_id.pp p e))
    (Peer_id.Map.bindings t.view)
