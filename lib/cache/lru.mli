(** A bounded LRU map with time-to-live and byte-size accounting.

    The core container under {!Qcache}: recency is maintained in an
    intrusive doubly-linked list, so [find], [add] and [remove] are
    O(1) (amortised, via the backing hash table).  Capacity can be
    bounded both by entry count and by the sum of the per-entry byte
    sizes supplied at insertion; crossing either bound evicts from the
    least-recently-used end.

    Time is supplied by the caller on every operation ([~now]) so the
    same code runs under the simulator's clock and under wall time.
    An entry older than [ttl] is dropped lazily by the first [find]
    that touches it. *)

type ('k, 'v) t

type counters = {
  hits : int;
  misses : int;
  insertions : int;
  replacements : int;
  evictions : int;  (** dropped by capacity pressure *)
  expirations : int;  (** dropped by TTL *)
}

val create : ?max_entries:int -> ?max_bytes:int -> ?ttl:float -> unit -> ('k, 'v) t
(** [max_entries] / [max_bytes] bound the cache (0 or negative:
    unbounded); [ttl] is the entry lifetime in seconds (0 or negative:
    entries never expire).  Defaults: unbounded, no expiry. *)

val find : ('k, 'v) t -> now:float -> 'k -> 'v option
(** Promotes the entry to most-recently-used; counts a hit or a miss.
    An entry past its TTL is removed and counted as an expiration and
    a miss. *)

val mem : ('k, 'v) t -> 'k -> bool
(** No recency or counter effect; ignores TTL. *)

val add : ('k, 'v) t -> now:float -> 'k -> 'v -> bytes:int -> unit
(** Insert (or replace) at most-recently-used, then evict from the LRU
    end while either capacity bound is exceeded.  An entry larger than
    [max_bytes] on its own does not stick. *)

val remove : ('k, 'v) t -> 'k -> unit

val touch : ('k, 'v) t -> 'k -> unit
(** Promote to most-recently-used without counter effects (used when a
    lookup is answered through an entry found by scanning, e.g. a
    containment hit). *)

val fold :
  (key:'k -> value:'v -> stored_at:float -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
(** Most-recently-used first; no recency or counter effects.  The
    callback must not mutate the cache; collect keys and use
    {!remove} afterwards. *)

val length : ('k, 'v) t -> int

val bytes : ('k, 'v) t -> int
(** Sum of the byte sizes of the live entries. *)

val ttl : ('k, 'v) t -> float

val counters : ('k, 'v) t -> counters

val clear : ('k, 'v) t -> unit
(** Drop every entry (counted as evictions). *)
