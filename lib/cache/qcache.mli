(** The per-node semantic query-answer cache.

    Entries map a {e normalized} conjunctive query (canonical variable
    renaming, so alpha-variants share an entry) to the full answer set
    the query-time diffusion produced at this node, stamped with the
    update {!Epoch}s of the peers that contributed tuples.  A lookup
    can be answered three ways:

    - {e exact}: the normalized key is present;
    - {e by containment}: some cached query [qc] satisfies [q ⊆ qc]
      under the Chandra–Merlin test ({!Codb_cq.Containment}) {e and}
      [q] is answerable from [qc]'s answers alone — the cached answer
      set is treated as a relation and [q]'s extra restrictions are
      re-applied through {!Codb_cq.Eval}.  The answerability condition
      is syntactic (bodies isomorphic up to variable renaming, the
      extra comparisons and the head confined to [qc]'s head
      variables): sound by construction, conservative by design;
    - not at all: a miss, and the caller runs the paper's diffusion.

    Invalidation is lazy: entries whose stamp mentions a peer that has
    since moved to a later epoch are dropped by the first lookup that
    meets them; {!note_update} feeds the epoch view from the update
    protocol.  TTL and capacity limits come from the underlying
    {!Lru}.

    A second table serves the responder side of constraint pushdown:
    entries keyed by [(rule, pushed constraints)] hold the full answer
    stream one coordination rule produced under those constraints.  A
    request whose constraints are {e subsumed} by a cached entry's
    (cached at least as weak) is served by re-filtering the cached
    answers — in particular an unconstrained entry serves every
    constrained request.  Both tables share the epoch tracker. *)

module Peer_id = Codb_net.Peer_id
module Query = Codb_cq.Query
module Specialize = Codb_cq.Specialize
module Tuple = Codb_relalg.Tuple

type t

type hit_kind = Exact | By_containment

type hit = { answers : Tuple.t list; kind : hit_kind }

type counters = {
  hits_exact : int;
  hits_containment : int;
  misses : int;
  stores : int;
  epoch_invalidations : int;  (** entries dropped for a stale epoch stamp *)
  ttl_expirations : int;
  evictions : int;
  bytes_served : int;  (** answer bytes served from the cache *)
  entries : int;  (** live entries right now *)
  stored_bytes : int;  (** bytes held right now, both tables *)
  epoch_bumps : int;
  rule_hits_exact : int;
  rule_hits_containment : int;
      (** served by filtering a weaker-constrained entry *)
  rule_misses : int;
  rule_stores : int;
  rule_entries : int;  (** live rule-table entries right now *)
}

val create : ?max_entries:int -> ?max_bytes:int -> ?ttl:float -> containment:bool -> unit -> t
(** Capacity and TTL semantics as in {!Lru.create}; [containment]
    enables hit-by-containment (disable for the E9 ablation). *)

val normalize : Query.t -> string
(** The canonical cache key: the query printed after renaming its
    variables in first-occurrence order. *)

val lookup : t -> now:float -> Query.t -> hit option
(** Consult the cache; maintains all counters and drops invalid
    entries met along the way. *)

val store : t -> now:float -> Query.t -> Tuple.t list -> sources:Peer_id.t list -> unit
(** Cache a completed query's answers, stamped with the current epochs
    of [sources] (the node itself plus the peers that contributed). *)

val note_update : t -> Peer_id.t list -> int
(** Bump the epoch view of the given peers (called when an update
    commits at this node; subsequent lookups drop dependent entries).
    Returns how many live entries this bump newly staled — the
    cache-churn attributable to the update, surfaced in
    {!Codb_core.Stats}. *)

val lookup_rule :
  t ->
  now:float ->
  rule_id:string ->
  label:Peer_id.t list ->
  Specialize.t ->
  hit option
(** Consult the responder-side rule table.  Exact hit on the
    normalized [(rule_id, constraints)] key, else (when containment is
    enabled) any live same-rule entry whose constraints subsume the
    requested ones, its answers re-filtered by {!Specialize.matches}.
    Either way the entry's label must be a subset of [label]: the
    cached diffusion explored at least the sub-network this request
    may, so its stream is complete for it (extra tuples beyond the
    request's reach are still true answers). *)

val store_rule :
  t ->
  now:float ->
  rule_id:string ->
  label:Peer_id.t list ->
  Specialize.t ->
  Tuple.t list ->
  sources:Peer_id.t list ->
  unit
(** Cache the complete answer stream a rule produced under
    [constraints] and [label], stamped with the current epochs of
    [sources]. *)

val answers_via_containment :
  cached:Query.t -> answers:Tuple.t list -> Query.t -> Tuple.t list option
(** The containment-hit core, exposed for tests: can [q] be answered
    from the cached pair, and with which tuples?  [None] when the
    containment or answerability condition fails. *)

val counters : t -> counters

val hit_ratio : counters -> float
(** Hits (both kinds) over lookups; 0 when no lookups happened. *)

val clear : t -> unit
(** Drop every entry (rules changed, stores reloaded, ...). *)
