module Peer_id = Codb_net.Peer_id
module Query = Codb_cq.Query
module Atom = Codb_cq.Atom
module Term = Codb_cq.Term
module Eval = Codb_cq.Eval
module Containment = Codb_cq.Containment
module Specialize = Codb_cq.Specialize
module Tuple = Codb_relalg.Tuple
module Value = Codb_relalg.Value

type entry = {
  e_query : Query.t;
  e_answers : Tuple.t list;
  e_stamp : Epoch.stamp;
}

(* Responder-side entries: the full (constrained) answer stream of one
   coordination rule, keyed by (rule, pushed constraints).  The label
   under which the stream was produced is kept because it bounds the
   exploration: an entry may only serve a request whose label is a
   superset (the cached run explored at least as much, so the stream
   is complete for the request; any extra tuples are still true
   answers). *)
type rule_entry = {
  re_rule : string;
  re_constraints : Specialize.t;
  re_label : Peer_id.t list;
  re_answers : Tuple.t list;
  re_stamp : Epoch.stamp;
}

type hit_kind = Exact | By_containment

type hit = { answers : Tuple.t list; kind : hit_kind }

type counters = {
  hits_exact : int;
  hits_containment : int;
  misses : int;
  stores : int;
  epoch_invalidations : int;
  ttl_expirations : int;
  evictions : int;
  bytes_served : int;
  entries : int;
  stored_bytes : int;
  epoch_bumps : int;
  rule_hits_exact : int;
  rule_hits_containment : int;
  rule_misses : int;
  rule_stores : int;
  rule_entries : int;
}

type t = {
  lru : (string, entry) Lru.t;
  rlru : (string, rule_entry) Lru.t;
  epochs : Epoch.t;
  containment : bool;
  mutable c_hits_exact : int;
  mutable c_hits_containment : int;
  mutable c_misses : int;
  mutable c_stores : int;
  mutable c_epoch_invalidations : int;
  mutable c_bytes_served : int;
  mutable c_rule_hits_exact : int;
  mutable c_rule_hits_containment : int;
  mutable c_rule_misses : int;
  mutable c_rule_stores : int;
}

let create ?max_entries ?max_bytes ?ttl ~containment () =
  {
    lru = Lru.create ?max_entries ?max_bytes ?ttl ();
    rlru = Lru.create ?max_entries ?max_bytes ?ttl ();
    epochs = Epoch.create ();
    containment;
    c_hits_exact = 0;
    c_hits_containment = 0;
    c_misses = 0;
    c_stores = 0;
    c_epoch_invalidations = 0;
    c_bytes_served = 0;
    c_rule_hits_exact = 0;
    c_rule_hits_containment = 0;
    c_rule_misses = 0;
    c_rule_stores = 0;
  }

(* --- canonical keys ------------------------------------------------ *)

let canonical_renaming q =
  let table = Hashtbl.create 16 in
  let counter = ref 0 in
  let visit_term = function
    | Term.Cst _ -> ()
    | Term.Var v ->
        if not (Hashtbl.mem table v) then begin
          Hashtbl.replace table v (Printf.sprintf "v%d" !counter);
          incr counter
        end
  in
  let visit_atom a = List.iter visit_term a.Atom.args in
  visit_atom q.Query.head;
  List.iter visit_atom q.Query.body;
  List.iter
    (fun c ->
      visit_term c.Query.left;
      visit_term c.Query.right)
    q.Query.comparisons;
  fun v -> Option.value ~default:v (Hashtbl.find_opt table v)

let rename_term rho = function
  | Term.Cst _ as t -> t
  | Term.Var v -> Term.Var (rho v)

let rename_atom rho a = Atom.make a.Atom.rel (List.map (rename_term rho) a.Atom.args)

let rename_comparison rho c =
  { c with Query.left = rename_term rho c.Query.left; right = rename_term rho c.Query.right }

let rename_query rho q =
  Query.make ~head:(rename_atom rho q.Query.head)
    ~body:(List.map (rename_atom rho) q.Query.body)
    ~comparisons:(List.map (rename_comparison rho) q.Query.comparisons)
    ()

let normalize q = Query.to_string (rename_query (canonical_renaming q) q)

(* --- answerability from a cached superset query -------------------- *)

(* A variable renaming rho : vars(qc) -> vars(q), grown injectively. *)
let extend_renaming rho a b =
  match List.assoc_opt a rho with
  | Some b' -> if String.equal b b' then Some rho else None
  | None ->
      if List.exists (fun (_, b') -> String.equal b b') rho then None
      else Some ((a, b) :: rho)

let match_args rho args_c args_q =
  List.fold_left2
    (fun acc tc tq ->
      match acc with
      | None -> None
      | Some rho -> (
          match (tc, tq) with
          | Term.Cst c1, Term.Cst c2 -> if Value.equal c1 c2 then Some rho else None
          | Term.Var a, Term.Var b -> extend_renaming rho a b
          | Term.Cst _, Term.Var _ | Term.Var _, Term.Cst _ -> None))
    (Some rho) args_c args_q

(* Match the cached body onto the lookup body as a multiset of atoms,
   one-to-one, under a single injective variable renaming. *)
let rec match_bodies rho atoms_c atoms_q =
  match atoms_c with
  | [] -> Some rho
  | a :: rest ->
      let rec try_pick seen = function
        | [] -> None
        | b :: more -> (
            let attempt =
              if
                String.equal a.Atom.rel b.Atom.rel
                && List.length a.Atom.args = List.length b.Atom.args
              then match_args rho a.Atom.args b.Atom.args
              else None
            in
            match attempt with
            | Some rho' -> (
                match match_bodies rho' rest (List.rev_append seen more) with
                | Some final -> Some final
                | None -> try_pick (b :: seen) more)
            | None -> try_pick (b :: seen) more)
      in
      try_pick [] atoms_q

let comparison_equal c1 c2 =
  c1.Query.op = c2.Query.op
  && Term.equal c1.Query.left c2.Query.left
  && Term.equal c1.Query.right c2.Query.right

(* Remove one occurrence of each renamed cached comparison from the
   lookup's comparisons; the leftover is what the filter must apply. *)
let split_comparisons rho cached_cmps lookup_cmps =
  let remove_one c remaining =
    let rec loop seen = function
      | [] -> None
      | x :: rest ->
          if comparison_equal c x then Some (List.rev_append seen rest)
          else loop (x :: seen) rest
    in
    loop [] remaining
  in
  List.fold_left
    (fun acc c ->
      match acc with
      | None -> None
      | Some remaining -> remove_one (rename_comparison rho c) remaining)
    (Some lookup_cmps) cached_cmps

let term_vars terms =
  List.filter_map (function Term.Var v -> Some v | Term.Cst _ -> None) terms

let comparison_vars cmps =
  List.concat_map (fun c -> term_vars [ c.Query.left; c.Query.right ]) cmps

let subset vars bound = List.for_all (fun v -> List.mem v bound) vars

(* Can [q] be answered from the cached answers of [qc] alone?  Two
   sound sufficient conditions.  Fast path: [q] and [qc] are
   Chandra-Merlin equivalent, so the answer sets are identical.
   General path: the bodies are isomorphic under an injective variable
   renaming [rho], every cached comparison reappears (renamed) in [q]
   (so beyond [qc], [q] only adds comparisons and rearranges its
   head), and those extra comparisons - as well as [q]'s head - only
   touch variables exposed through [qc]'s head.  Then evaluating
       [q.head <- R_qc(rho(qc.head.args)), extra-comparisons]
   over the cached answer relation [R_qc] yields exactly [q]'s
   answers.  Note the general path covers head permutations, which are
   *not* answer-set containments - correctness rests on the
   isomorphism making the view evaluation exact, not on the CM
   test. *)
let answers_via_containment ~cached:qc ~answers q =
  if Containment.equivalent q qc then
    (* equivalent queries have identical answer sets *)
    Some answers
  else if List.length qc.Query.body <> List.length q.Query.body then None
  else
    match match_bodies [] qc.Query.body q.Query.body with
    | None -> None
    | Some rho -> (
        let rho_fn v = Option.value ~default:v (List.assoc_opt v rho) in
        match split_comparisons rho_fn qc.Query.comparisons q.Query.comparisons with
        | None -> None
        | Some extra ->
            let view_args = List.map (rename_term rho_fn) qc.Query.head.Atom.args in
            let exposed = term_vars view_args in
            if
              subset (term_vars q.Query.head.Atom.args) exposed
              && subset (comparison_vars extra) exposed
            then begin
              let view_rel = qc.Query.head.Atom.rel in
              let filter_query =
                Query.make ~head:q.Query.head
                  ~body:[ Atom.make view_rel view_args ]
                  ~comparisons:extra ()
              in
              let source = Eval.source_of_alist [ (view_rel, answers) ] in
              Some (Eval.answer_tuples source filter_query)
            end
            else None)

(* --- the cache proper ---------------------------------------------- *)

let answer_bytes answers =
  List.fold_left (fun acc t -> acc + Tuple.size_bytes t) 0 answers

let entry_bytes key entry = 64 + String.length key + answer_bytes entry.e_answers

let serve t kind answers =
  (match kind with
  | Exact -> t.c_hits_exact <- t.c_hits_exact + 1
  | By_containment -> t.c_hits_containment <- t.c_hits_containment + 1);
  t.c_bytes_served <- t.c_bytes_served + answer_bytes answers;
  Some { answers; kind }

let miss t =
  t.c_misses <- t.c_misses + 1;
  None

type scan_verdict = Stale of string | Candidate of string * entry

let containment_scan t ~now ~skip q =
  let ttl = Lru.ttl t.lru in
  let scanned =
    Lru.fold
      (fun ~key ~value ~stored_at acc ->
        if String.equal key skip then acc
        else if ttl > 0.0 && now -. stored_at > ttl then Stale key :: acc
        else if not (Epoch.is_current t.epochs value.e_stamp) then Stale key :: acc
        else Candidate (key, value) :: acc)
      t.lru []
  in
  (* fold accumulates LRU-first; restore MRU-first preference *)
  let scanned = List.rev scanned in
  List.iter
    (function
      | Stale key ->
          Lru.remove t.lru key;
          t.c_epoch_invalidations <- t.c_epoch_invalidations + 1
      | Candidate _ -> ())
    scanned;
  let try_candidate = function
    | Stale _ -> None
    | Candidate (key, e) -> (
        match answers_via_containment ~cached:e.e_query ~answers:e.e_answers q with
        | Some answers -> Some (key, answers)
        | None -> None)
  in
  List.find_map try_candidate scanned

let lookup t ~now q =
  let key = normalize q in
  let exact =
    match Lru.find t.lru ~now key with
    | Some e when Epoch.is_current t.epochs e.e_stamp -> Some e
    | Some e ->
        ignore e;
        Lru.remove t.lru key;
        t.c_epoch_invalidations <- t.c_epoch_invalidations + 1;
        None
    | None -> None
  in
  match exact with
  | Some e -> serve t Exact e.e_answers
  | None ->
      if not t.containment then miss t
      else begin
        match containment_scan t ~now ~skip:key q with
        | Some (winner_key, answers) ->
            Lru.touch t.lru winner_key;
            serve t By_containment answers
        | None -> miss t
      end

let store t ~now q answers ~sources =
  let key = normalize q in
  let entry = { e_query = q; e_answers = answers; e_stamp = Epoch.stamp t.epochs sources } in
  Lru.add t.lru ~now key entry ~bytes:(entry_bytes key entry);
  t.c_stores <- t.c_stores + 1

(* --- the responder-side (rule, constraints) table ------------------- *)

let rule_key rule_id constraints = rule_id ^ "\000" ^ Specialize.to_key constraints

let rule_entry_bytes key entry = 64 + String.length key + answer_bytes entry.re_answers

let label_serves ~cached ~requested =
  List.for_all (fun p -> List.exists (Peer_id.equal p) requested) cached

let lookup_rule t ~now ~rule_id ~label constraints =
  let key = rule_key rule_id constraints in
  let exact =
    match Lru.find t.rlru ~now key with
    | Some e when Epoch.is_current t.epochs e.re_stamp ->
        if label_serves ~cached:e.re_label ~requested:label then Some e else None
    | Some _ ->
        Lru.remove t.rlru key;
        t.c_epoch_invalidations <- t.c_epoch_invalidations + 1;
        None
    | None -> None
  in
  let serve_rule kind answers =
    (match kind with
    | Exact -> t.c_rule_hits_exact <- t.c_rule_hits_exact + 1
    | By_containment -> t.c_rule_hits_containment <- t.c_rule_hits_containment + 1);
    t.c_bytes_served <- t.c_bytes_served + answer_bytes answers;
    Some { answers; kind }
  in
  match exact with
  | Some e -> serve_rule Exact e.re_answers
  | None ->
      let containment_hit =
        if not t.containment then None
        else begin
          let ttl = Lru.ttl t.rlru in
          (* fold accumulates LRU-first; reverse to prefer recent entries *)
          let candidates =
            List.rev
              (Lru.fold
                 (fun ~key:k ~value ~stored_at acc ->
                   if String.equal k key then acc
                   else if ttl > 0.0 && now -. stored_at > ttl then acc
                   else if not (Epoch.is_current t.epochs value.re_stamp) then acc
                   else if
                     String.equal value.re_rule rule_id
                     && Specialize.subsumes value.re_constraints constraints
                     && label_serves ~cached:value.re_label ~requested:label
                   then (k, value) :: acc
                   else acc)
                 t.rlru [])
          in
          match candidates with
          | (k, e) :: _ ->
              Lru.touch t.rlru k;
              Some (List.filter (Specialize.matches constraints) e.re_answers)
          | [] -> None
        end
      in
      (match containment_hit with
      | Some answers -> serve_rule By_containment answers
      | None ->
          t.c_rule_misses <- t.c_rule_misses + 1;
          None)

let store_rule t ~now ~rule_id ~label constraints answers ~sources =
  let key = rule_key rule_id constraints in
  let entry =
    {
      re_rule = rule_id;
      re_constraints = constraints;
      re_label = label;
      re_answers = answers;
      re_stamp = Epoch.stamp t.epochs sources;
    }
  in
  Lru.add t.rlru ~now key entry ~bytes:(rule_entry_bytes key entry);
  t.c_rule_stores <- t.c_rule_stores + 1

let count_stale t =
  Lru.fold
    (fun ~key:_ ~value ~stored_at:_ acc ->
      if Epoch.is_current t.epochs value.e_stamp then acc else acc + 1)
    t.lru 0
  + Lru.fold
      (fun ~key:_ ~value ~stored_at:_ acc ->
        if Epoch.is_current t.epochs value.re_stamp then acc else acc + 1)
      t.rlru 0

let note_update t peers =
  let stale_before = count_stale t in
  Epoch.bump_all t.epochs peers;
  count_stale t - stale_before

let counters t =
  let lc = Lru.counters t.lru in
  let rc = Lru.counters t.rlru in
  {
    hits_exact = t.c_hits_exact;
    hits_containment = t.c_hits_containment;
    misses = t.c_misses;
    stores = t.c_stores;
    epoch_invalidations = t.c_epoch_invalidations;
    ttl_expirations = lc.Lru.expirations + rc.Lru.expirations;
    evictions = lc.Lru.evictions + rc.Lru.evictions;
    bytes_served = t.c_bytes_served;
    entries = Lru.length t.lru;
    stored_bytes = Lru.bytes t.lru + Lru.bytes t.rlru;
    epoch_bumps = Epoch.bumps t.epochs;
    rule_hits_exact = t.c_rule_hits_exact;
    rule_hits_containment = t.c_rule_hits_containment;
    rule_misses = t.c_rule_misses;
    rule_stores = t.c_rule_stores;
    rule_entries = Lru.length t.rlru;
  }

let hit_ratio c =
  let hits = c.hits_exact + c.hits_containment in
  let lookups = hits + c.misses in
  if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups

let clear t =
  Lru.clear t.lru;
  Lru.clear t.rlru
