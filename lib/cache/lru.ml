type ('k, 'v) entry = {
  e_key : 'k;
  mutable e_value : 'v;
  mutable e_bytes : int;
  mutable e_stored : float;
  mutable e_prev : ('k, 'v) entry option;  (* toward the MRU end *)
  mutable e_next : ('k, 'v) entry option;  (* toward the LRU end *)
}

type counters = {
  hits : int;
  misses : int;
  insertions : int;
  replacements : int;
  evictions : int;
  expirations : int;
}

type ('k, 'v) t = {
  table : ('k, ('k, 'v) entry) Hashtbl.t;
  max_entries : int;
  max_bytes : int;
  t_ttl : float;
  mutable head : ('k, 'v) entry option;  (* most recently used *)
  mutable tail : ('k, 'v) entry option;  (* least recently used *)
  mutable cur_bytes : int;
  mutable c_hits : int;
  mutable c_misses : int;
  mutable c_insertions : int;
  mutable c_replacements : int;
  mutable c_evictions : int;
  mutable c_expirations : int;
}

let create ?(max_entries = 0) ?(max_bytes = 0) ?(ttl = 0.0) () =
  {
    table = Hashtbl.create 64;
    max_entries;
    max_bytes;
    t_ttl = ttl;
    head = None;
    tail = None;
    cur_bytes = 0;
    c_hits = 0;
    c_misses = 0;
    c_insertions = 0;
    c_replacements = 0;
    c_evictions = 0;
    c_expirations = 0;
  }

let unlink t e =
  (match e.e_prev with Some p -> p.e_next <- e.e_next | None -> t.head <- e.e_next);
  (match e.e_next with Some n -> n.e_prev <- e.e_prev | None -> t.tail <- e.e_prev);
  e.e_prev <- None;
  e.e_next <- None

let push_front t e =
  e.e_next <- t.head;
  e.e_prev <- None;
  (match t.head with Some h -> h.e_prev <- Some e | None -> t.tail <- Some e);
  t.head <- Some e

let drop t e =
  unlink t e;
  Hashtbl.remove t.table e.e_key;
  t.cur_bytes <- t.cur_bytes - e.e_bytes

let expired t ~now e = t.t_ttl > 0.0 && now -. e.e_stored > t.t_ttl

let find t ~now k =
  match Hashtbl.find_opt t.table k with
  | None ->
      t.c_misses <- t.c_misses + 1;
      None
  | Some e when expired t ~now e ->
      drop t e;
      t.c_expirations <- t.c_expirations + 1;
      t.c_misses <- t.c_misses + 1;
      None
  | Some e ->
      t.c_hits <- t.c_hits + 1;
      unlink t e;
      push_front t e;
      Some e.e_value

let mem t k = Hashtbl.mem t.table k

let evict_tail t =
  match t.tail with
  | None -> ()
  | Some e ->
      drop t e;
      t.c_evictions <- t.c_evictions + 1

let trim t =
  let over () =
    (t.max_entries > 0 && Hashtbl.length t.table > t.max_entries)
    || (t.max_bytes > 0 && t.cur_bytes > t.max_bytes)
  in
  while over () && t.tail <> None do
    evict_tail t
  done

let add t ~now k v ~bytes =
  (match Hashtbl.find_opt t.table k with
  | Some e ->
      t.cur_bytes <- t.cur_bytes - e.e_bytes + bytes;
      e.e_value <- v;
      e.e_bytes <- bytes;
      e.e_stored <- now;
      unlink t e;
      push_front t e;
      t.c_replacements <- t.c_replacements + 1
  | None ->
      let e =
        { e_key = k; e_value = v; e_bytes = bytes; e_stored = now; e_prev = None;
          e_next = None }
      in
      Hashtbl.replace t.table k e;
      push_front t e;
      t.cur_bytes <- t.cur_bytes + bytes;
      t.c_insertions <- t.c_insertions + 1);
  trim t

let remove t k =
  match Hashtbl.find_opt t.table k with None -> () | Some e -> drop t e

let touch t k =
  match Hashtbl.find_opt t.table k with
  | None -> ()
  | Some e ->
      unlink t e;
      push_front t e

let fold f t acc =
  let rec loop acc = function
    | None -> acc
    | Some e -> loop (f ~key:e.e_key ~value:e.e_value ~stored_at:e.e_stored acc) e.e_next
  in
  loop acc t.head

let length t = Hashtbl.length t.table

let bytes t = t.cur_bytes

let ttl t = t.t_ttl

let counters t =
  {
    hits = t.c_hits;
    misses = t.c_misses;
    insertions = t.c_insertions;
    replacements = t.c_replacements;
    evictions = t.c_evictions;
    expirations = t.c_expirations;
  }

let clear t =
  while t.tail <> None do
    evict_tail t
  done
