(* CRC32 (IEEE 802.3 polynomial, reflected), table-driven.  Used to
   checksum WAL records and snapshots; we only need corruption
   *detection* for torn or bit-flipped writes, not cryptographic
   strength. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           if !c land 1 = 1 then c := 0xEDB88320 lxor (!c lsr 1)
           else c := !c lsr 1
         done;
         !c))

let update crc s =
  let table = Lazy.force table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  String.iter
    (fun ch ->
      c := table.((!c lxor Char.code ch) land 0xFF) lxor (!c lsr 8))
    s;
  !c lxor 0xFFFFFFFF

let digest s = update 0 s
