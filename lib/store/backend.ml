(* Storage backends behind one record-of-closures signature.

   [memory] keeps the log and snapshot in buffers — deterministic,
   zero-I/O, what tests and benches use.  [file] puts them on disk
   under a directory, one <node>.wal / <node>.snap pair per node,
   with the snapshot written to a temp file and renamed into place so
   a crash mid-snapshot leaves the previous snapshot intact. *)

type t = {
  append_log : string -> unit;  (** append pre-framed bytes to the log *)
  log_contents : unit -> string;
  reset_log : unit -> unit;  (** truncate the log (after a snapshot) *)
  write_snapshot : string -> unit;  (** atomic replace *)
  read_snapshot : unit -> string option;
  sync : unit -> unit;  (** flush to stable storage if applicable *)
}

let memory () =
  let log = Buffer.create 256 in
  let snap = ref None in
  {
    append_log = Buffer.add_string log;
    log_contents = (fun () -> Buffer.contents log);
    reset_log = (fun () -> Buffer.clear log);
    write_snapshot = (fun s -> snap := Some s);
    read_snapshot = (fun () -> !snap);
    sync = ignore;
  }

let read_file path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> Some (really_input_string ic (in_channel_length ic)))
  end
  else None

let fsync_channel oc = Unix.fsync (Unix.descr_of_out_channel oc)

let file ~fsync ~dir ~node () =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
  let wal_path = Filename.concat dir (node ^ ".wal") in
  let snap_path = Filename.concat dir (node ^ ".snap") in
  let with_out path flags f =
    let oc =
      open_out_gen (Open_wronly :: Open_binary :: Open_creat :: flags) 0o644 path
    in
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        f oc;
        flush oc;
        if fsync then fsync_channel oc)
  in
  {
    append_log =
      (fun s -> with_out wal_path [ Open_append ] (fun oc -> output_string oc s));
    log_contents =
      (fun () -> match read_file wal_path with Some s -> s | None -> "");
    reset_log = (fun () -> with_out wal_path [ Open_trunc ] ignore);
    write_snapshot =
      (fun s ->
        let tmp = snap_path ^ ".tmp" in
        with_out tmp [ Open_trunc ] (fun oc -> output_string oc s);
        Sys.rename tmp snap_path);
    read_snapshot = (fun () -> read_file snap_path);
    sync = ignore;
  }
