(* Length-prefixed, CRC-protected record framing for the WAL.

   A record on disk is

     4 bytes  payload length (little-endian)
     4 bytes  CRC32 of the payload (little-endian)
     N bytes  payload

   Recovery reads records until the log ends cleanly, is cut short
   mid-record (a torn write: [Truncated]), or a CRC mismatches (a
   bit flip: [Corrupt]).  Everything before the first bad record is
   returned; the bad tail is discarded, never trusted. *)

type status = Clean | Truncated | Corrupt

let put_u32 buf v =
  Buffer.add_char buf (Char.chr (v land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
  Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))

let get_u32 s pos =
  Char.code s.[pos]
  lor (Char.code s.[pos + 1] lsl 8)
  lor (Char.code s.[pos + 2] lsl 16)
  lor (Char.code s.[pos + 3] lsl 24)

let encode payload =
  let buf = Buffer.create (String.length payload + 8) in
  put_u32 buf (String.length payload);
  put_u32 buf (Crc32.digest payload);
  Buffer.add_string buf payload;
  Buffer.contents buf

let decode_all log =
  let len = String.length log in
  let records = ref [] in
  let pos = ref 0 in
  let status = ref Clean in
  let stop st = status := st; pos := len in
  while !pos < len do
    if len - !pos < 8 then stop Truncated
    else begin
      let plen = get_u32 log !pos in
      let crc = get_u32 log (!pos + 4) in
      if plen < 0 || plen > len - !pos - 8 then stop Truncated
      else
        let payload = String.sub log (!pos + 8) plen in
        if Crc32.digest payload <> crc then stop Corrupt
        else begin
          records := payload :: !records;
          pos := !pos + 8 + plen
        end
    end
  done;
  (List.rev !records, !status)
