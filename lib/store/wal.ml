(* The per-node write-ahead log.

   Callers append small codec-encoded records describing every durable
   state change; every [snapshot_every] records the WAL asks the owner
   for a full state snapshot, writes it (atomically, via the backend),
   and truncates the log — bounding both recovery time and log size.

   Recovery is the inverse: latest valid snapshot plus the log tail,
   with the tail cut at the first torn or corrupt record rather than
   failing (everything after a damaged record is untrustworthy; the
   update protocol re-delivers whatever was lost). *)

type counters = {
  mutable records_written : int;
  mutable bytes_written : int;
  mutable snapshots_taken : int;
  mutable snapshot_bytes : int;
}

type t = {
  backend : Backend.t;
  snapshot_every : int;
  take_snapshot : unit -> string;
  on_truncate : (unit -> unit) option;
  mutable since_snapshot : int;
  counters : counters;
}

let create ?on_truncate ~backend ~snapshot_every ~take_snapshot () =
  {
    backend;
    snapshot_every;
    take_snapshot;
    on_truncate;
    since_snapshot = 0;
    counters =
      {
        records_written = 0;
        bytes_written = 0;
        snapshots_taken = 0;
        snapshot_bytes = 0;
      };
  }

let counters t = t.counters

let snapshot_now t =
  let snap = Frame.encode (t.take_snapshot ()) in
  t.backend.Backend.write_snapshot snap;
  t.backend.Backend.reset_log ();
  t.backend.Backend.sync ();
  t.since_snapshot <- 0;
  t.counters.snapshots_taken <- t.counters.snapshots_taken + 1;
  t.counters.snapshot_bytes <- t.counters.snapshot_bytes + String.length snap;
  (* the log was just cut: stream-level encoder state (the incremental
     record dictionary) must restart so the new tail is self-contained *)
  match t.on_truncate with Some f -> f () | None -> ()

let append t payload =
  let framed = Frame.encode payload in
  t.backend.Backend.append_log framed;
  t.backend.Backend.sync ();
  t.counters.records_written <- t.counters.records_written + 1;
  t.counters.bytes_written <- t.counters.bytes_written + String.length framed;
  t.since_snapshot <- t.since_snapshot + 1;
  if t.since_snapshot >= t.snapshot_every then snapshot_now t

type recovery = {
  rec_snapshot : string option;
  rec_records : string list;
  rec_truncated : bool;
  rec_replayed_bytes : int;
}

let recover ~backend =
  let rec_snapshot, snap_bytes =
    match backend.Backend.read_snapshot () with
    | None -> (None, 0)
    | Some framed -> (
        (* a snapshot is one framed record; damage means we fall back
           to an empty store plus whatever the log holds *)
        match Frame.decode_all framed with
        | [ payload ], Frame.Clean -> (Some payload, String.length framed)
        | _ -> (None, 0))
  in
  let log = backend.Backend.log_contents () in
  let records, status = Frame.decode_all log in
  let replayed =
    List.fold_left (fun acc r -> acc + 8 + String.length r) 0 records
  in
  {
    rec_snapshot;
    rec_records = records;
    rec_truncated = status <> Frame.Clean;
    rec_replayed_bytes = snap_bytes + replayed;
  }
