(** WAL record framing: 4-byte little-endian payload length, 4-byte
    little-endian CRC32 of the payload, then the payload itself.

    Decoding is forgiving by design: a log whose tail was torn by a
    crash mid-write, or corrupted by a bit flip, yields every record
    up to the damage plus a status describing why decoding stopped —
    it never raises. *)

type status =
  | Clean  (** the log ended exactly on a record boundary *)
  | Truncated  (** the last record was cut short (torn write) *)
  | Corrupt  (** a record's CRC mismatched (bit flip) *)

val encode : string -> string
(** Frame one payload as a record. *)

val decode_all : string -> string list * status
(** All intact records in order, stopping at the first damaged one. *)
