(** A node's durable storage: one append-only log plus one snapshot
    slot, behind a record of closures so the in-memory and on-disk
    implementations are interchangeable.

    The WAL layer above frames and checksums everything it hands to
    [append_log] / [write_snapshot]; backends move bytes only. *)

type t = {
  append_log : string -> unit;
      (** append pre-framed bytes to the end of the log *)
  log_contents : unit -> string;  (** the whole log, for recovery *)
  reset_log : unit -> unit;
      (** truncate the log, called right after a successful snapshot *)
  write_snapshot : string -> unit;
      (** replace the snapshot atomically (the previous snapshot must
          survive a crash mid-write) *)
  read_snapshot : unit -> string option;  (** [None] before the first *)
  sync : unit -> unit;  (** flush to stable storage if applicable *)
}

val memory : unit -> t
(** Deterministic in-process backend for tests and benches.  Survives
    a simulated crash (the [t] outlives the node's volatile state) but
    not the process. *)

val file : fsync:bool -> dir:string -> node:string -> unit -> t
(** On-disk backend: [<dir>/<node>.wal] and [<dir>/<node>.snap],
    creating [dir] if needed.  Snapshots are written to a temp file
    and renamed into place; with [fsync] every write is flushed with
    [Unix.fsync] before returning. *)
