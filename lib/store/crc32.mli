(** CRC32 (IEEE 802.3, the zlib/PNG polynomial).

    Checksums WAL records and snapshots so recovery can tell a torn or
    bit-flipped record from a valid one.  Results fit in 32 bits and
    are returned as non-negative OCaml [int]s. *)

val digest : string -> int
(** CRC32 of the whole string. *)

val update : int -> string -> int
(** [update crc s] extends a running checksum, so
    [update (digest a) b = digest (a ^ b)]. *)
