(** A node's write-ahead log with periodic snapshot compaction.

    Append a record for every durable state change; every
    [snapshot_every] appends the log takes a full snapshot from its
    owner (the [take_snapshot] callback), writes it atomically and
    truncates the log.  Recovery returns the latest valid snapshot
    plus the intact log tail, truncating at the first torn or corrupt
    record instead of failing. *)

type counters = {
  mutable records_written : int;
  mutable bytes_written : int;  (** framed bytes appended to the log *)
  mutable snapshots_taken : int;
  mutable snapshot_bytes : int;  (** framed bytes of snapshots written *)
}

type t

val create :
  ?on_truncate:(unit -> unit) ->
  backend:Backend.t ->
  snapshot_every:int ->
  take_snapshot:(unit -> string) ->
  unit ->
  t
(** [on_truncate] fires right after every log truncation (the tail of
    {!snapshot_now}): callers keeping stream-level encoder state across
    records — the incremental record dictionary — reset it there so the
    new log tail decodes from scratch. *)

val append : t -> string -> unit
(** Frame, checksum and append one record; may trigger a snapshot. *)

val snapshot_now : t -> unit
(** Force a snapshot + log truncation (bulk loads, post-recovery
    compaction). *)

val counters : t -> counters

type recovery = {
  rec_snapshot : string option;
      (** latest snapshot payload, if one exists and its CRC holds *)
  rec_records : string list;
      (** intact log records appended after that snapshot, in order *)
  rec_truncated : bool;
      (** the log tail was damaged and cut (torn write / bit flip) *)
  rec_replayed_bytes : int;  (** bytes of snapshot + records consumed *)
}

val recover : backend:Backend.t -> recovery
(** Never raises: damage yields a shorter prefix, not a failure. *)
