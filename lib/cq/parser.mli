(** Recursive-descent parser for coordination-rules files and queries.

    Syntax (comments: [//] or [#] to end of line):

    {v
    node n1 {
      relation person(name: string, dept: string);
      relation job(dept: string, title: string);
      fact person("alice", "cs");
      constraint person(x, d), d = "forbidden";
    }
    node m mediator { relation person(name: string, dept: string); }
    rule r1 at n2: emp(x, t) <- n1: person(x, d), job(d, t), d != "hr";
    v}

    In query and rule positions identifiers are variables and literals
    ([42], [3.5], ["text"], [true], [false]) are constants.  A
    standalone user query reads [answer(x) <- emp(x, t), t = "prof"]. *)

exception Parse_error of { line : int; message : string }

val parse_config : string -> (Config.t, string) result
(** Syntax only; run {!Config.validate} for static checks. *)

val parse_config_exn : string -> Config.t
(** @raise Parse_error *)

val load_config : string -> (Config.t, string list) result
(** Parse and validate in one step. *)

val parse_query : string -> (Query.t, string) result
(** A standalone [head <- body] conjunctive query. *)

val parse_fact : string -> (string * Codb_relalg.Tuple.t, string) result
(** A standalone ground fact, e.g. [person("alice", 42)]. *)
