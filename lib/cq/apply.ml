module Tuple = Codb_relalg.Tuple
module Value = Codb_relalg.Value
module Tuple_set = Codb_relalg.Relation.Tuple_set

let head_tuples q substs =
  let existentials = Query.existential_head_vars q in
  let hole_index v =
    let rec loop i = function
      | [] -> None
      | x :: rest -> if String.equal x v then Some i else loop (i + 1) rest
    in
    loop 0 existentials
  in
  let term_value subst = function
    | Term.Cst c -> Some c
    | Term.Var v -> (
        match Subst.find v subst with
        | Some value -> Some value
        | None -> (
            match hole_index v with
            | Some i -> Some (Value.Hole i)
            | None -> None))
  in
  let project acc subst =
    let rec build acc_vals = function
      | [] -> Some (Array.of_list (List.rev acc_vals))
      | t :: rest -> (
          match term_value subst t with
          | Some v -> build (v :: acc_vals) rest
          | None -> None)
    in
    match build [] q.Query.head.Atom.args with
    | Some tuple -> Tuple_set.add tuple acc
    | None -> acc
  in
  Tuple_set.elements (List.fold_left project Tuple_set.empty substs)

let instantiate ~rule tuples = List.map (Tuple.instantiate_holes ~rule) tuples
