module Value = Codb_relalg.Value
module String_map = Map.Make (String)

type t = Value.t String_map.t

let empty = String_map.empty

let bind = String_map.add

let find v s = String_map.find_opt v s

let mem = String_map.mem

let bindings = String_map.bindings

let of_list l = List.fold_left (fun acc (v, value) -> bind v value acc) empty l

let apply_term s = function
  | Term.Cst c -> Some c
  | Term.Var v -> find v s

let apply_atom s a =
  let rec ground acc = function
    | [] -> Some (Array.of_list (List.rev acc))
    | t :: rest -> (
        match apply_term s t with
        | Some v -> ground (v :: acc) rest
        | None -> None)
  in
  ground [] a.Atom.args

let compare = String_map.compare Value.compare

let equal s1 s2 = compare s1 s2 = 0

let pp ppf s =
  let pp_binding ppf (v, value) = Fmt.pf ppf "%s -> %a" v Value.pp value in
  Fmt.pf ppf "{%a}" Fmt.(list ~sep:(any "; ") pp_binding) (bindings s)
