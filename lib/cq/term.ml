module Value = Codb_relalg.Value

type t =
  | Var of string
  | Cst of Value.t

let compare t1 t2 =
  match (t1, t2) with
  | Var a, Var b -> String.compare a b
  | Cst a, Cst b -> Value.compare a b
  | Var _, Cst _ -> -1
  | Cst _, Var _ -> 1

let equal t1 t2 = compare t1 t2 = 0

let is_var = function Var _ -> true | Cst _ -> false

let vars terms =
  let add acc = function
    | Var v -> if List.mem v acc then acc else v :: acc
    | Cst _ -> acc
  in
  List.rev (List.fold_left add [] terms)

let pp ppf = function
  | Var v -> Fmt.string ppf v
  | Cst c -> Value.pp ppf c

let to_string t = Fmt.str "%a" pp t
