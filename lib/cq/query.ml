module Value = Codb_relalg.Value

type comparison_op = Eq | Neq | Lt | Le | Gt | Ge

type comparison = { left : Term.t; op : comparison_op; right : Term.t }

type t = {
  head : Atom.t;
  body : Atom.t list;
  comparisons : comparison list;
}

let make ~head ~body ?(comparisons = []) () = { head; body; comparisons }

let head_vars q = Atom.vars q.head

let body_vars q = Term.vars (List.concat_map (fun a -> a.Atom.args) q.body)

let existential_head_vars q =
  let bound = body_vars q in
  List.filter (fun v -> not (List.mem v bound)) (head_vars q)

let body_relations q =
  let add acc a = if List.mem a.Atom.rel acc then acc else a.Atom.rel :: acc in
  List.rev (List.fold_left add [] q.body)

let comparison_vars q =
  Term.vars (List.concat_map (fun c -> [ c.left; c.right ]) q.comparisons)

let is_safe q =
  q.body <> []
  &&
  let bound = body_vars q in
  List.for_all (fun v -> List.mem v bound) (comparison_vars q)

let has_existential_head q = existential_head_vars q <> []

let well_formed ~allow_existential_head q =
  if q.body = [] then Error "empty body"
  else
    let bound = body_vars q in
    match List.find_opt (fun v -> not (List.mem v bound)) (comparison_vars q) with
    | Some v -> Error (Printf.sprintf "comparison variable %s not bound by the body" v)
    | None ->
        if (not allow_existential_head) && has_existential_head q then
          Error
            (Printf.sprintf "existential head variable(s): %s"
               (String.concat ", " (existential_head_vars q)))
        else Ok ()

let eval_comparison_op op v1 v2 =
  let order_cmp check =
    (* Unknown (null- or hole-involving) order comparisons are false. *)
    if Value.is_null v1 || Value.is_null v2 || Value.is_hole v1 || Value.is_hole v2 then
      false
    else check (Value.compare v1 v2)
  in
  match op with
  | Eq -> Value.equal v1 v2
  | Neq -> not (Value.equal v1 v2)
  | Lt -> order_cmp (fun c -> c < 0)
  | Le -> order_cmp (fun c -> c <= 0)
  | Gt -> order_cmp (fun c -> c > 0)
  | Ge -> order_cmp (fun c -> c >= 0)

let string_of_op = function
  | Eq -> "="
  | Neq -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let compare_comparison c1 c2 =
  let c = Stdlib.compare c1.op c2.op in
  if c <> 0 then c
  else
    let c = Term.compare c1.left c2.left in
    if c <> 0 then c else Term.compare c1.right c2.right

let compare q1 q2 =
  let c = Atom.compare q1.head q2.head in
  if c <> 0 then c
  else
    let c = List.compare Atom.compare q1.body q2.body in
    if c <> 0 then c else List.compare compare_comparison q1.comparisons q2.comparisons

let equal q1 q2 = compare q1 q2 = 0

let pp_comparison ppf c =
  Fmt.pf ppf "%a %s %a" Term.pp c.left (string_of_op c.op) Term.pp c.right

let pp ppf q =
  let pp_body_item ppf = function
    | `Atom a -> Atom.pp ppf a
    | `Cmp c -> pp_comparison ppf c
  in
  let items =
    List.map (fun a -> `Atom a) q.body @ List.map (fun c -> `Cmp c) q.comparisons
  in
  Fmt.pf ppf "%a <- %a" Atom.pp q.head Fmt.(list ~sep:(any ", ") pp_body_item) items

let to_string q = Fmt.str "%a" pp q

(* Touch every constant so its canonical identity (intern slot, see
   {!Codb_relalg.Intern}) exists before the query is ever evaluated.
   The parallel runtime evaluates rules and standing queries inside a
   minting freeze; constants interned at installation time make that
   evaluation a read-only table hit. *)
let intern_constants q =
  let term = function
    | Term.Cst v -> ignore (Codb_relalg.Intern.pack v : int)
    | Term.Var _ -> ()
  in
  let atom (a : Atom.t) = List.iter term a.Atom.args in
  atom q.head;
  List.iter atom q.body;
  List.iter
    (fun c ->
      term c.left;
      term c.right)
    q.comparisons
