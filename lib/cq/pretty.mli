(** Printers producing the concrete syntax accepted by {!Parser}, so
    that [parse ∘ print] is the identity (up to layout) — a property
    the test suite checks on random configurations. *)

val literal : Codb_relalg.Value.t Fmt.t
(** Strings are quoted with double quotes and embedded quotes are doubled, the
    escape convention of {!Lexer}.  Marked nulls and holes have no
    concrete syntax; printing them raises [Invalid_argument]. *)

val term : Term.t Fmt.t

val atom : Atom.t Fmt.t

val comparison : Query.comparison Fmt.t

val query : Query.t Fmt.t
(** [head <- body-items] without a trailing [;]. *)

val constraint_body : Query.t Fmt.t
(** Just the body items (the denial form used inside node blocks). *)

val node_decl : Config.node_decl Fmt.t

val rule_decl : Config.rule_decl Fmt.t

val config : Config.t Fmt.t

val config_to_string : Config.t -> string
