type t = { rel : string; args : Term.t list }

let make rel args = { rel; args }

let arity a = List.length a.args

let vars a = Term.vars a.args

let compare a1 a2 =
  let c = String.compare a1.rel a2.rel in
  if c <> 0 then c else List.compare Term.compare a1.args a2.args

let equal a1 a2 = compare a1 a2 = 0

let pp ppf a =
  Fmt.pf ppf "%s(%a)" a.rel Fmt.(list ~sep:(any ", ") Term.pp) a.args

let to_string a = Fmt.str "%a" pp a
