module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple

type operand = Col of int | Const of Value.t

type pred = { p_left : operand; p_op : Query.comparison_op; p_right : operand }

type t = Any | One_of of pred list list

let any = Any

let is_any = function Any -> true | One_of _ -> false

let pred_count = function
  | Any -> 0
  | One_of alts -> List.fold_left (fun acc conj -> acc + List.length conj) 0 alts

let compare_operand o1 o2 =
  match (o1, o2) with
  | Col i, Col j -> Int.compare i j
  | Const a, Const b -> Value.compare a b
  | Col _, Const _ -> -1
  | Const _, Col _ -> 1

let compare_pred p1 p2 =
  let c = Stdlib.compare p1.p_op p2.p_op in
  if c <> 0 then c
  else
    let c = compare_operand p1.p_left p2.p_left in
    if c <> 0 then c else compare_operand p1.p_right p2.p_right

let equal_pred p1 p2 = compare_pred p1 p2 = 0

let rec dedup_sorted eq = function
  | a :: (b :: _ as rest) when eq a b -> dedup_sorted eq rest
  | a :: rest -> a :: dedup_sorted eq rest
  | [] -> []

let normalize = function
  | Any -> Any
  | One_of alts ->
      let alts =
        List.map (fun conj -> dedup_sorted equal_pred (List.sort compare_pred conj)) alts
      in
      (* an unconstrained alternative accepts everything *)
      if List.exists (fun conj -> conj = []) alts then Any
      else
        One_of
          (dedup_sorted
             (fun a b -> List.compare compare_pred a b = 0)
             (List.sort (List.compare compare_pred) alts))

let compare c1 c2 =
  match (normalize c1, normalize c2) with
  | Any, Any -> 0
  | Any, One_of _ -> -1
  | One_of _, Any -> 1
  | One_of a, One_of b -> List.compare (List.compare compare_pred) a b

let equal c1 c2 = compare c1 c2 = 0

(* --- derivation from a requesting query ----------------------------- *)

(* The constraint one atom imposes on the relation it reads: constants
   at their positions, equalities between repeated-variable positions,
   and the query's comparisons when every variable maps through this
   atom (first occurrence wins; the repeated-occurrence equalities keep
   the other positions consistent). *)
let conj_of_atom (q : Query.t) (atom : Atom.t) =
  let args = Array.of_list atom.Atom.args in
  let first_col = Hashtbl.create 8 in
  let preds = ref [] in
  Array.iteri
    (fun i term ->
      match term with
      | Term.Cst c -> preds := { p_left = Col i; p_op = Query.Eq; p_right = Const c } :: !preds
      | Term.Var v -> (
          match Hashtbl.find_opt first_col v with
          | None -> Hashtbl.add first_col v i
          | Some j ->
              preds := { p_left = Col j; p_op = Query.Eq; p_right = Col i } :: !preds))
    args;
  let operand_of_term = function
    | Term.Cst c -> Some (Const c)
    | Term.Var v -> Option.map (fun i -> Col i) (Hashtbl.find_opt first_col v)
  in
  List.iter
    (fun (c : Query.comparison) ->
      match (operand_of_term c.Query.left, operand_of_term c.Query.right) with
      (* constant-constant predicates constrain no column *)
      | Some (Const _), Some (Const _) -> ()
      | Some l, Some r -> preds := { p_left = l; p_op = c.Query.op; p_right = r } :: !preds
      | None, _ | _, None -> ())
    q.Query.comparisons;
  List.rev !preds

let of_query ?(max_preds = max_int) (q : Query.t) ~rel =
  match List.filter (fun a -> String.equal a.Atom.rel rel) q.Query.body with
  | [] -> Any
  | atoms -> (
      let constraint_ = normalize (One_of (List.map (conj_of_atom q) atoms)) in
      match constraint_ with
      | Any -> Any
      | One_of _ as c -> if pred_count c > max_preds then Any else c)

(* --- requester-faithful filtering ----------------------------------- *)

let value_at (tuple : Tuple.t) = function
  | Const v -> Some v
  | Col i -> if i >= 0 && i < Array.length tuple then Some tuple.(i) else None

let pred_holds tuple p =
  match (value_at tuple p.p_left, value_at tuple p.p_right) with
  | Some v1, Some v2 -> Query.eval_comparison_op p.p_op v1 v2
  (* malformed (arity mismatch): keep the tuple, never drop data *)
  | None, _ | _, None -> true

let conj_holds tuple conj = List.for_all (pred_holds tuple) conj

let matches c tuple =
  match c with
  | Any -> true
  | One_of alts -> List.exists (fun conj -> conj_holds tuple conj) alts

(* --- folding a head constraint into the rule body ------------------- *)

(* Map a column operand through the rule head.  [`Pushed t]: the
   position maps onto a body term, so the predicate can fold into the
   body.  [`Exist v]: the position carries an existential variable — on
   the wire it is a hole, so every comparison against it is already
   decided by the filter semantics (a fresh null equals only itself).
   [`Opaque]: out of range; only the output filter can judge it. *)
let term_of_operand ~head_args ~body_vs = function
  | Const v -> `Pushed (Term.Cst v)
  | Col i ->
      if i < 0 || i >= Array.length head_args then `Opaque
      else (
        match head_args.(i) with
        | Term.Cst c -> `Pushed (Term.Cst c)
        | Term.Var v -> if List.mem v body_vs then `Pushed (Term.Var v) else `Exist v)

let subst_term bindings = function
  | Term.Cst _ as t -> t
  | Term.Var v as t -> (
      match Subst.find v bindings with Some c -> Term.Cst c | None -> t)

let subst_atom bindings (a : Atom.t) =
  Atom.make a.Atom.rel (List.map (subst_term bindings) a.Atom.args)

let subst_comparison bindings (c : Query.comparison) =
  {
    c with
    Query.left = subst_term bindings c.Query.left;
    right = subst_term bindings c.Query.right;
  }

exception Contradiction

let specialize_rule c (rq : Query.t) =
  match normalize c with
  | Any -> `Unchanged
  | One_of [] -> `Unsatisfiable
  (* disjunctions do not fold into one conjunctive body; the output
     filter alone enforces them *)
  | One_of (_ :: _ :: _) -> `Unchanged
  | One_of [ conj ] -> (
      let head_args = Array.of_list rq.Query.head.Atom.args in
      let body_vs = Query.body_vars rq in
      try
        let bindings = ref Subst.empty in
        let extra = ref [] in
        let bind v value =
          match Subst.find v !bindings with
          | Some value' -> if not (Value.equal value value') then raise Contradiction
          | None -> bindings := Subst.bind v value !bindings
        in
        List.iter
          (fun p ->
            match
              ( term_of_operand ~head_args ~body_vs p.p_left,
                term_of_operand ~head_args ~body_vs p.p_right )
            with
            | `Opaque, _ | _, `Opaque -> () (* only the output filter can judge *)
            | `Exist a, `Exist b -> (
                (* two holes: the same variable co-refers (one fresh
                   null), distinct variables mint distinct nulls *)
                match p.p_op with
                | Query.Eq -> if not (String.equal a b) then raise Contradiction
                | Query.Neq -> if String.equal a b then raise Contradiction
                | Query.Lt | Query.Le | Query.Gt | Query.Ge -> raise Contradiction)
            | `Exist _, `Pushed _ | `Pushed _, `Exist _ -> (
                (* a fresh null never equals, precedes or follows any
                   body value or constant *)
                match p.p_op with
                | Query.Neq -> ()
                | Query.Eq | Query.Lt | Query.Le | Query.Gt | Query.Ge ->
                    raise Contradiction)
            | `Pushed (Term.Cst a), `Pushed (Term.Cst b) ->
                if not (Query.eval_comparison_op p.p_op a b) then raise Contradiction
            | `Pushed (Term.Var v), `Pushed (Term.Cst value) when p.p_op = Query.Eq ->
                bind v value
            | `Pushed (Term.Cst value), `Pushed (Term.Var v) when p.p_op = Query.Eq ->
                bind v value
            | `Pushed (Term.Var a), `Pushed (Term.Var b)
              when p.p_op = Query.Eq && String.equal a b ->
                ()
            | `Pushed left, `Pushed right ->
                extra := { Query.left; op = p.p_op; right } :: !extra)
          conj;
        (* resolve the derived comparisons under the bindings; fully
           ground ones decide now *)
        let residual =
          List.filter_map
            (fun cmp ->
              match subst_comparison !bindings cmp with
              | { Query.left = Term.Cst a; op; right = Term.Cst b } ->
                  if Query.eval_comparison_op op a b then None else raise Contradiction
              | cmp -> Some cmp)
            (List.rev !extra)
        in
        if Subst.equal !bindings Subst.empty && residual = [] then `Unchanged
        else begin
          let bindings = !bindings in
          let comparisons =
            List.map (subst_comparison bindings) rq.Query.comparisons
          in
          let comparison_equal c1 c2 =
            c1.Query.op = c2.Query.op
            && Term.equal c1.Query.left c2.Query.left
            && Term.equal c1.Query.right c2.Query.right
          in
          let fresh =
            List.filter
              (fun cmp -> not (List.exists (comparison_equal cmp) comparisons))
              residual
          in
          `Specialized
            (Query.make
               ~head:(subst_atom bindings rq.Query.head)
               ~body:(List.map (subst_atom bindings) rq.Query.body)
               ~comparisons:(comparisons @ fresh) ())
        end
      with Contradiction -> `Unsatisfiable)

(* --- subsumption (cache keying) ------------------------------------- *)

let conj_subsumes weaker stronger =
  List.for_all (fun p -> List.exists (equal_pred p) stronger) weaker

let subsumes cached requested =
  match (normalize cached, normalize requested) with
  | Any, _ -> true
  | One_of _, Any -> false
  | One_of cs, One_of rs ->
      List.for_all
        (fun r_conj -> List.exists (fun c_conj -> conj_subsumes c_conj r_conj) cs)
        rs

(* --- printing and sizing -------------------------------------------- *)

let pp_operand ppf = function
  | Col i -> Fmt.pf ppf "$%d" i
  | Const v -> Value.pp ppf v

let pp_pred ppf p =
  Fmt.pf ppf "%a %s %a" pp_operand p.p_left (Query.string_of_op p.p_op) pp_operand
    p.p_right

let pp ppf = function
  | Any -> Fmt.string ppf "*"
  | One_of [] -> Fmt.string ppf "none"
  | One_of alts ->
      Fmt.pf ppf "%a"
        Fmt.(list ~sep:(any " | ") (fun ppf conj -> pf ppf "[%a]" (list ~sep:(any ", ") pp_pred) conj))
        alts

let to_string c = Fmt.str "%a" pp c

let to_key c = to_string (normalize c)

let operand_bytes = function Col _ -> 2 | Const v -> 1 + Value.size_bytes v

let size_bytes = function
  | Any -> 1
  | One_of alts ->
      List.fold_left
        (fun acc conj ->
          acc + 2
          + List.fold_left
              (fun acc p -> acc + 1 + operand_bytes p.p_left + operand_bytes p.p_right)
              0 conj)
        2 alts
