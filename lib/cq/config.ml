module Schema = Codb_relalg.Schema
module Tuple = Codb_relalg.Tuple

type node_decl = {
  node_name : string;
  relations : Schema.t list;
  facts : (string * Tuple.t) list;
  mediator : bool;
  constraints : Query.t list;
}

type rule_decl = {
  rule_id : string;
  importer : string;
  source : string;
  rule_query : Query.t;
}

type t = { nodes : node_decl list; rules : rule_decl list }

let node cfg name = List.find_opt (fun n -> String.equal n.node_name name) cfg.nodes

let rules_importing_at cfg name =
  List.filter (fun r -> String.equal r.importer name) cfg.rules

let rules_sourced_at cfg name =
  List.filter (fun r -> String.equal r.source name) cfg.rules

let acquaintances cfg name =
  let add acc peer = if List.mem peer acc || String.equal peer name then acc else peer :: acc in
  let step acc r =
    if String.equal r.importer name then add acc r.source
    else if String.equal r.source name then add acc r.importer
    else acc
  in
  List.rev (List.fold_left step [] cfg.rules)

let empty = { nodes = []; rules = [] }

let merge c1 c2 = { nodes = c1.nodes @ c2.nodes; rules = c1.rules @ c2.rules }

let find_schema decl rel =
  List.find_opt (fun s -> String.equal s.Schema.rel_name rel) decl.relations

let duplicates names =
  let sorted = List.sort String.compare names in
  let rec loop acc = function
    | a :: (b :: _ as rest) ->
        if String.equal a b && not (List.mem a acc) then loop (a :: acc) rest
        else loop acc rest
    | [ _ ] | [] -> acc
  in
  loop [] sorted

let check_atom_against decl ~where ~who errors atom =
  match find_schema decl atom.Atom.rel with
  | None ->
      Printf.sprintf "%s: relation %s not in schema of %s" where atom.Atom.rel who
      :: errors
  | Some s ->
      if Atom.arity atom <> Schema.arity s then
        Printf.sprintf "%s: %s expects arity %d, got %d" where atom.Atom.rel
          (Schema.arity s) (Atom.arity atom)
        :: errors
      else errors

let validate cfg =
  let errors = [] in
  let errors =
    List.fold_left
      (fun errors dup -> Printf.sprintf "duplicate node %s" dup :: errors)
      errors
      (duplicates (List.map (fun n -> n.node_name) cfg.nodes))
  in
  let errors =
    List.fold_left
      (fun errors dup -> Printf.sprintf "duplicate rule %s" dup :: errors)
      errors
      (duplicates (List.map (fun r -> r.rule_id) cfg.rules))
  in
  let check_node errors decl =
    let errors =
      List.fold_left
        (fun errors dup ->
          Printf.sprintf "node %s: duplicate relation %s" decl.node_name dup :: errors)
        errors
        (duplicates (List.map (fun s -> s.Schema.rel_name) decl.relations))
    in
    let check_fact errors (rel, tuple) =
      match find_schema decl rel with
      | None ->
          Printf.sprintf "node %s: fact for unknown relation %s" decl.node_name rel
          :: errors
      | Some s ->
          if Schema.conforms s tuple then errors
          else
            Printf.sprintf "node %s: fact %s does not conform to %s" decl.node_name
              (Tuple.to_string tuple) (Schema.to_string s)
            :: errors
    in
    let errors = List.fold_left check_fact errors decl.facts in
    let check_constraint errors q =
      let errors =
        match Query.well_formed ~allow_existential_head:true q with
        | Ok () -> errors
        | Error reason ->
            Printf.sprintf "node %s: ill-formed constraint (%s)" decl.node_name reason
            :: errors
      in
      List.fold_left
        (check_atom_against decl
           ~where:(Printf.sprintf "node %s constraint" decl.node_name)
           ~who:decl.node_name)
        errors q.Query.body
    in
    List.fold_left check_constraint errors decl.constraints
  in
  let errors = List.fold_left check_node errors cfg.nodes in
  let check_rule errors r =
    let where = Printf.sprintf "rule %s" r.rule_id in
    match (node cfg r.importer, node cfg r.source) with
    | None, _ -> Printf.sprintf "%s: unknown importer node %s" where r.importer :: errors
    | _, None -> Printf.sprintf "%s: unknown source node %s" where r.source :: errors
    | Some imp, Some src ->
        let errors =
          if String.equal r.importer r.source then
            Printf.sprintf "%s: importer and source are the same node" where :: errors
          else errors
        in
        let errors =
          match Query.well_formed ~allow_existential_head:true r.rule_query with
          | Ok () -> errors
          | Error reason -> Printf.sprintf "%s: ill-formed (%s)" where reason :: errors
        in
        let errors =
          check_atom_against imp ~where:(where ^ " head") ~who:r.importer errors
            r.rule_query.Query.head
        in
        List.fold_left
          (check_atom_against src ~where:(where ^ " body") ~who:r.source)
          errors r.rule_query.Query.body
  in
  let errors = List.fold_left check_rule errors cfg.rules in
  match errors with [] -> Ok () | _ -> Error (List.rev errors)
