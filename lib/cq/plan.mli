(** Cost-based join planning for conjunctive queries.

    The planner consumes per-atom access-path summaries — relation
    size, index availability, optional per-column distinct-value
    estimates — and produces an execution order.  It greedily picks
    the atom with the smallest estimated candidate count under the
    bindings accumulated so far (est = size / Π distinct(ground col)
    under the usual independence assumption, or a fixed per-column
    selectivity when no statistics are available), records which
    ground columns to probe through an index, and pushes every
    comparison predicate to the earliest step after which all its
    variables are bound. *)

type atom_info = {
  ai_atom : Atom.t;
  ai_size : int;  (** relation cardinality *)
  ai_indexed : bool;  (** can this access path serve composite probes? *)
  ai_distinct : (int -> int) option;
      (** distinct values per column, when the store tracks them *)
}

type step = {
  st_pos : int;  (** position of the atom in the original query body *)
  st_atom : Atom.t;
  st_probe : int list;
      (** argument positions ground at this step, to be served by an
          index probe; [[]] means scan *)
  st_est : float;  (** estimated candidate tuples per incoming binding *)
  st_comparisons : Query.comparison list;
      (** comparisons that become fully bound at this step *)
  st_ranges : (int * Query.comparison_op * Codb_relalg.Value.t) list;
      (** sargable order predicates, oriented as [cell op const] on an
          argument position whose variable first binds at this step;
          a zone-map-capable scan may use them to skip chunks (see
          {!Codb_relalg.Relation.packed_view}) *)
}

type t = {
  pl_steps : step list;
  pl_pre : Query.comparison list;
      (** variable-free comparisons, checked once before joining *)
  pl_unbound : Query.comparison list;
      (** comparisons never fully bound by any step: the query has no
          answers (matching the legacy evaluator, which drops
          substitutions with pending comparisons) *)
}

val make : ?max_probe_cols:int -> atom_info list -> Query.comparison list -> t
(** [make infos comparisons] plans the body atoms described by [infos]
    (in query-body order) against the query's comparison predicates.
    [max_probe_cols] caps how many ground columns a probe may use
    (default unlimited); [~max_probe_cols:1] restricts the plan to
    single-column indexes — the ablation middle ground. *)

val order : t -> int list
(** Chosen atom order as positions into the original body. *)

val pp : t Fmt.t

val explain : Query.t -> t -> string
(** Human-readable plan description for the CLI [explain] command. *)
