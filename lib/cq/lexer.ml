type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW_NODE
  | KW_RULE
  | KW_AT
  | KW_RELATION
  | KW_FACT
  | KW_CONSTRAINT
  | KW_MEDIATOR
  | KW_TRUE
  | KW_FALSE
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | SEMI
  | ARROW
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

type positioned = { token : token; line : int }

exception Lex_error of { line : int; message : string }

let fail line fmt =
  Printf.ksprintf (fun message -> raise (Lex_error { line; message })) fmt

let keyword = function
  | "node" -> Some KW_NODE
  | "rule" -> Some KW_RULE
  | "at" -> Some KW_AT
  | "relation" -> Some KW_RELATION
  | "fact" -> Some KW_FACT
  | "constraint" -> Some KW_CONSTRAINT
  | "mediator" -> Some KW_MEDIATOR
  | "true" -> Some KW_TRUE
  | "false" -> Some KW_FALSE
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')

let is_digit c = c >= '0' && c <= '9'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 in
  let emit token = tokens := { token; line = !line } :: !tokens in
  let rec skip_line i = if i < n && input.[i] <> '\n' then skip_line (i + 1) else i in
  let rec lex i =
    if i >= n then emit EOF
    else
      match input.[i] with
      | '\n' ->
          incr line;
          lex (i + 1)
      | ' ' | '\t' | '\r' -> lex (i + 1)
      | '#' -> lex (skip_line i)
      | '/' when i + 1 < n && input.[i + 1] = '/' -> lex (skip_line i)
      | '{' ->
          emit LBRACE;
          lex (i + 1)
      | '}' ->
          emit RBRACE;
          lex (i + 1)
      | '(' ->
          emit LPAREN;
          lex (i + 1)
      | ')' ->
          emit RPAREN;
          lex (i + 1)
      | ',' ->
          emit COMMA;
          lex (i + 1)
      | ':' ->
          emit COLON;
          lex (i + 1)
      | ';' ->
          emit SEMI;
          lex (i + 1)
      | '=' ->
          emit EQ;
          lex (i + 1)
      | '!' when i + 1 < n && input.[i + 1] = '=' ->
          emit NEQ;
          lex (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '-' ->
          emit ARROW;
          lex (i + 2)
      | '<' when i + 1 < n && input.[i + 1] = '=' ->
          emit LE;
          lex (i + 2)
      | '<' ->
          emit LT;
          lex (i + 1)
      | '>' when i + 1 < n && input.[i + 1] = '=' ->
          emit GE;
          lex (i + 2)
      | '>' ->
          emit GT;
          lex (i + 1)
      | '"' -> lex_string (i + 1) (Buffer.create 16)
      | c when is_digit c || (c = '-' && i + 1 < n && is_digit input.[i + 1]) ->
          lex_number i
      | c when is_ident_start c -> lex_ident i
      | c -> fail !line "unexpected character %C" c
  and lex_string i buf =
    if i >= n then fail !line "unterminated string"
    else
      match input.[i] with
      | '"' when i + 1 < n && input.[i + 1] = '"' ->
          Buffer.add_char buf '"';
          lex_string (i + 2) buf
      | '"' ->
          emit (STRING (Buffer.contents buf));
          lex (i + 1)
      | '\n' -> fail !line "newline in string literal"
      | c ->
          Buffer.add_char buf c;
          lex_string (i + 1) buf
  and lex_number start =
    let rec scan i seen_dot =
      if i < n && (is_digit input.[i] || (input.[i] = '.' && not seen_dot)) then
        scan (i + 1) (seen_dot || input.[i] = '.')
      else (i, seen_dot)
    in
    let stop, seen_dot = scan (start + if input.[start] = '-' then 1 else 0) false in
    (* optional exponent: e / E, optional sign, digits *)
    let stop, seen_exp =
      if stop < n && (input.[stop] = 'e' || input.[stop] = 'E') then begin
        let after_sign =
          if stop + 1 < n && (input.[stop + 1] = '+' || input.[stop + 1] = '-') then
            stop + 2
          else stop + 1
        in
        if after_sign < n && is_digit input.[after_sign] then begin
          let rec digits i = if i < n && is_digit input.[i] then digits (i + 1) else i in
          (digits after_sign, true)
        end
        else (stop, false)
      end
      else (stop, false)
    in
    let is_float = seen_dot || seen_exp in
    let raw = String.sub input start (stop - start) in
    if is_float then
      match float_of_string_opt raw with
      | Some f ->
          emit (FLOAT f);
          lex stop
      | None -> fail !line "malformed float %s" raw
    else begin
      match int_of_string_opt raw with
      | Some v ->
          emit (INT v);
          lex stop
      | None -> fail !line "malformed int %s" raw
    end
  and lex_ident start =
    let rec scan i = if i < n && is_ident_char input.[i] then scan (i + 1) else i in
    let stop = scan start in
    let raw = String.sub input start (stop - start) in
    (match keyword raw with Some kw -> emit kw | None -> emit (IDENT raw));
    lex stop
  in
  lex 0;
  List.rev !tokens

let describe = function
  | IDENT s -> Printf.sprintf "identifier %s" s
  | INT i -> Printf.sprintf "integer %d" i
  | FLOAT f -> Printf.sprintf "float %g" f
  | STRING s -> Printf.sprintf "string %S" s
  | KW_NODE -> "'node'"
  | KW_RULE -> "'rule'"
  | KW_AT -> "'at'"
  | KW_RELATION -> "'relation'"
  | KW_FACT -> "'fact'"
  | KW_CONSTRAINT -> "'constraint'"
  | KW_MEDIATOR -> "'mediator'"
  | KW_TRUE -> "'true'"
  | KW_FALSE -> "'false'"
  | LBRACE -> "'{'"
  | RBRACE -> "'}'"
  | LPAREN -> "'('"
  | RPAREN -> "')'"
  | COMMA -> "','"
  | COLON -> "':'"
  | SEMI -> "';'"
  | ARROW -> "'<-'"
  | EQ -> "'='"
  | NEQ -> "'!='"
  | LT -> "'<'"
  | LE -> "'<='"
  | GT -> "'>'"
  | GE -> "'>='"
  | EOF -> "end of input"
