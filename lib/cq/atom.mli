(** Relational atoms [R(t1, ..., tn)]. *)

type t = { rel : string; args : Term.t list }

val make : string -> Term.t list -> t

val arity : t -> int

val vars : t -> string list
(** Variables in first-occurrence order, without duplicates. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : t Fmt.t

val to_string : t -> string
