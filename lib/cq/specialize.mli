(** Constraint pushdown for relevance-bounded query diffusion.

    A requester that needs tuples of relation [r] from an acquaintance
    knows more than "[r], please": its own query (or the already
    specialized rule it is serving) reads [r] through specific atoms
    whose constant positions, repeated variables and comparison
    predicates bound which tuples can possibly contribute to an
    answer.  This module computes that knowledge as a {e constraint
    set} over the columns of the requested relation, applies it as a
    filter at the data source, and folds it into a responder's own
    rule evaluation and fan-out so constraints compose transitively
    along the diffusion tree (the semi-join / magic-sets move).

    {2 Semantics}

    A constraint is interpreted against wire tuples, which may carry
    marked nulls and holes (existential placeholders that the
    requester will instantiate into fresh nulls).  {!matches} is
    {e requester-faithful}: it keeps a tuple exactly when the
    requester's own matching ({!Query.eval_comparison_op} plus
    {!Codb_relalg.Value.equal}) could still use it after hole
    instantiation — a hole compares like the fresh null it will
    become (equal only to the same hole of the same tuple, order
    comparisons unknown-false, [!=] against anything else true).
    Filtering at the source therefore never changes the answer set.

    Positions are {e unpushable} into a rule body when the rule head
    carries an existential variable there: the produced value is a
    fresh null about which the body knows nothing.  But the verdict of
    any comparison against such a position is already decided by the
    null semantics above — a fresh null equals only itself — so
    {!specialize_rule} resolves those predicates outright: [!=]
    against anything else is trivially true (dropped), everything else
    is trivially false (the whole rule is [`Unsatisfiable] and need
    not run).  The output filter still applies the full constraint
    soundly either way. *)

module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple

type operand =
  | Col of int  (** value at this column of the candidate tuple *)
  | Const of Value.t

type pred = { p_left : operand; p_op : Query.comparison_op; p_right : operand }

type t =
  | Any  (** unconstrained: every tuple is relevant *)
  | One_of of pred list list
      (** disjunction of conjunctions, one conjunct per atom through
          which the requester reads the relation; [One_of []] is
          provably empty (no tuple can contribute) *)

val any : t

val is_any : t -> bool

val pred_count : t -> int
(** Total predicates across all alternatives. *)

val of_query : ?max_preds:int -> Query.t -> rel:string -> t
(** The strongest pushable constraint on tuples of [rel] derived from
    how [q] reads it: per-column constants, repeated-variable
    equalities, and comparisons whose variables all occur within the
    atom.  [Any] when some atom over [rel] is unconstrained, when [q]
    does not read [rel] at all (conservative: the caller may route
    data we cannot see through), or when the constraint would exceed
    [max_preds] predicates (bounding request size). *)

val matches : t -> Tuple.t -> bool
(** Requester-faithful filter; see the module preamble.  Malformed
    predicates (column beyond the tuple's arity) conservatively
    keep the tuple. *)

val specialize_rule : t -> Query.t -> [ `Unsatisfiable | `Specialized of Query.t | `Unchanged ]
(** Fold a constraint on the rule's {e head tuples} into the rule
    query itself, so the responder evaluates a smaller join instead of
    filtering after the fact: equality predicates that map through
    non-existential head variables become constant substitutions
    (ground columns the planner probes), other mappable predicates
    become extra comparisons.  Predicates on existential head
    positions are decided in place: a hole co-refers with itself,
    differs from everything else, and defeats order comparisons — so
    e.g. an [=] against a constant there refutes the whole rule.
    [`Unsatisfiable] when any decided or pushable predicate is
    contradictory — no head tuple can pass the output filter, so the
    rule need not run (and need not fan out) at all.  [`Unchanged] for
    [Any], for multi-alternative constraints (the output filter alone
    handles disjunctions) and when nothing maps through the head.
    Out-of-range columns are skipped, never dropped from the output
    filter. *)

val subsumes : t -> t -> bool
(** [subsumes cached requested]: every tuple satisfying [requested]
    also satisfies [cached] (syntactic check: each requested
    alternative contains all predicates of some cached alternative).
    A cache entry computed under [cached] can then serve [requested]
    by re-filtering with {!matches}. *)

val normalize : t -> t
(** Canonical order: predicates sorted and de-duplicated within each
    alternative, alternatives sorted and de-duplicated. *)

val to_key : t -> string
(** Deterministic key for {!normalize}d constraints (cache keying). *)

val size_bytes : t -> int
(** Estimated wire size contribution (the pre-codec heuristic). *)

val equal : t -> t -> bool

val compare : t -> t -> int

val pp : Format.formatter -> t -> unit

val to_string : t -> string
