module Value = Codb_relalg.Value
module Schema = Codb_relalg.Schema

exception Parse_error of { line : int; message : string }

type state = { tokens : Lexer.positioned array; mutable pos : int }

let fail_at line fmt =
  Printf.ksprintf (fun message -> raise (Parse_error { line; message })) fmt

let current st = st.tokens.(st.pos)

let peek st = (current st).Lexer.token

let peek2 st =
  if st.pos + 1 < Array.length st.tokens then Some st.tokens.(st.pos + 1).Lexer.token
  else None

let line st = (current st).Lexer.line

let advance st = st.pos <- st.pos + 1

let expect st token =
  if peek st = token then advance st
  else fail_at (line st) "expected %s, found %s" (Lexer.describe token)
      (Lexer.describe (peek st))

let expect_ident st =
  match peek st with
  | Lexer.IDENT name ->
      advance st;
      name
  | other -> fail_at (line st) "expected an identifier, found %s" (Lexer.describe other)

let accept st token =
  if peek st = token then begin
    advance st;
    true
  end
  else false

let parse_literal st =
  match peek st with
  | Lexer.INT i ->
      advance st;
      Value.Int i
  | Lexer.FLOAT f ->
      advance st;
      Value.Float f
  | Lexer.STRING s ->
      advance st;
      Value.Str s
  | Lexer.KW_TRUE ->
      advance st;
      Value.Bool true
  | Lexer.KW_FALSE ->
      advance st;
      Value.Bool false
  | other -> fail_at (line st) "expected a literal, found %s" (Lexer.describe other)

let parse_term st =
  match peek st with
  | Lexer.IDENT name ->
      advance st;
      Term.Var name
  | Lexer.INT _ | Lexer.FLOAT _ | Lexer.STRING _ | Lexer.KW_TRUE | Lexer.KW_FALSE ->
      Term.Cst (parse_literal st)
  | other -> fail_at (line st) "expected a term, found %s" (Lexer.describe other)

let rec parse_comma_list st parse_item =
  let item = parse_item st in
  if accept st Lexer.COMMA then item :: parse_comma_list st parse_item else [ item ]

let parse_atom st =
  let rel = expect_ident st in
  expect st Lexer.LPAREN;
  let args = parse_comma_list st parse_term in
  expect st Lexer.RPAREN;
  Atom.make rel args

let comparison_op st =
  match peek st with
  | Lexer.EQ ->
      advance st;
      Some Query.Eq
  | Lexer.NEQ ->
      advance st;
      Some Query.Neq
  | Lexer.LT ->
      advance st;
      Some Query.Lt
  | Lexer.LE ->
      advance st;
      Some Query.Le
  | Lexer.GT ->
      advance st;
      Some Query.Gt
  | Lexer.GE ->
      advance st;
      Some Query.Ge
  | _ -> None

type body_item = B_atom of Atom.t | B_cmp of Query.comparison

let parse_body_item st =
  match (peek st, peek2 st) with
  | Lexer.IDENT _, Some Lexer.LPAREN -> B_atom (parse_atom st)
  | _ ->
      let left = parse_term st in
      let op =
        match comparison_op st with
        | Some op -> op
        | None ->
            fail_at (line st) "expected a comparison operator, found %s"
              (Lexer.describe (peek st))
      in
      let right = parse_term st in
      B_cmp { Query.left; op; right }

let split_body items =
  let step (atoms, cmps) = function
    | B_atom a -> (a :: atoms, cmps)
    | B_cmp c -> (atoms, c :: cmps)
  in
  let atoms, cmps = List.fold_left step ([], []) items in
  (List.rev atoms, List.rev cmps)

let parse_query_from st =
  let head = parse_atom st in
  expect st Lexer.ARROW;
  let items = parse_comma_list st parse_body_item in
  let body, comparisons = split_body items in
  Query.make ~head ~body ~comparisons ()

let parse_attr st =
  let name = expect_ident st in
  expect st Lexer.COLON;
  let at_line = line st in
  let ty_name = expect_ident st in
  match Value.ty_of_string ty_name with
  | Some ty -> (name, ty)
  | None -> fail_at at_line "unknown type %s (expected int, float, string or bool)" ty_name

let parse_node_item st =
  match peek st with
  | Lexer.KW_RELATION ->
      advance st;
      let at_line = line st in
      let rel = expect_ident st in
      expect st Lexer.LPAREN;
      let attrs = parse_comma_list st parse_attr in
      expect st Lexer.RPAREN;
      let _ = accept st Lexer.SEMI in
      let schema =
        try Schema.make rel attrs
        with Invalid_argument msg -> fail_at at_line "%s" msg
      in
      `Relation schema
  | Lexer.KW_FACT ->
      advance st;
      let rel = expect_ident st in
      expect st Lexer.LPAREN;
      let values = parse_comma_list st parse_literal in
      expect st Lexer.RPAREN;
      let _ = accept st Lexer.SEMI in
      `Fact (rel, Array.of_list values)
  | Lexer.KW_CONSTRAINT ->
      advance st;
      let items = parse_comma_list st parse_body_item in
      expect st Lexer.SEMI;
      let body, comparisons = split_body items in
      (* A denial constraint is represented as a query with a dummy
         0-ary head; it is violated when the body has an answer. *)
      `Constraint (Query.make ~head:(Atom.make "_violated" []) ~body ~comparisons ())
  | other -> fail_at (line st) "expected relation, fact or constraint, found %s"
      (Lexer.describe other)

let parse_node_decl st =
  expect st Lexer.KW_NODE;
  let node_name = expect_ident st in
  let mediator = accept st Lexer.KW_MEDIATOR in
  expect st Lexer.LBRACE;
  let rec items acc =
    if accept st Lexer.RBRACE then List.rev acc else items (parse_node_item st :: acc)
  in
  let parsed = items [] in
  let relations =
    List.filter_map (function `Relation s -> Some s | `Fact _ | `Constraint _ -> None) parsed
  in
  let facts =
    List.filter_map (function `Fact f -> Some f | `Relation _ | `Constraint _ -> None) parsed
  in
  let constraints =
    List.filter_map (function `Constraint c -> Some c | `Relation _ | `Fact _ -> None) parsed
  in
  { Config.node_name; relations; facts; mediator; constraints }

let parse_rule_decl st =
  expect st Lexer.KW_RULE;
  let rule_id = expect_ident st in
  expect st Lexer.KW_AT;
  let importer = expect_ident st in
  expect st Lexer.COLON;
  let head = parse_atom st in
  expect st Lexer.ARROW;
  let source = expect_ident st in
  expect st Lexer.COLON;
  let items = parse_comma_list st parse_body_item in
  expect st Lexer.SEMI;
  let body, comparisons = split_body items in
  {
    Config.rule_id;
    importer;
    source;
    rule_query = Query.make ~head ~body ~comparisons ();
  }

let parse_config_tokens st =
  let rec decls nodes rules =
    match peek st with
    | Lexer.EOF -> { Config.nodes = List.rev nodes; rules = List.rev rules }
    | Lexer.KW_NODE -> decls (parse_node_decl st :: nodes) rules
    | Lexer.KW_RULE ->
        let rule = parse_rule_decl st in
        decls nodes (rule :: rules)
    | other ->
        fail_at (line st) "expected 'node' or 'rule', found %s" (Lexer.describe other)
  in
  decls [] []

let with_tokens input f =
  let tokens = Array.of_list (Lexer.tokenize input) in
  f { tokens; pos = 0 }

let parse_config_exn input = with_tokens input parse_config_tokens

let parse_config input =
  match parse_config_exn input with
  | cfg -> Ok cfg
  | exception Parse_error { line; message } ->
      Error (Printf.sprintf "parse error at line %d: %s" line message)
  | exception Lexer.Lex_error { line; message } ->
      Error (Printf.sprintf "lexical error at line %d: %s" line message)

let load_config input =
  match parse_config input with
  | Error e -> Error [ e ]
  | Ok cfg -> (
      match Config.validate cfg with Ok () -> Ok cfg | Error errors -> Error errors)

let parse_fact input =
  let parse st =
    let rel = expect_ident st in
    expect st Lexer.LPAREN;
    let values = parse_comma_list st parse_literal in
    expect st Lexer.RPAREN;
    let _ = accept st Lexer.SEMI in
    expect st Lexer.EOF;
    (rel, Array.of_list values)
  in
  match with_tokens input parse with
  | fact -> Ok fact
  | exception Parse_error { line; message } ->
      Error (Printf.sprintf "parse error at line %d: %s" line message)
  | exception Lexer.Lex_error { line; message } ->
      Error (Printf.sprintf "lexical error at line %d: %s" line message)

let parse_query input =
  let parse st =
    let q = parse_query_from st in
    let _ = accept st Lexer.SEMI in
    expect st Lexer.EOF;
    q
  in
  match with_tokens input parse with
  | q -> Ok q
  | exception Parse_error { line; message } ->
      Error (Printf.sprintf "parse error at line %d: %s" line message)
  | exception Lexer.Lex_error { line; message } ->
      Error (Printf.sprintf "lexical error at line %d: %s" line message)
