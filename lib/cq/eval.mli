(** Evaluation of conjunctive queries over a tuple source.

    The evaluator is decoupled from {!Codb_relalg.Database} through the
    {!type:source} abstraction so that the same code runs over local
    databases, per-query overlays, and the Wrapper's temporary stores
    on mediator nodes.

    Two entry points matter to the coDB algorithms:

    - {!answers} — full evaluation, used when a node first receives an
      update or query request and answers from its local data;
    - {!delta_answers} — {e semi-naive} evaluation used on every
      subsequent delta: given tuples [T'] that were just added to
      relation [R], it derives exactly the substitutions that use at
      least one tuple of [T'], the paper's "incoming links dependent on
      O are computed by substituting R by T'" step, generalised to be
      correct in the presence of self-joins. *)

type rows = {
  all : unit -> Codb_relalg.Tuple.t list;  (** every tuple *)
  size : int;  (** cardinality, used by the join-order heuristic *)
  probe : (int -> Codb_relalg.Value.t -> Codb_relalg.Tuple.t list) option;
      (** equality probe on one column, when the backing store has (or
          can build) a hash index; [None] falls back to scanning *)
}
(** Access path to one relation's tuples. *)

type source = string -> rows
(** Access paths by relation name.  Unknown relations must return
    {!empty_rows}. *)

val empty_rows : rows

val rows_of_list : Codb_relalg.Tuple.t list -> rows
(** Scan-only access path over a list (used for deltas and frozen
    canonical databases). *)

val of_database : Codb_relalg.Database.t -> source
(** Probing access paths backed by {!Codb_relalg.Relation.lookup}'s
    lazy hash indexes. *)

val source_of_alist : (string * Codb_relalg.Tuple.t list) list -> source
(** Scan-only source over an association list. *)

val answers : source -> Query.t -> Subst.t list
(** All substitutions of the body variables satisfying body atoms and
    comparisons.  The result may contain substitutions that project to
    the same head tuple; projection and de-duplication are the
    caller's business (see {!Apply}). *)

val delta_answers :
  ?naive:bool ->
  source ->
  delta_rel:string ->
  delta:Codb_relalg.Tuple.t list ->
  Query.t ->
  Subst.t list
(** Semi-naive evaluation after [delta] was inserted into [delta_rel].
    The [source] must already reflect the insertion.  If the query
    does not mention [delta_rel], the result is [[]].

    With [~naive:true] (ablation) the query is instead re-evaluated
    from scratch with {!answers} — correct but wasteful, and the
    baseline of experiment E8. *)

val answer_tuples : source -> Query.t -> Codb_relalg.Tuple.t list
(** Evaluate a {e user} query: project the answers on the head and
    de-duplicate.  @raise Invalid_argument if the head has existential
    variables (use {!Apply.head_tuples} for GLAV rule heads). *)

val certain : Codb_relalg.Tuple.t list -> Codb_relalg.Tuple.t list
(** The null-free (certain) answers among a list of answer tuples. *)
