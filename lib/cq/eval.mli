(** Evaluation of conjunctive queries over a tuple source.

    The evaluator is decoupled from {!Codb_relalg.Database} through the
    {!type:source} abstraction so that the same code runs over local
    databases, per-query overlays, and the Wrapper's temporary stores
    on mediator nodes.

    Two execution strategies share the same matching core:

    - the {e planned} path (default) runs each join through
      {!Plan.make}: atoms ordered by estimated selectivity, ground
      column sets probed through composite hash indexes, comparisons
      evaluated at their earliest ground position;
    - the {e legacy} path ([~planner:false]) keeps the original
      left-to-right greedy order with single-column probes — the
      ablation baseline, and the reference semantics the planned path
      must reproduce exactly.

    Two entry points matter to the coDB algorithms:

    - {!answers} — full evaluation, used when a node first receives an
      update or query request and answers from its local data;
    - {!delta_answers} — {e semi-naive} evaluation used on every
      subsequent delta: given tuples [T'] that were just added to
      relation [R], it derives exactly the substitutions that use at
      least one tuple of [T'], the paper's "incoming links dependent on
      O are computed by substituting R by T'" step, generalised to be
      correct in the presence of self-joins. *)

type rows = {
  all : unit -> Codb_relalg.Tuple.t list;  (** every tuple *)
  all_arr : (unit -> Codb_relalg.Tuple.t array) option;
      (** array variant of [all] for the join inner loop; when absent
          the evaluator converts the list once per scan *)
  size : int;  (** cardinality, used by both join-order strategies *)
  probe : (int -> Codb_relalg.Value.t -> Codb_relalg.Tuple.t list) option;
      (** equality probe on one column, when the backing store has (or
          can build) a hash index; [None] falls back to scanning *)
  probe_arr : (int -> Codb_relalg.Value.t -> Codb_relalg.Tuple.t array) option;
      (** array variant of [probe] ({!Codb_relalg.Relation.lookup_arr}):
          no list spine allocated per probe *)
  probe_cols :
    ((int * Codb_relalg.Value.t) list -> Codb_relalg.Tuple.t list) option;
      (** composite probe on a set of column bindings, served by
          {!Codb_relalg.Relation.lookup_cols}; [None] for plain tuple
          lists *)
  probe_cols_arr :
    ((int * Codb_relalg.Value.t) list -> Codb_relalg.Tuple.t array) option;
      (** array variant of [probe_cols]
          ({!Codb_relalg.Relation.lookup_cols_arr}) *)
  distinct : (int -> int) option;
      (** per-column distinct-value estimate for the planner's
          selectivity model *)
  arity : int option;
      (** tuple width when uniform, letting the evaluator reject
          wrong-arity atoms once instead of per candidate tuple *)
  packed : Codb_relalg.Relation.packed_view option;
      (** zero-copy packed access ({!Codb_relalg.Relation.packed_view}).
          When {e every} atom of a planned join carries one, the join
          runs entirely on packed ints — int-slot substitutions,
          row-id candidate sets, packed probes — and boxes a
          {!Subst.t} only per full match.  Must describe the same
          tuples as [all]. *)
}
(** Access path to one relation's tuples.  The [_arr] fields are
    optional accelerators: semantics must match their list twins (same
    tuples, any order); the evaluator prefers them and falls back to
    the lists otherwise. *)

type source = string -> rows
(** Access paths by relation name.  Unknown relations must return
    {!empty_rows}. *)

type counters = {
  probes : int;  (** candidate sets served by an index probe *)
  scans : int;  (** candidate sets served by a full scan *)
  planned : int;  (** joins executed through a cost-based plan *)
  legacy : int;  (** joins executed through the legacy greedy order *)
  zone_visited : int;
      (** chunks a zone-mapped scan actually walked (pruned excluded) *)
  zone_pruned : int;  (** chunks skipped outright by zone-map bounds *)
}
(** Global access-path counters (monotonic since {!reset_counters}).
    Callers wanting per-evaluation numbers snapshot before and after,
    like [Value.null_counter]. *)

val counters : unit -> counters

val reset_counters : unit -> unit

val empty_rows : rows

val rows_of_list : ?arity:int -> Codb_relalg.Tuple.t list -> rows
(** Scan-only access path over a list (used for deltas and frozen
    canonical databases).  When the rows share one arity the view also
    carries a packed columnar image, so joins mixing stored relations
    with delta feeds run on the packed int core; the planner still
    sees the source as unindexed (no probe columns), keeping plans and
    probe/scan counters identical to the boxed view.  [arity] lets an
    empty feed declare its width and stay packed-joinable. *)

val of_database : ?index_budget:int -> Codb_relalg.Database.t -> source
(** Probing access paths backed by {!Codb_relalg.Relation}'s lazy,
    incrementally maintained hash indexes.  [index_budget], when
    given, caps the number of indexes per relation (see
    {!Codb_relalg.Relation.set_index_budget}). *)

val source_of_alist : (string * Codb_relalg.Tuple.t list) list -> source
(** Scan-only source over an association list. *)

val answers :
  ?planner:bool ->
  ?zone_maps:bool ->
  ?max_probe_cols:int ->
  source ->
  Query.t ->
  Subst.t list
(** All substitutions of the body variables satisfying body atoms and
    comparisons.  The result may contain substitutions that project to
    the same head tuple; projection and de-duplication are the
    caller's business (see {!Apply}).  [~planner:false] selects the
    legacy left-to-right evaluator; [max_probe_cols] caps probe width
    (see {!Plan.make}).  [~zone_maps:true] lets packed scans consult
    per-chunk min/max summaries to skip chunks ruled out by the plan's
    sargable order predicates ({!Plan.step.st_ranges}) and constant
    equality bindings — answers are identical either way, only the
    [zone_*] counters move. *)

val plan_for : ?max_probe_cols:int -> source -> Query.t -> Plan.t
(** The plan {!answers} would execute — for the CLI [explain]
    subcommand and tests. *)

val delta_answers :
  ?naive:bool ->
  ?planner:bool ->
  ?zone_maps:bool ->
  ?max_probe_cols:int ->
  source ->
  delta_rel:string ->
  delta:Codb_relalg.Tuple.t list ->
  Query.t ->
  Subst.t list
(** Semi-naive evaluation after [delta] was inserted into [delta_rel].
    The [source] must already reflect the insertion.  If the query
    does not mention [delta_rel], the result is [[]].

    With [~naive:true] (ablation) the query is instead re-evaluated
    from scratch with {!answers} — correct but wasteful, and the
    baseline of experiment E8. *)

val answer_tuples :
  ?planner:bool ->
  ?zone_maps:bool ->
  ?max_probe_cols:int ->
  source ->
  Query.t ->
  Codb_relalg.Tuple.t list
(** Evaluate a {e user} query: project the answers on the head and
    de-duplicate.  @raise Invalid_argument if the head has existential
    variables (use {!Apply.head_tuples} for GLAV rule heads). *)

val certain : Codb_relalg.Tuple.t list -> Codb_relalg.Tuple.t list
(** The null-free (certain) answers among a list of answer tuples. *)
