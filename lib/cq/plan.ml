(* Cost-based join planning for conjunctive queries.

   The planner works on per-atom access-path summaries (size, index
   availability, per-column distinct-value estimates) supplied by the
   evaluator, so it has no dependency on any particular store.  It
   greedily picks the atom with the smallest estimated candidate count
   under the bindings accumulated so far, records the ground column
   set to probe, and pushes every comparison predicate to the earliest
   step after which it is fully bound. *)

type atom_info = {
  ai_atom : Atom.t;
  ai_size : int;
  ai_indexed : bool;
  ai_distinct : (int -> int) option;
}

type step = {
  st_pos : int;  (* position of the atom in the original body *)
  st_atom : Atom.t;
  st_probe : int list;  (* argument positions ground at this step *)
  st_est : float;  (* estimated candidates per incoming binding *)
  st_comparisons : Query.comparison list;  (* fully bound after this step *)
  st_ranges : (int * Query.comparison_op * Codb_relalg.Value.t) list;
      (* sargable order predicates oriented as [cell op const]: the
         variable first binds at this step, at the named argument
         position — the evaluator may fold them into chunk-level
         zone-map pruning of a scan *)
}

type t = {
  pl_steps : step list;
  pl_pre : Query.comparison list;  (* variable-free: checked once, up front *)
  pl_unbound : Query.comparison list;  (* never fully bound: query is empty *)
}

module Var_set = Set.Make (String)

(* Default selectivity of matching one already-ground column when the
   access path has no distinct-value statistics (pure tuple lists,
   e.g. deltas): a conventional 1/10 per bound column. *)
let default_selectivity = 0.1

let term_ground bound = function
  | Term.Cst _ -> true
  | Term.Var v -> Var_set.mem v bound

let ground_cols bound (atom : Atom.t) =
  let _, cols =
    List.fold_left
      (fun (i, acc) term ->
        (i + 1, if term_ground bound term then i :: acc else acc))
      (0, []) atom.Atom.args
  in
  List.rev cols

let estimate info bound =
  let cols = ground_cols bound info.ai_atom in
  let size = float_of_int info.ai_size in
  let shrink est col =
    match info.ai_distinct with
    | Some distinct ->
        let d = max 1 (distinct col) in
        est /. float_of_int d
    | None -> est *. default_selectivity
  in
  (cols, List.fold_left shrink size cols)

let comparison_variables (c : Query.comparison) =
  Term.vars [ c.Query.left; c.Query.right ]

let comparison_bound bound c =
  List.for_all (fun v -> Var_set.mem v bound) (comparison_variables c)

let rec take n = function
  | x :: rest when n > 0 -> x :: take (n - 1) rest
  | _ -> []

let make ?(max_probe_cols = max_int) infos comparisons =
  let pre, rest = List.partition (fun c -> comparison_variables c = []) comparisons in
  let rec pick bound pending acc = function
    | [] -> (List.rev acc, pending)
    | remaining ->
        let scored =
          List.map
            (fun (pos, info) ->
              let cols, est = estimate info bound in
              (pos, info, cols, est))
            remaining
        in
        let better (p1, i1, c1, e1) (p2, i2, c2, e2) =
          (* smaller estimate wins; tie-break on more ground columns,
             index availability, smaller relation, body order *)
          let cmp = Float.compare e1 e2 in
          if cmp <> 0 then cmp < 0
          else
            let cmp = Int.compare (List.length c2) (List.length c1) in
            if cmp <> 0 then cmp < 0
            else
              let cmp = Bool.compare i2.ai_indexed i1.ai_indexed in
              if cmp <> 0 then cmp < 0
              else
                let cmp = Int.compare i1.ai_size i2.ai_size in
                if cmp <> 0 then cmp < 0 else p1 < p2
        in
        let best =
          match scored with
          | first :: others ->
              List.fold_left (fun b c -> if better c b then c else b) first others
          | [] -> assert false
        in
        let pos, info, cols, est = best in
        let before = bound in
        let bound =
          List.fold_left (fun b v -> Var_set.add v b) bound (Atom.vars info.ai_atom)
        in
        let now_bound, pending = List.partition (comparison_bound bound) pending in
        (* Order predicates between a variable first bound at this step
           and a constant are sargable: orient them as [cell op const]
           on the variable's first argument position, so the evaluator
           can skip whole chunks before matching a single row. *)
        let flip = function
          | Query.Lt -> Query.Gt
          | Query.Le -> Query.Ge
          | Query.Gt -> Query.Lt
          | Query.Ge -> Query.Le
          | (Query.Eq | Query.Neq) as op -> op
        in
        let arg_pos v =
          let rec find i = function
            | [] -> None
            | Term.Var v' :: _ when String.equal v' v -> Some i
            | _ :: rest -> find (i + 1) rest
          in
          find 0 info.ai_atom.Atom.args
        in
        let ranges =
          List.filter_map
            (fun (c : Query.comparison) ->
              let sargable op v k =
                if Var_set.mem v before then None
                else Option.map (fun j -> (j, op, k)) (arg_pos v)
              in
              match (c.Query.op, c.Query.left, c.Query.right) with
              | (Query.Lt | Query.Le | Query.Gt | Query.Ge), Term.Var v, Term.Cst k
                ->
                  sargable c.Query.op v k
              | (Query.Lt | Query.Le | Query.Gt | Query.Ge), Term.Cst k, Term.Var v
                ->
                  sargable (flip c.Query.op) v k
              | _ -> None)
            now_bound
        in
        let step =
          {
            st_pos = pos;
            st_atom = info.ai_atom;
            st_probe = (if info.ai_indexed then take max_probe_cols cols else []);
            st_est = est;
            st_comparisons = now_bound;
            st_ranges = ranges;
          }
        in
        pick bound pending (step :: acc)
          (List.filter (fun (p, _) -> p <> pos) remaining)
  in
  let steps, unbound =
    pick Var_set.empty rest [] (List.mapi (fun pos info -> (pos, info)) infos)
  in
  { pl_steps = steps; pl_pre = pre; pl_unbound = unbound }

let order t = List.map (fun s -> s.st_pos) t.pl_steps

let pp_cols ppf cols =
  Fmt.pf ppf "[%a]" Fmt.(list ~sep:(any ",") int) cols

let pp_step ppf s =
  Fmt.pf ppf "%a  %s est %.2f%a%a"
    (fun ppf -> function
      | [] -> Fmt.pf ppf "scan      "
      | cols -> Fmt.pf ppf "probe %a" pp_cols cols)
    s.st_probe
    (Atom.to_string s.st_atom)
    s.st_est
    Fmt.(
      list ~sep:nop (fun ppf c -> Fmt.pf ppf ", then %a" Query.pp_comparison c))
    s.st_comparisons
    Fmt.(
      list ~sep:nop (fun ppf (col, op, k) ->
          Fmt.pf ppf ", zone col %d %s %s" col (Query.string_of_op op)
            (Codb_relalg.Value.to_string k)))
    s.st_ranges

let pp ppf t =
  let numbered = List.mapi (fun i s -> (i + 1, s)) t.pl_steps in
  Fmt.pf ppf "@[<v>%a%a%a@]"
    Fmt.(
      list ~sep:cut (fun ppf (i, s) -> Fmt.pf ppf "%2d. %a" i pp_step s))
    numbered
    Fmt.(
      list ~sep:nop (fun ppf c ->
          Fmt.pf ppf "@,pre-check %a" Query.pp_comparison c))
    t.pl_pre
    Fmt.(
      list ~sep:nop (fun ppf c ->
          Fmt.pf ppf "@,unbound comparison %a: no answers" Query.pp_comparison c))
    t.pl_unbound

let explain q t = Fmt.str "@[<v>plan for %a:@,%a@]" Query.pp q pp t
