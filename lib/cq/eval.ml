module Tuple = Codb_relalg.Tuple
module Value = Codb_relalg.Value
module Relation = Codb_relalg.Relation
module Database = Codb_relalg.Database
module Tuple_set = Relation.Tuple_set

type rows = {
  all : unit -> Tuple.t list;
  size : int;
  probe : (int -> Value.t -> Tuple.t list) option;
  probe_cols : ((int * Value.t) list -> Tuple.t list) option;
  distinct : (int -> int) option;
  arity : int option;
}

type source = string -> rows

(* Access-path counters, global like [Value.null_counter]: callers
   that want per-query numbers snapshot around an evaluation. *)
type counters = {
  probes : int;  (** candidate sets served by an index probe *)
  scans : int;  (** candidate sets served by a full scan *)
  planned : int;  (** joins executed through a cost-based plan *)
  legacy : int;  (** joins executed through the legacy greedy order *)
}

let probe_count = ref 0
let scan_count = ref 0
let planned_count = ref 0
let legacy_count = ref 0

let counters () =
  {
    probes = !probe_count;
    scans = !scan_count;
    planned = !planned_count;
    legacy = !legacy_count;
  }

let reset_counters () =
  probe_count := 0;
  scan_count := 0;
  planned_count := 0;
  legacy_count := 0

let empty_rows =
  {
    all = (fun () -> []);
    size = 0;
    probe = None;
    probe_cols = None;
    distinct = None;
    arity = None;
  }

let rows_of_list tuples =
  let arity =
    match tuples with
    | [] -> None
    | first :: rest ->
        let a = Array.length first in
        if List.for_all (fun t -> Array.length t = a) rest then Some a else None
  in
  {
    all = (fun () -> tuples);
    size = List.length tuples;
    probe = None;
    probe_cols = None;
    distinct = None;
    arity;
  }

let of_database ?index_budget db rel =
  match Database.relation_opt db rel with
  | None -> empty_rows
  | Some r ->
      (match index_budget with
      | Some budget -> Relation.set_index_budget r budget
      | None -> ());
      let arity = Codb_relalg.Schema.arity (Relation.schema r) in
      let in_range col = col >= 0 && col < arity in
      let probe col value =
        (* an atom of the wrong arity matches nothing; don't let the
           index raise on its out-of-range columns *)
        if in_range col then Relation.lookup r ~col value else []
      in
      let probe_cols bindings =
        if List.for_all (fun (col, _) -> in_range col) bindings then
          Relation.lookup_cols r bindings
        else []
      in
      let distinct col =
        if in_range col then Relation.distinct_count r ~col else 1
      in
      {
        all = (fun () -> Relation.to_list r);
        size = Relation.cardinal r;
        probe = Some probe;
        probe_cols = Some probe_cols;
        distinct = Some distinct;
        arity = Some arity;
      }

let source_of_alist alist rel =
  match List.assoc_opt rel alist with
  | Some tuples -> rows_of_list tuples
  | None -> empty_rows

(* Extend [subst] by matching the atom's arguments (pre-flattened into
   an array, so the arity check is O(1) and done once per atom, not
   once per candidate tuple) against a stored tuple.  Constants and
   already-bound variables must agree with the stored value (marked
   nulls agree only with themselves). *)
let match_args subst args tuple =
  let n = Array.length args in
  let rec loop i subst =
    if i = n then Some subst
    else
      match args.(i) with
      | Term.Cst c ->
          if Value.equal c tuple.(i) then loop (i + 1) subst else None
      | Term.Var v -> (
          match Subst.find v subst with
          | Some bound ->
              if Value.equal bound tuple.(i) then loop (i + 1) subst else None
          | None -> loop (i + 1) (Subst.bind v tuple.(i) subst))
  in
  loop 0 subst

(* One body atom, prepared for the join loop: argument array for O(1)
   matching, access path, and (planned path only) the probe column set
   and the comparisons that become ground at this step. *)
type prepared = {
  p_args : Term.t array;
  p_rows : rows;
  p_probe : int list;
  p_comparisons : Query.comparison list;
}

let prepare ?(probe = []) ?(comparisons = []) atom rows =
  {
    p_args = Array.of_list atom.Atom.args;
    p_rows = rows;
    p_probe = probe;
    p_comparisons = comparisons;
  }

(* A prepared atom whose arity disagrees with its relation matches
   nothing: detect it once, before the join loop runs. *)
let arity_mismatch p =
  match p.p_rows.arity with
  | Some a -> Array.length p.p_args <> a
  | None -> false

(* Candidate tuples for an atom under the current bindings.  The
   legacy path probes a single-column index on the first ground
   argument position; the planned path probes the plan's column set
   through the composite index. *)
let candidates_legacy subst p =
  match p.p_rows.probe with
  | None ->
      incr scan_count;
      p.p_rows.all ()
  | Some probe ->
      let n = Array.length p.p_args in
      let rec first_ground i =
        if i = n then None
        else
          match p.p_args.(i) with
          | Term.Cst c -> Some (i, c)
          | Term.Var v -> (
              match Subst.find v subst with
              | Some value -> Some (i, value)
              | None -> first_ground (i + 1))
      in
      (match first_ground 0 with
      | Some (col, value) ->
          incr probe_count;
          probe col value
      | None ->
          incr scan_count;
          p.p_rows.all ())

let term_value subst = function
  | Term.Cst c -> Some c
  | Term.Var v -> Subst.find v subst

let candidates_planned subst p =
  match (p.p_probe, p.p_rows.probe_cols) with
  | [], _ | _, None ->
      incr scan_count;
      p.p_rows.all ()
  | cols, Some probe_cols ->
      let bindings =
        List.map
          (fun col ->
            match term_value subst p.p_args.(col) with
            | Some v -> (col, v)
            | None ->
                (* the planner only probes ground columns *)
                assert false)
          cols
      in
      incr probe_count;
      probe_cols bindings

(* Evaluate the comparisons that became ground; keep the rest pending.
   [None] means a ground comparison is violated. *)
let filter_comparisons subst comparisons =
  let step acc c =
    match acc with
    | None -> None
    | Some pending -> (
        match (Subst.apply_term subst c.Query.left, Subst.apply_term subst c.Query.right) with
        | Some v1, Some v2 ->
            if Query.eval_comparison_op c.Query.op v1 v2 then Some pending else None
        | _ -> Some (c :: pending))
  in
  match List.fold_left step (Some []) comparisons with
  | None -> None
  | Some pending -> Some (List.rev pending)

(* Evaluate comparisons the planner proved ground at this step. *)
let check_comparisons subst comparisons =
  List.for_all
    (fun c ->
      match
        (Subst.apply_term subst c.Query.left, Subst.apply_term subst c.Query.right)
      with
      | Some v1, Some v2 -> Query.eval_comparison_op c.Query.op v1 v2
      | _ -> false)
    comparisons

(* Static greedy join order of the legacy evaluator: repeatedly pick
   the atom sharing the most variables with the already-bound set;
   break ties by smaller relation, preferring atoms with constants. *)
let order_atoms atoms =
  let score bound (atom, rows) =
    let vars = Atom.vars atom in
    let shared = List.length (List.filter (fun v -> List.mem v bound) vars) in
    let constants = List.length (List.filter (fun t -> not (Term.is_var t)) atom.Atom.args) in
    (shared, constants, -rows.size)
  in
  let better bound a b = Stdlib.compare (score bound a) (score bound b) > 0 in
  let rec pick bound acc = function
    | [] -> List.rev acc
    | first :: rest ->
        let choose (best, others) candidate =
          if better bound candidate best then (candidate, best :: others)
          else (best, candidate :: others)
        in
        let best, others = List.fold_left choose (first, []) rest in
        let atom, _ = best in
        let bound = Atom.vars atom @ bound in
        pick bound (best :: acc) others
  in
  pick [] [] atoms

(* Legacy execution: left-to-right over the greedy order, threading
   pending comparisons.  Substitutions whose comparisons never become
   ground are dropped. *)
let join_legacy ordered comparisons =
  incr legacy_count;
  let prepared = List.map (fun (atom, rows) -> prepare atom rows) ordered in
  if List.exists arity_mismatch prepared then []
  else
    let rec go subst pending acc = function
      | [] -> if pending = [] then subst :: acc else acc
      | p :: rest ->
          let try_tuple acc tuple =
            match match_args subst p.p_args tuple with
            | None -> acc
            | Some subst' -> (
                match filter_comparisons subst' pending with
                | None -> acc
                | Some pending' -> go subst' pending' acc rest)
          in
          List.fold_left try_tuple acc (candidates_legacy subst p)
    in
    match filter_comparisons Subst.empty comparisons with
    | None -> []
    | Some pending -> List.rev (go Subst.empty pending [] prepared)

let plan_of_atoms ?max_probe_cols atoms comparisons =
  let infos =
    List.map
      (fun (atom, rows) ->
        {
          Plan.ai_atom = atom;
          ai_size = rows.size;
          ai_indexed = Option.is_some rows.probe_cols;
          ai_distinct = rows.distinct;
        })
      atoms
  in
  Plan.make ?max_probe_cols infos comparisons

(* Planned execution: follow the plan's step order, probe the chosen
   column sets through composite indexes, and evaluate each comparison
   at the step the planner assigned it to. *)
let join_planned ?max_probe_cols atoms comparisons =
  incr planned_count;
  let plan = plan_of_atoms ?max_probe_cols atoms comparisons in
  if plan.Plan.pl_unbound <> [] then
    (* a comparison never becomes ground: the legacy evaluator drops
       every substitution, so the planned result is empty too *)
    []
  else if not (check_comparisons Subst.empty plan.Plan.pl_pre) then []
  else
    let arr = Array.of_list atoms in
    let prepared =
      List.map
        (fun (s : Plan.step) ->
          let atom, rows = arr.(s.Plan.st_pos) in
          prepare ~probe:s.Plan.st_probe ~comparisons:s.Plan.st_comparisons atom
            rows)
        plan.Plan.pl_steps
    in
    if List.exists arity_mismatch prepared then []
    else
      let rec go subst acc = function
        | [] -> subst :: acc
        | p :: rest ->
            let try_tuple acc tuple =
              match match_args subst p.p_args tuple with
              | None -> acc
              | Some subst' ->
                  if check_comparisons subst' p.p_comparisons then
                    go subst' acc rest
                  else acc
            in
            List.fold_left try_tuple acc (candidates_planned subst p)
      in
      List.rev (go Subst.empty [] prepared)

let join ?(planner = true) ?max_probe_cols atoms comparisons =
  if planner then join_planned ?max_probe_cols atoms comparisons
  else join_legacy (order_atoms atoms) comparisons

let answers ?planner ?max_probe_cols source q =
  let atoms = List.map (fun a -> (a, source a.Atom.rel)) q.Query.body in
  join ?planner ?max_probe_cols atoms q.Query.comparisons

let plan_for ?max_probe_cols source q =
  let atoms = List.map (fun a -> (a, source a.Atom.rel)) q.Query.body in
  plan_of_atoms ?max_probe_cols atoms q.Query.comparisons

let delta_answers ?(naive = false) ?planner ?max_probe_cols source ~delta_rel
    ~delta q =
  if naive then answers ?planner ?max_probe_cols source q
  else if not (List.exists (fun a -> String.equal a.Atom.rel delta_rel) q.Query.body) then []
  else begin
    let full = source delta_rel in
    let delta_set = Tuple_set.of_list delta in
    let old =
      rows_of_list
        (List.filter (fun t -> not (Tuple_set.mem t delta_set)) (full.all ()))
    in
    let delta_rows = rows_of_list delta in
    let occurrences =
      (* occurrence index of every body atom over [delta_rel] *)
      let _, occs =
        List.fold_left
          (fun (i, occs) a ->
            if String.equal a.Atom.rel delta_rel then (i + 1, i :: occs) else (i, occs))
          (0, []) q.Query.body
      in
      List.rev occs
    in
    let pass k =
      (* Occurrence k ranges over the delta, earlier ones over the old
         tuples, later ones over the full relation: every derivation
         uses at least one delta tuple and is produced exactly once. *)
      let _, atoms =
        List.fold_left
          (fun (i, acc) a ->
            if String.equal a.Atom.rel delta_rel then
              let rows = if i < k then old else if i = k then delta_rows else full in
              (i + 1, (a, rows) :: acc)
            else (i, (a, source a.Atom.rel) :: acc))
          (0, []) q.Query.body
      in
      join ?planner ?max_probe_cols (List.rev atoms) q.Query.comparisons
    in
    List.concat_map pass occurrences
  end

let answer_tuples ?planner ?max_probe_cols source q =
  (match Query.well_formed ~allow_existential_head:false q with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Eval.answer_tuples: " ^ reason));
  let substs = answers ?planner ?max_probe_cols source q in
  let project acc subst =
    match Subst.apply_atom subst q.Query.head with
    | Some tuple -> Tuple_set.add tuple acc
    | None -> acc
  in
  Tuple_set.elements (List.fold_left project Tuple_set.empty substs)

let certain tuples = List.filter (fun t -> not (Tuple.has_null t)) tuples
