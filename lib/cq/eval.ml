module Tuple = Codb_relalg.Tuple
module Value = Codb_relalg.Value
module Relation = Codb_relalg.Relation
module Database = Codb_relalg.Database
module Tuple_set = Relation.Tuple_set

type rows = {
  all : unit -> Tuple.t list;
  size : int;
  probe : (int -> Value.t -> Tuple.t list) option;
}

type source = string -> rows

let empty_rows = { all = (fun () -> []); size = 0; probe = None }

let rows_of_list tuples =
  { all = (fun () -> tuples); size = List.length tuples; probe = None }

let of_database db rel =
  match Database.relation_opt db rel with
  | None -> empty_rows
  | Some r ->
      let arity = Codb_relalg.Schema.arity (Relation.schema r) in
      let probe col value =
        (* an atom of the wrong arity matches nothing; don't let the
           index raise on its out-of-range columns *)
        if col < arity then Relation.lookup r ~col value else []
      in
      {
        all = (fun () -> Relation.to_list r);
        size = Relation.cardinal r;
        probe = Some probe;
      }

let source_of_alist alist rel =
  match List.assoc_opt rel alist with
  | Some tuples -> rows_of_list tuples
  | None -> empty_rows

(* Extend [subst] by matching the atom's arguments against a stored
   tuple.  Constants and already-bound variables must agree with the
   stored value (marked nulls agree only with themselves). *)
let match_atom subst atom tuple =
  let args = atom.Atom.args in
  if List.length args <> Array.length tuple then None
  else
    let rec loop i subst = function
      | [] -> Some subst
      | Term.Cst c :: rest ->
          if Value.equal c tuple.(i) then loop (i + 1) subst rest else None
      | Term.Var v :: rest -> (
          match Subst.find v subst with
          | Some bound ->
              if Value.equal bound tuple.(i) then loop (i + 1) subst rest else None
          | None -> loop (i + 1) (Subst.bind v tuple.(i) subst) rest)
    in
    loop 0 subst args

(* Pick the candidate tuples for an atom under the current bindings:
   probe a hash index on the first argument position that is already
   ground, otherwise scan. *)
let candidates subst atom rows =
  match rows.probe with
  | None -> rows.all ()
  | Some probe ->
      let rec first_ground i = function
        | [] -> None
        | Term.Cst c :: _ -> Some (i, c)
        | Term.Var v :: rest -> (
            match Subst.find v subst with
            | Some value -> Some (i, value)
            | None -> first_ground (i + 1) rest)
      in
      (match first_ground 0 atom.Atom.args with
      | Some (col, value) -> probe col value
      | None -> rows.all ())

(* Evaluate the comparisons that became ground; keep the rest pending.
   [None] means a ground comparison is violated. *)
let filter_comparisons subst comparisons =
  let step acc c =
    match acc with
    | None -> None
    | Some pending -> (
        match (Subst.apply_term subst c.Query.left, Subst.apply_term subst c.Query.right) with
        | Some v1, Some v2 ->
            if Query.eval_comparison_op c.Query.op v1 v2 then Some pending else None
        | _ -> Some (c :: pending))
  in
  match List.fold_left step (Some []) comparisons with
  | None -> None
  | Some pending -> Some (List.rev pending)

(* Static greedy join order: repeatedly pick the atom sharing the most
   variables with the already-bound set; break ties by smaller
   relation, preferring atoms with constants. *)
let order_atoms atoms =
  let score bound (atom, rows) =
    let vars = Atom.vars atom in
    let shared = List.length (List.filter (fun v -> List.mem v bound) vars) in
    let constants = List.length (List.filter (fun t -> not (Term.is_var t)) atom.Atom.args) in
    (shared, constants, -rows.size)
  in
  let better bound a b = Stdlib.compare (score bound a) (score bound b) > 0 in
  let rec pick bound acc = function
    | [] -> List.rev acc
    | first :: rest ->
        let choose (best, others) candidate =
          if better bound candidate best then (candidate, best :: others)
          else (best, candidate :: others)
        in
        let best, others = List.fold_left choose (first, []) rest in
        let atom, _ = best in
        let bound = Atom.vars atom @ bound in
        pick bound (best :: acc) others
  in
  pick [] [] atoms

let join ordered comparisons =
  let rec go subst pending acc = function
    | [] -> if pending = [] then subst :: acc else acc
    | (atom, rows) :: rest ->
        let try_tuple acc tuple =
          match match_atom subst atom tuple with
          | None -> acc
          | Some subst' -> (
              match filter_comparisons subst' pending with
              | None -> acc
              | Some pending' -> go subst' pending' acc rest)
        in
        List.fold_left try_tuple acc (candidates subst atom rows)
  in
  match filter_comparisons Subst.empty comparisons with
  | None -> []
  | Some pending -> List.rev (go Subst.empty pending [] ordered)

let answers source q =
  let atoms = List.map (fun a -> (a, source a.Atom.rel)) q.Query.body in
  join (order_atoms atoms) q.Query.comparisons

let delta_answers ?(naive = false) source ~delta_rel ~delta q =
  if naive then answers source q
  else if not (List.exists (fun a -> String.equal a.Atom.rel delta_rel) q.Query.body) then []
  else begin
    let full = source delta_rel in
    let delta_set = Tuple_set.of_list delta in
    let old =
      rows_of_list
        (List.filter (fun t -> not (Tuple_set.mem t delta_set)) (full.all ()))
    in
    let delta_rows = rows_of_list delta in
    let occurrences =
      (* occurrence index of every body atom over [delta_rel] *)
      let _, occs =
        List.fold_left
          (fun (i, occs) a ->
            if String.equal a.Atom.rel delta_rel then (i + 1, i :: occs) else (i, occs))
          (0, []) q.Query.body
      in
      List.rev occs
    in
    let pass k =
      (* Occurrence k ranges over the delta, earlier ones over the old
         tuples, later ones over the full relation: every derivation
         uses at least one delta tuple and is produced exactly once. *)
      let _, atoms =
        List.fold_left
          (fun (i, acc) a ->
            if String.equal a.Atom.rel delta_rel then
              let rows = if i < k then old else if i = k then delta_rows else full in
              (i + 1, (a, rows) :: acc)
            else (i, (a, source a.Atom.rel) :: acc))
          (0, []) q.Query.body
      in
      join (order_atoms (List.rev atoms)) q.Query.comparisons
    in
    List.concat_map pass occurrences
  end

let answer_tuples source q =
  (match Query.well_formed ~allow_existential_head:false q with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Eval.answer_tuples: " ^ reason));
  let substs = answers source q in
  let project acc subst =
    match Subst.apply_atom subst q.Query.head with
    | Some tuple -> Tuple_set.add tuple acc
    | None -> acc
  in
  Tuple_set.elements (List.fold_left project Tuple_set.empty substs)

let certain tuples = List.filter (fun t -> not (Tuple.has_null t)) tuples
