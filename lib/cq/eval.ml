module Tuple = Codb_relalg.Tuple
module Value = Codb_relalg.Value
module Intern = Codb_relalg.Intern
module Relation = Codb_relalg.Relation
module Database = Codb_relalg.Database
module Tuple_set = Relation.Tuple_set

type rows = {
  all : unit -> Tuple.t list;
  all_arr : (unit -> Tuple.t array) option;
  size : int;
  probe : (int -> Value.t -> Tuple.t list) option;
  probe_arr : (int -> Value.t -> Tuple.t array) option;
  probe_cols : ((int * Value.t) list -> Tuple.t list) option;
  probe_cols_arr : ((int * Value.t) list -> Tuple.t array) option;
  distinct : (int -> int) option;
  arity : int option;
  packed : Relation.packed_view option;
}

type source = string -> rows

(* Access-path counters, global like [Value.null_counter]: callers
   that want per-query numbers snapshot around an evaluation. *)
type counters = {
  probes : int;  (** candidate sets served by an index probe *)
  scans : int;  (** candidate sets served by a full scan *)
  planned : int;  (** joins executed through a cost-based plan *)
  legacy : int;  (** joins executed through the legacy greedy order *)
  zone_visited : int;  (** chunks a zone-mapped scan examined *)
  zone_pruned : int;  (** chunks a zone-mapped scan skipped *)
}

(* One counter cell per domain: a handler fanned out by the parallel
   runtime runs on one domain start to finish, so the snapshot-diff
   pattern ([Stats.with_eval_counters]) keeps working unchanged —
   each domain diffs its own cell.  Nothing sums across domains: the
   per-handler deltas land in per-node stats, which is where every
   consumer reads them. *)
type cell = {
  mutable c_probes : int;
  mutable c_scans : int;
  mutable c_planned : int;
  mutable c_legacy : int;
  mutable c_zvisited : int;
  mutable c_zpruned : int;
}

let cell_key : cell Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        c_probes = 0;
        c_scans = 0;
        c_planned = 0;
        c_legacy = 0;
        c_zvisited = 0;
        c_zpruned = 0;
      })

let cell () = Domain.DLS.get cell_key

let counters () =
  let c = cell () in
  {
    probes = c.c_probes;
    scans = c.c_scans;
    planned = c.c_planned;
    legacy = c.c_legacy;
    zone_visited = c.c_zvisited;
    zone_pruned = c.c_zpruned;
  }

let reset_counters () =
  let c = cell () in
  c.c_probes <- 0;
  c.c_scans <- 0;
  c.c_planned <- 0;
  c.c_legacy <- 0;
  c.c_zvisited <- 0;
  c.c_zpruned <- 0

let empty_rows =
  {
    all = (fun () -> []);
    all_arr = Some (fun () -> [||]);
    size = 0;
    probe = None;
    probe_arr = None;
    probe_cols = None;
    probe_cols_arr = None;
    distinct = None;
    arity = None;
    packed = None;
  }

(* A transient packed view over a row list: columns flattened into one
   int array, live rows are just [0..n-1], probes are filtered scans.
   No probe_cols is exposed, so the planner sees the source exactly as
   unindexed as before — same plans, same probe/scan counter
   increments — but a join mixing stored relations with delta feeds
   now clears [all_packed] and runs on the packed int core. *)
let packed_view_of_rows ~arity:a flat n =
  let ids = lazy (Array.init n (fun i -> i)) in
  {
    Relation.pv_arity = a;
    pv_cell = (fun col row -> flat.((row * a) + col));
    pv_all = (fun () -> (Lazy.force ids, n));
    pv_probe =
      (fun cols ->
        let cols = Array.of_list cols in
        let k = Array.length cols in
        fun vals ->
          let hits = Array.make (max 1 n) 0 in
          let hit = ref 0 in
          for row = 0 to n - 1 do
            let ok = ref true in
            for j = 0 to k - 1 do
              if flat.((row * a) + cols.(j)) <> vals.(j) then ok := false
            done;
            if !ok then begin
              hits.(!hit) <- row;
              incr hit
            end
          done;
          (hits, !hit));
    (* a flattened row list has no chunk structure: nothing to skip *)
    pv_prune = (fun _ -> None);
  }

let rows_of_list ?arity:arity_hint tuples =
  (* canonicalise once so the matching core's [==] fast path hits —
     the walk packs every cell exactly as [Tuple.canonical] would, and
     keeps the packed ints as the columnar image of the list (the
     delta feeds of semi-naive maintenance take the packed join core
     through this view instead of falling back to boxed matching).
     [arity_hint] lets an empty feed stay packed-joinable. *)
  let arity =
    match tuples with
    | [] -> arity_hint
    | first :: rest ->
        let a = Array.length first in
        if List.for_all (fun t -> Array.length t = a) rest then Some a else None
  in
  match arity with
  | Some a when List.for_all (fun t -> Array.length t = a) tuples ->
      let n = List.length tuples in
      let flat = Array.make (max 1 (n * a)) 0 in
      let tuples =
        List.mapi
          (fun row t ->
            Array.init a (fun j ->
                let p = Intern.pack t.(j) in
                flat.((row * a) + j) <- p;
                Intern.unpack p))
          tuples
      in
      let arr = lazy (Array.of_list tuples) in
      {
        all = (fun () -> tuples);
        all_arr = Some (fun () -> Lazy.force arr);
        size = n;
        probe = None;
        probe_arr = None;
        probe_cols = None;
        probe_cols_arr = None;
        distinct = None;
        arity = Some a;
        packed = Some (packed_view_of_rows ~arity:a flat n);
      }
  | _ ->
      let tuples = List.map Tuple.canonical tuples in
      let arr = lazy (Array.of_list tuples) in
      {
        all = (fun () -> tuples);
        all_arr = Some (fun () -> Lazy.force arr);
        size = List.length tuples;
        probe = None;
        probe_arr = None;
        probe_cols = None;
        probe_cols_arr = None;
        distinct = None;
        arity = None;
        packed = None;
      }

let of_database ?index_budget db rel =
  match Database.relation_opt db rel with
  | None -> empty_rows
  | Some r ->
      (match index_budget with
      | Some budget -> Relation.set_index_budget r budget
      | None -> ());
      let arity = Codb_relalg.Schema.arity (Relation.schema r) in
      let in_range col = col >= 0 && col < arity in
      let probe col value =
        (* an atom of the wrong arity matches nothing; don't let the
           index raise on its out-of-range columns *)
        if in_range col then Relation.lookup r ~col value else []
      in
      let probe_arr col value =
        if in_range col then Relation.lookup_arr r ~col value else [||]
      in
      let probe_cols bindings =
        if List.for_all (fun (col, _) -> in_range col) bindings then
          Relation.lookup_cols r bindings
        else []
      in
      let probe_cols_arr bindings =
        if List.for_all (fun (col, _) -> in_range col) bindings then
          Relation.lookup_cols_arr r bindings
        else [||]
      in
      let distinct col =
        if in_range col then Relation.distinct_count r ~col else 1
      in
      {
        all = (fun () -> Relation.to_list r);
        all_arr = Some (fun () -> Relation.to_array r);
        size = Relation.cardinal r;
        probe = Some probe;
        probe_arr = Some probe_arr;
        probe_cols = Some probe_cols;
        probe_cols_arr = Some probe_cols_arr;
        distinct = Some distinct;
        arity = Some arity;
        packed = Some (Relation.packed_view r);
      }

let source_of_alist alist rel =
  match List.assoc_opt rel alist with
  | Some tuples -> rows_of_list tuples
  | None -> empty_rows

(* Extend [subst] by matching the atom's arguments (pre-flattened into
   an array, so the arity check is O(1) and done once per atom, not
   once per candidate tuple) against a stored tuple.  Constants and
   already-bound variables must agree with the stored value (marked
   nulls agree only with themselves). *)
let match_args subst args tuple =
  let n = Array.length args in
  let rec loop i subst =
    if i = n then Some subst
    else
      match args.(i) with
      | Term.Cst c ->
          if Value.equal c tuple.(i) then loop (i + 1) subst else None
      | Term.Var v -> (
          match Subst.find v subst with
          | Some bound ->
              if Value.equal bound tuple.(i) then loop (i + 1) subst else None
          | None -> loop (i + 1) (Subst.bind v tuple.(i) subst))
  in
  loop 0 subst

(* One body atom, prepared for the join loop: argument array for O(1)
   matching, access path, and (planned path only) the probe column set
   and the comparisons that become ground at this step. *)
type prepared = {
  p_args : Term.t array;
  p_rows : rows;
  p_probe : int list;
  p_comparisons : Query.comparison list;
  p_ranges : (int * Query.comparison_op * Value.t) list;
}

let prepare ?(probe = []) ?(comparisons = []) ?(ranges = []) atom rows =
  {
    (* constants rewritten to their interned box: [Value.equal] then
       resolves by [==] against canonical stored tuples *)
    p_args =
      Array.of_list
        (List.map
           (function
             | Term.Cst c -> Term.Cst (Intern.canonical c)
             | Term.Var _ as t -> t)
           atom.Atom.args);
    p_rows = rows;
    p_probe = probe;
    p_comparisons = comparisons;
    p_ranges = ranges;
  }

(* A prepared atom whose arity disagrees with its relation matches
   nothing: detect it once, before the join loop runs. *)
let arity_mismatch p =
  match p.p_rows.arity with
  | Some a -> Array.length p.p_args <> a
  | None -> false

(* Candidate tuples for an atom under the current bindings, as an
   array (no list spine per probe).  The legacy path probes a
   single-column index on the first ground argument position; the
   planned path probes the plan's column set through the composite
   index. *)
let scan_all p =
  match p.p_rows.all_arr with
  | Some all_arr -> all_arr ()
  | None -> Array.of_list (p.p_rows.all ())

let candidates_legacy subst p =
  match (p.p_rows.probe_arr, p.p_rows.probe) with
  | None, None ->
      let c = cell () in
      c.c_scans <- c.c_scans + 1;
      scan_all p
  | probe_arr, probe ->
      let n = Array.length p.p_args in
      let rec first_ground i =
        if i = n then None
        else
          match p.p_args.(i) with
          | Term.Cst c -> Some (i, c)
          | Term.Var v -> (
              match Subst.find v subst with
              | Some value -> Some (i, value)
              | None -> first_ground (i + 1))
      in
      (match first_ground 0 with
      | Some (col, value) -> (
          let c = cell () in
          c.c_probes <- c.c_probes + 1;
          match probe_arr with
          | Some probe_arr -> probe_arr col value
          | None -> Array.of_list ((Option.get probe) col value))
      | None ->
          let c = cell () in
          c.c_scans <- c.c_scans + 1;
          scan_all p)

let term_value subst = function
  | Term.Cst c -> Some c
  | Term.Var v -> Subst.find v subst

let candidates_planned subst p =
  if p.p_probe = [] || (p.p_rows.probe_cols = None && p.p_rows.probe_cols_arr = None)
  then begin
    let c = cell () in
    c.c_scans <- c.c_scans + 1;
    scan_all p
  end
  else begin
    let bindings =
      List.map
        (fun col ->
          match term_value subst p.p_args.(col) with
          | Some v -> (col, v)
          | None ->
              (* the planner only probes ground columns *)
              assert false)
        p.p_probe
    in
    let c = cell () in
    c.c_probes <- c.c_probes + 1;
    match p.p_rows.probe_cols_arr with
    | Some probe_cols_arr -> probe_cols_arr bindings
    | None -> Array.of_list ((Option.get p.p_rows.probe_cols) bindings)
  end

(* Evaluate the comparisons that became ground; keep the rest pending.
   [None] means a ground comparison is violated. *)
let filter_comparisons subst comparisons =
  let step acc c =
    match acc with
    | None -> None
    | Some pending -> (
        match (Subst.apply_term subst c.Query.left, Subst.apply_term subst c.Query.right) with
        | Some v1, Some v2 ->
            if Query.eval_comparison_op c.Query.op v1 v2 then Some pending else None
        | _ -> Some (c :: pending))
  in
  match List.fold_left step (Some []) comparisons with
  | None -> None
  | Some pending -> Some (List.rev pending)

(* Evaluate comparisons the planner proved ground at this step. *)
let check_comparisons subst comparisons =
  List.for_all
    (fun c ->
      match
        (Subst.apply_term subst c.Query.left, Subst.apply_term subst c.Query.right)
      with
      | Some v1, Some v2 -> Query.eval_comparison_op c.Query.op v1 v2
      | _ -> false)
    comparisons

(* Static greedy join order of the legacy evaluator: repeatedly pick
   the atom sharing the most variables with the already-bound set;
   break ties by smaller relation, preferring atoms with constants. *)
let order_atoms atoms =
  let score bound (atom, rows) =
    let vars = Atom.vars atom in
    let shared = List.length (List.filter (fun v -> List.mem v bound) vars) in
    let constants = List.length (List.filter (fun t -> not (Term.is_var t)) atom.Atom.args) in
    (shared, constants, -rows.size)
  in
  let better bound a b = Stdlib.compare (score bound a) (score bound b) > 0 in
  let rec pick bound acc = function
    | [] -> List.rev acc
    | first :: rest ->
        let choose (best, others) candidate =
          if better bound candidate best then (candidate, best :: others)
          else (best, candidate :: others)
        in
        let best, others = List.fold_left choose (first, []) rest in
        let atom, _ = best in
        let bound = Atom.vars atom @ bound in
        pick bound (best :: acc) others
  in
  pick [] [] atoms

(* Legacy execution: left-to-right over the greedy order, threading
   pending comparisons.  Substitutions whose comparisons never become
   ground are dropped. *)
let join_legacy ordered comparisons =
  let c = cell () in
  c.c_legacy <- c.c_legacy + 1;
  let prepared = List.map (fun (atom, rows) -> prepare atom rows) ordered in
  if List.exists arity_mismatch prepared then []
  else
    let rec go subst pending acc = function
      | [] -> if pending = [] then subst :: acc else acc
      | p :: rest ->
          let try_tuple acc tuple =
            match match_args subst p.p_args tuple with
            | None -> acc
            | Some subst' -> (
                match filter_comparisons subst' pending with
                | None -> acc
                | Some pending' -> go subst' pending' acc rest)
          in
          Array.fold_left try_tuple acc (candidates_legacy subst p)
    in
    match filter_comparisons Subst.empty comparisons with
    | None -> []
    | Some pending -> List.rev (go Subst.empty pending [] prepared)

let plan_of_atoms ?max_probe_cols atoms comparisons =
  let infos =
    List.map
      (fun (atom, rows) ->
        {
          Plan.ai_atom = atom;
          ai_size = rows.size;
          ai_indexed = Option.is_some rows.probe_cols;
          ai_distinct = rows.distinct;
        })
      atoms
  in
  Plan.make ?max_probe_cols infos comparisons

(* ---- packed join core ------------------------------------------------ *)

(* When every access path of a planned join exposes a packed view
   (stored relations via [of_database]), the join runs entirely on
   packed ints: the substitution is an array of int slots (one per
   body variable, in first-occurrence order), candidate sets are row
   ids, matching a candidate is integer comparison against column
   cells, and probes hand packed values straight to the relation's
   id-keyed indexes — no boxing, no string hashing, no per-probe
   copies.  A boxed [Subst.t] is materialised only per full match, so
   results, traversal order, and probe/scan counter increments are
   identical to the boxed planned path. *)

type packed_arg =
  | Pconst of int  (* packed constant: candidate cell must equal it *)
  | Pvar of int  (* slot: bind on first occurrence, compare after *)
  | Pbindconst of int * int
      (* packed constant * slot: an equality comparison folded into
         the slot's first-occurrence position — the candidate cell
         must equal the constant, and the slot binds to it.  Failing
         candidates die on one integer compare, with no trail
         traffic and no comparison phase. *)

type packed_cterm = Cslot of int | Cval of Value.t

(* Step comparisons, compiled: (in)equality is decidable on packed
   ints ([Query.eval_comparison_op]'s Eq is [Value.equal], which is
   [Value.compare] = 0, which is packed equality); order comparisons
   unpack and defer to the boxed semantics. *)
type packed_check =
  | Ceq_sc of int * int  (* slot = packed constant *)
  | Cneq_sc of int * int
  | Ceq_ss of int * int  (* slot = slot *)
  | Cneq_ss of int * int
  | Cgen of Query.comparison_op * packed_cterm * packed_cterm

type packed_step = {
  k_view : Relation.packed_view;
  k_args : packed_arg array;
  k_scan : bool;  (* no probe columns at this step *)
  k_probe_src : packed_arg array;  (* aligned with the probe columns *)
  k_probe_vals : int array;  (* scratch, same length *)
  k_probe : int array -> int array * int;  (* prepared on the view *)
  k_checks : packed_check list;
  k_prune : (int * Relation.bound_op * int) list;
      (* zone-map bounds for a scan step: sargable order predicates
         plus the equality constants already folded into [k_args];
         empty unless zone maps are enabled *)
}

(* What a packed-match consumer sees: the slot array plus the
   name/slot correspondence, fixed before the search starts.  The
   consumer returns the per-match callback; [x_vals] holds every
   body variable's packed value whenever it fires. *)
type packed_ctx = {
  x_vals : int array;
  x_names : string array;  (* slot -> variable name *)
  x_slot : string -> int option;  (* variable name -> slot *)
}

let join_packed_run ?(zone_maps = false) prepared ~(emit : packed_ctx -> unit -> unit) =
  (* slots in first-occurrence order over the plan's step sequence *)
  let slot_tbl = Hashtbl.create 16 in
  let slot_names = ref [] (* reversed *) in
  let slot_of v =
    match Hashtbl.find_opt slot_tbl v with
    | Some s -> s
    | None ->
        let s = Hashtbl.length slot_tbl in
        Hashtbl.add slot_tbl v s;
        slot_names := v :: !slot_names;
        s
  in
  let total_args = ref 0 in
  (* slots already bound when the current step's matching begins, for
     the equality-folding below *)
  let bound_before : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let build p =
    let view = Option.get p.p_rows.packed in
    let args =
      Array.map
        (function
          | Term.Cst c -> Pconst (Intern.pack c)
          | Term.Var v -> Pvar (slot_of v))
        p.p_args
    in
    total_args := !total_args + Array.length args;
    (* the planner assigns a comparison to the earliest step at which
       its variables are ground, so every slot already exists *)
    let cterm = function
      | Term.Cst c -> Cval c
      | Term.Var v -> (
          match Hashtbl.find_opt slot_tbl v with
          | Some s -> Cslot s
          | None -> assert false)
    in
    (* A slot-vs-constant equality whose slot first binds at this step
       is sargable: fold it into the match at the slot's
       first-occurrence position instead of checking after the fact. *)
    let fold_eq s k =
      if Hashtbl.mem bound_before s then false
      else begin
        let rec find j =
          if j >= Array.length args then false
          else
            match args.(j) with
            | Pvar s' when s' = s ->
                args.(j) <- Pbindconst (k, s);
                true
            | _ -> find (j + 1)
        in
        find 0
      end
    in
    let checks =
      List.filter_map
        (fun (c : Query.comparison) ->
          match (c.Query.op, cterm c.Query.left, cterm c.Query.right) with
          | Query.Eq, Cslot s, Cval v | Query.Eq, Cval v, Cslot s ->
              let k = Intern.pack v in
              if fold_eq s k then None else Some (Ceq_sc (s, k))
          | Query.Neq, Cslot s, Cval v | Query.Neq, Cval v, Cslot s ->
              Some (Cneq_sc (s, Intern.pack v))
          | Query.Eq, Cslot s1, Cslot s2 -> Some (Ceq_ss (s1, s2))
          | Query.Neq, Cslot s1, Cslot s2 -> Some (Cneq_ss (s1, s2))
          | op, l, r -> Some (Cgen (op, l, r)))
        p.p_comparisons
    in
    Array.iter
      (function
        | Pvar s | Pbindconst (_, s) -> Hashtbl.replace bound_before s ()
        | Pconst _ -> ())
      args;
    let probe_src = Array.of_list (List.map (fun col -> args.(col)) p.p_probe) in
    (* Zone-map bounds for a scan: the plan's order predicates, plus
       every equality constant visible in the args (including those
       [fold_eq] just rewrote into [Pbindconst]).  Computed only when
       the feature is on, so the default path is bit-for-bit the
       seed's every-chunk scan. *)
    let prune =
      if (not zone_maps) || p.p_probe <> [] then []
      else begin
        let bound_of_op = function
          | Query.Lt -> Relation.Blt
          | Query.Le -> Relation.Ble
          | Query.Gt -> Relation.Bgt
          | Query.Ge -> Relation.Bge
          | Query.Eq | Query.Neq -> assert false (* never planned as a range *)
        in
        let ranges =
          List.map
            (fun (col, op, k) -> (col, bound_of_op op, Intern.pack k))
            p.p_ranges
        in
        let eqs = ref [] in
        Array.iteri
          (fun col a ->
            match a with
            | Pconst k | Pbindconst (k, _) ->
                eqs := (col, Relation.Beq, k) :: !eqs
            | Pvar _ -> ())
          args;
        ranges @ List.rev !eqs
      end
    in
    {
      k_view = view;
      k_args = args;
      k_scan = p.p_probe = [];
      k_probe_src = probe_src;
      k_probe_vals = Array.make (max 1 (Array.length probe_src)) 0;
      k_probe =
        (if p.p_probe = [] then fun _ -> ([||], 0)
         else view.Relation.pv_probe p.p_probe);
      k_checks = checks;
      k_prune = prune;
    }
  in
  (* explicit left-to-right construction: slot numbering and the
     equality-folding both depend on step order *)
  let steps =
    let rec seq acc = function
      | [] -> Array.of_list (List.rev acc)
      | p :: rest -> seq (build p :: acc) rest
    in
    seq [] prepared
  in
  let nslots = Hashtbl.length slot_tbl in
  let names = Array.of_list (List.rev !slot_names) in
  let vals = Array.make (max 1 nslots) 0 in
  let bound = Array.make (max 1 nslots) false in
  let trail = Array.make (max 1 !total_args) 0 in
  let trail_top = ref 0 in
  let nsteps = Array.length steps in
  let emit =
    emit
      {
        x_vals = vals;
        x_names = names;
        x_slot = (fun v -> Hashtbl.find_opt slot_tbl v);
      }
  in
  let cterm_value = function
    | Cval v -> v
    | Cslot s -> Intern.unpack vals.(s)
  in
  let check_ok = function
    | Ceq_sc (s, k) -> vals.(s) = k
    | Cneq_sc (s, k) -> vals.(s) <> k
    | Ceq_ss (s1, s2) -> vals.(s1) = vals.(s2)
    | Cneq_ss (s1, s2) -> vals.(s1) <> vals.(s2)
    | Cgen (op, l, r) -> Query.eval_comparison_op op (cterm_value l) (cterm_value r)
  in
  let checks_ok checks = List.for_all check_ok checks in
  (* fetch the domain-local counter cell once, outside the hot loop *)
  let counter_cell = cell () in
  let rec go d =
    if d = nsteps then emit ()
    else begin
      let st = steps.(d) in
      let rows, len =
        if st.k_scan then begin
          counter_cell.c_scans <- counter_cell.c_scans + 1;
          if st.k_prune == [] then st.k_view.Relation.pv_all ()
          else begin
            match st.k_view.Relation.pv_prune st.k_prune with
            | Some (rows, n, visited, pruned) ->
                counter_cell.c_zvisited <- counter_cell.c_zvisited + visited;
                counter_cell.c_zpruned <- counter_cell.c_zpruned + pruned;
                (rows, n)
            | None -> st.k_view.Relation.pv_all ()
          end
        end
        else begin
          counter_cell.c_probes <- counter_cell.c_probes + 1;
          let src = st.k_probe_src and scratch = st.k_probe_vals in
          for j = 0 to Array.length src - 1 do
            scratch.(j) <-
              (match src.(j) with
              | Pconst c | Pbindconst (c, _) -> c
              | Pvar s -> vals.(s))
          done;
          st.k_probe scratch
        end
      in
      let args = st.k_args in
      let nargs = Array.length args in
      let cell = st.k_view.Relation.pv_cell in
      (* defined once per candidate set, not per candidate: the inner
         loop must not allocate *)
      let rec matches row j =
        j >= nargs
        ||
        match args.(j) with
        | Pconst c -> cell j row = c && matches row (j + 1)
        | Pvar s ->
            if bound.(s) then vals.(s) = cell j row && matches row (j + 1)
            else begin
              vals.(s) <- cell j row;
              bound.(s) <- true;
              trail.(!trail_top) <- s;
              incr trail_top;
              matches row (j + 1)
            end
        | Pbindconst (c, s) ->
            cell j row = c
            && begin
                 vals.(s) <- c;
                 bound.(s) <- true;
                 trail.(!trail_top) <- s;
                 incr trail_top;
                 matches row (j + 1)
               end
      in
      for i = 0 to len - 1 do
        let row = rows.(i) in
        let mark = !trail_top in
        if matches row 0 && (st.k_checks == [] || checks_ok st.k_checks) then
          go (d + 1);
        while !trail_top > mark do
          decr trail_top;
          bound.(trail.(!trail_top)) <- false
        done
      done
    end
  in
  go 0

let join_packed ?zone_maps prepared =
  let results = ref [] in
  join_packed_run ?zone_maps prepared ~emit:(fun ctx ->
      let nslots = Array.length ctx.x_names in
      fun () ->
        let subst = ref Subst.empty in
        for s = 0 to nslots - 1 do
          subst := Subst.bind ctx.x_names.(s) (Intern.unpack ctx.x_vals.(s)) !subst
        done;
        results := !subst :: !results);
  List.rev !results

(* Plan a join and prepare its steps; [None] means the join is
   provably empty (a never-ground comparison — the legacy evaluator
   drops every substitution — a violated variable-free comparison, or
   an atom whose arity disagrees with its relation). *)
let plan_prepared ?max_probe_cols atoms comparisons =
  let plan = plan_of_atoms ?max_probe_cols atoms comparisons in
  if plan.Plan.pl_unbound <> [] then None
  else if not (check_comparisons Subst.empty plan.Plan.pl_pre) then None
  else
    let arr = Array.of_list atoms in
    let prepared =
      List.map
        (fun (s : Plan.step) ->
          let atom, rows = arr.(s.Plan.st_pos) in
          prepare ~probe:s.Plan.st_probe ~comparisons:s.Plan.st_comparisons
            ~ranges:s.Plan.st_ranges atom rows)
        plan.Plan.pl_steps
    in
    if List.exists arity_mismatch prepared then None else Some prepared

let all_packed prepared =
  prepared <> [] && List.for_all (fun p -> p.p_rows.packed <> None) prepared

(* Planned execution: follow the plan's step order, probe the chosen
   column sets through composite indexes, and evaluate each comparison
   at the step the planner assigned it to. *)
let join_planned ?zone_maps ?max_probe_cols atoms comparisons =
  let c = cell () in
  c.c_planned <- c.c_planned + 1;
  match plan_prepared ?max_probe_cols atoms comparisons with
  | None -> []
  | Some prepared when all_packed prepared -> join_packed ?zone_maps prepared
  | Some prepared ->
      let rec go subst acc = function
        | [] -> subst :: acc
        | p :: rest ->
            let try_tuple acc tuple =
              match match_args subst p.p_args tuple with
              | None -> acc
              | Some subst' ->
                  if check_comparisons subst' p.p_comparisons then
                    go subst' acc rest
                  else acc
            in
            Array.fold_left try_tuple acc (candidates_planned subst p)
      in
      List.rev (go Subst.empty [] prepared)

let join ?(planner = true) ?zone_maps ?max_probe_cols atoms comparisons =
  if planner then join_planned ?zone_maps ?max_probe_cols atoms comparisons
  else join_legacy (order_atoms atoms) comparisons

let answers ?planner ?zone_maps ?max_probe_cols source q =
  let atoms = List.map (fun a -> (a, source a.Atom.rel)) q.Query.body in
  join ?planner ?zone_maps ?max_probe_cols atoms q.Query.comparisons

let plan_for ?max_probe_cols source q =
  let atoms = List.map (fun a -> (a, source a.Atom.rel)) q.Query.body in
  plan_of_atoms ?max_probe_cols atoms q.Query.comparisons

let delta_answers ?(naive = false) ?planner ?zone_maps ?max_probe_cols source
    ~delta_rel ~delta q =
  if naive then answers ?planner ?zone_maps ?max_probe_cols source q
  else if not (List.exists (fun a -> String.equal a.Atom.rel delta_rel) q.Query.body) then []
  else begin
    let full = source delta_rel in
    let delta_set = Tuple_set.of_list delta in
    let old =
      rows_of_list
        (List.filter (fun t -> not (Tuple_set.mem t delta_set)) (full.all ()))
    in
    let delta_rows = rows_of_list delta in
    let occurrences =
      (* occurrence index of every body atom over [delta_rel] *)
      let _, occs =
        List.fold_left
          (fun (i, occs) a ->
            if String.equal a.Atom.rel delta_rel then (i + 1, i :: occs) else (i, occs))
          (0, []) q.Query.body
      in
      List.rev occs
    in
    let pass k =
      (* Occurrence k ranges over the delta, earlier ones over the old
         tuples, later ones over the full relation: every derivation
         uses at least one delta tuple and is produced exactly once. *)
      let _, atoms =
        List.fold_left
          (fun (i, acc) a ->
            if String.equal a.Atom.rel delta_rel then
              let rows = if i < k then old else if i = k then delta_rows else full in
              (i + 1, (a, rows) :: acc)
            else (i, (a, source a.Atom.rel) :: acc))
          (0, []) q.Query.body
      in
      join ?planner ?zone_maps ?max_probe_cols (List.rev atoms) q.Query.comparisons
    in
    List.concat_map pass occurrences
  end

module Tuple_tbl = Hashtbl.Make (struct
  type t = Tuple.t

  let equal = Tuple.equal

  let hash = Tuple.hash
end)

(* Fully packed user-query pipeline: run the packed join core and
   project the head {e without materialising substitutions} — each
   match writes the head's packed values into a scratch row,
   de-duplicated in an int-row table.  Only the final duplicate-free
   answers are boxed (into canonical tuples) and sorted, so the whole
   evaluation touches boxed values exactly once per distinct answer:
   at the API boundary. *)
let answer_tuples_packed ?zone_maps prepared (head : Atom.t) =
  let rows = ref [] in
  let seen : (int array, unit) Hashtbl.t = Hashtbl.create 1024 in
  join_packed_run ?zone_maps prepared ~emit:(fun ctx ->
      let proj =
        Array.of_list
          (List.map
             (function
               | Term.Cst c -> Pconst (Intern.pack c)
               | Term.Var v -> (
                   match ctx.x_slot v with
                   | Some s -> Pvar s
                   | None ->
                       (* no existential head variables, so every head
                          variable has a body slot *)
                       assert false))
             head.Atom.args)
      in
      let width = Array.length proj in
      let scratch = Array.make width 0 in
      fun () ->
        for j = 0 to width - 1 do
          scratch.(j) <-
            (match proj.(j) with
            | Pconst c -> c
            | Pvar s -> ctx.x_vals.(s)
            | Pbindconst _ -> assert false (* never built by the projector *))
        done;
        if not (Hashtbl.mem seen scratch) then begin
          let row = Array.copy scratch in
          Hashtbl.add seen row ();
          rows := row :: !rows
        end);
  List.sort Tuple.compare
    (List.map (fun row -> Array.map Intern.unpack row) !rows)

let answer_tuples ?planner ?zone_maps ?max_probe_cols source q =
  (match Query.well_formed ~allow_existential_head:false q with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Eval.answer_tuples: " ^ reason));
  let use_planner = match planner with Some false -> false | _ -> true in
  let atoms = List.map (fun a -> (a, source a.Atom.rel)) q.Query.body in
  if use_planner && List.for_all (fun (_, rows) -> rows.packed <> None) atoms
     && atoms <> []
  then begin
    let c = cell () in
    c.c_planned <- c.c_planned + 1;
    match plan_prepared ?max_probe_cols atoms q.Query.comparisons with
    | None -> []
    | Some prepared -> answer_tuples_packed ?zone_maps prepared q.Query.head
  end
  else begin
    let substs = join ?planner ?zone_maps ?max_probe_cols atoms q.Query.comparisons in
    (* de-duplicate through [Tuple.hash] — O(1) per answer instead of
       a balanced-set insertion's O(log n) full-tuple comparisons —
       then sort once: the same sorted duplicate-free list as the
       seed's [Tuple_set.elements] *)
    let seen = Tuple_tbl.create 256 in
    List.iter
      (fun subst ->
        match Subst.apply_atom subst q.Query.head with
        | Some tuple -> if not (Tuple_tbl.mem seen tuple) then Tuple_tbl.add seen tuple ()
        | None -> ())
      substs;
    List.sort Tuple.compare (Tuple_tbl.fold (fun t () acc -> t :: acc) seen [])
  end

let certain tuples = List.filter (fun t -> not (Tuple.has_null t)) tuples
