module Value = Codb_relalg.Value
module Schema = Codb_relalg.Schema

let literal ppf = function
  | Value.Int i -> Fmt.int ppf i
  | Value.Float f ->
      (* Keep a dot so the token re-lexes as a float. *)
      let s = Printf.sprintf "%.12g" f in
      if String.contains s '.' || String.contains s 'e' then Fmt.string ppf s
      else Fmt.pf ppf "%s.0" s
  | Value.Str s ->
      let buf = Buffer.create (String.length s + 2) in
      String.iter
        (fun c -> if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
        s;
      Fmt.pf ppf "\"%s\"" (Buffer.contents buf)
  | Value.Bool b -> Fmt.bool ppf b
  | Value.Null _ -> invalid_arg "Pretty.literal: marked nulls have no concrete syntax"
  | Value.Hole _ -> invalid_arg "Pretty.literal: holes have no concrete syntax"

let term ppf = function
  | Term.Var v -> Fmt.string ppf v
  | Term.Cst c -> literal ppf c

let atom ppf a =
  Fmt.pf ppf "%s(%a)" a.Atom.rel Fmt.(list ~sep:(any ", ") term) a.Atom.args

let comparison ppf c =
  Fmt.pf ppf "%a %s %a" term c.Query.left (Query.string_of_op c.Query.op) term
    c.Query.right

let body_items ppf q =
  let items =
    List.map (fun a -> `A a) q.Query.body @ List.map (fun c -> `C c) q.Query.comparisons
  in
  let pp_item ppf = function `A a -> atom ppf a | `C c -> comparison ppf c in
  Fmt.(list ~sep:(any ", ") pp_item) ppf items

let query ppf q = Fmt.pf ppf "%a <- %a" atom q.Query.head body_items q

let constraint_body = body_items

let pp_attr ppf a =
  Fmt.pf ppf "%s: %s" a.Schema.attr_name (Value.string_of_ty a.Schema.attr_ty)

let pp_schema ppf s =
  Fmt.pf ppf "relation %s(%a);" s.Schema.rel_name
    Fmt.(list ~sep:(any ", ") pp_attr)
    s.Schema.attrs

let pp_fact ppf (rel, tuple) =
  Fmt.pf ppf "fact %s(%a);" rel
    Fmt.(array ~sep:(any ", ") literal)
    tuple

let pp_constraint ppf q = Fmt.pf ppf "constraint %a;" constraint_body q

let node_decl ppf n =
  let mediator = if n.Config.mediator then " mediator" else "" in
  Fmt.pf ppf "@[<v 2>node %s%s {%a%a%a@]@,}" n.Config.node_name mediator
    Fmt.(list ~sep:nop (fun ppf s -> Fmt.pf ppf "@,%a" pp_schema s))
    n.Config.relations
    Fmt.(list ~sep:nop (fun ppf f -> Fmt.pf ppf "@,%a" pp_fact f))
    n.Config.facts
    Fmt.(list ~sep:nop (fun ppf c -> Fmt.pf ppf "@,%a" pp_constraint c))
    n.Config.constraints

let rule_decl ppf r =
  Fmt.pf ppf "rule %s at %s: %a <- %s: %a;" r.Config.rule_id r.Config.importer atom
    r.Config.rule_query.Query.head r.Config.source body_items r.Config.rule_query

let config ppf cfg =
  Fmt.pf ppf "@[<v>%a%a%a@]"
    Fmt.(list ~sep:cut node_decl)
    cfg.Config.nodes
    Fmt.(if cfg.Config.nodes <> [] && cfg.Config.rules <> [] then cut else nop)
    ()
    Fmt.(list ~sep:cut rule_decl)
    cfg.Config.rules

let config_to_string cfg = Fmt.str "%a@." config cfg
