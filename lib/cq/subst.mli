(** Substitutions: finite maps from variable names to values. *)

type t

val empty : t

val bind : string -> Codb_relalg.Value.t -> t -> t

val find : string -> t -> Codb_relalg.Value.t option

val mem : string -> t -> bool

val bindings : t -> (string * Codb_relalg.Value.t) list

val of_list : (string * Codb_relalg.Value.t) list -> t

val apply_term : t -> Term.t -> Codb_relalg.Value.t option
(** Constants map to themselves; variables to their binding, if any. *)

val apply_atom : t -> Atom.t -> Codb_relalg.Tuple.t option
(** The atom's argument tuple under the substitution, if ground. *)

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : t Fmt.t
