module Value = Codb_relalg.Value
module Tuple = Codb_relalg.Tuple

(* Frozen constants are tagged strings; the tag cannot clash with user
   data because user string constants are never compared against them
   (they only live in the canonical database built here). *)
let freeze_var v = Value.Str ("$frozen$" ^ v)

let freeze_term = function
  | Term.Cst c -> c
  | Term.Var v -> freeze_var v

let frozen_atom a = Array.of_list (List.map freeze_term a.Atom.args)

let frozen_source q =
  let table = Hashtbl.create 8 in
  let add a =
    let existing = Option.value ~default:[] (Hashtbl.find_opt table a.Atom.rel) in
    Hashtbl.replace table a.Atom.rel (frozen_atom a :: existing)
  in
  List.iter add q.Query.body;
  fun rel ->
    Eval.rows_of_list (Option.value ~default:[] (Hashtbl.find_opt table rel))

let match_atom subst atom tuple =
  let rec loop i subst = function
    | [] -> Some subst
    | Term.Cst c :: rest ->
        if Value.equal c tuple.(i) then loop (i + 1) subst rest else None
    | Term.Var v :: rest -> (
        match Subst.find v subst with
        | Some bound ->
            if Value.equal bound tuple.(i) then loop (i + 1) subst rest else None
        | None -> loop (i + 1) (Subst.bind v tuple.(i) subst) rest)
  in
  if List.length atom.Atom.args <> Array.length tuple then None
  else loop 0 subst atom.Atom.args

let is_frozen = function
  | Value.Str s -> String.length s > 8 && String.sub s 0 8 = "$frozen$"
  | Value.Int _ | Value.Float _ | Value.Bool _ | Value.Null _ | Value.Hole _ -> false

(* A comparison of [from], under the candidate homomorphism, is
   entailed if it is ground over real (non-frozen) values and true, or
   if it coincides syntactically with a frozen comparison of [into]. *)
let comparison_entailed ~into_cmps subst c =
  match (Subst.apply_term subst c.Query.left, Subst.apply_term subst c.Query.right) with
  | Some v1, Some v2 ->
      if not (is_frozen v1 || is_frozen v2) then
        Query.eval_comparison_op c.Query.op v1 v2
      else
        let matches c' =
          c'.Query.op = c.Query.op
          && Value.equal (freeze_term c'.Query.left) v1
          && Value.equal (freeze_term c'.Query.right) v2
        in
        List.exists matches into_cmps
  | _ -> false

let hom_exists ~from ~into =
  let source = frozen_source into in
  let target_head = frozen_atom into.Query.head in
  if Atom.arity from.Query.head <> Array.length target_head then false
  else if not (String.equal from.Query.head.Atom.rel into.Query.head.Atom.rel) then false
  else
    let body_only = { from with Query.comparisons = [] } in
    let candidates = Eval.answers source body_only in
    let accepts subst =
      match match_atom subst from.Query.head target_head with
      | None -> false
      | Some subst' ->
          List.for_all
            (comparison_entailed ~into_cmps:into.Query.comparisons subst')
            from.Query.comparisons
    in
    List.exists accepts candidates

let contained q1 q2 = hom_exists ~from:q2 ~into:q1

let equivalent q1 q2 = contained q1 q2 && contained q2 q1
