(** Hand-written lexer for the coordination-rules file syntax. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW_NODE
  | KW_RULE
  | KW_AT
  | KW_RELATION
  | KW_FACT
  | KW_CONSTRAINT
  | KW_MEDIATOR
  | KW_TRUE
  | KW_FALSE
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | COMMA
  | COLON
  | SEMI
  | ARROW  (** [<-] *)
  | EQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

type positioned = { token : token; line : int }

exception Lex_error of { line : int; message : string }

val tokenize : string -> positioned list
(** Whole-input tokenisation.  Comments run from [//] or [#] to end of
    line.  @raise Lex_error on an unexpected character or unterminated
    string. *)

val describe : token -> string
