(** Conjunctive queries with comparison predicates.

    A query has the shape

    {[ head(x̄, z̄)  <-  B1(...), ..., Bk(...), c1, ..., cm ]}

    where each [Bi] is a relational atom, each [cj] a comparison
    between terms, [x̄] are the head variables occurring in the body
    and [z̄] are {e existential head variables} (head variables not
    bound in the body).  Existential head variables are what makes the
    coordination rules GLAV: the paper instantiates them with fresh
    marked nulls.  A user query, by contrast, must not have them. *)

type comparison_op = Eq | Neq | Lt | Le | Gt | Ge

type comparison = { left : Term.t; op : comparison_op; right : Term.t }

type t = {
  head : Atom.t;
  body : Atom.t list;
  comparisons : comparison list;
}

val make :
  head:Atom.t -> body:Atom.t list -> ?comparisons:comparison list -> unit -> t

val head_vars : t -> string list

val body_vars : t -> string list
(** Variables occurring in relational body atoms (not comparisons). *)

val existential_head_vars : t -> string list
(** Head variables not occurring in any body atom. *)

val body_relations : t -> string list
(** Relation names in the body, without duplicates. *)

val is_safe : t -> bool
(** Every variable of every comparison occurs in some body atom, and
    the body is non-empty. *)

val has_existential_head : t -> bool

val well_formed : allow_existential_head:bool -> t -> (unit, string) result
(** Safety plus, unless allowed, the absence of existential head
    variables.  Returns a human-readable reason on failure. *)

val eval_comparison_op : comparison_op -> Codb_relalg.Value.t -> Codb_relalg.Value.t -> bool
(** Comparison semantics on values.  Equality on marked nulls is
    identity of the null; order comparisons involving a null are false
    (unknown collapses to false, which keeps answers sound). *)

val string_of_op : comparison_op -> string

val pp_comparison : comparison Fmt.t

val compare : t -> t -> int

val equal : t -> t -> bool

val pp : t Fmt.t

val to_string : t -> string

val intern_constants : t -> unit
(** Intern every constant of the query (head, body, comparisons) into
    the global value table, so later evaluation under the parallel
    runtime's minting freeze never has to create an intern slot.
    Idempotent and cheap; called at rule/subscription installation. *)
