(** Application of a GLAV rule head to body answers.

    Existential head variables are rendered as {!Codb_relalg.Value.Hole}
    placeholders (indexed by their position in
    {!Query.existential_head_vars}); the {e importing} node replaces
    them with fresh marked nulls after duplicate suppression
    ({!Codb_relalg.Tuple.instantiate_holes}).  Keeping holes on the wire —
    rather than minting nulls at the sender — is what lets the importer
    recognise that an incoming tuple is subsumed by one it already has,
    and hence what makes cyclic rule systems reach a fix-point. *)

val head_tuples : Query.t -> Subst.t list -> Codb_relalg.Tuple.t list
(** Project the substitutions on the head, mapping each existential
    head variable to its hole; de-duplicated, in {!Codb_relalg.Tuple.compare}
    order. *)

val instantiate :
  rule:string -> Codb_relalg.Tuple.t list -> Codb_relalg.Tuple.t list
(** Replace holes with fresh marked nulls labelled with the rule id. *)
