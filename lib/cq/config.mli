(** Network descriptions: the contents of a coordination-rules file.

    This is the artefact the paper's super-peer reads and broadcasts to
    every peer (Section 4): node declarations (schemas, optional base
    facts, optional integrity constraints, mediator flag) plus GLAV
    coordination rules between pairs of nodes.  The textual syntax is
    parsed by {!Parser} and printed by {!Pretty}. *)

type node_decl = {
  node_name : string;
  relations : Codb_relalg.Schema.t list;
  facts : (string * Codb_relalg.Tuple.t) list;
  mediator : bool;
      (** A mediator has no Local Database; the Wrapper evaluates all
          operations on temporary relations (paper, Section 2). *)
  constraints : Query.t list;
      (** Denial constraints: body-only patterns that must have no
          answer.  A node whose local data matches a constraint is
          locally inconsistent; per the paper's principle (d), the
          inconsistency does not propagate. *)
}

type rule_decl = {
  rule_id : string;
  importer : string;  (** the node whose schema the head refers to *)
  source : string;  (** the acquaintance whose schema the body refers to *)
  rule_query : Query.t;
}

type t = { nodes : node_decl list; rules : rule_decl list }

val node : t -> string -> node_decl option

val rules_importing_at : t -> string -> rule_decl list

val rules_sourced_at : t -> string -> rule_decl list

val acquaintances : t -> string -> string list
(** Nodes sharing at least one coordination rule with the given node
    (in either direction), without duplicates. *)

val validate : t -> (unit, string list) result
(** Full static checking: unique node and rule names, endpoints exist
    and differ, head/body relations exist in the right schemas with
    matching arities, rules are safe (existential heads allowed),
    constraints are safe, facts conform to their schemas. *)

val empty : t

val merge : t -> t -> t
(** Concatenate declarations (used by generators). *)
