(** Conjunctive-query containment via the classical homomorphism
    (Chandra–Merlin) test.

    [q1 ⊆ q2] iff there is a homomorphism from [q2] into the frozen
    canonical database of [q1] mapping head to head.  The test here is
    sound and complete for comparison-free queries; queries with
    comparisons are handled conservatively ({!contained} returns
    [false] unless the comparison sets are syntactically equal after
    applying the homomorphism).

    coDB uses containment to detect redundant coordination rules
    between the same pair of nodes (a rule whose body is contained in
    another rule's body with the same head brings no new data). *)

val hom_exists : from:Query.t -> into:Query.t -> bool
(** Is there a homomorphism from [from]'s body+head into [into]'s
    frozen body+head?  Comparison predicates of [from] must be
    entailed syntactically (each maps to a comparison of [into] or to
    a ground true comparison). *)

val contained : Query.t -> Query.t -> bool
(** [contained q1 q2] — is [q1 ⊆ q2] (every answer of [q1] is an
    answer of [q2])?  Sound; complete for comparison-free queries. *)

val equivalent : Query.t -> Query.t -> bool
