(** Terms of conjunctive queries: variables and constants. *)

type t =
  | Var of string
  | Cst of Codb_relalg.Value.t

val compare : t -> t -> int

val equal : t -> t -> bool

val is_var : t -> bool

val vars : t list -> string list
(** Variable names occurring in a term list, without duplicates, in
    first-occurrence order. *)

val pp : t Fmt.t

val to_string : t -> string
