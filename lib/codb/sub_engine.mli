(** Protocol glue for standing queries ({!Codb_sub}).

    The host side keeps each registered subscription's answer set
    current by feeding it the per-relation store deltas the update
    fix-point ({!Update.integrate_entry}) and local writes
    ({!System.insert_fact}) produce — a semi-naive join against just
    the delta, never a re-run of the query — and pushes the resulting
    answer deltas to subscribers: locally through a callback, remotely
    as [Answer_delta]/[Answer_batch] messages through the reliable
    transport, coalesced per subscriber during
    [Options.sub_batch_window] ({!Codb_sub.Outbox}).

    Every function is a no-op (or an [Error]) unless
    [Options.subscriptions] installed a registry on the node, so the
    feature leaves the seed protocol bit-for-bit untouched when off. *)

module Sub = Codb_sub.Subscription
module Mirror = Codb_sub.Mirror
module Peer_id = Codb_net.Peer_id
module Query = Codb_cq.Query

val register_local :
  Runtime.t -> ?on_delta:(Sub.delta -> unit) -> Query.t ->
  (string, string) result
(** Register a standing query at this node for a local client; seeds
    the answer set from the store and delivers the seed delta to
    [on_delta].  [Error] when subscriptions are off, the query is not
    a user query, a body relation is unknown, or the registry is
    full. *)

val unregister_local : Runtime.t -> string -> bool

val subscribe_remote :
  Runtime.t -> host:Peer_id.t -> ?on_delta:(Sub.delta -> unit) -> Query.t ->
  (string, string) result
(** Subscribe to a standing query hosted at [host]: create the local
    mirror and send [Sub_register] (the query travels in concrete
    syntax).  The host answers [Sub_registered] and a seed
    [Answer_delta] with its full current answer set. *)

val unsubscribe_remote : Runtime.t -> string -> bool
(** Drop the mirror and tell the host. *)

val mirror : Runtime.t -> string -> Mirror.t option

val on_store_delta :
  Runtime.t -> rel:string -> delta:Codb_relalg.Tuple.t list ->
  tag:(unit -> string) -> unit
(** The feed: [delta] tuples were just inserted into the store's
    [rel].  Runs the delta-evaluation pass for every affected hosted
    subscription and delivers the non-empty answer deltas, tagged with
    [tag ()] (lineage-derived provenance — which update, rule and hop
    moved the data).  [tag] is a thunk so the provenance string is
    never built when subscriptions are off or nothing is affected. *)

val refresh_all : Runtime.t -> tag:string -> unit
(** From-scratch diff of every hosted subscription against the store;
    used after bulk store imports, which bypass the per-tuple delta
    feed. *)

val rearm_towards : Runtime.t -> host:Peer_id.t -> unit
(** Re-send [Sub_register] for every mirror this node holds against
    [host] — called when [host] restarts, since its registry was
    volatile.  The host replies with a full-answer snapshot delta;
    mirrors absorb it idempotently. *)

val handle : Runtime.t -> src:Peer_id.t -> Payload.t -> unit
(** Dispatch the five [Sub_*]/[Answer_*] payloads; ignores
    everything else. *)
