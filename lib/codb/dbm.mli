(** The Database Manager: the node-side dispatcher.

    Paper, Section 2: "DBM processes both user queries and queries
    coming from the network, as well as global and query-dependent
    update requests ... and manages propagation of queries, update
    requests, query results and update results on the network."
    Concretely: every message delivered to a node passes through
    {!handle}, which routes it to the update engine, the query engine,
    discovery, or the control-plane handlers. *)

val handle : Runtime.t -> Payload.t Codb_net.Message.t -> unit
