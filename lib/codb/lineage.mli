(** Tuple lineage: how did a tuple end up in a node's Local Database?

    Every tuple an update integrates is recorded with the coordination
    rule that delivered it, the length of its propagation path, and
    the simulated arrival time — the per-tuple counterpart of the
    statistics module's aggregates, and the data behind the shell's
    [why] command.  Tuples without a record are the node's own base
    facts. *)

type import = {
  li_rule : string;  (** the outgoing link the tuple arrived on *)
  li_hops : int;  (** propagation path length *)
  li_at : float;  (** simulated arrival time *)
}

type origin =
  | Base  (** a declared fact or a local insert *)
  | Imported of import list
      (** delivered by updates, possibly over several routes *)

type t

val create : unit -> t

val record_import : t -> rel:string -> Codb_relalg.Tuple.t -> import -> unit

val imports : t -> rel:string -> Codb_relalg.Tuple.t -> import list
(** Oldest first; empty for base facts. *)

val all : t -> ((string * Codb_relalg.Tuple.t) * import list) list
(** Every recorded entry in (relation, tuple) order — what the
    durability layer writes into snapshots. *)

val clear : t -> unit
(** Forget everything (an honest crash destroys lineage too; recovery
    re-fills it from the snapshot and log). *)

val origin_of :
  store:Codb_relalg.Database.t -> t -> rel:string -> Codb_relalg.Tuple.t ->
  origin option
(** [None] when the tuple is not in the store at all. *)

val pp_origin : origin Fmt.t
