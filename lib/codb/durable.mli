(** The durability layer ({!Options.durability} = [Dur_wal]): WAL
    record and snapshot formats, commit-point logging hooks, and the
    recovery path that turns a backend's bytes back into live node
    state.

    The on-disk format reuses the compact wire codec
    ({!Codb_net.Codec}); framing and CRC protection live below in
    {!Codb_store}.  Snapshots cover the LDB relations, lineage tags,
    reliable-transport sequence state, per-update sent-filters and the
    subscription registry/mirror state; log records cover each commit
    point between snapshots.  Every logging hook is a no-op on nodes
    without a WAL, so the default configuration pays nothing. *)

module Peer_id = Codb_net.Peer_id
module Tuple = Codb_relalg.Tuple
module Backend = Codb_store.Backend
module Wal = Codb_store.Wal

type owner = Olocal | Oremote of Peer_id.t
    (** who registered a hosted subscription; a local client's
        callback cannot be persisted, so a recovered [Olocal]
        registration resumes with no callback *)

type record =
  | Insert of { rel : string; tuples : Tuple.t list }
      (** a direct local write ({!System.insert_fact}) *)
  | Import of {
      rule : string;
      rel : string;
      hops : int;
      at : float;
      tuples : Tuple.t list;
    }  (** tuples an update integrated, with their lineage *)
  | Seq_reserve of { upto : int }
      (** transport sequence numbers below [upto] may have been used *)
  | Sub_add of { sub_id : string; owner : owner; query_text : string }
  | Sub_remove of { sub_id : string }
  | Mirror_add of { sub_id : string; host : Peer_id.t; query_text : string }
  | Mirror_remove of { sub_id : string }

val encode_record : ?dict:Codb_net.Codec.Dict.sender -> record -> string
(** With [dict] ([Options.link_dicts]): a marker byte plus the record
    with strings encoded incrementally against the log stream's
    dictionary — a string crosses the log once per compaction interval.
    Without: the classic per-record inline format.  A log may mix
    both. *)

val decode_record : ?dict:(int, string) Hashtbl.t -> string -> record
(** [dict] is the replay mirror for dictionary-mode records, built in
    record order from an empty table at the start of the log tail.
    @raise Codb_net.Codec.Malformed on corrupt input, or on a
    dictionary-mode record when [dict] is missing or lacks the
    referenced id. *)

val encode_snapshot : ?tabled:bool -> Node.t -> string
(** Serialize the node's durable state, everything sorted so equal
    states produce byte-identical snapshots.  [tabled] selects the v2
    layout: a sorted, front-coded string table up front (each entry
    stores only the suffix past its shared prefix with the previous
    entry), the body referencing it by id.  Decode auto-detects the
    version. *)

(** {1 Commit-point hooks} — called by {!System}, {!Update},
    {!Sub_engine} and {!Reliable}; no-ops when [node.wal] is [None]. *)

val log_insert : Node.t -> rel:string -> Tuple.t list -> unit

val log_import :
  Node.t -> rule:string -> rel:string -> hops:int -> at:float ->
  Tuple.t list -> unit

val log_sub_add : Node.t -> sub_id:string -> owner:owner -> query_text:string -> unit

val log_sub_remove : Node.t -> sub_id:string -> unit

val log_mirror_add :
  Node.t -> sub_id:string -> host:Peer_id.t -> query_text:string -> unit

val log_mirror_remove : Node.t -> sub_id:string -> unit

val note_seq : Node.t -> int -> unit
(** Log a [Seq_reserve] when the allocated transport sequence number
    reaches the current reservation; reservations cover chunks of 64
    so the hot send path logs once per chunk. *)

val note_bulk_load : Node.t -> unit
(** A bulk store import bypassed the per-tuple hooks: snapshot now. *)

val install : Node.t -> Options.t -> backend:Backend.t -> Wal.t
(** Create and attach a fresh WAL whose snapshot callback serializes
    this node. *)

type recovery_stats = {
  rv_records : int;  (** intact log records replayed *)
  rv_replayed_bytes : int;  (** snapshot + log bytes consumed *)
  rv_truncated : bool;  (** the log tail was damaged and cut *)
  rv_had_snapshot : bool;
}

val recover : Node.t -> Options.t -> backend:Backend.t -> recovery_stats
(** Rebuild the node from its backend: latest valid snapshot, then the
    intact log tail (truncating at the first torn or corrupt record),
    then a fresh transport relay seeded with the recovered sequence
    reservation and dedup keys, then a fresh WAL with an immediate
    compacting snapshot.  Expects the volatile state already reset
    ({!Node.reset_volatile}, {!Node.reset_store},
    {!Node.configure_subs}).  Credits {!Stats.note_recovery}. *)

val database_digest : Codb_relalg.Database.t -> int
(** Order-insensitive CRC32 of the store contents: equal iff the same
    relations hold the same tuples (hash collisions aside).  The
    store-equivalence gate of the recovery bench and qcheck
    properties. *)
