(** Topology discovery (paper Sections 3–4).

    JXTA let a coDB peer discover peers it has no coordination rules
    with; each node's UI shows "which other nodes (not acquaintances)
    it has discovered".  The simulator's equivalent is a TTL-bounded
    probe flood over the existing pipes: every node on the way answers
    with itself and its neighbourhood, replies routed back hop by hop
    along the probe's path, and the origin accumulates the results in
    [Node.known_peers]. *)

module Peer_id = Codb_net.Peer_id

val start : Runtime.t -> ttl:int -> string
(** Launch a probe; returns its identifier.  The origin's immediate
    neighbours are recorded right away.  @raise Invalid_argument on a
    negative [ttl]. *)

val handle : Runtime.t -> src:Peer_id.t -> Payload.t -> unit
(** Process [Discovery_*] messages; others are ignored. *)
