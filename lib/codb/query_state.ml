module Peer_id = Codb_net.Peer_id
module Tuple = Codb_relalg.Tuple
module Tuple_set = Codb_relalg.Relation.Tuple_set
module Database = Codb_relalg.Database

type pending = {
  p_ref : string;
  p_rule : string;
  mutable p_done : bool;
  mutable p_failed : bool;
  mutable p_touched : bool;
}

type kind =
  | Root of {
      query : Codb_cq.Query.t;
      mutable result : Tuple.t list option;
      mutable streamed : Tuple_set.t;
      on_answer : (Tuple.t list -> unit) option;
    }
  | Responder of {
      requester : Peer_id.t;
      in_rule : string;
      label : Peer_id.t list;
      constraints : Codb_cq.Specialize.t;
      mutable from_cache : bool;
    }

type t = {
  qst_query : Ids.query_id;
  qst_ref : string;
  qst_kind : kind;
  qst_overlay : Database.t;
  mutable qst_pending : pending list;
  mutable qst_sent : Tuple_set.t;
  mutable qst_closed : bool;
  mutable qst_contacted : Peer_id.t list;
  mutable qst_complete : bool;
  mutable qst_unacked : int;
}

let create ~query_id ~ref_ ~kind ~overlay =
  {
    qst_query = query_id;
    qst_ref = ref_;
    qst_kind = kind;
    qst_overlay = overlay;
    qst_pending = [];
    qst_sent = Tuple_set.empty;
    qst_closed = false;
    qst_contacted = [];
    qst_complete = true;
    qst_unacked = 0;
  }

let add_pending st ~ref_ ~rule =
  st.qst_pending <-
    { p_ref = ref_; p_rule = rule; p_done = false; p_failed = false; p_touched = false }
    :: st.qst_pending

let find_pending st ref_ =
  List.find_opt (fun p -> String.equal p.p_ref ref_) st.qst_pending

let note_contacted st peer =
  if not (List.mem peer st.qst_contacted) then
    st.qst_contacted <- peer :: st.qst_contacted

let mark_done st ~ref_ =
  List.iter (fun p -> if String.equal p.p_ref ref_ then p.p_done <- true) st.qst_pending

let mark_failed st ~ref_ =
  match find_pending st ref_ with
  | Some p when (not p.p_done) && not p.p_failed ->
      p.p_failed <- true;
      true
  | Some _ | None -> false

let all_done st = List.for_all (fun p -> p.p_done || p.p_failed) st.qst_pending

let unsent st tuples =
  let fresh = List.filter (fun t -> not (Tuple_set.mem t st.qst_sent)) tuples in
  st.qst_sent <- List.fold_left (fun acc t -> Tuple_set.add t acc) st.qst_sent fresh;
  fresh
