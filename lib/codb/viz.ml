module Config = Codb_cq.Config

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c -> if c = '"' then Buffer.add_string buf "\\\"" else Buffer.add_char buf c)
    s;
  Buffer.contents buf

let topology_dot cfg =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph codb {\n  rankdir=LR;\n  node [shape=box];\n";
  List.iter
    (fun n ->
      let style = if n.Config.mediator then " [style=dashed]" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\"%s;\n" (escape n.Config.node_name) style))
    cfg.Config.nodes;
  List.iter
    (fun r ->
      (* data flows source -> importer *)
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"];\n" (escape r.Config.source)
           (escape r.Config.importer) (escape r.Config.rule_id)))
    cfg.Config.rules;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let dependency_dot cfg =
  let cyclic = List.concat (Analysis.cyclic_components cfg) in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "digraph codb_rules {\n  node [shape=ellipse];\n";
  List.iter
    (fun r ->
      let id = r.Config.rule_id in
      let style =
        if List.mem id cyclic then " [style=filled, fillcolor=lightcoral]" else ""
      in
      Buffer.add_string buf (Printf.sprintf "  \"%s\"%s;\n" (escape id) style))
    cfg.Config.rules;
  List.iter
    (fun (a, b) ->
      Buffer.add_string buf (Printf.sprintf "  \"%s\" -> \"%s\";\n" (escape a) (escape b)))
    (Analysis.dependency_edges cfg);
  Buffer.add_string buf "}\n";
  Buffer.contents buf
