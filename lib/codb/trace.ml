module Peer_id = Codb_net.Peer_id

type direction = Sent | Delivered

type event = {
  ev_at : float;
  ev_direction : direction;
  ev_src : Peer_id.t;
  ev_dst : Peer_id.t;
  ev_what : string;
}

type t = {
  capacity : int;
  buffer : event option array;
  mutable next : int;  (* total events ever recorded *)
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be positive";
  { capacity; buffer = Array.make capacity None; next = 0 }

let record t event =
  t.buffer.(t.next mod t.capacity) <- Some event;
  t.next <- t.next + 1

let length t = min t.next t.capacity

let dropped t = max 0 (t.next - t.capacity)

let events t =
  let n = length t in
  let start = t.next - n in
  List.filter_map
    (fun k -> t.buffer.((start + k) mod t.capacity))
    (List.init n (fun k -> k))

let clear t =
  Array.fill t.buffer 0 t.capacity None;
  t.next <- 0

let pp_event ppf e =
  let arrow = match e.ev_direction with Sent -> "->" | Delivered -> "=>" in
  Fmt.pf ppf "%.4f %a %s %a : %s" e.ev_at Peer_id.pp e.ev_src arrow Peer_id.pp e.ev_dst
    e.ev_what

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut pp_event) (events t);
  if dropped t > 0 then Fmt.pf ppf "@,(%d earlier events dropped)" (dropped t)
