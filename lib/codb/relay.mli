(** Reliable-transport state: sequence numbers, in-flight entries and
    receiver-side duplicate suppression.

    This is the {e state} half of the transport; the {e logic} half
    ({!Reliable}) lives above the {!Runtime} record so it can send and
    schedule.  One [Relay.t] per node, owned by {!Node}. *)

module Peer_id = Codb_net.Peer_id

type entry = {
  e_dst : Peer_id.t;
  e_payload : Payload.t;
      (** the wrapped [Payload.Seq] frame; retransmissions resend it
          verbatim so the receiver's dedup key never changes *)
  mutable e_attempts : int;  (** retransmissions so far *)
  mutable e_settled : bool;
      (** acked or abandoned; stale retransmit timers check this *)
  e_on_settled : (ok:bool -> unit) option;
}

type t

val create : ?next_seq:int -> ?seen:string list -> unit -> t
(** Optionally seeded with a recovered sequence counter and dedup
    keys: a node restarting from a WAL snapshot must neither reuse
    sequence numbers its peers recorded nor re-process retransmitted
    messages it already integrated. *)

val next_seq : t -> int
(** The next sequence number to be handed out (snapshot state). *)

val seen_keys : t -> string list
(** The dedup table's keys, sorted (snapshot state). *)

val fresh_seq : t -> int
(** Monotonic per-node sequence number.  Survives {!abandon} so a
    restarted node never reuses a sequence its peers may have seen. *)

val register : t -> seq:int -> entry -> unit

val find : t -> int -> entry option

val settle : t -> int -> entry option
(** Mark acked/abandoned and remove from the in-flight table.  Returns
    the entry the first time only; [None] if unknown or already
    settled (duplicate acks are harmless). *)

val inflight_count : t -> int

val mark_seen : t -> src:Peer_id.t -> seq:int -> bool
(** Receiver-side dedup: [true] iff (src, seq) is new.  The table
    survives node restarts (see {!abandon}). *)

val abandon : t -> unit
(** Crash/restart: settle every in-flight entry {e without} invoking
    callbacks (the volatile protocol state they would touch is being
    cleared anyway) and empty the table.  [next_seq] and the seen
    table are kept. *)
