module Peer_id = Codb_net.Peer_id
module Network = Codb_net.Network
module Message = Codb_net.Message
module Pretty = Codb_cq.Pretty

let peer_name = "superpeer"

type t = {
  sp_id : Peer_id.t;
  sp_net : Payload.t Network.t;
  mutable sp_peers : Peer_id.t list;
  mutable sp_version : int;
  mutable sp_collected : Stats.snapshot list;
  mutable sp_send_drops : int;
}

let id sp = sp.sp_id

let on_message sp (msg : Payload.t Message.t) =
  match msg.Message.payload with
  | Payload.Stats_response { stats } -> sp.sp_collected <- stats :: sp.sp_collected
  | Payload.Seq { seq; inner = _ } ->
      (* the super-peer keeps no transport state: acknowledge so the
         sender stops retransmitting, ignore the content as before *)
      ignore
        (Network.send sp.sp_net ~src:sp.sp_id ~dst:msg.Message.src
           (Payload.Seq_ack { seq }))
  | Payload.Seq_ack _ -> ()
  | Payload.Update_request _ | Payload.Update_data _ | Payload.Update_batch _
  | Payload.Update_link_closed _
  | Payload.Update_ack _ | Payload.Update_terminated _ | Payload.Query_request _
  | Payload.Query_data _ | Payload.Query_done _ | Payload.Rules_file _
  | Payload.Start_update | Payload.Stats_request | Payload.Discovery_probe _
  | Payload.Discovery_reply _ | Payload.Sub_register _ | Payload.Sub_registered _
  | Payload.Sub_unregister _ | Payload.Answer_delta _ | Payload.Answer_batch _ ->
      ()

let create ~net ~peers =
  let sp_id = Peer_id.of_string peer_name in
  Network.add_peer net sp_id;
  let sp =
    { sp_id; sp_net = net; sp_peers = []; sp_version = 0; sp_collected = [];
      sp_send_drops = 0 }
  in
  Network.set_handler net sp_id (on_message sp);
  let attach peer =
    Network.connect net sp_id peer;
    sp.sp_peers <- peer :: sp.sp_peers
  in
  List.iter attach peers;
  sp.sp_peers <- List.rev sp.sp_peers;
  sp

let track sp peer =
  if not (List.exists (Peer_id.equal peer) sp.sp_peers) then begin
    Network.connect sp.sp_net sp.sp_id peer;
    sp.sp_peers <- sp.sp_peers @ [ peer ]
  end

let send sp ~dst payload =
  if not (Network.send sp.sp_net ~src:sp.sp_id ~dst payload) then
    sp.sp_send_drops <- sp.sp_send_drops + 1

let send_drops sp = sp.sp_send_drops

let broadcast sp payload = List.iter (fun peer -> send sp ~dst:peer payload) sp.sp_peers

let broadcast_rules sp cfg =
  sp.sp_version <- sp.sp_version + 1;
  let text = Pretty.config_to_string cfg in
  broadcast sp (Payload.Rules_file { version = sp.sp_version; text });
  sp.sp_version

let trigger_update sp ~at = send sp ~dst:at Payload.Start_update

let request_stats sp =
  sp.sp_collected <- [];
  broadcast sp Payload.Stats_request

let collected sp =
  List.sort
    (fun a b -> Peer_id.compare a.Stats.snap_node b.Stats.snap_node)
    sp.sp_collected
