(** Graphviz (DOT) renderings of a network, the textual counterpart of
    the original demo's topology windows (paper Figures 1 and 3). *)

module Config = Codb_cq.Config

val topology_dot : Config.t -> string
(** One graph node per peer (mediators dashed), one directed edge per
    coordination rule from source to importer (the direction data
    flows), labelled with the rule id. *)

val dependency_dot : Config.t -> string
(** The global rule-dependency graph ({!Analysis.dependency_edges}):
    one node per rule, an edge from [a] to [b] when [a] feeds [b].
    Rules inside cyclic components are highlighted — they are the ones
    needing fix-point iteration. *)
