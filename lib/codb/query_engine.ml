module Peer_id = Codb_net.Peer_id
module Config = Codb_cq.Config
module Query = Codb_cq.Query
module Atom = Codb_cq.Atom
module Eval = Codb_cq.Eval
module Specialize = Codb_cq.Specialize
module Tuple = Codb_relalg.Tuple
module Database = Codb_relalg.Database
module Q = Query_state

let src_log = Logs.Src.create "codb.query" ~doc:"coDB query answering"

module Log = (val Logs.src_log src_log : Logs.LOG)

let head_rel (r : Config.rule_decl) = r.Config.rule_query.Query.head.Atom.rel

let me (rt : Runtime.t) = rt.node.Node.node_id

let qstat (rt : Runtime.t) qid = Stats.query_stat rt.node.Node.stats ~now:(rt.now ()) qid

(* Attribute the index probes / relation scans performed by [f] to the
   query's statistics. *)
let with_counters rt qid f =
  let qs = qstat rt qid in
  Stats.with_eval_counters
    ~note:(fun ~probes ~scans ~zvisited ~zpruned ->
      qs.Stats.qs_probes <- qs.Stats.qs_probes + probes;
      qs.Stats.qs_scans <- qs.Stats.qs_scans + scans;
      qs.Stats.qs_zvisited <- qs.Stats.qs_zvisited + zvisited;
      qs.Stats.qs_zpruned <- qs.Stats.qs_zpruned + zpruned)
    f

(* Is [st] still the instance the node knows under its reference?  A
   crash clears the table; timers and transport callbacks armed before
   must not touch the orphaned record. *)
let is_current (rt : Runtime.t) (st : Q.t) =
  match Hashtbl.find_opt rt.Runtime.node.Node.query_instances st.Q.qst_ref with
  | Some current -> current == st
  | None -> false

let complete_root rt (st : Q.t) query set_result =
  let answers =
    with_counters rt st.Q.qst_query (fun () ->
        Wrapper.user_answers ~opts:rt.Runtime.opts st.Q.qst_overlay query)
  in
  set_result answers;
  st.Q.qst_closed <- true;
  (* a partial answer is a lower bound, not the query's answer: caching
     it would keep serving the hole long after the network healed *)
  (match rt.Runtime.node.Node.cache with
  | Some cache when st.Q.qst_complete ->
      Codb_cache.Qcache.store cache ~now:(rt.Runtime.now ()) query answers
        ~sources:(me rt :: st.Q.qst_contacted)
  | Some _ | None -> ());
  let qs = qstat rt st.Q.qst_query in
  qs.Stats.qs_finished <- Some (rt.Runtime.now ());
  qs.Stats.qs_answers <- List.length answers;
  qs.Stats.qs_certain <- List.length (Eval.certain answers);
  qs.Stats.qs_complete <- st.Q.qst_complete;
  if not st.Q.qst_complete then Stats.note_partial_answer rt.Runtime.node.Node.stats

(* Responders on an inconsistent node serve no data (principle (d)). *)
let may_export (rt : Runtime.t) =
  rt.node.Node.decl.Config.constraints = [] || Node.is_consistent rt.node

let finish_responder rt (st : Q.t) ~requester ~in_rule =
  st.Q.qst_closed <- true;
  (* The complete constrained answer stream of this rule instance is
     worth remembering: a later request with the same (or stronger)
     constraints is served without re-running the diffusion.  Partial
     streams are never stored. *)
  (match (st.Q.qst_kind, rt.Runtime.node.Node.cache) with
  | Q.Responder { constraints; label; from_cache; _ }, Some cache
    when rt.Runtime.opts.Options.pushdown && st.Q.qst_complete && not from_cache ->
      Codb_cache.Qcache.store_rule cache ~now:(rt.Runtime.now ()) ~rule_id:in_rule
        ~label constraints
        (Q.Tuple_set.elements st.Q.qst_sent)
        ~sources:(me rt :: st.Q.qst_contacted)
  | (Q.Responder _ | Q.Root _), _ -> ());
  ignore
    (Reliable.send_noted rt ~dst:requester
       (Payload.Query_done
          { query_id = st.Q.qst_query; request_ref = st.Q.qst_ref; rule_id = in_rule;
            complete = st.Q.qst_complete }))

let check_completion rt (st : Q.t) =
  if (not st.Q.qst_closed) && Q.all_done st && st.Q.qst_unacked = 0 then
    match st.Q.qst_kind with
    | Q.Root ({ query; _ } as root) ->
        complete_root rt st query (fun answers -> root.result <- Some answers)
    | Q.Responder { requester; in_rule; _ } -> finish_responder rt st ~requester ~in_rule

(* A sub-request is lost: the transport gave up on delivering it, or
   its failure deadline passed without a sign of life.  The instance
   stops waiting and whatever completes from here is explicitly
   partial. *)
let expire_pending rt (st : Q.t) ~sub_ref =
  if is_current rt st && (not st.Q.qst_closed) && Q.mark_failed st ~ref_:sub_ref then begin
    Log.warn (fun m ->
        m "%a: sub-request %s of %a declared failed" Peer_id.pp (me rt) sub_ref
          Ids.pp_query st.Q.qst_query);
    Hashtbl.remove rt.Runtime.node.Node.sub_refs sub_ref;
    st.Q.qst_complete <- false;
    Stats.note_query_timeout rt.Runtime.node.Node.stats;
    check_completion rt st
  end

(* Per-sub-request stall watchdog.  An absolute deadline would be wrong:
   a deep sub-tree legitimately needs many windows.  Instead the timer
   re-arms as long as the sub-request keeps producing data, and only a
   completely silent window expires it. *)
let rec arm_sub_deadline rt (st : Q.t) ~sub_ref =
  rt.Runtime.schedule ~delay:(Options.failure_deadline rt.Runtime.opts) (fun () ->
      if is_current rt st && not st.Q.qst_closed then
        match Q.find_pending st sub_ref with
        | None -> ()
        | Some p ->
            if not (p.Q.p_done || p.Q.p_failed) then
              if p.Q.p_touched then begin
                p.Q.p_touched <- false;
                arm_sub_deadline rt st ~sub_ref
              end
              else expire_pending rt st ~sub_ref)

(* Send sub-requests for every outgoing link that can contribute to
   [rels], skipping nodes already on the label.  Registers the
   pending entries and the sub-reference routing; whenever messages can
   be lost (reliable transport, or faults injected under fire-and-forget)
   each sub-request also gets a failure deadline, so a lost completion
   signal marks the branch failed instead of hanging the query forever. *)
let fan_out rt (st : Q.t) ~query ~rels ~label =
  let relevant = Deps.relevant_for_query rt.Runtime.node.Node.outgoing ~rels in
  (* Constraint pushdown: project the requesting query's restrictions
     on the rule's head relation into the sub-request, so the acquaintance
     can filter (and further push) before tuples hit the wire. *)
  let constraints_for (o : Config.rule_decl) =
    match query with
    | None -> Specialize.any
    | Some q ->
        Specialize.of_query
          ~max_preds:rt.Runtime.opts.Options.pushdown_max_preds q ~rel:(head_rel o)
  in
  let consider (o : Config.rule_decl) =
    let target = Peer_id.of_string o.Config.source in
    if not (List.exists (Peer_id.equal target) label) then begin
      let sub_ref = Node.fresh_ref rt.Runtime.node in
      let constraints = constraints_for o in
      let on_settled ~ok = if not ok then expire_pending rt st ~sub_ref in
      let sent =
        Reliable.send_noted ~on_settled rt ~dst:target
          (Payload.Query_request
             { query_id = st.Q.qst_query; request_ref = sub_ref;
               rule_id = o.Config.rule_id; label; constraints })
      in
      if sent then begin
        if not (Specialize.is_any constraints) then begin
          let qs = qstat rt st.Q.qst_query in
          qs.Stats.qs_pushed <- qs.Stats.qs_pushed + 1
        end;
        Q.add_pending st ~ref_:sub_ref ~rule:o.Config.rule_id;
        Q.note_contacted st target;
        Hashtbl.replace rt.Runtime.node.Node.sub_refs sub_ref st.Q.qst_ref;
        (* also under fire-and-forget transport when faults are being
           injected: a silently dropped request or completion signal
           must expire into a partial answer, not hang the query *)
        if Options.reliable rt.Runtime.opts || Options.faults_enabled rt.Runtime.opts
        then arm_sub_deadline rt st ~sub_ref
      end
    end
  in
  List.iter consider relevant

(* Responder-side data send.  Under the reliable transport the message
   is tracked until its fate is known: completion (hence the
   completeness claim in [Query_done]) waits for every outstanding
   data ack, and a transport give-up taints the instance. *)
let send_data rt (st : Q.t) ~dst payload =
  if Options.reliable rt.Runtime.opts && Option.is_some rt.Runtime.node.Node.relay
  then begin
    st.Q.qst_unacked <- st.Q.qst_unacked + 1;
    let on_settled ~ok =
      if is_current rt st then begin
        if not ok then st.Q.qst_complete <- false;
        st.Q.qst_unacked <- max 0 (st.Q.qst_unacked - 1);
        check_completion rt st
      end
    in
    ignore (Reliable.send ~on_settled rt ~dst payload)
  end
  else ignore (Reliable.send_noted rt ~dst payload)

(* Streaming ("browse streaming results"): report answers not yet
   reported and return the enlarged reported-set. *)
let notify_fresh ~on_answer ~streamed answers =
  match on_answer with
  | None -> streamed
  | Some notify ->
      let fresh = List.filter (fun t -> not (Q.Tuple_set.mem t streamed)) answers in
      if fresh <> [] then notify fresh;
      List.fold_left (fun acc t -> Q.Tuple_set.add t acc) streamed fresh

let start ?on_answer rt qid query =
  (match Query.well_formed ~allow_existential_head:false query with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Query_engine.start: " ^ reason));
  let missing =
    List.filter
      (fun rel -> not (Database.has_relation rt.Runtime.node.Node.store rel))
      (Query.body_relations query)
  in
  if missing <> [] then
    invalid_arg
      ("Query_engine.start: unknown relation(s) " ^ String.concat ", " missing);
  let qs = qstat rt qid in
  let root_ref = "root:" ^ Ids.string_of_query qid in
  let cache_hit =
    match rt.Runtime.node.Node.cache with
    | None -> None
    | Some cache -> Codb_cache.Qcache.lookup cache ~now:(rt.Runtime.now ()) query
  in
  match cache_hit with
  | Some { Codb_cache.Qcache.answers; kind } ->
      (* answered entirely from the cache: no diffusion, the root
         instance is born closed *)
      let streamed = notify_fresh ~on_answer ~streamed:Q.Tuple_set.empty answers in
      let st =
        Q.create ~query_id:qid ~ref_:root_ref
          ~kind:(Q.Root { query; result = Some answers; streamed; on_answer })
          ~overlay:(Database.create [])
      in
      st.Q.qst_closed <- true;
      Hashtbl.replace rt.Runtime.node.Node.query_instances root_ref st;
      qs.Stats.qs_finished <- Some (rt.Runtime.now ());
      qs.Stats.qs_answers <- List.length answers;
      qs.Stats.qs_certain <- List.length (Eval.certain answers);
      qs.Stats.qs_cache <-
        (match kind with
        | Codb_cache.Qcache.Exact -> Stats.Cache_hit_exact
        | Codb_cache.Qcache.By_containment -> Stats.Cache_hit_containment);
      root_ref
  | None ->
      if Option.is_some rt.Runtime.node.Node.cache then
        qs.Stats.qs_cache <- Stats.Cache_miss;
      let overlay = Database.copy rt.Runtime.node.Node.store in
      let st =
        Q.create ~query_id:qid ~ref_:root_ref
          ~kind:
            (Q.Root { query; result = None; streamed = Q.Tuple_set.empty; on_answer })
          ~overlay
      in
      Hashtbl.replace rt.Runtime.node.Node.query_instances root_ref st;
      (* stream the locally available answers right away *)
      (match st.Q.qst_kind with
      | Q.Root root ->
          let local =
            with_counters rt qid (fun () ->
                Wrapper.user_answers ~opts:rt.Runtime.opts overlay query)
          in
          root.streamed <- notify_fresh ~on_answer ~streamed:root.streamed local
      | Q.Responder _ -> ());
      fan_out rt st
        ~query:(if rt.Runtime.opts.Options.pushdown then Some query else None)
        ~rels:(Query.body_relations query) ~label:[ me rt ];
      check_completion rt st;
      root_ref

(* The query the responder actually evaluates: the rule's body with
   the pushed constraints folded in where sound ([`Unchanged] when
   nothing folds, [None] for [`Unsatisfiable]).  The [Specialize.matches]
   output filter is applied regardless — it alone enforces disjunctive
   and unpushable predicates. *)
let effective_rule_query constraints (inc : Config.rule_decl) =
  match Specialize.specialize_rule constraints inc.Config.rule_query with
  | `Unsatisfiable -> None
  | `Specialized q -> Some q
  | `Unchanged -> Some inc.Config.rule_query

let filter_outgoing rt qid constraints tuples =
  if Specialize.is_any constraints then tuples
  else begin
    let kept = List.filter (Specialize.matches constraints) tuples in
    let dropped = List.length tuples - List.length kept in
    if dropped > 0 then begin
      let qs = qstat rt qid in
      qs.Stats.qs_filtered_at_source <- qs.Stats.qs_filtered_at_source + dropped
    end;
    kept
  end

let on_request rt ~src ~request_ref ~rule_id ~label ~constraints qid =
  match Node.rule_in rt.Runtime.node rule_id with
  | None ->
      (* rule dropped by a topology change: answer "done" so the
         requester does not wait forever *)
      ignore
        (Reliable.send_noted rt ~dst:src
           (Payload.Query_done { query_id = qid; request_ref; rule_id; complete = true }))
  | Some inc ->
      let overlay = Database.copy rt.Runtime.node.Node.store in
      let new_label = label @ [ me rt ] in
      let st =
        Q.create ~query_id:qid ~ref_:request_ref
          ~kind:
            (Q.Responder
               { requester = src; in_rule = rule_id; label = new_label; constraints;
                 from_cache = false })
          ~overlay
      in
      Hashtbl.replace rt.Runtime.node.Node.query_instances request_ref st;
      if may_export rt then begin
        let cache_hit =
          match rt.Runtime.node.Node.cache with
          | Some cache when rt.Runtime.opts.Options.pushdown ->
              Codb_cache.Qcache.lookup_rule cache ~now:(rt.Runtime.now ()) ~rule_id
                ~label:new_label constraints
          | Some _ | None -> None
        in
        match cache_hit with
        | Some { Codb_cache.Qcache.answers; kind = _ } ->
            (* the cached stream is the rule's full constrained answer:
               serve it and stop — no evaluation, no fan-out *)
            (match st.Q.qst_kind with
            | Q.Responder r -> r.from_cache <- true
            | Q.Root _ -> ());
            let qs = qstat rt qid in
            qs.Stats.qs_pushdown_hits <- qs.Stats.qs_pushdown_hits + 1;
            let fresh = Q.unsent st answers in
            if fresh <> [] then
              send_data rt st ~dst:src
                (Payload.Query_data
                   { query_id = qid; request_ref; rule_id; tuples = fresh })
        | None -> (
            match effective_rule_query constraints inc with
            | None ->
                (* constraints are unsatisfiable on this rule: the
                   stream is empty by construction *)
                ()
            | Some eff ->
                let tuples =
                  with_counters rt qid (fun () ->
                      Wrapper.eval_query_full ~opts:rt.Runtime.opts overlay eff)
                in
                let kept = filter_outgoing rt qid constraints tuples in
                let fresh = Q.unsent st kept in
                if fresh <> [] then
                  send_data rt st ~dst:src
                    (Payload.Query_data
                       { query_id = qid; request_ref; rule_id; tuples = fresh });
                (* fan out from the specialized body so the pushed
                   constraints compose transitively down the tree *)
                fan_out rt st
                  ~query:(if rt.Runtime.opts.Options.pushdown then Some eff else None)
                  ~rels:(Query.body_relations eff) ~label:new_label)
      end;
      check_completion rt st

let on_data rt ~bytes ~request_ref ~rule_id ~tuples qid =
  let qs = qstat rt qid in
  qs.Stats.qs_data_msgs <- qs.Stats.qs_data_msgs + 1;
  qs.Stats.qs_bytes_in <- qs.Stats.qs_bytes_in + bytes;
  match Hashtbl.find_opt rt.Runtime.node.Node.sub_refs request_ref with
  | None -> Log.debug (fun m -> m "query data for unknown sub-reference %s" request_ref)
  | Some owner_ref -> (
      match Hashtbl.find_opt rt.Runtime.node.Node.query_instances owner_ref with
      | None -> ()
      | Some st -> (
          (match Q.find_pending st request_ref with
          | Some p -> p.Q.p_touched <- true
          | None -> ());
          match Node.rule_out rt.Runtime.node rule_id with
          | None -> ()
          | Some o ->
              let rel = head_rel o in
              let integration =
                Wrapper.integrate ~opts:rt.Runtime.opts ~rule_id st.Q.qst_overlay ~rel
                  tuples
              in
              if integration.Wrapper.fresh <> [] then begin
                match st.Q.qst_kind with
                | Q.Root root ->
                    (* the overlay is authoritatively evaluated on
                       completion; here we only stream the answers the
                       delta newly enables *)
                    let substs =
                      with_counters rt qid (fun () ->
                          Eval.delta_answers
                            ~naive:rt.Runtime.opts.Options.naive_delta
                            ~planner:rt.Runtime.opts.Options.planner
                            ~zone_maps:rt.Runtime.opts.Options.zone_maps
                            (Eval.of_database
                               ~index_budget:rt.Runtime.opts.Options.index_budget
                               st.Q.qst_overlay)
                            ~delta_rel:rel ~delta:integration.Wrapper.fresh
                            root.query)
                    in
                    let answers = Codb_cq.Apply.head_tuples root.query substs in
                    root.streamed <-
                      notify_fresh ~on_answer:root.on_answer
                        ~streamed:root.streamed answers
                | Q.Responder { requester; in_rule; constraints; _ } -> (
                    match Node.rule_in rt.Runtime.node in_rule with
                    | None -> ()
                    | Some inc ->
                        if may_export rt then
                          match effective_rule_query constraints inc with
                          | None -> ()
                          | Some eff ->
                              let derived =
                                with_counters rt qid (fun () ->
                                    Wrapper.eval_query_delta ~opts:rt.Runtime.opts
                                      ~naive:rt.Runtime.opts.Options.naive_delta
                                      st.Q.qst_overlay eff ~delta_rel:rel
                                      ~delta:integration.Wrapper.fresh)
                              in
                              let kept = filter_outgoing rt qid constraints derived in
                              let fresh = Q.unsent st kept in
                              if fresh <> [] then
                                send_data rt st ~dst:requester
                                  (Payload.Query_data
                                     { query_id = qid; request_ref = st.Q.qst_ref;
                                       rule_id = in_rule; tuples = fresh }))
              end))

let on_done rt ~request_ref ~complete qid =
  ignore qid;
  match Hashtbl.find_opt rt.Runtime.node.Node.sub_refs request_ref with
  | None -> ()
  | Some owner_ref -> (
      Hashtbl.remove rt.Runtime.node.Node.sub_refs request_ref;
      match Hashtbl.find_opt rt.Runtime.node.Node.query_instances owner_ref with
      | None -> ()
      | Some st ->
          if not complete then st.Q.qst_complete <- false;
          Q.mark_done st ~ref_:request_ref;
          check_completion rt st)

let handle rt ~src ~bytes payload =
  match payload with
  | Payload.Query_request { query_id; request_ref; rule_id; label; constraints } ->
      on_request rt ~src ~request_ref ~rule_id ~label ~constraints query_id
  | Payload.Query_data { query_id; request_ref; rule_id; tuples } ->
      on_data rt ~bytes ~request_ref ~rule_id ~tuples query_id
  | Payload.Query_done { query_id; request_ref; rule_id = _; complete } ->
      on_done rt ~request_ref ~complete query_id
  | Payload.Update_request _ | Payload.Update_data _ | Payload.Update_batch _
  | Payload.Update_link_closed _ | Payload.Update_ack _ | Payload.Update_terminated _
  | Payload.Rules_file _
  | Payload.Start_update | Payload.Stats_request | Payload.Stats_response _
  | Payload.Discovery_probe _ | Payload.Discovery_reply _ | Payload.Seq _
  | Payload.Seq_ack _ | Payload.Sub_register _ | Payload.Sub_registered _
  | Payload.Sub_unregister _ | Payload.Answer_delta _ | Payload.Answer_batch _ ->
      ()

let result node root_ref =
  match Hashtbl.find_opt node.Node.query_instances root_ref with
  | Some { Q.qst_kind = Q.Root { result; _ }; _ } -> result
  | Some { Q.qst_kind = Q.Responder _; _ } | None -> None
