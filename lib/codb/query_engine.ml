module Peer_id = Codb_net.Peer_id
module Config = Codb_cq.Config
module Query = Codb_cq.Query
module Atom = Codb_cq.Atom
module Eval = Codb_cq.Eval
module Tuple = Codb_relalg.Tuple
module Database = Codb_relalg.Database
module Q = Query_state

let src_log = Logs.Src.create "codb.query" ~doc:"coDB query answering"

module Log = (val Logs.src_log src_log : Logs.LOG)

let head_rel (r : Config.rule_decl) = r.Config.rule_query.Query.head.Atom.rel

let me (rt : Runtime.t) = rt.node.Node.node_id

let qstat (rt : Runtime.t) qid = Stats.query_stat rt.node.Node.stats ~now:(rt.now ()) qid

(* Attribute the index probes / relation scans performed by [f] to the
   query's statistics (the evaluator counters are global). *)
let with_counters rt qid f =
  let before = Eval.counters () in
  let result = f () in
  let after = Eval.counters () in
  let qs = qstat rt qid in
  qs.Stats.qs_probes <- qs.Stats.qs_probes + after.Eval.probes - before.Eval.probes;
  qs.Stats.qs_scans <- qs.Stats.qs_scans + after.Eval.scans - before.Eval.scans;
  result

(* Send sub-requests for every outgoing link that can contribute to
   [rels], skipping nodes already on the label.  Registers the
   pending entries and the sub-reference routing. *)
let fan_out rt (st : Q.t) ~rels ~label =
  let relevant = Deps.relevant_for_query rt.Runtime.node.Node.outgoing ~rels in
  let consider (o : Config.rule_decl) =
    let target = Peer_id.of_string o.Config.source in
    if not (List.exists (Peer_id.equal target) label) then begin
      let sub_ref = Node.fresh_ref rt.Runtime.node in
      let sent =
        rt.Runtime.send ~dst:target
          (Payload.Query_request
             { query_id = st.Q.qst_query; request_ref = sub_ref;
               rule_id = o.Config.rule_id; label })
      in
      if sent then begin
        Q.add_pending st ~ref_:sub_ref ~rule:o.Config.rule_id;
        Q.note_contacted st target;
        Hashtbl.replace rt.Runtime.node.Node.sub_refs sub_ref st.Q.qst_ref
      end
    end
  in
  List.iter consider relevant

let complete_root rt (st : Q.t) query set_result =
  let answers =
    with_counters rt st.Q.qst_query (fun () ->
        Wrapper.user_answers ~opts:rt.Runtime.opts st.Q.qst_overlay query)
  in
  set_result answers;
  st.Q.qst_closed <- true;
  (match rt.Runtime.node.Node.cache with
  | Some cache ->
      Codb_cache.Qcache.store cache ~now:(rt.Runtime.now ()) query answers
        ~sources:(me rt :: st.Q.qst_contacted)
  | None -> ());
  let qs = qstat rt st.Q.qst_query in
  qs.Stats.qs_finished <- Some (rt.Runtime.now ());
  qs.Stats.qs_answers <- List.length answers;
  qs.Stats.qs_certain <- List.length (Eval.certain answers)

(* Responders on an inconsistent node serve no data (principle (d)). *)
let may_export (rt : Runtime.t) =
  rt.node.Node.decl.Config.constraints = [] || Node.is_consistent rt.node

let finish_responder rt (st : Q.t) ~requester ~in_rule =
  st.Q.qst_closed <- true;
  ignore
    (rt.Runtime.send ~dst:requester
       (Payload.Query_done
          { query_id = st.Q.qst_query; request_ref = st.Q.qst_ref; rule_id = in_rule }))

let check_completion rt (st : Q.t) =
  if (not st.Q.qst_closed) && Q.all_done st then
    match st.Q.qst_kind with
    | Q.Root ({ query; _ } as root) ->
        complete_root rt st query (fun answers -> root.result <- Some answers)
    | Q.Responder { requester; in_rule; _ } -> finish_responder rt st ~requester ~in_rule

(* Streaming ("browse streaming results"): report answers not yet
   reported and return the enlarged reported-set. *)
let notify_fresh ~on_answer ~streamed answers =
  match on_answer with
  | None -> streamed
  | Some notify ->
      let fresh = List.filter (fun t -> not (Q.Tuple_set.mem t streamed)) answers in
      if fresh <> [] then notify fresh;
      List.fold_left (fun acc t -> Q.Tuple_set.add t acc) streamed fresh

let start ?on_answer rt qid query =
  (match Query.well_formed ~allow_existential_head:false query with
  | Ok () -> ()
  | Error reason -> invalid_arg ("Query_engine.start: " ^ reason));
  let missing =
    List.filter
      (fun rel -> not (Database.has_relation rt.Runtime.node.Node.store rel))
      (Query.body_relations query)
  in
  if missing <> [] then
    invalid_arg
      ("Query_engine.start: unknown relation(s) " ^ String.concat ", " missing);
  let qs = qstat rt qid in
  let root_ref = "root:" ^ Ids.string_of_query qid in
  let cache_hit =
    match rt.Runtime.node.Node.cache with
    | None -> None
    | Some cache -> Codb_cache.Qcache.lookup cache ~now:(rt.Runtime.now ()) query
  in
  match cache_hit with
  | Some { Codb_cache.Qcache.answers; kind } ->
      (* answered entirely from the cache: no diffusion, the root
         instance is born closed *)
      let streamed = notify_fresh ~on_answer ~streamed:Q.Tuple_set.empty answers in
      let st =
        Q.create ~query_id:qid ~ref_:root_ref
          ~kind:(Q.Root { query; result = Some answers; streamed; on_answer })
          ~overlay:(Database.create [])
      in
      st.Q.qst_closed <- true;
      Hashtbl.replace rt.Runtime.node.Node.query_instances root_ref st;
      qs.Stats.qs_finished <- Some (rt.Runtime.now ());
      qs.Stats.qs_answers <- List.length answers;
      qs.Stats.qs_certain <- List.length (Eval.certain answers);
      qs.Stats.qs_cache <-
        (match kind with
        | Codb_cache.Qcache.Exact -> Stats.Cache_hit_exact
        | Codb_cache.Qcache.By_containment -> Stats.Cache_hit_containment);
      root_ref
  | None ->
      if Option.is_some rt.Runtime.node.Node.cache then
        qs.Stats.qs_cache <- Stats.Cache_miss;
      let overlay = Database.copy rt.Runtime.node.Node.store in
      let st =
        Q.create ~query_id:qid ~ref_:root_ref
          ~kind:
            (Q.Root { query; result = None; streamed = Q.Tuple_set.empty; on_answer })
          ~overlay
      in
      Hashtbl.replace rt.Runtime.node.Node.query_instances root_ref st;
      (* stream the locally available answers right away *)
      (match st.Q.qst_kind with
      | Q.Root root ->
          let local =
            with_counters rt qid (fun () ->
                Wrapper.user_answers ~opts:rt.Runtime.opts overlay query)
          in
          root.streamed <- notify_fresh ~on_answer ~streamed:root.streamed local
      | Q.Responder _ -> ());
      fan_out rt st ~rels:(Query.body_relations query) ~label:[ me rt ];
      check_completion rt st;
      root_ref

let on_request rt ~src ~request_ref ~rule_id ~label qid =
  match Node.rule_in rt.Runtime.node rule_id with
  | None ->
      (* rule dropped by a topology change: answer "done" so the
         requester does not wait forever *)
      ignore
        (rt.Runtime.send ~dst:src
           (Payload.Query_done { query_id = qid; request_ref; rule_id }))
  | Some inc ->
      let overlay = Database.copy rt.Runtime.node.Node.store in
      let new_label = label @ [ me rt ] in
      let st =
        Q.create ~query_id:qid ~ref_:request_ref
          ~kind:(Q.Responder { requester = src; in_rule = rule_id; label = new_label })
          ~overlay
      in
      Hashtbl.replace rt.Runtime.node.Node.query_instances request_ref st;
      if may_export rt then begin
        let tuples =
          with_counters rt qid (fun () ->
              Wrapper.eval_rule_full ~opts:rt.Runtime.opts overlay inc)
        in
        let fresh = Q.unsent st tuples in
        if fresh <> [] then
          ignore
            (rt.Runtime.send ~dst:src
               (Payload.Query_data
                  { query_id = qid; request_ref; rule_id; tuples = fresh }));
        fan_out rt st
          ~rels:(Query.body_relations inc.Config.rule_query)
          ~label:new_label
      end;
      check_completion rt st

let on_data rt ~bytes ~request_ref ~rule_id ~tuples qid =
  let qs = qstat rt qid in
  qs.Stats.qs_data_msgs <- qs.Stats.qs_data_msgs + 1;
  qs.Stats.qs_bytes_in <- qs.Stats.qs_bytes_in + bytes;
  match Hashtbl.find_opt rt.Runtime.node.Node.sub_refs request_ref with
  | None -> Log.debug (fun m -> m "query data for unknown sub-reference %s" request_ref)
  | Some owner_ref -> (
      match Hashtbl.find_opt rt.Runtime.node.Node.query_instances owner_ref with
      | None -> ()
      | Some st -> (
          match Node.rule_out rt.Runtime.node rule_id with
          | None -> ()
          | Some o ->
              let rel = head_rel o in
              let integration =
                Wrapper.integrate ~opts:rt.Runtime.opts ~rule_id st.Q.qst_overlay ~rel
                  tuples
              in
              if integration.Wrapper.fresh <> [] then begin
                match st.Q.qst_kind with
                | Q.Root root ->
                    (* the overlay is authoritatively evaluated on
                       completion; here we only stream the answers the
                       delta newly enables *)
                    let substs =
                      with_counters rt qid (fun () ->
                          Eval.delta_answers
                            ~naive:rt.Runtime.opts.Options.naive_delta
                            ~planner:rt.Runtime.opts.Options.planner
                            (Eval.of_database
                               ~index_budget:rt.Runtime.opts.Options.index_budget
                               st.Q.qst_overlay)
                            ~delta_rel:rel ~delta:integration.Wrapper.fresh
                            root.query)
                    in
                    let answers = Codb_cq.Apply.head_tuples root.query substs in
                    root.streamed <-
                      notify_fresh ~on_answer:root.on_answer
                        ~streamed:root.streamed answers
                | Q.Responder { requester; in_rule; _ } -> (
                    match Node.rule_in rt.Runtime.node in_rule with
                    | None -> ()
                    | Some inc ->
                        if may_export rt then begin
                          let derived =
                            with_counters rt qid (fun () ->
                                Wrapper.eval_rule_delta ~opts:rt.Runtime.opts
                                  ~naive:rt.Runtime.opts.Options.naive_delta
                                  st.Q.qst_overlay inc ~delta_rel:rel
                                  ~delta:integration.Wrapper.fresh)
                          in
                          let fresh = Q.unsent st derived in
                          if fresh <> [] then
                            ignore
                              (rt.Runtime.send ~dst:requester
                                 (Payload.Query_data
                                    { query_id = qid; request_ref = st.Q.qst_ref;
                                      rule_id = in_rule; tuples = fresh }))
                        end)
              end))

let on_done rt ~request_ref qid =
  ignore qid;
  match Hashtbl.find_opt rt.Runtime.node.Node.sub_refs request_ref with
  | None -> ()
  | Some owner_ref -> (
      Hashtbl.remove rt.Runtime.node.Node.sub_refs request_ref;
      match Hashtbl.find_opt rt.Runtime.node.Node.query_instances owner_ref with
      | None -> ()
      | Some st ->
          Q.mark_done st ~ref_:request_ref;
          check_completion rt st)

let handle rt ~src ~bytes payload =
  match payload with
  | Payload.Query_request { query_id; request_ref; rule_id; label } ->
      on_request rt ~src ~request_ref ~rule_id ~label query_id
  | Payload.Query_data { query_id; request_ref; rule_id; tuples } ->
      on_data rt ~bytes ~request_ref ~rule_id ~tuples query_id
  | Payload.Query_done { query_id; request_ref; rule_id = _ } ->
      on_done rt ~request_ref query_id
  | Payload.Update_request _ | Payload.Update_data _ | Payload.Update_batch _
  | Payload.Update_link_closed _ | Payload.Update_ack _ | Payload.Update_terminated _
  | Payload.Rules_file _
  | Payload.Start_update | Payload.Stats_request | Payload.Stats_response _
  | Payload.Discovery_probe _ | Payload.Discovery_reply _ ->
      ()

let result node root_ref =
  match Hashtbl.find_opt node.Node.query_instances root_ref with
  | Some { Q.qst_kind = Q.Root { result; _ }; _ } -> result
  | Some { Q.qst_kind = Q.Responder _; _ } | None -> None
