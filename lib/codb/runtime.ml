module Peer_id = Codb_net.Peer_id

type t = {
  node : Node.t;
  opts : Options.t;
  send : dst:Peer_id.t -> Payload.t -> bool;
  now : unit -> float;
  schedule : delay:float -> (unit -> unit) -> unit;
  connect : Peer_id.t -> unit;
  disconnect : Peer_id.t -> unit;
  neighbours : unit -> Peer_id.t list;
}
