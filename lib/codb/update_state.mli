(** Per-node, per-update protocol state.

    Tracks the paper's open/closed states of incoming and outgoing
    links, the per-incoming-link caches of already-sent tuples, and
    the Dijkstra–Scholten engagement bookkeeping (parent, deficit)
    used to detect global quiescence of cyclic components. *)

module Peer_id = Codb_net.Peer_id
module Tuple_set = Codb_relalg.Relation.Tuple_set

type link_state = Link_open | Link_closed

type t = {
  ust_update : Ids.update_id;
  ust_initiator : bool;
  ust_scoped : bool;
      (** query-dependent update: only explicitly activated links take
          part *)
  mutable ust_parent : Peer_id.t option;
      (** Dijkstra–Scholten engagement parent; [None] for the
          initiator or while disengaged *)
  mutable ust_engaged : bool;
  mutable ust_deficit : int;  (** messages sent and not yet acknowledged *)
  ust_out : (string, link_state) Hashtbl.t;  (** my outgoing links *)
  ust_in : (string, link_state) Hashtbl.t;  (** my incoming links *)
  ust_sent : (string, Tuple_set.t) Hashtbl.t;
      (** per incoming link: head tuples (holes included) already sent *)
  mutable ust_terminated : bool;
      (** the terminated flood reached this node *)
  mutable ust_finished : bool;  (** local statistics were finalised *)
}

val create :
  initiator:bool ->
  ?scoped:bool ->
  outgoing:string list ->
  incoming:string list ->
  Ids.update_id ->
  t
(** The [outgoing]/[incoming] links start active (open).  A scoped
    update starts with empty lists; links join via {!activate_out} /
    {!activate_in}. *)

val out_state : t -> string -> link_state
(** Links never activated for this update read as closed: they carry
    no data, so nothing must wait for them. *)

val in_state : t -> string -> link_state

val is_active_in : t -> string -> bool
(** Was the incoming link ever activated (open or closed by now)? *)

val is_active_out : t -> string -> bool

val activate_out : t -> string -> unit

val activate_in : t -> string -> unit

val close_out : t -> string -> unit

val close_in : t -> string -> unit

val all_out_closed : t -> bool

val sent_cache : t -> string -> Tuple_set.t

val add_sent : t -> string -> Codb_relalg.Tuple.t list -> unit
