(** Per-node, per-update protocol state.

    Tracks the paper's open/closed states of incoming and outgoing
    links, the per-incoming-link caches of already-sent tuples (exact
    or Bloom-fronted, see {!Sent_filter}), the per-destination wire
    buffers used by message batching, and the Dijkstra–Scholten
    engagement bookkeeping (parent, deficit) used to detect global
    quiescence of cyclic components. *)

module Peer_id = Codb_net.Peer_id
module Tuple_set = Codb_relalg.Relation.Tuple_set

type link_state = Link_open | Link_closed

type t = {
  ust_update : Ids.update_id;
  ust_initiator : bool;
  ust_scoped : bool;
      (** query-dependent update: only explicitly activated links take
          part *)
  mutable ust_parent : Peer_id.t option;
      (** Dijkstra–Scholten engagement parent; [None] for the
          initiator or while disengaged *)
  mutable ust_engaged : bool;
  mutable ust_deficit : int;  (** messages sent and not yet acknowledged *)
  ust_out : (string, link_state) Hashtbl.t;  (** my outgoing links *)
  ust_in : (string, link_state) Hashtbl.t;  (** my incoming links *)
  ust_sent : (string, Sent_filter.t) Hashtbl.t;
      (** per incoming link: head tuples (holes included) already sent *)
  ust_bloom_bits : int;  (** filter sizing for lazily-created links *)
  ust_ring_capacity : int;
  ust_wire : (Peer_id.t, dest_buffer) Hashtbl.t;
      (** per-destination batching buffers (empty when batching is off) *)
  mutable ust_pending : int;
      (** total tuples sitting in wire buffers; must be 0 before the
          node may disengage, or termination could be declared while
          data is still unsent *)
  mutable ust_terminated : bool;
      (** the terminated flood reached this node *)
  mutable ust_finished : bool;  (** local statistics were finalised *)
  mutable ust_activity : int;
      (** bumped on every protocol message for this update; the
          initiator's stall watchdog force-terminates only when a whole
          failure-deadline window passes with no movement *)
  ust_unacked : (Peer_id.t, int) Hashtbl.t;
      (** reliable transport only: data messages sent to a destination
          and not yet settled (acked or given up) *)
  ust_deferred : (Peer_id.t, (string * bool) list) Hashtbl.t;
      (** [(rule, global)] link closes held back until the
          destination's in-flight data settles, newest first *)
}

and dest_buffer

val create :
  initiator:bool ->
  ?scoped:bool ->
  ?bloom_bits:int ->
  ?ring_capacity:int ->
  outgoing:string list ->
  incoming:string list ->
  Ids.update_id ->
  t
(** The [outgoing]/[incoming] links start active (open).  A scoped
    update starts with empty lists; links join via {!activate_out} /
    {!activate_in}.  [bloom_bits]/[ring_capacity] (defaults 0/512)
    size the {!Sent_filter} of every link; 0 bits = exact mode. *)

val touch : t -> unit
(** Note protocol activity (see [ust_activity]). *)

val out_state : t -> string -> link_state
(** Links never activated for this update read as closed: they carry
    no data, so nothing must wait for them. *)

val in_state : t -> string -> link_state

val is_active_in : t -> string -> bool
(** Was the incoming link ever activated (open or closed by now)? *)

val is_active_out : t -> string -> bool

val activate_out : t -> string -> unit

val activate_in : t -> string -> unit

val close_out : t -> string -> unit

val close_in : t -> string -> unit

val all_out_closed : t -> bool

(** {2 Sent filters} *)

val sent_filter : t -> string -> Sent_filter.t
(** The filter for one incoming link, created on first use. *)

val already_sent : t -> string -> Codb_relalg.Tuple.t -> bool

val add_sent : t -> string -> Codb_relalg.Tuple.t list -> unit

val sent_tracked : t -> string -> int
(** Exact entries currently tracked for the link (0 if never used). *)

val possible_resends : t -> int
(** Sum of {!Sent_filter.possible_resends} across links. *)

(** {2 Wire buffers}

    Outgoing update data waiting to be coalesced into one
    [Update_batch] per destination.  All counts are exact: a tuple
    enters [ust_pending] when buffered and leaves on {!take_buffer} or
    {!buffer_retract}. *)

val buffer_add :
  t -> dst:Peer_id.t -> rule:string -> hops:int -> Codb_relalg.Tuple.t list -> int
(** Buffer tuples for [dst]; same-window duplicates per rule are
    dropped.  Hop counts merge to the max.  Returns tuples newly
    buffered. *)

val buffer_retract : t -> dst:Peer_id.t -> rule:string -> Codb_relalg.Tuple.t -> bool
(** Remove a not-yet-flushed tuple (insert/retract coalescing: an
    insert cancelled in the same window ships zero bytes).  [false] if
    the tuple was not pending. *)

val buffer_size : t -> dst:Peer_id.t -> int

val take_buffer : t -> dst:Peer_id.t -> (string * int * Codb_relalg.Tuple.t list) list
(** Drain [dst]'s buffer: [(rule, hops, tuples)] per rule in rule
    order, insertion order within a rule.  Clears the buffer and
    decrements [ust_pending]. *)

val pending_tuples : t -> int

val buffered_dsts : t -> Peer_id.t list
(** Destinations with a non-empty buffer, sorted. *)

val flush_scheduled : t -> dst:Peer_id.t -> bool

val set_flush_scheduled : t -> dst:Peer_id.t -> bool -> unit

(** {2 Transport settlement}

    FIFO pipes made [Update_link_closed] arrive after the data it
    covers for free.  Retransmission and injected jitter break that:
    a retried data message can land {e after} the close, and the
    importer would integrate it but no longer forward it.  Under the
    reliable transport the sender therefore counts in-flight data per
    destination and holds each close back until everything in front of
    it has settled. *)

val dst_unacked : t -> dst:Peer_id.t -> int

val incr_unacked : t -> dst:Peer_id.t -> unit

val decr_unacked : t -> dst:Peer_id.t -> unit
(** Clamped at zero (duplicate settlements are harmless). *)

val defer_close : t -> dst:Peer_id.t -> rule:string -> global:bool -> unit

val take_deferred_closes : t -> dst:Peer_id.t -> (string * bool) list
(** Drain the deferred closes for [dst] in defer order. *)
