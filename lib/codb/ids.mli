(** Globally unique identifiers for updates and queries.

    The paper uses JXTA to generate unique global-update identifiers;
    here an identifier is the pair of the originating peer and a
    per-peer serial number, unique by construction. *)

module Peer_id = Codb_net.Peer_id

type update_id = { u_origin : Peer_id.t; u_serial : int }

type query_id = { q_origin : Peer_id.t; q_serial : int }

val update_id : Peer_id.t -> int -> update_id

val query_id : Peer_id.t -> int -> query_id

val equal_update : update_id -> update_id -> bool

val equal_query : query_id -> query_id -> bool

val pp_update : update_id Fmt.t

val pp_query : query_id Fmt.t

val string_of_update : update_id -> string

val string_of_query : query_id -> string
