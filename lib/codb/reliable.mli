(** Loss-tolerant message delivery over the raw {!Runtime.send}.

    When {!Options.reliable} is on (and the node carries a {!Relay}),
    {!send} frames the payload as [Payload.Seq {seq; inner}], keeps it
    in flight, and retransmits on a bounded exponential-backoff timer
    until the receiver's [Seq_ack] arrives or [max_retries] is
    exhausted.  Receivers ({!on_seq}) acknowledge {e every} delivery —
    the lost message may be the ack — and suppress duplicates by
    (sender, sequence) so retransmissions and fault-injected dups are
    idempotent.

    With the layer off (the default [ack_timeout = 0], or a stub
    runtime without a relay) every call degrades to the raw
    fire-and-forget send, byte-for-byte identical to the seed. *)

module Peer_id = Codb_net.Peer_id

val send :
  ?on_settled:(ok:bool -> unit) -> Runtime.t -> dst:Peer_id.t -> Payload.t -> bool
(** Reliable mode: returns [true] (the transport has custody) and
    later calls [on_settled ~ok:true] when acked or [~ok:false] after
    the last retry times out.  Raw mode: plain {!Runtime.send} result,
    [on_settled] is {e never} invoked.  [Stats_response] is always
    sent raw (the super-peer keeps no transport state). *)

val send_noted :
  ?on_settled:(ok:bool -> unit) -> Runtime.t -> dst:Peer_id.t -> Payload.t -> bool
(** {!send}, counting a [false] result in
    {!Stats.chaos}[.ch_send_drops] so formerly-ignored drops surface
    in reports. *)

val on_ack : Runtime.t -> int -> unit
(** Handle an incoming [Seq_ack]: settle the in-flight entry and fire
    its callback.  Duplicate and post-give-up acks are ignored. *)

val on_seq :
  Runtime.t -> src:Peer_id.t -> seq:int -> process:(Payload.t -> unit) -> Payload.t -> unit
(** Handle an incoming [Seq] frame: always re-ack, then run [process]
    on the inner payload iff (src, seq) was not seen before. *)
