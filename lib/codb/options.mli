(** Tunable behaviour of the coDB algorithms.

    The defaults implement the paper; the switches exist for the
    ablation experiments (E7/E8/E9 in DESIGN.md).  Disabling duplicate
    suppression on a cyclic network with existential head variables
    can make the fix-point diverge — that is the point of the
    ablation — so [max_update_events] bounds every run. *)

type t = {
  use_sent_cache : bool;
      (** per-incoming-link caches of already-sent tuples ("we delete
          from Ri those tuples which have been already sent") *)
  use_subsumption_dedup : bool;
      (** pre-insert duplicate suppression, null-aware ("we first
          remove from T those tuples which are already in R") *)
  naive_delta : bool;
      (** re-evaluate incoming links from scratch instead of
          semi-naively on the delta (ablation baseline) *)
  latency : float;  (** pipe latency, seconds *)
  byte_cost : float;  (** pipe transfer cost, seconds per byte *)
  max_update_events : int;
      (** safety bound on simulator events per run; generous by
          default *)
  use_query_cache : bool;
      (** per-node semantic query-answer cache (see
          {!Codb_cache.Qcache}); off by default so the paper's
          query-time behaviour is the baseline *)
  cache_capacity : int;  (** max cached queries per node; 0 = unbounded *)
  cache_max_bytes : int;  (** max cached answer bytes per node; 0 = unbounded *)
  cache_ttl : float;
      (** entry lifetime in simulated seconds; 0 = entries only die by
          epoch invalidation or capacity pressure *)
  cache_containment : bool;
      (** answer lookups from a cached superset query (the E9
          ablation switch) *)
  planner : bool;
      (** evaluate rules and queries through the cost-based join
          planner ({!Codb_cq.Plan}); [false] falls back to the legacy
          left-to-right greedy order (the planner ablation baseline) *)
  index_budget : int;
      (** max distinct hash indexes per relation (composite and
          single-column combined); 0 disables index building and every
          probe degrades to a filtered scan *)
  wire_codec : bool;
      (** size update traffic by the compact binary encoding
          ({!Payload.encoded_size}) instead of the legacy field-count
          estimator; the E15 ablation switch *)
  batch_window : float;
      (** simulated seconds that outgoing update data may linger in a
          per-destination buffer waiting to be coalesced into one
          message; 0 sends every rule firing immediately (the paper's
          behaviour) *)
  batch_max_tuples : int;
      (** flush a destination's buffer early once it holds this many
          tuples, bounding both memory and single-message size *)
  sent_bloom_bits : int;
      (** bits in the per-rule Bloom filter that fronts the sent-cache;
          must be a power of two when non-zero; 0 keeps the exact
          unbounded [Tuple_set] sent-cache of the seed *)
  sent_ring_capacity : int;
      (** entries in the bounded exact ring behind the Bloom filter;
          evicted tuples may be re-sent (never dropped) *)
}

val default : t

val with_cache : t
(** {!default} with [use_query_cache = true]. *)

val validate : t -> (unit, string list) result
(** Reject non-sensical settings: negative [latency] or [byte_cost],
    non-positive [max_update_events], negative cache capacities, TTL
    or [index_budget]; negative [batch_window], [batch_max_tuples] < 1,
    [sent_bloom_bits] that is neither 0 nor a power of two within
    budget, [sent_ring_capacity] < 1.  Called by {!System.build}
    before any node is created. *)
