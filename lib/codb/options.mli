(** Tunable behaviour of the coDB algorithms.

    The defaults implement the paper; the switches exist for the
    ablation experiments (E7/E8 in DESIGN.md).  Disabling duplicate
    suppression on a cyclic network with existential head variables
    can make the fix-point diverge — that is the point of the
    ablation — so [max_update_events] bounds every run. *)

type t = {
  use_sent_cache : bool;
      (** per-incoming-link caches of already-sent tuples ("we delete
          from Ri those tuples which have been already sent") *)
  use_subsumption_dedup : bool;
      (** pre-insert duplicate suppression, null-aware ("we first
          remove from T those tuples which are already in R") *)
  naive_delta : bool;
      (** re-evaluate incoming links from scratch instead of
          semi-naively on the delta (ablation baseline) *)
  latency : float;  (** pipe latency, seconds *)
  byte_cost : float;  (** pipe transfer cost, seconds per byte *)
  max_update_events : int;
      (** safety bound on simulator events per run; generous by
          default *)
}

val default : t
