(** Tunable behaviour of the coDB algorithms.

    The defaults implement the paper; the switches exist for the
    ablation experiments (E7/E8/E9 in DESIGN.md).  Disabling duplicate
    suppression on a cyclic network with existential head variables
    can make the fix-point diverge — that is the point of the
    ablation — so [max_update_events] bounds every run. *)

type durability =
  | Dur_off
      (** PR 4's lenient crash model: the store, lineage, statistics
          and transport sequence state survive a crash in memory (the
          seed behaviour, bit for bit) *)
  | Dur_volatile
      (** an honest crash: volatile state is really destroyed and a
          restarted node re-fetches everything over the network (the
          clear-and-refetch baseline) *)
  | Dur_wal
      (** an honest crash plus durability: every commit point is
          logged to a per-node write-ahead log with periodic
          snapshots ({!Codb_store}), and restart recovers from them *)

type t = {
  use_sent_cache : bool;
      (** per-incoming-link caches of already-sent tuples ("we delete
          from Ri those tuples which have been already sent") *)
  use_subsumption_dedup : bool;
      (** pre-insert duplicate suppression, null-aware ("we first
          remove from T those tuples which are already in R") *)
  naive_delta : bool;
      (** re-evaluate incoming links from scratch instead of
          semi-naively on the delta (ablation baseline) *)
  latency : float;  (** pipe latency, seconds *)
  byte_cost : float;  (** pipe transfer cost, seconds per byte *)
  max_update_events : int;
      (** safety bound on simulator events per run; generous by
          default *)
  use_query_cache : bool;
      (** per-node semantic query-answer cache (see
          {!Codb_cache.Qcache}); off by default so the paper's
          query-time behaviour is the baseline *)
  cache_capacity : int;  (** max cached queries per node; 0 = unbounded *)
  cache_max_bytes : int;  (** max cached answer bytes per node; 0 = unbounded *)
  cache_ttl : float;
      (** entry lifetime in simulated seconds; 0 = entries only die by
          epoch invalidation or capacity pressure *)
  cache_containment : bool;
      (** answer lookups from a cached superset query (the E9
          ablation switch) *)
  planner : bool;
      (** evaluate rules and queries through the cost-based join
          planner ({!Codb_cq.Plan}); [false] falls back to the legacy
          left-to-right greedy order (the planner ablation baseline) *)
  index_budget : int;
      (** max distinct hash indexes per relation (composite and
          single-column combined); 0 disables index building and every
          probe degrades to a filtered scan *)
  wire_codec : bool;
      (** size update traffic by the compact binary encoding
          ({!Payload.encoded_size}) instead of the legacy field-count
          estimator; the E15 ablation switch *)
  pushdown : bool;
      (** push the requester's constant bindings, repeated-variable
          equalities and comparisons into query-time sub-requests
          ({!Codb_cq.Specialize}): responders evaluate specialized
          (smaller) joins, filter at the source, and re-specialize
          their own fan-out.  Off by default: the paper's diffusion
          ships every derivable head tuple, and that remains the
          bit-for-bit baseline (the E17 ablation switch) *)
  pushdown_max_preds : int;
      (** cap on the predicates one sub-request may carry; a larger
          constraint degrades to unconstrained so pushdown can never
          inflate request traffic unboundedly *)
  batch_window : float;
      (** simulated seconds that outgoing update data may linger in a
          per-destination buffer waiting to be coalesced into one
          message; 0 sends every rule firing immediately (the paper's
          behaviour) *)
  batch_max_tuples : int;
      (** flush a destination's buffer early once it holds this many
          tuples, bounding both memory and single-message size *)
  sent_bloom_bits : int;
      (** bits in the per-rule Bloom filter that fronts the sent-cache;
          must be a power of two when non-zero; 0 keeps the exact
          unbounded [Tuple_set] sent-cache of the seed *)
  sent_ring_capacity : int;
      (** entries in the bounded exact ring behind the Bloom filter;
          evicted tuples may be re-sent (never dropped) *)
  fault_seed : int;
      (** seed of the fault plan's random stream
          ({!Codb_net.Fault.plan}); same seed, same options, same
          workload => byte-identical fault schedule *)
  drop_prob : float;  (** per-message silent in-flight loss probability *)
  dup_prob : float;  (** per-message duplicate-delivery probability *)
  jitter : float;
      (** max extra delivery delay in simulated seconds, uniform per
          message, applied after FIFO sequencing (reordering) *)
  drop_budget : int;
      (** stop injecting drops after this many; [max_int] = unlimited.
          A finite budget under [max_retries] large enough makes
          eventual delivery (hence store equivalence with the
          fault-free run) deterministic. *)
  flap_plan : (string * string * float * float) list;
      (** (peer, peer, down_at, up_at): scheduled pipe closures *)
  crash_plan : (string * float * float option) list;
      (** (node, crash_at, restart_at): the node's handler is removed
          and its pipes closed at [crash_at]; with a restart time the
          handler re-registers, volatile protocol state is cleared and
          the acquaintance pipes reopen *)
  ack_timeout : float;
      (** reliable-transport acknowledgement timeout in simulated
          seconds; 0 disables the {!Reliable} layer entirely (the
          seed's fire-and-forget behaviour, byte-for-byte) *)
  max_retries : int;
      (** retransmissions before the transport abandons a message and
          reports failure to the protocol layer *)
  backoff_factor : float;  (** exponential backoff base, >= 1 *)
  subscriptions : bool;
      (** standing queries ({!Codb_sub}): nodes accept continuous-query
          registrations, maintain their answer sets incrementally from
          store deltas, and push answer deltas to subscribers.  Off by
          default: the seed protocol has no subscription traffic and
          that remains the bit-for-bit baseline (the E18 ablation
          switch) *)
  max_subscriptions : int;
      (** cap on subscriptions hosted per node; registration beyond it
          is refused with a reason, locally and over the wire *)
  sub_batch_window : float;
      (** simulated seconds that outgoing answer deltas may linger in a
          per-subscriber buffer to be coalesced ({!Codb_sub.Outbox});
          0 pushes every delta immediately *)
  sub_naive : bool;
      (** maintain standing queries by full re-evaluation and re-push
          the whole answer set on every store delta instead of running
          the semi-naive delta pass (the E18 ablation baseline; answer
          sets are identical, probe and byte costs are not) *)
  domains : int;
      (** OCaml domains the simulator may use for the two-phase
          parallel step (see [System]): same-time node-local handlers
          fan out across this many lanes, their effects replayed at a
          barrier in sequential order.  1 (the default) runs today's
          strictly sequential loop — and every count produces
          bit-identical traffic, counters and traces, so this is a
          throughput knob, never a semantics knob.  Defaults to the
          [CODB_DOMAINS] environment variable when set (how CI runs
          the whole suite at [domains=2]) *)
  par_threshold : int;
      (** minimum batch size worth fanning out; smaller same-time
          groups run inline on the simulation domain, skipping the
          capture/replay machinery *)
  durability : durability;
      (** what a crash destroys and whether restart recovers from a
          write-ahead log; [Dur_off] by default (seed behaviour) *)
  wal_dir : string option;
      (** where [Dur_wal] keeps its log and snapshot files
          ([<dir>/<node>.wal] / [<dir>/<node>.snap]); [None] uses the
          deterministic in-memory backend (what tests and benches
          want) *)
  snapshot_every : int;
      (** WAL records between snapshots: each snapshot truncates the
          log, bounding replay work at recovery *)
  fsync : bool;
      (** flush every WAL write with [Unix.fsync]; only meaningful
          with [wal_dir] *)
  zone_maps : bool;
      (** fold sargable order predicates ([<], [<=], [>], [>=] and
          [=]-const) into per-chunk min/max pruning inside the packed
          evaluator ({!Codb_relalg.Relation.packed_view}): chunks whose
          value interval cannot satisfy the predicates are skipped
          before any row is touched.  Off by default: answers are
          provably identical either way, so the seed's
          every-chunk scan stays the bit-for-bit baseline (the E22
          ablation switch).  Requires [planner] — only planned steps
          carry range predicates down to the scan *)
  link_dicts : bool;
      (** incremental per-(src,dst)-link string dictionaries in the
          wire codec, plus dictionary-encoded WAL records and
          version-2 snapshots with one deduplicated string table: the
          first use of a string on a link ships the literal with an
          explicit id, later messages ship only the id; crash, restart
          and link flap bump the link's epoch so a desynced peer
          deterministically falls back to literals.  Off by default
          (the per-message dictionaries of PR 3, bit for bit).
          Requires [wire_codec] *)
}

val default : t

val with_cache : t
(** {!default} with [use_query_cache = true]. *)

val validate : t -> (unit, string list) result
(** Reject non-sensical settings: negative [latency] or [byte_cost],
    non-positive [max_update_events], negative cache capacities, TTL
    or [index_budget]; [pushdown_max_preds] < 1; negative
    [batch_window], [batch_max_tuples] < 1,
    [sent_bloom_bits] that is neither 0 nor a power of two within
    budget, [sent_ring_capacity] < 1; probabilities outside [0,1],
    negative [jitter], [drop_budget] or [ack_timeout], flaps that
    reopen before they close, crashes that restart before they crash,
    negative [max_retries], [backoff_factor] < 1;
    [max_subscriptions] < 1, negative [sub_batch_window], [sub_naive]
    without [subscriptions]; [domains] outside [1,256],
    [par_threshold] < 1; [snapshot_every] < 1, an empty [wal_dir],
    [wal_dir] without [Dur_wal], [fsync] without [wal_dir];
    [zone_maps] without [planner], [link_dicts] without [wire_codec].
    Called by {!System.build} before any node is created. *)

val faults_enabled : t -> bool
(** Any fault knob active (drop, dup, jitter, flaps or crashes). *)

val reliable : t -> bool
(** [ack_timeout > 0]: the reliable transport is on. *)

val rto : t -> int -> float
(** Retransmission timeout before the [n]-th retry:
    [ack_timeout * backoff_factor^n], exponent growth capped at 64x. *)

val retry_span : t -> float
(** Total time the transport keeps trying one message:
    sum of {!rto} over attempts [0..max_retries]. *)

val failure_deadline : t -> float
(** {!retry_span} plus grace: after this long without completion a
    sub-request is declared failed (partial-answer deadline, stalled
    update watchdog window).  Floored at a small constant so the
    watchdog still works under fire-and-forget transport
    ([ack_timeout = 0]) with faults injected. *)
