type update_report = {
  ur_update : Ids.update_id;
  ur_nodes : int;
  ur_all_finished : bool;
  ur_started : float;
  ur_finished : float;
  ur_duration : float;
  ur_data_msgs : int;
  ur_control_msgs : int;
  ur_bytes : int;
  ur_new_tuples : int;
  ur_dup_suppressed : int;
  ur_nulls : int;
  ur_longest_path : int;
  ur_probes : int;
  ur_scans : int;
  ur_zvisited : int;
  ur_zpruned : int;
  ur_batches : int;
  ur_batch_tuples : int;
  ur_coalesced : int;
  ur_resends : int;
  ur_cache_staled : int;
  ur_per_rule : Stats.rule_traffic_snap list;
}

let merge_per_rule entries =
  let table = Hashtbl.create 16 in
  let add (e : Stats.rule_traffic_snap) =
    match Hashtbl.find_opt table e.Stats.rts_rule with
    | None -> Hashtbl.replace table e.Stats.rts_rule e
    | Some existing ->
        Hashtbl.replace table e.Stats.rts_rule
          {
            existing with
            Stats.rts_msgs = existing.Stats.rts_msgs + e.Stats.rts_msgs;
            rts_bytes = existing.Stats.rts_bytes + e.Stats.rts_bytes;
            rts_tuples = existing.Stats.rts_tuples + e.Stats.rts_tuples;
          }
  in
  List.iter add entries;
  List.sort
    (fun a b -> String.compare a.Stats.rts_rule b.Stats.rts_rule)
    (Hashtbl.fold (fun _ e acc -> e :: acc) table [])

let update_report snapshots update_id =
  let relevant =
    List.filter_map
      (fun snap ->
        List.find_opt
          (fun u -> Ids.equal_update u.Stats.usn_update update_id)
          snap.Stats.snap_updates)
      snapshots
  in
  match relevant with
  | [] -> None
  | first :: _ ->
      let fold (started, finished, all_fin) u =
        let f, fin =
          match u.Stats.usn_finished with
          | Some f -> (f, all_fin)
          | None -> (u.Stats.usn_started, false)
        in
        (Float.min started u.Stats.usn_started, Float.max finished f, fin)
      in
      let started, finished, all_finished =
        List.fold_left fold (first.Stats.usn_started, first.Stats.usn_started, true)
          relevant
      in
      let sum f = List.fold_left (fun acc u -> acc + f u) 0 relevant in
      Some
        {
          ur_update = update_id;
          ur_nodes = List.length relevant;
          ur_all_finished = all_finished;
          ur_started = started;
          ur_finished = finished;
          ur_duration = finished -. started;
          ur_data_msgs = sum (fun u -> u.Stats.usn_data_msgs);
          ur_control_msgs = sum (fun u -> u.Stats.usn_control_msgs);
          ur_bytes = sum (fun u -> u.Stats.usn_bytes_in);
          ur_new_tuples = sum (fun u -> u.Stats.usn_new_tuples);
          ur_dup_suppressed = sum (fun u -> u.Stats.usn_dup_suppressed);
          ur_nulls = sum (fun u -> u.Stats.usn_nulls_created);
          ur_longest_path =
            List.fold_left (fun acc u -> max acc u.Stats.usn_max_hops) 0 relevant;
          ur_probes = sum (fun u -> u.Stats.usn_probes);
          ur_scans = sum (fun u -> u.Stats.usn_scans);
          ur_zvisited = sum (fun u -> u.Stats.usn_zvisited);
          ur_zpruned = sum (fun u -> u.Stats.usn_zpruned);
          ur_batches = sum (fun u -> u.Stats.usn_batches);
          ur_batch_tuples = sum (fun u -> u.Stats.usn_batch_tuples);
          ur_coalesced = sum (fun u -> u.Stats.usn_coalesced);
          ur_resends = sum (fun u -> u.Stats.usn_resends);
          ur_cache_staled = sum (fun u -> u.Stats.usn_cache_staled);
          ur_per_rule =
            merge_per_rule (List.concat_map (fun u -> u.Stats.usn_per_rule) relevant);
        }

let latest_update_report snapshots =
  let all_updates = List.concat_map (fun s -> s.Stats.snap_updates) snapshots in
  match
    List.sort (fun a b -> Float.compare b.Stats.usn_started a.Stats.usn_started)
      all_updates
  with
  | [] -> None
  | latest :: _ -> update_report snapshots latest.Stats.usn_update

let pp_update_report ppf r =
  Fmt.pf ppf
    "@[<v 2>global update %a:@,\
     nodes: %d%s@,\
     duration: %.4fs (%.4f -> %.4f)@,\
     data messages: %d, control messages: %d@,\
     data volume: %d B@,\
     new tuples: %d, duplicates suppressed: %d, nulls created: %d@,\
     longest propagation path: %d@,\
     index probes: %d, relation scans: %d%s%a@]"
    Ids.pp_update r.ur_update r.ur_nodes
    (if r.ur_all_finished then "" else " (some unfinished)")
    r.ur_duration r.ur_started r.ur_finished r.ur_data_msgs r.ur_control_msgs r.ur_bytes
    r.ur_new_tuples r.ur_dup_suppressed r.ur_nulls r.ur_longest_path r.ur_probes
    r.ur_scans
    (if r.ur_zvisited = 0 && r.ur_zpruned = 0 then ""
     else
       Fmt.str ", zone chunks visited: %d, pruned: %d" r.ur_zvisited r.ur_zpruned)
    Fmt.(
      list ~sep:nop (fun ppf (e : Stats.rule_traffic_snap) ->
          Fmt.pf ppf "@,rule %-12s %4d msgs %8d B %6d tuples" e.Stats.rts_rule
            e.Stats.rts_msgs e.Stats.rts_bytes e.Stats.rts_tuples))
    r.ur_per_rule

type wire_report = {
  wr_update : Ids.update_id;
  wr_data_msgs : int;
  wr_batches : int;
  wr_batch_tuples : int;
  wr_avg_batch : float;
  wr_coalesced : int;
  wr_resends : int;
  wr_cache_staled : int;
  wr_bytes : int;
}

let wire_report snapshots update_id =
  Option.map
    (fun r ->
      {
        wr_update = r.ur_update;
        wr_data_msgs = r.ur_data_msgs;
        wr_batches = r.ur_batches;
        wr_batch_tuples = r.ur_batch_tuples;
        wr_avg_batch =
          (if r.ur_batches = 0 then 0.0
           else float_of_int r.ur_batch_tuples /. float_of_int r.ur_batches);
        wr_coalesced = r.ur_coalesced;
        wr_resends = r.ur_resends;
        wr_cache_staled = r.ur_cache_staled;
        wr_bytes = r.ur_bytes;
      })
    (update_report snapshots update_id)

let pp_wire_report ppf w =
  Fmt.pf ppf
    "@[<v 2>wire behaviour of %a:@,\
     data messages: %d (of which %d batches carrying %d tuples, avg %.1f \
     tuples/batch)@,\
     data volume: %d B@,\
     coalesced in-window: %d tuples@,\
     filter-induced resends: <= %d tuples@,\
     query-cache entries staled: %d@]"
    Ids.pp_update w.wr_update w.wr_data_msgs w.wr_batches w.wr_batch_tuples
    w.wr_avg_batch w.wr_bytes w.wr_coalesced w.wr_resends w.wr_cache_staled

type cache_report_row = {
  cr_node : Codb_net.Peer_id.t;
  cr_hits : int;
  cr_misses : int;
  cr_ratio : float;
  cr_bytes_served : int;
  cr_invalidations : int;
  cr_entries : int;
}

let cache_report snapshots =
  let row snap =
    Option.map
      (fun (c : Stats.cache_snap) ->
        let hits = c.Stats.csn_hits_exact + c.Stats.csn_hits_containment in
        let lookups = hits + c.Stats.csn_misses in
        {
          cr_node = snap.Stats.snap_node;
          cr_hits = hits;
          cr_misses = c.Stats.csn_misses;
          cr_ratio =
            (if lookups = 0 then 0.0 else float_of_int hits /. float_of_int lookups);
          cr_bytes_served = c.Stats.csn_bytes_served;
          cr_invalidations = c.Stats.csn_invalidations;
          cr_entries = c.Stats.csn_entries;
        })
      snap.Stats.snap_cache
  in
  List.filter_map row snapshots

let pp_cache_report ppf rows =
  match rows with
  | [] -> Fmt.string ppf "query cache: disabled"
  | rows ->
      Fmt.pf ppf "@[<v 2>query cache:%a@]"
        Fmt.(
          list ~sep:nop (fun ppf r ->
              Fmt.pf ppf
                "@,node %-12s %4d hits %4d misses  ratio %.2f  %8d B served  \
                 %4d invalidated  %4d entries"
                (Codb_net.Peer_id.to_string r.cr_node)
                r.cr_hits r.cr_misses r.cr_ratio r.cr_bytes_served r.cr_invalidations
                r.cr_entries))
        rows

type pushdown_report = {
  pr_query : Ids.query_id;
  pr_pushed : int;  (** sub-requests that carried a non-trivial constraint *)
  pr_filtered_at_source : int;  (** derived tuples withheld before the wire *)
  pr_rule_cache_hits : int;  (** sub-requests served from the rule cache *)
  pr_bytes_in : int;  (** answer bytes received, network-wide *)
  pr_data_msgs : int;
}

let pushdown_report snapshots query_id =
  let relevant =
    List.filter_map
      (fun snap ->
        List.find_opt
          (fun q -> Ids.equal_query q.Stats.qsn_query query_id)
          snap.Stats.snap_queries)
      snapshots
  in
  match relevant with
  | [] -> None
  | _ ->
      let sum f = List.fold_left (fun acc q -> acc + f q) 0 relevant in
      Some
        {
          pr_query = query_id;
          pr_pushed = sum (fun q -> q.Stats.qsn_pushed);
          pr_filtered_at_source = sum (fun q -> q.Stats.qsn_filtered_at_source);
          pr_rule_cache_hits = sum (fun q -> q.Stats.qsn_pushdown_hits);
          pr_bytes_in = sum (fun q -> q.Stats.qsn_bytes_in);
          pr_data_msgs = sum (fun q -> q.Stats.qsn_data_msgs);
        }

let pp_pushdown_report ppf p =
  Fmt.pf ppf
    "@[<v 2>constraint pushdown for %a:@,\
     constrained sub-requests: %d@,\
     tuples filtered at source: %d@,\
     rule-cache hits: %d@,\
     answer traffic: %d messages, %d B@]"
    Ids.pp_query p.pr_query p.pr_pushed p.pr_filtered_at_source p.pr_rule_cache_hits
    p.pr_data_msgs p.pr_bytes_in

type sub_report = {
  sr_registered : int;
  sr_rejected : int;
  sr_deltas_in : int;
  sr_prefiltered : int;
  sr_deltas_out : int;
  sr_push_msgs : int;
  sr_adds : int;
  sr_retracts : int;
  sr_bytes : int;
  sr_coalesced : int;
  sr_probes : int;
  sr_scans : int;
  sr_zvisited : int;
  sr_zpruned : int;
  sr_cache_staled : int;
  sr_torn_down : int;
  sr_rearmed : int;
  sr_bytes_per_answer : float;
}

let sub_report snapshots =
  let sum f = List.fold_left (fun acc s -> acc + f s.Stats.snap_sub) 0 snapshots in
  let adds = sum (fun x -> x.Stats.ssn_adds)
  and retracts = sum (fun x -> x.Stats.ssn_retracts)
  and bytes = sum (fun x -> x.Stats.ssn_bytes) in
  {
    sr_registered = sum (fun x -> x.Stats.ssn_registered);
    sr_rejected = sum (fun x -> x.Stats.ssn_rejected);
    sr_deltas_in = sum (fun x -> x.Stats.ssn_deltas_in);
    sr_prefiltered = sum (fun x -> x.Stats.ssn_prefiltered);
    sr_deltas_out = sum (fun x -> x.Stats.ssn_deltas_out);
    sr_push_msgs = sum (fun x -> x.Stats.ssn_push_msgs);
    sr_adds = adds;
    sr_retracts = retracts;
    sr_bytes = bytes;
    sr_coalesced = sum (fun x -> x.Stats.ssn_coalesced);
    sr_probes = sum (fun x -> x.Stats.ssn_probes);
    sr_scans = sum (fun x -> x.Stats.ssn_scans);
    sr_zvisited = sum (fun x -> x.Stats.ssn_zvisited);
    sr_zpruned = sum (fun x -> x.Stats.ssn_zpruned);
    sr_cache_staled = sum (fun x -> x.Stats.ssn_cache_staled);
    sr_torn_down = sum (fun x -> x.Stats.ssn_torn_down);
    sr_rearmed = sum (fun x -> x.Stats.ssn_rearmed);
    sr_bytes_per_answer =
      (if adds + retracts = 0 then 0.0
       else float_of_int bytes /. float_of_int (adds + retracts));
  }

let pp_sub_report ppf r =
  Fmt.pf ppf
    "@[<v 2>standing queries:@,\
     registered: %d (%d refused), torn down by crashes: %d, re-armed: %d@,\
     store deltas consumed: %d (%d tuples prefiltered at source)@,\
     answer deltas delivered: %d (%d adds, %d retracts; %d coalesced in-window)@,\
     push traffic: %d messages, %d B (%.1f B/answer)@,\
     evaluator work: %d probes, %d scans%s@,\
     cache entries staled by pushes: %d@]"
    r.sr_registered r.sr_rejected r.sr_torn_down r.sr_rearmed r.sr_deltas_in
    r.sr_prefiltered r.sr_deltas_out r.sr_adds r.sr_retracts r.sr_coalesced
    r.sr_push_msgs r.sr_bytes r.sr_bytes_per_answer r.sr_probes r.sr_scans
    (if r.sr_zvisited = 0 && r.sr_zpruned = 0 then ""
     else
       Fmt.str ", zone chunks %d visited (%d pruned)" r.sr_zvisited r.sr_zpruned)
    r.sr_cache_staled

let pp_network ppf snapshots =
  Fmt.pf ppf "@[<v>%a@]" Fmt.(list ~sep:cut Stats.pp_snapshot) snapshots

type chaos_report = {
  chr_retransmits : int;
  chr_dup_suppressed : int;
  chr_give_ups : int;
  chr_query_timeouts : int;
  chr_partial_answers : int;
  chr_forced_terminations : int;
  chr_send_drops : int;
  chr_incomplete_queries : int;
  chr_forced_updates : int;
  chr_recovered_records : int;
  chr_replayed_bytes : int;
  chr_refetched_bytes : int;
}

let chaos_report snapshots =
  let sum f = List.fold_left (fun acc s -> acc + f s.Stats.snap_chaos) 0 snapshots in
  {
    chr_retransmits = sum (fun c -> c.Stats.chn_retransmits);
    chr_dup_suppressed = sum (fun c -> c.Stats.chn_dup_suppressed);
    chr_give_ups = sum (fun c -> c.Stats.chn_give_ups);
    chr_query_timeouts = sum (fun c -> c.Stats.chn_query_timeouts);
    chr_partial_answers = sum (fun c -> c.Stats.chn_partial_answers);
    chr_forced_terminations = sum (fun c -> c.Stats.chn_forced_terminations);
    chr_send_drops = sum (fun c -> c.Stats.chn_send_drops);
    chr_recovered_records = sum (fun c -> c.Stats.chn_recovered_records);
    chr_replayed_bytes = sum (fun c -> c.Stats.chn_replayed_bytes);
    chr_refetched_bytes = sum (fun c -> c.Stats.chn_refetched_bytes);
    chr_incomplete_queries =
      List.fold_left
        (fun acc s ->
          acc
          + List.length
              (List.filter (fun q -> not q.Stats.qsn_complete) s.Stats.snap_queries))
        0 snapshots;
    chr_forced_updates =
      List.fold_left
        (fun acc s ->
          acc
          + List.length (List.filter (fun u -> u.Stats.usn_forced) s.Stats.snap_updates))
        0 snapshots;
  }

let pp_chaos_report ppf c =
  Fmt.pf ppf
    "@[<v 2>fault tolerance:@,\
     retransmits: %d, duplicates suppressed: %d, give-ups: %d@,\
     sub-request timeouts: %d, partial answers: %d@,\
     forced terminations: %d (%d update records marked forced)@,\
     incomplete query records: %d@,\
     send drops surfaced: %d@,\
     recovery: %d records replayed (%d bytes), %d bytes refetched@]"
    c.chr_retransmits c.chr_dup_suppressed c.chr_give_ups c.chr_query_timeouts
    c.chr_partial_answers c.chr_forced_terminations c.chr_forced_updates
    c.chr_incomplete_queries c.chr_send_drops c.chr_recovered_records
    c.chr_replayed_bytes c.chr_refetched_bytes
