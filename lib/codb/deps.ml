module Config = Codb_cq.Config
module Query = Codb_cq.Query
module Atom = Codb_cq.Atom

let head_rel (r : Config.rule_decl) = r.Config.rule_query.Query.head.Atom.rel

let depends_on ~incoming ~outgoing =
  List.mem (head_rel outgoing) (Query.body_relations incoming.Config.rule_query)

let relevant_outgoing outgoing_links ~incoming =
  List.filter (fun outgoing -> depends_on ~incoming ~outgoing) outgoing_links

let dependent_incoming incoming_links ~outgoing =
  List.filter (fun incoming -> depends_on ~incoming ~outgoing) incoming_links

let relevant_for_query outgoing_links ~rels =
  List.filter (fun r -> List.mem (head_rel r) rels) outgoing_links
