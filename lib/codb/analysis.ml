module Config = Codb_cq.Config
module Containment = Codb_cq.Containment

type redundancy = {
  redundant : Config.rule_decl;
  covered_by : Config.rule_decl;
}

let same_endpoints (r1 : Config.rule_decl) (r2 : Config.rule_decl) =
  String.equal r1.Config.importer r2.Config.importer
  && String.equal r1.Config.source r2.Config.source

(* r1 is made redundant by r2 when r1 ⊆ r2; for equivalent rules only
   the one with the larger id is redundant, breaking the tie. *)
let covered_by r1 r2 =
  (not (String.equal r1.Config.rule_id r2.Config.rule_id))
  && same_endpoints r1 r2
  && Containment.contained r1.Config.rule_query r2.Config.rule_query
  && ((not (Containment.contained r2.Config.rule_query r1.Config.rule_query))
     || String.compare r1.Config.rule_id r2.Config.rule_id > 0)

let redundant_rules cfg =
  let rules = cfg.Config.rules in
  List.filter_map
    (fun r1 ->
      match List.find_opt (fun r2 -> covered_by r1 r2) rules with
      | Some r2 -> Some { redundant = r1; covered_by = r2 }
      | None -> None)
    rules

let minimise cfg =
  let redundant = redundant_rules cfg in
  let is_redundant r =
    List.exists
      (fun { redundant = dead; _ } ->
        String.equal dead.Config.rule_id r.Config.rule_id)
      redundant
  in
  { cfg with Config.rules = List.filter (fun r -> not (is_redundant r)) cfg.Config.rules }

let pp_redundancy ppf { redundant; covered_by } =
  Fmt.pf ppf "rule %s is redundant: contained in rule %s" redundant.Config.rule_id
    covered_by.Config.rule_id

let head_rel (r : Config.rule_decl) =
  r.Config.rule_query.Codb_cq.Query.head.Codb_cq.Atom.rel

let feeds (a : Config.rule_decl) (b : Config.rule_decl) =
  String.equal a.Config.importer b.Config.source
  && List.mem (head_rel a) (Codb_cq.Query.body_relations b.Config.rule_query)

let dependency_edges cfg =
  List.concat_map
    (fun a ->
      List.filter_map
        (fun b -> if feeds a b then Some (a.Config.rule_id, b.Config.rule_id) else None)
        cfg.Config.rules)
    cfg.Config.rules

(* Tarjan's strongly-connected-components algorithm over the rule
   dependency graph. *)
let cyclic_components cfg =
  let edges = dependency_edges cfg in
  let successors id =
    List.filter_map (fun (a, b) -> if String.equal a id then Some b else None) edges
  in
  let ids = List.map (fun r -> r.Config.rule_id) cfg.Config.rules in
  let index = Hashtbl.create 16 in
  let lowlink = Hashtbl.create 16 in
  let on_stack = Hashtbl.create 16 in
  let stack = ref [] in
  let next_index = ref 0 in
  let components = ref [] in
  let rec strong_connect v =
    Hashtbl.replace index v !next_index;
    Hashtbl.replace lowlink v !next_index;
    incr next_index;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    let visit w =
      if not (Hashtbl.mem index w) then begin
        strong_connect w;
        Hashtbl.replace lowlink v
          (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
      end
      else if Hashtbl.mem on_stack w then
        Hashtbl.replace lowlink v (min (Hashtbl.find lowlink v) (Hashtbl.find index w))
    in
    List.iter visit (successors v);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* v is the root of a component: pop it off the stack *)
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if String.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter (fun v -> if not (Hashtbl.mem index v) then strong_connect v) ids;
  let self_loop = function
    | [ v ] -> List.exists (fun (a, b) -> String.equal a v && String.equal b v) edges
    | _ :: _ :: _ -> true
    | [] -> false
  in
  let nontrivial = List.filter self_loop !components in
  let sorted = List.map (List.sort String.compare) nontrivial in
  List.sort (fun c1 c2 -> compare (List.nth_opt c1 0) (List.nth_opt c2 0)) sorted
