(** The execution context handed to a node's protocol handlers.

    The Database Manager logic ({!Update}, {!Query_engine},
    {!Discovery}, {!Dbm}) is written against this record instead of
    the whole {!System}, keeping the algorithms independent of how the
    network is assembled (and trivially testable with stub
    closures). *)

module Peer_id = Codb_net.Peer_id

type t = {
  node : Node.t;
  opts : Options.t;
  send : dst:Peer_id.t -> Payload.t -> bool;
      (** enqueue a message on the pipe to [dst]; [false] when no open
          pipe exists *)
  now : unit -> float;  (** current simulated time *)
  schedule : delay:float -> (unit -> unit) -> unit;
      (** run an action [delay] simulated seconds from now (drives the
          batching flush windows); stub runtimes in tests may run the
          action immediately *)
  connect : Peer_id.t -> unit;  (** create/reopen the pipe to a peer *)
  disconnect : Peer_id.t -> unit;
  neighbours : unit -> Peer_id.t list;  (** peers with an open pipe *)
}
