module Peer_id = Codb_net.Peer_id

let relay_of rt = rt.Runtime.node.Node.relay

let stats_of rt = rt.Runtime.node.Node.stats

(* [Stats_response] goes to the super-peer, which keeps no transport
   state; it stays unframed (it is also the largest message, and the
   collection loop re-requests on its own). *)
let frame_eligible = function Payload.Stats_response _ -> false | _ -> true

let rec arm_timer rt relay ~seq entry =
  let opts = rt.Runtime.opts in
  let delay = Options.rto opts entry.Relay.e_attempts in
  rt.Runtime.schedule ~delay (fun () ->
      if not entry.Relay.e_settled then
        if entry.Relay.e_attempts >= opts.Options.max_retries then begin
          ignore (Relay.settle relay seq);
          Stats.note_give_up (stats_of rt);
          Option.iter (fun f -> f ~ok:false) entry.Relay.e_on_settled
        end
        else begin
          entry.Relay.e_attempts <- entry.Relay.e_attempts + 1;
          Stats.note_retransmit (stats_of rt);
          ignore (rt.Runtime.send ~dst:entry.Relay.e_dst entry.Relay.e_payload);
          arm_timer rt relay ~seq entry
        end)

let send ?on_settled rt ~dst payload =
  match relay_of rt with
  | Some relay when Options.reliable rt.Runtime.opts && frame_eligible payload ->
      let seq = Relay.fresh_seq relay in
      (* chunked sequence reservation: a recovered node must never
         reuse a sequence number its peers may have recorded *)
      Durable.note_seq rt.Runtime.node seq;
      let framed = Payload.Seq { seq; inner = payload } in
      let entry =
        {
          Relay.e_dst = dst;
          e_payload = framed;
          e_attempts = 0;
          e_settled = false;
          e_on_settled = on_settled;
        }
      in
      Relay.register relay ~seq entry;
      (* the transport has custody now: even if the pipe is closed this
         instant, a retransmission may find it reopened (link flaps) *)
      ignore (rt.Runtime.send ~dst framed);
      arm_timer rt relay ~seq entry;
      true
  | Some _ | None -> rt.Runtime.send ~dst payload

let send_noted ?on_settled rt ~dst payload =
  let ok = send ?on_settled rt ~dst payload in
  if not ok then Stats.note_send_drop (stats_of rt);
  ok

let on_ack rt seq =
  match relay_of rt with
  | None -> ()
  | Some relay -> (
      match Relay.settle relay seq with
      | None -> ()  (* duplicate or post-give-up ack *)
      | Some entry -> Option.iter (fun f -> f ~ok:true) entry.Relay.e_on_settled)

let on_seq rt ~src ~seq ~process inner =
  (* Always re-ack, even for duplicates: the previous ack may be the
     message that was lost.  Acks are raw — acking acks would never
     converge. *)
  ignore (rt.Runtime.send ~dst:src (Payload.Seq_ack { seq }));
  match relay_of rt with
  | None -> process inner
  | Some relay ->
      if Relay.mark_seen relay ~src ~seq then process inner
      else Stats.note_dup_suppressed (stats_of rt)
