module Peer_id = Codb_net.Peer_id
module Config = Codb_cq.Config
module Parser = Codb_cq.Parser

let src_log = Logs.Src.create "codb.reconfigure" ~doc:"coDB topology changes"

module Log = (val Logs.src_log src_log : Logs.LOG)

let apply (rt : Runtime.t) ~version cfg =
  if version <= rt.node.Node.rules_version then false
  else begin
    let node = rt.Runtime.node in
    let name = Peer_id.to_string node.Node.node_id in
    let old_acquaintances = Node.acquaintances node in
    node.Node.rules_version <- version;
    Node.set_rules node
      ~outgoing:(Config.rules_importing_at cfg name)
      ~incoming:(Config.rules_sourced_at cfg name);
    let new_acquaintances = Node.acquaintances node in
    (* Create the pipes the new rules need... *)
    List.iter rt.Runtime.connect new_acquaintances;
    (* ...and close the pipes no rule is assigned to any more. *)
    let obsolete peer = not (List.exists (Peer_id.equal peer) new_acquaintances) in
    List.iter
      (fun peer -> if obsolete peer then rt.Runtime.disconnect peer)
      old_acquaintances;
    Log.debug (fun m ->
        m "%s: rules v%d installed (%d out, %d in)" name version
          (List.length node.Node.outgoing)
          (List.length node.Node.incoming));
    true
  end

let handle_text rt ~version text =
  match Parser.parse_config text with
  | Error e -> Error e
  | Ok cfg ->
      let _ = apply rt ~version cfg in
      Ok ()
