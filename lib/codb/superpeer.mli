(** The super-peer (paper, Section 4).

    A peer with extra control-plane functionality: it reads the
    coordination rules for all peers from a file and broadcasts it to
    the network (letting it change the topology at runtime), triggers
    global updates, and collects every node's statistical information
    into a final report.

    The super-peer keeps a control pipe to every node; those pipes are
    not coordination-rule pipes and never carry data traffic. *)

module Peer_id = Codb_net.Peer_id
module Network = Codb_net.Network

type t

val peer_name : string
(** ["superpeer"] — reserved; regular nodes must not use it. *)

val create : net:Payload.t Network.t -> peers:Peer_id.t list -> t
(** Register the super-peer on the network and open control pipes to
    the given peers. *)

val id : t -> Peer_id.t

val track : t -> Peer_id.t -> unit
(** Open a control pipe to a node added after creation. *)

val broadcast_rules : t -> Codb_cq.Config.t -> int
(** Pretty-print the configuration and broadcast it as a rules file to
    every tracked peer; returns the new version number.  Takes effect
    once the simulation runs. *)

val trigger_update : t -> at:Peer_id.t -> unit
(** Ask a node to start a global update. *)

val request_stats : t -> unit
(** Clear previously collected snapshots and poll every tracked
    peer. *)

val collected : t -> Stats.snapshot list
(** Snapshots received so far, sorted by node. *)

val send_drops : t -> int
(** Messages the super-peer tried to send on a closed pipe (previously
    discarded silently). *)
