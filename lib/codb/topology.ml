module Config = Codb_cq.Config
module Query = Codb_cq.Query
module Atom = Codb_cq.Atom
module Term = Codb_cq.Term
module Schema = Codb_relalg.Schema
module Value = Codb_relalg.Value
module Rng = Codb_workload.Rng
module Datagen = Codb_workload.Datagen

type shape =
  | Chain
  | Ring
  | Star_in
  | Star_out
  | Binary_tree
  | Grid of int * int
  | Random_graph of float
  | Clique

type params = {
  tuples_per_node : int;
  profile : Datagen.profile;
  existential_frac : float;
  comparison_frac : float;
  connected : bool;
}

let default_params =
  {
    tuples_per_node = 50;
    profile = Datagen.default_profile;
    existential_frac = 0.0;
    comparison_frac = 0.0;
    connected = true;
  }

let shape_name = function
  | Chain -> "chain"
  | Ring -> "ring"
  | Star_in -> "star-in"
  | Star_out -> "star-out"
  | Binary_tree -> "binary-tree"
  | Grid (r, c) -> Printf.sprintf "grid-%dx%d" r c
  | Random_graph p -> Printf.sprintf "random-%.2f" p
  | Clique -> "clique"

let edges ?rng shape ~n =
  if n < 1 then invalid_arg "Topology.edges: need at least one node";
  match shape with
  | Chain -> List.init (max 0 (n - 1)) (fun i -> (i, i + 1))
  | Ring ->
      if n < 2 then []
      else List.init n (fun i -> (i, (i + 1) mod n))
  | Star_in -> List.init (max 0 (n - 1)) (fun i -> (0, i + 1))
  | Star_out -> List.init (max 0 (n - 1)) (fun i -> (i + 1, 0))
  | Binary_tree ->
      let children i = [ (2 * i) + 1; (2 * i) + 2 ] in
      List.concat_map
        (fun i -> List.filter_map (fun c -> if c < n then Some (i, c) else None) (children i))
        (List.init n (fun i -> i))
  | Grid (rows, cols) ->
      if rows * cols <> n then invalid_arg "Topology.edges: grid size must equal n";
      let index r c = (r * cols) + c in
      let cell acc r c =
        let acc = if c + 1 < cols then (index r c, index r (c + 1)) :: acc else acc in
        if r + 1 < rows then (index r c, index (r + 1) c) :: acc else acc
      in
      let rec rows_loop r acc =
        if r >= rows then acc
        else
          let rec cols_loop c acc =
            if c >= cols then acc else cols_loop (c + 1) (cell acc r c)
          in
          rows_loop (r + 1) (cols_loop 0 acc)
      in
      List.rev (rows_loop 0 [])
  | Clique ->
      List.concat_map
        (fun i ->
          List.filter_map
            (fun j -> if i <> j then Some (i, j) else None)
            (List.init n (fun j -> j)))
        (List.init n (fun i -> i))
  | Random_graph p -> (
      match rng with
      | None -> invalid_arg "Topology.edges: Random_graph needs a generator"
      | Some rng ->
          List.concat_map
            (fun i ->
              List.filter_map
                (fun j -> if i <> j && Rng.bool rng p then Some (i, j) else None)
                (List.init n (fun j -> j)))
            (List.init n (fun i -> i)))

let node_name i = Printf.sprintf "n%d" i

let data_relation = Schema.make "data" [ ("k", Value.Tint); ("v", Value.Tstring) ]

(* One coordination rule for the edge (importer, source).  Plain
   translation by default; optionally an existential head (v becomes a
   marked null at the importer) and/or a selection on k. *)
let edge_rule rng params (importer, source) =
  let x = Term.Var "x" and y = Term.Var "y" and z = Term.Var "z" in
  let existential = Rng.bool rng params.existential_frac in
  let head = Atom.make "data" [ x; (if existential then z else y) ] in
  let body = [ Atom.make "data" [ x; y ] ] in
  let comparisons =
    if Rng.bool rng params.comparison_frac then
      let bound = max 1 (params.profile.Datagen.domain_size * 3 / 5) in
      [ { Query.left = x; op = Query.Le; right = Term.Cst (Value.Int bound) } ]
    else []
  in
  {
    Config.rule_id = Printf.sprintf "r_%d_%d" importer source;
    importer = node_name importer;
    source = node_name source;
    rule_query = Query.make ~head ~body ~comparisons ();
  }

let generate ?(params = default_params) ~seed shape ~n =
  let rng = Rng.make ~seed in
  let base_edges = edges ~rng shape ~n in
  let base_edges =
    match shape with
    | Random_graph _ when params.connected ->
        let backbone = List.init (max 0 (n - 1)) (fun i -> (i, i + 1)) in
        let missing = List.filter (fun e -> not (List.mem e base_edges)) backbone in
        base_edges @ missing
    | Chain | Ring | Star_in | Star_out | Binary_tree | Grid _ | Clique
    | Random_graph _ ->
        base_edges
  in
  let make_node i =
    let facts =
      List.map
        (fun t -> ("data", t))
        (Datagen.distinct_tuples rng params.profile data_relation
           ~count:params.tuples_per_node)
    in
    {
      Config.node_name = node_name i;
      relations = [ data_relation ];
      facts;
      mediator = false;
      constraints = [];
    }
  in
  {
    Config.nodes = List.init n make_node;
    rules = List.map (edge_rule rng params) base_edges;
  }

let rules_only cfg =
  {
    cfg with
    Config.nodes =
      List.map (fun node -> { node with Config.facts = [] }) cfg.Config.nodes;
  }
