module Peer_id = Codb_net.Peer_id

let me (rt : Runtime.t) = rt.node.Node.node_id

let absorb (rt : Runtime.t) peers =
  let mine = me rt in
  let keep acc peer =
    if Peer_id.equal peer mine then acc else Peer_id.Set.add peer acc
  in
  rt.node.Node.known_peers <- List.fold_left keep rt.node.Node.known_peers peers

let start rt ~ttl =
  if ttl < 0 then invalid_arg "Discovery.start: negative ttl";
  let probe_id = Node.fresh_ref rt.Runtime.node in
  Hashtbl.replace rt.Runtime.node.Node.seen_probes probe_id ();
  let neighbours = rt.Runtime.neighbours () in
  absorb rt neighbours;
  let probe = Payload.Discovery_probe { probe_id; ttl; path = [ me rt ] } in
  List.iter (fun peer -> ignore (Reliable.send_noted rt ~dst:peer probe)) neighbours;
  probe_id

(* Route a reply one hop back along the recorded path. *)
let send_reply rt ~probe_id ~route ~peers =
  match route with
  | [] -> absorb rt peers
  | next :: rest ->
      ignore
        (Reliable.send_noted rt ~dst:next
           (Payload.Discovery_reply { probe_id; path = rest; peers }))

let on_probe rt ~probe_id ~ttl ~path =
  if not (Hashtbl.mem rt.Runtime.node.Node.seen_probes probe_id) then begin
    Hashtbl.replace rt.Runtime.node.Node.seen_probes probe_id ();
    absorb rt path;
    let neighbours = rt.Runtime.neighbours () in
    (* Answer with ourselves and our neighbourhood, back along the
       reverse of the probe's path. *)
    send_reply rt ~probe_id ~route:(List.rev path) ~peers:(me rt :: neighbours);
    if ttl > 0 then begin
      let next_path = path @ [ me rt ] in
      let forward peer =
        if not (List.exists (Peer_id.equal peer) next_path) then
          ignore
            (Reliable.send_noted rt ~dst:peer
               (Payload.Discovery_probe { probe_id; ttl = ttl - 1; path = next_path }))
      in
      List.iter forward neighbours
    end
  end

let handle rt ~src payload =
  ignore src;
  match payload with
  | Payload.Discovery_probe { probe_id; ttl; path } -> on_probe rt ~probe_id ~ttl ~path
  | Payload.Discovery_reply { probe_id; path; peers } ->
      send_reply rt ~probe_id ~route:path ~peers
  | Payload.Update_request _ | Payload.Update_data _ | Payload.Update_batch _
  | Payload.Update_link_closed _
  | Payload.Update_ack _ | Payload.Update_terminated _ | Payload.Query_request _
  | Payload.Query_data _ | Payload.Query_done _ | Payload.Rules_file _
  | Payload.Start_update | Payload.Stats_request | Payload.Stats_response _
  | Payload.Seq _ | Payload.Seq_ack _ | Payload.Sub_register _
  | Payload.Sub_registered _ | Payload.Sub_unregister _ | Payload.Answer_delta _
  | Payload.Answer_batch _ ->
      ()
